file(REMOVE_RECURSE
  "CMakeFiles/mbp_market_cli.dir/mbp_market_cli.cc.o"
  "CMakeFiles/mbp_market_cli.dir/mbp_market_cli.cc.o.d"
  "mbp_market_cli"
  "mbp_market_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbp_market_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for mbp_market_cli.
# This may be replaced when dependencies are built.

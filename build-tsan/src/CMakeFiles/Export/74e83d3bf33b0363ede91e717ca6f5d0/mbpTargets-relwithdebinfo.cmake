#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "mbp::mbp_common" for configuration "RelWithDebInfo"
set_property(TARGET mbp::mbp_common APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(mbp::mbp_common PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libmbp_common.a"
  )

list(APPEND _cmake_import_check_targets mbp::mbp_common )
list(APPEND _cmake_import_check_files_for_mbp::mbp_common "${_IMPORT_PREFIX}/lib/libmbp_common.a" )

# Import target "mbp::mbp_linalg" for configuration "RelWithDebInfo"
set_property(TARGET mbp::mbp_linalg APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(mbp::mbp_linalg PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libmbp_linalg.a"
  )

list(APPEND _cmake_import_check_targets mbp::mbp_linalg )
list(APPEND _cmake_import_check_files_for_mbp::mbp_linalg "${_IMPORT_PREFIX}/lib/libmbp_linalg.a" )

# Import target "mbp::mbp_random" for configuration "RelWithDebInfo"
set_property(TARGET mbp::mbp_random APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(mbp::mbp_random PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libmbp_random.a"
  )

list(APPEND _cmake_import_check_targets mbp::mbp_random )
list(APPEND _cmake_import_check_files_for_mbp::mbp_random "${_IMPORT_PREFIX}/lib/libmbp_random.a" )

# Import target "mbp::mbp_data" for configuration "RelWithDebInfo"
set_property(TARGET mbp::mbp_data APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(mbp::mbp_data PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libmbp_data.a"
  )

list(APPEND _cmake_import_check_targets mbp::mbp_data )
list(APPEND _cmake_import_check_files_for_mbp::mbp_data "${_IMPORT_PREFIX}/lib/libmbp_data.a" )

# Import target "mbp::mbp_ml" for configuration "RelWithDebInfo"
set_property(TARGET mbp::mbp_ml APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(mbp::mbp_ml PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libmbp_ml.a"
  )

list(APPEND _cmake_import_check_targets mbp::mbp_ml )
list(APPEND _cmake_import_check_files_for_mbp::mbp_ml "${_IMPORT_PREFIX}/lib/libmbp_ml.a" )

# Import target "mbp::mbp_optim" for configuration "RelWithDebInfo"
set_property(TARGET mbp::mbp_optim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(mbp::mbp_optim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libmbp_optim.a"
  )

list(APPEND _cmake_import_check_targets mbp::mbp_optim )
list(APPEND _cmake_import_check_files_for_mbp::mbp_optim "${_IMPORT_PREFIX}/lib/libmbp_optim.a" )

# Import target "mbp::mbp_core" for configuration "RelWithDebInfo"
set_property(TARGET mbp::mbp_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(mbp::mbp_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libmbp_core.a"
  )

list(APPEND _cmake_import_check_targets mbp::mbp_core )
list(APPEND _cmake_import_check_files_for_mbp::mbp_core "${_IMPORT_PREFIX}/lib/libmbp_core.a" )

# Import target "mbp::mbp_io" for configuration "RelWithDebInfo"
set_property(TARGET mbp::mbp_io APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(mbp::mbp_io PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libmbp_io.a"
  )

list(APPEND _cmake_import_check_targets mbp::mbp_io )
list(APPEND _cmake_import_check_files_for_mbp::mbp_io "${_IMPORT_PREFIX}/lib/libmbp_io.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)

file(REMOVE_RECURSE
  "libmbp_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/mbp_core.dir/arbitrage.cc.o"
  "CMakeFiles/mbp_core.dir/arbitrage.cc.o.d"
  "CMakeFiles/mbp_core.dir/baselines.cc.o"
  "CMakeFiles/mbp_core.dir/baselines.cc.o.d"
  "CMakeFiles/mbp_core.dir/buyer_population.cc.o"
  "CMakeFiles/mbp_core.dir/buyer_population.cc.o.d"
  "CMakeFiles/mbp_core.dir/curves.cc.o"
  "CMakeFiles/mbp_core.dir/curves.cc.o.d"
  "CMakeFiles/mbp_core.dir/demand_estimation.cc.o"
  "CMakeFiles/mbp_core.dir/demand_estimation.cc.o.d"
  "CMakeFiles/mbp_core.dir/error_transform.cc.o"
  "CMakeFiles/mbp_core.dir/error_transform.cc.o.d"
  "CMakeFiles/mbp_core.dir/exact_opt.cc.o"
  "CMakeFiles/mbp_core.dir/exact_opt.cc.o.d"
  "CMakeFiles/mbp_core.dir/interpolation.cc.o"
  "CMakeFiles/mbp_core.dir/interpolation.cc.o.d"
  "CMakeFiles/mbp_core.dir/ledger.cc.o"
  "CMakeFiles/mbp_core.dir/ledger.cc.o.d"
  "CMakeFiles/mbp_core.dir/market.cc.o"
  "CMakeFiles/mbp_core.dir/market.cc.o.d"
  "CMakeFiles/mbp_core.dir/marketplace.cc.o"
  "CMakeFiles/mbp_core.dir/marketplace.cc.o.d"
  "CMakeFiles/mbp_core.dir/mechanism.cc.o"
  "CMakeFiles/mbp_core.dir/mechanism.cc.o.d"
  "CMakeFiles/mbp_core.dir/pricing_function.cc.o"
  "CMakeFiles/mbp_core.dir/pricing_function.cc.o.d"
  "CMakeFiles/mbp_core.dir/privacy.cc.o"
  "CMakeFiles/mbp_core.dir/privacy.cc.o.d"
  "CMakeFiles/mbp_core.dir/revenue_opt.cc.o"
  "CMakeFiles/mbp_core.dir/revenue_opt.cc.o.d"
  "libmbp_core.a"
  "libmbp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/arbitrage.cc" "src/core/CMakeFiles/mbp_core.dir/arbitrage.cc.o" "gcc" "src/core/CMakeFiles/mbp_core.dir/arbitrage.cc.o.d"
  "/root/repo/src/core/baselines.cc" "src/core/CMakeFiles/mbp_core.dir/baselines.cc.o" "gcc" "src/core/CMakeFiles/mbp_core.dir/baselines.cc.o.d"
  "/root/repo/src/core/buyer_population.cc" "src/core/CMakeFiles/mbp_core.dir/buyer_population.cc.o" "gcc" "src/core/CMakeFiles/mbp_core.dir/buyer_population.cc.o.d"
  "/root/repo/src/core/curves.cc" "src/core/CMakeFiles/mbp_core.dir/curves.cc.o" "gcc" "src/core/CMakeFiles/mbp_core.dir/curves.cc.o.d"
  "/root/repo/src/core/demand_estimation.cc" "src/core/CMakeFiles/mbp_core.dir/demand_estimation.cc.o" "gcc" "src/core/CMakeFiles/mbp_core.dir/demand_estimation.cc.o.d"
  "/root/repo/src/core/error_transform.cc" "src/core/CMakeFiles/mbp_core.dir/error_transform.cc.o" "gcc" "src/core/CMakeFiles/mbp_core.dir/error_transform.cc.o.d"
  "/root/repo/src/core/exact_opt.cc" "src/core/CMakeFiles/mbp_core.dir/exact_opt.cc.o" "gcc" "src/core/CMakeFiles/mbp_core.dir/exact_opt.cc.o.d"
  "/root/repo/src/core/interpolation.cc" "src/core/CMakeFiles/mbp_core.dir/interpolation.cc.o" "gcc" "src/core/CMakeFiles/mbp_core.dir/interpolation.cc.o.d"
  "/root/repo/src/core/ledger.cc" "src/core/CMakeFiles/mbp_core.dir/ledger.cc.o" "gcc" "src/core/CMakeFiles/mbp_core.dir/ledger.cc.o.d"
  "/root/repo/src/core/market.cc" "src/core/CMakeFiles/mbp_core.dir/market.cc.o" "gcc" "src/core/CMakeFiles/mbp_core.dir/market.cc.o.d"
  "/root/repo/src/core/marketplace.cc" "src/core/CMakeFiles/mbp_core.dir/marketplace.cc.o" "gcc" "src/core/CMakeFiles/mbp_core.dir/marketplace.cc.o.d"
  "/root/repo/src/core/mechanism.cc" "src/core/CMakeFiles/mbp_core.dir/mechanism.cc.o" "gcc" "src/core/CMakeFiles/mbp_core.dir/mechanism.cc.o.d"
  "/root/repo/src/core/pricing_function.cc" "src/core/CMakeFiles/mbp_core.dir/pricing_function.cc.o" "gcc" "src/core/CMakeFiles/mbp_core.dir/pricing_function.cc.o.d"
  "/root/repo/src/core/privacy.cc" "src/core/CMakeFiles/mbp_core.dir/privacy.cc.o" "gcc" "src/core/CMakeFiles/mbp_core.dir/privacy.cc.o.d"
  "/root/repo/src/core/revenue_opt.cc" "src/core/CMakeFiles/mbp_core.dir/revenue_opt.cc.o" "gcc" "src/core/CMakeFiles/mbp_core.dir/revenue_opt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/mbp_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/linalg/CMakeFiles/mbp_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/random/CMakeFiles/mbp_random.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/mbp_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ml/CMakeFiles/mbp_ml.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/optim/CMakeFiles/mbp_optim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for mbp_core.
# This may be replaced when dependencies are built.

# Install script for directory: /root/repo/src

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "RelWithDebInfo")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-tsan/src/common/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-tsan/src/linalg/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-tsan/src/random/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-tsan/src/data/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-tsan/src/ml/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-tsan/src/optim/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-tsan/src/core/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-tsan/src/io/cmake_install.cmake")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-tsan/src/common/libmbp_common.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-tsan/src/linalg/libmbp_linalg.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-tsan/src/random/libmbp_random.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-tsan/src/data/libmbp_data.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-tsan/src/ml/libmbp_ml.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-tsan/src/optim/libmbp_optim.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-tsan/src/core/libmbp_core.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-tsan/src/io/libmbp_io.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/mbp" TYPE DIRECTORY FILES "/root/repo/src/" FILES_MATCHING REGEX "/[^/]*\\.h$")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/mbp/mbpTargets.cmake")
    file(DIFFERENT _cmake_export_file_changed FILES
         "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/mbp/mbpTargets.cmake"
         "/root/repo/build-tsan/src/CMakeFiles/Export/74e83d3bf33b0363ede91e717ca6f5d0/mbpTargets.cmake")
    if(_cmake_export_file_changed)
      file(GLOB _cmake_old_config_files "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/mbp/mbpTargets-*.cmake")
      if(_cmake_old_config_files)
        string(REPLACE ";" ", " _cmake_old_config_files_text "${_cmake_old_config_files}")
        message(STATUS "Old export file \"$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/mbp/mbpTargets.cmake\" will be replaced.  Removing files [${_cmake_old_config_files_text}].")
        unset(_cmake_old_config_files_text)
        file(REMOVE ${_cmake_old_config_files})
      endif()
      unset(_cmake_old_config_files)
    endif()
    unset(_cmake_export_file_changed)
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/mbp" TYPE FILE FILES "/root/repo/build-tsan/src/CMakeFiles/Export/74e83d3bf33b0363ede91e717ca6f5d0/mbpTargets.cmake")
  if(CMAKE_INSTALL_CONFIG_NAME MATCHES "^([Rr][Ee][Ll][Ww][Ii][Tt][Hh][Dd][Ee][Bb][Ii][Nn][Ff][Oo])$")
    file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/mbp" TYPE FILE FILES "/root/repo/build-tsan/src/CMakeFiles/Export/74e83d3bf33b0363ede91e717ca6f5d0/mbpTargets-relwithdebinfo.cmake")
  endif()
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/mbp" TYPE FILE FILES
    "/root/repo/build-tsan/src/mbpConfig.cmake"
    "/root/repo/build-tsan/src/mbpConfigVersion.cmake"
    )
endif()


# Empty compiler generated dependencies file for mbp_io.
# This may be replaced when dependencies are built.

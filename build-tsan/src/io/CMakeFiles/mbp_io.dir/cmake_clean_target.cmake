file(REMOVE_RECURSE
  "libmbp_io.a"
)

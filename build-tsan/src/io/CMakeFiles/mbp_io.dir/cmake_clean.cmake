file(REMOVE_RECURSE
  "CMakeFiles/mbp_io.dir/model_io.cc.o"
  "CMakeFiles/mbp_io.dir/model_io.cc.o.d"
  "libmbp_io.a"
  "libmbp_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbp_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

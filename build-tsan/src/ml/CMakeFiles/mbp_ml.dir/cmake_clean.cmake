file(REMOVE_RECURSE
  "CMakeFiles/mbp_ml.dir/cross_validation.cc.o"
  "CMakeFiles/mbp_ml.dir/cross_validation.cc.o.d"
  "CMakeFiles/mbp_ml.dir/loss.cc.o"
  "CMakeFiles/mbp_ml.dir/loss.cc.o.d"
  "CMakeFiles/mbp_ml.dir/metrics.cc.o"
  "CMakeFiles/mbp_ml.dir/metrics.cc.o.d"
  "CMakeFiles/mbp_ml.dir/model.cc.o"
  "CMakeFiles/mbp_ml.dir/model.cc.o.d"
  "CMakeFiles/mbp_ml.dir/sgd.cc.o"
  "CMakeFiles/mbp_ml.dir/sgd.cc.o.d"
  "CMakeFiles/mbp_ml.dir/sparse_trainer.cc.o"
  "CMakeFiles/mbp_ml.dir/sparse_trainer.cc.o.d"
  "CMakeFiles/mbp_ml.dir/trainer.cc.o"
  "CMakeFiles/mbp_ml.dir/trainer.cc.o.d"
  "libmbp_ml.a"
  "libmbp_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbp_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

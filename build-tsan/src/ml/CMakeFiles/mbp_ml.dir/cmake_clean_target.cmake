file(REMOVE_RECURSE
  "libmbp_ml.a"
)

# Empty dependencies file for mbp_ml.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/cross_validation.cc" "src/ml/CMakeFiles/mbp_ml.dir/cross_validation.cc.o" "gcc" "src/ml/CMakeFiles/mbp_ml.dir/cross_validation.cc.o.d"
  "/root/repo/src/ml/loss.cc" "src/ml/CMakeFiles/mbp_ml.dir/loss.cc.o" "gcc" "src/ml/CMakeFiles/mbp_ml.dir/loss.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/mbp_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/mbp_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/model.cc" "src/ml/CMakeFiles/mbp_ml.dir/model.cc.o" "gcc" "src/ml/CMakeFiles/mbp_ml.dir/model.cc.o.d"
  "/root/repo/src/ml/sgd.cc" "src/ml/CMakeFiles/mbp_ml.dir/sgd.cc.o" "gcc" "src/ml/CMakeFiles/mbp_ml.dir/sgd.cc.o.d"
  "/root/repo/src/ml/sparse_trainer.cc" "src/ml/CMakeFiles/mbp_ml.dir/sparse_trainer.cc.o" "gcc" "src/ml/CMakeFiles/mbp_ml.dir/sparse_trainer.cc.o.d"
  "/root/repo/src/ml/trainer.cc" "src/ml/CMakeFiles/mbp_ml.dir/trainer.cc.o" "gcc" "src/ml/CMakeFiles/mbp_ml.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/mbp_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/linalg/CMakeFiles/mbp_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/mbp_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/random/CMakeFiles/mbp_random.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/mbp_optim.dir/pava.cc.o"
  "CMakeFiles/mbp_optim.dir/pava.cc.o.d"
  "CMakeFiles/mbp_optim.dir/simplex.cc.o"
  "CMakeFiles/mbp_optim.dir/simplex.cc.o.d"
  "libmbp_optim.a"
  "libmbp_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbp_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

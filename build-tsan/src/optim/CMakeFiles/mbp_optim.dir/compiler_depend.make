# Empty compiler generated dependencies file for mbp_optim.
# This may be replaced when dependencies are built.

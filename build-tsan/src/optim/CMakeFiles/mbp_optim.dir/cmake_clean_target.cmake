file(REMOVE_RECURSE
  "libmbp_optim.a"
)

# Empty dependencies file for mbp_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libmbp_common.a"
)

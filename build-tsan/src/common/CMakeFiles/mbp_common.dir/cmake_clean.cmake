file(REMOVE_RECURSE
  "CMakeFiles/mbp_common.dir/logging.cc.o"
  "CMakeFiles/mbp_common.dir/logging.cc.o.d"
  "CMakeFiles/mbp_common.dir/status.cc.o"
  "CMakeFiles/mbp_common.dir/status.cc.o.d"
  "CMakeFiles/mbp_common.dir/thread_pool.cc.o"
  "CMakeFiles/mbp_common.dir/thread_pool.cc.o.d"
  "libmbp_common.a"
  "libmbp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

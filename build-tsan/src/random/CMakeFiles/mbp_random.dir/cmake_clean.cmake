file(REMOVE_RECURSE
  "CMakeFiles/mbp_random.dir/distributions.cc.o"
  "CMakeFiles/mbp_random.dir/distributions.cc.o.d"
  "CMakeFiles/mbp_random.dir/rng.cc.o"
  "CMakeFiles/mbp_random.dir/rng.cc.o.d"
  "libmbp_random.a"
  "libmbp_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbp_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

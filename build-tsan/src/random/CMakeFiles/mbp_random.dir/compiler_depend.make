# Empty compiler generated dependencies file for mbp_random.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libmbp_random.a"
)

file(REMOVE_RECURSE
  "libmbp_linalg.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/mbp_linalg.dir/cholesky.cc.o"
  "CMakeFiles/mbp_linalg.dir/cholesky.cc.o.d"
  "CMakeFiles/mbp_linalg.dir/conjugate_gradient.cc.o"
  "CMakeFiles/mbp_linalg.dir/conjugate_gradient.cc.o.d"
  "CMakeFiles/mbp_linalg.dir/eigen.cc.o"
  "CMakeFiles/mbp_linalg.dir/eigen.cc.o.d"
  "CMakeFiles/mbp_linalg.dir/matrix.cc.o"
  "CMakeFiles/mbp_linalg.dir/matrix.cc.o.d"
  "CMakeFiles/mbp_linalg.dir/qr.cc.o"
  "CMakeFiles/mbp_linalg.dir/qr.cc.o.d"
  "CMakeFiles/mbp_linalg.dir/sparse.cc.o"
  "CMakeFiles/mbp_linalg.dir/sparse.cc.o.d"
  "CMakeFiles/mbp_linalg.dir/vector_ops.cc.o"
  "CMakeFiles/mbp_linalg.dir/vector_ops.cc.o.d"
  "libmbp_linalg.a"
  "libmbp_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbp_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

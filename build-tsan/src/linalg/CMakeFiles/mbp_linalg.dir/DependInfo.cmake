
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/cholesky.cc" "src/linalg/CMakeFiles/mbp_linalg.dir/cholesky.cc.o" "gcc" "src/linalg/CMakeFiles/mbp_linalg.dir/cholesky.cc.o.d"
  "/root/repo/src/linalg/conjugate_gradient.cc" "src/linalg/CMakeFiles/mbp_linalg.dir/conjugate_gradient.cc.o" "gcc" "src/linalg/CMakeFiles/mbp_linalg.dir/conjugate_gradient.cc.o.d"
  "/root/repo/src/linalg/eigen.cc" "src/linalg/CMakeFiles/mbp_linalg.dir/eigen.cc.o" "gcc" "src/linalg/CMakeFiles/mbp_linalg.dir/eigen.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/linalg/CMakeFiles/mbp_linalg.dir/matrix.cc.o" "gcc" "src/linalg/CMakeFiles/mbp_linalg.dir/matrix.cc.o.d"
  "/root/repo/src/linalg/qr.cc" "src/linalg/CMakeFiles/mbp_linalg.dir/qr.cc.o" "gcc" "src/linalg/CMakeFiles/mbp_linalg.dir/qr.cc.o.d"
  "/root/repo/src/linalg/sparse.cc" "src/linalg/CMakeFiles/mbp_linalg.dir/sparse.cc.o" "gcc" "src/linalg/CMakeFiles/mbp_linalg.dir/sparse.cc.o.d"
  "/root/repo/src/linalg/vector_ops.cc" "src/linalg/CMakeFiles/mbp_linalg.dir/vector_ops.cc.o" "gcc" "src/linalg/CMakeFiles/mbp_linalg.dir/vector_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/mbp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for mbp_linalg.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mbp_data.dir/csv.cc.o"
  "CMakeFiles/mbp_data.dir/csv.cc.o.d"
  "CMakeFiles/mbp_data.dir/dataset.cc.o"
  "CMakeFiles/mbp_data.dir/dataset.cc.o.d"
  "CMakeFiles/mbp_data.dir/feature_expansion.cc.o"
  "CMakeFiles/mbp_data.dir/feature_expansion.cc.o.d"
  "CMakeFiles/mbp_data.dir/scaler.cc.o"
  "CMakeFiles/mbp_data.dir/scaler.cc.o.d"
  "CMakeFiles/mbp_data.dir/sparse_dataset.cc.o"
  "CMakeFiles/mbp_data.dir/sparse_dataset.cc.o.d"
  "CMakeFiles/mbp_data.dir/split.cc.o"
  "CMakeFiles/mbp_data.dir/split.cc.o.d"
  "CMakeFiles/mbp_data.dir/statistics.cc.o"
  "CMakeFiles/mbp_data.dir/statistics.cc.o.d"
  "CMakeFiles/mbp_data.dir/synthetic.cc.o"
  "CMakeFiles/mbp_data.dir/synthetic.cc.o.d"
  "CMakeFiles/mbp_data.dir/table.cc.o"
  "CMakeFiles/mbp_data.dir/table.cc.o.d"
  "CMakeFiles/mbp_data.dir/uci_like.cc.o"
  "CMakeFiles/mbp_data.dir/uci_like.cc.o.d"
  "libmbp_data.a"
  "libmbp_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbp_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for mbp_data.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/csv.cc" "src/data/CMakeFiles/mbp_data.dir/csv.cc.o" "gcc" "src/data/CMakeFiles/mbp_data.dir/csv.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/mbp_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/mbp_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/feature_expansion.cc" "src/data/CMakeFiles/mbp_data.dir/feature_expansion.cc.o" "gcc" "src/data/CMakeFiles/mbp_data.dir/feature_expansion.cc.o.d"
  "/root/repo/src/data/scaler.cc" "src/data/CMakeFiles/mbp_data.dir/scaler.cc.o" "gcc" "src/data/CMakeFiles/mbp_data.dir/scaler.cc.o.d"
  "/root/repo/src/data/sparse_dataset.cc" "src/data/CMakeFiles/mbp_data.dir/sparse_dataset.cc.o" "gcc" "src/data/CMakeFiles/mbp_data.dir/sparse_dataset.cc.o.d"
  "/root/repo/src/data/split.cc" "src/data/CMakeFiles/mbp_data.dir/split.cc.o" "gcc" "src/data/CMakeFiles/mbp_data.dir/split.cc.o.d"
  "/root/repo/src/data/statistics.cc" "src/data/CMakeFiles/mbp_data.dir/statistics.cc.o" "gcc" "src/data/CMakeFiles/mbp_data.dir/statistics.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/data/CMakeFiles/mbp_data.dir/synthetic.cc.o" "gcc" "src/data/CMakeFiles/mbp_data.dir/synthetic.cc.o.d"
  "/root/repo/src/data/table.cc" "src/data/CMakeFiles/mbp_data.dir/table.cc.o" "gcc" "src/data/CMakeFiles/mbp_data.dir/table.cc.o.d"
  "/root/repo/src/data/uci_like.cc" "src/data/CMakeFiles/mbp_data.dir/uci_like.cc.o" "gcc" "src/data/CMakeFiles/mbp_data.dir/uci_like.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/mbp_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/linalg/CMakeFiles/mbp_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/random/CMakeFiles/mbp_random.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

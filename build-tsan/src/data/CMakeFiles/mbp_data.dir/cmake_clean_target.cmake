file(REMOVE_RECURSE
  "libmbp_data.a"
)

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/mbp_common_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/mbp_linalg_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/mbp_random_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/mbp_optim_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/mbp_data_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/mbp_ml_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/mbp_core_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/mbp_io_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/mbp_theory_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/mbp_cli_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/mbp_integration_test[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/mbp_optim_test.dir/optim/pava_test.cc.o"
  "CMakeFiles/mbp_optim_test.dir/optim/pava_test.cc.o.d"
  "CMakeFiles/mbp_optim_test.dir/optim/simplex_test.cc.o"
  "CMakeFiles/mbp_optim_test.dir/optim/simplex_test.cc.o.d"
  "mbp_optim_test"
  "mbp_optim_test.pdb"
  "mbp_optim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbp_optim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

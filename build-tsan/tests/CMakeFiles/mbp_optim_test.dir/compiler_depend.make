# Empty compiler generated dependencies file for mbp_optim_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mbp_ml_test.dir/ml/cross_validation_test.cc.o"
  "CMakeFiles/mbp_ml_test.dir/ml/cross_validation_test.cc.o.d"
  "CMakeFiles/mbp_ml_test.dir/ml/loss_test.cc.o"
  "CMakeFiles/mbp_ml_test.dir/ml/loss_test.cc.o.d"
  "CMakeFiles/mbp_ml_test.dir/ml/metrics_test.cc.o"
  "CMakeFiles/mbp_ml_test.dir/ml/metrics_test.cc.o.d"
  "CMakeFiles/mbp_ml_test.dir/ml/sgd_test.cc.o"
  "CMakeFiles/mbp_ml_test.dir/ml/sgd_test.cc.o.d"
  "CMakeFiles/mbp_ml_test.dir/ml/sparse_trainer_test.cc.o"
  "CMakeFiles/mbp_ml_test.dir/ml/sparse_trainer_test.cc.o.d"
  "CMakeFiles/mbp_ml_test.dir/ml/trainer_test.cc.o"
  "CMakeFiles/mbp_ml_test.dir/ml/trainer_test.cc.o.d"
  "mbp_ml_test"
  "mbp_ml_test.pdb"
  "mbp_ml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbp_ml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

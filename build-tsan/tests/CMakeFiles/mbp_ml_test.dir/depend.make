# Empty dependencies file for mbp_ml_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for mbp_linalg_test.
# This may be replaced when dependencies are built.

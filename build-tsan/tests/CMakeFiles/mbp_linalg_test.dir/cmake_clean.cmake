file(REMOVE_RECURSE
  "CMakeFiles/mbp_linalg_test.dir/linalg/cholesky_test.cc.o"
  "CMakeFiles/mbp_linalg_test.dir/linalg/cholesky_test.cc.o.d"
  "CMakeFiles/mbp_linalg_test.dir/linalg/conjugate_gradient_test.cc.o"
  "CMakeFiles/mbp_linalg_test.dir/linalg/conjugate_gradient_test.cc.o.d"
  "CMakeFiles/mbp_linalg_test.dir/linalg/eigen_test.cc.o"
  "CMakeFiles/mbp_linalg_test.dir/linalg/eigen_test.cc.o.d"
  "CMakeFiles/mbp_linalg_test.dir/linalg/matrix_test.cc.o"
  "CMakeFiles/mbp_linalg_test.dir/linalg/matrix_test.cc.o.d"
  "CMakeFiles/mbp_linalg_test.dir/linalg/qr_test.cc.o"
  "CMakeFiles/mbp_linalg_test.dir/linalg/qr_test.cc.o.d"
  "CMakeFiles/mbp_linalg_test.dir/linalg/sparse_test.cc.o"
  "CMakeFiles/mbp_linalg_test.dir/linalg/sparse_test.cc.o.d"
  "CMakeFiles/mbp_linalg_test.dir/linalg/vector_ops_test.cc.o"
  "CMakeFiles/mbp_linalg_test.dir/linalg/vector_ops_test.cc.o.d"
  "mbp_linalg_test"
  "mbp_linalg_test.pdb"
  "mbp_linalg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbp_linalg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tools/cli_test.cc" "tests/CMakeFiles/mbp_cli_test.dir/tools/cli_test.cc.o" "gcc" "tests/CMakeFiles/mbp_cli_test.dir/tools/cli_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/io/CMakeFiles/mbp_io.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/mbp_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ml/CMakeFiles/mbp_ml.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/mbp_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/random/CMakeFiles/mbp_random.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/optim/CMakeFiles/mbp_optim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/linalg/CMakeFiles/mbp_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/mbp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/mbp_cli_test.dir/tools/cli_test.cc.o"
  "CMakeFiles/mbp_cli_test.dir/tools/cli_test.cc.o.d"
  "mbp_cli_test"
  "mbp_cli_test.pdb"
  "mbp_cli_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbp_cli_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

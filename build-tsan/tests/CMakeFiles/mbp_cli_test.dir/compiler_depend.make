# Empty compiler generated dependencies file for mbp_cli_test.
# This may be replaced when dependencies are built.

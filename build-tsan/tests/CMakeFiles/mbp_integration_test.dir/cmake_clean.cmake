file(REMOVE_RECURSE
  "CMakeFiles/mbp_integration_test.dir/integration/end_to_end_test.cc.o"
  "CMakeFiles/mbp_integration_test.dir/integration/end_to_end_test.cc.o.d"
  "CMakeFiles/mbp_integration_test.dir/integration/paper_claims_test.cc.o"
  "CMakeFiles/mbp_integration_test.dir/integration/paper_claims_test.cc.o.d"
  "CMakeFiles/mbp_integration_test.dir/integration/parallel_determinism_test.cc.o"
  "CMakeFiles/mbp_integration_test.dir/integration/parallel_determinism_test.cc.o.d"
  "CMakeFiles/mbp_integration_test.dir/integration/persistence_test.cc.o"
  "CMakeFiles/mbp_integration_test.dir/integration/persistence_test.cc.o.d"
  "CMakeFiles/mbp_integration_test.dir/integration/soak_test.cc.o"
  "CMakeFiles/mbp_integration_test.dir/integration/soak_test.cc.o.d"
  "mbp_integration_test"
  "mbp_integration_test.pdb"
  "mbp_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbp_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

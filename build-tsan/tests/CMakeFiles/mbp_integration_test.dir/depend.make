# Empty dependencies file for mbp_integration_test.
# This may be replaced when dependencies are built.

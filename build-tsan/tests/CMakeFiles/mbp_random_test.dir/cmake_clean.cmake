file(REMOVE_RECURSE
  "CMakeFiles/mbp_random_test.dir/random/distributions_test.cc.o"
  "CMakeFiles/mbp_random_test.dir/random/distributions_test.cc.o.d"
  "CMakeFiles/mbp_random_test.dir/random/rng_test.cc.o"
  "CMakeFiles/mbp_random_test.dir/random/rng_test.cc.o.d"
  "mbp_random_test"
  "mbp_random_test.pdb"
  "mbp_random_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbp_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

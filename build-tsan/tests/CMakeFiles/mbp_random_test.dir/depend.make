# Empty dependencies file for mbp_random_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mbp_theory_test.dir/core/theory_properties_test.cc.o"
  "CMakeFiles/mbp_theory_test.dir/core/theory_properties_test.cc.o.d"
  "mbp_theory_test"
  "mbp_theory_test.pdb"
  "mbp_theory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbp_theory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for mbp_theory_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mbp_io_test.dir/io/model_io_test.cc.o"
  "CMakeFiles/mbp_io_test.dir/io/model_io_test.cc.o.d"
  "CMakeFiles/mbp_io_test.dir/io/reader_fuzz_test.cc.o"
  "CMakeFiles/mbp_io_test.dir/io/reader_fuzz_test.cc.o.d"
  "mbp_io_test"
  "mbp_io_test.pdb"
  "mbp_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbp_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

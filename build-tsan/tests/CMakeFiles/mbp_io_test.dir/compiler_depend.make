# Empty compiler generated dependencies file for mbp_io_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for mbp_core_test.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/arbitrage_test.cc" "tests/CMakeFiles/mbp_core_test.dir/core/arbitrage_test.cc.o" "gcc" "tests/CMakeFiles/mbp_core_test.dir/core/arbitrage_test.cc.o.d"
  "/root/repo/tests/core/baselines_test.cc" "tests/CMakeFiles/mbp_core_test.dir/core/baselines_test.cc.o" "gcc" "tests/CMakeFiles/mbp_core_test.dir/core/baselines_test.cc.o.d"
  "/root/repo/tests/core/buyer_population_test.cc" "tests/CMakeFiles/mbp_core_test.dir/core/buyer_population_test.cc.o" "gcc" "tests/CMakeFiles/mbp_core_test.dir/core/buyer_population_test.cc.o.d"
  "/root/repo/tests/core/curves_test.cc" "tests/CMakeFiles/mbp_core_test.dir/core/curves_test.cc.o" "gcc" "tests/CMakeFiles/mbp_core_test.dir/core/curves_test.cc.o.d"
  "/root/repo/tests/core/demand_estimation_test.cc" "tests/CMakeFiles/mbp_core_test.dir/core/demand_estimation_test.cc.o" "gcc" "tests/CMakeFiles/mbp_core_test.dir/core/demand_estimation_test.cc.o.d"
  "/root/repo/tests/core/error_transform_test.cc" "tests/CMakeFiles/mbp_core_test.dir/core/error_transform_test.cc.o" "gcc" "tests/CMakeFiles/mbp_core_test.dir/core/error_transform_test.cc.o.d"
  "/root/repo/tests/core/exact_opt_test.cc" "tests/CMakeFiles/mbp_core_test.dir/core/exact_opt_test.cc.o" "gcc" "tests/CMakeFiles/mbp_core_test.dir/core/exact_opt_test.cc.o.d"
  "/root/repo/tests/core/interpolation_test.cc" "tests/CMakeFiles/mbp_core_test.dir/core/interpolation_test.cc.o" "gcc" "tests/CMakeFiles/mbp_core_test.dir/core/interpolation_test.cc.o.d"
  "/root/repo/tests/core/ledger_test.cc" "tests/CMakeFiles/mbp_core_test.dir/core/ledger_test.cc.o" "gcc" "tests/CMakeFiles/mbp_core_test.dir/core/ledger_test.cc.o.d"
  "/root/repo/tests/core/market_test.cc" "tests/CMakeFiles/mbp_core_test.dir/core/market_test.cc.o" "gcc" "tests/CMakeFiles/mbp_core_test.dir/core/market_test.cc.o.d"
  "/root/repo/tests/core/marketplace_test.cc" "tests/CMakeFiles/mbp_core_test.dir/core/marketplace_test.cc.o" "gcc" "tests/CMakeFiles/mbp_core_test.dir/core/marketplace_test.cc.o.d"
  "/root/repo/tests/core/mechanism_test.cc" "tests/CMakeFiles/mbp_core_test.dir/core/mechanism_test.cc.o" "gcc" "tests/CMakeFiles/mbp_core_test.dir/core/mechanism_test.cc.o.d"
  "/root/repo/tests/core/pricing_function_test.cc" "tests/CMakeFiles/mbp_core_test.dir/core/pricing_function_test.cc.o" "gcc" "tests/CMakeFiles/mbp_core_test.dir/core/pricing_function_test.cc.o.d"
  "/root/repo/tests/core/privacy_test.cc" "tests/CMakeFiles/mbp_core_test.dir/core/privacy_test.cc.o" "gcc" "tests/CMakeFiles/mbp_core_test.dir/core/privacy_test.cc.o.d"
  "/root/repo/tests/core/revenue_opt_test.cc" "tests/CMakeFiles/mbp_core_test.dir/core/revenue_opt_test.cc.o" "gcc" "tests/CMakeFiles/mbp_core_test.dir/core/revenue_opt_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/io/CMakeFiles/mbp_io.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/mbp_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ml/CMakeFiles/mbp_ml.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/mbp_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/random/CMakeFiles/mbp_random.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/optim/CMakeFiles/mbp_optim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/linalg/CMakeFiles/mbp_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/mbp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

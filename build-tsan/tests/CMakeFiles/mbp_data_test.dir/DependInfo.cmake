
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/data/csv_test.cc" "tests/CMakeFiles/mbp_data_test.dir/data/csv_test.cc.o" "gcc" "tests/CMakeFiles/mbp_data_test.dir/data/csv_test.cc.o.d"
  "/root/repo/tests/data/dataset_test.cc" "tests/CMakeFiles/mbp_data_test.dir/data/dataset_test.cc.o" "gcc" "tests/CMakeFiles/mbp_data_test.dir/data/dataset_test.cc.o.d"
  "/root/repo/tests/data/feature_expansion_test.cc" "tests/CMakeFiles/mbp_data_test.dir/data/feature_expansion_test.cc.o" "gcc" "tests/CMakeFiles/mbp_data_test.dir/data/feature_expansion_test.cc.o.d"
  "/root/repo/tests/data/scaler_test.cc" "tests/CMakeFiles/mbp_data_test.dir/data/scaler_test.cc.o" "gcc" "tests/CMakeFiles/mbp_data_test.dir/data/scaler_test.cc.o.d"
  "/root/repo/tests/data/sparse_dataset_test.cc" "tests/CMakeFiles/mbp_data_test.dir/data/sparse_dataset_test.cc.o" "gcc" "tests/CMakeFiles/mbp_data_test.dir/data/sparse_dataset_test.cc.o.d"
  "/root/repo/tests/data/split_test.cc" "tests/CMakeFiles/mbp_data_test.dir/data/split_test.cc.o" "gcc" "tests/CMakeFiles/mbp_data_test.dir/data/split_test.cc.o.d"
  "/root/repo/tests/data/statistics_test.cc" "tests/CMakeFiles/mbp_data_test.dir/data/statistics_test.cc.o" "gcc" "tests/CMakeFiles/mbp_data_test.dir/data/statistics_test.cc.o.d"
  "/root/repo/tests/data/synthetic_test.cc" "tests/CMakeFiles/mbp_data_test.dir/data/synthetic_test.cc.o" "gcc" "tests/CMakeFiles/mbp_data_test.dir/data/synthetic_test.cc.o.d"
  "/root/repo/tests/data/table_test.cc" "tests/CMakeFiles/mbp_data_test.dir/data/table_test.cc.o" "gcc" "tests/CMakeFiles/mbp_data_test.dir/data/table_test.cc.o.d"
  "/root/repo/tests/data/uci_like_test.cc" "tests/CMakeFiles/mbp_data_test.dir/data/uci_like_test.cc.o" "gcc" "tests/CMakeFiles/mbp_data_test.dir/data/uci_like_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/io/CMakeFiles/mbp_io.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/mbp_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ml/CMakeFiles/mbp_ml.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/mbp_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/random/CMakeFiles/mbp_random.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/optim/CMakeFiles/mbp_optim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/linalg/CMakeFiles/mbp_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/mbp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for mbp_data_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mbp_data_test.dir/data/csv_test.cc.o"
  "CMakeFiles/mbp_data_test.dir/data/csv_test.cc.o.d"
  "CMakeFiles/mbp_data_test.dir/data/dataset_test.cc.o"
  "CMakeFiles/mbp_data_test.dir/data/dataset_test.cc.o.d"
  "CMakeFiles/mbp_data_test.dir/data/feature_expansion_test.cc.o"
  "CMakeFiles/mbp_data_test.dir/data/feature_expansion_test.cc.o.d"
  "CMakeFiles/mbp_data_test.dir/data/scaler_test.cc.o"
  "CMakeFiles/mbp_data_test.dir/data/scaler_test.cc.o.d"
  "CMakeFiles/mbp_data_test.dir/data/sparse_dataset_test.cc.o"
  "CMakeFiles/mbp_data_test.dir/data/sparse_dataset_test.cc.o.d"
  "CMakeFiles/mbp_data_test.dir/data/split_test.cc.o"
  "CMakeFiles/mbp_data_test.dir/data/split_test.cc.o.d"
  "CMakeFiles/mbp_data_test.dir/data/statistics_test.cc.o"
  "CMakeFiles/mbp_data_test.dir/data/statistics_test.cc.o.d"
  "CMakeFiles/mbp_data_test.dir/data/synthetic_test.cc.o"
  "CMakeFiles/mbp_data_test.dir/data/synthetic_test.cc.o.d"
  "CMakeFiles/mbp_data_test.dir/data/table_test.cc.o"
  "CMakeFiles/mbp_data_test.dir/data/table_test.cc.o.d"
  "CMakeFiles/mbp_data_test.dir/data/uci_like_test.cc.o"
  "CMakeFiles/mbp_data_test.dir/data/uci_like_test.cc.o.d"
  "mbp_data_test"
  "mbp_data_test.pdb"
  "mbp_data_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbp_data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/mbp_common_test.dir/common/check_test.cc.o"
  "CMakeFiles/mbp_common_test.dir/common/check_test.cc.o.d"
  "CMakeFiles/mbp_common_test.dir/common/status_test.cc.o"
  "CMakeFiles/mbp_common_test.dir/common/status_test.cc.o.d"
  "CMakeFiles/mbp_common_test.dir/common/statusor_test.cc.o"
  "CMakeFiles/mbp_common_test.dir/common/statusor_test.cc.o.d"
  "CMakeFiles/mbp_common_test.dir/common/thread_pool_test.cc.o"
  "CMakeFiles/mbp_common_test.dir/common/thread_pool_test.cc.o.d"
  "mbp_common_test"
  "mbp_common_test.pdb"
  "mbp_common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbp_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

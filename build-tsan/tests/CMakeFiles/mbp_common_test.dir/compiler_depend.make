# Empty compiler generated dependencies file for mbp_common_test.
# This may be replaced when dependencies are built.

// One catalog shard process of a consistent-hash price-serving fleet
// (DESIGN.md §5g): compiles a deterministic synthetic catalog (its ring
// share, or the whole catalog when unpartitioned), serves it over the
// binary TCP protocol, prints a READY line for the launcher, and drains
// gracefully on stdin EOF / SIGTERM / SIGINT.
//
// Flags:
//   --port=N         bind port (default 0 = ephemeral; see READY line)
//   --loops=N        server event-loop shards (default 1)
//   --curves=N       synthetic catalog size (default 1024)
//   --seed=N         catalog seed (default 7) — every process of a fleet
//                    must agree so curves are bit-identical across shards
//   --min-knots=N    per-curve knot count range (default 8..128)
//   --max-knots=N
//   --ring-size=N    partitioned mode: this process is node
//   --ring-index=I   "shard-<I>" of an N-node ring and publishes only the
//                    curves it owns under --replicas (default: ring-size 0
//                    = unpartitioned, publish everything)
//   --replicas=R     ring ownership multiplicity (default 2)
//   --vnodes=N       ring vnodes per node (default 64; must match clients)
//   --max-listings=N CatalogRegistry residency cap (default 0 = unbounded)
//   --default-curve=ID  curve served for empty request ids
//   --fault-seed=N   arm the chaos fault storm on this process's injector
//   --fault-scale=F  storm probability multiplier (default 1.0)
//   --transport=T    shard-loop transport: epoll (default) or uring.
//                    uring falls back to epoll (with a stderr notice)
//                    when the kernel lacks the needed io_uring features.
//   --shm=PATH       also publish a shared-memory segment at PATH next
//                    to the TCP listener; same-host clients connect with
//                    "shm://PATH" (port ignored), remote ones keep TCP
//   --shm-slots=N    shm connection slots (default 32)
//   --fulfill=0|1    serve the QUOTE/BUY/REPLAY fulfillment verbs
//                    (default 1). Every shard of a fleet must agree on
//                    the fulfillment seeds below, or a BUY retried
//                    against a replica delivers different bytes.
//   --epoch-seed=N   fulfillment epoch seed (noise derivation;
//                    default 0x5EED0001)
//   --dataset-seed=N fulfillment training-set seed (default 0xD474)
//   --model-dim=N    sold model dimensionality (default 16)
//   --model-cache-bytes=N  trained-model LRU budget (default 64 MiB)
//   --wal-dir=PATH   crash-safe durability (DESIGN.md §5j): journal
//                    catalog publishes under PATH/catalog and the sale
//                    ledger under PATH/ledger. On restart the catalog
//                    and ledger rebuild from the logs — acked sales
//                    survive kill -9, retried BUYs re-deliver recorded
//                    sales charged once
//   --wal-fsync=P    fsync policy: none | batch (default) | every
//   --crash-point=N  arm the named crash fault point (e.g.
//                    wal.crash.post_fsync): the process _exit(137)s when
//                    it fires — the chaos harness's kill-9-at-a-named-
//                    boundary hook. Armed AFTER startup so recovery and
//                    catalog journaling never self-crash
//   --crash-after=K  let the crash point's first K hits pass (default 0)
//
// Output: exactly one line "READY port=<p> curves=<n> bytes=<b>\n" on
// stdout once serving (plus " shm=<path>" when --shm is set, plus
// " wal=<dir> recovered=<records> torn=<n> recovery_ms=<n>" when
// --wal-dir is set); the process then blocks until stdin closes or a
// signal arrives, shuts down gracefully — flushing the WAL and writing
// clean checkpoints, reported on a "DRAIN ..." line — and exits 0.

#include <poll.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/fault_injection.h"
#include "common/wal.h"
#include "net/cluster.h"
#include "net/server.h"
#include "serving/catalog_journal.h"
#include "serving/fulfillment.h"
#include "serving/price_query_engine.h"
#include "serving/synthetic_catalog.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

// The seeded fault storm of tests/net/chaos_test.cc, scaled: transient
// EINTR/EAGAIN, short reads/writes, delays, resets, accept-side refusals.
void ArmFaultStorm(uint64_t seed, double scale) {
  mbp::fault::FaultInjector& inj = mbp::fault::FaultInjector::Global();
  inj.Seed(seed);
  mbp::fault::PointSchedule transient;
  transient.probability = 0.05 * scale;
  inj.Arm("net.recv.eintr", transient);
  inj.Arm("net.recv.eagain", transient);
  inj.Arm("net.send.eintr", transient);
  inj.Arm("net.send.eagain", transient);
  inj.Arm("net.accept.eintr", transient);
  inj.Arm("net.epoll.eintr", transient);
  mbp::fault::PointSchedule shortio;
  shortio.probability = 0.2 * scale;
  inj.Arm("net.recv.short", shortio);
  inj.Arm("net.send.short", shortio);
  mbp::fault::PointSchedule delay;
  delay.probability = 0.001 * scale;
  delay.delay_micros = 500;
  inj.Arm("net.recv.delay", delay);
  inj.Arm("net.send.delay", delay);
  mbp::fault::PointSchedule reset;
  reset.probability = 0.0005 * scale;
  inj.Arm("net.recv.reset", reset);
  inj.Arm("net.send.reset", reset);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mbp;  // NOLINT
  const auto flag = [&](const char* name, double fallback) {
    return bench::FlagValue(argc, argv, name, fallback);
  };
  const uint16_t port = static_cast<uint16_t>(flag("port", 0));
  const size_t loops = static_cast<size_t>(flag("loops", 1));
  const size_t ring_size = static_cast<size_t>(flag("ring-size", 0));
  const size_t ring_index = static_cast<size_t>(flag("ring-index", 0));
  const size_t replicas = static_cast<size_t>(flag("replicas", 2));
  const size_t vnodes = static_cast<size_t>(flag("vnodes", 64));
  const uint64_t fault_seed = static_cast<uint64_t>(flag("fault-seed", 0));
  const double fault_scale = flag("fault-scale", 1.0);

  serving::SyntheticCatalogSpec spec;
  spec.num_curves = static_cast<size_t>(flag("curves", 1024));
  spec.seed = static_cast<uint64_t>(flag("seed", 7));
  spec.min_knots = static_cast<size_t>(flag("min-knots", 8));
  spec.max_knots = static_cast<size_t>(flag("max-knots", 128));

  serving::CatalogRegistryOptions registry_options;
  registry_options.max_resident_listings =
      static_cast<size_t>(flag("max-listings", 0));
  serving::CatalogRegistry registry(registry_options);

  if (fault_seed != 0) ArmFaultStorm(fault_seed, fault_scale);

  // Partitioned mode: own exactly the ring's share. The ring is built
  // from stable "shard-<i>" labels, NOT addresses — the same ring every
  // fleet client builds, so ownership and routing agree even though every
  // process binds an ephemeral port.
  std::function<bool(size_t)> owns;
  if (ring_size > 0) {
    if (ring_index >= ring_size) {
      std::fprintf(stderr, "--ring-index must be < --ring-size\n");
      return 1;
    }
    std::vector<std::string> labels;
    for (size_t i = 0; i < ring_size; ++i) {
      labels.push_back("shard-" + std::to_string(i));
    }
    owns = [ring = net::HashRing(labels, vnodes), ring_index,
            replicas](size_t index) {
      return ring.Owns(serving::SyntheticCurveId(index), ring_index,
                       replicas);
    };
  }

  // Durability (DESIGN.md §5j): with --wal-dir the catalog publishes go
  // through a journal and the sale ledger through a WAL, both rooted
  // under the directory. The journal opens FIRST — sale records resolve
  // their curve ids against the recovered catalog.
  const std::string wal_dir = bench::FlagString(argc, argv, "wal-dir", "");
  wal::WalOptions wal_options;
  const std::string fsync_name =
      bench::FlagString(argc, argv, "wal-fsync", "batch");
  if (!wal::ParseFsyncPolicy(fsync_name, &wal_options.fsync_policy)) {
    std::fprintf(stderr, "--wal-fsync must be none|batch|every (got %s)\n",
                 fsync_name.c_str());
    return 1;
  }

  std::unique_ptr<serving::CatalogJournal> journal;
  Status published = Status::OK();
  if (!wal_dir.empty()) {
    // The journal and ledger each mkdir their own leaf; the shared root
    // is ours to create.
    if (mkdir(wal_dir.c_str(), 0755) != 0 && errno != EEXIST) {
      std::fprintf(stderr, "mkdir %s: %s\n", wal_dir.c_str(),
                   std::strerror(errno));
      return 1;
    }
    auto opened = serving::CatalogJournal::Open(wal_dir + "/catalog",
                                                wal_options, &registry);
    if (!opened.ok()) {
      std::fprintf(stderr, "catalog journal open failed: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    journal = std::move(opened).value();
    if (journal->listings() == 0) {
      // Fresh journal: compile the synthetic share and journal every
      // publish. A restart rebuilds the catalog from the journal instead
      // of re-deriving it from whatever flags the new process was given.
      for (size_t i = 0; i < spec.num_curves && published.ok(); ++i) {
        if (owns != nullptr && !owns(i)) continue;
        published = journal
                        ->Publish(serving::SyntheticCurveId(i),
                                  serving::MakeSyntheticCurve(spec, i))
                        .status();
      }
    }
  } else {
    published = serving::PublishSyntheticCatalog(spec, &registry, owns);
  }
  if (!published.ok()) {
    std::fprintf(stderr, "catalog publish failed: %s\n",
                 published.ToString().c_str());
    return 1;
  }

  serving::PriceQueryEngine engine(&registry);

  // Fulfillment: on by default so any shard can sell. Seeds are flags so
  // an entire fleet can agree on them — a BUY that fails over to a
  // replica must deliver the same bytes (ClusterPriceClient::Buy pins
  // the transaction id, and bytes are a pure function of the seeds, the
  // curve, delta, and that id).
  std::unique_ptr<serving::FulfillmentEngine> fulfillment;
  if (flag("fulfill", 1) != 0) {
    serving::FulfillmentOptions fopts;
    fopts.epoch_seed =
        static_cast<uint64_t>(flag("epoch-seed", 0x5EED0001));
    fopts.dataset_seed = static_cast<uint64_t>(flag("dataset-seed", 0xD474));
    fopts.model_dim = static_cast<size_t>(flag("model-dim", 16));
    fopts.max_model_cache_bytes = static_cast<size_t>(
        flag("model-cache-bytes", 64.0 * 1024 * 1024));
    fulfillment =
        std::make_unique<serving::FulfillmentEngine>(&registry, fopts);
    if (!wal_dir.empty()) {
      // Charge-durable-then-deliver from here on: every first-delivery
      // BUY appends its sale record (fsync per --wal-fsync) before the
      // response leaves the process.
      const Status opened =
          fulfillment->OpenDurableLedger(wal_dir + "/ledger", wal_options);
      if (!opened.ok()) {
        std::fprintf(stderr, "sale ledger open failed: %s\n",
                     opened.ToString().c_str());
        return 1;
      }
    }
  }

  // Arm the kill-9-at-a-named-boundary hook LAST, so startup recovery
  // and catalog journaling cannot trip it — the harness aims it at the
  // serving-time money path (wal.append.torn, wal.crash.pre_fsync,
  // wal.crash.post_fsync, wal.checkpoint.pre_rename).
  const std::string crash_point =
      bench::FlagString(argc, argv, "crash-point", "");
  if (!crash_point.empty()) {
    fault::PointSchedule crash;
    crash.skip_first = static_cast<uint64_t>(flag("crash-after", 0));
    crash.max_fires = 1;
    fault::FaultInjector::Global().Arm(crash_point, crash);
  }

  net::ServerOptions server_options;
  server_options.fulfillment = fulfillment.get();
  server_options.port = port;
  server_options.num_shards = loops;
  server_options.default_curve_id =
      bench::FlagString(argc, argv, "default-curve", "");
  const std::string transport_name =
      bench::FlagString(argc, argv, "transport", "epoll");
  net::TransportKind transport_kind = net::TransportKind::kEpoll;
  if (!net::ParseTransportKind(transport_name, &transport_kind) ||
      transport_kind == net::TransportKind::kShm) {
    // shm is not a shard-loop replacement: it serves NEXT TO the TCP
    // listener, selected per-process via --shm=PATH.
    std::fprintf(stderr, "--transport must be epoll or uring (got %s)\n",
                 transport_name.c_str());
    return 1;
  }
  if (transport_kind == net::TransportKind::kUring &&
      !net::UringAvailable()) {
    std::fprintf(stderr,
                 "NOTE: io_uring unavailable on this kernel; shard loops "
                 "fall back to epoll\n");
  }
  server_options.transport = transport_kind;
  const std::string shm_path = bench::FlagString(argc, argv, "shm", "");
  if (!shm_path.empty()) {
    server_options.shm_path = shm_path;
    server_options.shm_slots = static_cast<size_t>(flag("shm-slots", 32));
    server_options.shm_shards = loops;
  }
  auto server = net::PriceServer::Start(&engine, server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }

  struct sigaction sa = {};
  sa.sa_handler = HandleSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);

  std::string ready_suffix;
  if (!shm_path.empty()) ready_suffix += " shm=" + shm_path;
  if (!wal_dir.empty()) {
    // What recovery found, summed over the catalog journal and the sale
    // ledger: after a clean (checkpointed) shutdown both replay zero
    // segment records and torn stays 0 — the observable the chaos
    // harness and the restart quick-start key on.
    uint64_t recovered = journal->recovery().records_replayed;
    uint64_t torn = journal->recovery().torn_tail;
    uint64_t recovery_ms = (journal->recovery().recovery_micros + 999) / 1000;
    if (fulfillment != nullptr) {
      const serving::FulfillmentStats fs = fulfillment->Stats();
      recovered += fs.recovery_records;
      torn += fs.recovery_torn_tail;
      recovery_ms += fs.recovery_ms;
    }
    char wal_info[160];
    std::snprintf(wal_info, sizeof(wal_info),
                  " wal=%s recovered=%llu torn=%llu recovery_ms=%llu",
                  wal_dir.c_str(),
                  static_cast<unsigned long long>(recovered),
                  static_cast<unsigned long long>(torn),
                  static_cast<unsigned long long>(recovery_ms));
    ready_suffix += wal_info;
  }
  std::printf("READY port=%u curves=%zu bytes=%zu%s\n", (*server)->port(),
              registry.resident_listings(), registry.resident_bytes(),
              ready_suffix.c_str());
  std::fflush(stdout);

  // Park until the launcher closes our stdin or a signal lands.
  while (!g_stop.load()) {
    struct pollfd pfd = {STDIN_FILENO, POLLIN, 0};
    const int n = poll(&pfd, 1, 200);
    if (n < 0 && errno != EINTR) break;
    if (n > 0) {
      char buf[256];
      const ssize_t r = read(STDIN_FILENO, buf, sizeof(buf));
      if (r <= 0) break;  // EOF (or error): launcher is gone
    }
  }
  (*server)->Shutdown();
  if (!wal_dir.empty()) {
    // Graceful drain: flush the WAL and write clean checkpoints, so the
    // next start recovers from the checkpoints alone (recovered=0 on its
    // READY line) instead of replaying segments.
    bool clean = true;
    uint64_t sales = 0;
    uint64_t wal_appends = 0;
    uint64_t wal_fsyncs = 0;
    double revenue = 0.0;
    if (fulfillment != nullptr) {
      const Status drained = fulfillment->Shutdown();
      if (!drained.ok()) {
        clean = false;
        std::fprintf(stderr, "ledger checkpoint failed: %s\n",
                     drained.ToString().c_str());
      }
      const serving::FulfillmentStats fs = fulfillment->Stats();
      sales = fs.transactions_recorded;
      wal_appends = fs.wal_appends;
      wal_fsyncs = fs.wal_fsyncs;
      revenue = fs.revenue;
    }
    const Status catalog_drained = journal->Checkpoint();
    if (!catalog_drained.ok()) {
      clean = false;
      std::fprintf(stderr, "catalog checkpoint failed: %s\n",
                   catalog_drained.ToString().c_str());
    }
    std::printf(
        "DRAIN sales=%llu revenue=%.17g wal_appends=%llu wal_fsyncs=%llu "
        "checkpoint=%s\n",
        static_cast<unsigned long long>(sales), revenue,
        static_cast<unsigned long long>(wal_appends),
        static_cast<unsigned long long>(wal_fsyncs),
        clean ? "clean" : "dirty");
    std::fflush(stdout);
  }
  return 0;
}

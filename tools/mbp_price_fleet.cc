// Multi-process fleet launcher (DESIGN.md §5g): fork/execs N
// mbp_catalog_shard processes on ephemeral ports, waits for each READY
// line, prints ONE machine-readable FLEET line, then keeps the children
// alive until its own stdin closes (or SIGTERM/SIGINT) — at which point
// every child's stdin closes too, the shards drain gracefully, and
// stragglers are killed after a bounded wait.
//
// Flags:
//   --n=N            shard processes (default 2)
//   --shard-bin=PATH mbp_catalog_shard binary (default: sibling of argv[0])
//   --partition      ring-partition the catalog (default: every shard
//                    holds the full catalog — the bit-identical-failover
//                    configuration)
//   --fault-shard=I  arm the chaos fault storm on shard I (default -1 = none)
//   --fault-seed=N   storm seed for --fault-shard (default 12648430)
//   --fault-scale=F  storm probability multiplier
//   --curves, --seed, --min-knots, --max-knots, --replicas, --vnodes,
//   --loops, --max-listings, --default-curve    forwarded to every shard
//
// Output: "FLEET endpoints=127.0.0.1:p0,127.0.0.1:p1,... labels=shard-0,
// shard-1,...\n" — paste the endpoints into bench_net --endpoints or feed
// them to ParseEndpoints; the labels are the ring names every shard used,
// to be passed as ClusterClientOptions::node_labels when --partition is on.

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

struct Child {
  pid_t pid = -1;
  int stdin_fd = -1;   // write end: closing it tells the shard to drain
  int stdout_fd = -1;  // read end: carries the READY line
  uint16_t port = 0;
};

// Reads the shard's "READY port=..." line (blocking, bounded by
// timeout_ms). Returns 0 on failure.
uint16_t ReadReadyPort(int fd, int timeout_ms) {
  std::string line;
  while (line.find('\n') == std::string::npos && line.size() < 4096) {
    struct pollfd pfd = {fd, POLLIN, 0};
    const int n = poll(&pfd, 1, timeout_ms);
    if (n <= 0) return 0;
    char buf[256];
    const ssize_t r = read(fd, buf, sizeof(buf));
    if (r <= 0) return 0;
    line.append(buf, static_cast<size_t>(r));
  }
  const size_t pos = line.find("READY port=");
  if (pos == std::string::npos) return 0;
  return static_cast<uint16_t>(
      std::atoi(line.c_str() + pos + std::strlen("READY port=")));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mbp;  // NOLINT
  const size_t n = static_cast<size_t>(
      bench::FlagValue(argc, argv, "n", 2));
  const bool partition = bench::FlagPresent(argc, argv, "partition");
  const int fault_shard = static_cast<int>(
      bench::FlagValue(argc, argv, "fault-shard", -1));
  const uint64_t fault_seed = static_cast<uint64_t>(
      bench::FlagValue(argc, argv, "fault-seed", 12648430));
  const double fault_scale = bench::FlagValue(argc, argv, "fault-scale", 1.0);

  std::string shard_bin = bench::FlagString(argc, argv, "shard-bin", "");
  if (shard_bin.empty()) {
    // Default: sibling binary next to this launcher.
    shard_bin = argv[0];
    const size_t slash = shard_bin.rfind('/');
    shard_bin = (slash == std::string::npos ? std::string()
                                            : shard_bin.substr(0, slash + 1)) +
                "mbp_catalog_shard";
  }

  // Forwarded verbatim to every shard (shards must agree on the catalog).
  std::vector<std::string> forwarded;
  for (const char* name : {"curves", "seed", "min-knots", "max-knots",
                           "replicas", "vnodes", "loops", "max-listings"}) {
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
        forwarded.push_back(argv[i]);
      }
    }
  }
  const std::string default_curve =
      bench::FlagString(argc, argv, "default-curve", "");
  if (!default_curve.empty()) {
    forwarded.push_back("--default-curve=" + default_curve);
  }

  signal(SIGPIPE, SIG_IGN);
  struct sigaction sa = {};
  sa.sa_handler = HandleSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  std::vector<Child> children(n);
  for (size_t i = 0; i < n; ++i) {
    int in_pipe[2], out_pipe[2];
    if (pipe(in_pipe) < 0 || pipe(out_pipe) < 0) {
      std::perror("pipe");
      return 1;
    }
    std::vector<std::string> args;
    args.push_back(shard_bin);
    args.push_back("--port=0");
    for (const std::string& f : forwarded) args.push_back(f);
    if (partition) {
      args.push_back("--ring-size=" + std::to_string(n));
      args.push_back("--ring-index=" + std::to_string(i));
    }
    if (fault_shard >= 0 && static_cast<size_t>(fault_shard) == i) {
      args.push_back("--fault-seed=" + std::to_string(fault_seed));
      args.push_back("--fault-scale=" + std::to_string(fault_scale));
    }
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      dup2(in_pipe[0], STDIN_FILENO);
      dup2(out_pipe[1], STDOUT_FILENO);
      close(in_pipe[0]);
      close(in_pipe[1]);
      close(out_pipe[0]);
      close(out_pipe[1]);
      std::vector<char*> cargs;
      for (std::string& a : args) cargs.push_back(a.data());
      cargs.push_back(nullptr);
      execv(shard_bin.c_str(), cargs.data());
      std::perror("execv");
      _exit(127);
    }
    close(in_pipe[0]);
    close(out_pipe[1]);
    children[i].pid = pid;
    children[i].stdin_fd = in_pipe[1];
    children[i].stdout_fd = out_pipe[0];
  }

  // Collect READY lines; shards compiling 100k-curve catalogs need time.
  bool all_ready = true;
  for (Child& child : children) {
    child.port = ReadReadyPort(child.stdout_fd, 120000);
    if (child.port == 0) all_ready = false;
  }
  if (!all_ready) {
    std::fprintf(stderr, "fleet: not every shard reported READY\n");
    for (Child& child : children) {
      if (child.pid > 0) kill(child.pid, SIGKILL);
    }
    return 1;
  }

  std::string endpoints, labels;
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) {
      endpoints += ",";
      labels += ",";
    }
    endpoints += "127.0.0.1:" + std::to_string(children[i].port);
    labels += "shard-" + std::to_string(i);
  }
  std::printf("FLEET endpoints=%s labels=%s\n", endpoints.c_str(),
              labels.c_str());
  std::fflush(stdout);

  // Park until our stdin closes or a signal lands; then tear down.
  while (!g_stop.load()) {
    struct pollfd pfd = {STDIN_FILENO, POLLIN, 0};
    const int r = poll(&pfd, 1, 200);
    if (r < 0 && errno != EINTR) break;
    if (r > 0) {
      char buf[256];
      const ssize_t got = read(STDIN_FILENO, buf, sizeof(buf));
      if (got <= 0) break;
    }
  }

  // Graceful: close each shard's stdin (its park loop exits and drains),
  // wait briefly, SIGKILL stragglers.
  for (Child& child : children) close(child.stdin_fd);
  const int kGraceMs = 5000;
  for (Child& child : children) {
    int waited = 0, status = 0;
    while (waited < kGraceMs) {
      const pid_t done = waitpid(child.pid, &status, WNOHANG);
      if (done == child.pid) {
        child.pid = -1;
        break;
      }
      usleep(50 * 1000);
      waited += 50;
    }
    if (child.pid > 0) {
      kill(child.pid, SIGKILL);
      waitpid(child.pid, &status, 0);
    }
    close(child.stdout_fd);
  }
  return 0;
}

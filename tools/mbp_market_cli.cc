// mbp_market_cli — command-line front end for the MBP library, so a data
// seller can run the full model-based-pricing workflow on a CSV dataset
// without writing C++:
//
//   mbp_market_cli train  --csv=data.csv --task=regression
//                         [--model=linear_regression] [--l2=0.001]
//                         [--out-model=model.mbp]
//     Trains the optimal model instance and reports train/test error.
//     Every subcommand also accepts --libsvm=data.libsvm instead of
//     --csv (sparse input, densified for the dense pipeline).
//
//   mbp_market_cli price  --csv=data.csv --task=classification
//                         [--model=logistic_regression] [--l2=0.01]
//                         [--points=10] [--x-min=10] [--x-max=100]
//                         [--max-value=100] [--value-shape=concave]
//                         [--demand-shape=uniform]
//                         [--out-pricing=pricing.mbp]
//     Runs market research -> revenue optimization and writes the
//     arbitrage-free pricing curve.
//
//   mbp_market_cli sell   --csv=data.csv --task=regression
//                         --pricing=pricing.mbp --budget=40
//                         [--out-model=instance.mbp] [--seed=42]
//     Stands up a broker with the stored pricing curve and buys the most
//     accurate instance the budget affords.
//
//   mbp_market_cli check-pricing --pricing=pricing.mbp
//     Verifies the arbitrage-freeness certificate and runs the attacker.
//
//   mbp_market_cli serve  --pricing=pricing.mbp [--queries=q.txt]
//                         [--curve-id=pricing] [--threads=0]
//                         [--quantum=0] [--invert-budget]
//     Compiles the stored curve into an immutable serving snapshot
//     (re-checking the certificate), publishes it in an in-process
//     registry, and answers price queries through the lock-free
//     PriceQueryEngine batch path. Queries are one x = 1/NCP per line
//     from --queries or stdin; each answer line is "x price". With
//     --invert-budget each input line is a budget and the answer is the
//     largest affordable x. --quantum snaps queries to a grid before
//     evaluation (see DESIGN.md §5b).
//
//     With --tcp[=PORT] the curve is served over TCP on 127.0.0.1
//     instead (epoll front end, DESIGN.md §5d). --tcp=N or --port=N
//     picks the port — 0 (the default) binds an ephemeral port, and the
//     actual port is printed as "listening on 127.0.0.1:<port>".
//     --shards=N sets event-loop shards (default 2). Each stdin line is
//     then a pricing file path to republish live under the same curve
//     id, or 'quit' to exit; stdin EOF keeps serving. SIGINT/SIGTERM
//     trigger a graceful drain (pending responses are flushed before
//     exit) and the serving metrics — including per-verb request counts
//     and fulfillment revenue — are printed on shutdown.
//
//     TCP serving also answers the fulfillment verbs (QUOTE/BUY/REPLAY,
//     DESIGN.md §5i) unless --no-sell is given. --epoch-seed=N and
//     --dataset-seed=N pin the noise/training seeds (defaults match
//     mbp_catalog_shard), --model-dim=N sets the sold model's
//     dimensionality, --model-cache-bytes=N the trained-model LRU
//     budget. --wal-dir=PATH makes the sale ledger crash-safe
//     (DESIGN.md §5j): sales append to a write-ahead log before
//     delivery, the ledger rebuilds from it on restart, and the drain
//     prints a durability summary; --wal-fsync=none|batch|every picks
//     the fsync policy (default batch).
//
//   mbp_market_cli buy    --port=N [--host=127.0.0.1] [--curve-id=ID]
//                         --delta=0.5 [--txn=N] [--no-quote]
//                         [--replay] [--out-weights=w.txt]
//     Buys a noised model instance over TCP from a `serve --tcp` (or
//     mbp_catalog_shard) process: QUOTEs the curve at δ, then BUYs with
//     the signed token so the paid price is exactly the quoted one
//     (--no-quote skips the token and buys at the live snapshot price).
//     --txn pins the transaction id (0 auto-generates one); re-running
//     with the same id re-delivers the recorded sale without charging
//     again, and --replay fetches it via the REPLAY verb instead.
//     --out-weights writes the delivered weights one per line.
//
//   mbp_market_cli simulate --csv=data.csv --task=regression
//                           [--buyers=1000] [--jitter=0.1]
//                           [--out-ledger=books.mbp] [curve flags as in
//                           `price`]
//     Prices the market, simulates a buyer population against it, audits
//     the SLA, and optionally writes the transaction ledger.

#include <sys/select.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "core/arbitrage.h"
#include "core/buyer_population.h"
#include "core/curves.h"
#include "core/ledger.h"
#include "core/market.h"
#include "data/csv.h"
#include "data/sparse_dataset.h"
#include "data/split.h"
#include "io/model_io.h"
#include "ml/metrics.h"
#include "ml/trainer.h"
#include "net/client.h"
#include "net/server.h"
#include "serving/fulfillment.h"
#include "serving/price_query_engine.h"
#include "serving/snapshot_registry.h"

namespace mbp {
namespace {

// ------------------------------------------------------------- flag utils

std::optional<std::string> StringFlag(int argc, char** argv,
                                      const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return std::nullopt;
}

double DoubleFlag(int argc, char** argv, const char* name, double fallback) {
  const auto value = StringFlag(argc, argv, name);
  return value ? std::atof(value->c_str()) : fallback;
}

bool BoolFlag(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 2; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

// --------------------------------------------------------- shared parsing

StatusOr<data::TaskType> ParseTask(const std::string& name) {
  if (name == "regression") return data::TaskType::kRegression;
  if (name == "classification") {
    return data::TaskType::kBinaryClassification;
  }
  return InvalidArgumentError("unknown task '" + name +
                              "' (want regression|classification)");
}

StatusOr<ml::ModelKind> ParseModel(const std::string& name) {
  if (name == "linear_regression") return ml::ModelKind::kLinearRegression;
  if (name == "logistic_regression") {
    return ml::ModelKind::kLogisticRegression;
  }
  if (name == "linear_svm") return ml::ModelKind::kLinearSvm;
  return InvalidArgumentError("unknown model '" + name + "'");
}

StatusOr<core::ValueShape> ParseValueShape(const std::string& name) {
  if (name == "linear") return core::ValueShape::kLinear;
  if (name == "convex") return core::ValueShape::kConvex;
  if (name == "concave") return core::ValueShape::kConcave;
  if (name == "sigmoid") return core::ValueShape::kSigmoid;
  return InvalidArgumentError("unknown value shape '" + name + "'");
}

StatusOr<core::DemandShape> ParseDemandShape(const std::string& name) {
  if (name == "uniform") return core::DemandShape::kUniform;
  if (name == "mid_peaked") return core::DemandShape::kMidPeaked;
  if (name == "extremes") return core::DemandShape::kExtremes;
  if (name == "high_accuracy") return core::DemandShape::kHighAccuracy;
  if (name == "low_accuracy") return core::DemandShape::kLowAccuracy;
  return InvalidArgumentError("unknown demand shape '" + name + "'");
}

ml::ModelKind DefaultModel(data::TaskType task) {
  return task == data::TaskType::kRegression
             ? ml::ModelKind::kLinearRegression
             : ml::ModelKind::kLogisticRegression;
}

struct LoadedData {
  data::TrainTestSplit split;
  ml::ModelKind model;
  double l2;
};

StatusOr<LoadedData> LoadCommon(int argc, char** argv) {
  const auto csv = StringFlag(argc, argv, "csv");
  const auto libsvm = StringFlag(argc, argv, "libsvm");
  if (!csv && !libsvm) {
    return InvalidArgumentError("--csv or --libsvm is required");
  }
  const auto task_name = StringFlag(argc, argv, "task");
  if (!task_name) return InvalidArgumentError("--task is required");
  MBP_ASSIGN_OR_RETURN(data::TaskType task, ParseTask(*task_name));

  StatusOr<data::Dataset> loaded_dataset = [&]() -> StatusOr<data::Dataset> {
    if (csv) {
      data::CsvReadOptions read_options;
      read_options.task = task;
      return data::ReadCsv(*csv, read_options);
    }
    MBP_ASSIGN_OR_RETURN(data::SparseDataset sparse,
                         data::ReadLibSvm(*libsvm, task));
    return sparse.ToDense();
  }();
  MBP_ASSIGN_OR_RETURN(data::Dataset dataset, std::move(loaded_dataset));
  random::Rng rng(
      static_cast<uint64_t>(DoubleFlag(argc, argv, "seed", 42)));
  MBP_ASSIGN_OR_RETURN(data::TrainTestSplit split,
                       data::RandomSplit(dataset, 0.25, rng));

  ml::ModelKind model = DefaultModel(task);
  if (const auto model_name = StringFlag(argc, argv, "model")) {
    MBP_ASSIGN_OR_RETURN(model, ParseModel(*model_name));
  }
  return LoadedData{std::move(split), model,
                    DoubleFlag(argc, argv, "l2", 1e-3)};
}

StatusOr<std::vector<core::CurvePoint>> ResearchFromFlags(int argc,
                                                          char** argv) {
  core::MarketCurveOptions options;
  options.num_points =
      static_cast<size_t>(DoubleFlag(argc, argv, "points", 10));
  options.x_min = DoubleFlag(argc, argv, "x-min", 10.0);
  options.x_max = DoubleFlag(argc, argv, "x-max", 100.0);
  options.max_value = DoubleFlag(argc, argv, "max-value", 100.0);
  if (const auto shape = StringFlag(argc, argv, "value-shape")) {
    MBP_ASSIGN_OR_RETURN(options.value_shape, ParseValueShape(*shape));
  } else {
    options.value_shape = core::ValueShape::kConcave;
  }
  if (const auto shape = StringFlag(argc, argv, "demand-shape")) {
    MBP_ASSIGN_OR_RETURN(options.demand_shape, ParseDemandShape(*shape));
  }
  return core::MakeMarketCurve(options);
}

// ---------------------------------------------------------- subcommands

int RunTrain(int argc, char** argv) {
  auto loaded = LoadCommon(argc, argv);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  auto trained = ml::TrainOptimalModel(loaded->model, loaded->split.train,
                                       loaded->l2);
  if (!trained.ok()) return Fail(trained.status().ToString());

  std::printf("model: %s  (d=%zu, n_train=%zu, n_test=%zu, l2=%g)\n",
              ml::ModelKindToString(loaded->model).c_str(),
              loaded->split.train.num_features(),
              loaded->split.train.num_examples(),
              loaded->split.test.num_examples(), loaded->l2);
  std::printf("training objective: %.6f  (converged: %s, iterations: %zu)\n",
              trained->final_loss, trained->converged ? "yes" : "no",
              trained->iterations);
  if (loaded->split.train.task() == data::TaskType::kRegression) {
    std::printf("test MSE: %.6f   test R^2: %.4f\n",
                ml::MeanSquaredError(trained->model, loaded->split.test),
                ml::RSquared(trained->model, loaded->split.test));
  } else {
    std::printf("test 0/1 error: %.4f   accuracy: %.4f\n",
                ml::MisclassificationRate(trained->model,
                                          loaded->split.test),
                ml::Accuracy(trained->model, loaded->split.test));
  }
  if (const auto out = StringFlag(argc, argv, "out-model")) {
    const Status status = io::WriteModel(trained->model, *out);
    if (!status.ok()) return Fail(status.ToString());
    std::printf("wrote model to %s\n", out->c_str());
  }
  return 0;
}

int RunPrice(int argc, char** argv) {
  auto loaded = LoadCommon(argc, argv);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  auto research = ResearchFromFlags(argc, argv);
  if (!research.ok()) return Fail(research.status().ToString());

  auto seller = core::Seller::Create("cli-seller", std::move(loaded->split),
                                     *research);
  if (!seller.ok()) return Fail(seller.status().ToString());
  core::ModelListing listing;
  listing.model = loaded->model;
  listing.l2 = loaded->l2;
  listing.test_error =
      seller->train().task() == data::TaskType::kRegression
          ? ml::LossKind::kSquare
          : ml::LossKind::kZeroOne;
  core::Broker::Options options;
  options.seed = static_cast<uint64_t>(DoubleFlag(argc, argv, "seed", 42));
  auto broker = core::Broker::Create(std::move(seller).value(), listing,
                                     options);
  if (!broker.ok()) return Fail(broker.status().ToString());

  std::printf("%10s %12s %10s\n", "1/NCP", "E[error]", "price");
  for (const core::QuotePoint& quote : broker->QuoteCurve(10)) {
    std::printf("%10.2f %12.5f %10.2f\n", quote.x, quote.expected_error,
                quote.price);
  }
  if (const auto out = StringFlag(argc, argv, "out-pricing")) {
    const Status status = io::WritePricing(broker->pricing(), *out);
    if (!status.ok()) return Fail(status.ToString());
    std::printf("wrote pricing curve to %s\n", out->c_str());
  }
  return 0;
}

int RunSell(int argc, char** argv) {
  auto loaded = LoadCommon(argc, argv);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  const auto pricing_path = StringFlag(argc, argv, "pricing");
  if (!pricing_path) return Fail("--pricing is required");
  auto pricing = io::ReadPricing(*pricing_path);
  if (!pricing.ok()) return Fail(pricing.status().ToString());
  const double budget = DoubleFlag(argc, argv, "budget", -1.0);
  if (budget < 0.0) return Fail("--budget is required (>= 0)");

  core::MarketCurveOptions placeholder;  // research unused with fixed pricing
  placeholder.x_min = pricing->points().front().x;
  placeholder.x_max = pricing->points().back().x * 1.001;
  auto research = core::MakeMarketCurve(placeholder);
  if (!research.ok()) return Fail(research.status().ToString());
  auto seller = core::Seller::Create("cli-seller", std::move(loaded->split),
                                     std::move(research).value());
  if (!seller.ok()) return Fail(seller.status().ToString());

  core::ModelListing listing;
  listing.model = loaded->model;
  listing.l2 = loaded->l2;
  listing.test_error =
      seller->train().task() == data::TaskType::kRegression
          ? ml::LossKind::kSquare
          : ml::LossKind::kZeroOne;
  core::Broker::Options options;
  options.seed = static_cast<uint64_t>(DoubleFlag(argc, argv, "seed", 42));
  auto broker = core::Broker::CreateWithPricing(
      std::move(seller).value(), listing, std::move(pricing).value(),
      options);
  if (!broker.ok()) return Fail(broker.status().ToString());

  auto txn = broker->BuyWithPriceBudget(budget);
  if (!txn.ok()) return Fail(txn.status().ToString());
  std::printf(
      "sold instance #%llu: price %.2f (budget %.2f), NCP %.5f, quoted "
      "E[error] %.5f\n",
      static_cast<unsigned long long>(txn->id), txn->price, budget,
      txn->delta, txn->quoted_expected_error);
  if (const auto out = StringFlag(argc, argv, "out-model")) {
    const Status status = io::WriteModel(txn->instance, *out);
    if (!status.ok()) return Fail(status.ToString());
    std::printf("wrote purchased instance to %s\n", out->c_str());
  }
  return 0;
}

int RunCheckPricing(int argc, char** argv) {
  const auto pricing_path = StringFlag(argc, argv, "pricing");
  if (!pricing_path) return Fail("--pricing is required");
  auto pricing = io::ReadPricing(*pricing_path);
  if (!pricing.ok()) return Fail(pricing.status().ToString());

  const Status certificate = pricing->ValidateArbitrageFree();
  std::printf("certificate (monotone + ratio non-increasing): %s\n",
              certificate.ok() ? "OK" : certificate.ToString().c_str());
  const auto price = [&](double x) { return pricing->PriceAtInverseNcp(x); };
  const double x_max = pricing->points().back().x * 2.0;
  auto attack = core::FindArbitrageAttack(price, x_max, 200);
  if (attack.has_value()) {
    std::printf(
        "attacker FOUND arbitrage: combine %zu instances, pay %.4f "
        "instead of %.4f at 1/NCP=%.2f\n",
        attack->purchase_deltas.size(), attack->total_price,
        attack->target_price, 1.0 / attack->target_delta);
    return 2;
  }
  std::printf("attacker found no arbitrage on a %d-point grid up to "
              "1/NCP=%.1f\n",
              200, x_max);
  return certificate.ok() ? 0 : 2;
}

// SIGINT/SIGTERM request a graceful drain of the TCP serving loop
// instead of killing the process mid-response.
volatile std::sig_atomic_t g_serve_shutdown = 0;
void HandleServeSignal(int) { g_serve_shutdown = 1; }

int RunServeTcp(int argc, char** argv, serving::SnapshotRegistry* registry,
                serving::PriceQueryEngine* engine,
                const serving::SnapshotRegistry::CurveSlot* slot,
                const std::string& curve_id) {
  net::ServerOptions options;
  options.port = static_cast<uint16_t>(DoubleFlag(argc, argv, "port", 0));
  if (const auto tcp_port = StringFlag(argc, argv, "tcp")) {
    options.port = static_cast<uint16_t>(std::atoi(tcp_port->c_str()));
  }
  options.num_shards =
      static_cast<size_t>(DoubleFlag(argc, argv, "shards", 2));
  options.default_curve_id = curve_id;
  // Fulfillment (QUOTE/BUY/REPLAY, DESIGN.md §5i): on unless --no-sell.
  // The engine must outlive the server, which holds a raw pointer.
  std::unique_ptr<serving::FulfillmentEngine> fulfillment;
  if (!BoolFlag(argc, argv, "no-sell")) {
    serving::FulfillmentOptions fopts;
    fopts.epoch_seed = static_cast<uint64_t>(
        DoubleFlag(argc, argv, "epoch-seed",
                   static_cast<double>(fopts.epoch_seed)));
    fopts.dataset_seed = static_cast<uint64_t>(
        DoubleFlag(argc, argv, "dataset-seed",
                   static_cast<double>(fopts.dataset_seed)));
    fopts.model_dim = static_cast<size_t>(
        DoubleFlag(argc, argv, "model-dim",
                   static_cast<double>(fopts.model_dim)));
    fopts.max_model_cache_bytes = static_cast<size_t>(
        DoubleFlag(argc, argv, "model-cache-bytes",
                   static_cast<double>(fopts.max_model_cache_bytes)));
    fulfillment =
        std::make_unique<serving::FulfillmentEngine>(registry, fopts);
    if (const auto wal_dir = StringFlag(argc, argv, "wal-dir")) {
      wal::WalOptions wal_options;
      const auto fsync_name = StringFlag(argc, argv, "wal-fsync");
      if (fsync_name &&
          !wal::ParseFsyncPolicy(*fsync_name, &wal_options.fsync_policy)) {
        return Fail("--wal-fsync must be none|batch|every");
      }
      const Status opened =
          fulfillment->OpenDurableLedger(*wal_dir, wal_options);
      if (!opened.ok()) {
        return Fail("sale ledger open failed: " + opened.ToString());
      }
      const serving::FulfillmentStats fs = fulfillment->Stats();
      std::printf("sale ledger: %s (%s fsync), recovered %llu sales "
                  "(%llu torn) in %llu ms\n",
                  wal_dir->c_str(),
                  std::string(wal::FsyncPolicyName(
                                  wal_options.fsync_policy)).c_str(),
                  static_cast<unsigned long long>(fs.recovery_records),
                  static_cast<unsigned long long>(fs.recovery_torn_tail),
                  static_cast<unsigned long long>(fs.recovery_ms));
    }
    options.fulfillment = fulfillment.get();
  }
  auto server = net::PriceServer::Start(engine, options);
  if (!server.ok()) return Fail(server.status().ToString());

  g_serve_shutdown = 0;
  std::signal(SIGINT, HandleServeSignal);
  std::signal(SIGTERM, HandleServeSignal);

  const auto snapshot = slot->Load();
  std::printf("serving '%s': %zu knots, x_max %.4g, max price %.4g "
              "(snapshot v%llu)\n",
              curve_id.c_str(), snapshot->num_knots(), snapshot->x_max(),
              snapshot->max_price(),
              static_cast<unsigned long long>(snapshot->version()));
  // Tests and scripts parse this line for the resolved ephemeral port;
  // flush so it is visible before the first query arrives.
  std::printf("listening on 127.0.0.1:%u (%zu shards)\n",
              (*server)->port(), options.num_shards);
  std::printf("stdin: a pricing file path republishes '%s' live; 'quit' "
              "drains and exits\n",
              curve_id.c_str());
  std::fflush(stdout);

  bool stdin_open = true;
  while (!g_serve_shutdown) {
    fd_set readable;
    FD_ZERO(&readable);
    if (stdin_open) FD_SET(STDIN_FILENO, &readable);
    timeval timeout{0, 200 * 1000};  // re-check the signal flag at 5 Hz
    const int n = select(stdin_open ? STDIN_FILENO + 1 : 0,
                         stdin_open ? &readable : nullptr, nullptr, nullptr,
                         &timeout);
    if (n < 0) {
      if (errno == EINTR) continue;  // a signal lands; the loop re-checks
      break;
    }
    if (n == 0 || !stdin_open) continue;
    char line[4096];
    if (std::fgets(line, sizeof(line), stdin) == nullptr) {
      stdin_open = false;  // EOF: keep serving until a signal arrives
      continue;
    }
    std::string command(line);
    while (!command.empty() &&
           (command.back() == '\n' || command.back() == '\r' ||
            command.back() == ' ')) {
      command.pop_back();
    }
    if (command.empty()) continue;
    if (command == "quit" || command == "exit") break;
    // Live republish: clients keep querying across the swap and every
    // response still comes from one complete snapshot (old or new).
    auto pricing = io::ReadPricing(command);
    if (!pricing.ok()) {
      std::printf("republish failed: %s\n",
                  pricing.status().ToString().c_str());
      std::fflush(stdout);
      continue;
    }
    auto republished = registry->Publish(curve_id, *pricing);
    if (!republished.ok()) {
      std::printf("republish rejected: %s\n",
                  republished.status().ToString().c_str());
      std::fflush(stdout);
      continue;
    }
    const auto republished_snapshot = slot->Load();
    std::printf("republished '%s' (snapshot v%llu, %zu knots)\n",
                curve_id.c_str(),
                static_cast<unsigned long long>(
                    republished_snapshot->version()),
                republished_snapshot->num_knots());
    std::fflush(stdout);
  }

  (*server)->Shutdown();
  if (fulfillment != nullptr && fulfillment->durable()) {
    // Flush + clean checkpoint, so the next --wal-dir start replays
    // zero segment records.
    const Status drained = fulfillment->Shutdown();
    if (!drained.ok()) {
      std::printf("ledger checkpoint failed: %s\n",
                  drained.ToString().c_str());
    }
  }
  const net::StatsPayload stats = (*server)->stats();
  std::printf(
      "drained: %llu requests ok, %llu errors, %llu queries in %llu "
      "batches; p50 %.1f us, p99 %.1f us; %llu connections accepted\n",
      static_cast<unsigned long long>(stats.requests_ok),
      static_cast<unsigned long long>(stats.requests_error),
      static_cast<unsigned long long>(stats.queries),
      static_cast<unsigned long long>(stats.batches),
      stats.latency.QuantileMicros(0.5), stats.latency.QuantileMicros(0.99),
      static_cast<unsigned long long>(stats.connections_accepted));
  static const char* const kVerbNames[] = {
      "",      "PRICE_AT", "BUDGET_TO_X", "SNAPSHOT_INFO",
      "STATS", "QUOTE",    "BUY",         "REPLAY"};
  std::printf("requests by verb:");
  for (size_t v = 1; v < net::kNumVerbSlots; ++v) {
    if (stats.requests_by_verb[v] == 0) continue;
    std::printf(" %s=%llu", kVerbNames[v],
                static_cast<unsigned long long>(stats.requests_by_verb[v]));
  }
  std::printf("\n");
  if (stats.buys_ok > 0 || stats.transactions_recorded > 0) {
    std::printf(
        "fulfillment: %llu sales, revenue %.2f, %llu recorded; model cache "
        "%llu/%llu hit/miss, %llu evictions, %llu bytes; sale p99 %.1f us\n",
        static_cast<unsigned long long>(stats.buys_ok), stats.revenue,
        static_cast<unsigned long long>(stats.transactions_recorded),
        static_cast<unsigned long long>(stats.model_cache_hits),
        static_cast<unsigned long long>(stats.model_cache_misses),
        static_cast<unsigned long long>(stats.model_cache_evictions),
        static_cast<unsigned long long>(stats.model_cache_bytes),
        stats.fulfillment_latency.QuantileMicros(0.99));
  }
  if (stats.wal_appends + stats.recovery_records > 0) {
    std::printf(
        "durability: %llu wal appends (%llu fsyncs, %llu bytes); recovery "
        "replayed %llu records, %llu torn, %llu ms; checkpoint=clean\n",
        static_cast<unsigned long long>(stats.wal_appends),
        static_cast<unsigned long long>(stats.wal_fsyncs),
        static_cast<unsigned long long>(stats.wal_bytes),
        static_cast<unsigned long long>(stats.recovery_records),
        static_cast<unsigned long long>(stats.recovery_torn_tail),
        static_cast<unsigned long long>(stats.recovery_ms));
  }
  if (stats.requests_shed + stats.deadline_drops + stats.connections_killed +
          stats.connections_refused >
      0) {
    std::printf(
        "degraded: %llu shed, %llu deadline drops, %llu killed, %llu "
        "refused\n",
        static_cast<unsigned long long>(stats.requests_shed),
        static_cast<unsigned long long>(stats.deadline_drops),
        static_cast<unsigned long long>(stats.connections_killed),
        static_cast<unsigned long long>(stats.connections_refused));
  }
  return 0;
}

int RunServe(int argc, char** argv) {
  const auto pricing_path = StringFlag(argc, argv, "pricing");
  if (!pricing_path) return Fail("--pricing is required");
  auto pricing = io::ReadPricing(*pricing_path);
  if (!pricing.ok()) return Fail(pricing.status().ToString());
  const std::string curve_id =
      StringFlag(argc, argv, "curve-id").value_or("pricing");

  // Publish: compiles the curve into an immutable snapshot, re-checking
  // the arbitrage-freeness certificate (a tampered pricing file is
  // rejected here, before it can serve a single price).
  serving::SnapshotRegistry registry;
  auto published = registry.Publish(curve_id, *pricing);
  if (!published.ok()) return Fail(published.status().ToString());
  const serving::SnapshotRegistry::CurveSlot* slot = *published;

  serving::PriceQueryEngineOptions engine_options;
  engine_options.quantum = DoubleFlag(argc, argv, "quantum", 0.0);
  serving::PriceQueryEngine engine(&registry, engine_options);

  if (BoolFlag(argc, argv, "tcp") ||
      StringFlag(argc, argv, "tcp").has_value()) {
    return RunServeTcp(argc, argv, &registry, &engine, slot, curve_id);
  }

  // One query per line, from --queries or stdin.
  FILE* in = stdin;
  if (const auto queries_path = StringFlag(argc, argv, "queries")) {
    in = std::fopen(queries_path->c_str(), "r");
    if (in == nullptr) {
      return Fail("cannot open --queries=" + *queries_path);
    }
  }
  std::vector<double> queries;
  double value = 0.0;
  while (std::fscanf(in, "%lf", &value) == 1) queries.push_back(value);
  if (in != stdin) std::fclose(in);

  const bool invert = BoolFlag(argc, argv, "invert-budget");
  const auto snapshot = slot->Load();
  std::printf("serving '%s': %zu knots, x_max %.4g, max price %.4g "
              "(snapshot v%llu)\n",
              curve_id.c_str(), snapshot->num_knots(), snapshot->x_max(),
              snapshot->max_price(),
              static_cast<unsigned long long>(snapshot->version()));
  if (invert) {
    for (const double budget : queries) {
      auto x = engine.BudgetToInverseNcp(slot, budget);
      if (!x.ok()) return Fail(x.status().ToString());
      std::printf("%.17g %.17g\n", budget, x.value());
    }
  } else {
    ParallelConfig parallel;
    parallel.num_threads =
        static_cast<size_t>(DoubleFlag(argc, argv, "threads", 0));
    std::vector<double> prices(queries.size());
    const Status status = engine.PriceBatch(
        slot, queries.data(), prices.data(), queries.size(), parallel);
    if (!status.ok()) return Fail(status.ToString());
    for (size_t i = 0; i < queries.size(); ++i) {
      std::printf("%.17g %.17g\n", queries[i], prices[i]);
    }
  }
  std::printf("served %zu %s queries\n", queries.size(),
              invert ? "budget" : "price");
  return 0;
}

// Remote purchase over the wire protocol: QUOTE -> BUY with the signed
// token (so the paid price is the quoted one), or straight BUY with
// --no-quote, or REPLAY of a recorded sale with --replay. The client's
// retry ladder is safe here: the server ledger dedupes the transaction
// id, so a retried BUY is charged once (DESIGN.md §5i).
int RunBuy(int argc, char** argv) {
  const uint16_t port =
      static_cast<uint16_t>(DoubleFlag(argc, argv, "port", 0));
  if (port == 0) return Fail("--port is required (a serve --tcp port)");
  const std::string host =
      StringFlag(argc, argv, "host").value_or("127.0.0.1");
  const std::string curve_id =
      StringFlag(argc, argv, "curve-id").value_or("");
  const uint64_t txn =
      static_cast<uint64_t>(DoubleFlag(argc, argv, "txn", 0));

  auto client = net::PriceClient::Connect(host, port);
  if (!client.ok()) return Fail(client.status().ToString());

  net::BuyPayload sale;
  if (BoolFlag(argc, argv, "replay")) {
    if (txn == 0) return Fail("--replay requires --txn=<id>");
    auto replayed = (*client)->Replay(txn);
    if (!replayed.ok()) return Fail(replayed.status().ToString());
    sale = std::move(replayed).value();
  } else {
    const double delta = DoubleFlag(argc, argv, "delta", 0.0);
    if (delta <= 0.0) return Fail("--delta is required (> 0)");
    std::string token;
    if (!BoolFlag(argc, argv, "no-quote")) {
      auto quote = (*client)->Quote(curve_id, delta);
      if (!quote.ok()) return Fail(quote.status().ToString());
      std::printf("quoted price %.4f at delta %.6g (token %zu bytes)\n",
                  quote->price, quote->delta, quote->token.size());
      token = std::move(quote->token);
    }
    auto bought = (*client)->Buy(curve_id, delta, txn, token);
    if (!bought.ok()) return Fail(bought.status().ToString());
    sale = std::move(bought).value();
  }

  std::printf(
      "sale txn=%llu curve-ref=%lu delta=%.6g price=%.4f "
      "seed-commitment=%016llx: %zu weights\n",
      static_cast<unsigned long long>(sale.record.txn_id),
      static_cast<unsigned long>(sale.record.curve_ref), sale.record.delta,
      sale.record.price,
      static_cast<unsigned long long>(sale.record.seed_commitment),
      sale.weights.size());
  if (const auto out = StringFlag(argc, argv, "out-weights")) {
    FILE* f = std::fopen(out->c_str(), "w");
    if (f == nullptr) return Fail("cannot open --out-weights=" + *out);
    for (const double w : sale.weights) std::fprintf(f, "%.17g\n", w);
    std::fclose(f);
    std::printf("wrote %zu weights to %s\n", sale.weights.size(),
                out->c_str());
  } else {
    const size_t shown = sale.weights.size() < 4 ? sale.weights.size() : 4;
    for (size_t i = 0; i < shown; ++i) {
      std::printf("  w[%zu] = %.17g\n", i, sale.weights[i]);
    }
    if (shown < sale.weights.size()) {
      std::printf("  ... (%zu more; --out-weights=FILE for all)\n",
                  sale.weights.size() - shown);
    }
  }
  return 0;
}

int RunSimulate(int argc, char** argv) {
  auto loaded = LoadCommon(argc, argv);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  auto research = ResearchFromFlags(argc, argv);
  if (!research.ok()) return Fail(research.status().ToString());
  const std::vector<core::CurvePoint> curve = research.value();

  auto seller = core::Seller::Create("cli-seller", std::move(loaded->split),
                                     curve);
  if (!seller.ok()) return Fail(seller.status().ToString());
  core::ModelListing listing;
  listing.model = loaded->model;
  listing.l2 = loaded->l2;
  listing.test_error =
      seller->train().task() == data::TaskType::kRegression
          ? ml::LossKind::kSquare
          : ml::LossKind::kZeroOne;
  core::Broker::Options broker_options;
  broker_options.seed =
      static_cast<uint64_t>(DoubleFlag(argc, argv, "seed", 42));
  auto broker = core::Broker::Create(std::move(seller).value(), listing,
                                     broker_options);
  if (!broker.ok()) return Fail(broker.status().ToString());

  const Status sla = broker->VerifySla();
  std::printf("SLA audit: %s\n", sla.ok() ? "OK" : sla.ToString().c_str());

  core::PopulationOptions population;
  population.num_buyers =
      static_cast<size_t>(DoubleFlag(argc, argv, "buyers", 1000));
  population.valuation_jitter = DoubleFlag(argc, argv, "jitter", 0.0);
  random::Rng rng(
      static_cast<uint64_t>(DoubleFlag(argc, argv, "seed", 42)) + 1);
  auto outcome =
      core::SimulateBuyerPopulation(*broker, curve, population, rng);
  if (!outcome.ok()) return Fail(outcome.status().ToString());

  std::printf(
      "buyers %zu: %zu sales, %zu priced out (affordability %.3f)\n"
      "revenue %.2f (expected per-buyer %.4f, realized %.4f)\n",
      outcome->buyers, outcome->sales, outcome->priced_out,
      outcome->affordability, outcome->revenue,
      outcome->expected_revenue_per_buyer,
      outcome->revenue / static_cast<double>(outcome->buyers));

  if (const auto out = StringFlag(argc, argv, "out-ledger")) {
    core::TransactionLedger ledger;
    for (const core::Transaction& txn : broker->transactions()) {
      const Status status = ledger.Append(core::LedgerRecord{
          "cli-listing", txn.id, txn.delta, txn.price,
          txn.quoted_expected_error});
      if (!status.ok()) return Fail(status.ToString());
    }
    const Status status = ledger.SaveTo(*out);
    if (!status.ok()) return Fail(status.ToString());
    std::printf("wrote %zu ledger records to %s\n", ledger.size(),
                out->c_str());
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: mbp_market_cli "
                 "<train|price|sell|check-pricing|serve|buy|simulate> "
                 "[flags]\n(see "
                 "the header comment of tools/mbp_market_cli.cc for flag "
                 "documentation)\n");
    return 1;
  }
  const std::string command = argv[1];
  if (command == "train") return RunTrain(argc, argv);
  if (command == "price") return RunPrice(argc, argv);
  if (command == "sell") return RunSell(argc, argv);
  if (command == "check-pricing") return RunCheckPricing(argc, argv);
  if (command == "serve") return RunServe(argc, argv);
  if (command == "buy") return RunBuy(argc, argv);
  if (command == "simulate") return RunSimulate(argc, argv);
  return Fail("unknown command '" + command + "'");
}

}  // namespace
}  // namespace mbp

int main(int argc, char** argv) { return mbp::Main(argc, argv); }

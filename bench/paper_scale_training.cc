// Capability check for the paper-scale datasets (Table 3 lists up to 7.5M
// training rows): trains the broker's one-time optimal model at a chosen
// fraction of Simulated1/Simulated2 scale and reports wall time and
// throughput for each training algorithm. Run with --scale=1 to train at
// the full paper sizes (minutes).
//
// Usage: paper_scale_training [--scale=0.01]

#include <cstdio>

#include "bench/bench_util.h"
#include "common/check.h"
#include "common/timer.h"
#include "data/synthetic.h"
#include "ml/metrics.h"
#include "ml/sgd.h"
#include "ml/trainer.h"

namespace mbp {
namespace {

void Run(double scale) {
  bench::PrintHeader("Paper-scale training capability (scale=" +
                     std::to_string(scale) + ")");
  const auto rows = static_cast<size_t>(7'500'000 * scale);
  std::printf("%-34s %12s %12s %14s %10s\n", "algorithm", "rows", "d",
              "seconds", "Mrows/s");
  bench::PrintRule(88);

  // Regression: closed form (Cholesky normal equations) and SGD.
  {
    data::Simulated1Options options;
    options.num_examples = rows;
    options.num_features = 20;
    options.noise_stddev = 0.1;
    const data::Dataset dataset =
        data::GenerateSimulated1(options).value();

    Timer closed_form;
    auto exact = ml::TrainLinearRegression(dataset, 1e-4);
    MBP_CHECK(exact.ok());
    const double closed_seconds = closed_form.ElapsedSeconds();
    std::printf("%-34s %12zu %12zu %14.3f %10.2f\n",
                "linreg / closed form (Cholesky)", rows, size_t{20},
                closed_seconds, rows / closed_seconds / 1e6);

    ml::SquareLoss loss(1e-4);
    ml::SgdOptions sgd_options;
    sgd_options.max_epochs = 3;
    sgd_options.batch_size = 256;
    sgd_options.gradient_tolerance = 0.0;
    Timer sgd_timer;
    auto sgd = ml::TrainSgd(loss, dataset,
                            ml::ModelKind::kLinearRegression, sgd_options);
    MBP_CHECK(sgd.ok());
    const double sgd_seconds = sgd_timer.ElapsedSeconds();
    std::printf("%-34s %12zu %12zu %14.3f %10.2f\n",
                "linreg / SGD (3 epochs)", rows, size_t{20}, sgd_seconds,
                3.0 * rows / sgd_seconds / 1e6);
    std::printf("    final losses: closed form %.6f, SGD %.6f\n",
                exact->final_loss, sgd->final_loss);
  }

  // Classification: Newton and SGD.
  {
    data::Simulated2Options options;
    options.num_examples = rows;
    options.num_features = 20;
    const data::Dataset dataset =
        data::GenerateSimulated2(options).value();

    Timer newton_timer;
    auto newton = ml::TrainOptimalModel(ml::ModelKind::kLogisticRegression,
                                        dataset, 1e-3);
    MBP_CHECK(newton.ok());
    const double newton_seconds = newton_timer.ElapsedSeconds();
    std::printf("%-34s %12zu %12zu %14.3f %10.2f\n",
                "logreg / Newton", rows, size_t{20}, newton_seconds,
                newton->iterations * rows / newton_seconds / 1e6);

    ml::LogisticLoss loss(1e-3);
    ml::SgdOptions sgd_options;
    sgd_options.max_epochs = 3;
    sgd_options.batch_size = 256;
    sgd_options.initial_step = 0.5;
    sgd_options.gradient_tolerance = 0.0;
    Timer sgd_timer;
    auto sgd = ml::TrainSgd(loss, dataset,
                            ml::ModelKind::kLogisticRegression,
                            sgd_options);
    MBP_CHECK(sgd.ok());
    const double sgd_seconds = sgd_timer.ElapsedSeconds();
    std::printf("%-34s %12zu %12zu %14.3f %10.2f\n",
                "logreg / SGD (3 epochs)", rows, size_t{20}, sgd_seconds,
                3.0 * rows / sgd_seconds / 1e6);
    std::printf("    0/1 train error: Newton %.4f, SGD %.4f\n",
                ml::MisclassificationRate(newton->model, dataset),
                ml::MisclassificationRate(sgd->model, dataset));
  }
  std::printf(
      "\nTraining is the broker's ONE-TIME cost per listing; each sale "
      "afterwards is a\nsingle O(d) noise draw (see BM_GaussianPerturb in "
      "micro_benchmarks).\n");
}

}  // namespace
}  // namespace mbp

int main(int argc, char** argv) {
  const double scale = mbp::bench::FlagValue(argc, argv, "scale", 0.01);
  mbp::Run(scale);
  return 0;
}

// Reproduces Figure 7 (revenue and affordability gain, varying the buyer
// value curve): the demand curve is held fixed (unimodal, mid-peaked) and
// the value curve switches from convex (panel a/c/e/g) to concave
// (panel b/d/f/h). MBP is compared against Lin, MaxC, MedC and OptC.
//
// Paper shape: MBP attains the highest revenue in both settings — with
// large gains over Lin on the convex curve (Lin's chord prices medium-
// accuracy buyers out) and over the single-price baselines on the concave
// curve (which MBP matches exactly, since concave curves are subadditive).

#include "bench/bench_util.h"
#include "bench/market_comparison.h"
#include "common/check.h"
#include "core/curves.h"

namespace mbp {
namespace {

void RunPanel(const char* label, core::ValueShape value_shape) {
  core::MarketCurveOptions options;
  options.num_points = 10;
  options.x_min = 10.0;
  options.x_max = 100.0;
  options.max_value = 100.0;
  options.value_shape = value_shape;
  options.demand_shape = core::DemandShape::kMidPeaked;
  auto curve = core::MakeMarketCurve(options);
  MBP_CHECK(curve.ok());

  bench::PrintMarketCurve(
      std::string("Figure 7") + label + ": value curve = " +
          core::ValueShapeToString(value_shape) + ", demand = mid-peaked",
      *curve);
  bench::PrintComparison(*curve, bench::CompareMethods(*curve));
}

}  // namespace
}  // namespace mbp

int main() {
  mbp::RunPanel("(a,c,e,g)", mbp::core::ValueShape::kConvex);
  mbp::RunPanel("(b,d,f,h)", mbp::core::ValueShape::kConcave);
  return 0;
}

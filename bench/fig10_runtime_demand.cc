// Reproduces Figure 10 (runtime performance, varying the buyer demand
// curve): with the value curve fixed (concave), sweep the number of price
// points n under a mid-peaked demand (panels a,c,e,g) and a bimodal
// extremes demand (panels b,d,f,h), recording runtime, revenue, and
// affordability for MBP, the naive baselines, and the exact "MILP".
//
// Usage: fig10_runtime_demand [--max_n=10]

#include "bench/bench_util.h"
#include "bench/runtime_sweep.h"

int main(int argc, char** argv) {
  const auto max_n = static_cast<size_t>(
      mbp::bench::FlagValue(argc, argv, "max_n", 10));
  mbp::bench::PrintSweep(
      "Figure 10(a,c,e,g): concave value curve, mid-peaked demand",
      mbp::bench::RunSweep(mbp::core::ValueShape::kConcave,
                           mbp::core::DemandShape::kMidPeaked, max_n));
  mbp::bench::PrintSweep(
      "Figure 10(b,d,f,h): concave value curve, extremes (bimodal) demand",
      mbp::bench::RunSweep(mbp::core::ValueShape::kConcave,
                           mbp::core::DemandShape::kExtremes, max_n));
  return 0;
}

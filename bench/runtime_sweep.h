#ifndef MBP_BENCH_RUNTIME_SWEEP_H_
#define MBP_BENCH_RUNTIME_SWEEP_H_

// Shared driver for Figures 9/10: runtime, revenue, and affordability of
// each pricing method as the number of price points n grows. "MILP" is
// the exact exponential optimizer (the paper's optimal-but-expensive
// yardstick); MBP is the O(n^2) DP.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "common/timer.h"
#include "core/baselines.h"
#include "core/curves.h"
#include "core/exact_opt.h"
#include "core/revenue_opt.h"

namespace mbp::bench {

struct SweepRow {
  size_t n = 0;
  std::vector<double> runtime_seconds;  // one per method
  std::vector<double> revenue;
  std::vector<double> affordability;
};

inline const std::vector<std::string>& SweepMethods() {
  static const std::vector<std::string> kMethods{"MBP",  "Lin",  "MaxC",
                                                 "MedC", "OptC", "MILP"};
  return kMethods;
}

// Times `run` by repeating it until ~20ms of work or `max_reps` runs.
inline double TimeSeconds(const std::function<void()>& run,
                          int max_reps = 1000) {
  Timer timer;
  int reps = 0;
  do {
    run();
    ++reps;
  } while (timer.ElapsedSeconds() < 0.02 && reps < max_reps);
  return timer.ElapsedSeconds() / reps;
}

inline SweepRow RunSweepPoint(const std::vector<core::CurvePoint>& curve) {
  SweepRow row;
  row.n = curve.size();

  core::RevenueOptResult results[6];
  // MBP (DP).
  row.runtime_seconds.push_back(TimeSeconds(
      [&] { results[0] = core::MaximizeRevenueDp(curve).value(); }));
  // The four naive baselines.
  const std::vector<core::BaselineKind> baselines = core::AllBaselines();
  for (size_t b = 0; b < baselines.size(); ++b) {
    row.runtime_seconds.push_back(TimeSeconds([&, b] {
      results[1 + b] = core::PriceWithBaseline(baselines[b], curve).value();
    }));
  }
  // MILP (exact exponential optimum); a single run — it dominates runtime.
  row.runtime_seconds.push_back(TimeSeconds(
      [&] { results[5] = core::MaximizeRevenueExact(curve).value(); },
      /*max_reps=*/3));

  for (const core::RevenueOptResult& result : results) {
    row.revenue.push_back(result.revenue);
    row.affordability.push_back(result.affordability);
  }
  return row;
}

inline void PrintSweep(const std::string& title,
                       const std::vector<SweepRow>& rows) {
  PrintHeader(title);

  std::printf("\nRuntime (seconds, log-scale in the paper):\n%4s", "n");
  for (const std::string& method : SweepMethods()) {
    std::printf(" %12s", method.c_str());
  }
  std::printf("\n");
  PrintRule(4 + 13 * SweepMethods().size());
  for (const SweepRow& row : rows) {
    std::printf("%4zu", row.n);
    for (double seconds : row.runtime_seconds) {
      std::printf(" %12.3e", seconds);
    }
    std::printf("\n");
  }

  std::printf("\nRevenue:\n%4s", "n");
  for (const std::string& method : SweepMethods()) {
    std::printf(" %12s", method.c_str());
  }
  std::printf("\n");
  PrintRule(4 + 13 * SweepMethods().size());
  for (const SweepRow& row : rows) {
    std::printf("%4zu", row.n);
    for (double revenue : row.revenue) std::printf(" %12.3f", revenue);
    std::printf("\n");
  }

  std::printf("\nAffordability ratio:\n%4s", "n");
  for (const std::string& method : SweepMethods()) {
    std::printf(" %12s", method.c_str());
  }
  std::printf("\n");
  PrintRule(4 + 13 * SweepMethods().size());
  for (const SweepRow& row : rows) {
    std::printf("%4zu", row.n);
    for (double afford : row.affordability) std::printf(" %12.3f", afford);
    std::printf("\n");
  }

  // Shape summary matching the paper's claims.
  const SweepRow& last = rows.back();
  std::printf(
      "\nShape check at n=%zu: MILP/MBP runtime ratio %.1fx (grows "
      "exponentially);\nMBP revenue within %.1f%% of MILP optimum "
      "(Proposition 3 guarantees >= 50%%).\n",
      last.n, last.runtime_seconds[5] / last.runtime_seconds[0],
      100.0 * last.revenue[0] / last.revenue[5]);
}

inline std::vector<SweepRow> RunSweep(core::ValueShape value_shape,
                                      core::DemandShape demand_shape,
                                      size_t max_n) {
  std::vector<SweepRow> rows;
  for (size_t n = 2; n <= max_n; ++n) {
    core::MarketCurveOptions options;
    options.num_points = n;
    options.x_min = 10.0;
    // Keep the grid integral (x = 10, 20, ..., 10n) so the exact solver's
    // covering test applies.
    options.x_max = 10.0 * static_cast<double>(n);
    options.max_value = 100.0;
    options.value_shape = value_shape;
    options.demand_shape = demand_shape;
    auto curve = core::MakeMarketCurve(options);
    MBP_CHECK(curve.ok());
    rows.push_back(RunSweepPoint(*curve));
  }
  return rows;
}

}  // namespace mbp::bench

#endif  // MBP_BENCH_RUNTIME_SWEEP_H_

// Price interpolation solver comparison (Section 5's T^2_pi and T^inf_pi
// objectives): fit seller target prices under the relaxed arbitrage-free
// constraints with (a) Dykstra's alternating projections (exact L2
// projection) and (b) the simplex LP (exact L1 fit), and report both
// error metrics plus runtime for several target-shape families.
//
// Usage: bench_interpolation [--n=16]

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "common/timer.h"
#include "core/interpolation.h"
#include "random/rng.h"

namespace mbp {
namespace {

using core::InterpolationPoint;

std::vector<InterpolationPoint> MakeTargets(const std::string& family,
                                            size_t n) {
  std::vector<InterpolationPoint> points(n);
  random::Rng rng(7);
  for (size_t j = 0; j < n; ++j) {
    const double a = static_cast<double>(j + 1);
    double price = 0.0;
    if (family == "concave") {
      price = 40.0 * std::sqrt(a);  // already feasible
    } else if (family == "convex") {
      price = 2.0 * a * a;  // ratio increasing: infeasible
    } else if (family == "step") {
      price = (j < n / 2) ? 20.0 : 90.0;  // flat, then a jump
    } else {  // "random"
      price = rng.NextDouble(0.0, 100.0);
    }
    points[j] = {a, price};
  }
  return points;
}

struct Fit {
  double l1 = 0.0;
  double l2 = 0.0;
};

Fit Errors(const std::vector<InterpolationPoint>& points,
           const std::vector<double>& prices) {
  Fit fit;
  for (size_t j = 0; j < points.size(); ++j) {
    const double diff = prices[j] - points[j].target_price;
    fit.l1 += std::fabs(diff);
    fit.l2 += diff * diff;
  }
  return fit;
}

void Run(size_t n) {
  bench::PrintHeader("Price interpolation: Dykstra (T^2) vs simplex (T^inf)");
  std::printf("%-8s | %10s %10s %9s | %10s %10s %9s\n", "targets",
              "dyk L2", "dyk L1", "time s", "lp L2", "lp L1", "time s");
  bench::PrintRule(76);
  for (const std::string& family :
       {std::string("concave"), std::string("convex"), std::string("step"),
        std::string("random")}) {
    const std::vector<InterpolationPoint> points = MakeTargets(family, n);

    Timer dykstra_timer;
    auto dykstra = core::InterpolateSquaredLoss(points);
    const double dykstra_seconds = dykstra_timer.ElapsedSeconds();
    MBP_CHECK(dykstra.ok());
    const Fit dykstra_fit = Errors(points, dykstra->prices);

    Timer lp_timer;
    auto lp = core::InterpolateAbsoluteLoss(points);
    const double lp_seconds = lp_timer.ElapsedSeconds();
    MBP_CHECK(lp.ok());
    const Fit lp_fit = Errors(points, lp->prices);

    std::printf("%-8s | %10.3f %10.3f %9.2e | %10.3f %10.3f %9.2e\n",
                family.c_str(), dykstra_fit.l2, dykstra_fit.l1,
                dykstra_seconds, lp_fit.l2, lp_fit.l1, lp_seconds);

    // Sanity: each solver wins (or ties) on its own metric.
    MBP_CHECK(dykstra_fit.l2 <= lp_fit.l2 + 1e-6);
    MBP_CHECK(lp_fit.l1 <= dykstra_fit.l1 + 1e-6);
  }
  std::printf(
      "\nEach solver is optimal in its own norm (checked). Feasible "
      "targets (concave)\nare reproduced exactly by both; infeasible "
      "shapes are projected.\n");
}

}  // namespace
}  // namespace mbp

int main(int argc, char** argv) {
  const auto n =
      static_cast<size_t>(mbp::bench::FlagValue(argc, argv, "n", 16));
  mbp::Run(n);
  return 0;
}

// Load generator for the networked price-serving front end (DESIGN.md
// §5d/§5g): starts an in-process PriceServer on an ephemeral loopback
// port (or targets an external fleet via --endpoints), hammers it from N
// blocking client connections, and reports throughput plus
// client-observed latency quantiles.
//
// Regimes (single-curve mode, --curves<=1, the PR-4 shape):
//   pingpong    one PRICE_AT per round trip (batch size 1) — the latency
//               floor of the socket + protocol + engine path
//   batched     one PRICE_AT frame carrying --batch xs per round trip —
//               amortizes framing and lets the server micro-batch
// Multi-curve mode (--curves N > 1) serves a synthetic catalog of N
// curves (varied knot counts) and runs:
//   batched     --batch xs per round trip against the hottest curve —
//               the in-run single-curve reference point
//   zipf        --batch xs per round trip, curve drawn per round trip
//               from a zipf(s) popularity distribution over the catalog
//               (ranks scattered across the id space by a seeded shuffle)
// With --buy-pct=P (0 < P <= 100) a third regime runs:
//   purchase_mix  each round trip is a BUY (fresh unique transaction id,
//               random δ) with probability P%, else a batched PRICE_AT;
//               curve selection follows the zipf draw (or the single
//               curve). The in-process server gets a FulfillmentEngine;
//               an --endpoints fleet must have been started selling
//               (mbp_catalog_shard --fulfill=1, the default). Client-
//               observed BUY latency is reported separately from the
//               PRICE_AT path.
//
// Before anything is timed, every remote price is checked bit-identical
// to the research path `PiecewiseLinearPricing::PriceAtInverseNcp`; the
// process exits non-zero on a mismatch.
// Flags:
//   --knots=N        knots in the served curve, single-curve mode (65536)
//   --curves=N       catalog size; >1 switches to multi-curve mode (1)
//   --zipf=S         zipf exponent for the multi-curve regime (1.1)
//   --min-knots=N    per-curve knot range in multi-curve mode (8..128)
//   --max-knots=N
//   --catalog-seed=N synthetic catalog seed (7)
//   --connections=N  concurrent client connections (default 8)
//   --requests=N     round trips per connection per regime (default 2000)
//   --batch=N        xs per frame in the batched/zipf regimes (default 64)
//   --buy-pct=P      adds the purchase_mix regime: P% of round trips are
//                    BUYs (default 0 = off)
//   --wal-dir=DIR    back the in-process sale ledger with a write-ahead
//                    log in DIR, so purchase_mix measures the
//                    charge-durable-then-deliver BUY path (default: off,
//                    in-memory ledger; in-process server mode only)
//   --wal-fsync=P    WAL durability policy with --wal-dir: none | batch
//                    (group commit, default) | every
//   --shards=N       server event-loop shards (default 2)
//   --endpoints=CSV  drive an external fleet ("127.0.0.1:p0,...") through
//                    consistent-hash routing instead of an in-process
//                    server; the fleet must have been started with the
//                    same --curves/--catalog-seed/knot range
//   --labels=CSV     stable ring labels for --endpoints (the FLEET line
//                    prints them); default = host:port labels
//   --transport=T    server transport regime (DESIGN.md §5h):
//                      epoll  readiness event loop (default)
//                      uring  io_uring completion loop (falls back to
//                             epoll — visibly — when the probe fails)
//                      shm    shared-memory ring; clients connect via
//                             shm:// instead of TCP
//                    in-process server mode only
//   --warmup=N       per-connection round trips run before timing starts;
//                    excluded from wall clock and latency histograms (100)
//   --pin=0|1        pin each generator thread to a CPU — steadier
//                    quantiles on shared machines (0)
//   --out=FILE       write the JSON there instead of stdout
//
// In-process runs also report syscalls-per-request per regime, from the
// server's transport_syscalls STATS delta across the regime — the number
// the io_uring/shm backends exist to drive down.

#include <sched.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/wal.h"
#include "linalg/kernels.h"
#include "core/pricing_function.h"
#include "net/client.h"
#include "net/cluster.h"
#include "net/server.h"
#include "random/distributions.h"
#include "random/rng.h"
#include "serving/fulfillment.h"
#include "serving/price_query_engine.h"
#include "serving/synthetic_catalog.h"

namespace mbp {
namespace {

struct RegimeResult {
  std::string name;
  size_t round_trips = 0;
  size_t queries = 0;
  double wall_ms = 0.0;
  double qps = 0.0;  // individual prices served per second
  // Server-side kernel crossings per request over the regime's window;
  // negative when no in-process server was available to ask.
  double syscalls_per_request = -1.0;
  LatencyHistogramSnapshot latency;  // per-round-trip, client-observed
  // purchase_mix only: completed sales, client-paid revenue, and the
  // client-observed BUY round-trip latency (the `latency` histogram above
  // then covers only the PRICE_AT round trips).
  size_t buys = 0;
  double revenue = 0.0;
  LatencyHistogramSnapshot buy_latency;
};

double MillisSince(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

core::PiecewiseLinearPricing MakeDenseCurve(size_t knots) {
  std::vector<core::PricePoint> points;
  points.reserve(knots);
  for (size_t i = 1; i <= knots; ++i) {
    const double x = static_cast<double>(i);
    points.push_back({x, std::sqrt(x)});
  }
  return core::PiecewiseLinearPricing::Create(points).value();
}

// One batched query round trip; the per-thread client behind it is
// whatever `MakeClientFn` built (direct PriceClient or cluster router).
using BatchFn = std::function<StatusOr<std::vector<double>>(
    const std::string& id, const std::vector<double>& xs)>;
// One BUY round trip: transaction ids are generated inside the client
// (NextTransactionId — process-unique, never reused within a run).
using BuyFn = std::function<StatusOr<net::BuyPayload>(const std::string& id,
                                                      double delta)>;
struct ClientFns {
  BatchFn batch;  // null => the connection failed
  BuyFn buy;      // null when the purchase_mix regime is off
};
using MakeClientFn = std::function<ClientFns(size_t conn)>;

// Which curve each round trip queries.
struct Workload {
  std::vector<std::string> ids;  // curve index -> wire id
  std::vector<double> x_hi;      // curve index -> query range upper bound
  const random::ZipfIndex* zipf = nullptr;  // null => fixed_index always
  std::vector<size_t> perm;                 // zipf rank -> curve index
  size_t fixed_index = 0;
};

// Runs one regime: `connections` threads, each with its own client, each
// performing `warmup` untimed then `requests` timed round trips of
// `batch` xs. Warmup runs before the start barrier, so neither the
// shared latency histogram nor the wall clock sees cold caches, fresh
// TCP windows, or branch-predictor training. Per-round-trip latency of
// the timed window lands in one shared histogram. `stats_fn`, when
// given, samples the server's STATS around the timed window to derive
// syscalls-per-request.
RegimeResult RunRegime(const std::string& name, size_t connections,
                       size_t requests, size_t warmup, bool pin,
                       size_t batch, size_t buy_pct,
                       const Workload& workload,
                       const MakeClientFn& make_client,
                       const std::function<net::StatsPayload()>& stats_fn,
                       std::atomic<size_t>* failures) {
  RegimeResult result;
  result.name = name;
  result.round_trips = connections * requests;
  result.queries = result.round_trips * batch;
  LatencyHistogram latency;
  LatencyHistogram buy_latency;
  std::atomic<size_t> buys{0};
  std::mutex revenue_mutex;
  double revenue = 0.0;

  std::vector<std::thread> threads;
  std::atomic<size_t> ready{0};
  std::atomic<bool> go{false};
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      if (pin) {
        cpu_set_t set;
        CPU_ZERO(&set);
        const unsigned cpus = std::max(1u, std::thread::hardware_concurrency());
        CPU_SET(c % cpus, &set);
        (void)sched_setaffinity(0, sizeof(set), &set);
      }
      ClientFns fns = make_client(c);
      if (!fns.batch) {
        failures->fetch_add(requests);
        ready.fetch_add(1);
        return;
      }
      random::Rng rng(1234 + c);
      std::vector<double> xs(batch);
      size_t local_buys = 0;
      double local_revenue = 0.0;
      const auto round_trip = [&](bool timed) {
        const size_t index = workload.zipf != nullptr
                                 ? workload.perm[workload.zipf->Sample(rng)]
                                 : workload.fixed_index;
        const double hi = workload.x_hi[index];
        if (buy_pct > 0 && fns.buy != nullptr &&
            rng.NextBounded(100) < buy_pct) {
          // A purchase at a random affordable accuracy: δ = 1/x with x
          // uniform over the curve's domain. The client generates a
          // fresh process-unique transaction id per call, so every BUY
          // is a distinct sale (retries inside the client dedupe).
          const double delta = 1.0 / rng.NextDouble(1.0, hi);
          const auto start = std::chrono::steady_clock::now();
          const auto sale = fns.buy(workload.ids[index], delta);
          if (timed) {
            buy_latency.Record(
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - start)
                    .count());
          }
          if (!sale.ok()) {
            failures->fetch_add(1);
          } else if (timed) {
            ++local_buys;
            local_revenue += sale->record.price;
          }
          return;
        }
        for (double& x : xs) x = rng.NextDouble(0.0, hi);
        const auto start = std::chrono::steady_clock::now();
        const auto prices = fns.batch(workload.ids[index], xs);
        if (timed) {
          latency.Record(
              std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - start)
                  .count());
        }
        if (!prices.ok() || prices->size() != batch) failures->fetch_add(1);
      };
      for (size_t r = 0; r < warmup; ++r) round_trip(false);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (size_t r = 0; r < requests; ++r) round_trip(true);
      if (local_buys > 0) {
        buys.fetch_add(local_buys);
        std::lock_guard<std::mutex> lock(revenue_mutex);
        revenue += local_revenue;
      }
    });
  }
  while (ready.load(std::memory_order_acquire) < connections) {
    std::this_thread::yield();
  }
  net::StatsPayload before;
  if (stats_fn) before = stats_fn();
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  result.wall_ms = MillisSince(start);
  if (stats_fn) {
    const net::StatsPayload after = stats_fn();
    const uint64_t reqs = after.requests_ok - before.requests_ok;
    if (reqs > 0) {
      result.syscalls_per_request =
          static_cast<double>(after.transport_syscalls -
                              before.transport_syscalls) /
          static_cast<double>(reqs);
    }
  }
  result.buys = buys.load();
  result.revenue = revenue;
  // A BUY round trip delivers one model, not `batch` prices.
  result.queries =
      (result.round_trips - result.buys) * batch + result.buys;
  result.qps =
      static_cast<double>(result.queries) / (result.wall_ms * 1e-3);
  result.latency = latency.Snapshot();
  result.buy_latency = buy_latency.Snapshot();
  std::printf(
      "  %-12s %8zu rt  %9.2f ms  %11.0f qps   p50 %7.1f us   p99 %7.1f us"
      "   %5.2f sys/req\n",
      result.name.c_str(), result.round_trips, result.wall_ms, result.qps,
      result.latency.QuantileMicros(0.5),
      result.latency.QuantileMicros(0.99), result.syscalls_per_request);
  if (result.buys > 0) {
    std::printf(
        "  %-12s %8zu buys  revenue %12.2f        buy p50 %7.1f us   "
        "buy p99 %7.1f us\n",
        "", result.buys, result.revenue,
        result.buy_latency.QuantileMicros(0.5),
        result.buy_latency.QuantileMicros(0.99));
  }
  return result;
}

void EmitHistogramFields(bench::JsonWriter* json,
                         const LatencyHistogramSnapshot& snap) {
  json->Field("count", snap.count);
  json->Field("mean_us", snap.mean_micros());
  json->Field("p50_us", snap.QuantileMicros(0.5));
  json->Field("p90_us", snap.QuantileMicros(0.9));
  json->Field("p99_us", snap.QuantileMicros(0.99));
}

void MergeHistogram(const LatencyHistogramSnapshot& from,
                    LatencyHistogramSnapshot* into) {
  into->count += from.count;
  into->sum_micros += from.sum_micros;
  for (size_t i = 0; i < from.buckets.size(); ++i) {
    into->buckets[i] += from.buckets[i];
  }
}

// Sums one server's STATS into the fleet aggregate (counters add;
// histograms merge bucket-wise; catalog gauges add — fleet-wide resident
// footprint).
void MergeStats(const net::StatsPayload& from, net::StatsPayload* into) {
  into->connections_accepted += from.connections_accepted;
  into->connections_active += from.connections_active;
  into->requests_ok += from.requests_ok;
  into->requests_error += from.requests_error;
  into->protocol_errors += from.protocol_errors;
  into->queries += from.queries;
  into->batches += from.batches;
  into->connections_refused += from.connections_refused;
  into->requests_shed += from.requests_shed;
  into->deadline_drops += from.deadline_drops;
  into->connections_killed += from.connections_killed;
  into->faults_injected += from.faults_injected;
  into->write_queue_peak_bytes =
      std::max(into->write_queue_peak_bytes, from.write_queue_peak_bytes);
  into->catalog_listings += from.catalog_listings;
  into->catalog_bytes += from.catalog_bytes;
  into->transport_fallbacks += from.transport_fallbacks;
  into->transport_syscalls += from.transport_syscalls;
  into->uring_sqe_submitted += from.uring_sqe_submitted;
  into->shm_doorbell_wakes += from.shm_doorbell_wakes;
  for (size_t v = 0; v < net::kNumVerbSlots; ++v) {
    into->requests_by_verb[v] += from.requests_by_verb[v];
  }
  into->buys_ok += from.buys_ok;
  into->model_cache_entries += from.model_cache_entries;
  into->model_cache_bytes += from.model_cache_bytes;
  into->model_cache_hits += from.model_cache_hits;
  into->model_cache_misses += from.model_cache_misses;
  into->model_cache_evictions += from.model_cache_evictions;
  into->transactions_recorded += from.transactions_recorded;
  into->revenue += from.revenue;
  into->wal_appends += from.wal_appends;
  into->wal_fsyncs += from.wal_fsyncs;
  into->wal_bytes += from.wal_bytes;
  into->recovery_records += from.recovery_records;
  into->recovery_torn_tail += from.recovery_torn_tail;
  into->recovery_ms += from.recovery_ms;
  MergeHistogram(from.fulfillment_latency, &into->fulfillment_latency);
  MergeHistogram(from.latency, &into->latency);
  MergeHistogram(from.write_queue_bytes, &into->write_queue_bytes);
}

struct BenchConfig {
  size_t knots, curves, connections, requests, batch, shards;
  size_t min_knots, max_knots;
  size_t warmup;
  size_t buy_pct;
  bool pin;
  std::string transport;
  double zipf_s;
  uint64_t catalog_seed;
  size_t num_endpoints;
  // Empty when the sale ledger is in-memory; otherwise the --wal-fsync
  // policy name and the log directory, so recorded baselines state their
  // durability regime AND the device behind it (an fdatasync is ~100x
  // cheaper on tmpfs than on a journaling filesystem).
  std::string wal_fsync;
  std::string wal_dir;
};

void EmitJson(FILE* out, const BenchConfig& config, bool bit_identical,
              const std::vector<RegimeResult>& regimes,
              const net::StatsPayload& server_stats) {
  bench::JsonWriter json(out);
  json.BeginObject();
  json.Field("bench", "bench_net");
  json.Field("knots", config.knots);
  json.Field("curves", config.curves);
  json.Field("zipf_s", config.zipf_s);
  json.Field("min_knots", config.min_knots);
  json.Field("max_knots", config.max_knots);
  json.Field("catalog_seed", config.catalog_seed);
  json.Field("endpoints", config.num_endpoints);
  json.Field("connections", config.connections);
  json.Field("requests_per_connection", config.requests);
  json.Field("warmup_per_connection", config.warmup);
  json.Field("pinned", config.pin);
  json.Field("transport", config.transport);
  json.Field("batch", config.batch);
  json.Field("buy_pct", config.buy_pct);
  json.Field("wal_fsync",
             config.wal_fsync.empty() ? std::string("off") : config.wal_fsync);
  if (!config.wal_dir.empty()) json.Field("wal_dir", config.wal_dir);
  json.Field("shards", config.shards);
  json.Field("hardware_concurrency",
             static_cast<size_t>(std::thread::hardware_concurrency()));
  // Dispatch level the batched PriceAtBatch kernels actually ran at —
  // recorded baselines are only comparable within the same level.
  json.Field("simd_level", SimdLevelName(linalg::kernels::ActiveLevel()));
  json.Field("bit_identical_to_research_path", bit_identical);
  // Distinguishes zero-overhead builds in recorded baselines: QPS/p99
  // comparisons across MBP_FAULT_INJECTION settings are apples-to-apples
  // only within the same value.
  json.Field("fault_injection_compiled", fault::kBuildEnabled);
  // Catalog residency (fleet-wide sum in --endpoints mode).
  json.Field("catalog_listings", server_stats.catalog_listings);
  json.Field("catalog_bytes", server_stats.catalog_bytes);
  json.Key("regimes");
  json.BeginArray();
  for (const RegimeResult& r : regimes) {
    json.BeginObject();
    json.Field("name", r.name);
    json.Field("round_trips", r.round_trips);
    json.Field("queries", r.queries);
    json.Field("wall_ms", r.wall_ms);
    json.Field("qps", r.qps);
    json.Field("syscalls_per_request", r.syscalls_per_request);
    EmitHistogramFields(&json, r.latency);
    if (r.buys > 0) {
      json.Field("buys", r.buys);
      json.Field("revenue", r.revenue);
      json.Field("buy_p50_us", r.buy_latency.QuantileMicros(0.5));
      json.Field("buy_p99_us", r.buy_latency.QuantileMicros(0.99));
    }
    json.EndObject();
  }
  json.EndArray();
  json.Key("server");
  json.BeginObject();
  json.Field("connections_accepted", server_stats.connections_accepted);
  json.Field("requests_ok", server_stats.requests_ok);
  json.Field("requests_error", server_stats.requests_error);
  json.Field("protocol_errors", server_stats.protocol_errors);
  json.Field("queries", server_stats.queries);
  json.Field("batches", server_stats.batches);
  json.Field("requests_shed", server_stats.requests_shed);
  json.Field("deadline_drops", server_stats.deadline_drops);
  json.Field("connections_killed", server_stats.connections_killed);
  json.Field("connections_refused", server_stats.connections_refused);
  json.Field("faults_injected", server_stats.faults_injected);
  json.Field("transport_fallbacks", server_stats.transport_fallbacks);
  json.Field("transport_syscalls", server_stats.transport_syscalls);
  json.Field("uring_sqe_submitted", server_stats.uring_sqe_submitted);
  json.Field("shm_doorbell_wakes", server_stats.shm_doorbell_wakes);
  json.Field("write_queue_peak_bytes", server_stats.write_queue_peak_bytes);
  json.Field("catalog_listings", server_stats.catalog_listings);
  json.Field("catalog_bytes", server_stats.catalog_bytes);
  static const char* const kVerbNames[] = {
      "",      "price_at", "budget_to_x", "snapshot_info",
      "stats", "quote",    "buy",         "replay"};
  json.Key("requests_by_verb");
  json.BeginObject();
  for (size_t v = 1; v < net::kNumVerbSlots; ++v) {
    json.Field(kVerbNames[v], server_stats.requests_by_verb[v]);
  }
  json.EndObject();
  json.Field("buys_ok", server_stats.buys_ok);
  json.Field("revenue", server_stats.revenue);
  json.Field("transactions_recorded", server_stats.transactions_recorded);
  json.Field("model_cache_hits", server_stats.model_cache_hits);
  json.Field("model_cache_misses", server_stats.model_cache_misses);
  json.Field("model_cache_evictions", server_stats.model_cache_evictions);
  json.Field("model_cache_bytes", server_stats.model_cache_bytes);
  json.Field("fulfillment_p50_us",
             server_stats.fulfillment_latency.QuantileMicros(0.5));
  json.Field("fulfillment_p99_us",
             server_stats.fulfillment_latency.QuantileMicros(0.99));
  json.Field("wal_appends", server_stats.wal_appends);
  json.Field("wal_fsyncs", server_stats.wal_fsyncs);
  json.Field("wal_bytes", server_stats.wal_bytes);
  json.Field("recovery_records", server_stats.recovery_records);
  json.Field("recovery_torn_tail", server_stats.recovery_torn_tail);
  json.Field("recovery_ms", server_stats.recovery_ms);
  EmitHistogramFields(&json, server_stats.latency);
  json.EndObject();
  json.EndObject();
  json.Finish();
}

}  // namespace
}  // namespace mbp

int main(int argc, char** argv) {
  using namespace mbp;  // NOLINT
  BenchConfig config;
  config.knots = static_cast<size_t>(
      bench::FlagValue(argc, argv, "knots", 65536));
  config.curves = static_cast<size_t>(
      bench::FlagValue(argc, argv, "curves", 1));
  config.zipf_s = bench::FlagValue(argc, argv, "zipf", 1.1);
  config.min_knots = static_cast<size_t>(
      bench::FlagValue(argc, argv, "min-knots", 8));
  config.max_knots = static_cast<size_t>(
      bench::FlagValue(argc, argv, "max-knots", 128));
  config.catalog_seed = static_cast<uint64_t>(
      bench::FlagValue(argc, argv, "catalog-seed", 7));
  config.connections = static_cast<size_t>(
      bench::FlagValue(argc, argv, "connections", 8));
  config.requests = static_cast<size_t>(
      bench::FlagValue(argc, argv, "requests", 2000));
  config.batch = static_cast<size_t>(
      bench::FlagValue(argc, argv, "batch", 64));
  config.buy_pct = static_cast<size_t>(
      bench::FlagValue(argc, argv, "buy-pct", 0));
  if (config.buy_pct > 100) {
    std::fprintf(stderr, "--buy-pct must be in [0, 100]\n");
    return 1;
  }
  config.shards = static_cast<size_t>(
      bench::FlagValue(argc, argv, "shards", 2));
  config.warmup = static_cast<size_t>(
      bench::FlagValue(argc, argv, "warmup", 100));
  config.pin = bench::FlagValue(argc, argv, "pin", 0) != 0;
  config.transport = bench::FlagString(argc, argv, "transport", "epoll");
  const std::string out_path = bench::FlagString(argc, argv, "out", "");
  const std::string endpoints_csv =
      bench::FlagString(argc, argv, "endpoints", "");
  const std::string labels_csv = bench::FlagString(argc, argv, "labels", "");

  net::TransportKind transport_kind;
  if (!net::ParseTransportKind(config.transport, &transport_kind)) {
    std::fprintf(stderr, "--transport=%s: expected epoll, uring, or shm\n",
                 config.transport.c_str());
    return 1;
  }
  if (!endpoints_csv.empty() && config.transport != "epoll") {
    std::fprintf(stderr,
                 "--transport selects the in-process server's backend; an "
                 "--endpoints fleet chooses its own\n");
    return 1;
  }
  if (transport_kind == net::TransportKind::kUring &&
      !net::UringAvailable()) {
    std::printf("NOTE: io_uring probe failed on this kernel; the server "
                "will fall back to epoll (recorded in transport_fallbacks)\n");
  }

  const bool multi_curve = config.curves > 1;

  bench::PrintHeader("Networked price serving (" + config.transport +
                     " front end)");
  if (multi_curve) {
    std::printf("curves=%zu  zipf=%.2f  knots=[%zu,%zu]  connections=%zu  "
                "requests/conn=%zu  batch=%zu  shards=%zu\n",
                config.curves, config.zipf_s, config.min_knots,
                config.max_knots, config.connections, config.requests,
                config.batch, config.shards);
  } else {
    std::printf("knots=%zu  connections=%zu  requests/conn=%zu  batch=%zu  "
                "shards=%zu\n",
                config.knots, config.connections, config.requests,
                config.batch, config.shards);
  }
  bench::PrintRule();

  // --- Catalog + (optional) in-process server ---------------------------
  serving::SyntheticCatalogSpec spec;
  spec.num_curves = config.curves;
  spec.min_knots = config.min_knots;
  spec.max_knots = config.max_knots;
  spec.seed = config.catalog_seed;

  serving::CatalogRegistry registry;
  Workload workload;
  if (multi_curve) {
    const auto publish_start = std::chrono::steady_clock::now();
    const Status published =
        serving::PublishSyntheticCatalog(spec, &registry);
    if (!published.ok()) {
      std::fprintf(stderr, "catalog publish failed: %s\n",
                   published.ToString().c_str());
      return 1;
    }
    std::printf("catalog: %zu curves, %.1f MB resident, compiled in %.0f ms\n",
                registry.resident_listings(),
                static_cast<double>(registry.resident_bytes()) / 1048576.0,
                MillisSince(publish_start));
    workload.ids.reserve(config.curves);
    workload.x_hi.reserve(config.curves);
    for (size_t i = 0; i < config.curves; ++i) {
      workload.ids.push_back(serving::SyntheticCurveId(i));
      workload.x_hi.push_back(serving::SyntheticCurveXMax(spec, i) * 1.05);
    }
  } else {
    const core::PiecewiseLinearPricing curve = MakeDenseCurve(config.knots);
    if (!registry.Publish("menu", curve).ok()) {
      std::fprintf(stderr, "publish failed\n");
      return 1;
    }
    workload.ids.push_back("menu");
    workload.x_hi.push_back(curve.points().back().x * 1.05);
  }

  serving::PriceQueryEngine engine(&registry);
  // The purchase_mix regime sells through the in-process server; the
  // engine is cheap to stand up (models train lazily on first BUY).
  // --wal-dir + --wal-fsync make the sale ledger durable, so the regime
  // measures the charge-durable-then-deliver BUY path — the fsync-policy
  // p99 cost the durability section of BENCH_net.json records.
  std::unique_ptr<serving::FulfillmentEngine> fulfillment;
  if (config.buy_pct > 0 && endpoints_csv.empty()) {
    fulfillment = std::make_unique<serving::FulfillmentEngine>(&registry);
    const std::string wal_dir =
        bench::FlagString(argc, argv, "wal-dir", "");
    if (!wal_dir.empty()) {
      wal::WalOptions wal_options;
      const std::string fsync_name =
          bench::FlagString(argc, argv, "wal-fsync", "batch");
      if (!wal::ParseFsyncPolicy(fsync_name, &wal_options.fsync_policy)) {
        std::fprintf(stderr,
                     "--wal-fsync must be none|batch|every (got %s)\n",
                     fsync_name.c_str());
        return 1;
      }
      const Status opened =
          fulfillment->OpenDurableLedger(wal_dir, wal_options);
      if (!opened.ok()) {
        std::fprintf(stderr, "sale ledger open failed: %s\n",
                     opened.ToString().c_str());
        return 1;
      }
      config.wal_fsync = fsync_name;
      config.wal_dir = wal_dir;
    }
  }
  std::unique_ptr<net::PriceServer> server;
  std::vector<net::Endpoint> endpoints;
  net::ClusterClientOptions cluster_options;
  uint16_t port = 0;
  std::string shm_uri;  // non-empty => clients connect over the shm ring
  if (endpoints_csv.empty()) {
    net::ServerOptions options;
    options.num_shards = config.shards;
    options.fulfillment = fulfillment.get();
    if (!multi_curve) options.default_curve_id = "menu";
    if (transport_kind == net::TransportKind::kShm) {
      // The shm transport is not a TCP backend: the segment serves
      // shm:// clients next to the (idle here) epoll listener.
      const std::string shm_path = "/tmp/mbp_bench_net_" +
                                   std::to_string(getpid()) + ".shm";
      options.shm_path = shm_path;
      options.shm_slots = config.connections + 8;  // + gate/stats clients
      options.shm_shards = config.shards;
      shm_uri = "shm://" + shm_path;
    } else {
      options.transport = transport_kind;
    }
    auto started = net::PriceServer::Start(&engine, options);
    if (!started.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   started.status().ToString().c_str());
      return 1;
    }
    server = std::move(*started);
    port = server->port();
    if (shm_uri.empty()) {
      std::printf("server on 127.0.0.1:%u (%s)\n", port,
                  config.transport.c_str());
    } else {
      std::printf("server on %s\n", shm_uri.c_str());
    }
    config.num_endpoints = 0;
  } else {
    auto parsed = net::ParseEndpoints(endpoints_csv);
    if (!parsed.ok()) {
      std::fprintf(stderr, "--endpoints: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    endpoints = std::move(*parsed);
    config.num_endpoints = endpoints.size();
    if (!labels_csv.empty()) {
      size_t pos = 0;
      while (pos <= labels_csv.size()) {
        const size_t comma = std::min(labels_csv.find(',', pos),
                                      labels_csv.size());
        cluster_options.node_labels.push_back(
            labels_csv.substr(pos, comma - pos));
        if (comma == labels_csv.size()) break;
        pos = comma + 1;
      }
    }
    std::printf("fleet: %zu endpoints via consistent-hash routing\n",
                endpoints.size());
  }

  // Per-thread client factory: direct connection in single-server mode,
  // consistent-hash router against the fleet in --endpoints mode.
  const size_t buy_pct = config.buy_pct;
  MakeClientFn make_client = [&](size_t) -> ClientFns {
    ClientFns fns;
    if (endpoints.empty()) {
      auto client = shm_uri.empty()
                        ? net::PriceClient::Connect("127.0.0.1", port)
                        : net::PriceClient::Connect(shm_uri, 0);
      if (!client.ok()) return fns;
      auto shared = std::shared_ptr<net::PriceClient>(std::move(*client));
      fns.batch = [shared](const std::string& id,
                           const std::vector<double>& xs) {
        return shared->PriceBatch(id, xs);
      };
      if (buy_pct > 0) {
        fns.buy = [shared](const std::string& id, double delta) {
          return shared->Buy(id, delta);
        };
      }
      return fns;
    }
    auto cluster = net::ClusterPriceClient::Create(endpoints, cluster_options);
    if (!cluster.ok()) return fns;
    auto shared =
        std::shared_ptr<net::ClusterPriceClient>(std::move(*cluster));
    fns.batch = [shared](const std::string& id,
                         const std::vector<double>& xs) {
      return shared->PriceBatch(id, xs);
    };
    if (buy_pct > 0) {
      fns.buy = [shared](const std::string& id, double delta) {
        return shared->Buy(id, delta);
      };
    }
    return fns;
  };

  // --- Bit-identity gate -------------------------------------------------
  // Remote answers must reproduce the research path exactly before
  // anything is timed. Multi-curve mode spreads the 4096 gate queries
  // over up to 256 distinct curves (hottest-first stride sample).
  size_t mismatches = 0;
  {
    const BatchFn query = make_client(0).batch;
    if (!query) {
      std::fprintf(stderr, "gate client connect failed\n");
      return 1;
    }
    random::Rng rng(42);
    const size_t gate_curves =
        multi_curve ? std::min<size_t>(config.curves, 256) : 1;
    const size_t per_curve = 4096 / gate_curves;
    const size_t stride = std::max<size_t>(config.curves / gate_curves, 1);
    for (size_t g = 0; g < gate_curves; ++g) {
      const size_t index = (g * stride) % workload.ids.size();
      const core::PiecewiseLinearPricing oracle =
          multi_curve ? serving::MakeSyntheticCurve(spec, index)
                      : MakeDenseCurve(config.knots);
      std::vector<double> xs(per_curve);
      for (double& x : xs) x = rng.NextDouble(0.0, workload.x_hi[index]);
      const auto remote = query(workload.ids[index], xs);
      if (!remote.ok()) {
        std::fprintf(stderr, "gate batch failed: %s\n",
                     remote.status().ToString().c_str());
        return 1;
      }
      for (size_t i = 0; i < xs.size(); ++i) {
        if ((*remote)[i] != oracle.PriceAtInverseNcp(xs[i])) ++mismatches;
      }
    }
    std::printf(
        "bit-identity gate: %zu mismatches over %zu remote queries on "
        "%zu curves\n",
        mismatches, gate_curves * per_curve, gate_curves);
  }
  bench::PrintRule();

  // --- Regimes -----------------------------------------------------------
  std::atomic<size_t> failures{0};
  std::vector<RegimeResult> regimes;
  std::function<net::StatsPayload()> stats_fn;
  if (server != nullptr) {
    stats_fn = [&server] { return server->stats(); };
  }
  if (multi_curve) {
    // Scatter zipf ranks across the id space with a seeded shuffle so
    // "hot" curves are not physically adjacent (adjacency would flatter
    // any locality the data structures accidentally have).
    const random::ZipfIndex zipf(config.curves, config.zipf_s);
    workload.perm.resize(config.curves);
    for (size_t i = 0; i < config.curves; ++i) workload.perm[i] = i;
    random::Rng shuffle_rng(config.catalog_seed * 7919 + 1);
    for (size_t i = config.curves - 1; i > 0; --i) {
      const size_t j = static_cast<size_t>(
          shuffle_rng.NextBounded(static_cast<uint64_t>(i + 1)));
      std::swap(workload.perm[i], workload.perm[j]);
    }
    workload.fixed_index = workload.perm[0];  // the hottest curve
    Workload fixed = workload;
    fixed.zipf = nullptr;
    regimes.push_back(RunRegime("batched", config.connections,
                                config.requests, config.warmup, config.pin,
                                config.batch, 0, fixed, make_client,
                                stats_fn, &failures));
    workload.zipf = &zipf;
    regimes.push_back(RunRegime("zipf", config.connections, config.requests,
                                config.warmup, config.pin, config.batch, 0,
                                workload, make_client, stats_fn, &failures));
    if (config.buy_pct > 0) {
      regimes.push_back(RunRegime(
          "purchase_mix", config.connections, config.requests, config.warmup,
          config.pin, config.batch, config.buy_pct, workload, make_client,
          stats_fn, &failures));
    }
  } else {
    regimes.push_back(RunRegime("pingpong", config.connections,
                                config.requests, config.warmup, config.pin,
                                1, 0, workload, make_client, stats_fn,
                                &failures));
    regimes.push_back(RunRegime("batched", config.connections,
                                config.requests, config.warmup, config.pin,
                                config.batch, 0, workload, make_client,
                                stats_fn, &failures));
    if (config.buy_pct > 0) {
      regimes.push_back(RunRegime(
          "purchase_mix", config.connections, config.requests, config.warmup,
          config.pin, config.batch, config.buy_pct, workload, make_client,
          stats_fn, &failures));
    }
  }
  bench::PrintRule();

  // --- Server stats ------------------------------------------------------
  net::StatsPayload server_stats;
  if (server != nullptr) {
    server_stats = server->stats();
  } else {
    for (const net::Endpoint& ep : endpoints) {
      auto client = net::PriceClient::Connect(ep.host, ep.port);
      if (!client.ok()) continue;
      const auto stats = (*client)->Stats();
      if (stats.ok()) MergeStats(*stats, &server_stats);
    }
  }
  std::printf("server: %llu requests ok, %llu queries, %llu batch "
              "dispatches, %llu errors; catalog %llu listings / %.1f MB\n",
              static_cast<unsigned long long>(server_stats.requests_ok),
              static_cast<unsigned long long>(server_stats.queries),
              static_cast<unsigned long long>(server_stats.batches),
              static_cast<unsigned long long>(server_stats.requests_error),
              static_cast<unsigned long long>(server_stats.catalog_listings),
              static_cast<double>(server_stats.catalog_bytes) / 1048576.0);
  {
    static const char* const kVerbNames[] = {
        "",      "PRICE_AT", "BUDGET_TO_X", "SNAPSHOT_INFO",
        "STATS", "QUOTE",    "BUY",         "REPLAY"};
    std::printf("server requests by verb:");
    for (size_t v = 1; v < net::kNumVerbSlots; ++v) {
      if (server_stats.requests_by_verb[v] == 0) continue;
      std::printf(" %s=%llu", kVerbNames[v],
                  static_cast<unsigned long long>(
                      server_stats.requests_by_verb[v]));
    }
    std::printf("\n");
  }
  if (server_stats.buys_ok > 0) {
    std::printf(
        "fulfillment: %llu sales, revenue %.2f; model cache %llu/%llu "
        "hit/miss, %llu evictions; sale p50 %.1f us, p99 %.1f us\n",
        static_cast<unsigned long long>(server_stats.buys_ok),
        server_stats.revenue,
        static_cast<unsigned long long>(server_stats.model_cache_hits),
        static_cast<unsigned long long>(server_stats.model_cache_misses),
        static_cast<unsigned long long>(server_stats.model_cache_evictions),
        server_stats.fulfillment_latency.QuantileMicros(0.5),
        server_stats.fulfillment_latency.QuantileMicros(0.99));
  }
  if (failures.load() != 0) {
    std::fprintf(stderr, "%zu client round trips failed\n", failures.load());
  }
  if (server != nullptr) server->Shutdown();
  if (!shm_uri.empty()) {
    (void)unlink(shm_uri.c_str() + strlen("shm://"));
  }

  const bool bit_identical = mismatches == 0 && failures.load() == 0;
  if (out_path.empty()) {
    EmitJson(stdout, config, bit_identical, regimes, server_stats);
  } else {
    FILE* out_file = std::fopen(out_path.c_str(), "w");
    if (out_file == nullptr) {
      std::fprintf(stderr, "cannot open --out=%s\n", out_path.c_str());
      return 1;
    }
    EmitJson(out_file, config, bit_identical, regimes, server_stats);
    std::fclose(out_file);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return bit_identical ? 0 : 2;
}

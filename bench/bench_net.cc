// Load generator for the networked price-serving front end (DESIGN.md
// §5d): starts an in-process PriceServer on an ephemeral loopback port,
// hammers it from N blocking client connections, and reports throughput
// plus client-observed latency quantiles.
//
// Regimes:
//   pingpong    one PRICE_AT per round trip (batch size 1) — the latency
//               floor of the socket + protocol + engine path
//   batched     one PRICE_AT frame carrying --batch xs per round trip —
//               amortizes framing and lets the server micro-batch
//
// Before anything is timed, every remote price is checked bit-identical
// to the research path `PiecewiseLinearPricing::PriceAtInverseNcp`; the
// process exits non-zero on a mismatch.
// Flags:
//   --knots=N        knots in the served curve (default 65536)
//   --connections=N  concurrent client connections (default 8)
//   --requests=N     round trips per connection per regime (default 2000)
//   --batch=N        xs per frame in the batched regime (default 64)
//   --shards=N       server event-loop shards (default 2)
//   --out=FILE       write the JSON there instead of stdout

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/fault_injection.h"
#include "common/metrics.h"
#include "linalg/kernels.h"
#include "core/pricing_function.h"
#include "net/client.h"
#include "net/server.h"
#include "random/rng.h"
#include "serving/price_query_engine.h"
#include "serving/snapshot_registry.h"

namespace mbp {
namespace {

struct RegimeResult {
  std::string name;
  size_t round_trips = 0;
  size_t queries = 0;
  double wall_ms = 0.0;
  double qps = 0.0;  // individual prices served per second
  LatencyHistogramSnapshot latency;  // per-round-trip, client-observed
};

double MillisSince(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

core::PiecewiseLinearPricing MakeDenseCurve(size_t knots) {
  std::vector<core::PricePoint> points;
  points.reserve(knots);
  for (size_t i = 1; i <= knots; ++i) {
    const double x = static_cast<double>(i);
    points.push_back({x, std::sqrt(x)});
  }
  return core::PiecewiseLinearPricing::Create(points).value();
}

// Runs one regime: `connections` threads, each with its own PriceClient,
// each performing `requests` round trips of `batch` xs. Per-round-trip
// latency lands in one shared histogram.
RegimeResult RunRegime(const std::string& name, uint16_t port,
                       size_t connections, size_t requests, size_t batch,
                       double x_hi, std::atomic<size_t>* failures) {
  RegimeResult result;
  result.name = name;
  result.round_trips = connections * requests;
  result.queries = result.round_trips * batch;
  LatencyHistogram latency;

  std::vector<std::thread> threads;
  std::atomic<size_t> ready{0};
  std::atomic<bool> go{false};
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      auto client = net::PriceClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        failures->fetch_add(requests);
        ready.fetch_add(1);
        return;
      }
      random::Rng rng(1234 + c);
      std::vector<double> xs(batch);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (size_t r = 0; r < requests; ++r) {
        for (double& x : xs) x = rng.NextDouble(0.0, x_hi);
        const auto start = std::chrono::steady_clock::now();
        const auto prices = (*client)->PriceBatch("menu", xs);
        latency.Record(
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - start)
                .count());
        if (!prices.ok() || prices->size() != batch) failures->fetch_add(1);
      }
    });
  }
  while (ready.load(std::memory_order_acquire) < connections) {
    std::this_thread::yield();
  }
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  result.wall_ms = MillisSince(start);
  result.qps =
      static_cast<double>(result.queries) / (result.wall_ms * 1e-3);
  result.latency = latency.Snapshot();
  std::printf(
      "  %-10s %8zu rt  %9.2f ms  %11.0f qps   p50 %7.1f us   p99 %7.1f us\n",
      result.name.c_str(), result.round_trips, result.wall_ms, result.qps,
      result.latency.QuantileMicros(0.5),
      result.latency.QuantileMicros(0.99));
  return result;
}

void EmitHistogramFields(bench::JsonWriter* json,
                         const LatencyHistogramSnapshot& snap) {
  json->Field("count", snap.count);
  json->Field("mean_us", snap.mean_micros());
  json->Field("p50_us", snap.QuantileMicros(0.5));
  json->Field("p90_us", snap.QuantileMicros(0.9));
  json->Field("p99_us", snap.QuantileMicros(0.99));
}

void EmitJson(FILE* out, size_t knots, size_t connections, size_t requests,
              size_t batch, size_t shards, bool bit_identical,
              const std::vector<RegimeResult>& regimes,
              const net::StatsPayload& server_stats) {
  bench::JsonWriter json(out);
  json.BeginObject();
  json.Field("bench", "bench_net");
  json.Field("knots", knots);
  json.Field("connections", connections);
  json.Field("requests_per_connection", requests);
  json.Field("batch", batch);
  json.Field("shards", shards);
  json.Field("hardware_concurrency",
             static_cast<size_t>(std::thread::hardware_concurrency()));
  // Dispatch level the batched PriceAtBatch kernels actually ran at —
  // recorded baselines are only comparable within the same level.
  json.Field("simd_level", SimdLevelName(linalg::kernels::ActiveLevel()));
  json.Field("bit_identical_to_research_path", bit_identical);
  // Distinguishes zero-overhead builds in recorded baselines: QPS/p99
  // comparisons across MBP_FAULT_INJECTION settings are apples-to-apples
  // only within the same value.
  json.Field("fault_injection_compiled", fault::kBuildEnabled);
  json.Key("regimes");
  json.BeginArray();
  for (const RegimeResult& r : regimes) {
    json.BeginObject();
    json.Field("name", r.name);
    json.Field("round_trips", r.round_trips);
    json.Field("queries", r.queries);
    json.Field("wall_ms", r.wall_ms);
    json.Field("qps", r.qps);
    EmitHistogramFields(&json, r.latency);
    json.EndObject();
  }
  json.EndArray();
  json.Key("server");
  json.BeginObject();
  json.Field("connections_accepted", server_stats.connections_accepted);
  json.Field("requests_ok", server_stats.requests_ok);
  json.Field("requests_error", server_stats.requests_error);
  json.Field("protocol_errors", server_stats.protocol_errors);
  json.Field("queries", server_stats.queries);
  json.Field("batches", server_stats.batches);
  json.Field("requests_shed", server_stats.requests_shed);
  json.Field("deadline_drops", server_stats.deadline_drops);
  json.Field("connections_killed", server_stats.connections_killed);
  json.Field("connections_refused", server_stats.connections_refused);
  json.Field("faults_injected", server_stats.faults_injected);
  json.Field("write_queue_peak_bytes", server_stats.write_queue_peak_bytes);
  EmitHistogramFields(&json, server_stats.latency);
  json.EndObject();
  json.EndObject();
  json.Finish();
}

}  // namespace
}  // namespace mbp

int main(int argc, char** argv) {
  using namespace mbp;  // NOLINT
  const size_t knots = static_cast<size_t>(
      bench::FlagValue(argc, argv, "knots", 65536));
  const size_t connections = static_cast<size_t>(
      bench::FlagValue(argc, argv, "connections", 8));
  const size_t requests = static_cast<size_t>(
      bench::FlagValue(argc, argv, "requests", 2000));
  const size_t batch = static_cast<size_t>(
      bench::FlagValue(argc, argv, "batch", 64));
  const size_t shards = static_cast<size_t>(
      bench::FlagValue(argc, argv, "shards", 2));
  const std::string out_path = bench::FlagString(argc, argv, "out", "");

  bench::PrintHeader("Networked price serving (epoll TCP front end)");
  std::printf("knots=%zu  connections=%zu  requests/conn=%zu  batch=%zu  "
              "shards=%zu\n",
              knots, connections, requests, batch, shards);
  bench::PrintRule();

  const core::PiecewiseLinearPricing curve = MakeDenseCurve(knots);
  serving::SnapshotRegistry registry;
  if (!registry.Publish("menu", curve).ok()) {
    std::fprintf(stderr, "publish failed\n");
    return 1;
  }
  serving::PriceQueryEngine engine(&registry);
  net::ServerOptions options;
  options.num_shards = shards;
  options.default_curve_id = "menu";
  auto server = net::PriceServer::Start(&engine, options);
  if (!server.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  const uint16_t port = (*server)->port();
  std::printf("server on 127.0.0.1:%u\n", port);

  // Bit-identity gate: remote answers must reproduce the research path
  // exactly before anything is timed.
  const double x_hi = curve.points().back().x * 1.05;
  size_t mismatches = 0;
  {
    auto client = net::PriceClient::Connect("127.0.0.1", port);
    if (!client.ok()) {
      std::fprintf(stderr, "client connect failed: %s\n",
                   client.status().ToString().c_str());
      return 1;
    }
    random::Rng rng(42);
    std::vector<double> xs(4096);
    for (double& x : xs) x = rng.NextDouble(0.0, x_hi);
    const auto remote = (*client)->PriceBatch("menu", xs);
    if (!remote.ok()) {
      std::fprintf(stderr, "gate batch failed: %s\n",
                   remote.status().ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < xs.size(); ++i) {
      if ((*remote)[i] != curve.PriceAtInverseNcp(xs[i])) ++mismatches;
    }
  }
  std::printf("bit-identity gate: %zu mismatches over 4096 remote queries\n",
              mismatches);
  bench::PrintRule();

  std::atomic<size_t> failures{0};
  std::vector<RegimeResult> regimes;
  regimes.push_back(RunRegime("pingpong", port, connections, requests, 1,
                              x_hi, &failures));
  regimes.push_back(RunRegime("batched", port, connections, requests, batch,
                              x_hi, &failures));
  bench::PrintRule();
  const net::StatsPayload server_stats = (*server)->stats();
  std::printf("server: %llu requests ok, %llu queries, %llu batch "
              "dispatches, %llu errors\n",
              static_cast<unsigned long long>(server_stats.requests_ok),
              static_cast<unsigned long long>(server_stats.queries),
              static_cast<unsigned long long>(server_stats.batches),
              static_cast<unsigned long long>(server_stats.requests_error));
  if (failures.load() != 0) {
    std::fprintf(stderr, "%zu client round trips failed\n", failures.load());
  }
  (*server)->Shutdown();

  const bool bit_identical = mismatches == 0 && failures.load() == 0;
  if (out_path.empty()) {
    EmitJson(stdout, knots, connections, requests, batch, shards,
             bit_identical, regimes, server_stats);
  } else {
    FILE* out_file = std::fopen(out_path.c_str(), "w");
    if (out_file == nullptr) {
      std::fprintf(stderr, "cannot open --out=%s\n", out_path.c_str());
      return 1;
    }
    EmitJson(out_file, knots, connections, requests, batch, shards,
             bit_identical, regimes, server_stats);
    std::fclose(out_file);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return bit_identical ? 0 : 2;
}

// Reproduces Table 3 (dataset statistics): the six evaluation datasets,
// their paper-scale sizes, and the sizes actually generated at the chosen
// scale, plus the optimal model's training/test error as a sanity check
// that each synthetic stand-in carries learnable signal.
//
// Usage: table3_datasets [--scale=0.001]
// --scale=1 generates the full paper-scale datasets (minutes + gigabytes).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/check.h"
#include "data/uci_like.h"
#include "ml/metrics.h"
#include "ml/trainer.h"

namespace mbp {
namespace {

void Run(double scale) {
  bench::PrintHeader("Table 3: Dataset Statistics (scale=" +
                     std::to_string(scale) + ")");
  std::printf("%-12s %-14s %10s %10s %5s | %10s %10s %12s\n", "DataSet",
              "Task", "paper n1", "paper n2", "d", "gen n1", "gen n2",
              "opt err");
  bench::PrintRule(94);
  for (const data::DatasetSpec& spec : data::PaperTable3Specs()) {
    auto split = data::GenerateUciLike(spec, scale, /*seed=*/2026);
    MBP_CHECK(split.ok()) << split.status().ToString();

    const bool regression = spec.task == data::TaskType::kRegression;
    auto trained = ml::TrainOptimalModel(
        regression ? ml::ModelKind::kLinearRegression
                   : ml::ModelKind::kLogisticRegression,
        split->train, /*l2=*/1e-3);
    MBP_CHECK(trained.ok()) << trained.status().ToString();
    const double test_error =
        regression ? ml::MeanSquaredError(trained->model, split->test)
                   : ml::MisclassificationRate(trained->model, split->test);

    std::printf("%-12s %-14s %10zu %10zu %5zu | %10zu %10zu %12.4f\n",
                spec.name.c_str(), data::TaskTypeToString(spec.task).c_str(),
                spec.paper_train_examples, spec.paper_test_examples,
                spec.num_features, split->train.num_examples(),
                split->test.num_examples(), test_error);
  }
  std::printf(
      "\n'opt err' = optimal model's test error (MSE for regression, 0/1 "
      "for classification)\non the generated stand-in; see DESIGN.md §3 "
      "for the UCI substitution rationale.\n");
}

}  // namespace
}  // namespace mbp

int main(int argc, char** argv) {
  const double scale =
      mbp::bench::FlagValue(argc, argv, "scale", 0.001);
  mbp::Run(scale);
  return 0;
}

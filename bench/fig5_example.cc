// Reproduces the Figure 5 worked example: four quality levels a = 1..4
// with uniform demand b = 0.25 and valuations v = (100, 150, 280, 350),
// priced five ways:
//   (a) charge every valuation          -> arbitrage (shown by the attack)
//   (b) constant price                  -> arbitrage-free, loses revenue
//   (c) linear price                    -> arbitrage-free, loses revenue
//   (d) exact optimum (coNP-hard path)  -> prices (100,150,250,300), rev 200
//   (e) MBP approximation (poly time)   -> prices (100,150,225,300), rev 193.75

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "core/arbitrage.h"
#include "core/baselines.h"
#include "core/exact_opt.h"
#include "core/pricing_function.h"
#include "core/revenue_opt.h"

namespace mbp {
namespace {

using core::CurvePoint;

const std::vector<CurvePoint>& Curve() {
  static const std::vector<CurvePoint> kCurve{{1.0, 100.0, 0.25},
                                              {2.0, 150.0, 0.25},
                                              {3.0, 280.0, 0.25},
                                              {4.0, 350.0, 0.25}};
  return kCurve;
}

void Report(const char* panel, const char* name,
            const std::vector<double>& prices) {
  const double revenue = core::RevenueOf(Curve(), prices);
  const double affordability = core::AffordabilityOf(Curve(), prices);

  // Arbitrage check on the canonical piecewise-linear extension.
  auto pricing = core::PricingFromKnots(Curve(), prices);
  MBP_CHECK(pricing.ok());
  const auto price_fn = [&](double x) {
    return pricing->PriceAtInverseNcp(x);
  };
  auto attack = core::FindArbitrageAttack(price_fn, 4.0, 4);

  std::printf("%-4s %-22s [", panel, name);
  for (size_t j = 0; j < prices.size(); ++j) {
    std::printf("%s%7.2f", j ? ", " : "", prices[j]);
  }
  std::printf("]  rev %7.2f  afford %4.2f  %s\n", revenue, affordability,
              attack.has_value() ? "ARBITRAGE!" : "arbitrage-free");
  if (attack.has_value()) {
    std::printf(
        "       attack: combine instances at 1/NCP sums >= %.0f paying "
        "%.2f < posted %.2f\n",
        1.0 / attack->target_delta, attack->total_price,
        attack->target_price);
  }
}

void Run() {
  bench::PrintHeader(
      "Figure 5: revenue optimization worked example (a=1..4, b=0.25, "
      "v=100/150/280/350)");

  // (a) Price at the valuations.
  std::vector<double> valuations;
  for (const CurvePoint& point : Curve()) valuations.push_back(point.value);
  Report("(a)", "valuations", valuations);

  // (b) Best constant price.
  auto optc = core::PriceWithBaseline(core::BaselineKind::kOptimalConstant,
                                      Curve());
  MBP_CHECK(optc.ok());
  Report("(b)", "constant (OptC)", optc->prices);

  // (c) Linear pricing.
  auto lin = core::PriceWithBaseline(core::BaselineKind::kLinear, Curve());
  MBP_CHECK(lin.ok());
  Report("(c)", "linear (Lin)", lin->prices);

  // (d) Exact optimum over all monotone subadditive pricings.
  auto exact = core::MaximizeRevenueExact(Curve());
  MBP_CHECK(exact.ok());
  Report("(d)", "exact optimum", exact->prices);

  // (e) MBP's polynomial-time approximation.
  auto mbp = core::MaximizeRevenueDp(Curve());
  MBP_CHECK(mbp.ok());
  Report("(e)", "MBP (relaxed DP)", mbp->prices);

  std::printf(
      "\nPaper shape check: (d) >= (e) >= (d)/2 [Proposition 3]: %7.2f >= "
      "%7.2f >= %7.2f\n",
      exact->revenue, mbp->revenue, exact->revenue / 2.0);
}

}  // namespace
}  // namespace mbp

int main() {
  mbp::Run();
  return 0;
}

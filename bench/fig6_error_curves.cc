// Reproduces Figure 6 (error transformation curves): expected model error
// versus 1/NCP on all six datasets.
//   Row 1: square loss on Simulated1, YearMSD, CASP (linear regression).
//   Row 2: logistic loss on Simulated2, CovType, SUSY (logistic regression).
//   Row 3: 0/1 classification error on the same three datasets.
// Paper shape: every series decreases monotonically as 1/NCP grows.
//
// Usage: fig6_error_curves [--scale=0.0005] [--trials=200]
// The paper uses 2000 random models per NCP on full-size datasets
// (--scale=1 --trials=2000).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "core/error_transform.h"
#include "core/mechanism.h"
#include "data/uci_like.h"
#include "ml/trainer.h"

namespace mbp {
namespace {

// 1/NCP grid matching the paper's x-axis (1..100).
constexpr double kInvNcpMin = 1.0;
constexpr double kInvNcpMax = 100.0;
constexpr size_t kCurvePoints = 12;

void PrintCurve(const std::string& label,
                const core::EmpiricalErrorTransform& transform) {
  std::printf("%-28s", label.c_str());
  double prev = -1.0;
  bool monotone = true;
  for (size_t i = 0; i < kCurvePoints; ++i) {
    const double t = static_cast<double>(i) / (kCurvePoints - 1);
    const double inv_ncp =
        kInvNcpMin + t * (kInvNcpMax - kInvNcpMin);
    const double error = transform.ExpectedError(1.0 / inv_ncp);
    std::printf(" %9.4f", error);
    if (prev >= 0.0 && error > prev + 1e-9) monotone = false;
    prev = error;
  }
  std::printf("  %s\n", monotone ? "[monotone decreasing]" : "[VIOLATION]");
}

void PrintAxis() {
  std::printf("%-28s", "1/NCP ->");
  for (size_t i = 0; i < kCurvePoints; ++i) {
    const double t = static_cast<double>(i) / (kCurvePoints - 1);
    std::printf(" %9.1f", kInvNcpMin + t * (kInvNcpMax - kInvNcpMin));
  }
  std::printf("\n");
}

void Run(double scale, size_t trials) {
  bench::PrintHeader("Figure 6: Error Transformation Curves");
  std::printf("(expected test error vs 1/NCP; %zu Monte-Carlo models per "
              "point; paper uses 2000)\n\n",
              trials);
  PrintAxis();
  bench::PrintRule(28 + 10 * kCurvePoints);

  core::GaussianMechanism mechanism;
  core::EmpiricalErrorTransform::BuildOptions build;
  build.delta_min = 1.0 / kInvNcpMax;
  build.delta_max = 1.0 / kInvNcpMin;
  build.grid_size = 20;
  build.trials_per_delta = trials;
  build.seed = 99;
  build.parallel.num_threads = 4;  // deterministic regardless of thread count

  for (const data::DatasetSpec& spec : data::PaperTable3Specs()) {
    auto split = data::GenerateUciLike(spec, scale, /*seed=*/7, 300);
    MBP_CHECK(split.ok()) << split.status().ToString();
    const bool regression = spec.task == data::TaskType::kRegression;
    auto trained = ml::TrainOptimalModel(
        regression ? ml::ModelKind::kLinearRegression
                   : ml::ModelKind::kLogisticRegression,
        split->train, 1e-3);
    MBP_CHECK(trained.ok()) << trained.status().ToString();
    const linalg::Vector& optimal = trained->model.coefficients();

    // Row-appropriate error functions ε, all evaluated on the test set.
    std::vector<ml::LossKind> epsilons;
    if (regression) {
      epsilons = {ml::LossKind::kSquare};
    } else {
      epsilons = {ml::LossKind::kLogistic, ml::LossKind::kZeroOne};
    }
    for (ml::LossKind kind : epsilons) {
      const std::unique_ptr<ml::Loss> epsilon = ml::MakeLoss(kind, 0.0);
      auto transform = core::EmpiricalErrorTransform::Build(
          mechanism, optimal, *epsilon, split->test, build);
      MBP_CHECK(transform.ok()) << transform.status().ToString();
      PrintCurve(spec.name + " / " + epsilon->name(), *transform);
    }
  }
  std::printf(
      "\nPaper shape: every row decreases in 1/NCP (Theorem 4 for convex "
      "losses;\nempirically also for the non-convex 0/1 error).\n");
}

}  // namespace
}  // namespace mbp

int main(int argc, char** argv) {
  const double scale = mbp::bench::FlagValue(argc, argv, "scale", 0.0005);
  const auto trials = static_cast<size_t>(
      mbp::bench::FlagValue(argc, argv, "trials", 200));
  mbp::Run(scale, trials);
  return 0;
}

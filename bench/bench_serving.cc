// Throughput/latency harness for the price-query serving engine
// (DESIGN.md §5b): measures point-query regimes against the research
// path `PiecewiseLinearPricing::PriceAtInverseNcp` and the batch path's
// thread scaling, then emits a machine-readable JSON document.
//
// Regimes (all single-thread unless noted):
//   direct_cold     research-path eval over a stream of distinct xs
//   direct_hot      research-path eval over the small repeating working set
//   snapshot_cold   compiled PricingSnapshot::PriceAt, same distinct stream
//   engine_cold     PriceQueryEngine::Price, fresh cache (every query a miss)
//   engine_hot      PriceQueryEngine::Price, warmed cache (every query a hit)
//   batch @ T       PriceQueryEngine::PriceBatch at 1/2/4/hw threads
//
// Every serving-path price is checked bit-identical to the research path
// before anything is timed; the process exits non-zero on a mismatch.
// Flags:
//   --knots=N      knots in the compiled curve (default 65536)
//   --queries=N    queries per timed pass (default 200000)
//   --distinct=N   working-set size for the hot regimes (default 512)
//   --reps=N       timed passes per regime, best kept (default 3)
//   --out=FILE     write the JSON there instead of stdout

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "core/pricing_function.h"
#include "random/rng.h"
#include "serving/price_query_engine.h"
#include "serving/pricing_snapshot.h"
#include "serving/snapshot_registry.h"

namespace mbp {
namespace {

struct RegimeResult {
  std::string name;
  double millis = 0.0;      // best-of-reps for one pass of `queries` queries
  double ns_per_query = 0.0;
  double qps = 0.0;
  double checksum = 0.0;    // defeats dead-code elimination; cross-checked
};

struct BatchResult {
  size_t threads = 1;
  double millis = 0.0;
  double qps = 0.0;
  double speedup = 1.0;  // vs the 1-thread batch run
  bool identical_to_serial = true;
};

double MillisSince(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

std::vector<size_t> ThreadCounts() {
  std::vector<size_t> counts{1, 2, 4,
                             ParallelConfig{/*num_threads=*/0}
                                 .ResolvedThreads()};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

// A dense concave menu: price = sqrt(x), monotone with decreasing
// price/x ratio, so it passes the arbitrage-freeness certificate at any
// knot count.
core::PiecewiseLinearPricing MakeDenseCurve(size_t knots) {
  std::vector<core::PricePoint> points;
  points.reserve(knots);
  for (size_t i = 1; i <= knots; ++i) {
    const double x = static_cast<double>(i);
    points.push_back({x, std::sqrt(x)});
  }
  return core::PiecewiseLinearPricing::Create(points).value();
}

// Times `body` (one full pass over the query stream) `reps` times and
// keeps the fastest pass. `setup` runs before each pass OUTSIDE the timed
// window (e.g. resetting a cache for the cold regime). `body` returns its
// price checksum.
template <typename Setup, typename Body>
RegimeResult TimeRegime(const std::string& name, size_t queries, int reps,
                        const Setup& setup, const Body& body) {
  RegimeResult result;
  result.name = name;
  result.millis = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    setup();
    const auto start = std::chrono::steady_clock::now();
    const double checksum = body();
    const double millis = MillisSince(start);
    if (rep == 0 || millis < result.millis) result.millis = millis;
    result.checksum = checksum;
  }
  result.ns_per_query =
      result.millis * 1e6 / static_cast<double>(queries);
  result.qps = static_cast<double>(queries) / (result.millis * 1e-3);
  std::printf("  %-14s %9.2f ms   %8.1f ns/query   %11.0f qps\n",
              result.name.c_str(), result.millis, result.ns_per_query,
              result.qps);
  return result;
}

void EmitJson(FILE* out, size_t knots, size_t queries, size_t distinct,
              const std::vector<RegimeResult>& regimes,
              double speedup_cold, double speedup_hot, size_t mismatches,
              const std::vector<BatchResult>& batches) {
  bench::JsonWriter json(out);
  json.BeginObject();
  json.Field("bench", "bench_serving");
  json.Field("knots", knots);
  json.Field("queries_per_pass", queries);
  json.Field("hot_working_set", distinct);
  json.Field("hardware_concurrency",
             static_cast<size_t>(std::thread::hardware_concurrency()));
  json.Field("pool_workers", ThreadPool::Shared().num_workers());
  json.Key("point_regimes");
  json.BeginArray();
  for (const RegimeResult& r : regimes) {
    json.BeginObject();
    json.Field("name", r.name);
    json.Field("ms", r.millis);
    json.Field("ns_per_query", r.ns_per_query);
    json.Field("qps", r.qps);
    json.EndObject();
  }
  json.EndArray();
  json.Field("speedup_cold_vs_direct", speedup_cold);
  json.Field("speedup_hot_vs_direct", speedup_hot);
  json.Field("bit_identical_to_research_path", mismatches == 0);
  json.Key("batch");
  json.BeginArray();
  for (const BatchResult& b : batches) {
    json.BeginObject();
    json.Field("threads", b.threads);
    json.Field("ms", b.millis);
    json.Field("qps", b.qps);
    json.Field("speedup", b.speedup);
    json.Field("identical_to_serial", b.identical_to_serial);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  json.Finish();
}

}  // namespace
}  // namespace mbp

int main(int argc, char** argv) {
  using namespace mbp;  // NOLINT
  const size_t knots = static_cast<size_t>(
      bench::FlagValue(argc, argv, "knots", 65536));
  const size_t queries = static_cast<size_t>(
      bench::FlagValue(argc, argv, "queries", 200000));
  const size_t distinct = static_cast<size_t>(
      bench::FlagValue(argc, argv, "distinct", 512));
  const int reps =
      static_cast<int>(bench::FlagValue(argc, argv, "reps", 3));
  const std::string out_path = bench::FlagString(argc, argv, "out", "");

  bench::PrintHeader("Price-query serving engine");
  std::printf("knots=%zu  queries/pass=%zu  hot working set=%zu  reps=%d\n",
              knots, queries, distinct, reps);
  bench::PrintRule();

  const core::PiecewiseLinearPricing curve = MakeDenseCurve(knots);
  const auto snapshot = serving::PricingSnapshot::Compile(curve).value();
  serving::SnapshotRegistry registry;
  const serving::SnapshotRegistry::CurveSlot* slot =
      registry.Publish("menu", curve).value();

  // Query streams: `queries` distinct xs for the cold regimes (spread over
  // the full domain plus the constant tail), and the same count drawn from
  // a `distinct`-sized working set for the hot regimes.
  const double x_hi = curve.points().back().x * 1.05;
  random::Rng rng(42);
  std::vector<double> cold_xs(queries);
  for (double& x : cold_xs) x = rng.NextDouble(0.0, x_hi);
  std::vector<double> working_set(distinct);
  for (double& x : working_set) x = rng.NextDouble(0.0, x_hi);
  std::vector<double> hot_xs(queries);
  for (size_t i = 0; i < queries; ++i) {
    hot_xs[i] = working_set[rng.NextBounded(distinct)];
  }

  // Bit-identity gate: every serving path must reproduce the research
  // path exactly, on every query, before anything is timed.
  serving::PriceQueryEngine check_engine(&registry);
  size_t mismatches = 0;
  for (const double x : cold_xs) {
    const double want = curve.PriceAtInverseNcp(x);
    if (snapshot->PriceAt(x) != want) ++mismatches;
    if (check_engine.Price(slot, x).value() != want) ++mismatches;
    if (check_engine.Price(slot, x).value() != want) ++mismatches;  // cached
  }
  std::printf("bit-identity gate: %zu mismatches over %zu queries "
              "(snapshot + engine cold + engine hot)\n",
              mismatches, cold_xs.size());
  bench::PrintRule();

  std::vector<RegimeResult> regimes;

  const auto no_setup = [] {};
  regimes.push_back(TimeRegime(
      "direct_cold", queries, reps, no_setup, [&] {
        double sum = 0.0;
        for (const double x : cold_xs) sum += curve.PriceAtInverseNcp(x);
        return sum;
      }));
  regimes.push_back(TimeRegime(
      "direct_hot", queries, reps, no_setup, [&] {
        double sum = 0.0;
        for (const double x : hot_xs) sum += curve.PriceAtInverseNcp(x);
        return sum;
      }));
  regimes.push_back(TimeRegime(
      "snapshot_cold", queries, reps, no_setup, [&] {
        double sum = 0.0;
        for (const double x : cold_xs) sum += snapshot->PriceAt(x);
        return sum;
      }));

  // Cache dropped before each pass (outside the timer) so every timed
  // query misses and pays the memo fill — the real first-touch cost.
  serving::PriceQueryEngine cold_engine(&registry);
  regimes.push_back(TimeRegime(
      "engine_cold", queries, reps, [&] { cold_engine.ClearCache(); }, [&] {
        double sum = 0.0;
        for (const double x : cold_xs) {
          sum += cold_engine.Price(slot, x).value();
        }
        return sum;
      }));

  // One engine warmed on the working set; every timed query is a hit.
  serving::PriceQueryEngine hot_engine(&registry);
  for (const double x : working_set) (void)hot_engine.Price(slot, x);
  regimes.push_back(TimeRegime(
      "engine_hot", queries, reps, no_setup, [&] {
        double sum = 0.0;
        for (const double x : hot_xs) sum += hot_engine.Price(slot, x).value();
        return sum;
      }));
  const auto stats = hot_engine.cache_stats();
  std::printf("hot engine cache: %llu hits / %llu misses\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses));

  // Checksum cross-checks (same stream => identical sums, bitwise).
  if (regimes[0].checksum != regimes[2].checksum ||
      regimes[0].checksum != regimes[3].checksum ||
      regimes[1].checksum != regimes[4].checksum) {
    ++mismatches;
    std::printf("CHECKSUM MISMATCH across regimes (bug)\n");
  }

  const double speedup_cold =
      regimes[3].millis > 0.0 ? regimes[0].millis / regimes[3].millis : 0.0;
  const double speedup_hot =
      regimes[4].millis > 0.0 ? regimes[1].millis / regimes[4].millis : 0.0;
  bench::PrintRule();
  std::printf("speedup vs direct:  cold-cache %.2fx   hot-cache %.2fx\n",
              speedup_cold, speedup_hot);
  bench::PrintRule();

  // Batch scaling: one PriceBatch call over the cold stream per pass.
  serving::PriceQueryEngineOptions batch_options;
  batch_options.min_parallel_batch = 1;  // always dispatch to the pool
  serving::PriceQueryEngine batch_engine(&registry, batch_options);
  std::vector<BatchResult> batches;
  std::vector<double> serial_out(queries);
  std::vector<double> out(queries);
  double serial_millis = 0.0;
  for (const size_t threads : ThreadCounts()) {
    ParallelConfig parallel;
    parallel.num_threads = threads;
    BatchResult b;
    b.threads = threads;
    for (int rep = 0; rep < reps; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      const Status status = batch_engine.PriceBatch(
          slot, cold_xs.data(), out.data(), queries, parallel);
      const double millis = MillisSince(start);
      if (!status.ok()) {
        std::fprintf(stderr, "PriceBatch failed: %s\n",
                     status.message().c_str());
        return 1;
      }
      if (rep == 0 || millis < b.millis) b.millis = millis;
    }
    if (threads == 1) {
      serial_out = out;
      serial_millis = b.millis;
    }
    b.qps = static_cast<double>(queries) / (b.millis * 1e-3);
    b.speedup = b.millis > 0.0 ? serial_millis / b.millis : 1.0;
    b.identical_to_serial = out == serial_out;
    if (!b.identical_to_serial) ++mismatches;
    batches.push_back(b);
    std::printf("  batch threads=%2zu  %9.2f ms  %11.0f qps  speedup=%.2fx  %s\n",
                threads, b.millis, b.qps, b.speedup,
                b.identical_to_serial ? "bit-identical" : "MISMATCH");
  }
  bench::PrintRule();

  if (out_path.empty()) {
    EmitJson(stdout, knots, queries, distinct, regimes, speedup_cold,
             speedup_hot, mismatches, batches);
  } else {
    FILE* out_file = std::fopen(out_path.c_str(), "w");
    if (out_file == nullptr) {
      std::fprintf(stderr, "cannot open --out=%s\n", out_path.c_str());
      return 1;
    }
    EmitJson(out_file, knots, queries, distinct, regimes, speedup_cold,
             speedup_hot, mismatches, batches);
    std::fclose(out_file);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return mismatches == 0 ? 0 : 2;
}

// Two-level kernel benchmark (see DESIGN.md §5c):
//
//   1. Flop level — scalar vs SIMD micro-kernel timings (Dot, MatTVec,
//      GramMatrix) at Table-3-like scales, single thread, by pinning the
//      dispatch table to each variant in turn. Reports the speedup and the
//      max relative deviation of SIMD from scalar (exactness gate: 1e-10).
//
//   2. Reuse level — cold vs warm SufficientStats regimes: an l2-sweep of
//      closed-form retrains and a SelectL2-style k-fold CV, each timed
//      from-scratch (no cache, per-fold Subset + full Gram) and through
//      the stats cache + fold downdates. Reports the speedup and whether
//      cached training is bit-identical to uncached.
//
// Emits one JSON document (bench_util.h JsonWriter). Flags:
//   --out=FILE   write JSON there instead of stdout
//   --scale=S    multiply workload sizes by S (default 1.0)
//
// scripts/bench_record.sh appends the document to BENCH_kernels.json so
// future PRs can track the trajectory.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/cpu_features.h"
#include "common/timer.h"
#include "data/synthetic.h"
#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "linalg/vector_ops.h"
#include "ml/cross_validation.h"
#include "ml/loss.h"
#include "ml/sufficient_stats.h"
#include "ml/trainer.h"
#include "random/rng.h"
#include "random/distributions.h"

namespace mbp {
namespace {

struct KernelRow {
  std::string name;
  std::string workload;
  double scalar_ms = 0.0;
  double simd_ms = 0.0;
  double speedup = 0.0;
  double max_rel_diff = 0.0;
  bool within_tolerance = true;  // 1e-10 relative
};

struct ReuseRow {
  std::string name;
  std::string workload;
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  double speedup = 0.0;
  bool bit_identical = true;  // cached vs uncached results
};

// Median-of-3 wall time of `body` in milliseconds.
double TimeMs(const std::function<void()>& body) {
  double times[3];
  for (double& t : times) {
    Timer timer;
    body();
    t = timer.ElapsedSeconds() * 1e3;
  }
  std::sort(times, times + 3);
  return times[1];
}

double MaxRelDiff(const std::vector<double>& a, const std::vector<double>& b) {
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double scale = std::max({1.0, std::abs(a[i]), std::abs(b[i])});
    worst = std::max(worst, std::abs(a[i] - b[i]) / scale);
  }
  return worst;
}

// Times `body` once with the dispatch pinned to scalar and once pinned to
// the SIMD variant; `body` returns a result fingerprint for the exactness
// comparison. With no SIMD variant available, both timings run scalar.
KernelRow SweepKernel(
    const std::string& name, const std::string& workload,
    const std::function<std::vector<double>()>& body) {
  using linalg::kernels::ForceLevelForTesting;
  KernelRow row;
  row.name = name;
  row.workload = workload;
  MBP_CHECK(ForceLevelForTesting(SimdLevel::kScalar));
  const std::vector<double> scalar_result = body();
  row.scalar_ms = TimeMs([&] { body(); });
  const bool have_simd = ForceLevelForTesting(SimdLevel::kAvx2Fma);
  const std::vector<double> simd_result = body();
  row.simd_ms = TimeMs([&] { body(); });
  MBP_CHECK(ForceLevelForTesting(std::nullopt));
  row.speedup = row.simd_ms > 0.0 ? row.scalar_ms / row.simd_ms : 0.0;
  row.max_rel_diff =
      have_simd ? MaxRelDiff(scalar_result, simd_result) : 0.0;
  row.within_tolerance = row.max_rel_diff <= 1e-10;
  return row;
}

data::Dataset MakeDataset(size_t n, size_t d, uint64_t seed) {
  data::Simulated1Options options;
  options.num_examples = n;
  options.num_features = d;
  options.seed = seed;
  auto dataset = data::GenerateSimulated1(options);
  MBP_CHECK(dataset.ok());
  return std::move(dataset).value();
}

std::vector<double> Flatten(const linalg::Matrix& m) {
  return std::vector<double>(m.data(), m.data() + m.rows() * m.cols());
}

std::vector<double> Flatten(const linalg::Vector& v) {
  return std::vector<double>(v.data(), v.data() + v.size());
}

// --- Reuse-level scenarios -------------------------------------------------

// Cold: every retrain rebuilds Gram/X^T y from the examples. Warm: the
// stats cache pays the O(n d^2) pass once and each retrain is a solve.
ReuseRow SweepL2Retrain(const data::Dataset& dataset,
                        const std::vector<double>& candidates) {
  ReuseRow row;
  row.name = "l2_sweep_retrain";
  row.workload = "n=" + std::to_string(dataset.num_examples()) +
                 " d=" + std::to_string(dataset.num_features()) +
                 " retrains=" + std::to_string(candidates.size());
  std::vector<double> cold_coeffs, warm_coeffs;
  row.cold_ms = TimeMs([&] {
    cold_coeffs.clear();
    for (double l2 : candidates) {
      auto trained = ml::TrainLinearRegression(dataset, l2, nullptr);
      MBP_CHECK(trained.ok());
      const auto flat = Flatten(trained->model.coefficients());
      cold_coeffs.insert(cold_coeffs.end(), flat.begin(), flat.end());
    }
  });
  ml::SufficientStatsCache cache(8);
  (void)cache.GetOrBuild(dataset);  // pay the build before timing
  row.warm_ms = TimeMs([&] {
    warm_coeffs.clear();
    for (double l2 : candidates) {
      auto trained = ml::TrainLinearRegression(dataset, l2, &cache);
      MBP_CHECK(trained.ok());
      const auto flat = Flatten(trained->model.coefficients());
      warm_coeffs.insert(warm_coeffs.end(), flat.begin(), flat.end());
    }
  });
  row.speedup = row.warm_ms > 0.0 ? row.cold_ms / row.warm_ms : 0.0;
  row.bit_identical = cold_coeffs == warm_coeffs;
  return row;
}

// Cold: the pre-reuse CV shape — per candidate, per fold, materialize the
// training Subset and train from scratch. Warm: SelectL2ByCrossValidation,
// which builds fold contexts (downdated stats) once and reuses them for
// every candidate.
ReuseRow SweepCvSelect(const data::Dataset& dataset,
                       const std::vector<double>& candidates, size_t folds) {
  ReuseRow row;
  row.name = "cv_select_l2";
  row.workload = "n=" + std::to_string(dataset.num_examples()) +
                 " d=" + std::to_string(dataset.num_features()) +
                 " folds=" + std::to_string(folds) +
                 " candidates=" + std::to_string(candidates.size());
  const ml::SquareLoss eval_loss(0.0);
  const ParallelConfig serial = ParallelConfig::Serial();

  row.cold_ms = TimeMs([&] {
    // From-scratch baseline with the same fold geometry (contiguous
    // chunks of a fixed permutation).
    random::Rng rng(99);
    std::vector<size_t> order(dataset.num_examples());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.NextUint64() % i]);
    }
    const size_t base = order.size() / folds;
    for (double l2 : candidates) {
      for (size_t f = 0; f < folds; ++f) {
        const size_t begin = f * base;
        const size_t end = f + 1 == folds ? order.size() : begin + base;
        std::vector<size_t> train_idx(order.begin(), order.begin() + begin);
        train_idx.insert(train_idx.end(), order.begin() + end, order.end());
        std::vector<size_t> test_idx(order.begin() + begin,
                                     order.begin() + end);
        const data::Dataset train = dataset.Subset(train_idx);
        const data::Dataset test = dataset.Subset(test_idx);
        auto trained = ml::TrainLinearRegression(train, l2, nullptr);
        MBP_CHECK(trained.ok());
        (void)eval_loss.Evaluate(trained->model.coefficients(), test);
      }
    }
  });
  row.warm_ms = TimeMs([&] {
    random::Rng rng(99);
    auto best = ml::SelectL2ByCrossValidation(
        ml::ModelKind::kLinearRegression, dataset, candidates, eval_loss,
        folds, rng, serial);
    MBP_CHECK(best.ok());
  });
  row.speedup = row.warm_ms > 0.0 ? row.cold_ms / row.warm_ms : 0.0;
  return row;
}

void EmitJson(FILE* out, const std::vector<KernelRow>& kernels,
              const std::vector<ReuseRow>& reuse) {
  bench::JsonWriter json(out);
  json.BeginObject();
  json.Field("bench", "kernels");

  const CpuFeatures& cpu = DetectCpuFeatures();
  json.Key("dispatch");
  json.BeginObject();
#if defined(MBP_HAVE_AVX2)
  json.Field("build_has_avx2_variants", true);
#else
  json.Field("build_has_avx2_variants", false);
#endif
  json.Field("cpu_avx", cpu.avx);
  json.Field("cpu_avx2", cpu.avx2);
  json.Field("cpu_fma", cpu.fma);
  json.Field("active_level", SimdLevelName(ActiveSimdLevel()));
  json.EndObject();

  json.Key("kernel_speedups");
  json.BeginArray();
  for (const KernelRow& row : kernels) {
    json.BeginObject();
    json.Field("kernel", row.name);
    json.Field("workload", row.workload);
    json.Field("scalar_ms", row.scalar_ms);
    json.Field("simd_ms", row.simd_ms);
    json.Field("speedup", row.speedup);
    json.Field("max_rel_diff", row.max_rel_diff);
    json.Field("within_1e-10", row.within_tolerance);
    json.EndObject();
  }
  json.EndArray();

  json.Key("stats_reuse");
  json.BeginArray();
  for (const ReuseRow& row : reuse) {
    json.BeginObject();
    json.Field("scenario", row.name);
    json.Field("workload", row.workload);
    json.Field("cold_ms", row.cold_ms);
    json.Field("warm_ms", row.warm_ms);
    json.Field("speedup", row.speedup);
    json.Field("bit_identical", row.bit_identical);
    json.EndObject();
  }
  json.EndArray();

  json.EndObject();
  json.Finish();
}

int Run(int argc, char** argv) {
  const double scale = bench::FlagValue(argc, argv, "scale", 1.0);
  const std::string out_path = bench::FlagString(argc, argv, "out", "");

  // Table-3-like single-thread kernel workloads: YearMSD's d=90 at a
  // sub-sampled n, and a long-vector dot.
  const size_t gram_n = static_cast<size_t>(38650 * scale);
  const size_t gram_d = 90;
  const data::Dataset gram_data = MakeDataset(gram_n, gram_d, 21);

  bench::PrintHeader("kernel dispatch");
  std::printf("active level: %s\n",
              SimdLevelName(ActiveSimdLevel()).c_str());

  std::vector<KernelRow> kernels;
  {
    const linalg::Matrix& x = gram_data.features();
    kernels.push_back(SweepKernel(
        "gram_matrix",
        "n=" + std::to_string(gram_n) + " d=" + std::to_string(gram_d) +
            " threads=1",
        [&] { return Flatten(linalg::GramMatrix(x, ParallelConfig::Serial())); }));
    kernels.push_back(SweepKernel(
        "mat_t_vec",
        "n=" + std::to_string(gram_n) + " d=" + std::to_string(gram_d) +
            " threads=1",
        [&] {
          return Flatten(linalg::MatTVec(x, gram_data.targets(),
                                         ParallelConfig::Serial()));
        }));
    // Cache-resident vectors (2 x 64 KiB): measures the kernel's
    // arithmetic throughput, not DRAM bandwidth.
    const size_t dot_n = 8192;
    const size_t dot_reps = 4096;
    random::Rng rng(31);
    std::vector<double> a(dot_n), b(dot_n);
    for (size_t i = 0; i < dot_n; ++i) {
      a[i] = random::SampleNormal(rng, 0.0, 1.0);
      b[i] = random::SampleNormal(rng, 0.0, 1.0);
    }
    kernels.push_back(SweepKernel(
        "dot",
        "n=" + std::to_string(dot_n) + " reps=" + std::to_string(dot_reps),
        [&] {
          double total = 0.0;
          for (size_t rep = 0; rep < dot_reps; ++rep) {
            total += linalg::Dot(a.data(), b.data(), dot_n);
          }
          return std::vector<double>{total};
        }));
  }

  bench::PrintHeader("scalar vs SIMD (single thread)");
  for (const KernelRow& row : kernels) {
    std::printf("%-12s %-28s scalar %8.2f ms  simd %8.2f ms  %5.2fx  "
                "max_rel_diff %.2e %s\n",
                row.name.c_str(), row.workload.c_str(), row.scalar_ms,
                row.simd_ms, row.speedup, row.max_rel_diff,
                row.within_tolerance ? "OK" : "FAIL");
  }

  std::vector<ReuseRow> reuse;
  const std::vector<double> candidates = {0.0001, 0.001, 0.01, 0.1,
                                          1.0,    10.0};
  reuse.push_back(SweepL2Retrain(gram_data, candidates));
  const data::Dataset cv_data =
      MakeDataset(static_cast<size_t>(20000 * scale), 60, 22);
  reuse.push_back(SweepCvSelect(cv_data, candidates, 5));

  bench::PrintHeader("cold vs warm sufficient statistics");
  for (const ReuseRow& row : reuse) {
    std::printf("%-18s %-40s cold %8.2f ms  warm %8.2f ms  %5.2fx%s\n",
                row.name.c_str(), row.workload.c_str(), row.cold_ms,
                row.warm_ms, row.speedup,
                row.bit_identical ? "  bit-identical" : "");
  }

  if (out_path.empty()) {
    EmitJson(stdout, kernels, reuse);
  } else {
    FILE* out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open --out=%s\n", out_path.c_str());
      return 1;
    }
    EmitJson(out, kernels, reuse);
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace mbp

int main(int argc, char** argv) { return mbp::Run(argc, argv); }

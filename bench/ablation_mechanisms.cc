// Ablation (DESIGN.md §6): how the choice of noise mechanism — Gaussian
// (the paper's K_G), Laplace, or uniform additive — affects the error
// transformation curve. All three are normalized to E||w||^2 = delta, so
// Lemma 3 predicts identical model-space square error; the dataset-level
// error curves should therefore nearly coincide, confirming that the MBP
// framework is not tied to Gaussian noise (only Theorem 5's proof is).
//
// Usage: ablation_mechanisms [--trials=300]

#include <cmath>
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/check.h"
#include "core/error_transform.h"
#include "core/mechanism.h"
#include "data/synthetic.h"
#include "data/split.h"
#include "ml/trainer.h"

namespace mbp {
namespace {

void Run(size_t trials) {
  bench::PrintHeader(
      "Ablation: error transformation curve per noise mechanism");

  data::Simulated1Options data_options;
  data_options.num_examples = 2000;
  data_options.num_features = 10;
  data_options.noise_stddev = 0.1;
  data_options.seed = 17;
  const data::Dataset dataset =
      data::GenerateSimulated1(data_options).value();
  random::Rng rng(18);
  const data::TrainTestSplit split =
      data::RandomSplit(dataset, 0.25, rng).value();
  const linalg::Vector optimal =
      ml::TrainOptimalModel(ml::ModelKind::kLinearRegression, split.train,
                            1e-4)
          .value()
          .model.coefficients();

  const ml::SquareLoss epsilon(0.0);
  core::EmpiricalErrorTransform::BuildOptions build;
  build.delta_min = 0.01;
  build.delta_max = 1.0;
  build.grid_size = 10;
  build.trials_per_delta = trials;
  build.seed = 5;

  std::printf("%-18s", "delta ->");
  for (size_t g = 0; g < build.grid_size; ++g) {
    const double ratio =
        std::pow(build.delta_max / build.delta_min,
                 1.0 / (build.grid_size - 1));
    std::printf(" %8.4f", build.delta_min * std::pow(ratio, g));
  }
  std::printf("\n");
  bench::PrintRule(18 + 9 * build.grid_size);

  for (core::MechanismKind kind :
       {core::MechanismKind::kGaussian, core::MechanismKind::kLaplace,
        core::MechanismKind::kUniformAdditive}) {
    const std::unique_ptr<core::RandomizedMechanism> mechanism =
        core::MakeMechanism(kind);
    auto transform = core::EmpiricalErrorTransform::Build(
        *mechanism, optimal, epsilon, split.test, build);
    MBP_CHECK(transform.ok());
    std::printf("%-18s", mechanism->name().c_str());
    for (double error : transform->error_grid()) {
      std::printf(" %8.4f", error);
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected: the three rows nearly coincide (all mechanisms share "
      "E||w||^2 = delta).\n");
}

}  // namespace
}  // namespace mbp

int main(int argc, char** argv) {
  const auto trials = static_cast<size_t>(
      mbp::bench::FlagValue(argc, argv, "trials", 300));
  mbp::Run(trials);
  return 0;
}

#ifndef MBP_BENCH_BENCH_UTIL_H_
#define MBP_BENCH_BENCH_UTIL_H_

// Shared helpers for the paper-figure reproduction harnesses. Each bench
// binary prints the rows/series of one table or figure from the paper
// (see DESIGN.md §2); these helpers keep the output format consistent.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace mbp::bench {

// Parses "--name=value" style flags from argv. Returns fallback when the
// flag is absent or malformed.
inline double FlagValue(int argc, char** argv, const char* name,
                        double fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atof(argv[i] + prefix.size());
    }
  }
  return fallback;
}

inline bool FlagPresent(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

// Returns the value of a "--name=value" string flag, or fallback.
inline std::string FlagString(int argc, char** argv, const char* name,
                              const std::string& fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

// Prints a section header in the style used across all harnesses.
inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRule(size_t width = 78) {
  for (size_t i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

// Minimal streaming JSON writer for machine-readable bench output
// (BENCH_*.json trajectories consumed by later PRs). Handles comma
// placement; the caller is responsible for balanced Begin/End calls.
class JsonWriter {
 public:
  explicit JsonWriter(FILE* out) : out_(out) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void BeginObject() { Open('{'); }
  void EndObject() { Close('}'); }
  void BeginArray() { Open('['); }
  void EndArray() { Close(']'); }

  // Starts `"key": ` inside an object; follow with a value or container.
  void Key(const std::string& key) {
    Separate();
    WriteEscaped(key);
    std::fprintf(out_, ": ");
    pending_value_ = true;
  }

  void Value(const std::string& value) {
    Separate();
    WriteEscaped(value);
  }
  void Value(const char* value) { Value(std::string(value)); }
  void Value(double value) {
    Separate();
    std::fprintf(out_, "%.17g", value);
  }
  void Value(size_t value) {
    Separate();
    std::fprintf(out_, "%zu", value);
  }
  void Value(bool value) {
    Separate();
    std::fprintf(out_, value ? "true" : "false");
  }

  // Convenience: Key + Value.
  template <typename T>
  void Field(const std::string& key, const T& value) {
    Key(key);
    Value(value);
  }

  // Terminates the document with a newline.
  void Finish() { std::fputc('\n', out_); }

 private:
  void Separate() {
    if (pending_value_) {
      pending_value_ = false;
      return;  // the value completes a "key: " pair; no comma, no indent
    }
    if (!first_.empty() && !first_.back()) std::fprintf(out_, ",");
    if (!first_.empty()) {
      std::fprintf(out_, "\n");
      for (size_t i = 0; i < first_.size(); ++i) std::fprintf(out_, "  ");
      first_.back() = false;
    }
  }

  void Open(char bracket) {
    Separate();
    std::fputc(bracket, out_);
    first_.push_back(true);
  }

  void Close(char bracket) {
    const bool was_empty = !first_.empty() && first_.back();
    first_.pop_back();
    if (!was_empty) {
      std::fprintf(out_, "\n");
      for (size_t i = 0; i < first_.size(); ++i) std::fprintf(out_, "  ");
    }
    std::fputc(bracket, out_);
  }

  void WriteEscaped(const std::string& text) {
    std::fputc('"', out_);
    for (char c : text) {
      switch (c) {
        case '"': std::fprintf(out_, "\\\""); break;
        case '\\': std::fprintf(out_, "\\\\"); break;
        case '\n': std::fprintf(out_, "\\n"); break;
        case '\t': std::fprintf(out_, "\\t"); break;
        default: std::fputc(c, out_);
      }
    }
    std::fputc('"', out_);
  }

  FILE* out_;
  std::vector<bool> first_;   // per open container: no element emitted yet
  bool pending_value_ = false;
};

}  // namespace mbp::bench

#endif  // MBP_BENCH_BENCH_UTIL_H_

#ifndef MBP_BENCH_BENCH_UTIL_H_
#define MBP_BENCH_BENCH_UTIL_H_

// Shared helpers for the paper-figure reproduction harnesses. Each bench
// binary prints the rows/series of one table or figure from the paper
// (see DESIGN.md §2); these helpers keep the output format consistent.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace mbp::bench {

// Parses "--name=value" style flags from argv. Returns fallback when the
// flag is absent or malformed.
inline double FlagValue(int argc, char** argv, const char* name,
                        double fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atof(argv[i] + prefix.size());
    }
  }
  return fallback;
}

inline bool FlagPresent(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

// Prints a section header in the style used across all harnesses.
inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRule(size_t width = 78) {
  for (size_t i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace mbp::bench

#endif  // MBP_BENCH_BENCH_UTIL_H_

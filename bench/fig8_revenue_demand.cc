// Reproduces Figure 8 (revenue and affordability gain, varying the buyer
// demand curve): the value curve is held fixed (concave) and the demand
// curve switches from mid-peaked (most buyers want medium accuracy,
// panels a/c/e/g) to bimodal extremes (buyers want very low or very high
// accuracy, panels b/d/f/h).
//
// Paper shape: MBP adapts its price curve to where demand concentrates
// and attains the highest revenue under both demand profiles; the
// single-price baselines cannot follow the demand shift.

#include "bench/bench_util.h"
#include "bench/market_comparison.h"
#include "common/check.h"
#include "core/curves.h"

namespace mbp {
namespace {

void RunPanel(const char* label, core::DemandShape demand_shape) {
  core::MarketCurveOptions options;
  options.num_points = 10;
  options.x_min = 10.0;
  options.x_max = 100.0;
  options.max_value = 100.0;
  options.value_shape = core::ValueShape::kConcave;
  options.demand_shape = demand_shape;
  auto curve = core::MakeMarketCurve(options);
  MBP_CHECK(curve.ok());

  bench::PrintMarketCurve(
      std::string("Figure 8") + label + ": value curve = concave, demand = " +
          core::DemandShapeToString(demand_shape),
      *curve);
  bench::PrintComparison(*curve, bench::CompareMethods(*curve));
}

}  // namespace
}  // namespace mbp

int main() {
  mbp::RunPanel("(a,c,e,g)", mbp::core::DemandShape::kMidPeaked);
  mbp::RunPanel("(b,d,f,h)", mbp::core::DemandShape::kExtremes);
  return 0;
}

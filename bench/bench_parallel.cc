// Thread-count sweep over the four parallelized hot paths (see DESIGN.md
// "Concurrency model"): the Monte-Carlo error-curve build, the GramMatrix
// kernel, k-fold cross-validation, and the exact (2^n) revenue optimizer.
//
// For each path the harness times every thread count in {1, 2, 4,
// hardware_concurrency}, checks the result is bit-identical to the
// 1-thread run (the pool's determinism contract), and emits a
// machine-readable JSON document so future PRs can track a BENCH_*.json
// trajectory. Flags:
//   --out=FILE     write the JSON there instead of stdout
//   --scale=S      multiply workload sizes by S (default 1.0)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "core/curves.h"
#include "core/error_transform.h"
#include "core/exact_opt.h"
#include "core/mechanism.h"
#include "data/synthetic.h"
#include "linalg/matrix.h"
#include "ml/cross_validation.h"
#include "ml/loss.h"
#include "ml/trainer.h"
#include "random/rng.h"

namespace mbp {
namespace {

struct SweepResult {
  size_t threads = 1;
  double millis = 0.0;
  double speedup = 1.0;            // serial time / this time
  bool identical_to_serial = true;  // bitwise, vs the 1-thread run
};

struct PathReport {
  std::string name;
  std::string workload;
  std::vector<SweepResult> results;
};

double MillisSince(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

std::vector<size_t> ThreadCounts() {
  std::vector<size_t> counts{1, 2, 4,
                             ParallelConfig{/*num_threads=*/0}
                                 .ResolvedThreads()};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

// Runs `body` once per thread count. `body` returns an opaque fingerprint
// (every double of the path's result, in a fixed order); runs are flagged
// identical only when fingerprints match bitwise.
PathReport SweepPath(
    const std::string& name, const std::string& workload,
    const std::function<std::vector<double>(const ParallelConfig&)>& body) {
  PathReport report;
  report.name = name;
  report.workload = workload;
  std::vector<double> serial_fingerprint;
  double serial_millis = 0.0;
  for (size_t threads : ThreadCounts()) {
    ParallelConfig parallel;
    parallel.num_threads = threads;
    const auto start = std::chrono::steady_clock::now();
    const std::vector<double> fingerprint = body(parallel);
    SweepResult result;
    result.threads = threads;
    result.millis = MillisSince(start);
    if (threads == 1) {
      serial_fingerprint = fingerprint;
      serial_millis = result.millis;
    }
    result.speedup = result.millis > 0.0 ? serial_millis / result.millis
                                         : 1.0;
    result.identical_to_serial = fingerprint == serial_fingerprint;
    report.results.push_back(result);
    std::printf("  %-18s threads=%2zu  %9.2f ms  speedup=%.2fx  %s\n",
                name.c_str(), threads, result.millis, result.speedup,
                result.identical_to_serial ? "bit-identical" : "MISMATCH");
  }
  return report;
}

PathReport SweepErrorTransform(double scale) {
  data::Simulated1Options data_options;
  data_options.num_examples = static_cast<size_t>(2000 * scale);
  data_options.num_features = 20;
  data_options.seed = 11;
  const data::Dataset dataset =
      data::GenerateSimulated1(data_options).value();
  const linalg::Vector optimal =
      ml::TrainLinearRegression(dataset, 1e-3).value().model.coefficients();
  const core::GaussianMechanism mechanism;
  const ml::SquareLoss loss(0.0);
  return SweepPath(
      "error_transform",
      "Simulated1 n=" + std::to_string(data_options.num_examples) +
          " d=20, grid=16, trials=400",
      [&](const ParallelConfig& parallel) {
        core::EmpiricalErrorTransform::BuildOptions build;
        build.grid_size = 16;
        build.trials_per_delta = 400;
        build.parallel = parallel;
        const auto transform =
            core::EmpiricalErrorTransform::Build(mechanism, optimal, loss,
                                                 dataset, build)
                .value();
        std::vector<double> fingerprint = transform.error_grid();
        fingerprint.push_back(transform.MinError());
        return fingerprint;
      });
}

PathReport SweepGramMatrix(double scale) {
  const size_t n = static_cast<size_t>(6000 * scale);
  const size_t d = 60;
  random::Rng rng(13);
  linalg::Matrix a(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) a(i, j) = rng.NextDouble(-1, 1);
  }
  return SweepPath(
      "gram_matrix",
      std::to_string(n) + "x" + std::to_string(d),
      [&](const ParallelConfig& parallel) {
        const linalg::Matrix g = linalg::GramMatrix(a, parallel);
        std::vector<double> fingerprint;
        fingerprint.reserve(g.rows() * g.cols());
        for (size_t i = 0; i < g.rows(); ++i) {
          for (size_t j = 0; j < g.cols(); ++j) {
            fingerprint.push_back(g(i, j));
          }
        }
        return fingerprint;
      });
}

PathReport SweepCrossValidation(double scale) {
  data::Simulated1Options data_options;
  data_options.num_examples = static_cast<size_t>(3000 * scale);
  data_options.num_features = 20;
  data_options.seed = 17;
  const data::Dataset dataset =
      data::GenerateSimulated1(data_options).value();
  const ml::SquareLoss loss(0.0);
  return SweepPath(
      "cross_validation",
      "8 folds, linear regression, n=" +
          std::to_string(data_options.num_examples) + " d=20",
      [&](const ParallelConfig& parallel) {
        random::Rng rng(19);  // fresh RNG: identical fold permutation
        const auto cv =
            ml::KFoldCrossValidate(ml::ModelKind::kLinearRegression,
                                   dataset, 1e-3, loss, 8, rng, parallel)
                .value();
        std::vector<double> fingerprint = cv.fold_errors;
        fingerprint.push_back(cv.mean_error);
        return fingerprint;
      });
}

PathReport SweepExactOptimizer(double scale) {
  core::MarketCurveOptions options;
  options.num_points = scale < 1.0 ? 16 : 20;  // 2^20 masks at scale 1
  options.x_min = 10.0;
  options.x_max = 10.0 * static_cast<double>(options.num_points);
  options.value_shape = core::ValueShape::kConvex;
  options.demand_shape = core::DemandShape::kMidPeaked;
  const std::vector<core::CurvePoint> curve =
      core::MakeMarketCurve(options).value();
  return SweepPath(
      "exact_optimizer",
      std::to_string(options.num_points) + "-point curve (2^" +
          std::to_string(options.num_points) + " subsets)",
      [&](const ParallelConfig& parallel) {
        const auto result =
            core::MaximizeRevenueExact(curve, /*max_grid_units=*/100000,
                                       parallel)
                .value();
        std::vector<double> fingerprint = result.prices;
        fingerprint.push_back(result.revenue);
        return fingerprint;
      });
}

void EmitJson(FILE* out, const std::vector<PathReport>& reports) {
  bench::JsonWriter json(out);
  json.BeginObject();
  json.Field("bench", "bench_parallel");
  json.Field("hardware_concurrency",
             static_cast<size_t>(std::thread::hardware_concurrency()));
  json.Field("pool_workers", ThreadPool::Shared().num_workers());
  json.Key("paths");
  json.BeginArray();
  for (const PathReport& report : reports) {
    json.BeginObject();
    json.Field("name", report.name);
    json.Field("workload", report.workload);
    json.Key("results");
    json.BeginArray();
    for (const SweepResult& result : report.results) {
      json.BeginObject();
      json.Field("threads", result.threads);
      json.Field("ms", result.millis);
      json.Field("speedup", result.speedup);
      json.Field("identical_to_serial", result.identical_to_serial);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  json.Finish();
}

}  // namespace
}  // namespace mbp

int main(int argc, char** argv) {
  using namespace mbp;  // NOLINT
  const double scale = bench::FlagValue(argc, argv, "scale", 1.0);
  const std::string out_path = bench::FlagString(argc, argv, "out", "");

  bench::PrintHeader("Parallel hot-path sweep");
  std::printf("hardware_concurrency=%u  pool_workers=%zu\n",
              std::thread::hardware_concurrency(),
              ThreadPool::Shared().num_workers());
  bench::PrintRule();

  std::vector<PathReport> reports;
  reports.push_back(SweepErrorTransform(scale));
  reports.push_back(SweepGramMatrix(scale));
  reports.push_back(SweepCrossValidation(scale));
  reports.push_back(SweepExactOptimizer(scale));

  bool all_identical = true;
  for (const PathReport& report : reports) {
    for (const SweepResult& result : report.results) {
      all_identical = all_identical && result.identical_to_serial;
    }
  }
  bench::PrintRule();
  std::printf("determinism: %s\n",
              all_identical ? "all paths bit-identical across thread counts"
                            : "MISMATCH detected (bug)");

  if (out_path.empty()) {
    EmitJson(stdout, reports);
  } else {
    FILE* out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open --out=%s\n", out_path.c_str());
      return 1;
    }
    EmitJson(out, reports);
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return all_identical ? 0 : 2;
}

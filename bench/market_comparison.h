#ifndef MBP_BENCH_MARKET_COMPARISON_H_
#define MBP_BENCH_MARKET_COMPARISON_H_

// Shared driver for the Figures 7/8 revenue-and-affordability comparisons:
// MBP's DP optimizer versus the four naive baselines on a market curve.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "core/baselines.h"
#include "core/curves.h"
#include "core/revenue_opt.h"

namespace mbp::bench {

struct MethodOutcome {
  std::string name;
  core::RevenueOptResult result;
};

inline std::vector<MethodOutcome> CompareMethods(
    const std::vector<core::CurvePoint>& curve) {
  std::vector<MethodOutcome> outcomes;
  auto mbp = core::MaximizeRevenueDp(curve);
  MBP_CHECK(mbp.ok()) << mbp.status().ToString();
  outcomes.push_back({"MBP", std::move(mbp).value()});
  for (core::BaselineKind kind : core::AllBaselines()) {
    auto baseline = core::PriceWithBaseline(kind, curve);
    MBP_CHECK(baseline.ok()) << baseline.status().ToString();
    outcomes.push_back(
        {core::BaselineKindToString(kind), std::move(baseline).value()});
  }
  return outcomes;
}

// Prints the (a)/(b)-style panel: the input value and demand curves.
inline void PrintMarketCurve(const std::string& title,
                             const std::vector<core::CurvePoint>& curve) {
  PrintHeader(title);
  std::printf("%-10s", "1/NCP");
  for (const core::CurvePoint& point : curve) {
    std::printf(" %8.1f", point.x);
  }
  std::printf("\n%-10s", "value");
  for (const core::CurvePoint& point : curve) {
    std::printf(" %8.2f", point.value);
  }
  std::printf("\n%-10s", "demand");
  for (const core::CurvePoint& point : curve) {
    std::printf(" %8.3f", point.demand);
  }
  std::printf("\n");
}

// Prints the (c)/(d) price-curve panel and the (e)-(h) revenue and
// affordability bars, with gain multipliers relative to MBP as in the
// paper's bar labels.
inline void PrintComparison(const std::vector<core::CurvePoint>& curve,
                            const std::vector<MethodOutcome>& outcomes) {
  std::printf("\nPrice curves:\n%-8s", "method");
  for (const core::CurvePoint& point : curve) {
    std::printf(" %8.1f", point.x);
  }
  std::printf("\n");
  PrintRule(8 + 9 * curve.size());
  for (const MethodOutcome& outcome : outcomes) {
    std::printf("%-8s", outcome.name.c_str());
    for (double price : outcome.result.prices) {
      std::printf(" %8.2f", price);
    }
    std::printf("\n");
  }

  const double mbp_revenue = outcomes.front().result.revenue;
  const double mbp_afford = outcomes.front().result.affordability;
  std::printf("\n%-8s %10s %8s %14s %8s\n", "method", "revenue",
              "rev-gain", "affordability", "aff-gain");
  PrintRule(54);
  for (const MethodOutcome& outcome : outcomes) {
    const double rev = outcome.result.revenue;
    const double aff = outcome.result.affordability;
    std::printf("%-8s %10.3f %7.1fx %14.3f %7.1fx\n", outcome.name.c_str(),
                rev, rev > 0 ? mbp_revenue / rev : 0.0, aff,
                aff > 0 ? mbp_afford / aff : 0.0);
  }
  std::printf("(gains are MBP's multiplier over each method, as in the "
              "paper's bar labels)\n");
}

}  // namespace mbp::bench

#endif  // MBP_BENCH_MARKET_COMPARISON_H_

// Google-benchmark microbenchmarks for the library's hot paths: noise
// injection (the per-sale cost the broker pays), the DP revenue optimizer,
// the exact exponential optimizer, isotonic regression, the simplex LP,
// and model training (the broker's one-time cost).

#include <benchmark/benchmark.h>

#include "common/thread_pool.h"
#include "core/baselines.h"
#include "core/curves.h"
#include "core/exact_opt.h"
#include "core/interpolation.h"
#include "core/mechanism.h"
#include "core/revenue_opt.h"
#include "core/error_transform.h"
#include "data/synthetic.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"
#include "linalg/qr.h"
#include "ml/trainer.h"
#include "optim/pava.h"
#include "optim/simplex.h"
#include "random/distributions.h"

namespace mbp {
namespace {

std::vector<core::CurvePoint> SweepCurve(size_t n) {
  core::MarketCurveOptions options;
  options.num_points = n;
  options.x_min = 10.0;
  options.x_max = 10.0 * static_cast<double>(n);
  options.value_shape = core::ValueShape::kConvex;
  options.demand_shape = core::DemandShape::kMidPeaked;
  return core::MakeMarketCurve(options).value();
}

void BM_GaussianPerturb(benchmark::State& state) {
  const auto d = static_cast<size_t>(state.range(0));
  core::GaussianMechanism mechanism;
  random::Rng rng(1);
  const linalg::Vector optimal = random::SampleNormalVector(rng, d, 0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mechanism.Perturb(optimal, 0.5, rng));
  }
  state.SetItemsProcessed(state.iterations() * d);
}
BENCHMARK(BM_GaussianPerturb)->Arg(16)->Arg(128)->Arg(1024);

void BM_RevenueDp(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const std::vector<core::CurvePoint> curve = SweepCurve(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::MaximizeRevenueDp(curve).value());
  }
}
BENCHMARK(BM_RevenueDp)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_RevenueExact(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const std::vector<core::CurvePoint> curve = SweepCurve(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::MaximizeRevenueExact(curve).value());
  }
}
BENCHMARK(BM_RevenueExact)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_Baseline(benchmark::State& state) {
  const std::vector<core::CurvePoint> curve = SweepCurve(16);
  const auto kind = static_cast<core::BaselineKind>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::PriceWithBaseline(kind, curve).value());
  }
}
BENCHMARK(BM_Baseline)->DenseRange(0, 3);

void BM_Pava(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  random::Rng rng(3);
  std::vector<double> values(n);
  for (double& value : values) value = rng.NextDouble(-5, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optim::IsotonicNonDecreasing(values));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Pava)->Arg(100)->Arg(10000);

void BM_DykstraInterpolation(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  random::Rng rng(4);
  std::vector<core::InterpolationPoint> points(n);
  for (size_t j = 0; j < n; ++j) {
    points[j] = {static_cast<double>(j + 1), rng.NextDouble(0, 100)};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::InterpolateSquaredLoss(points).value());
  }
}
BENCHMARK(BM_DykstraInterpolation)->Arg(8)->Arg(64);

void BM_SimplexLp(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  random::Rng rng(5);
  std::vector<core::InterpolationPoint> points(n);
  for (size_t j = 0; j < n; ++j) {
    points[j] = {static_cast<double>(j + 1), rng.NextDouble(0, 100)};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::InterpolateAbsoluteLoss(points).value());
  }
}
BENCHMARK(BM_SimplexLp)->Arg(4)->Arg(16)->Arg(32);

// Serial vs parallel GramMatrix at Table 3 dataset shapes: X^T X is the
// dominant cost of closed-form ridge training, so this is the kernel the
// thread pool must win on. Args: (rows, threads); d = 90 matches the
// YearPredictionMSD feature count, the widest Table 3 dataset.
void BM_GramMatrix(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto threads = static_cast<size_t>(state.range(1));
  const size_t d = 90;
  random::Rng rng(8);
  linalg::Matrix a(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      a(i, j) = random::SampleStandardNormal(rng);
    }
  }
  ParallelConfig parallel;
  parallel.num_threads = threads;
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::GramMatrix(a, parallel));
  }
  state.SetItemsProcessed(state.iterations() * n * d * d / 2);
}
BENCHMARK(BM_GramMatrix)
    ->Args({2000, 1})
    ->Args({2000, 4})
    ->Args({20000, 1})
    ->Args({20000, 4})
    ->Unit(benchmark::kMillisecond);

void BM_QrLeastSquares(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  random::Rng rng(6);
  linalg::Matrix a(n, 20);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < 20; ++j) {
      a(i, j) = random::SampleStandardNormal(rng);
    }
  }
  const linalg::Vector b = random::SampleNormalVector(rng, n, 0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::LeastSquaresQr(a, b).value());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_QrLeastSquares)->Arg(200)->Arg(2000);

void BM_JacobiEigen(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  random::Rng rng(7);
  linalg::Matrix b(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      b(i, j) = random::SampleStandardNormal(rng);
    }
  }
  const linalg::Matrix a = linalg::GramMatrix(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::JacobiEigenDecomposition(a).value());
  }
}
BENCHMARK(BM_JacobiEigen)->Arg(8)->Arg(32);

void BM_ErrorTransformBuild(benchmark::State& state) {
  const auto threads = static_cast<size_t>(state.range(0));
  data::Simulated1Options data_options;
  data_options.num_examples = 500;
  data_options.num_features = 8;
  const data::Dataset dataset =
      data::GenerateSimulated1(data_options).value();
  const linalg::Vector optimal =
      ml::TrainLinearRegression(dataset, 1e-3).value().model.coefficients();
  core::GaussianMechanism mechanism;
  const ml::SquareLoss loss(0.0);
  core::EmpiricalErrorTransform::BuildOptions build;
  build.grid_size = 12;
  build.trials_per_delta = 100;
  build.parallel.num_threads = threads;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::EmpiricalErrorTransform::Build(mechanism, optimal, loss,
                                             dataset, build)
            .value());
  }
}
BENCHMARK(BM_ErrorTransformBuild)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_TrainLinearRegression(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  data::Simulated1Options options;
  options.num_examples = n;
  options.num_features = 20;
  const data::Dataset dataset = data::GenerateSimulated1(options).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ml::TrainLinearRegression(dataset, 1e-3).value());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TrainLinearRegression)->Arg(1000)->Arg(10000);

void BM_TrainLogisticNewton(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  data::Simulated2Options options;
  options.num_examples = n;
  options.num_features = 10;
  const data::Dataset dataset = data::GenerateSimulated2(options).value();
  const ml::LogisticLoss loss(0.01);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ml::TrainNewton(loss, dataset, ml::ModelKind::kLogisticRegression)
            .value());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TrainLogisticNewton)->Arg(1000)->Arg(5000);

}  // namespace
}  // namespace mbp

BENCHMARK_MAIN();

// Ablation (DESIGN.md §6): how much revenue does the relaxed feasible
// region of problem (4) actually give up versus the true subadditive
// optimum? Proposition 3 guarantees C_MBP >= C_SA / 2; this harness
// measures the realized ratio across curve shapes and sizes, and shows it
// is usually far closer to 1 than to the 0.5 floor.
//
// Usage: ablation_relaxation [--max_n=12]

#include <cstdio>

#include "bench/bench_util.h"
#include "common/check.h"
#include "core/curves.h"
#include "core/exact_opt.h"
#include "core/revenue_opt.h"

namespace mbp {
namespace {

void Run(size_t max_n) {
  bench::PrintHeader(
      "Ablation: relaxed-DP revenue / exact subadditive optimum");
  std::printf("%-10s %-12s", "value", "demand");
  for (size_t n = 4; n <= max_n; n += 2) std::printf("   n=%-5zu", n);
  std::printf("\n");
  bench::PrintRule(22 + 9 * ((max_n - 4) / 2 + 1));

  double worst = 1.0;
  for (core::ValueShape value_shape :
       {core::ValueShape::kLinear, core::ValueShape::kConvex,
        core::ValueShape::kConcave, core::ValueShape::kSigmoid}) {
    for (core::DemandShape demand_shape :
         {core::DemandShape::kUniform, core::DemandShape::kMidPeaked,
          core::DemandShape::kExtremes}) {
      std::printf("%-10s %-12s",
                  core::ValueShapeToString(value_shape).c_str(),
                  core::DemandShapeToString(demand_shape).c_str());
      for (size_t n = 4; n <= max_n; n += 2) {
        core::MarketCurveOptions options;
        options.num_points = n;
        options.x_min = 10.0;
        options.x_max = 10.0 * static_cast<double>(n);
        options.value_shape = value_shape;
        options.demand_shape = demand_shape;
        auto curve = core::MakeMarketCurve(options);
        MBP_CHECK(curve.ok());
        auto dp = core::MaximizeRevenueDp(*curve);
        auto exact = core::MaximizeRevenueExact(*curve);
        MBP_CHECK(dp.ok() && exact.ok());
        const double ratio =
            exact->revenue > 0.0 ? dp->revenue / exact->revenue : 1.0;
        worst = std::min(worst, ratio);
        std::printf("   %6.3f ", ratio);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nWorst observed ratio: %.3f (Proposition 3 floor: 0.500). The "
      "relaxation's\npractical cost is small, which is why the paper "
      "reports a 'negligible gap'.\n",
      worst);
}

}  // namespace
}  // namespace mbp

int main(int argc, char** argv) {
  const auto max_n = static_cast<size_t>(
      mbp::bench::FlagValue(argc, argv, "max_n", 12));
  mbp::Run(max_n);
  return 0;
}

// Reproduces Figure 9 (runtime performance, varying the buyer value
// curve): with the demand curve fixed (mid-peaked), sweep the number of
// price points n and record runtime, revenue, and affordability for MBP,
// the four naive baselines, and the exact exponential optimizer ("MILP").
// Panels (a,c,e,g) use a convex value curve; (b,d,f,h) a concave one.
//
// Paper shape: MILP runtime grows exponentially and sits orders of
// magnitude above MBP; the naive baselines are slightly faster than MBP
// but earn less; MBP's revenue stays within a small gap of the optimum.
//
// Usage: fig9_runtime_value [--max_n=10]   (up to 16 is practical)

#include "bench/bench_util.h"
#include "bench/runtime_sweep.h"

int main(int argc, char** argv) {
  const auto max_n = static_cast<size_t>(
      mbp::bench::FlagValue(argc, argv, "max_n", 10));
  mbp::bench::PrintSweep(
      "Figure 9(a,c,e,g): convex value curve, mid-peaked demand",
      mbp::bench::RunSweep(mbp::core::ValueShape::kConvex,
                           mbp::core::DemandShape::kMidPeaked, max_n));
  mbp::bench::PrintSweep(
      "Figure 9(b,d,f,h): concave value curve, mid-peaked demand",
      mbp::bench::RunSweep(mbp::core::ValueShape::kConcave,
                           mbp::core::DemandShape::kMidPeaked, max_n));
  return 0;
}

// The paper's Example 1/2 (Alice the journalist): she wants to test how
// predictive demographic features are of average annual household income,
// but the full dataset exceeds her budget. Under MBP she specifies an
// ERROR BUDGET — "I need a linear regression whose expected square loss is
// within 20% of the best possible" — and is charged only for that
// accuracy level, not for the whole dataset.
//
// Build & run: ./build/examples/journalist_regression

#include <cstdio>

#include "core/curves.h"
#include "core/market.h"
#include "data/split.h"
#include "data/uci_like.h"
#include "ml/metrics.h"

int main() {
  using namespace mbp;

  // A census-like table: (age, sex, height, ...) -> income. We reuse the
  // CASP-like generator shape (9 numeric features, regression target).
  data::DatasetSpec census = data::PaperTable3Specs()[2];
  census.name = "census-income";
  census.noise_stddev = 0.3;
  auto split = data::GenerateUciLike(census, /*scale=*/0.05, /*seed=*/2024);
  if (!split.ok()) return 1;

  // The data vendor's market research: income data is most valuable to
  // accuracy-hungry institutional buyers (convex value curve), and most
  // interested buyers — journalists like Alice — want mid accuracy.
  core::MarketCurveOptions curve_options;
  curve_options.num_points = 12;
  curve_options.x_min = 5.0;
  curve_options.x_max = 60.0;
  curve_options.max_value = 500.0;  // the full-accuracy model sells at $500
  curve_options.value_shape = core::ValueShape::kConvex;
  curve_options.demand_shape = core::DemandShape::kMidPeaked;
  auto research = core::MakeMarketCurve(curve_options);
  if (!research.ok()) return 1;

  auto seller =
      core::Seller::Create("census-vendor", std::move(split).value(),
                           std::move(research).value());
  if (!seller.ok()) return 1;

  core::ModelListing listing;
  listing.model = ml::ModelKind::kLinearRegression;
  listing.l2 = 1e-3;
  listing.test_error = ml::LossKind::kSquare;  // λ and ε both square loss
  auto broker = core::Broker::Create(std::move(seller).value(), listing);
  if (!broker.ok()) {
    std::fprintf(stderr, "broker setup failed: %s\n",
                 broker.status().ToString().c_str());
    return 1;
  }

  const double best_error = broker->error_transform().MinError();
  const double full_price = broker->pricing().points().back().price;
  std::printf("Optimal-model square loss:      %.5f\n", best_error);
  std::printf("Price of the optimal instance: $%.2f\n\n", full_price);

  // Alice tolerates 20% more error than the optimum.
  const double error_budget = 1.2 * best_error;
  core::Buyer alice("Alice", /*wallet=*/400.0);
  core::BuyerRequest request;
  request.mode = core::BuyerRequest::Mode::kErrorBudget;
  request.parameter = error_budget;
  auto txn = alice.Purchase(*broker, request);
  if (!txn.ok()) {
    std::fprintf(stderr, "Alice's purchase failed: %s\n",
                 txn.status().ToString().c_str());
    return 1;
  }

  std::printf("Alice's error budget:           %.5f (optimal x 1.2)\n",
              error_budget);
  std::printf("Quoted expected error:          %.5f\n",
              txn->quoted_expected_error);
  std::printf("Alice paid:                    $%.2f (%.0f%% of the "
              "full-accuracy price)\n",
              txn->price, 100.0 * txn->price / full_price);
  std::printf("Measured test MSE:              %.5f\n",
              ml::MeanSquaredError(txn->instance,
                                   broker->seller().test()));
  std::printf("Wallet remaining:              $%.2f\n", alice.wallet());

  // The vendor wins too: without MBP, Alice (budget $400 < $500) would
  // have bought nothing.
  std::printf("\nSeller revenue from this sale: $%.2f "
              "(vs $0 under all-or-nothing pricing)\n",
              broker->total_revenue());
  return 0;
}

// The paper's Example 3 (Bob the business analyst): classify whether a
// social-media message relates to his company. Messages are embedded into
// a feature vector (here simulated by the Simulated2 generator: noisy
// halfspace labels over dense embeddings); the broker sells logistic
// regression instances priced by 0/1 test error. Bob shops with a PRICE
// BUDGET and also compares what different budgets buy him.
//
// Build & run: ./build/examples/social_media_classifier

#include <cstdio>

#include "core/curves.h"
#include "core/market.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "ml/metrics.h"

int main() {
  using namespace mbp;

  // "Embedded tweets": 40-dimensional embeddings, 5% label noise.
  data::Simulated2Options data_options;
  data_options.num_examples = 4000;
  data_options.num_features = 40;
  data_options.label_keep_probability = 0.95;
  data_options.seed = 99;
  auto dataset = data::GenerateSimulated2(data_options);
  if (!dataset.ok()) return 1;
  random::Rng rng(3);
  auto split = data::RandomSplit(*dataset, 0.25, rng);
  if (!split.ok()) return 1;

  core::MarketCurveOptions curve_options;
  curve_options.num_points = 10;
  curve_options.x_min = 2.0;
  curve_options.x_max = 20.0;
  curve_options.max_value = 250.0;
  curve_options.value_shape = core::ValueShape::kSigmoid;
  curve_options.demand_shape = core::DemandShape::kHighAccuracy;
  auto research = core::MakeMarketCurve(curve_options);
  if (!research.ok()) return 1;

  auto seller =
      core::Seller::Create("tweet-stream-vendor", std::move(split).value(),
                           std::move(research).value());
  if (!seller.ok()) return 1;

  core::ModelListing listing;
  listing.model = ml::ModelKind::kLogisticRegression;
  listing.l2 = 0.01;                             // λ: logistic + L2
  listing.test_error = ml::LossKind::kZeroOne;   // ε: misclassification
  core::Broker::Options broker_options;
  broker_options.transform.trials_per_delta = 400;
  auto broker = core::Broker::Create(std::move(seller).value(), listing,
                                     broker_options);
  if (!broker.ok()) {
    std::fprintf(stderr, "broker setup failed: %s\n",
                 broker.status().ToString().c_str());
    return 1;
  }

  std::printf("Optimal classifier test error: %.4f\n",
              broker->error_transform().MinError());
  std::printf("Full-accuracy price:          $%.2f\n\n",
              broker->pricing().points().back().price);

  std::printf("%10s %12s %16s %18s\n", "budget $", "paid $",
              "quoted 0/1 err", "measured 0/1 err");
  for (double budget : {10.0, 40.0, 100.0, 200.0}) {
    auto txn = broker->BuyWithPriceBudget(budget);
    if (!txn.ok()) {
      std::fprintf(stderr, "purchase at $%.0f failed: %s\n", budget,
                   txn.status().ToString().c_str());
      return 1;
    }
    const double measured = ml::MisclassificationRate(
        txn->instance, broker->seller().test());
    std::printf("%10.0f %12.2f %16.4f %18.4f\n", budget, txn->price,
                txn->quoted_expected_error, measured);
  }

  std::printf(
      "\nBob's accuracy/budget trade-off in one table: bigger budgets buy "
      "strictly\nlower expected error, and the charged price never exceeds "
      "the budget.\nSeller's total revenue: $%.2f\n",
      broker->total_revenue());
  return 0;
}

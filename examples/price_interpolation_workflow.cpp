// The Section-5 price interpolation workflow: instead of giving the broker
// value/demand research, the seller hand-picks target prices for a few
// quality levels ("$50 for the rough model, $400 for the best one, ...").
// Raw targets are usually NOT arbitrage-free; the broker projects them
// onto the feasible region with the T² (least-squares) interpolation
// solver, builds the canonical curve, proves it safe, and lists it.
//
// Build & run: ./build/examples/price_interpolation_workflow

#include <cstdio>
#include <vector>

#include "core/arbitrage.h"
#include "core/interpolation.h"
#include "core/market.h"
#include "core/pricing_function.h"
#include "data/split.h"
#include "data/synthetic.h"

int main() {
  using namespace mbp;

  // The seller's wishlist: steep premium for top accuracy. The jump from
  // 120 to 400 between x=40 and x=80 is superadditive (two x=40 models
  // at 120 each would beat one x=80 at 400), so it cannot stand as-is.
  const std::vector<core::InterpolationPoint> wishlist = {
      {10.0, 50.0}, {20.0, 80.0}, {40.0, 120.0}, {80.0, 400.0}};

  auto fitted = core::InterpolateSquaredLoss(wishlist);
  if (!fitted.ok()) return 1;

  std::printf("%8s %12s %14s\n", "1/NCP", "target $", "fitted $");
  std::vector<core::PricePoint> knots(wishlist.size());
  for (size_t j = 0; j < wishlist.size(); ++j) {
    knots[j] = {wishlist[j].a, fitted->prices[j]};
    std::printf("%8.0f %12.2f %14.2f\n", wishlist[j].a,
                wishlist[j].target_price, fitted->prices[j]);
  }
  std::printf("(L2 projection distance: %.2f, %zu Dykstra iterations)\n\n",
              fitted->objective, fitted->iterations);

  auto pricing = core::PiecewiseLinearPricing::Create(knots);
  if (!pricing.ok()) return 1;
  const Status certificate = pricing->ValidateArbitrageFree();
  std::printf("certificate: %s\n",
              certificate.ok() ? "arbitrage-free" : "REJECTED");
  if (!certificate.ok()) return 1;

  // Sanity-check the original wishlist WOULD have been attackable.
  std::vector<core::PricePoint> raw_knots(wishlist.size());
  for (size_t j = 0; j < wishlist.size(); ++j) {
    raw_knots[j] = {wishlist[j].a, wishlist[j].target_price};
  }
  auto raw = core::PiecewiseLinearPricing::Create(raw_knots);
  if (!raw.ok()) return 1;
  auto attack = core::FindArbitrageAttack(
      [&](double x) { return raw->PriceAtInverseNcp(x); }, 80.0, 80);
  if (attack.has_value()) {
    std::printf(
        "raw wishlist attackable: pay %.2f instead of %.2f by combining "
        "%zu cheap instances\n\n",
        attack->total_price, attack->target_price,
        attack->purchase_deltas.size());
  }

  // List it: broker with the fitted custom curve.
  data::Simulated1Options data_options;
  data_options.num_examples = 1500;
  data_options.num_features = 8;
  auto dataset = data::GenerateSimulated1(data_options);
  if (!dataset.ok()) return 1;
  random::Rng rng(4);
  auto split = data::RandomSplit(*dataset, 0.25, rng);
  if (!split.ok()) return 1;
  core::MarketCurveOptions research;  // only used for metadata here
  research.x_min = 10.0;
  research.x_max = 80.0;
  auto curve = core::MakeMarketCurve(research);
  if (!curve.ok()) return 1;
  auto seller = core::Seller::Create("wishlist-seller",
                                     std::move(split).value(),
                                     std::move(curve).value());
  if (!seller.ok()) return 1;

  core::ModelListing listing;
  listing.model = ml::ModelKind::kLinearRegression;
  listing.l2 = 1e-4;
  core::Broker::Options options;
  auto broker = core::Broker::CreateWithPricing(
      std::move(seller).value(), listing, std::move(pricing).value(),
      options);
  if (!broker.ok()) {
    std::fprintf(stderr, "listing failed: %s\n",
                 broker.status().ToString().c_str());
    return 1;
  }
  auto txn = broker->BuyWithPriceBudget(100.0);
  if (!txn.ok()) return 1;
  std::printf("listed and sold: $%.2f for NCP %.4f (quoted E[err] %.5f)\n",
              txn->price, txn->delta, txn->quoted_expected_error);
  return 0;
}

// A multi-listing marketplace (the full menu M of Section 3.1): one
// operator hosts several sellers and model families, buyers browse the
// catalog and purchase from different listings, and the operator settles
// the books from the transaction ledger at the end of the day.
//
// Build & run: ./build/examples/marketplace_catalog

#include <cstdio>

#include "core/curves.h"
#include "core/marketplace.h"
#include "data/split.h"
#include "data/synthetic.h"

int main() {
  using namespace mbp;

  const auto make_seller = [](const char* name, bool classification,
                              uint64_t seed) {
    data::Dataset dataset =
        classification
            ? data::GenerateSimulated2({.num_examples = 1200,
                                        .num_features = 8,
                                        .seed = seed})
                  .value()
            : data::GenerateSimulated1({.num_examples = 1200,
                                        .num_features = 8,
                                        .seed = seed})
                  .value();
    random::Rng rng(seed + 1);
    core::MarketCurveOptions curve;
    curve.num_points = 8;
    curve.value_shape = core::ValueShape::kConcave;
    return core::Seller::Create(
               name, data::RandomSplit(dataset, 0.25, rng).value(),
               core::MakeMarketCurve(curve).value())
        .value();
  };

  core::Broker::Options fast;
  fast.transform.grid_size = 8;
  fast.transform.trials_per_delta = 150;
  fast.transform.parallel.num_threads = 4;

  core::Marketplace market;
  {
    core::ModelListing listing;
    listing.model = ml::ModelKind::kLinearRegression;
    listing.l2 = 1e-4;
    listing.test_error = ml::LossKind::kSquare;
    auto status = market.List("census/income-linreg",
                              make_seller("census-bureau", false, 100),
                              listing, fast);
    if (!status.ok()) return 1;
  }
  {
    core::ModelListing listing;
    listing.model = ml::ModelKind::kLogisticRegression;
    listing.l2 = 0.01;
    listing.test_error = ml::LossKind::kZeroOne;
    auto status = market.List("social/tweet-classifier",
                              make_seller("tweet-stream", true, 200),
                              listing, fast);
    if (!status.ok()) return 1;
  }
  {
    core::ModelListing listing;
    listing.model = ml::ModelKind::kLinearSvm;
    listing.l2 = 0.01;
    listing.test_error = ml::LossKind::kZeroOne;
    auto status = market.List("fraud/svm-detector",
                              make_seller("payments-co", true, 300),
                              listing, fast);
    if (!status.ok()) return 1;
  }

  std::printf("Catalog (%zu listings):\n", market.num_listings());
  for (const core::CatalogEntry& entry : market.Catalog()) {
    std::printf("  %-26s seller=%-14s model=%s\n", entry.id.c_str(),
                entry.seller_name.c_str(),
                ml::ModelKindToString(entry.model).c_str());
  }

  // A day of trading: buyers hit different listings with price budgets.
  struct Order {
    const char* listing;
    double budget;
  };
  const Order orders[] = {{"census/income-linreg", 25.0},
                          {"social/tweet-classifier", 60.0},
                          {"fraud/svm-detector", 15.0},
                          {"census/income-linreg", 90.0},
                          {"social/tweet-classifier", 8.0}};
  for (const Order& order : orders) {
    auto broker = market.Lookup(order.listing);
    if (!broker.ok()) return 1;
    auto txn = (*broker)->BuyWithPriceBudget(order.budget);
    if (!txn.ok()) return 1;
    std::printf("sale on %-26s budget %6.2f -> paid %6.2f (E[err] %.4f)\n",
                order.listing, order.budget, txn->price,
                txn->quoted_expected_error);
  }

  // Settlement from the audit books (broker keeps a 15% cut).
  const core::TransactionLedger ledger = market.BuildLedger();
  std::printf("\nLedger: %zu records, total revenue $%.2f\n", ledger.size(),
              ledger.TotalRevenue());
  for (const core::CatalogEntry& entry : market.Catalog()) {
    std::printf("  %-26s earned $%.2f\n", entry.id.c_str(),
                ledger.RevenueForListing(entry.id));
  }
  std::printf("Broker's 15%% cut: $%.2f; sellers receive $%.2f\n",
              ledger.BrokerCut(0.15),
              ledger.TotalRevenue() - ledger.BrokerCut(0.15));
  return 0;
}

// Example 3 at realistic text dimensions: tweets embedded as SPARSE
// bag-of-words vectors (d = 5000, ~10 active terms per message). The
// optimal classifier is trained with the sparse substrate (O(nnz) per
// pass); the broker then sells noisy versions of its dense coefficient
// vector exactly as in the dense markets. The broker's error transform
// scores instances on a densified held-out slice.
//
// Build & run: ./build/examples/sparse_text_market

#include <cstdio>
#include <vector>

#include "core/curves.h"
#include "core/market.h"
#include "core/revenue_opt.h"
#include "data/sparse_dataset.h"
#include "ml/metrics.h"
#include "ml/sparse_trainer.h"
#include "random/distributions.h"

int main() {
  using namespace mbp;

  // --- Synthesize the sparse corpus: 3000 "tweets", vocabulary 5000.
  const size_t kTweets = 3000, kVocabulary = 5000;
  random::Rng rng(77);
  const linalg::Vector topic = random::SampleUnitSphere(rng, kVocabulary);
  std::vector<linalg::SparseEntry> entries;
  linalg::Vector labels(kTweets);
  for (size_t i = 0; i < kTweets; ++i) {
    double score = 0.0;
    const size_t terms = 5 + rng.NextBounded(10);
    for (size_t t = 0; t < terms; ++t) {
      const size_t term = rng.NextBounded(kVocabulary);
      const double tfidf = rng.NextDouble(0.2, 2.0);
      entries.push_back({i, term, tfidf});
      score += tfidf * topic[term];
    }
    const bool flip = rng.NextDouble() < 0.05;
    labels[i] = ((score > 0.0) != flip) ? 1.0 : -1.0;
  }
  auto corpus = data::SparseDataset::Create(
      linalg::SparseMatrix::FromTriplets(kTweets, kVocabulary,
                                         std::move(entries))
          .value(),
      std::move(labels), data::TaskType::kBinaryClassification);
  if (!corpus.ok()) return 1;
  std::printf("corpus: %zu tweets, vocabulary %zu, %zu nonzeros "
              "(%.2f%% dense)\n",
              corpus->num_examples(), corpus->num_features(),
              corpus->features().num_nonzeros(),
              100.0 * corpus->features().num_nonzeros() /
                  (kTweets * kVocabulary));

  // --- Train the optimal sparse classifier.
  ml::TrainOptions train_options;
  train_options.max_iterations = 200;
  auto trained = ml::TrainLogisticSparse(*corpus, 1e-4, train_options);
  if (!trained.ok()) return 1;
  std::printf("optimal sparse classifier: train 0/1 error %.4f "
              "(%zu GD iterations)\n\n",
              ml::SparseMisclassificationRate(
                  trained->model.coefficients(), *corpus),
              trained->iterations);

  // --- Hand the market a densified held-out slice for ε evaluation.
  // (The coefficient vector the market perturbs is dense regardless.)
  const size_t kHoldout = 600;
  std::vector<linalg::SparseEntry> holdout_entries;
  linalg::Vector holdout_labels(kHoldout);
  for (size_t i = 0; i < kHoldout; ++i) {
    double score = 0.0;
    const size_t terms = 5 + rng.NextBounded(10);
    for (size_t t = 0; t < terms; ++t) {
      const size_t term = rng.NextBounded(kVocabulary);
      const double tfidf = rng.NextDouble(0.2, 2.0);
      holdout_entries.push_back({i, term, tfidf});
      score += tfidf * topic[term];
    }
    holdout_labels[i] = score > 0.0 ? 1.0 : -1.0;
  }
  auto holdout_sparse = data::SparseDataset::Create(
      linalg::SparseMatrix::FromTriplets(kHoldout, kVocabulary,
                                         std::move(holdout_entries))
          .value(),
      std::move(holdout_labels), data::TaskType::kBinaryClassification);
  if (!holdout_sparse.ok()) return 1;
  auto holdout = holdout_sparse->ToDense();
  if (!holdout.ok()) return 1;

  // With d = 5000 coefficients of magnitude ~1/sqrt(d) each, per-
  // coordinate noise only bites for large δ; span δ from 100 (scrambled)
  // down to 0.03 (near-optimal).
  core::MarketCurveOptions curve_options;
  curve_options.num_points = 6;
  curve_options.x_min = 0.01;
  curve_options.x_max = 30.0;
  curve_options.max_value = 300.0;
  curve_options.value_shape = core::ValueShape::kConcave;
  auto research = core::MakeMarketCurve(curve_options);
  if (!research.ok()) return 1;
  // Both "train" and "test" sides of the seller's pair are the holdout
  // here: the expensive training already happened in sparse land, and we
  // inject the trained model via CreateWithPricing-style flow. Simplest
  // faithful wiring: retrain on the densified holdout is NOT what we
  // want, so we use the broker only for pricing + noise via the sparse
  // optimum. We emulate the broker's sale loop directly:
  auto pricing_result = core::MaximizeRevenueDp(*research);
  if (!pricing_result.ok()) return 1;
  auto pricing = core::PricingFromKnots(*research, pricing_result->prices);
  if (!pricing.ok() || !pricing->ValidateArbitrageFree().ok()) return 1;

  core::GaussianMechanism mechanism;
  random::Rng sale_rng(5);
  std::printf("%10s %10s %18s\n", "1/NCP", "price $", "holdout 0/1 err");
  for (double x : {0.01, 0.1, 1.0, 30.0}) {
    const double delta = 1.0 / x;
    const linalg::Vector noisy = mechanism.Perturb(
        trained->model.coefficients(), delta, sale_rng);
    const ml::LinearModel instance(ml::ModelKind::kLogisticRegression,
                                   noisy);
    std::printf("%10.1f %10.2f %18.4f\n", x,
                pricing->PriceAtInverseNcp(x),
                ml::MisclassificationRate(instance, *holdout));
  }
  std::printf(
      "\nAccuracy rises with the price paid; the sparse substrate made "
      "the one-time\ntraining pass O(nnz) instead of O(n*d).\n");
  return 0;
}

// The paper's Example 1, first goal: Alice wants to "learn" the average
// annual income of a region. The hypothesis space is just R, the error is
// λ(h, D) = (h - x̄)^2, and the mechanism adds uniform noise (the paper's
// K_1). In MBP terms this is a 1-dimensional linear regression over a
// constant feature: the optimal model instance IS the column mean, and
// the broker sells noisy versions of it at different prices.
//
// Build & run: ./build/examples/column_average_market

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/curves.h"
#include "core/market.h"
#include "data/dataset.h"
#include "random/distributions.h"
#include "random/rng.h"

int main() {
  using namespace mbp;

  // "Annual income" column: log-normal-ish incomes around $62k.
  const size_t kPeople = 5000;
  random::Rng rng(11);
  linalg::Matrix constant_feature(kPeople, 1, 1.0);
  linalg::Vector incomes(kPeople);
  double true_mean = 0.0;
  for (size_t i = 0; i < kPeople; ++i) {
    incomes[i] = 62.0 * std::exp(random::SampleNormal(rng, 0.0, 0.4)) -
                 10.0;  // in $1000s
    true_mean += incomes[i] / kPeople;
  }
  auto column = data::Dataset::Create(std::move(constant_feature),
                                      std::move(incomes),
                                      data::TaskType::kRegression);
  if (!column.ok()) return 1;

  // Train/test halves of the same column (the broker's ε runs on test).
  std::vector<size_t> front(kPeople / 2), back(kPeople / 2);
  for (size_t i = 0; i < kPeople / 2; ++i) {
    front[i] = i;
    back[i] = kPeople / 2 + i;
  }
  data::TrainTestSplit split{column->Subset(front), column->Subset(back)};

  core::MarketCurveOptions curve_options;
  curve_options.num_points = 8;
  curve_options.x_min = 1.0;    // δ = 1 ($1000)^2 of noise variance
  curve_options.x_max = 400.0;  // δ = 0.0025: almost exact mean
  curve_options.max_value = 50.0;
  curve_options.value_shape = core::ValueShape::kConcave;
  auto research = core::MakeMarketCurve(curve_options);
  if (!research.ok()) return 1;

  auto seller = core::Seller::Create("regional-stats-bureau",
                                     std::move(split),
                                     std::move(research).value());
  if (!seller.ok()) return 1;

  core::ModelListing listing;
  listing.model = ml::ModelKind::kLinearRegression;
  listing.l2 = 0.0;
  listing.test_error = ml::LossKind::kSquare;
  core::Broker::Options options;
  options.mechanism = core::MechanismKind::kUniformAdditive;  // Example 1's K_1
  options.transform.trials_per_delta = 500;
  auto broker = core::Broker::Create(std::move(seller).value(), listing,
                                     options);
  if (!broker.ok()) {
    std::fprintf(stderr, "broker setup failed: %s\n",
                 broker.status().ToString().c_str());
    return 1;
  }

  std::printf("True column mean (hidden from buyers): $%.3fk\n", true_mean);
  std::printf("Broker's optimal instance:             $%.3fk\n\n",
              broker->optimal_model().coefficients()[0]);

  std::printf("%12s %14s %18s\n", "budget $", "paid $", "noisy mean $k");
  for (double budget : {2.0, 10.0, 30.0, 60.0}) {
    auto txn = broker->BuyWithPriceBudget(budget);
    if (!txn.ok()) return 1;
    std::printf("%12.0f %14.2f %18.3f\n", budget, txn->price,
                txn->instance.coefficients()[0]);
  }
  std::printf(
      "\nCheaper purchases receive noisier estimates of the mean; the "
      "price curve is\narbitrage-free, so buying many cheap estimates and "
      "averaging them never beats\nbuying the accurate one (Theorem 5).\n");
  return 0;
}

// Quickstart: the minimal end-to-end use of the MBP library.
//
//   1. A seller lists a dataset (here: synthetic regression data) plus
//      market research (value & demand curves over 1/NCP).
//   2. A broker trains the optimal model once, builds the error<->noise
//      transform, and revenue-optimizes an arbitrage-free pricing curve.
//   3. A buyer purchases a model instance under a price budget.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/curves.h"
#include "core/market.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "ml/metrics.h"

int main() {
  using namespace mbp;

  // --- Seller side: a dataset worth selling + market research.
  data::Simulated1Options data_options;
  data_options.num_examples = 2000;
  data_options.num_features = 10;
  data_options.noise_stddev = 0.1;
  auto dataset = data::GenerateSimulated1(data_options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "data generation failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  random::Rng rng(1);
  auto split = data::RandomSplit(*dataset, 0.25, rng);
  if (!split.ok()) return 1;

  core::MarketCurveOptions curve_options;
  curve_options.num_points = 10;
  curve_options.x_min = 10.0;
  curve_options.x_max = 100.0;
  curve_options.max_value = 100.0;  // top instance is worth $100
  curve_options.value_shape = core::ValueShape::kConcave;
  auto research = core::MakeMarketCurve(curve_options);
  if (!research.ok()) return 1;

  auto seller = core::Seller::Create("quickstart-seller",
                                     std::move(split).value(),
                                     std::move(research).value());
  if (!seller.ok()) return 1;

  // --- Broker side: one-time setup (training + pricing optimization).
  core::ModelListing listing;
  listing.model = ml::ModelKind::kLinearRegression;
  listing.l2 = 1e-4;
  listing.test_error = ml::LossKind::kSquare;
  auto broker = core::Broker::Create(std::move(seller).value(), listing);
  if (!broker.ok()) {
    std::fprintf(stderr, "broker setup failed: %s\n",
                 broker.status().ToString().c_str());
    return 1;
  }

  std::printf("Price-error menu (what the buyer sees):\n");
  std::printf("%10s %12s %10s\n", "NCP", "E[error]", "price");
  for (const core::QuotePoint& quote : broker->QuoteCurve(8)) {
    std::printf("%10.4f %12.5f %10.2f\n", quote.delta,
                quote.expected_error, quote.price);
  }

  // --- Buyer side: $40 budget, most accurate instance it can buy.
  core::Buyer buyer("quickstart-buyer", /*wallet=*/40.0);
  core::BuyerRequest request;
  request.mode = core::BuyerRequest::Mode::kPriceBudget;
  request.parameter = 40.0;
  auto txn = buyer.Purchase(*broker, request);
  if (!txn.ok()) {
    std::fprintf(stderr, "purchase failed: %s\n",
                 txn.status().ToString().c_str());
    return 1;
  }

  const double mse =
      ml::MeanSquaredError(txn->instance, broker->seller().test());
  std::printf(
      "\nBought instance #%llu for $%.2f (NCP %.4f, quoted E[error] "
      "%.5f)\nMeasured test MSE of the delivered instance: %.5f\n"
      "Broker revenue so far: $%.2f\n",
      static_cast<unsigned long long>(txn->id), txn->price, txn->delta,
      txn->quoted_expected_error, mse, broker->total_revenue());
  return 0;
}

// A full marketplace session (Figure 1 end-to-end), including the part the
// buyer never sees: the seller's market research, the broker's revenue
// optimization, a population of buyers drawn from the demand curve, and a
// would-be arbitrageur probing the posted price curve.
//
// Build & run: ./build/examples/market_broker_session

#include <cstdio>
#include <vector>

#include "core/arbitrage.h"
#include "core/curves.h"
#include "core/market.h"
#include "core/revenue_opt.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "ml/metrics.h"

int main() {
  using namespace mbp;

  // ---------------------------------------------------------- seller side
  data::Simulated1Options data_options;
  data_options.num_examples = 3000;
  data_options.num_features = 12;
  data_options.noise_stddev = 0.15;
  data_options.seed = 7;
  auto dataset = data::GenerateSimulated1(data_options);
  if (!dataset.ok()) return 1;
  random::Rng rng(8);
  auto split = data::RandomSplit(*dataset, 0.3, rng);
  if (!split.ok()) return 1;

  core::MarketCurveOptions curve_options;
  curve_options.num_points = 10;
  curve_options.x_min = 10.0;
  curve_options.x_max = 100.0;
  curve_options.max_value = 100.0;
  curve_options.value_shape = core::ValueShape::kConvex;
  curve_options.demand_shape = core::DemandShape::kMidPeaked;
  auto research = core::MakeMarketCurve(curve_options);
  if (!research.ok()) return 1;
  const std::vector<core::CurvePoint> curve = research.value();

  auto seller = core::Seller::Create("data-co", std::move(split).value(),
                                     curve);
  if (!seller.ok()) return 1;

  // ---------------------------------------------------------- broker side
  core::ModelListing listing;
  listing.model = ml::ModelKind::kLinearRegression;
  listing.l2 = 1e-4;
  listing.test_error = ml::LossKind::kSquare;
  auto broker = core::Broker::Create(std::move(seller).value(), listing);
  if (!broker.ok()) return 1;

  std::printf("Posted price-error curve:\n%10s %12s %10s\n", "1/NCP",
              "E[error]", "price $");
  for (const core::QuotePoint& quote : broker->QuoteCurve(10)) {
    std::printf("%10.1f %12.5f %10.2f\n", quote.x, quote.expected_error,
                quote.price);
  }

  // ------------------------------------------------------ buyer population
  // Simulate 1000 buyers: each targets quality level j with probability
  // demand_j and buys iff the posted price is within their valuation.
  random::Rng market_rng(123);
  size_t sales = 0, priced_out = 0;
  for (int b = 0; b < 1000; ++b) {
    // Sample a quality level from the demand distribution.
    double u = market_rng.NextDouble();
    size_t level = 0;
    for (; level + 1 < curve.size(); ++level) {
      if (u < curve[level].demand) break;
      u -= curve[level].demand;
    }
    const double posted =
        broker->pricing().PriceAtInverseNcp(curve[level].x);
    if (posted <= curve[level].value + 1e-9) {
      auto txn = broker->BuyAtNcp(1.0 / curve[level].x);
      if (!txn.ok()) return 1;
      ++sales;
    } else {
      ++priced_out;
    }
  }
  std::printf(
      "\nSimulated 1000 buyers from the demand curve: %zu bought, %zu "
      "priced out\nRealized broker revenue: $%.2f (expected per-buyer "
      "revenue %.3f)\n",
      sales, priced_out, broker->total_revenue(),
      broker->total_revenue() / 1000.0);

  // ----------------------------------------------------------- arbitrageur
  const auto posted_price = [&](double x) {
    return broker->pricing().PriceAtInverseNcp(x);
  };
  auto attack = core::FindArbitrageAttack(posted_price, 200.0, 200);
  std::printf("\nArbitrageur probes the curve (combining up to 200 grid "
              "points): %s\n",
              attack.has_value() ? "FOUND AN ATTACK (bug!)"
                                 : "no arbitrage opportunity exists");

  // What the market WOULD have looked like with naive valuation pricing:
  std::vector<double> naive;
  for (const core::CurvePoint& point : curve) naive.push_back(point.value);
  auto naive_pricing = core::PricingFromKnots(curve, naive);
  if (!naive_pricing.ok()) return 1;
  const auto naive_price = [&](double x) {
    return naive_pricing->PriceAtInverseNcp(x);
  };
  auto naive_attack = core::FindArbitrageAttack(naive_price, 200.0, 200);
  if (naive_attack.has_value()) {
    std::printf(
        "Counterfactual: pricing at raw valuations WOULD be arbitraged — "
        "an attacker\ncombining instances (total 1/NCP %.0f) pays $%.2f "
        "instead of the posted $%.2f.\n",
        1.0 / naive_attack->combined_delta, naive_attack->total_price,
        naive_attack->target_price);
  }
  return 0;
}

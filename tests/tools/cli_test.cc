// Subprocess tests of the mbp_market_cli operator tool: every subcommand
// is exercised end to end against a generated CSV, including the
// error paths (bad flags, corrupt files) and the exit-code contract.
// The binary path is injected by CMake via MBP_CLI_PATH.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "random/distributions.h"
#include "random/rng.h"

#ifndef MBP_CLI_PATH
#error "MBP_CLI_PATH must be defined by the build"
#endif

namespace mbp {
namespace {

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

// ctest runs each test of this binary as its own process, concurrently
// under -j; fixed names in the shared TempDir race (one process rewrites
// cli_data.csv while another's subprocess reads it). Keying every path by
// pid keeps each test process in its own namespace.
std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/cli_" + std::to_string(getpid()) + "_" +
         name;
}

CommandResult RunCli(const std::string& args) {
  const std::string command =
      std::string(MBP_CLI_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return {};
  CommandResult result;
  char buffer[512];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    result.output += buffer;
  }
  const int status = pclose(pipe);
  result.exit_code = WEXITSTATUS(status);
  return result;
}

class CliTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    csv_path_ = new std::string(TempPath("data.csv"));
    std::ofstream out(*csv_path_);
    out << "a,b,y\n";
    random::Rng rng(7);
    for (int i = 0; i < 500; ++i) {
      const double a = random::SampleStandardNormal(rng);
      const double b = random::SampleStandardNormal(rng);
      const double y =
          2.0 * a - b + random::SampleNormal(rng, 0.0, 0.05);
      out << a << "," << b << "," << y << "\n";
    }
  }
  static void TearDownTestSuite() {
    delete csv_path_;
    csv_path_ = nullptr;
  }

  static std::string* csv_path_;
};

std::string* CliTest::csv_path_ = nullptr;

TEST_F(CliTest, NoArgumentsPrintsUsageAndFails) {
  const CommandResult result = RunCli("");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("usage:"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandFails) {
  const CommandResult result = RunCli("frobnicate");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("unknown command"), std::string::npos);
}

TEST_F(CliTest, TrainReportsMetricsAndWritesModel) {
  const std::string model_path = TempPath("model.mbp");
  const CommandResult result = RunCli(
      "train --csv=" + *csv_path_ +
      " --task=regression --out-model=" + model_path);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("test MSE"), std::string::npos);
  std::ifstream model(model_path);
  EXPECT_TRUE(model.good());
}

TEST_F(CliTest, TrainRequiresFlags) {
  EXPECT_NE(RunCli("train --task=regression").exit_code, 0);
  EXPECT_NE(RunCli("train --csv=" + *csv_path_).exit_code, 0);
  EXPECT_NE(
      RunCli("train --csv=" + *csv_path_ + " --task=clustering").exit_code,
      0);
  EXPECT_NE(RunCli("train --csv=/no/such.csv --task=regression").exit_code,
            0);
}

TEST_F(CliTest, PriceSellCheckRoundTrip) {
  const std::string pricing_path = TempPath("pricing.mbp");
  const CommandResult price = RunCli(
      "price --csv=" + *csv_path_ +
      " --task=regression --out-pricing=" + pricing_path);
  ASSERT_EQ(price.exit_code, 0) << price.output;
  EXPECT_NE(price.output.find("E[error]"), std::string::npos);

  const CommandResult check =
      RunCli("check-pricing --pricing=" + pricing_path);
  EXPECT_EQ(check.exit_code, 0) << check.output;
  EXPECT_NE(check.output.find("no arbitrage"), std::string::npos);

  const std::string instance_path =
      TempPath("instance.mbp");
  const CommandResult sell = RunCli(
      "sell --csv=" + *csv_path_ + " --task=regression --pricing=" +
      pricing_path + " --budget=25 --out-model=" + instance_path);
  EXPECT_EQ(sell.exit_code, 0) << sell.output;
  EXPECT_NE(sell.output.find("sold instance"), std::string::npos);
  std::ifstream instance(instance_path);
  EXPECT_TRUE(instance.good());
}

TEST_F(CliTest, CheckPricingFlagsBrokenCurves) {
  const std::string bad_path = TempPath("bad_pricing.mbp");
  {
    std::ofstream out(bad_path);
    // Convex (superadditive) prices.
    out << "mbp-pricing v1\npoints 2\n1 1\n2 4\n";
  }
  const CommandResult result = RunCli("check-pricing --pricing=" + bad_path);
  EXPECT_NE(result.exit_code, 0);
}

TEST_F(CliTest, ServeAnswersPriceAndBudgetQueries) {
  const std::string pricing_path =
      TempPath("serve_pricing.mbp");
  {
    std::ofstream out(pricing_path);
    out << "mbp-pricing v1\npoints 4\n1 10\n2 18\n4 30\n8 40\n";
  }
  const std::string queries_path =
      TempPath("serve_queries.txt");
  {
    std::ofstream out(queries_path);
    out << "0.5\n1.5\n3\n";  // prices 5, 14, 24 on this curve
  }
  const CommandResult result = RunCli("serve --pricing=" + pricing_path +
                                      " --queries=" + queries_path);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("serving 'pricing': 4 knots"),
            std::string::npos);
  EXPECT_NE(result.output.find("0.5 5\n"), std::string::npos);
  EXPECT_NE(result.output.find("1.5 14\n"), std::string::npos);
  EXPECT_NE(result.output.find("3 24\n"), std::string::npos);
  EXPECT_NE(result.output.find("served 3 price queries"), std::string::npos);

  // Budget inversion: 24 affords exactly x = 3.
  const std::string budgets_path =
      TempPath("serve_budgets.txt");
  {
    std::ofstream out(budgets_path);
    out << "24\n";
  }
  const CommandResult invert =
      RunCli("serve --pricing=" + pricing_path + " --queries=" +
             budgets_path + " --invert-budget");
  EXPECT_EQ(invert.exit_code, 0) << invert.output;
  EXPECT_NE(invert.output.find("24 3\n"), std::string::npos);
  EXPECT_NE(invert.output.find("served 1 budget queries"),
            std::string::npos);
}

TEST_F(CliTest, ServeRefusesArbitrageableCurve) {
  // Publish re-runs the certificate at snapshot-compile time: a convex
  // (superadditive) curve must be rejected before serving anything.
  const std::string bad_path = TempPath("serve_bad.mbp");
  {
    std::ofstream out(bad_path);
    out << "mbp-pricing v1\npoints 2\n1 1\n2 4\n";
  }
  const CommandResult result = RunCli("serve --pricing=" + bad_path);
  EXPECT_NE(result.exit_code, 0);
}

TEST_F(CliTest, SimulateRunsAndWritesLedger) {
  const std::string ledger_path = TempPath("ledger.mbp");
  const CommandResult result = RunCli(
      "simulate --csv=" + *csv_path_ +
      " --task=regression --buyers=200 --out-ledger=" + ledger_path);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("SLA audit: OK"), std::string::npos);
  EXPECT_NE(result.output.find("sales"), std::string::npos);
  std::ifstream ledger(ledger_path);
  std::string header;
  std::getline(ledger, header);
  EXPECT_EQ(header, "mbp-ledger v1");
}

}  // namespace
}  // namespace mbp

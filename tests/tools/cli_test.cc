// Subprocess tests of the mbp_market_cli operator tool: every subcommand
// is exercised end to end against a generated CSV, including the
// error paths (bad flags, corrupt files) and the exit-code contract.
// The binary path is injected by CMake via MBP_CLI_PATH.

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>

#include <gtest/gtest.h>

#include "net/client.h"
#include "random/distributions.h"
#include "random/rng.h"

#ifndef MBP_CLI_PATH
#error "MBP_CLI_PATH must be defined by the build"
#endif

namespace mbp {
namespace {

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

// ctest runs each test of this binary as its own process, concurrently
// under -j; fixed names in the shared TempDir race (one process rewrites
// cli_data.csv while another's subprocess reads it). Keying every path by
// pid keeps each test process in its own namespace.
std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/cli_" + std::to_string(getpid()) + "_" +
         name;
}

CommandResult RunCli(const std::string& args) {
  const std::string command =
      std::string(MBP_CLI_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return {};
  CommandResult result;
  char buffer[512];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    result.output += buffer;
  }
  const int status = pclose(pipe);
  result.exit_code = WEXITSTATUS(status);
  return result;
}

class CliTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    csv_path_ = new std::string(TempPath("data.csv"));
    std::ofstream out(*csv_path_);
    out << "a,b,y\n";
    random::Rng rng(7);
    for (int i = 0; i < 500; ++i) {
      const double a = random::SampleStandardNormal(rng);
      const double b = random::SampleStandardNormal(rng);
      const double y =
          2.0 * a - b + random::SampleNormal(rng, 0.0, 0.05);
      out << a << "," << b << "," << y << "\n";
    }
  }
  static void TearDownTestSuite() {
    delete csv_path_;
    csv_path_ = nullptr;
  }

  static std::string* csv_path_;
};

std::string* CliTest::csv_path_ = nullptr;

TEST_F(CliTest, NoArgumentsPrintsUsageAndFails) {
  const CommandResult result = RunCli("");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("usage:"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandFails) {
  const CommandResult result = RunCli("frobnicate");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("unknown command"), std::string::npos);
}

TEST_F(CliTest, TrainReportsMetricsAndWritesModel) {
  const std::string model_path = TempPath("model.mbp");
  const CommandResult result = RunCli(
      "train --csv=" + *csv_path_ +
      " --task=regression --out-model=" + model_path);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("test MSE"), std::string::npos);
  std::ifstream model(model_path);
  EXPECT_TRUE(model.good());
}

TEST_F(CliTest, TrainRequiresFlags) {
  EXPECT_NE(RunCli("train --task=regression").exit_code, 0);
  EXPECT_NE(RunCli("train --csv=" + *csv_path_).exit_code, 0);
  EXPECT_NE(
      RunCli("train --csv=" + *csv_path_ + " --task=clustering").exit_code,
      0);
  EXPECT_NE(RunCli("train --csv=/no/such.csv --task=regression").exit_code,
            0);
}

TEST_F(CliTest, PriceSellCheckRoundTrip) {
  const std::string pricing_path = TempPath("pricing.mbp");
  const CommandResult price = RunCli(
      "price --csv=" + *csv_path_ +
      " --task=regression --out-pricing=" + pricing_path);
  ASSERT_EQ(price.exit_code, 0) << price.output;
  EXPECT_NE(price.output.find("E[error]"), std::string::npos);

  const CommandResult check =
      RunCli("check-pricing --pricing=" + pricing_path);
  EXPECT_EQ(check.exit_code, 0) << check.output;
  EXPECT_NE(check.output.find("no arbitrage"), std::string::npos);

  const std::string instance_path =
      TempPath("instance.mbp");
  const CommandResult sell = RunCli(
      "sell --csv=" + *csv_path_ + " --task=regression --pricing=" +
      pricing_path + " --budget=25 --out-model=" + instance_path);
  EXPECT_EQ(sell.exit_code, 0) << sell.output;
  EXPECT_NE(sell.output.find("sold instance"), std::string::npos);
  std::ifstream instance(instance_path);
  EXPECT_TRUE(instance.good());
}

TEST_F(CliTest, CheckPricingFlagsBrokenCurves) {
  const std::string bad_path = TempPath("bad_pricing.mbp");
  {
    std::ofstream out(bad_path);
    // Convex (superadditive) prices.
    out << "mbp-pricing v1\npoints 2\n1 1\n2 4\n";
  }
  const CommandResult result = RunCli("check-pricing --pricing=" + bad_path);
  EXPECT_NE(result.exit_code, 0);
}

TEST_F(CliTest, ServeAnswersPriceAndBudgetQueries) {
  const std::string pricing_path =
      TempPath("serve_pricing.mbp");
  {
    std::ofstream out(pricing_path);
    out << "mbp-pricing v1\npoints 4\n1 10\n2 18\n4 30\n8 40\n";
  }
  const std::string queries_path =
      TempPath("serve_queries.txt");
  {
    std::ofstream out(queries_path);
    out << "0.5\n1.5\n3\n";  // prices 5, 14, 24 on this curve
  }
  const CommandResult result = RunCli("serve --pricing=" + pricing_path +
                                      " --queries=" + queries_path);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("serving 'pricing': 4 knots"),
            std::string::npos);
  EXPECT_NE(result.output.find("0.5 5\n"), std::string::npos);
  EXPECT_NE(result.output.find("1.5 14\n"), std::string::npos);
  EXPECT_NE(result.output.find("3 24\n"), std::string::npos);
  EXPECT_NE(result.output.find("served 3 price queries"), std::string::npos);

  // Budget inversion: 24 affords exactly x = 3.
  const std::string budgets_path =
      TempPath("serve_budgets.txt");
  {
    std::ofstream out(budgets_path);
    out << "24\n";
  }
  const CommandResult invert =
      RunCli("serve --pricing=" + pricing_path + " --queries=" +
             budgets_path + " --invert-budget");
  EXPECT_EQ(invert.exit_code, 0) << invert.output;
  EXPECT_NE(invert.output.find("24 3\n"), std::string::npos);
  EXPECT_NE(invert.output.find("served 1 budget queries"),
            std::string::npos);
}

TEST_F(CliTest, ServeRefusesArbitrageableCurve) {
  // Publish re-runs the certificate at snapshot-compile time: a convex
  // (superadditive) curve must be rejected before serving anything.
  const std::string bad_path = TempPath("serve_bad.mbp");
  {
    std::ofstream out(bad_path);
    out << "mbp-pricing v1\npoints 2\n1 1\n2 4\n";
  }
  const CommandResult result = RunCli("serve --pricing=" + bad_path);
  EXPECT_NE(result.exit_code, 0);
}

// The TCP serving mode needs a real child process (popen exposes no pid
// to signal): fork/exec the CLI with stdin/stdout wired to pipes, parse
// the "listening on" line for the ephemeral port, and drive it with the
// real net::PriceClient.
struct ServeProcess {
  pid_t pid = -1;
  FILE* out = nullptr;    // child stdout+stderr
  int stdin_fd = -1;      // child stdin (-1 when wired to /dev/null)
};

ServeProcess SpawnServeTcp(const std::string& pricing_path,
                           bool with_stdin) {
  ServeProcess proc;
  int out_pipe[2];
  int in_pipe[2] = {-1, -1};
  if (pipe(out_pipe) != 0) return proc;
  if (with_stdin && pipe(in_pipe) != 0) return proc;
  const pid_t pid = fork();
  if (pid < 0) return proc;
  if (pid == 0) {
    if (with_stdin) {
      dup2(in_pipe[0], STDIN_FILENO);
      close(in_pipe[0]);
      close(in_pipe[1]);
    } else {
      const int null_fd = open("/dev/null", O_RDONLY);
      if (null_fd >= 0) dup2(null_fd, STDIN_FILENO);
    }
    dup2(out_pipe[1], STDOUT_FILENO);
    dup2(out_pipe[1], STDERR_FILENO);
    close(out_pipe[0]);
    close(out_pipe[1]);
    const std::string pricing_flag = "--pricing=" + pricing_path;
    execl(MBP_CLI_PATH, MBP_CLI_PATH, "serve", pricing_flag.c_str(),
          "--tcp", "--shards=2", static_cast<char*>(nullptr));
    _exit(127);
  }
  close(out_pipe[1]);
  if (with_stdin) {
    close(in_pipe[0]);
    proc.stdin_fd = in_pipe[1];
  }
  proc.pid = pid;
  proc.out = fdopen(out_pipe[0], "r");
  return proc;
}

// Reads child output lines into `captured` until one contains `marker`;
// returns false on EOF.
bool ReadUntil(FILE* out, const std::string& marker, std::string* captured) {
  char line[512];
  while (fgets(line, sizeof(line), out) != nullptr) {
    *captured += line;
    if (std::string(line).find(marker) != std::string::npos) return true;
  }
  return false;
}

uint16_t ParseListeningPort(const std::string& captured) {
  const auto pos = captured.find("listening on 127.0.0.1:");
  if (pos == std::string::npos) return 0;
  return static_cast<uint16_t>(
      std::atoi(captured.c_str() + pos + strlen("listening on 127.0.0.1:")));
}

void WritePricingFile(const std::string& path, double scale) {
  std::ofstream out(path);
  out << "mbp-pricing v1\npoints 4\n1 " << 10.0 * scale << "\n2 "
      << 18.0 * scale << "\n4 " << 30.0 * scale << "\n8 " << 40.0 * scale
      << "\n";
}

TEST_F(CliTest, ServeTcpDrainsGracefullyOnSigterm) {
  const std::string pricing_path = TempPath("serve_tcp.mbp");
  WritePricingFile(pricing_path, 1.0);
  // stdin is /dev/null: the server must keep serving past stdin EOF and
  // rely on the signal for shutdown.
  ServeProcess proc = SpawnServeTcp(pricing_path, /*with_stdin=*/false);
  ASSERT_GE(proc.pid, 0);
  ASSERT_NE(proc.out, nullptr);

  std::string captured;
  ASSERT_TRUE(ReadUntil(proc.out, "listening on", &captured)) << captured;
  const uint16_t port = ParseListeningPort(captured);
  ASSERT_GT(port, 0) << captured;

  {
    auto client = net::PriceClient::Connect("127.0.0.1", port);
    ASSERT_TRUE(client.ok()) << client.status();
    const auto price = (*client)->PriceAt("pricing", 3.0);
    ASSERT_TRUE(price.ok()) << price.status();
    EXPECT_EQ(*price, 24.0);  // 18 + (30 - 18) * (3 - 2) / (4 - 2)
    const auto budget = (*client)->BudgetToX("pricing", 24.0);
    ASSERT_TRUE(budget.ok()) << budget.status();
    EXPECT_EQ(*budget, 3.0);
  }

  ASSERT_EQ(kill(proc.pid, SIGTERM), 0);
  while (ReadUntil(proc.out, "\x01never", &captured)) {
  }  // drain to EOF
  fclose(proc.out);
  int status = 0;
  ASSERT_EQ(waitpid(proc.pid, &status, 0), proc.pid);
  ASSERT_TRUE(WIFEXITED(status)) << captured;
  EXPECT_EQ(WEXITSTATUS(status), 0) << captured;
  // The graceful drain reports its serving metrics on the way out.
  EXPECT_NE(captured.find("drained:"), std::string::npos) << captured;
  EXPECT_NE(captured.find("requests ok"), std::string::npos) << captured;
}

TEST_F(CliTest, ServeTcpRepublishesLiveOverStdin) {
  const std::string pricing_path = TempPath("serve_tcp_v1.mbp");
  WritePricingFile(pricing_path, 1.0);
  ServeProcess proc = SpawnServeTcp(pricing_path, /*with_stdin=*/true);
  ASSERT_GE(proc.pid, 0);
  ASSERT_NE(proc.out, nullptr);
  ASSERT_GE(proc.stdin_fd, 0);

  std::string captured;
  ASSERT_TRUE(ReadUntil(proc.out, "listening on", &captured)) << captured;
  const uint16_t port = ParseListeningPort(captured);
  ASSERT_GT(port, 0) << captured;

  auto client = net::PriceClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok()) << client.status();
  const auto before = (*client)->PriceAt("pricing", 3.0);
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_EQ(*before, 24.0);

  // Republish a doubled curve by writing its path to the CLI's stdin;
  // the connection stays open across the swap.
  const std::string doubled_path = TempPath("serve_tcp_v2.mbp");
  WritePricingFile(doubled_path, 2.0);
  const std::string command = doubled_path + "\n";
  ASSERT_EQ(write(proc.stdin_fd, command.data(), command.size()),
            static_cast<ssize_t>(command.size()));
  ASSERT_TRUE(ReadUntil(proc.out, "republished", &captured)) << captured;

  const auto after = (*client)->PriceAt("pricing", 3.0);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(*after, 48.0);
  const auto info = (*client)->SnapshotInfo("pricing");
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_GE(info->version, 2u);

  // 'quit' drains and exits 0.
  ASSERT_EQ(write(proc.stdin_fd, "quit\n", 5), 5);
  close(proc.stdin_fd);
  while (ReadUntil(proc.out, "\x01never", &captured)) {
  }
  fclose(proc.out);
  int status = 0;
  ASSERT_EQ(waitpid(proc.pid, &status, 0), proc.pid);
  ASSERT_TRUE(WIFEXITED(status)) << captured;
  EXPECT_EQ(WEXITSTATUS(status), 0) << captured;
  EXPECT_NE(captured.find("drained:"), std::string::npos) << captured;
}

// The `buy` subcommand against a selling `serve --tcp` process: QUOTE
// locks the snapshot price, BUY delivers the weights, a retried txn id
// and REPLAY re-deliver the identical bytes, and the drain line reports
// the per-verb counts plus fulfillment revenue (DESIGN.md §5i).
TEST_F(CliTest, BuySubcommandPurchasesIdempotentlyAndReplays) {
  const std::string pricing_path = TempPath("serve_buy.mbp");
  WritePricingFile(pricing_path, 1.0);
  ServeProcess proc = SpawnServeTcp(pricing_path, /*with_stdin=*/true);
  ASSERT_GE(proc.pid, 0);
  ASSERT_NE(proc.out, nullptr);

  std::string captured;
  ASSERT_TRUE(ReadUntil(proc.out, "listening on", &captured)) << captured;
  const uint16_t port = ParseListeningPort(captured);
  ASSERT_GT(port, 0) << captured;
  const std::string port_flag = " --port=" + std::to_string(port);

  const auto read_file = [](const std::string& path) {
    std::ifstream in(path);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };

  // δ=0.5 → x=2 on the 1→10, 2→18, 4→30, 8→40 curve: price 18.
  const std::string w1 = TempPath("buy_w1.txt");
  const CommandResult bought = RunCli(
      "buy" + port_flag + " --curve-id=pricing --delta=0.5 --txn=77" +
      " --out-weights=" + w1);
  EXPECT_EQ(bought.exit_code, 0) << bought.output;
  EXPECT_NE(bought.output.find("quoted price 18.0000"), std::string::npos)
      << bought.output;
  EXPECT_NE(bought.output.find("sale txn=77"), std::string::npos)
      << bought.output;
  EXPECT_NE(bought.output.find("price=18.0000"), std::string::npos)
      << bought.output;
  const std::string weights = read_file(w1);
  EXPECT_FALSE(weights.empty());

  // Same txn id retried (even with a different δ, skipping the quote):
  // the RECORDED sale comes back, bit-identical, charged once.
  const std::string w2 = TempPath("buy_w2.txt");
  const CommandResult retried = RunCli(
      "buy" + port_flag + " --curve-id=pricing --delta=0.9 --txn=77" +
      " --no-quote --out-weights=" + w2);
  EXPECT_EQ(retried.exit_code, 0) << retried.output;
  EXPECT_NE(retried.output.find("price=18.0000"), std::string::npos)
      << retried.output;
  EXPECT_EQ(read_file(w2), weights);

  // REPLAY re-delivers the recorded sale too.
  const std::string w3 = TempPath("buy_w3.txt");
  const CommandResult replayed = RunCli(
      "buy" + port_flag + " --txn=77 --replay --out-weights=" + w3);
  EXPECT_EQ(replayed.exit_code, 0) << replayed.output;
  EXPECT_EQ(read_file(w3), weights);

  ASSERT_EQ(write(proc.stdin_fd, "quit\n", 5), 5);
  close(proc.stdin_fd);
  while (ReadUntil(proc.out, "\x01never", &captured)) {
  }
  fclose(proc.out);
  int status = 0;
  ASSERT_EQ(waitpid(proc.pid, &status, 0), proc.pid);
  ASSERT_TRUE(WIFEXITED(status)) << captured;
  EXPECT_EQ(WEXITSTATUS(status), 0) << captured;
  EXPECT_NE(captured.find("requests by verb:"), std::string::npos)
      << captured;
  EXPECT_NE(captured.find("BUY=2"), std::string::npos) << captured;
  EXPECT_NE(captured.find("REPLAY=1"), std::string::npos) << captured;
  EXPECT_NE(captured.find("fulfillment: 1 sales, revenue 18.00"),
            std::string::npos)
      << captured;
}

TEST_F(CliTest, SimulateRunsAndWritesLedger) {
  const std::string ledger_path = TempPath("ledger.mbp");
  const CommandResult result = RunCli(
      "simulate --csv=" + *csv_path_ +
      " --task=regression --buyers=200 --out-ledger=" + ledger_path);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("SLA audit: OK"), std::string::npos);
  EXPECT_NE(result.output.find("sales"), std::string::npos);
  std::ifstream ledger(ledger_path);
  std::string header;
  std::getline(ledger, header);
  EXPECT_EQ(header, "mbp-ledger v1");
}

}  // namespace
}  // namespace mbp

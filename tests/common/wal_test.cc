// Write-ahead log tests (DESIGN.md §5j): append/recover roundtrips,
// segment rotation, checkpoint + compaction, group commit, the crash
// points, and the torn-tail fuzz — truncate AND bit-flip a recorded log
// at every byte offset and hold the recovery contract: the longest valid
// prefix is admitted, a corrupt record never is, and no record before
// the damage is ever lost. The whole suite runs under ASan via
// scripts/crash_chaos.sh.

#include "common/wal.h"

#include <dirent.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"

namespace mbp::wal {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/wal_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    RemoveDir(dir_);
  }

  void TearDown() override {
    fault::FaultInjector::Global().Reset();
    RemoveDir(dir_);
  }

  static void RemoveDir(const std::string& dir) {
    DIR* d = opendir(dir.c_str());
    if (d == nullptr) return;
    while (struct dirent* entry = readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      unlink((dir + "/" + name).c_str());
    }
    closedir(d);
    rmdir(dir.c_str());
  }

  static std::vector<std::string> ListDir(const std::string& dir) {
    std::vector<std::string> names;
    DIR* d = opendir(dir.c_str());
    if (d == nullptr) return names;
    while (struct dirent* entry = readdir(d)) {
      const std::string name = entry->d_name;
      if (name != "." && name != "..") names.push_back(name);
    }
    closedir(d);
    return names;
  }

  static std::string ReadAll(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  static void WriteAll(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // Opens the log collecting replayed records.
  static StatusOr<std::unique_ptr<Wal>> OpenCollecting(
      const std::string& dir, const WalOptions& options,
      std::vector<std::string>* records, WalRecovery* recovery = nullptr) {
    return Wal::Open(
        dir, options,
        [records](std::string_view payload) {
          records->emplace_back(payload);
        },
        recovery);
  }

  // Deterministic varied-size payloads, incl. 1-byte and binary ones.
  static std::string PayloadFor(size_t i) {
    std::string payload;
    const size_t size = 1 + (i * 37) % 97;
    payload.reserve(size);
    for (size_t k = 0; k < size; ++k) {
      payload.push_back(static_cast<char>((i * 131 + k * 17) & 0xff));
    }
    return payload;
  }

  std::string dir_;
};

TEST_F(WalTest, AppendRecoverRoundtrip) {
  WalOptions options;
  std::vector<std::string> expected;
  {
    std::vector<std::string> none;
    auto log = OpenCollecting(dir_, options, &none);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    EXPECT_EQ(none.size(), 0u);
    for (size_t i = 0; i < 64; ++i) {
      expected.push_back(PayloadFor(i));
      ASSERT_TRUE((*log)->Append(expected.back()).ok());
    }
    EXPECT_EQ((*log)->appends(), 64u);
    EXPECT_GT((*log)->bytes_appended(), 64u * kWalHeaderBytes);
  }
  std::vector<std::string> recovered;
  WalRecovery recovery;
  auto log = OpenCollecting(dir_, options, &recovered, &recovery);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_EQ(recovered, expected);
  EXPECT_EQ(recovery.records_replayed, 64u);
  EXPECT_EQ(recovery.torn_tail, 0u);
  EXPECT_FALSE(recovery.has_checkpoint);
}

TEST_F(WalTest, RejectsEmptyAndOversizedRecords) {
  std::vector<std::string> none;
  auto log = OpenCollecting(dir_, WalOptions{}, &none);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->Append("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ((*log)->Append(std::string(kMaxWalRecordBytes + 1, 'x')).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE((*log)->Append(std::string(1, 'x')).ok());
}

TEST_F(WalTest, SegmentRotationPreservesOrderAcrossFiles) {
  WalOptions options;
  options.segment_bytes = 256;  // forces many rotations
  std::vector<std::string> expected;
  {
    std::vector<std::string> none;
    auto log = OpenCollecting(dir_, options, &none);
    ASSERT_TRUE(log.ok());
    for (size_t i = 0; i < 100; ++i) {
      expected.push_back(PayloadFor(i));
      ASSERT_TRUE((*log)->Append(expected.back()).ok());
    }
  }
  size_t segments = 0;
  for (const std::string& name : ListDir(dir_)) {
    segments += name.find(".seg") != std::string::npos;
  }
  EXPECT_GT(segments, 4u);
  std::vector<std::string> recovered;
  auto log = OpenCollecting(dir_, options, &recovered);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(recovered, expected);
}

TEST_F(WalTest, CheckpointCompactsAndSkipsSegmentReplay) {
  WalOptions options;
  options.segment_bytes = 256;
  {
    std::vector<std::string> none;
    auto log = OpenCollecting(dir_, options, &none);
    ASSERT_TRUE(log.ok());
    for (size_t i = 0; i < 50; ++i) {
      ASSERT_TRUE((*log)->Append(PayloadFor(i)).ok());
    }
    ASSERT_TRUE((*log)->Checkpoint("ledger-state-v1").ok());
    EXPECT_EQ((*log)->checkpoints(), 1u);
  }
  // Compaction removed the subsumed segments; only the fresh append
  // segment and the checkpoint remain.
  size_t segments = 0, ckpts = 0;
  for (const std::string& name : ListDir(dir_)) {
    segments += name.find(".seg") != std::string::npos;
    ckpts += name.find(".ckpt") != std::string::npos;
  }
  EXPECT_EQ(segments, 1u);
  EXPECT_EQ(ckpts, 1u);

  std::vector<std::string> recovered;
  WalRecovery recovery;
  {
    auto log = OpenCollecting(dir_, options, &recovered, &recovery);
    ASSERT_TRUE(log.ok());
    EXPECT_TRUE(recovery.has_checkpoint);
    EXPECT_EQ(recovery.checkpoint, "ledger-state-v1");
    EXPECT_EQ(recovery.records_replayed, 0u);  // clean start: no replay
    EXPECT_EQ(recovery.torn_tail, 0u);
    // Records appended after the checkpoint replay on the next start.
    ASSERT_TRUE((*log)->Append("after-checkpoint").ok());
  }
  recovered.clear();
  auto log = OpenCollecting(dir_, options, &recovered, &recovery);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(recovery.checkpoint, "ledger-state-v1");
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0], "after-checkpoint");
}

TEST_F(WalTest, CheckpointStateMayExceedSegmentRecordCap) {
  // Checkpoint state is a whole-application snapshot (a §5g catalog can
  // be many MB) and is bounded by kMaxWalCheckpointBytes, not the 1MiB
  // segment-record cap. Regression: a 1024-curve shard drain used to
  // fail its catalog checkpoint with InvalidArgument.
  WalOptions options;
  const std::string big_state(kMaxWalRecordBytes + 4096, 's');
  {
    std::vector<std::string> none;
    auto log = OpenCollecting(dir_, options, &none);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append("sale-1").ok());
    ASSERT_TRUE((*log)->Checkpoint(big_state).ok());
    EXPECT_EQ((*log)->Checkpoint("").code(), StatusCode::kInvalidArgument);
  }
  std::vector<std::string> recovered;
  WalRecovery recovery;
  auto log = OpenCollecting(dir_, options, &recovered, &recovery);
  ASSERT_TRUE(log.ok());
  EXPECT_TRUE(recovery.has_checkpoint);
  EXPECT_EQ(recovery.checkpoint, big_state);
  EXPECT_EQ(recovery.records_replayed, 0u);
  EXPECT_EQ(recovery.torn_tail, 0u);
}

TEST_F(WalTest, CorruptCheckpointFallsBackToSegments) {
  WalOptions options;
  std::string ckpt_path;
  {
    std::vector<std::string> none;
    auto log = OpenCollecting(dir_, options, &none);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append("pre").ok());
    ASSERT_TRUE((*log)->Checkpoint("ckpt-state").ok());
    ASSERT_TRUE((*log)->Append("post").ok());
  }
  for (const std::string& name : ListDir(dir_)) {
    if (name.find(".ckpt") != std::string::npos) {
      ckpt_path = dir_ + "/" + name;
    }
  }
  ASSERT_FALSE(ckpt_path.empty());
  std::string bytes = ReadAll(ckpt_path);
  bytes[bytes.size() / 2] ^= 0x40;  // bit rot inside the state payload
  WriteAll(ckpt_path, bytes);

  std::vector<std::string> recovered;
  WalRecovery recovery;
  auto log = OpenCollecting(dir_, options, &recovered, &recovery);
  ASSERT_TRUE(log.ok());
  // The damaged checkpoint is rejected (counted as damage) and recovery
  // proceeds from the surviving segments: "pre" was compacted away, the
  // post-checkpoint segment still replays.
  EXPECT_FALSE(recovery.has_checkpoint);
  EXPECT_GE(recovery.torn_tail, 1u);
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0], "post");
}

TEST_F(WalTest, FsyncPolicyCounters) {
  {
    WalOptions options;
    options.fsync_policy = FsyncPolicy::kEveryRecord;
    std::vector<std::string> none;
    auto log = OpenCollecting(dir_ + ".every", options, &none);
    ASSERT_TRUE(log.ok());
    for (size_t i = 0; i < 10; ++i) {
      ASSERT_TRUE((*log)->Append(PayloadFor(i)).ok());
    }
    EXPECT_GE((*log)->fsyncs(), 10u);
    RemoveDir(dir_ + ".every");
  }
  {
    WalOptions options;
    options.fsync_policy = FsyncPolicy::kNone;
    std::vector<std::string> none;
    auto log = OpenCollecting(dir_ + ".none", options, &none);
    ASSERT_TRUE(log.ok());
    for (size_t i = 0; i < 10; ++i) {
      ASSERT_TRUE((*log)->Append(PayloadFor(i)).ok());
    }
    EXPECT_EQ((*log)->fsyncs(), 0u);
    ASSERT_TRUE((*log)->Sync().ok());  // explicit sync still works
    EXPECT_EQ((*log)->fsyncs(), 1u);
    RemoveDir(dir_ + ".none");
  }
}

TEST_F(WalTest, GroupCommitBatchesFsyncsUnderConcurrency) {
  WalOptions options;
  options.fsync_policy = FsyncPolicy::kBatch;
  std::vector<std::string> none;
  auto log = OpenCollecting(dir_, options, &none);
  ASSERT_TRUE(log.ok());
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 50;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(
            (*log)->Append(PayloadFor(t * kPerThread + i)).ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ((*log)->appends(), kThreads * kPerThread);
  // Group commit: every append is durable on return, yet concurrent
  // appends share sync leaders, so fsyncs <= appends (usually far
  // fewer). The recovery roundtrip proves none were lost.
  EXPECT_LE((*log)->fsyncs(), (*log)->appends());
  log->reset();
  std::vector<std::string> recovered;
  auto reopened = OpenCollecting(dir_, options, &recovered);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(recovered.size(), kThreads * kPerThread);
}

TEST_F(WalTest, TornTailIsTruncatedAndAppendsResume) {
  WalOptions options;
  std::vector<std::string> expected;
  {
    std::vector<std::string> none;
    auto log = OpenCollecting(dir_, options, &none);
    ASSERT_TRUE(log.ok());
    for (size_t i = 0; i < 8; ++i) {
      expected.push_back(PayloadFor(i));
      ASSERT_TRUE((*log)->Append(expected.back()).ok());
    }
  }
  // Simulate a mid-write crash: a partial frame at the tail.
  std::string seg_path;
  for (const std::string& name : ListDir(dir_)) {
    if (name.find(".seg") != std::string::npos) seg_path = dir_ + "/" + name;
  }
  ASSERT_FALSE(seg_path.empty());
  std::string bytes = ReadAll(seg_path);
  const size_t intact_size = bytes.size();
  bytes += std::string("\x40\x00\x00\x00????partial-record", 22);
  WriteAll(seg_path, bytes);

  std::vector<std::string> recovered;
  WalRecovery recovery;
  {
    auto log = OpenCollecting(dir_, options, &recovered, &recovery);
    ASSERT_TRUE(log.ok());
    EXPECT_EQ(recovered, expected);
    EXPECT_EQ(recovery.torn_tail, 1u);
    EXPECT_EQ(recovery.truncated_bytes, 22u);
    struct stat st;
    ASSERT_EQ(stat(seg_path.c_str(), &st), 0);
    EXPECT_EQ(static_cast<size_t>(st.st_size), intact_size);
    ASSERT_TRUE((*log)->Append("resumed").ok());
  }
  recovered.clear();
  auto log = OpenCollecting(dir_, options, &recovered, &recovery);
  ASSERT_TRUE(log.ok());
  expected.push_back("resumed");
  EXPECT_EQ(recovered, expected);
  EXPECT_EQ(recovery.torn_tail, 0u);
}

// The satellite fuzz: truncate the recorded log at EVERY byte offset and
// bit-flip EVERY byte; recovery must admit exactly (truncation) or at
// least (flip) the records before the damage, and never a corrupt one.
class WalFuzzTest : public WalTest {
 protected:
  void BuildBaseLog() {
    std::vector<std::string> none;
    auto log = OpenCollecting(dir_, WalOptions{}, &none);
    ASSERT_TRUE(log.ok());
    for (size_t i = 0; i < 16; ++i) {
      originals_.push_back(PayloadFor(i));
      ASSERT_TRUE((*log)->Append(originals_.back()).ok());
      frame_end_.push_back((frame_end_.empty() ? 0 : frame_end_.back()) +
                           kWalHeaderBytes + originals_.back().size());
    }
    log->reset();
    for (const std::string& name : ListDir(dir_)) {
      if (name.find(".seg") != std::string::npos) {
        seg_name_ = name;
      }
    }
    ASSERT_FALSE(seg_name_.empty());
    base_bytes_ = ReadAll(dir_ + "/" + seg_name_);
    ASSERT_EQ(base_bytes_.size(), frame_end_.back());
  }

  // Records fully contained in [0, size).
  size_t FramesBelow(size_t size) const {
    size_t n = 0;
    while (n < frame_end_.size() && frame_end_[n] <= size) ++n;
    return n;
  }

  // Recovers a scratch dir holding `bytes` as the only segment.
  void Recover(const std::string& bytes, std::vector<std::string>* records,
               WalRecovery* recovery) {
    const std::string scratch = dir_ + ".scratch";
    RemoveDir(scratch);
    ASSERT_EQ(mkdir(scratch.c_str(), 0755), 0);
    WriteAll(scratch + "/" + seg_name_, bytes);
    auto log = OpenCollecting(scratch, WalOptions{}, records, recovery);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    log->reset();
    RemoveDir(scratch);
  }

  std::vector<std::string> originals_;
  std::vector<size_t> frame_end_;
  std::string seg_name_;
  std::string base_bytes_;
};

TEST_F(WalFuzzTest, TruncationAtEveryByteOffsetRecoversExactPrefix) {
  BuildBaseLog();
  for (size_t cut = 0; cut < base_bytes_.size(); ++cut) {
    std::vector<std::string> recovered;
    WalRecovery recovery;
    Recover(base_bytes_.substr(0, cut), &recovered, &recovery);
    const size_t expect = FramesBelow(cut);
    ASSERT_EQ(recovered.size(), expect) << "cut at " << cut;
    for (size_t i = 0; i < expect; ++i) {
      ASSERT_EQ(recovered[i], originals_[i]) << "cut at " << cut;
    }
    // A cut on a frame boundary is indistinguishable from a clean stop;
    // anything else is a torn tail and must be counted and truncated.
    const bool on_boundary = cut == 0 || (expect > 0 &&
                                          frame_end_[expect - 1] == cut);
    ASSERT_EQ(recovery.torn_tail, on_boundary ? 0u : 1u) << "cut at " << cut;
  }
}

TEST_F(WalFuzzTest, BitFlipAtEveryByteNeverAdmitsCorruptOrLosesPriorRecords) {
  BuildBaseLog();
  for (size_t b = 0; b < base_bytes_.size(); ++b) {
    std::string bytes = base_bytes_;
    bytes[b] = static_cast<char>(bytes[b] ^ (1u << (b % 8)));
    std::vector<std::string> recovered;
    WalRecovery recovery;
    Recover(bytes, &recovered, &recovery);
    // The frame containing byte b fails its checksum (or stops parsing);
    // every record BEFORE it must survive, and every admitted record
    // must be bit-identical to what was appended — a corrupt record is
    // never surfaced.
    size_t damaged_frame = 0;
    while (frame_end_[damaged_frame] <= b) ++damaged_frame;
    ASSERT_GE(recovered.size(), damaged_frame) << "flip at " << b;
    ASSERT_LE(recovered.size(), originals_.size()) << "flip at " << b;
    for (size_t i = 0; i < recovered.size(); ++i) {
      ASSERT_EQ(recovered[i], originals_[i]) << "flip at " << b;
    }
    ASSERT_GE(recovery.torn_tail, 1u) << "flip at " << b;
  }
}

#if defined(MBP_FAULT_INJECTION_ENABLED)

// The crash actions, end to end at unit level: die at a named boundary
// inside Append, then recover the directory the dead process left.
class WalCrashTest : public WalTest {
 protected:
  // Runs `appends` appends with `point` armed to fire on hit
  // `crash_after` in a forked child; expects exit code 137.
  void CrashingChild(const char* point, uint64_t crash_after,
                     size_t appends) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      fault::FaultInjector& injector = fault::FaultInjector::Global();
      injector.Reset();
      fault::PointSchedule schedule;
      schedule.skip_first = crash_after;
      schedule.max_fires = 1;
      injector.Arm(point, schedule);
      std::vector<std::string> none;
      auto log = OpenCollecting(dir_, WalOptions{}, &none);
      if (!log.ok()) _exit(3);
      for (size_t i = 0; i < appends; ++i) {
        if (!(*log)->Append(PayloadFor(i)).ok()) _exit(4);
      }
      _exit(0);  // crash point never fired
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 137);
  }
};

TEST_F(WalCrashTest, TornWriteCrashRecoversPriorRecordsAndTruncates) {
  CrashingChild("wal.append.torn", 3, 10);
  std::vector<std::string> recovered;
  WalRecovery recovery;
  auto log = OpenCollecting(dir_, WalOptions{}, &recovered, &recovery);
  ASSERT_TRUE(log.ok());
  // 3 full records landed before the torn 4th; the partial write is
  // truncated away, never replayed.
  ASSERT_EQ(recovered.size(), 3u);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(recovered[i], PayloadFor(i));
  EXPECT_EQ(recovery.torn_tail, 1u);
  EXPECT_GT(recovery.truncated_bytes, 0u);
}

TEST_F(WalCrashTest, PreFsyncCrashKeepsFullyWrittenRecord) {
  // kill -9 semantics: the page cache is kernel-owned, so a record fully
  // handed to write() survives even though fdatasync never ran.
  CrashingChild("wal.crash.pre_fsync", 5, 10);
  std::vector<std::string> recovered;
  WalRecovery recovery;
  auto log = OpenCollecting(dir_, WalOptions{}, &recovered, &recovery);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(recovered.size(), 6u);  // records 0..5, the 6th mid-append
  EXPECT_EQ(recovery.torn_tail, 0u);
}

TEST_F(WalCrashTest, PostFsyncPreAckCrashKeepsDurableRecord) {
  CrashingChild("wal.crash.post_fsync", 5, 10);
  std::vector<std::string> recovered;
  WalRecovery recovery;
  auto log = OpenCollecting(dir_, WalOptions{}, &recovered, &recovery);
  ASSERT_TRUE(log.ok());
  // The record was durable but never acked: recovery keeps it — exactly
  // the case whose ledger-level dedupe the idempotent retry relies on.
  ASSERT_EQ(recovered.size(), 6u);
  EXPECT_EQ(recovery.torn_tail, 0u);
}

TEST_F(WalCrashTest, CheckpointPreRenameCrashFallsBackToSegments) {
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    fault::FaultInjector& injector = fault::FaultInjector::Global();
    injector.Reset();
    injector.Arm("wal.checkpoint.pre_rename", {});
    std::vector<std::string> none;
    auto log = OpenCollecting(dir_, WalOptions{}, &none);
    if (!log.ok()) _exit(3);
    for (size_t i = 0; i < 4; ++i) {
      if (!(*log)->Append(PayloadFor(i)).ok()) _exit(4);
    }
    (void)(*log)->Checkpoint("state");  // dies before the rename
    _exit(0);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 137);

  std::vector<std::string> recovered;
  WalRecovery recovery;
  auto log = OpenCollecting(dir_, WalOptions{}, &recovered, &recovery);
  ASSERT_TRUE(log.ok());
  // The half-made checkpoint is invisible (tmp never renamed); every
  // appended record still replays from the sealed segments.
  EXPECT_FALSE(recovery.has_checkpoint);
  ASSERT_EQ(recovered.size(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(recovered[i], PayloadFor(i));
}

#endif  // MBP_FAULT_INJECTION_ENABLED

}  // namespace
}  // namespace mbp::wal

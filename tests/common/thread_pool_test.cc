#include "common/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace mbp {
namespace {

TEST(ParallelConfigTest, ResolvesZeroToHardwareConcurrency) {
  ParallelConfig config;
  EXPECT_GE(config.ResolvedThreads(), 1u);
  config.num_threads = 3;
  EXPECT_EQ(config.ResolvedThreads(), 3u);
  EXPECT_EQ(ParallelConfig::Serial().ResolvedThreads(), 1u);
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.num_workers(), 2u);
  std::mutex mutex;
  std::condition_variable done;
  size_t completed = 0;
  constexpr size_t kTasks = 16;
  for (size_t i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      std::lock_guard<std::mutex> lock(mutex);
      if (++completed == kTasks) done.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mutex);
  done.wait(lock, [&] { return completed == kTasks; });
  EXPECT_EQ(completed, kTasks);
}

TEST(ThreadPoolTest, SharedPoolHasWorkersEvenOnSmallMachines) {
  // Shared() is sized for explicit parallelism requests, not just for the
  // local core count, so parallel paths are exercised everywhere.
  EXPECT_GE(ThreadPool::Shared().num_workers(), 4u);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ParallelConfig config;
    config.num_threads = threads;
    std::vector<std::atomic<int>> visits(103);
    for (auto& count : visits) count = 0;
    const Status status =
        ParallelFor(config, 0, visits.size(), 7,
                    [&](size_t begin, size_t end) {
                      for (size_t i = begin; i < end; ++i) ++visits[i];
                      return Status::OK();
                    });
    ASSERT_TRUE(status.ok());
    for (const auto& count : visits) EXPECT_EQ(count.load(), 1);
  }
}

TEST(ParallelForTest, ChunkBoundariesFollowGrain) {
  ParallelConfig config;
  config.num_threads = 1;
  std::vector<std::pair<size_t, size_t>> chunks;
  ASSERT_TRUE(ParallelFor(config, 10, 35, 10,
                          [&](size_t begin, size_t end) {
                            chunks.emplace_back(begin, end);
                            return Status::OK();
                          })
                  .ok());
  const std::vector<std::pair<size_t, size_t>> expected = {
      {10, 20}, {20, 30}, {30, 35}};
  EXPECT_EQ(chunks, expected);
}

TEST(ParallelForTest, EmptyRangeIsANoOp) {
  std::atomic<int> calls{0};
  EXPECT_TRUE(ParallelFor({}, 5, 5, 1,
                          [&](size_t, size_t) {
                            ++calls;
                            return Status::OK();
                          })
                  .ok());
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, ReturnsLowestChunkError) {
  for (size_t threads : {size_t{1}, size_t{8}}) {
    ParallelConfig config;
    config.num_threads = threads;
    const Status status = ParallelFor(
        config, 0, 100, 1, [&](size_t begin, size_t) {
          if (begin == 71) return InvalidArgumentError("chunk 71");
          if (begin == 23) return InvalidArgumentError("chunk 23");
          return Status::OK();
        });
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(status.message(), "chunk 23");
  }
}

TEST(ParallelForTest, ConvertsExceptionsToInternalError) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ParallelConfig config;
    config.num_threads = threads;
    const Status status =
        ParallelFor(config, 0, 8, 1, [&](size_t begin, size_t) -> Status {
          if (begin == 5) throw std::runtime_error("boom");
          return Status::OK();
        });
    EXPECT_EQ(status.code(), StatusCode::kInternal);
    EXPECT_NE(status.message().find("boom"), std::string::npos);
  }
}

TEST(ParallelForTest, NestedCallsDoNotDeadlock) {
  // Saturate the pool with outer chunks that each fan out again; the
  // caller-participates design must make progress regardless.
  ParallelConfig config;
  config.num_threads = ThreadPool::Shared().num_workers() + 1;
  std::atomic<size_t> total{0};
  const Status status = ParallelFor(
      config, 0, 16, 1, [&](size_t, size_t) {
        return ParallelFor(config, 0, 16, 1, [&](size_t, size_t) {
          ++total;
          return Status::OK();
        });
      });
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(total.load(), 16u * 16u);
}

TEST(ParallelForTest, RunsOnACallerOwnedPool) {
  ThreadPool pool(2);
  ParallelConfig config;
  config.num_threads = 3;
  config.pool = &pool;
  std::vector<std::atomic<int>> visits(64);
  for (auto& count : visits) count = 0;
  ASSERT_TRUE(ParallelFor(config, 0, visits.size(), 4,
                          [&](size_t begin, size_t end) {
                            for (size_t i = begin; i < end; ++i) {
                              ++visits[i];
                            }
                            return Status::OK();
                          })
                  .ok());
  for (const auto& count : visits) EXPECT_EQ(count.load(), 1);
}

TEST(ParallelForTest, ParallelSumMatchesSerialWithChunkOrderReduction) {
  // The canonical deterministic-reduction pattern: per-chunk partials
  // folded in chunk order give the same bits at any thread count.
  constexpr size_t kN = 1000;
  constexpr size_t kGrain = 32;
  std::vector<double> values(kN);
  for (size_t i = 0; i < kN; ++i) {
    values[i] = 1.0 / static_cast<double>(i + 1);
  }
  const size_t num_chunks = (kN + kGrain - 1) / kGrain;
  auto sum_with_threads = [&](size_t threads) {
    ParallelConfig config;
    config.num_threads = threads;
    std::vector<double> partial(num_chunks, 0.0);
    EXPECT_TRUE(ParallelFor(config, 0, kN, kGrain,
                            [&](size_t begin, size_t end) {
                              double total = 0.0;
                              for (size_t i = begin; i < end; ++i) {
                                total += values[i];
                              }
                              partial[begin / kGrain] = total;
                              return Status::OK();
                            })
                    .ok());
    return std::accumulate(partial.begin(), partial.end(), 0.0);
  };
  const double serial = sum_with_threads(1);
  EXPECT_EQ(serial, sum_with_threads(4));
  EXPECT_EQ(serial, sum_with_threads(64));
}

}  // namespace
}  // namespace mbp

// InternTable (common/intern_table.h): dense ref assignment, adversarial
// keys (embedded NULs, max-length ids, real FNV-1a-32 collisions), grow
// behavior, and the lock-free Find contract under concurrent interning.

#include "common/intern_table.h"

#include <atomic>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

namespace mbp {
namespace {

TEST(InternTableTest, AssignsDenseRefsInInsertionOrder) {
  InternTable table;
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.Intern("alpha"), 0u);
  EXPECT_EQ(table.Intern("beta"), 1u);
  EXPECT_EQ(table.Intern("gamma"), 2u);
  EXPECT_EQ(table.size(), 3u);
  // Re-interning is idempotent.
  EXPECT_EQ(table.Intern("beta"), 1u);
  EXPECT_EQ(table.size(), 3u);
}

TEST(InternTableTest, FindMatchesInternAndMissesUnknownKeys) {
  InternTable table;
  table.Intern("alpha");
  table.Intern("beta");
  EXPECT_EQ(table.Find("alpha"), 0u);
  EXPECT_EQ(table.Find("beta"), 1u);
  EXPECT_EQ(table.Find("gamma"), InternTable::kNotFound);
  EXPECT_EQ(table.Find(""), InternTable::kNotFound);
}

TEST(InternTableTest, KeyOfReturnsStableBytes) {
  InternTable table;
  std::vector<std::string_view> views;
  for (int i = 0; i < 1000; ++i) {
    const uint32_t ref = table.Intern("key-" + std::to_string(i));
    views.push_back(table.KeyOf(ref));
  }
  // Growing the table 1000 keys deep must not have moved earlier entries.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(views[i], "key-" + std::to_string(i));
    EXPECT_EQ(table.KeyOf(static_cast<uint32_t>(i)), views[i]);
  }
}

TEST(InternTableTest, EmptyKeyIsALegalDistinctKey) {
  InternTable table;
  const uint32_t ref = table.Intern("");
  EXPECT_EQ(table.Find(""), ref);
  EXPECT_EQ(table.KeyOf(ref), "");
  EXPECT_EQ(table.Intern(""), ref);
}

TEST(InternTableTest, EmbeddedNulBytesAreSignificant) {
  InternTable table;
  const std::string_view with_nul("a\0b", 3);
  const std::string_view with_nul2("a\0c", 3);
  const std::string_view prefix("a", 1);
  const uint32_t r1 = table.Intern(with_nul);
  const uint32_t r2 = table.Intern(with_nul2);
  const uint32_t r3 = table.Intern(prefix);
  EXPECT_NE(r1, r2);
  EXPECT_NE(r1, r3);
  EXPECT_EQ(table.Find(with_nul), r1);
  EXPECT_EQ(table.Find(with_nul2), r2);
  EXPECT_EQ(table.Find(prefix), r3);
  EXPECT_EQ(table.KeyOf(r1), with_nul);
  // NUL-only keys of different lengths are distinct.
  const uint32_t n1 = table.Intern(std::string_view("\0", 1));
  const uint32_t n2 = table.Intern(std::string_view("\0\0", 2));
  EXPECT_NE(n1, n2);
}

TEST(InternTableTest, MaxLengthWireIdsRoundTrip) {
  // The wire protocol caps curve ids at 255 bytes; the table itself has
  // no limit, but the boundary length must round-trip exactly.
  InternTable table;
  std::string id(255, 'x');
  id[0] = 'a';
  id[254] = 'z';
  const uint32_t ref = table.Intern(id);
  EXPECT_EQ(table.Find(id), ref);
  EXPECT_EQ(table.KeyOf(ref), id);
  // One byte shorter is a different key.
  EXPECT_EQ(table.Find(std::string_view(id).substr(0, 254)),
            InternTable::kNotFound);
}

TEST(InternTableTest, RealFnvCollisionsResolveByByteCompare) {
  // Brute-force a genuine FNV-1a-32 colliding pair (birthday bound:
  // ~2^16 draws expected; the 32-bit hash was chosen so this is cheap).
  std::unordered_map<uint32_t, std::string> seen;
  std::string a, b;
  for (size_t i = 0; i < 500000; ++i) {
    std::string key = "collide-" + std::to_string(i);
    const uint32_t h = InternTable::Hash(key);
    const auto it = seen.find(h);
    if (it != seen.end()) {
      a = it->second;
      b = key;
      break;
    }
    seen.emplace(h, std::move(key));
  }
  ASSERT_FALSE(b.empty()) << "no FNV-1a-32 collision within 500k draws";
  ASSERT_EQ(InternTable::Hash(a), InternTable::Hash(b));
  ASSERT_NE(a, b);

  InternTable table;
  const uint32_t ra = table.Intern(a);
  const uint32_t rb = table.Intern(b);
  EXPECT_NE(ra, rb) << "colliding keys must get distinct refs";
  EXPECT_EQ(table.Find(a), ra);
  EXPECT_EQ(table.Find(b), rb);
  EXPECT_EQ(table.KeyOf(ra), a);
  EXPECT_EQ(table.KeyOf(rb), b);
  EXPECT_EQ(table.Intern(a), ra);
  EXPECT_EQ(table.Intern(b), rb);
}

TEST(InternTableTest, ConcurrentInternAndFindAgreeOnRefs) {
  // Writers intern overlapping key ranges while readers Find
  // concurrently; afterwards every key has exactly one ref and Find/KeyOf
  // agree. Run under scripts/tsan.sh this also checks the grow/publish
  // ordering (retired tables, release stores).
  InternTable table;
  constexpr int kKeys = 4000;
  constexpr int kWriters = 4;
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&table, w] {
      // Each writer covers the full range, offset so they contend.
      for (int i = 0; i < kKeys; ++i) {
        const int k = (i * (w + 1)) % kKeys;
        table.Intern("k" + std::to_string(k));
      }
    });
  }
  std::thread reader([&table, &stop] {
    uint64_t hits = 0;
    while (!stop.load(std::memory_order_acquire)) {
      for (int i = 0; i < kKeys; i += 97) {
        const uint32_t ref = table.Find("k" + std::to_string(i));
        if (ref != InternTable::kNotFound) {
          // A found ref must immediately be consistent.
          if (table.KeyOf(ref) == "k" + std::to_string(i)) ++hits;
        }
      }
    }
    EXPECT_GT(hits, 0u);
  });
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(table.size(), static_cast<size_t>(kKeys));
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "k" + std::to_string(i);
    const uint32_t ref = table.Find(key);
    ASSERT_NE(ref, InternTable::kNotFound) << key;
    EXPECT_EQ(table.KeyOf(ref), key);
  }
}

}  // namespace
}  // namespace mbp

#include "common/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace mbp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = InvalidArgumentError("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllConvenienceConstructors) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(InfeasibleError("x").code(), StatusCode::kInfeasible);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

TEST(StatusTest, StreamOperatorPrintsToString) {
  std::ostringstream os;
  os << NotFoundError("missing");
  EXPECT_EQ(os.str(), "NotFound: missing");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInfeasible), "Infeasible");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

Status FailsThrough() {
  MBP_RETURN_IF_ERROR(InvalidArgumentError("inner"));
  return InternalError("should not reach");
}

Status Passes() {
  MBP_RETURN_IF_ERROR(Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(Passes().ok());
}

}  // namespace
}  // namespace mbp

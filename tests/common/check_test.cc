#include "common/check.h"

#include <gtest/gtest.h>

namespace mbp {
namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  MBP_CHECK(true);
  MBP_CHECK_EQ(1, 1);
  MBP_CHECK_NE(1, 2);
  MBP_CHECK_LT(1, 2);
  MBP_CHECK_LE(2, 2);
  MBP_CHECK_GT(2, 1);
  MBP_CHECK_GE(2, 2);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH({ MBP_CHECK(1 == 2); }, "MBP_CHECK failed");
}

TEST(CheckDeathTest, FailureMessageIncludesStreamedDetail) {
  EXPECT_DEATH({ MBP_CHECK(false) << "extra context " << 42; },
               "extra context 42");
}

TEST(CheckDeathTest, ComparisonMacrosAbort) {
  EXPECT_DEATH({ MBP_CHECK_EQ(1, 2); }, "MBP_CHECK failed");
  EXPECT_DEATH({ MBP_CHECK_LT(2, 1); }, "MBP_CHECK failed");
}

TEST(CheckTest, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  MBP_CHECK([&] { return ++calls > 0; }());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace mbp

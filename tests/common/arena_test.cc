#include "common/arena.h"

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

namespace mbp {
namespace {

TEST(ArenaTest, AllocateReturnsAlignedDistinctRegions) {
  Arena arena;
  void* a = arena.Allocate(13, 8);
  void* b = arena.Allocate(1, 64);
  void* c = arena.Allocate(64, 16);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % 16, 0u);
  // Regions must not overlap: writing each fully must preserve the others.
  std::memset(a, 0xAA, 13);
  std::memset(b, 0xBB, 1);
  std::memset(c, 0xCC, 64);
  EXPECT_EQ(static_cast<uint8_t*>(a)[0], 0xAA);
  EXPECT_EQ(static_cast<uint8_t*>(a)[12], 0xAA);
  EXPECT_EQ(static_cast<uint8_t*>(b)[0], 0xBB);
  EXPECT_EQ(static_cast<uint8_t*>(c)[63], 0xCC);
}

TEST(ArenaTest, GrowthDoesNotInvalidateEarlierAllocations) {
  Arena arena(64);  // tiny first block forces mid-pass growth
  uint8_t* first = arena.AllocateArray<uint8_t>(48);
  std::memset(first, 0x5A, 48);
  // Far larger than the first block: must chain a new block, not move.
  uint8_t* second = arena.AllocateArray<uint8_t>(1 << 16);
  std::memset(second, 0xA5, 1 << 16);
  for (size_t i = 0; i < 48; ++i) ASSERT_EQ(first[i], 0x5A);
  EXPECT_GE(arena.heap_blocks_allocated(), 2u);
}

TEST(ArenaTest, ResetCoalescesToOneBlockAndStopsAllocating) {
  Arena arena;
  // Warm-up passes with a fixed footprint: the arena may grow (and
  // coalesce) for a few passes, then the heap traffic must stop — the
  // property the server's zero-allocation contract is built on.
  constexpr size_t kPassBytes = 100 * 1024;
  for (int pass = 0; pass < 4; ++pass) {
    for (int i = 0; i < 100; ++i) (void)arena.AllocateArray<double>(128);
    arena.Reset();
  }
  const uint64_t warm_blocks = arena.heap_blocks_allocated();
  for (int pass = 0; pass < 100; ++pass) {
    for (int i = 0; i < 100; ++i) (void)arena.AllocateArray<double>(128);
    arena.Reset();
  }
  EXPECT_EQ(arena.heap_blocks_allocated(), warm_blocks)
      << "steady-state passes must not touch the heap";
  EXPECT_GE(arena.capacity(), kPassBytes * 4 / 5);
  EXPECT_EQ(arena.used(), 0u);
}

TEST(ArenaTest, ResetKeepsCapacityAndUsedTracksBumping) {
  Arena arena;
  (void)arena.Allocate(1000);
  EXPECT_GE(arena.used(), 1000u);
  const size_t cap = arena.capacity();
  arena.Reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_GE(arena.capacity(), cap);
  EXPECT_EQ(arena.resets(), 1u);
}

TEST(ArenaTest, ReleaseDropsEverything) {
  Arena arena;
  (void)arena.Allocate(4096);
  EXPECT_GT(arena.capacity(), 0u);
  arena.Release();
  EXPECT_EQ(arena.capacity(), 0u);
  // Still usable after Release.
  void* p = arena.Allocate(16);
  EXPECT_NE(p, nullptr);
}

TEST(ArenaVectorTest, PushBackGrowsAndPreservesElements) {
  Arena arena;
  ArenaVector<int> v(&arena);
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  ASSERT_EQ(v.size(), 1000u);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(v[i], i);
  int sum = 0;
  for (const int x : v) sum += x;
  EXPECT_EQ(sum, 999 * 1000 / 2);
}

TEST(ArenaVectorTest, ManyVectorsInterleavedOnOneArena) {
  Arena arena;
  ArenaVector<double> a(&arena);
  ArenaVector<uint64_t> b(&arena);
  for (int i = 0; i < 300; ++i) {
    a.push_back(i * 0.5);
    b.push_back(static_cast<uint64_t>(i) * 3);
  }
  for (int i = 0; i < 300; ++i) {
    ASSERT_EQ(a[i], i * 0.5);
    ASSERT_EQ(b[i], static_cast<uint64_t>(i) * 3);
  }
}

}  // namespace
}  // namespace mbp

// Unit tests for the deterministic fault-injection framework: schedule
// semantics (probability / skip_first / max_fires / delay), seeded
// replayability independent of arming order, and the disarmed fast path.
//
// Every test uses the process-global injector (the one the MBP_FAULT_*
// macros consult), so each resets it on entry AND exit — a leaked armed
// point would leak faults into unrelated suites in the same binary.

#include "common/fault_injection.h"

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace mbp::fault {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

TEST_F(FaultInjectionTest, UnarmedPointNeverFires) {
  FaultInjector& inj = FaultInjector::Global();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(inj.ShouldFire("never.armed"));
  }
  EXPECT_EQ(inj.TotalFires(), 0u);
  EXPECT_EQ(inj.Fires("never.armed"), 0u);
  EXPECT_TRUE(inj.Stats().empty());
}

TEST_F(FaultInjectionTest, MacroRoutesToGlobalInjector) {
  if (!kBuildEnabled) GTEST_SKIP() << "MBP_FAULT_INJECTION=OFF";
  FaultInjector& inj = FaultInjector::Global();
  EXPECT_FALSE(MBP_FAULT_POINT("macro.point"));
  PointSchedule always;
  inj.Arm("macro.point", always);
  EXPECT_TRUE(MBP_FAULT_POINT("macro.point"));
  EXPECT_EQ(inj.Fires("macro.point"), 1u);
}

TEST_F(FaultInjectionTest, CountScheduleIsExact) {
  FaultInjector& inj = FaultInjector::Global();
  PointSchedule s;
  s.skip_first = 3;
  s.max_fires = 2;
  inj.Arm("count.point", s);
  std::vector<bool> fired;
  for (int i = 0; i < 10; ++i) fired.push_back(inj.ShouldFire("count.point"));
  // Hits 0-2 skipped, hits 3-4 fire, budget then exhausted.
  const std::vector<bool> expected = {false, false, false, true, true,
                                      false, false, false, false, false};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(inj.Fires("count.point"), 2u);
  EXPECT_EQ(inj.TotalFires(), 2u);
  const auto stats = inj.Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].point, "count.point");
  EXPECT_EQ(stats[0].hits, 10u);
  EXPECT_EQ(stats[0].fires, 2u);
}

TEST_F(FaultInjectionTest, ProbabilityZeroNeverProbabilityOneAlways) {
  FaultInjector& inj = FaultInjector::Global();
  PointSchedule never;
  never.probability = 0.0;
  inj.Arm("p0", never);
  PointSchedule always;  // probability defaults to 1.0
  inj.Arm("p1", always);
  for (int i = 0; i < 500; ++i) {
    EXPECT_FALSE(inj.ShouldFire("p0"));
    EXPECT_TRUE(inj.ShouldFire("p1"));
  }
  EXPECT_EQ(inj.Fires("p0"), 0u);
  EXPECT_EQ(inj.Fires("p1"), 500u);
}

TEST_F(FaultInjectionTest, ProbabilityRoughlyRespected) {
  FaultInjector& inj = FaultInjector::Global();
  inj.Seed(42);
  PointSchedule s;
  s.probability = 0.25;
  inj.Arm("p25", s);
  constexpr int kHits = 20000;
  for (int i = 0; i < kHits; ++i) (void)inj.ShouldFire("p25");
  const double rate =
      static_cast<double>(inj.Fires("p25")) / static_cast<double>(kHits);
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST_F(FaultInjectionTest, SameSeedReplaysSameDecisionSequence) {
  FaultInjector& inj = FaultInjector::Global();
  PointSchedule s;
  s.probability = 0.3;

  auto run = [&](uint64_t seed) {
    inj.Reset();
    inj.Seed(seed);
    inj.Arm("replay.point", s);
    std::vector<bool> decisions;
    for (int i = 0; i < 200; ++i) {
      decisions.push_back(inj.ShouldFire("replay.point"));
    }
    return decisions;
  };

  const auto first = run(7);
  const auto second = run(7);
  EXPECT_EQ(first, second);
  const auto other_seed = run(8);
  EXPECT_NE(first, other_seed);
}

TEST_F(FaultInjectionTest, DecisionSequenceIndependentOfOtherPoints) {
  FaultInjector& inj = FaultInjector::Global();
  PointSchedule s;
  s.probability = 0.5;

  // Run A: the point alone. Run B: the same point armed after and
  // interleaved with a noisy sibling. The sibling must not perturb the
  // point's stream — that is what makes multi-point chaos schedules
  // replayable.
  inj.Seed(99);
  inj.Arm("indep.point", s);
  std::vector<bool> alone;
  for (int i = 0; i < 100; ++i) alone.push_back(inj.ShouldFire("indep.point"));

  inj.Reset();
  inj.Seed(99);
  inj.Arm("indep.noise", s);
  inj.Arm("indep.point", s);
  std::vector<bool> interleaved;
  for (int i = 0; i < 100; ++i) {
    (void)inj.ShouldFire("indep.noise");
    interleaved.push_back(inj.ShouldFire("indep.point"));
    (void)inj.ShouldFire("indep.noise");
  }
  EXPECT_EQ(alone, interleaved);
}

TEST_F(FaultInjectionTest, RearmResetsCountersAndStream) {
  FaultInjector& inj = FaultInjector::Global();
  PointSchedule s;
  s.max_fires = 1;
  inj.Arm("rearm.point", s);
  EXPECT_TRUE(inj.ShouldFire("rearm.point"));
  EXPECT_FALSE(inj.ShouldFire("rearm.point"));  // budget spent
  inj.Arm("rearm.point", s);                    // re-arm: fresh budget
  EXPECT_TRUE(inj.ShouldFire("rearm.point"));
}

TEST_F(FaultInjectionTest, ResetDisarmsEverything) {
  FaultInjector& inj = FaultInjector::Global();
  inj.Arm("reset.point", PointSchedule{});
  EXPECT_TRUE(inj.ShouldFire("reset.point"));
  inj.Reset();
  EXPECT_FALSE(inj.ShouldFire("reset.point"));
  EXPECT_EQ(inj.TotalFires(), 0u);
  EXPECT_TRUE(inj.Stats().empty());
}

TEST_F(FaultInjectionTest, MaybeDelayStallsOnlyWhenFiring) {
  FaultInjector& inj = FaultInjector::Global();
  EXPECT_EQ(inj.MaybeDelay("delay.point"), 0u);  // unarmed: no stall
  PointSchedule s;
  s.delay_micros = 2000;
  s.max_fires = 1;
  inj.Arm("delay.point", s);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(inj.MaybeDelay("delay.point"), 2000u);
  const auto elapsed = std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_GE(elapsed, 1500.0);  // sleep_for may round, but must stall
  EXPECT_EQ(inj.MaybeDelay("delay.point"), 0u);  // budget spent
}

TEST_F(FaultInjectionTest, ConcurrentEvaluationIsSafeAndCounted) {
  FaultInjector& inj = FaultInjector::Global();
  PointSchedule s;  // probability 1: every hit fires
  inj.Arm("mt.point", s);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) (void)inj.ShouldFire("mt.point");
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(inj.Fires("mt.point"),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(inj.TotalFires(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(Pcg32Test, DeterministicAndSeedSensitive) {
  Pcg32 a(1, 2), b(1, 2), c(3, 2), d(1, 5);
  std::vector<uint32_t> va, vb, vc, vd;
  for (int i = 0; i < 64; ++i) {
    va.push_back(a.Next());
    vb.push_back(b.Next());
    vc.push_back(c.Next());
    vd.push_back(d.Next());
  }
  EXPECT_EQ(va, vb);
  EXPECT_NE(va, vc);  // seed changes the sequence
  EXPECT_NE(va, vd);  // stream changes the sequence
}

TEST(Pcg32Test, NextDoubleStaysInRange) {
  Pcg32 rng(123, 456);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.NextDouble(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

}  // namespace
}  // namespace mbp::fault

#include "common/statusor.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace mbp {
namespace {

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = NotFoundError("nope");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 7);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> result = std::string("hello");
  EXPECT_EQ(result->size(), 5u);
}

TEST(StatusOrTest, MutableAccess) {
  StatusOr<std::vector<int>> result = std::vector<int>{1, 2};
  result->push_back(3);
  EXPECT_EQ(result.value().size(), 3u);
}

StatusOr<int> MakePositive(int x) {
  if (x <= 0) return InvalidArgumentError("not positive");
  return x;
}

StatusOr<int> DoubleOf(int x) {
  MBP_ASSIGN_OR_RETURN(int value, MakePositive(x));
  return value * 2;
}

TEST(StatusOrTest, AssignOrReturnHappyPath) {
  StatusOr<int> result = DoubleOf(21);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
}

TEST(StatusOrTest, AssignOrReturnPropagatesError) {
  StatusOr<int> result = DoubleOf(-1);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  StatusOr<int> result = InternalError("boom");
  EXPECT_DEATH({ (void)result.value(); }, "StatusOr::value");
}

TEST(StatusOrDeathTest, OkStatusWithoutValueAborts) {
  EXPECT_DEATH({ StatusOr<int> bad{Status::OK()}; }, "MBP_CHECK");
}

}  // namespace
}  // namespace mbp

#include "common/metrics.h"

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace mbp {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAllLand) {
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 10000;
  Counter c;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (size_t i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, AddAndSetTrackSignedLevel) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0);
  g.Add(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.Add(-20);
  EXPECT_EQ(g.Value(), -13) << "gauges are signed levels, not counters";
  g.Set(1000);
  EXPECT_EQ(g.Value(), 1000);
}

TEST(GaugeTest, ConcurrentBalancedDeltasNetToZero) {
  Gauge g;
  constexpr size_t kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        g.Add(7);
        g.Add(-7);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(g.Value(), 0);
}

TEST(LatencyHistogramTest, EmptySnapshot) {
  LatencyHistogram h;
  const LatencyHistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum_micros, 0.0);
  EXPECT_EQ(snap.mean_micros(), 0.0);
  EXPECT_EQ(snap.QuantileMicros(0.5), 0.0);
}

TEST(LatencyHistogramTest, BucketBoundariesArePowersOfTwo) {
  EXPECT_EQ(LatencyBucketLowerMicros(0), 0.0);
  EXPECT_EQ(LatencyBucketLowerMicros(1), 1.0);
  EXPECT_EQ(LatencyBucketLowerMicros(2), 2.0);
  EXPECT_EQ(LatencyBucketLowerMicros(5), 16.0);
  EXPECT_EQ(LatencyBucketLowerMicros(11), 1024.0);
}

TEST(LatencyHistogramTest, RecordLandsInDocumentedBucket) {
  LatencyHistogram h;
  h.Record(0.5);    // bucket 0: [0, 1)
  h.Record(1.0);    // bucket 1: [1, 2)
  h.Record(3.0);    // bucket 2: [2, 4)
  h.Record(100.0);  // bucket 7: [64, 128)
  const LatencyHistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[7], 1u);
  EXPECT_NEAR(snap.sum_micros, 104.5, 1e-6);
  EXPECT_NEAR(snap.mean_micros(), 104.5 / 4.0, 1e-6);
}

TEST(LatencyHistogramTest, NegativeAndNanClampToZeroBucket) {
  LatencyHistogram h;
  h.Record(-5.0);
  h.Record(std::nan(""));
  const LatencyHistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.sum_micros, 0.0);
}

TEST(LatencyHistogramTest, QuantilesOrderedAndWithinBucketRange) {
  LatencyHistogram h;
  // 90 samples near 10us (bucket [8,16)), 10 samples near 1000us
  // (bucket [512,1024) upper edge).
  for (int i = 0; i < 90; ++i) h.Record(10.0);
  for (int i = 0; i < 10; ++i) h.Record(1000.0);
  const LatencyHistogramSnapshot snap = h.Snapshot();
  const double p50 = snap.QuantileMicros(0.5);
  const double p99 = snap.QuantileMicros(0.99);
  EXPECT_GE(p50, 8.0);
  EXPECT_LE(p50, 16.0);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1024.0);
  EXPECT_LE(p50, p99);
  // q clamps outside [0, 1].
  EXPECT_LE(snap.QuantileMicros(-1.0), snap.QuantileMicros(2.0));
}

TEST(LatencyHistogramTest, HugeLatencyAbsorbedByLastBucket) {
  LatencyHistogram h;
  h.Record(1e12);  // ~11.6 days in micros; way past 2^30
  const LatencyHistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.buckets[kLatencyBuckets - 1], 1u);
  EXPECT_GT(snap.QuantileMicros(0.5), 0.0);
}

TEST(MaxGaugeTest, TracksRunningMaximum) {
  MaxGauge g;
  EXPECT_EQ(g.Value(), 0u);
  g.Observe(10);
  g.Observe(3);  // lower observations never regress the max
  EXPECT_EQ(g.Value(), 10u);
  g.Observe(10);  // equal value is a no-op, not a CAS livelock
  EXPECT_EQ(g.Value(), 10u);
  g.Observe(42);
  EXPECT_EQ(g.Value(), 42u);
}

TEST(MaxGaugeTest, ConcurrentObservationsKeepTrueMax) {
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 20000;
  MaxGauge g;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        g.Observe(t * kPerThread + i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(g.Value(), kThreads * kPerThread - 1);
}

TEST(LatencyHistogramTest, ConcurrentRecordsAllCounted) {
  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 5000;
  LatencyHistogram h;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<double>(1 + t * 7 + i % 100));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const LatencyHistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < kLatencyBuckets; ++i) bucket_total += snap.buckets[i];
  EXPECT_EQ(bucket_total, snap.count);
}

}  // namespace
}  // namespace mbp

#include "serving/pricing_snapshot.h"

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/pricing_function.h"
#include "random/rng.h"

namespace mbp::serving {
namespace {

using core::PiecewiseLinearPricing;
using core::PricePoint;

PiecewiseLinearPricing MakeValidPricing() {
  return PiecewiseLinearPricing::Create(
             {{1.0, 10.0}, {2.0, 18.0}, {4.0, 30.0}, {8.0, 40.0}})
      .value();
}

std::shared_ptr<const PricingSnapshot> CompileOrDie(
    const PiecewiseLinearPricing& curve) {
  auto snapshot = PricingSnapshot::Compile(curve);
  EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  return std::move(snapshot).value();
}

// A random arbitrage-free curve: strictly increasing x, price built from a
// non-increasing price/x ratio (with occasional exactly-flat price runs),
// which is precisely the relaxed-feasibility certificate.
PiecewiseLinearPricing RandomValidPricing(random::Rng& rng, size_t n) {
  std::vector<PricePoint> points(n);
  double x = 0.0;
  for (size_t i = 0; i < n; ++i) {
    x += 0.05 + rng.NextDouble() * 3.0;
    points[i].x = x;
  }
  double ratio = 5.0 + rng.NextDouble() * 10.0;
  points[0].price = ratio * points[0].x;
  for (size_t i = 1; i < n; ++i) {
    if (rng.NextDouble() < 0.15) {
      points[i].price = points[i - 1].price;  // exact flat segment
    } else {
      const double floor_u = points[i - 1].x / points[i].x;
      const double u =
          std::max(floor_u, 0.9 + rng.NextDouble() * 0.1);
      ratio = (points[i - 1].price / points[i - 1].x) * u;
      points[i].price = ratio * points[i].x;
      if (points[i].price < points[i - 1].price) {
        points[i].price = points[i - 1].price;
      }
    }
  }
  return PiecewiseLinearPricing::Create(std::move(points)).value();
}

TEST(PricingSnapshotTest, CompileRejectsNonArbitrageFreeCurves) {
  // Non-monotone prices.
  auto decreasing =
      PiecewiseLinearPricing::Create({{1.0, 10.0}, {2.0, 5.0}}).value();
  EXPECT_EQ(PricingSnapshot::Compile(decreasing).status().code(),
            StatusCode::kFailedPrecondition);
  // Convex (superadditive) prices.
  auto convex =
      PiecewiseLinearPricing::Create({{1.0, 1.0}, {2.0, 4.0}}).value();
  EXPECT_EQ(PricingSnapshot::Compile(convex).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(PricingSnapshotTest, KnotsRoundTrip) {
  const PiecewiseLinearPricing curve = MakeValidPricing();
  const auto snapshot = CompileOrDie(curve);
  const std::vector<PricePoint> knots = snapshot->Knots();
  ASSERT_EQ(knots.size(), curve.points().size());
  for (size_t i = 0; i < knots.size(); ++i) {
    EXPECT_EQ(knots[i].x, curve.points()[i].x);
    EXPECT_EQ(knots[i].price, curve.points()[i].price);
  }
  EXPECT_EQ(snapshot->num_knots(), 4u);
  EXPECT_EQ(snapshot->x_max(), 8.0);
  EXPECT_EQ(snapshot->max_price(), 40.0);
}

TEST(PricingSnapshotTest, VersionsAreUniqueAndIncreasing) {
  const PiecewiseLinearPricing curve = MakeValidPricing();
  const auto a = CompileOrDie(curve);
  const auto b = CompileOrDie(curve);
  EXPECT_LT(a->version(), b->version());
}

// The heart of the serving contract: the compiled evaluator returns the
// EXACT double the research object returns, at every region of the curve.
TEST(PricingSnapshotTest, PriceAtIsBitIdenticalToResearchPath) {
  random::Rng rng(1234);
  for (const size_t n : {1u, 2u, 3u, 7u, 64u, 1000u}) {
    const PiecewiseLinearPricing curve = RandomValidPricing(rng, n);
    const auto snapshot = CompileOrDie(curve);
    // Exact knots, bucket-boundary-ish points, origin segment, beyond the
    // last knot, and a dense random sweep.
    std::vector<double> xs = {0.0, curve.points().front().x,
                              curve.points().back().x,
                              curve.points().back().x * 3.0};
    for (const PricePoint& p : curve.points()) {
      xs.push_back(p.x);
      xs.push_back(std::nextafter(p.x, 0.0));
      xs.push_back(std::nextafter(p.x, 1e300));
    }
    const double x_max = curve.points().back().x;
    for (int i = 0; i < 2000; ++i) {
      xs.push_back(rng.NextDouble() * x_max * 1.1);
    }
    for (const double x : xs) {
      ASSERT_EQ(snapshot->PriceAt(x), curve.PriceAtInverseNcp(x))
          << "n=" << n << " x=" << x;
    }
  }
}

TEST(PricingSnapshotTest, BudgetInversionIsBitIdenticalToResearchPath) {
  random::Rng rng(99);
  for (const size_t n : {1u, 2u, 5u, 33u, 400u}) {
    const PiecewiseLinearPricing curve = RandomValidPricing(rng, n);
    const auto snapshot = CompileOrDie(curve);
    std::vector<double> budgets = {0.0, curve.points().back().price,
                                   curve.points().back().price * 2.0};
    for (const PricePoint& p : curve.points()) {
      budgets.push_back(p.price);
      budgets.push_back(std::nextafter(p.price, 0.0));
      budgets.push_back(std::nextafter(p.price, 1e300));
    }
    const double max_price = curve.points().back().price;
    for (int i = 0; i < 1000; ++i) {
      budgets.push_back(rng.NextDouble() * max_price * 1.05);
    }
    for (const double budget : budgets) {
      const double expected = curve.MaxInverseNcpForBudget(budget);
      const double served = snapshot->BudgetToInverseNcp(budget);
      if (std::isinf(expected)) {
        EXPECT_TRUE(std::isinf(served)) << "budget=" << budget;
      } else {
        ASSERT_EQ(served, expected) << "n=" << n << " budget=" << budget;
      }
    }
  }
}

TEST(PricingSnapshotTest, SingleKnotCurve) {
  auto curve = PiecewiseLinearPricing::Create({{2.0, 6.0}}).value();
  const auto snapshot = CompileOrDie(curve);
  for (const double x : {0.0, 0.5, 1.0, 2.0, 3.0, 100.0}) {
    EXPECT_EQ(snapshot->PriceAt(x), curve.PriceAtInverseNcp(x));
  }
  EXPECT_EQ(snapshot->BudgetToInverseNcp(3.0),
            curve.MaxInverseNcpForBudget(3.0));
  EXPECT_TRUE(std::isinf(snapshot->BudgetToInverseNcp(6.0)));
}

TEST(PricingSnapshotTest, FlatSegmentBudgetInversion) {
  // Budget equal to the flat price must land at the RIGHT end of the flat
  // run, matching the research path's last-knot-not-exceeding choice.
  auto curve = PiecewiseLinearPricing::Create(
                   {{1.0, 10.0}, {2.0, 10.0}, {3.0, 10.0}, {6.0, 12.0}})
                   .value();
  const auto snapshot = CompileOrDie(curve);
  EXPECT_EQ(snapshot->BudgetToInverseNcp(10.0),
            curve.MaxInverseNcpForBudget(10.0));
  EXPECT_EQ(snapshot->BudgetToInverseNcp(11.0),
            curve.MaxInverseNcpForBudget(11.0));
}

// Ulp-spaced knots stress the bucket index: many knots collapse into one
// bucket and knots straddle bucket edges at the last representable spacing.
TEST(PricingSnapshotTest, UlpSpacedKnotsStillServeExactly) {
  std::vector<PricePoint> points;
  double x = 1.0;
  double price = 10.0;
  for (int i = 0; i < 20; ++i) {
    points.push_back({x, price});
    x = std::nextafter(x, 2.0);
    // Keep the ratio non-increasing: hold the price exactly flat.
  }
  points.push_back({2.0, price * 1.5});
  auto curve = PiecewiseLinearPricing::Create(points).value();
  ASSERT_TRUE(curve.ValidateArbitrageFree().ok());
  const auto snapshot = CompileOrDie(curve);
  for (const PricePoint& p : points) {
    EXPECT_EQ(snapshot->PriceAt(p.x), curve.PriceAtInverseNcp(p.x));
  }
  EXPECT_EQ(snapshot->PriceAt(1.5), curve.PriceAtInverseNcp(1.5));
}

// Sampled Theorem 5/6 invariants hold for the served curve itself.
TEST(PricingSnapshotTest, ServedCurveIsArbitrageFreeOnGrid) {
  random::Rng rng(7);
  const PiecewiseLinearPricing curve = RandomValidPricing(rng, 40);
  const auto snapshot = CompileOrDie(curve);
  const auto price = [&](double x) { return snapshot->PriceAt(x); };
  EXPECT_TRUE(core::IsArbitrageFreeOnGrid(price,
                                          curve.points().back().x * 1.5,
                                          400, 1e-9));
}

}  // namespace
}  // namespace mbp::serving

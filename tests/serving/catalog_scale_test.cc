// Marketplace-scale catalog stress (opt-in: `ctest -C slow -L slow`):
// 100k synthetic listings through the full registry + engine stack.
// Pins the O(1)-resolution claim operationally — publish cost is linear,
// lookups stay uniform across the id space, eviction machinery works at
// scale — without the wall-clock budget of the tier-1 suite.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "random/distributions.h"
#include "random/rng.h"
#include "serving/catalog_registry.h"
#include "serving/price_query_engine.h"
#include "serving/synthetic_catalog.h"

namespace mbp::serving {
namespace {

constexpr size_t kCurves = 100000;

TEST(CatalogScaleTest, HundredThousandListingsPublishResolveAndEvict) {
  SyntheticCatalogSpec spec;
  spec.num_curves = kCurves;
  CatalogRegistry registry;
  ASSERT_TRUE(PublishSyntheticCatalog(spec, &registry).ok());
  ASSERT_EQ(registry.resident_listings(), kCurves);
  ASSERT_GT(registry.resident_bytes(), kCurves * 100)
      << "bytes gauge must account every compiled snapshot";

  // Uniform + zipf-hot lookups across the whole id space, priced through
  // the engine and checked against freshly compiled oracles.
  PriceQueryEngine engine(&registry);
  random::Rng rng(31);
  const random::ZipfIndex zipf(kCurves, 1.1);
  for (int i = 0; i < 2000; ++i) {
    const size_t index = (i % 2 == 0)
                             ? static_cast<size_t>(rng.NextBounded(kCurves))
                             : zipf.Sample(rng);
    const std::string id = SyntheticCurveId(index);
    const CatalogRegistry::CurveSlot* slot = registry.Find(id);
    ASSERT_NE(slot, nullptr) << id;
    const auto snapshot = slot->Load();
    ASSERT_NE(snapshot, nullptr) << id;
    const double x = rng.NextDouble(0.0, SyntheticCurveXMax(spec, index));
    const auto oracle = MakeSyntheticCurve(spec, index);
    ASSERT_EQ(snapshot->PriceAt(x), oracle.PriceAtInverseNcp(x)) << id;
  }

  // Refs are dense and the id space round-trips at scale.
  ASSERT_EQ(registry.size(), kCurves);
  for (size_t i = 0; i < kCurves; i += 9973) {
    const std::string id = SyntheticCurveId(i);
    const CurveRef ref = registry.FindRef(id);
    ASSERT_NE(ref, kInvalidCurveRef);
    ASSERT_EQ(registry.KeyOf(ref), id);
    ASSERT_EQ(registry.slot(ref), registry.Find(id));
  }

  // Re-stamp every slot to a synthetic "old" time (publish stamped them
  // with real NowMicros), touch a sparse working set "recently", then
  // evict everything idle: the working set survives, the rest is
  // withdrawn, and the bytes gauge shrinks accordingly.
  for (size_t i = 0; i < kCurves; ++i) {
    registry.slot(static_cast<CurveRef>(i))->Touch(1000);
  }
  size_t touched = 0;
  for (size_t i = 0; i < kCurves; i += 100) {
    registry.Find(SyntheticCurveId(i))->Touch(9000);
    ++touched;
  }
  const size_t bytes_before = registry.resident_bytes();
  const size_t evicted =
      registry.EvictIdle(/*now_micros=*/10000, /*idle_micros=*/5000);
  ASSERT_EQ(evicted, kCurves - touched);
  ASSERT_EQ(registry.resident_listings(), touched);
  ASSERT_LT(registry.resident_bytes(), bytes_before / 50);
  ASSERT_NE(registry.Find(SyntheticCurveId(0))->Load(), nullptr);
  ASSERT_EQ(registry.Find(SyntheticCurveId(1))->Load(), nullptr);
}

TEST(CatalogScaleTest, BoundedRegistryHoldsResidencyUnderChurn) {
  // 20k (not 100k) because LRU eviction is an O(catalog) scan per evicted
  // listing — the cap is an operator guardrail, not a hot path — and this
  // churn loop evicts on nearly every publish.
  constexpr size_t kChurnCurves = 20000;
  SyntheticCatalogSpec spec;
  spec.num_curves = kChurnCurves;
  CatalogRegistryOptions options;
  options.max_resident_listings = 1000;
  CatalogRegistry registry(options);
  // Publishing 20k listings through a 1000-slot residency budget must
  // never exceed the cap (memory stays bounded) while every id binding
  // survives.
  for (size_t i = 0; i < kChurnCurves; ++i) {
    ASSERT_TRUE(registry
                    .Publish(SyntheticCurveId(i),
                             MakeSyntheticCurve(spec, i))
                    .ok());
    if (i % 8192 == 0) {
      ASSERT_LE(registry.resident_listings(), 1000u);
    }
  }
  ASSERT_EQ(registry.resident_listings(), 1000u);
  ASSERT_EQ(registry.size(), kChurnCurves);
  // A republish of an evicted id revives it under its original ref.
  const CurveRef ref = registry.FindRef(SyntheticCurveId(0));
  ASSERT_NE(ref, kInvalidCurveRef);
  ASSERT_EQ(registry.Find(SyntheticCurveId(0))->Load(), nullptr);
  ASSERT_TRUE(
      registry.Publish(SyntheticCurveId(0), MakeSyntheticCurve(spec, 0)).ok());
  ASSERT_EQ(registry.FindRef(SyntheticCurveId(0)), ref);
  ASSERT_NE(registry.Find(SyntheticCurveId(0))->Load(), nullptr);
}

}  // namespace
}  // namespace mbp::serving

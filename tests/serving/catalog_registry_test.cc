// CatalogRegistry (serving/catalog_registry.h): dense-ref resolution,
// residency gauges, idle eviction, the max-listings LRU cap, and
// republish-under-zipf-load — the marketplace-scale behaviors layered on
// top of the PR-2 RCU publish contract (which pricing_snapshot_test.cc
// still pins via the SnapshotRegistry alias).

#include "serving/catalog_registry.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/pricing_function.h"
#include "random/distributions.h"
#include "random/rng.h"
#include "serving/synthetic_catalog.h"

namespace mbp::serving {
namespace {

core::PiecewiseLinearPricing SmallCurve(double scale) {
  return core::PiecewiseLinearPricing::Create(
             {{1.0, 10.0 * scale}, {2.0, 18.0 * scale}, {4.0, 30.0 * scale}})
      .value();
}

TEST(CatalogRegistryTest, PublishAssignsDenseRefsAndFindResolvesThem) {
  CatalogRegistry registry;
  ASSERT_TRUE(registry.Publish("a", SmallCurve(1.0)).ok());
  ASSERT_TRUE(registry.Publish("b", SmallCurve(2.0)).ok());
  EXPECT_EQ(registry.FindRef("a"), 0u);
  EXPECT_EQ(registry.FindRef("b"), 1u);
  EXPECT_EQ(registry.FindRef("c"), kInvalidCurveRef);
  EXPECT_EQ(registry.KeyOf(0), "a");
  EXPECT_EQ(registry.KeyOf(1), "b");
  EXPECT_EQ(registry.size(), 2u);

  const CatalogRegistry::CurveSlot* by_name = registry.Find("a");
  const CatalogRegistry::CurveSlot* by_ref = registry.slot(0);
  ASSERT_NE(by_name, nullptr);
  EXPECT_EQ(by_name, by_ref);
  const auto snapshot = by_name->Load();
  ASSERT_NE(snapshot, nullptr);
}

TEST(CatalogRegistryTest, RepublishKeepsRefAndSlotStable) {
  CatalogRegistry registry;
  auto first = registry.Publish("a", SmallCurve(1.0));
  ASSERT_TRUE(first.ok());
  const uint64_t stamp1 = (*first)->stamp();
  auto second = registry.Publish("a", SmallCurve(3.0));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second) << "republish must reuse the slot";
  EXPECT_EQ(registry.FindRef("a"), 0u);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_GT((*second)->stamp(), stamp1);
}

TEST(CatalogRegistryTest, ResidencyGaugesTrackPublishAndWithdraw) {
  CatalogRegistry registry;
  EXPECT_EQ(registry.resident_listings(), 0u);
  EXPECT_EQ(registry.resident_bytes(), 0u);

  ASSERT_TRUE(registry.Publish("a", SmallCurve(1.0)).ok());
  EXPECT_EQ(registry.resident_listings(), 1u);
  const size_t bytes_one = registry.resident_bytes();
  EXPECT_GT(bytes_one, 0u);

  ASSERT_TRUE(registry.Publish("b", SmallCurve(1.0)).ok());
  EXPECT_EQ(registry.resident_listings(), 2u);
  EXPECT_EQ(registry.resident_bytes(), 2 * bytes_one)
      << "identical curves must account identical bytes";

  // Republishing the same id must not double-count.
  ASSERT_TRUE(registry.Publish("a", SmallCurve(1.0)).ok());
  EXPECT_EQ(registry.resident_listings(), 2u);
  EXPECT_EQ(registry.resident_bytes(), 2 * bytes_one);

  ASSERT_TRUE(registry.Withdraw("a").ok());
  EXPECT_EQ(registry.resident_listings(), 1u);
  EXPECT_EQ(registry.resident_bytes(), bytes_one);
  EXPECT_EQ(registry.Find("a")->Load(), nullptr);
  // The binding survives withdrawal; republish revives under the same ref.
  EXPECT_EQ(registry.FindRef("a"), 0u);
  ASSERT_TRUE(registry.Publish("a", SmallCurve(2.0)).ok());
  EXPECT_EQ(registry.resident_listings(), 2u);
}

TEST(CatalogRegistryTest, EvictIdleWithdrawsOnlyStaleListings) {
  CatalogRegistry registry;
  ASSERT_TRUE(registry.Publish("stale", SmallCurve(1.0)).ok());
  ASSERT_TRUE(registry.Publish("fresh", SmallCurve(1.0)).ok());
  registry.Find("stale")->Touch(1000);
  registry.Find("fresh")->Touch(9000);

  EXPECT_EQ(registry.EvictIdle(/*now_micros=*/10000, /*idle_micros=*/5000),
            1u);
  EXPECT_EQ(registry.Find("stale")->Load(), nullptr);
  EXPECT_NE(registry.Find("fresh")->Load(), nullptr);
  EXPECT_EQ(registry.resident_listings(), 1u);
  // Idempotent: nothing else is stale.
  EXPECT_EQ(registry.EvictIdle(10000, 5000), 0u);
}

TEST(CatalogRegistryTest, MaxResidentListingsEvictsLeastRecentlyTouched) {
  CatalogRegistryOptions options;
  options.max_resident_listings = 2;
  CatalogRegistry registry(options);
  ASSERT_TRUE(registry.Publish("a", SmallCurve(1.0)).ok());
  ASSERT_TRUE(registry.Publish("b", SmallCurve(1.0)).ok());
  registry.Find("a")->Touch(2000);  // "b" is now the LRU
  registry.Find("b")->Touch(1000);

  ASSERT_TRUE(registry.Publish("c", SmallCurve(1.0)).ok());
  EXPECT_EQ(registry.resident_listings(), 2u);
  EXPECT_EQ(registry.Find("b")->Load(), nullptr) << "LRU must be evicted";
  EXPECT_NE(registry.Find("a")->Load(), nullptr);
  EXPECT_NE(registry.Find("c")->Load(), nullptr);

  // Republishing an already-resident id does not evict anything.
  ASSERT_TRUE(registry.Publish("a", SmallCurve(2.0)).ok());
  EXPECT_EQ(registry.resident_listings(), 2u);
  EXPECT_NE(registry.Find("c")->Load(), nullptr);
}

TEST(CatalogRegistryTest, SyntheticCatalogPublishesDeterministically) {
  SyntheticCatalogSpec spec;
  spec.num_curves = 200;
  CatalogRegistry r1, r2;
  ASSERT_TRUE(PublishSyntheticCatalog(spec, &r1).ok());
  ASSERT_TRUE(PublishSyntheticCatalog(spec, &r2).ok());
  EXPECT_EQ(r1.resident_listings(), 200u);
  EXPECT_EQ(r1.resident_bytes(), r2.resident_bytes());
  random::Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    const size_t index = static_cast<size_t>(rng.NextBounded(200));
    const std::string id = SyntheticCurveId(index);
    const auto s1 = r1.Find(id)->Load();
    const auto s2 = r2.Find(id)->Load();
    ASSERT_NE(s1, nullptr);
    ASSERT_NE(s2, nullptr);
    const double x = rng.NextDouble(0.0, SyntheticCurveXMax(spec, index));
    EXPECT_EQ(s1->PriceAt(x), s2->PriceAt(x)) << id;
  }
}

// Satellite (c): republish-under-zipf-load — readers hammer Find/Load
// over a zipf-popular catalog while a publisher republishes and withdraws
// hot curves. Every loaded snapshot must price coherently (a snapshot is
// immutable once published: scale read twice must agree). Run under
// scripts/tsan.sh this is the catalog's main data-race net.
TEST(CatalogRegistryStressTest, RepublishUnderZipfLoadStaysCoherent) {
  constexpr size_t kCurves = 128;
  CatalogRegistry registry;
  std::vector<std::string> ids;
  for (size_t i = 0; i < kCurves; ++i) {
    ids.push_back("curve-" + std::to_string(i));
    ASSERT_TRUE(registry.Publish(ids.back(), SmallCurve(1.0)).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> loads{0};
  const random::ZipfIndex zipf(kCurves, 1.1);

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      random::Rng rng(1000 + t);
      while (!stop.load(std::memory_order_acquire)) {
        const size_t index = zipf.Sample(rng);
        const CatalogRegistry::CurveSlot* slot = registry.Find(ids[index]);
        ASSERT_NE(slot, nullptr);
        const auto snapshot = slot->Load();
        if (snapshot == nullptr) continue;  // withdrawn right now — legal
        // Immutability probe: the same snapshot must price the same x
        // identically twice, whatever the publisher is doing.
        const double x = rng.NextDouble(1.0, 4.0);
        const double p1 = snapshot->PriceAt(x);
        const double p2 = snapshot->PriceAt(x);
        ASSERT_EQ(p1, p2);
        slot->Touch(CatalogRegistry::NowMicros());
        loads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::thread publisher([&] {
    random::Rng rng(7);
    for (int round = 0; round < 600; ++round) {
      const size_t index = zipf.Sample(rng);  // republish HOT curves
      if (round % 7 == 3) {
        ASSERT_TRUE(registry.Withdraw(ids[index]).ok());
      }
      ASSERT_TRUE(
          registry.Publish(ids[index], SmallCurve(1.0 + round * 0.01)).ok());
    }
    stop.store(true, std::memory_order_release);
  });

  publisher.join();
  for (std::thread& t : readers) t.join();
  EXPECT_GT(loads.load(), 0u);
  EXPECT_EQ(registry.resident_listings(), kCurves);
  EXPECT_EQ(registry.size(), kCurves);
}

}  // namespace
}  // namespace mbp::serving

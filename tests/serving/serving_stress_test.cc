// Concurrency stress tests for the serving subsystem: sellers republish
// (and withdraw) pricing curves while reader threads hammer the engine
// with point, budget, and batch queries. Run under ThreadSanitizer by
// scripts/tsan.sh (the suite names match its default filter).
//
// Correctness oracle: every published curve comes from a small fixed set
// of variants whose exact prices are precomputed, so readers can assert —
// bit for bit — that every served price belongs to SOME variant, without
// knowing which publish they raced.

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/pricing_function.h"
#include "random/rng.h"
#include "serving/price_query_engine.h"
#include "serving/snapshot_registry.h"

namespace mbp::serving {
namespace {

using core::PiecewiseLinearPricing;
using core::PricePoint;

// Variant k scales a fixed arbitrage-free shape by (k + 1): scaling
// preserves both certificate conditions.
PiecewiseLinearPricing MakeVariant(size_t k) {
  const double s = static_cast<double>(k + 1);
  return PiecewiseLinearPricing::Create({{1.0, 10.0 * s},
                                         {2.0, 18.0 * s},
                                         {4.0, 30.0 * s},
                                         {8.0, 40.0 * s}})
      .value();
}

TEST(ServingStressTest, RepublishUnderQueryLoad) {
  constexpr size_t kVariants = 4;
  constexpr size_t kPublishes = 400;
  constexpr size_t kReaders = 4;
  constexpr size_t kQueryPoints = 64;

  // Fixed query grid with every variant's exact price precomputed.
  std::vector<double> xs(kQueryPoints);
  for (size_t i = 0; i < kQueryPoints; ++i) {
    xs[i] = 10.0 * static_cast<double>(i + 1) /
            static_cast<double>(kQueryPoints);
  }
  std::vector<std::vector<double>> expected(kVariants);
  std::vector<PiecewiseLinearPricing> variants;
  for (size_t k = 0; k < kVariants; ++k) {
    variants.push_back(MakeVariant(k));
    expected[k].resize(kQueryPoints);
    for (size_t i = 0; i < kQueryPoints; ++i) {
      expected[k][i] = variants[k].PriceAtInverseNcp(xs[i]);
    }
  }

  SnapshotRegistry registry;
  auto published = registry.Publish("stress", variants[0]);
  ASSERT_TRUE(published.ok());
  const SnapshotRegistry::CurveSlot* slot = *published;
  PriceQueryEngine engine(&registry);

  std::atomic<bool> done{false};
  std::atomic<size_t> failures{0};

  std::thread writer([&] {
    for (size_t p = 1; p <= kPublishes; ++p) {
      if (!registry.Publish("stress", variants[p % kVariants]).ok()) {
        failures.fetch_add(1);
      }
      std::this_thread::yield();
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      random::Rng rng(1000 + r);
      std::vector<double> batch_out;
      std::vector<double> batch_xs(xs.begin(), xs.end());
      while (!done.load(std::memory_order_acquire)) {
        // Point query: the served price must be one variant's exact price.
        const size_t i = static_cast<size_t>(rng.NextBounded(kQueryPoints));
        const auto price = engine.Price(slot, xs[i]);
        if (!price.ok()) {
          failures.fetch_add(1);
          continue;
        }
        bool matched = false;
        for (size_t k = 0; k < kVariants; ++k) {
          if (price.value() == expected[k][i]) {
            matched = true;
            break;
          }
        }
        if (!matched) failures.fetch_add(1);

        // Budget query: inverting the answer must stay on some variant.
        const auto affordable = engine.BudgetToInverseNcp(slot, 15.0);
        if (!affordable.ok()) failures.fetch_add(1);

        // Batch query: one consistent snapshot for the whole batch.
        ParallelConfig parallel;
        parallel.num_threads = 2;
        batch_out.resize(batch_xs.size());
        if (!engine
                 .PriceBatch(slot, batch_xs.data(), batch_out.data(),
                             batch_xs.size(), parallel)
                 .ok()) {
          failures.fetch_add(1);
        } else {
          // The batch must come from ONE variant, not a mix.
          size_t matching_variant = kVariants;
          for (size_t k = 0; k < kVariants; ++k) {
            if (batch_out[0] == expected[k][0]) {
              matching_variant = k;
              break;
            }
          }
          if (matching_variant == kVariants) {
            failures.fetch_add(1);
          } else {
            for (size_t j = 0; j < batch_xs.size(); ++j) {
              if (batch_out[j] != expected[matching_variant][j]) {
                failures.fetch_add(1);
                break;
              }
            }
          }
        }
      }
    });
  }

  writer.join();
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0u);

  // Quiescent check: the last published variant is now served everywhere.
  const size_t last = kPublishes % kVariants;
  for (size_t i = 0; i < kQueryPoints; ++i) {
    EXPECT_EQ(engine.Price(slot, xs[i]).value(), expected[last][i]);
  }
}

TEST(ServingStressTest, WithdrawRepublishRace) {
  constexpr size_t kCycles = 300;
  SnapshotRegistry registry;
  auto published = registry.Publish("flicker", MakeVariant(0));
  ASSERT_TRUE(published.ok());
  const SnapshotRegistry::CurveSlot* slot = *published;
  PriceQueryEngine engine(&registry);
  const double expected_price = MakeVariant(0).PriceAtInverseNcp(3.0);

  std::atomic<bool> done{false};
  std::atomic<size_t> failures{0};

  std::thread writer([&] {
    for (size_t c = 0; c < kCycles; ++c) {
      if (!registry.Withdraw("flicker").ok()) failures.fetch_add(1);
      std::this_thread::yield();
      if (!registry.Publish("flicker", MakeVariant(0)).ok()) {
        failures.fetch_add(1);
      }
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (size_t r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        const auto price = engine.Price(slot, 3.0);
        if (price.ok()) {
          // A served price is always the exact published price.
          if (price.value() != expected_price) failures.fetch_add(1);
        } else if (price.status().code() != StatusCode::kNotFound) {
          // Withdrawn windows must surface as NotFound, nothing else.
          failures.fetch_add(1);
        }
      }
    });
  }

  writer.join();
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0u);
}

TEST(ServingStressTest, ConcurrentFirstPublishOfDistinctIds) {
  constexpr size_t kThreads = 8;
  constexpr size_t kIdsPerThread = 50;
  SnapshotRegistry registry;
  std::atomic<size_t> failures{0};

  std::vector<std::thread> writers;
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (size_t i = 0; i < kIdsPerThread; ++i) {
        const std::string id =
            "curve-" + std::to_string(t) + "-" + std::to_string(i);
        if (!registry.Publish(id, MakeVariant(t % 4)).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& writer : writers) writer.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(registry.size(), kThreads * kIdsPerThread);
  PriceQueryEngine engine(&registry);
  for (size_t t = 0; t < kThreads; ++t) {
    for (size_t i = 0; i < kIdsPerThread; ++i) {
      const std::string id =
          "curve-" + std::to_string(t) + "-" + std::to_string(i);
      ASSERT_TRUE(engine.Price(id, 2.0).ok()) << id;
    }
  }
}

}  // namespace
}  // namespace mbp::serving

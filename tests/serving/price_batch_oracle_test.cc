// Oracle test for the vectorized batch evaluation path: at EVERY dispatch
// level the build supports, PricingSnapshot::PriceAtBatch must be
// BIT-identical to per-element PriceAt — across random curves, adversarial
// inputs (exact knot x's, segment boundaries, below-first/above-last), and
// every batch remainder length, plus the batch-only NaN/negative policy
// (quiet NaN instead of the MBP_CHECK abort a remote query must not be
// able to trigger).

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pricing_function.h"
#include "linalg/kernels.h"
#include "random/rng.h"
#include "serving/pricing_snapshot.h"

namespace mbp::serving {
namespace {

using core::PiecewiseLinearPricing;
using core::PricePoint;
using linalg::kernels::ForceLevelForTesting;

std::shared_ptr<const PricingSnapshot> CompileOrDie(
    const PiecewiseLinearPricing& curve) {
  auto snapshot = PricingSnapshot::Compile(curve);
  EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  return std::move(snapshot).value();
}

// A random arbitrage-free curve (same construction as the snapshot tests:
// strictly increasing x, non-increasing price/x ratio, occasional exactly
// flat price runs).
PiecewiseLinearPricing RandomValidPricing(random::Rng& rng, size_t n) {
  std::vector<PricePoint> points(n);
  double x = 0.0;
  for (size_t i = 0; i < n; ++i) {
    x += 0.05 + rng.NextDouble() * 3.0;
    points[i].x = x;
  }
  double ratio = 5.0 + rng.NextDouble() * 10.0;
  points[0].price = ratio * points[0].x;
  for (size_t i = 1; i < n; ++i) {
    if (rng.NextDouble() < 0.15) {
      points[i].price = points[i - 1].price;
    } else {
      const double floor_u = points[i - 1].x / points[i].x;
      const double u = std::max(floor_u, 0.9 + rng.NextDouble() * 0.1);
      ratio = (points[i - 1].price / points[i - 1].x) * u;
      points[i].price = ratio * points[i].x;
      if (points[i].price < points[i - 1].price) {
        points[i].price = points[i - 1].price;
      }
    }
  }
  return PiecewiseLinearPricing::Create(std::move(points)).value();
}

// Queries that concentrate on every branch of PriceAt: exact knot x's,
// midpoints, the below-first-knot ramp, the above-last-knot clamp, zero,
// +inf, and values straddling bucket edges via random interior picks.
std::vector<double> AdversarialQueries(const PricingSnapshot& snapshot,
                                       random::Rng& rng) {
  const std::vector<PricePoint> knots = snapshot.Knots();
  std::vector<double> xs;
  xs.push_back(0.0);
  xs.push_back(knots.front().x * 0.5);
  xs.push_back(std::nextafter(knots.front().x, 0.0));
  for (const PricePoint& k : knots) {
    xs.push_back(k.x);  // exact knot hit: upper_bound boundary
    xs.push_back(std::nextafter(k.x, 0.0));
    xs.push_back(std::nextafter(k.x, std::numeric_limits<double>::max()));
  }
  for (size_t i = 0; i + 1 < knots.size(); ++i) {
    xs.push_back(0.5 * (knots[i].x + knots[i + 1].x));
  }
  xs.push_back(knots.back().x * 2.0);
  xs.push_back(std::numeric_limits<double>::max());
  xs.push_back(std::numeric_limits<double>::infinity());
  for (int i = 0; i < 256; ++i) {
    xs.push_back(rng.NextDouble() * knots.back().x * 1.1);
  }
  return xs;
}

// RAII dispatch override so a failing assertion cannot leak a forced
// level into later tests.
class ScopedLevel {
 public:
  explicit ScopedLevel(SimdLevel level)
      : forced_(ForceLevelForTesting(level)) {}
  ~ScopedLevel() { ForceLevelForTesting(std::nullopt); }
  bool forced() const { return forced_; }

 private:
  bool forced_;
};

std::vector<SimdLevel> SupportedLevels() {
  std::vector<SimdLevel> levels{SimdLevel::kScalar};
  if (linalg::kernels::Avx2Funcs() != nullptr) {
    levels.push_back(SimdLevel::kAvx2Fma);
  }
  return levels;
}

void ExpectBatchMatchesScalar(const PricingSnapshot& snapshot,
                              const std::vector<double>& xs) {
  // Oracle values via the research-path-per-element API, computed before
  // any dispatch forcing (PriceAt does not dispatch, but keep it clean).
  std::vector<double> expected(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) expected[i] = snapshot.PriceAt(xs[i]);
  for (const SimdLevel level : SupportedLevels()) {
    ScopedLevel forced(level);
    ASSERT_TRUE(forced.forced());
    // Every remainder length 0..7: starting offsets near the end sweep
    // the scalar-tail length through the whole 4-lane cycle and beyond.
    for (size_t len = 0; len <= 7 && len <= xs.size(); ++len) {
      std::vector<double> out(len, -1.0);
      snapshot.PriceAtBatch(xs.data(), out.data(), len);
      for (size_t i = 0; i < len; ++i) {
        ASSERT_EQ(std::memcmp(&out[i], &expected[i], sizeof(double)), 0)
            << "level=" << SimdLevelName(level) << " len=" << len
            << " i=" << i << " x=" << xs[i] << " batch=" << out[i]
            << " scalar=" << expected[i];
      }
    }
    // Full batch in one call.
    std::vector<double> out(xs.size(), -1.0);
    snapshot.PriceAtBatch(xs.data(), out.data(), xs.size());
    for (size_t i = 0; i < xs.size(); ++i) {
      ASSERT_EQ(std::memcmp(&out[i], &expected[i], sizeof(double)), 0)
          << "level=" << SimdLevelName(level) << " i=" << i << " x=" << xs[i]
          << " batch=" << out[i] << " scalar=" << expected[i];
    }
  }
}

TEST(PriceBatchOracleTest, BitIdenticalOnHandBuiltCurve) {
  const auto curve = PiecewiseLinearPricing::Create(
                         {{1.0, 10.0}, {2.0, 18.0}, {4.0, 30.0}, {8.0, 40.0}})
                         .value();
  const auto snapshot = CompileOrDie(curve);
  random::Rng rng(7);
  ExpectBatchMatchesScalar(*snapshot, AdversarialQueries(*snapshot, rng));
}

TEST(PriceBatchOracleTest, BitIdenticalAcrossRandomCurves) {
  random::Rng rng(20260808);
  for (const size_t n : {1u, 2u, 3u, 5u, 17u, 64u, 301u, 1000u}) {
    const auto curve = RandomValidPricing(rng, n);
    const auto snapshot = CompileOrDie(curve);
    ExpectBatchMatchesScalar(*snapshot, AdversarialQueries(*snapshot, rng));
  }
}

TEST(PriceBatchOracleTest, SingleKnotCurve) {
  const auto curve = PiecewiseLinearPricing::Create({{2.0, 20.0}}).value();
  const auto snapshot = CompileOrDie(curve);
  const std::vector<double> xs = {0.0, 0.5, 1.9999, 2.0, 2.0001, 100.0,
                                  std::numeric_limits<double>::infinity()};
  ExpectBatchMatchesScalar(*snapshot, xs);
}

TEST(PriceBatchOracleTest, NanAndNegativePolicyIsQuietNanEverywhere) {
  random::Rng rng(99);
  const auto curve = RandomValidPricing(rng, 32);
  const auto snapshot = CompileOrDie(curve);
  // A malformed remote query (negative, NaN) must not abort the serving
  // process: the batch path answers quiet NaN in that lane and leaves
  // every other lane bit-identical to PriceAt.
  const std::vector<double> xs = {
      1.0, -1.0, std::numeric_limits<double>::quiet_NaN(), 2.5,
      -0.0, -std::numeric_limits<double>::infinity(), 0.75, 3.25};
  for (const SimdLevel level : SupportedLevels()) {
    ScopedLevel forced(level);
    ASSERT_TRUE(forced.forced());
    for (size_t len = 1; len <= xs.size(); ++len) {
      std::vector<double> out(len, -1.0);
      snapshot->PriceAtBatch(xs.data(), out.data(), len);
      for (size_t i = 0; i < len; ++i) {
        if (std::isnan(xs[i]) || xs[i] < 0.0) {
          EXPECT_TRUE(std::isnan(out[i]))
              << "level=" << SimdLevelName(level) << " i=" << i;
        } else {
          // -0.0 lands here (it compares == 0.0) and must price as 0.
          const double want = snapshot->PriceAt(xs[i] == 0.0 ? 0.0 : xs[i]);
          EXPECT_EQ(std::memcmp(&out[i], &want, sizeof(double)), 0)
              << "level=" << SimdLevelName(level) << " i=" << i;
        }
      }
    }
  }
}

TEST(PriceBatchOracleTest, EmptyBatchIsANoOp) {
  const auto curve = PiecewiseLinearPricing::Create({{1.0, 5.0}}).value();
  const auto snapshot = CompileOrDie(curve);
  snapshot->PriceAtBatch(nullptr, nullptr, 0);  // must not touch pointers
}

TEST(PriceBatchOracleTest, LargeBatchEveryRemainderOffset) {
  // 4-lane kernel: sweep batch sizes around multiples of the vector width
  // on a big random input block, at every supported level.
  random::Rng rng(4242);
  const auto curve = RandomValidPricing(rng, 128);
  const auto snapshot = CompileOrDie(curve);
  const double x_max = snapshot->x_max();
  std::vector<double> xs(1029);
  for (double& x : xs) x = rng.NextDouble() * x_max * 1.05;
  std::vector<double> expected(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    expected[i] = snapshot->PriceAt(xs[i]);
  }
  for (const SimdLevel level : SupportedLevels()) {
    ScopedLevel forced(level);
    ASSERT_TRUE(forced.forced());
    for (const size_t n : {1020u, 1021u, 1022u, 1023u, 1024u, 1025u, 1026u,
                           1027u, 1028u, 1029u}) {
      std::vector<double> out(n);
      snapshot->PriceAtBatch(xs.data(), out.data(), n);
      ASSERT_EQ(std::memcmp(out.data(), expected.data(), n * sizeof(double)),
                0)
          << "level=" << SimdLevelName(level) << " n=" << n;
    }
  }
}

}  // namespace
}  // namespace mbp::serving

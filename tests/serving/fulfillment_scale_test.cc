// Fulfillment at marketplace scale (ctest -C slow): 10k BUYs spread over
// a 1k-curve catalog, from concurrent threads, with the model cache
// squeezed far below the working set so training, eviction, and retrain
// churn constantly. The invariants under that pressure are exactly the
// tier-1 ones (DESIGN.md §5i):
//   - every completed sale replays bit-identically after the storm, even
//     though its cached base model was almost certainly evicted since;
//   - revenue reconciles: sum of first-delivery prices == engine revenue,
//     and buys_ok == transactions_recorded (nothing double-charged);
//   - the cache honors its byte budget while evicting thousands of times.
// Run it under the ASan build to also prove the churn leaks nothing.

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "serving/catalog_registry.h"
#include "serving/fulfillment.h"
#include "serving/synthetic_catalog.h"

namespace mbp::serving {
namespace {

constexpr size_t kCurves = 1000;
constexpr size_t kThreads = 8;
constexpr size_t kBuysPerThread = 1250;  // 10k total

struct CompletedSale {
  uint64_t txn_id;
  std::string curve_id;
  double price;
  std::vector<double> weights;
};

TEST(FulfillmentScaleTest, TenThousandBuysUnderCachePressure) {
  SyntheticCatalogSpec spec;
  spec.num_curves = kCurves;
  spec.seed = 99;
  spec.min_knots = 8;
  spec.max_knots = 32;
  CatalogRegistry registry;
  ASSERT_TRUE(PublishSyntheticCatalog(spec, &registry).ok());

  FulfillmentOptions options;
  options.model_dim = 8;
  // ~200 bytes per cached model: budget ≈ 60 entries for a 1000-curve
  // working set — the cache thrashes by design.
  options.max_model_cache_bytes = 12 * 1024;
  FulfillmentEngine engine(&registry, options);

  std::vector<std::vector<CompletedSale>> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      per_thread[t].reserve(kBuysPerThread);
      for (size_t i = 0; i < kBuysPerThread; ++i) {
        const uint64_t txn = 1 + t * 1000000 + i;
        const size_t curve = (t * 7919 + i * 131) % kCurves;
        const std::string id = SyntheticCurveId(curve);
        const double delta = 0.125 + 0.875 * static_cast<double>(i % 17) / 17.0;
        auto sale = engine.Buy(id, delta, txn);
        ASSERT_TRUE(sale.ok()) << sale.status().ToString();
        ASSERT_FALSE(sale->replayed);
        ASSERT_EQ(sale->record.txn_id, txn);
        ASSERT_EQ(sale->weights.size(), options.model_dim);
        per_thread[t].push_back(CompletedSale{
            txn, id, sale->record.price, std::move(sale->weights)});
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // Revenue reconciliation: the ledger recorded each sale exactly once,
  // and what clients were told they paid sums to what the engine booked
  // (addition order differs across threads, hence the tolerance).
  const FulfillmentStats stats = engine.Stats();
  EXPECT_EQ(stats.buys_ok, kThreads * kBuysPerThread);
  EXPECT_EQ(stats.transactions_recorded, kThreads * kBuysPerThread);
  double client_revenue = 0.0;
  for (const auto& sales : per_thread) {
    for (const CompletedSale& sale : sales) client_revenue += sale.price;
  }
  EXPECT_NEAR(stats.revenue, client_revenue, 1e-6 * client_revenue);

  // The cache was under real pressure and never blew its budget.
  EXPECT_GT(stats.model_cache_evictions, 1000u);
  EXPECT_LE(stats.model_cache_bytes, options.max_model_cache_bytes);
  EXPECT_GT(stats.model_cache_misses, stats.model_cache_evictions);

  // Replay spot checks: stride over every thread's sales. The base
  // models behind these transactions were evicted and retrained many
  // times over; the delivery must still be the recorded bytes exactly.
  size_t replayed = 0;
  for (const auto& sales : per_thread) {
    for (size_t i = 0; i < sales.size(); i += 97) {
      const CompletedSale& sale = sales[i];
      auto replay = engine.ReplaySale(sale.txn_id);
      ASSERT_TRUE(replay.ok()) << replay.status().ToString();
      EXPECT_TRUE(replay->replayed);
      EXPECT_EQ(replay->record.txn_id, sale.txn_id);
      ASSERT_EQ(replay->weights.size(), sale.weights.size());
      EXPECT_EQ(std::memcmp(replay->weights.data(), sale.weights.data(),
                            sale.weights.size() * sizeof(double)),
                0)
          << "replay diverged for txn " << sale.txn_id;
      // A retried BUY (wrong δ on purpose) re-delivers the record too.
      auto retried = engine.Buy(sale.curve_id, 0.9999, sale.txn_id);
      ASSERT_TRUE(retried.ok());
      EXPECT_TRUE(retried->replayed);
      EXPECT_EQ(retried->record.price, sale.price);
      ++replayed;
    }
  }
  EXPECT_GT(replayed, 100u);

  // The retries above charged nothing.
  const FulfillmentStats after = engine.Stats();
  EXPECT_EQ(after.buys_ok, stats.buys_ok);
  EXPECT_EQ(after.revenue, stats.revenue);
}

}  // namespace
}  // namespace mbp::serving

// CatalogJournal (serving/catalog_journal.h, DESIGN.md §5j): journaled
// publishes rebuild the exact pre-crash catalog on reopen — latest spec
// per id wins, tombstones survive restarts, a checkpoint compacts the
// journal to zero segment replay, and an invalid spec is rejected BEFORE
// it is journaled so replay can never be poisoned.

#include "serving/catalog_journal.h"

#include <dirent.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pricing_function.h"
#include "serving/catalog_registry.h"

namespace mbp::serving {
namespace {

core::PiecewiseLinearPricing Curve(double scale) {
  return core::PiecewiseLinearPricing::Create(
             {{1.0, 10.0 * scale}, {2.0, 18.0 * scale}, {4.0, 30.0 * scale}})
      .value();
}

class CatalogJournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/journal_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    RemoveDir(dir_);
    // These tests exercise replay logic, not disk durability.
    options_.fsync_policy = wal::FsyncPolicy::kNone;
  }

  void TearDown() override { RemoveDir(dir_); }

  static void RemoveDir(const std::string& dir) {
    DIR* d = opendir(dir.c_str());
    if (d == nullptr) return;
    while (struct dirent* entry = readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      unlink((dir + "/" + name).c_str());
    }
    closedir(d);
    rmdir(dir.c_str());
  }

  std::unique_ptr<CatalogJournal> Open(CatalogRegistry* registry,
                                       wal::WalRecovery* recovery = nullptr) {
    auto journal = CatalogJournal::Open(dir_, options_, registry, recovery);
    EXPECT_TRUE(journal.ok()) << journal.status().ToString();
    return journal.ok() ? *std::move(journal) : nullptr;
  }

  static double PriceAt(const CatalogRegistry& registry,
                        const std::string& id, double x) {
    const CatalogRegistry::CurveSlot* slot = registry.Find(id);
    if (slot == nullptr) return -1.0;
    auto snapshot = slot->Load();
    if (snapshot == nullptr) return -1.0;
    return snapshot->PriceAt(x);
  }

  std::string dir_;
  wal::WalOptions options_;
};

TEST_F(CatalogJournalTest, SpecCodecRoundtripAndTombstone) {
  const std::vector<core::PricePoint> points = Curve(1.0).points();
  const std::string bytes = CatalogJournal::EncodeSpec("curve-x", points);
  std::string id;
  std::vector<core::PricePoint> decoded;
  ASSERT_TRUE(CatalogJournal::DecodeSpec(bytes, &id, &decoded));
  EXPECT_EQ(id, "curve-x");
  ASSERT_EQ(decoded.size(), points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_DOUBLE_EQ(decoded[i].x, points[i].x);
    EXPECT_DOUBLE_EQ(decoded[i].price, points[i].price);
  }

  // A tombstone is an empty point list under the same codec.
  ASSERT_TRUE(CatalogJournal::DecodeSpec(
      CatalogJournal::EncodeSpec("curve-x", {}), &id, &decoded));
  EXPECT_TRUE(decoded.empty());

  // Truncated and empty-id records are rejected.
  EXPECT_FALSE(CatalogJournal::DecodeSpec(
      std::string_view(bytes).substr(0, bytes.size() - 3), &id, &decoded));
  EXPECT_FALSE(
      CatalogJournal::DecodeSpec(CatalogJournal::EncodeSpec("", points), &id,
                                 &decoded));
}

TEST_F(CatalogJournalTest, ReopenRepublishesEveryJournaledListing) {
  {
    CatalogRegistry registry;
    auto journal = Open(&registry);
    ASSERT_NE(journal, nullptr);
    ASSERT_TRUE(journal->Publish("curve-a", Curve(1.0)).ok());
    ASSERT_TRUE(journal->Publish("curve-b", Curve(2.0)).ok());
    EXPECT_EQ(journal->listings(), 2u);
    EXPECT_EQ(registry.size(), 2u);
    // No Checkpoint(): the reopen replays raw segment records.
  }

  CatalogRegistry rebuilt;
  wal::WalRecovery recovery;
  auto journal = Open(&rebuilt, &recovery);
  ASSERT_NE(journal, nullptr);
  EXPECT_EQ(journal->listings(), 2u);
  EXPECT_EQ(recovery.records_replayed, 2u);
  EXPECT_DOUBLE_EQ(PriceAt(rebuilt, "curve-a", 2.0), 18.0);
  EXPECT_DOUBLE_EQ(PriceAt(rebuilt, "curve-b", 2.0), 36.0);
}

TEST_F(CatalogJournalTest, LatestRepublishWinsOnReplay) {
  {
    CatalogRegistry registry;
    auto journal = Open(&registry);
    ASSERT_NE(journal, nullptr);
    ASSERT_TRUE(journal->Publish("curve-a", Curve(1.0)).ok());
    ASSERT_TRUE(journal->Publish("curve-a", Curve(3.0)).ok());
    EXPECT_EQ(journal->listings(), 1u);
  }

  CatalogRegistry rebuilt;
  auto journal = Open(&rebuilt);
  ASSERT_NE(journal, nullptr);
  EXPECT_EQ(journal->listings(), 1u);
  EXPECT_DOUBLE_EQ(PriceAt(rebuilt, "curve-a", 2.0), 54.0)
      << "replay must converge to the LAST published spec";
}

TEST_F(CatalogJournalTest, WithdrawTombstoneSurvivesRestart) {
  {
    CatalogRegistry registry;
    auto journal = Open(&registry);
    ASSERT_NE(journal, nullptr);
    ASSERT_TRUE(journal->Publish("curve-a", Curve(1.0)).ok());
    ASSERT_TRUE(journal->Publish("curve-b", Curve(2.0)).ok());
    ASSERT_TRUE(journal->Withdraw("curve-a").ok());
    EXPECT_EQ(journal->listings(), 1u);
    EXPECT_EQ(journal->Withdraw("never-published").code(),
              StatusCode::kNotFound);
  }

  CatalogRegistry rebuilt;
  auto journal = Open(&rebuilt);
  ASSERT_NE(journal, nullptr);
  EXPECT_EQ(journal->listings(), 1u);
  EXPECT_DOUBLE_EQ(PriceAt(rebuilt, "curve-a", 2.0), -1.0)
      << "a withdrawn listing must stay withdrawn across the restart";
  EXPECT_DOUBLE_EQ(PriceAt(rebuilt, "curve-b", 2.0), 36.0);
}

TEST_F(CatalogJournalTest, CheckpointCompactsToZeroSegmentReplay) {
  {
    CatalogRegistry registry;
    auto journal = Open(&registry);
    ASSERT_NE(journal, nullptr);
    ASSERT_TRUE(journal->Publish("curve-a", Curve(1.0)).ok());
    ASSERT_TRUE(journal->Publish("curve-a", Curve(3.0)).ok());
    ASSERT_TRUE(journal->Publish("curve-b", Curve(2.0)).ok());
    ASSERT_TRUE(journal->Withdraw("curve-b").ok());
    ASSERT_TRUE(journal->Checkpoint().ok());
    // One more publish after the checkpoint replays on top of it.
    ASSERT_TRUE(journal->Publish("curve-c", Curve(1.0)).ok());
  }

  CatalogRegistry rebuilt;
  wal::WalRecovery recovery;
  auto journal = Open(&rebuilt, &recovery);
  ASSERT_NE(journal, nullptr);
  EXPECT_TRUE(recovery.has_checkpoint);
  EXPECT_EQ(recovery.records_replayed, 1u)
      << "only the post-checkpoint publish replays from segments";
  EXPECT_EQ(journal->listings(), 2u);
  EXPECT_DOUBLE_EQ(PriceAt(rebuilt, "curve-a", 2.0), 54.0);
  EXPECT_DOUBLE_EQ(PriceAt(rebuilt, "curve-b", 2.0), -1.0)
      << "withdrawn listings are absent from the checkpoint";
  EXPECT_DOUBLE_EQ(PriceAt(rebuilt, "curve-c", 2.0), 18.0);
}

TEST_F(CatalogJournalTest, InvalidSpecIsRejectedBeforeJournaling) {
  {
    CatalogRegistry registry;
    auto journal = Open(&registry);
    ASSERT_NE(journal, nullptr);
    ASSERT_TRUE(journal->Publish("curve-a", Curve(1.0)).ok());
    // Subadditivity violation (arbitrage): the registry's compile step
    // rejects it — and because validation runs BEFORE the append, the
    // journal must not have recorded it either.
    auto bad = core::PiecewiseLinearPricing::Create(
        {{1.0, 1.0}, {2.0, 100.0}, {4.0, 101.0}});
    if (bad.ok()) {
      EXPECT_FALSE(journal->Publish("curve-bad", *bad).ok());
    }
    EXPECT_FALSE(journal->Publish("", Curve(1.0)).ok());
    EXPECT_EQ(journal->listings(), 1u);
  }

  // The reopen must replay cleanly: nothing invalid reached the log.
  CatalogRegistry rebuilt;
  wal::WalRecovery recovery;
  auto journal = Open(&rebuilt, &recovery);
  ASSERT_NE(journal, nullptr);
  EXPECT_EQ(journal->listings(), 1u);
  EXPECT_EQ(recovery.records_replayed, 1u);
}

}  // namespace
}  // namespace mbp::serving

#include "serving/price_query_engine.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/pricing_function.h"
#include "random/rng.h"
#include "serving/snapshot_registry.h"

namespace mbp::serving {
namespace {

using core::PiecewiseLinearPricing;
using core::PricePoint;

PiecewiseLinearPricing MakeValidPricing() {
  return PiecewiseLinearPricing::Create(
             {{1.0, 10.0}, {2.0, 18.0}, {4.0, 30.0}, {8.0, 40.0}})
      .value();
}

PiecewiseLinearPricing MakeCheaperPricing() {
  return PiecewiseLinearPricing::Create(
             {{1.0, 5.0}, {2.0, 9.0}, {4.0, 15.0}, {8.0, 20.0}})
      .value();
}

TEST(SnapshotRegistryTest, PublishFindWithdraw) {
  SnapshotRegistry registry;
  EXPECT_EQ(registry.Find("m"), nullptr);
  EXPECT_EQ(registry.Withdraw("m").code(), StatusCode::kNotFound);

  auto slot = registry.Publish("m", MakeValidPricing());
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(registry.Find("m"), *slot);
  EXPECT_EQ(registry.size(), 1u);
  ASSERT_NE((*slot)->Load(), nullptr);
  EXPECT_GT((*slot)->stamp(), 0u);

  ASSERT_TRUE(registry.Withdraw("m").ok());
  EXPECT_EQ((*slot)->Load(), nullptr);
  // The slot survives withdrawal and the id can be republished.
  auto again = registry.Publish("m", MakeCheaperPricing());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *slot);
  EXPECT_NE((*slot)->Load(), nullptr);
}

TEST(SnapshotRegistryTest, PublishRejectsInvalidCurveKeepsOldSnapshot) {
  SnapshotRegistry registry;
  auto slot = registry.Publish("m", MakeValidPricing());
  ASSERT_TRUE(slot.ok());
  const uint64_t stamp_before = (*slot)->stamp();

  auto broken =
      PiecewiseLinearPricing::Create({{1.0, 10.0}, {2.0, 5.0}}).value();
  EXPECT_EQ(registry.Publish("m", broken).status().code(),
            StatusCode::kFailedPrecondition);
  // The rejected publish neither swapped the snapshot nor bumped the stamp.
  EXPECT_EQ((*slot)->stamp(), stamp_before);
  ASSERT_NE((*slot)->Load(), nullptr);
  EXPECT_EQ((*slot)->Load()->PriceAt(2.0), 18.0);
}

TEST(SnapshotRegistryTest, StampsAreUniqueAcrossSlots) {
  SnapshotRegistry registry;
  auto a = registry.Publish("a", MakeValidPricing());
  auto b = registry.Publish("b", MakeCheaperPricing());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE((*a)->stamp(), (*b)->stamp());
}

TEST(PriceQueryEngineTest, ServesExactPricesColdAndHot) {
  SnapshotRegistry registry;
  ASSERT_TRUE(registry.Publish("m", MakeValidPricing()).ok());
  PriceQueryEngine engine(&registry);
  const PiecewiseLinearPricing curve = MakeValidPricing();

  random::Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.NextDouble() * 9.0);
  // Cold pass (all misses) and hot pass (all hits) must agree bit for bit
  // with the research evaluation.
  for (const double x : xs) {
    ASSERT_EQ(engine.Price("m", x).value(), curve.PriceAtInverseNcp(x));
  }
  const auto cold = engine.cache_stats();
  EXPECT_EQ(cold.hits, 0u);
  EXPECT_EQ(cold.misses, 200u);
  for (const double x : xs) {
    ASSERT_EQ(engine.Price("m", x).value(), curve.PriceAtInverseNcp(x));
  }
  // The cache is direct-mapped, so a colliding key pair evicts each other
  // and keeps missing; with 200 keys in 2^16 slots that is at most a pair
  // or two. Correctness (asserted above, bit-exact) never depends on hits.
  const auto hot = engine.cache_stats();
  EXPECT_GE(hot.hits, 190u);
  EXPECT_EQ(hot.hits + hot.misses, 400u);
  EXPECT_EQ(hot.misses - 200u, 200u - hot.hits);  // hot misses = collisions
}

TEST(PriceQueryEngineTest, UnknownAndWithdrawnCurvesAreNotFound) {
  SnapshotRegistry registry;
  PriceQueryEngine engine(&registry);
  EXPECT_EQ(engine.Price("ghost", 1.0).status().code(),
            StatusCode::kNotFound);

  ASSERT_TRUE(registry.Publish("m", MakeValidPricing()).ok());
  ASSERT_TRUE(engine.Price("m", 1.0).ok());
  ASSERT_TRUE(registry.Withdraw("m").ok());
  EXPECT_EQ(engine.Price("m", 1.0).status().code(), StatusCode::kNotFound);
  std::vector<double> out;
  EXPECT_EQ(engine.PriceBatch("m", {1.0, 2.0}, &out).code(),
            StatusCode::kNotFound);
}

TEST(PriceQueryEngineTest, RepublishInvalidatesCachedPrices) {
  SnapshotRegistry registry;
  auto slot = registry.Publish("m", MakeValidPricing());
  ASSERT_TRUE(slot.ok());
  PriceQueryEngine engine(&registry);

  EXPECT_EQ(engine.Price(*slot, 2.0).value(), 18.0);
  EXPECT_EQ(engine.Price(*slot, 2.0).value(), 18.0);  // cached
  ASSERT_TRUE(registry.Publish("m", MakeCheaperPricing()).ok());
  // Quiescent correctness: after Publish returns, the old cached price is
  // unreachable (stamp changed) and the new curve is served.
  EXPECT_EQ(engine.Price(*slot, 2.0).value(), 9.0);
}

TEST(PriceQueryEngineTest, QuantizationSnapsQueriesButStaysExact) {
  SnapshotRegistry registry;
  auto slot = registry.Publish("m", MakeValidPricing());
  ASSERT_TRUE(slot.ok());
  PriceQueryEngineOptions options;
  options.quantum = 0.25;
  PriceQueryEngine engine(&registry, options);
  const PiecewiseLinearPricing curve = MakeValidPricing();

  EXPECT_EQ(engine.Quantize(1.9), 2.0);
  EXPECT_EQ(engine.Quantize(1.87), 1.75);
  random::Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.NextDouble() * 9.0;
    // Served price == research price at the canonical representative.
    ASSERT_EQ(engine.Price(*slot, x).value(),
              curve.PriceAtInverseNcp(engine.Quantize(x)));
  }
  // Nearby queries collapse onto one cache entry.
  PriceQueryEngine counting(&registry, options);
  ASSERT_TRUE(counting.Price(*slot, 3.001).ok());
  ASSERT_TRUE(counting.Price(*slot, 2.999).ok());
  ASSERT_TRUE(counting.Price(*slot, 3.1).ok());
  EXPECT_EQ(counting.cache_stats().hits, 2u);
  EXPECT_EQ(counting.cache_stats().misses, 1u);
}

TEST(PriceQueryEngineTest, ZeroCapacityDisablesCaching) {
  SnapshotRegistry registry;
  auto slot = registry.Publish("m", MakeValidPricing());
  ASSERT_TRUE(slot.ok());
  PriceQueryEngineOptions options;
  options.cache_capacity_per_shard = 0;
  PriceQueryEngine engine(&registry, options);
  EXPECT_EQ(engine.Price(*slot, 2.0).value(), 18.0);
  EXPECT_EQ(engine.Price(*slot, 2.0).value(), 18.0);
  EXPECT_EQ(engine.cache_stats().hits, 0u);
  EXPECT_EQ(engine.cache_stats().misses, 2u);
}

TEST(PriceQueryEngineTest, BudgetInversionMatchesResearchPath) {
  SnapshotRegistry registry;
  auto slot = registry.Publish("m", MakeValidPricing());
  ASSERT_TRUE(slot.ok());
  PriceQueryEngine engine(&registry);
  const PiecewiseLinearPricing curve = MakeValidPricing();
  for (const double budget : {0.0, 5.0, 18.0, 24.0, 39.9}) {
    EXPECT_EQ(engine.BudgetToInverseNcp(*slot, budget).value(),
              curve.MaxInverseNcpForBudget(budget));
  }
  EXPECT_TRUE(std::isinf(engine.BudgetToInverseNcp(*slot, 40.0).value()));
}

// Batch results must be bit-identical to the serial point path at every
// thread count, cached or not (the PR-1 determinism contract).
TEST(ParallelServingBatchTest, BatchIsBitIdenticalAcrossThreadCounts) {
  SnapshotRegistry registry;
  auto slot = registry.Publish("m", MakeValidPricing());
  ASSERT_TRUE(slot.ok());
  PriceQueryEngineOptions options;
  options.min_parallel_batch = 1;  // force the pool path even when small
  options.batch_grain = 64;
  PriceQueryEngine engine(&registry, options);
  const PiecewiseLinearPricing curve = MakeValidPricing();

  random::Rng rng(21);
  std::vector<double> xs(10000);
  for (double& x : xs) x = rng.NextDouble() * 10.0;
  std::vector<double> serial(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    serial[i] = curve.PriceAtInverseNcp(xs[i]);
  }

  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    ParallelConfig parallel;
    parallel.num_threads = threads;
    std::vector<double> out;
    ASSERT_TRUE(engine.PriceBatch("m", xs, &out, parallel).ok());
    ASSERT_EQ(out.size(), serial.size());
    for (size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], serial[i]) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ParallelServingBatchTest, SmallBatchRunsInlineAndMatches) {
  SnapshotRegistry registry;
  auto slot = registry.Publish("m", MakeValidPricing());
  ASSERT_TRUE(slot.ok());
  PriceQueryEngine engine(&registry);  // default min_parallel_batch
  const PiecewiseLinearPricing curve = MakeValidPricing();
  const std::vector<double> xs = {0.0, 0.5, 1.0, 3.3, 8.0, 12.0};
  std::vector<double> out;
  ParallelConfig parallel;
  parallel.num_threads = 4;
  ASSERT_TRUE(engine.PriceBatch("m", xs, &out, parallel).ok());
  for (size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(out[i], curve.PriceAtInverseNcp(xs[i]));
  }
}

// Theorem 5/6 invariants hold on the SERVED surface (through the cache),
// not just on the snapshot: in exact mode the engine never manufactures a
// monotonicity or subadditivity violation.
TEST(PriceQueryEngineTest, ServedPricesAreArbitrageFreeOnGrid) {
  SnapshotRegistry registry;
  auto slot = registry.Publish("m", MakeValidPricing());
  ASSERT_TRUE(slot.ok());
  PriceQueryEngine engine(&registry);
  const auto price = [&](double x) { return engine.Price("m", x).value(); };
  EXPECT_TRUE(core::IsArbitrageFreeOnGrid(price, 16.0, 300, 1e-9));
  // Run the grid twice so the second pass is served from cache.
  EXPECT_TRUE(core::IsArbitrageFreeOnGrid(price, 16.0, 300, 1e-9));
}

// Quantized serving keeps monotonicity exactly (round-to-nearest is
// monotone), while sampled subadditivity weakens to an L * quantum slack,
// L the curve's steepest slope: near the origin p(q(x + y)) can exceed
// p(q(x)) + p(q(y)) by at most one quantum step of price. DESIGN.md §5b
// documents this as the seller's quantum-selection rule.
TEST(PriceQueryEngineTest, QuantizedServingBoundsArbitrageSlack) {
  SnapshotRegistry registry;
  auto slot = registry.Publish("m", MakeValidPricing());
  ASSERT_TRUE(slot.ok());
  PriceQueryEngineOptions options;
  options.quantum = 0.01;
  PriceQueryEngine engine(&registry, options);
  const auto price = [&](double x) { return engine.Price("m", x).value(); };
  EXPECT_FALSE(
      core::FindMonotonicityViolation(price, 16.0, 300, 1e-9).has_value());
  const double max_slope = 10.0;  // origin segment of MakeValidPricing
  EXPECT_FALSE(core::FindSubadditivityViolation(
                   price, 16.0, 300, max_slope * options.quantum + 1e-9)
                   .has_value());
}

}  // namespace
}  // namespace mbp::serving

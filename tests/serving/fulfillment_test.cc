// FulfillmentEngine (serving/fulfillment.h): the BUY pipeline's unit
// contract — model-cache LRU accounting, quote-token authentication,
// ledger idempotency (a retried txn re-delivers without charging twice),
// bit-exact ReplaySale across cache eviction and curve withdrawal, and the
// anchor assertion of DESIGN.md §5i: a sale served by the engine is
// bit-identical to the in-process core::Broker transaction for the same
// seed.

#include "serving/fulfillment.h"

#include <bit>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/market.h"
#include "core/pricing_function.h"
#include "data/synthetic.h"
#include "serving/catalog_registry.h"

namespace mbp::serving {
namespace {

core::PiecewiseLinearPricing SmallCurve(double scale) {
  return core::PiecewiseLinearPricing::Create(
             {{1.0, 10.0 * scale}, {2.0, 18.0 * scale}, {4.0, 30.0 * scale}})
      .value();
}

class FulfillmentTest : public ::testing::Test {
 protected:
  void Publish(const std::string& id, double scale = 1.0) {
    ASSERT_TRUE(registry_.Publish(id, SmallCurve(scale)).ok());
  }

  CatalogRegistry registry_;
};

// ----------------------------------------------------- ModelInstanceCache

TEST(ModelInstanceCacheTest, HitAfterMissAndCounters) {
  ModelInstanceCache cache(size_t{1} << 20);
  int trainings = 0;
  const auto train = [&]() -> StatusOr<linalg::Vector> {
    ++trainings;
    return linalg::Vector(std::vector<double>{1.0, 2.0, 3.0});
  };
  auto first = cache.GetOrTrain(0, 1e-3, train);
  ASSERT_TRUE(first.ok());
  auto second = cache.GetOrTrain(0, 1e-3, train);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(trainings, 1) << "hit must not retrain";
  EXPECT_EQ(first->get(), second->get()) << "hit returns the same weights";
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_GT(cache.bytes(), 3 * sizeof(double));

  // A different l2 is a different model: (ref, λ) keys the cache.
  ASSERT_TRUE(cache.GetOrTrain(0, 1e-2, train).ok());
  EXPECT_EQ(trainings, 2);
  EXPECT_EQ(cache.entries(), 2u);
}

TEST(ModelInstanceCacheTest, TrainingFailureIsNotCached) {
  ModelInstanceCache cache(size_t{1} << 20);
  const auto fail = []() -> StatusOr<linalg::Vector> {
    return InternalError("solver exploded");
  };
  EXPECT_FALSE(cache.GetOrTrain(0, 1e-3, fail).ok());
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  // The next attempt trains again and can succeed.
  const auto ok = []() -> StatusOr<linalg::Vector> {
    return linalg::Vector(std::vector<double>{1.0});
  };
  EXPECT_TRUE(cache.GetOrTrain(0, 1e-3, ok).ok());
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(ModelInstanceCacheTest, EvictsLeastRecentlyUsedPastBudget) {
  // Budget fits roughly two entries; entry overhead is ~200 bytes each.
  ModelInstanceCache cache(500);
  const auto train = []() -> StatusOr<linalg::Vector> {
    return linalg::Vector(std::vector<double>(8, 1.0));
  };
  ASSERT_TRUE(cache.GetOrTrain(0, 1e-3, train).ok());
  ASSERT_TRUE(cache.GetOrTrain(1, 1e-3, train).ok());
  // Touch 0 so 1 becomes the LRU victim when 2 arrives.
  ASSERT_TRUE(cache.GetOrTrain(0, 1e-3, train).ok());
  ASSERT_TRUE(cache.GetOrTrain(2, 1e-3, train).ok());
  EXPECT_GE(cache.evictions(), 1u);
  EXPECT_LE(cache.bytes(), 500u);
  // 0 was recently touched: still a hit. 1 was evicted: a fresh miss.
  const uint64_t misses_before = cache.misses();
  ASSERT_TRUE(cache.GetOrTrain(0, 1e-3, train).ok());
  EXPECT_EQ(cache.misses(), misses_before);
  ASSERT_TRUE(cache.GetOrTrain(1, 1e-3, train).ok());
  EXPECT_EQ(cache.misses(), misses_before + 1);
}

TEST(ModelInstanceCacheTest, SingleOverBudgetModelIsStillServable) {
  ModelInstanceCache cache(1);  // absurdly small budget
  const auto train = []() -> StatusOr<linalg::Vector> {
    return linalg::Vector(std::vector<double>(64, 2.0));
  };
  auto weights = cache.GetOrTrain(0, 1e-3, train);
  ASSERT_TRUE(weights.ok());
  EXPECT_EQ((**weights).size(), 64u);
  EXPECT_EQ(cache.entries(), 1u) << "newest entry is never evicted";
}

// ------------------------------------------------------------ Quote/token

TEST_F(FulfillmentTest, QuoteMatchesSnapshotPriceAndTokenRedeems) {
  Publish("curve-a");
  FulfillmentEngine engine(&registry_);
  const double delta = 0.5;  // x = 1/δ = 2 → price 18 on SmallCurve(1)
  auto quote = engine.Quote("curve-a", delta);
  ASSERT_TRUE(quote.ok()) << quote.status();
  EXPECT_DOUBLE_EQ(quote->price, 18.0);
  EXPECT_EQ(quote->token.size(), kQuoteTokenBytes);

  auto sale = engine.Buy("curve-a", delta, 101, quote->token);
  ASSERT_TRUE(sale.ok()) << sale.status();
  EXPECT_DOUBLE_EQ(sale->record.price, 18.0);
  EXPECT_FALSE(sale->replayed);
}

TEST_F(FulfillmentTest, QuoteLocksPriceAcrossRepublish) {
  Publish("curve-a");
  FulfillmentEngine engine(&registry_);
  auto quote = engine.Quote("curve-a", 0.5);
  ASSERT_TRUE(quote.ok());
  // Seller doubles the prices; the outstanding token still buys at 18.
  Publish("curve-a", 2.0);
  auto with_token = engine.Buy("curve-a", 0.5, 102, quote->token);
  ASSERT_TRUE(with_token.ok());
  EXPECT_DOUBLE_EQ(with_token->record.price, 18.0);
  auto without = engine.Buy("curve-a", 0.5, 103);
  ASSERT_TRUE(without.ok());
  EXPECT_DOUBLE_EQ(without->record.price, 36.0);
}

TEST_F(FulfillmentTest, TamperedTokenIsRejected) {
  Publish("curve-a");
  FulfillmentEngine engine(&registry_);
  auto quote = engine.Quote("curve-a", 0.5);
  ASSERT_TRUE(quote.ok());

  // Flip one bit of the embedded price: MAC check must fail.
  std::string tampered = quote->token;
  tampered[12] ^= 1;
  auto sale = engine.Buy("curve-a", 0.5, 104, tampered);
  EXPECT_EQ(sale.status().code(), StatusCode::kInvalidArgument);

  // Truncated token.
  EXPECT_EQ(engine.Buy("curve-a", 0.5, 104, quote->token.substr(0, 10))
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // Token presented for a different delta than the Buy's.
  EXPECT_EQ(engine.Buy("curve-a", 0.25, 104, quote->token).status().code(),
            StatusCode::kInvalidArgument);

  // Token presented for a different curve.
  Publish("curve-b");
  EXPECT_EQ(engine.Buy("curve-b", 0.5, 104, quote->token).status().code(),
            StatusCode::kInvalidArgument);

  // None of the rejections charged anything.
  EXPECT_EQ(engine.Stats().buys_ok, 0u);
  EXPECT_DOUBLE_EQ(engine.Stats().revenue, 0.0);
}

TEST_F(FulfillmentTest, ExpiredTokenIsRejected) {
  Publish("curve-a");
  FulfillmentOptions options;
  options.quote_ttl_micros = 0;  // expires the instant it is minted
  FulfillmentEngine engine(&registry_, options);
  auto quote = engine.Quote("curve-a", 0.5);
  ASSERT_TRUE(quote.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(engine.Buy("curve-a", 0.5, 105, quote->token).status().code(),
            StatusCode::kFailedPrecondition);
}

// ------------------------------------------------------------- Buy/ledger

TEST_F(FulfillmentTest, BuyValidatesArguments) {
  Publish("curve-a");
  FulfillmentEngine engine(&registry_);
  EXPECT_EQ(engine.Buy("curve-a", 0.5, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Buy("curve-a", 0.0, 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Buy("curve-a", -1.0, 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Buy("no-such-curve", 0.5, 1).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine.Quote("no-such-curve", 0.5).status().code(),
            StatusCode::kNotFound);
}

TEST_F(FulfillmentTest, RetriedTransactionIsIdempotentAndChargedOnce) {
  Publish("curve-a");
  FulfillmentEngine engine(&registry_);
  auto first = engine.Buy("curve-a", 0.5, 7);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->replayed);

  // Identical retry — and even a MISMATCHED retry (different δ): the
  // ledger's record wins, nothing is charged again.
  auto retry = engine.Buy("curve-a", 0.5, 7);
  ASSERT_TRUE(retry.ok());
  EXPECT_TRUE(retry->replayed);
  EXPECT_EQ(retry->record.txn_id, first->record.txn_id);
  EXPECT_EQ(retry->weights, first->weights) << "retry must be bit-identical";
  auto mismatched = engine.Buy("curve-a", 0.25, 7);
  ASSERT_TRUE(mismatched.ok());
  EXPECT_TRUE(mismatched->replayed);
  EXPECT_DOUBLE_EQ(mismatched->record.delta, 0.5)
      << "the RECORDED sale is re-delivered, not the retry's arguments";
  EXPECT_EQ(mismatched->weights, first->weights);

  const FulfillmentStats stats = engine.Stats();
  EXPECT_EQ(stats.buys_ok, 1u);
  EXPECT_DOUBLE_EQ(stats.revenue, first->record.price);
  EXPECT_EQ(stats.transactions_recorded, 1u);
}

TEST_F(FulfillmentTest, DistinctTransactionsDrawDistinctNoise) {
  Publish("curve-a");
  FulfillmentEngine engine(&registry_);
  auto a = engine.Buy("curve-a", 0.5, 1);
  auto b = engine.Buy("curve-a", 0.5, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->weights, b->weights);
  EXPECT_NE(a->record.seed_commitment, b->record.seed_commitment);
  EXPECT_DOUBLE_EQ(engine.Stats().revenue,
                   a->record.price + b->record.price);
}

TEST_F(FulfillmentTest, LedgerFifoCapDropsOldestRecords) {
  Publish("curve-a");
  FulfillmentOptions options;
  options.max_transactions = 4;
  FulfillmentEngine engine(&registry_, options);
  for (uint64_t txn = 1; txn <= 6; ++txn) {
    ASSERT_TRUE(engine.Buy("curve-a", 0.5, txn).ok());
  }
  EXPECT_EQ(engine.Stats().transactions_recorded, 4u);
  EXPECT_EQ(engine.ReplaySale(1).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(engine.ReplaySale(6).ok());
}

// ----------------------------------------------------------------- Replay

TEST_F(FulfillmentTest, ReplayReproducesDeliveredBytesExactly) {
  Publish("curve-a");
  FulfillmentEngine engine(&registry_);
  auto sale = engine.Buy("curve-a", 0.5, 42);
  ASSERT_TRUE(sale.ok());
  auto replay = engine.ReplaySale(42);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->replayed);
  EXPECT_EQ(replay->record.txn_id, sale->record.txn_id);
  EXPECT_EQ(replay->record.curve_ref, sale->record.curve_ref);
  EXPECT_EQ(replay->record.seed_commitment, sale->record.seed_commitment);
  ASSERT_EQ(replay->weights.size(), sale->weights.size());
  EXPECT_EQ(0, std::memcmp(replay->weights.data(), sale->weights.data(),
                           sale->weights.size() * sizeof(double)))
      << "replay must be bit-identical";
  EXPECT_EQ(engine.ReplaySale(43).status().code(), StatusCode::kNotFound);
}

TEST_F(FulfillmentTest, ReplaySurvivesCacheEvictionAndWithdrawal) {
  Publish("curve-a");
  Publish("curve-b");
  FulfillmentOptions options;
  options.max_model_cache_bytes = 1;  // every other BUY evicts the last
  FulfillmentEngine engine(&registry_, options);
  auto sale = engine.Buy("curve-a", 0.5, 42);
  ASSERT_TRUE(sale.ok());
  // Evict curve-a's base model, then withdraw the listing entirely.
  ASSERT_TRUE(engine.Buy("curve-b", 0.5, 43).ok());
  ASSERT_TRUE(registry_.Withdraw("curve-a").ok());
  ASSERT_EQ(engine.Buy("curve-a", 0.5, 99).status().code(),
            StatusCode::kNotFound)
      << "new sales of a withdrawn curve must fail";
  auto replay = engine.ReplaySale(42);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay->weights, sale->weights)
      << "replay outlives eviction and withdrawal: the base model and "
         "noise stream rebuild purely from seeds";
}

TEST_F(FulfillmentTest, EnginesSharingAnEpochSeedSellIdenticalBytes) {
  Publish("curve-a");
  FulfillmentEngine a(&registry_);
  FulfillmentEngine b(&registry_);
  auto sale_a = a.Buy("curve-a", 0.5, 7);
  auto sale_b = b.Buy("curve-a", 0.5, 7);
  ASSERT_TRUE(sale_a.ok());
  ASSERT_TRUE(sale_b.ok());
  EXPECT_EQ(sale_a->weights, sale_b->weights)
      << "replicas with one epoch seed are interchangeable";

  FulfillmentOptions rotated;
  rotated.epoch_seed = 0xD1FFE4E47;
  FulfillmentEngine c(&registry_, rotated);
  auto sale_c = c.Buy("curve-a", 0.5, 7);
  ASSERT_TRUE(sale_c.ok());
  EXPECT_NE(sale_c->weights, sale_a->weights)
      << "rotating the epoch rotates every noise stream";
}

// ------------------------------------------------------------- The anchor

// DESIGN.md §5i acceptance: a sale served by the FulfillmentEngine is
// BIT-IDENTICAL to the offline core/market.* transaction — same training
// set, same pricing curve, Broker seeded with the engine's
// per-transaction seed. This is the test that pins the serving path to
// the paper's reference implementation.
TEST_F(FulfillmentTest, SaleIsBitIdenticalToCoreBrokerTransaction) {
  const std::string curve_id = "anchor-curve";
  Publish(curve_id);
  FulfillmentEngine engine(&registry_);
  const double delta = 0.5;
  const uint64_t txn = 777;
  auto sale = engine.Buy(curve_id, delta, txn);
  ASSERT_TRUE(sale.ok()) << sale.status();
  EXPECT_EQ(sale->record.seed_commitment,
            FulfillmentEngine::SeedCommitment(engine.SeedForTransaction(txn)));

  // Rebuild the engine's exact training set and sell through the Broker.
  auto dataset =
      data::GenerateSimulated1(engine.TrainingSetOptionsFor(curve_id));
  ASSERT_TRUE(dataset.ok());
  auto seller = core::Seller::Create(
      "anchor", data::TrainTestSplit{*dataset, *dataset},
      {{1.0, 10.0, 0.5}, {4.0, 30.0, 0.5}});
  ASSERT_TRUE(seller.ok()) << seller.status();
  core::ModelListing listing;
  listing.model = ml::ModelKind::kLinearRegression;
  listing.l2 = engine.options().l2;
  listing.error_space = core::ErrorSpace::kModelSquare;
  core::Broker::Options broker_options;
  broker_options.seed = engine.SeedForTransaction(txn);
  auto broker = core::Broker::CreateWithPricing(*std::move(seller), listing,
                                                SmallCurve(1.0),
                                                broker_options);
  ASSERT_TRUE(broker.ok()) << broker.status();
  auto txn_local = broker->BuyAtNcp(delta);
  ASSERT_TRUE(txn_local.ok()) << txn_local.status();

  EXPECT_EQ(std::bit_cast<uint64_t>(txn_local->price),
            std::bit_cast<uint64_t>(sale->record.price))
      << "price must be bit-identical to the Broker's";
  const std::vector<double>& local =
      txn_local->instance.coefficients().values();
  ASSERT_EQ(local.size(), sale->weights.size());
  for (size_t i = 0; i < local.size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint64_t>(local[i]),
              std::bit_cast<uint64_t>(sale->weights[i]))
        << "weight " << i << " differs from the Broker's instance";
  }
}

}  // namespace
}  // namespace mbp::serving

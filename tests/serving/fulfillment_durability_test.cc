// Durable sale ledger (DESIGN.md §5j): the FulfillmentEngine's
// crash-safety contract at the unit level — a restart rebuilds the
// ledger from the WAL, a retried BUY after the restart re-delivers the
// recorded sale bit-identically without charging twice, a clean
// Shutdown() checkpoints so the next open replays zero segment records,
// and a sale whose curve vanished from the catalog keeps its revenue but
// drops its ledger entry. The process-level kill-9 version of these
// assertions lives in tests/net/crash_recovery_test.cc.

#include <dirent.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/wal.h"
#include "core/pricing_function.h"
#include "serving/catalog_registry.h"
#include "serving/fulfillment.h"

namespace mbp::serving {
namespace {

core::PiecewiseLinearPricing SmallCurve(double scale = 1.0) {
  return core::PiecewiseLinearPricing::Create(
             {{1.0, 10.0 * scale}, {2.0, 18.0 * scale}, {4.0, 30.0 * scale}})
      .value();
}

class FulfillmentDurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ledger_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    RemoveDir(dir_);
    ASSERT_TRUE(registry_.Publish("curve-a", SmallCurve()).ok());
    ASSERT_TRUE(registry_.Publish("curve-b", SmallCurve(2.0)).ok());
    // kill -9 durability, not power-loss durability, is what these tests
    // exercise — skip the fsyncs so the suite stays fast.
    wal_options_.fsync_policy = wal::FsyncPolicy::kNone;
  }

  void TearDown() override { RemoveDir(dir_); }

  static void RemoveDir(const std::string& dir) {
    DIR* d = opendir(dir.c_str());
    if (d == nullptr) return;
    while (struct dirent* entry = readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      unlink((dir + "/" + name).c_str());
    }
    closedir(d);
    rmdir(dir.c_str());
  }

  std::unique_ptr<FulfillmentEngine> OpenEngine(
      CatalogRegistry* registry = nullptr) {
    auto engine = std::make_unique<FulfillmentEngine>(
        registry != nullptr ? registry : &registry_);
    const Status opened = engine->OpenDurableLedger(dir_, wal_options_);
    EXPECT_TRUE(opened.ok()) << opened.ToString();
    return engine;
  }

  std::string dir_;
  CatalogRegistry registry_;
  wal::WalOptions wal_options_;
};

TEST_F(FulfillmentDurabilityTest, SaleRecordCodecRoundtrip) {
  SaleRecord record;
  record.txn_id = 0x0123456789abcdefULL;
  record.delta = 0.375;
  record.price = 18.25;
  record.seed_commitment = 0xfeedfacecafebeefULL;
  const std::string bytes =
      FulfillmentEngine::EncodeSaleRecord(record, "curve-a");

  SaleRecord decoded;
  std::string curve_id;
  ASSERT_TRUE(FulfillmentEngine::DecodeSaleRecord(bytes, &decoded, &curve_id));
  EXPECT_EQ(decoded.txn_id, record.txn_id);
  EXPECT_DOUBLE_EQ(decoded.delta, record.delta);
  EXPECT_DOUBLE_EQ(decoded.price, record.price);
  EXPECT_EQ(decoded.seed_commitment, record.seed_commitment);
  EXPECT_EQ(curve_id, "curve-a");

  // Truncation at any scalar boundary and a zero txn id are rejected.
  for (size_t cut : {size_t{0}, size_t{7}, size_t{31}}) {
    EXPECT_FALSE(FulfillmentEngine::DecodeSaleRecord(
        std::string_view(bytes).substr(0, cut), &decoded, &curve_id))
        << "cut=" << cut;
  }
  SaleRecord zero = record;
  zero.txn_id = 0;
  EXPECT_FALSE(FulfillmentEngine::DecodeSaleRecord(
      FulfillmentEngine::EncodeSaleRecord(zero, "curve-a"), &decoded,
      &curve_id));
}

TEST_F(FulfillmentDurabilityTest, NonDurableEngineReportsZeroWalStats) {
  FulfillmentEngine engine(&registry_);
  EXPECT_FALSE(engine.durable());
  ASSERT_TRUE(engine.Buy("curve-a", 0.5, 1).ok());
  const FulfillmentStats stats = engine.Stats();
  EXPECT_EQ(stats.wal_appends, 0u);
  EXPECT_EQ(stats.wal_bytes, 0u);
  EXPECT_EQ(stats.recovery_records, 0u);
  EXPECT_TRUE(engine.Shutdown().ok()) << "Shutdown is a no-op without a WAL";
}

TEST_F(FulfillmentDurabilityTest, RestartRebuildsLedgerAndRedeliversExactly) {
  std::vector<double> sold_weights;
  double sold_price = 0.0;
  {
    auto engine = OpenEngine();
    EXPECT_TRUE(engine->durable());
    auto sale = engine->Buy("curve-a", 0.5, 7);
    ASSERT_TRUE(sale.ok()) << sale.status();
    ASSERT_TRUE(engine->Buy("curve-b", 0.25, 8).ok());
    sold_weights = sale->weights;
    sold_price = sale->record.price;
    const FulfillmentStats stats = engine->Stats();
    EXPECT_EQ(stats.wal_appends, 2u);
    EXPECT_GT(stats.wal_bytes, 0u);
    // No Shutdown(): simulates a crash after the appends reached the log.
  }

  auto engine = OpenEngine();
  const FulfillmentStats stats = engine->Stats();
  EXPECT_EQ(stats.recovery_records, 2u);
  EXPECT_EQ(stats.transactions_recorded, 2u);
  EXPECT_EQ(stats.recovery_torn_tail, 0u);
  EXPECT_GE(stats.recovery_ms, 1u) << "recovery_ms rounds up, never 0 after "
                                      "a real recovery";

  // A retried BUY with the recorded txn id is a replay: bit-identical
  // bytes, nothing charged again.
  auto retry = engine->Buy("curve-a", 0.5, 7);
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_TRUE(retry->replayed);
  ASSERT_EQ(retry->weights.size(), sold_weights.size());
  EXPECT_EQ(0, std::memcmp(retry->weights.data(), sold_weights.data(),
                           sold_weights.size() * sizeof(double)))
      << "re-delivery after restart must be bit-identical";
  EXPECT_DOUBLE_EQ(retry->record.price, sold_price);
  EXPECT_EQ(engine->Stats().buys_ok, 0u)
      << "a replayed retry is not a new sale";
  EXPECT_TRUE(engine->ReplaySale(8).ok());
}

TEST_F(FulfillmentDurabilityTest, RestartChargesEachRecordedSaleOnce) {
  double revenue_before = 0.0;
  {
    auto engine = OpenEngine();
    for (uint64_t txn = 1; txn <= 5; ++txn) {
      ASSERT_TRUE(engine->Buy("curve-a", 0.5, txn).ok());
    }
    // A retried txn appends nothing — the ledger answers it.
    ASSERT_TRUE(engine->Buy("curve-a", 0.5, 3).ok());
    EXPECT_EQ(engine->Stats().wal_appends, 5u);
    revenue_before = engine->Stats().revenue;
  }

  auto engine = OpenEngine();
  EXPECT_DOUBLE_EQ(engine->Stats().revenue, revenue_before)
      << "revenue must equal the sum over DISTINCT recorded sales";
  EXPECT_EQ(engine->Stats().transactions_recorded, 5u);
}

TEST_F(FulfillmentDurabilityTest, CleanShutdownCheckpointSkipsSegmentReplay) {
  double revenue_before = 0.0;
  {
    auto engine = OpenEngine();
    ASSERT_TRUE(engine->Buy("curve-a", 0.5, 11).ok());
    ASSERT_TRUE(engine->Buy("curve-b", 0.5, 12).ok());
    revenue_before = engine->Stats().revenue;
    ASSERT_TRUE(engine->Shutdown().ok());
  }

  auto engine = OpenEngine();
  const FulfillmentStats stats = engine->Stats();
  EXPECT_EQ(stats.recovery_records, 0u)
      << "a clean shutdown leaves nothing to replay from segments";
  EXPECT_EQ(stats.transactions_recorded, 2u)
      << "the checkpoint still carries the ledger";
  EXPECT_DOUBLE_EQ(stats.revenue, revenue_before);
  EXPECT_TRUE(engine->ReplaySale(11).ok());
  EXPECT_TRUE(engine->ReplaySale(12).ok());
}

TEST_F(FulfillmentDurabilityTest, SalesAfterCheckpointReplayOnTopOfIt) {
  double revenue_before = 0.0;
  {
    auto engine = OpenEngine();
    ASSERT_TRUE(engine->Buy("curve-a", 0.5, 21).ok());
    ASSERT_TRUE(engine->CheckpointLedger().ok());
    ASSERT_TRUE(engine->Buy("curve-a", 0.5, 22).ok());
    revenue_before = engine->Stats().revenue;
    // Crash (no Shutdown): 21 lives in the checkpoint, 22 in a segment.
  }

  auto engine = OpenEngine();
  const FulfillmentStats stats = engine->Stats();
  EXPECT_EQ(stats.recovery_records, 1u) << "only the post-checkpoint sale "
                                           "replays from segments";
  EXPECT_EQ(stats.transactions_recorded, 2u);
  EXPECT_DOUBLE_EQ(stats.revenue, revenue_before)
      << "checkpoint revenue + per-record charges must not double-count";
  EXPECT_TRUE(engine->ReplaySale(21).ok());
  EXPECT_TRUE(engine->ReplaySale(22).ok());
}

TEST_F(FulfillmentDurabilityTest, OrphanedSaleKeepsRevenueDropsLedgerEntry) {
  double revenue_before = 0.0;
  {
    auto engine = OpenEngine();
    ASSERT_TRUE(engine->Buy("curve-a", 0.5, 31).ok());
    ASSERT_TRUE(engine->Buy("curve-b", 0.5, 32).ok());
    revenue_before = engine->Stats().revenue;
  }

  // The restarted process only republished curve-b: curve-a's sale is an
  // orphan. The money was really collected — revenue keeps it — but the
  // sale can no longer be replayed (same contract as FIFO expiry).
  CatalogRegistry partial;
  ASSERT_TRUE(partial.Publish("curve-b", SmallCurve(2.0)).ok());
  auto engine = OpenEngine(&partial);
  const FulfillmentStats stats = engine->Stats();
  EXPECT_DOUBLE_EQ(stats.revenue, revenue_before);
  EXPECT_EQ(stats.transactions_recorded, 1u);
  EXPECT_EQ(engine->ReplaySale(31).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(engine->ReplaySale(32).ok());
}

TEST_F(FulfillmentDurabilityTest, FifoCapHoldsAcrossRestartRevenueDoesNot) {
  FulfillmentOptions options;
  options.max_transactions = 3;
  double revenue_before = 0.0;
  {
    FulfillmentEngine engine(&registry_, options);
    ASSERT_TRUE(engine.OpenDurableLedger(dir_, wal_options_).ok());
    for (uint64_t txn = 1; txn <= 6; ++txn) {
      ASSERT_TRUE(engine.Buy("curve-a", 0.5, txn).ok());
    }
    revenue_before = engine.Stats().revenue;
    EXPECT_EQ(engine.Stats().transactions_recorded, 3u);
  }

  FulfillmentEngine engine(&registry_, options);
  ASSERT_TRUE(engine.OpenDurableLedger(dir_, wal_options_).ok());
  EXPECT_EQ(engine.Stats().transactions_recorded, 3u)
      << "replay re-applies the FIFO cap";
  EXPECT_DOUBLE_EQ(engine.Stats().revenue, revenue_before)
      << "revenue covers evicted sales too — money is never un-collected";
  EXPECT_EQ(engine.ReplaySale(1).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(engine.ReplaySale(6).ok());
}

TEST_F(FulfillmentDurabilityTest, FsyncPolicyEveryCountsOnePerAppend) {
  wal_options_.fsync_policy = wal::FsyncPolicy::kEveryRecord;
  auto engine = OpenEngine();
  for (uint64_t txn = 1; txn <= 4; ++txn) {
    ASSERT_TRUE(engine->Buy("curve-a", 0.5, txn).ok());
  }
  const FulfillmentStats stats = engine->Stats();
  EXPECT_EQ(stats.wal_appends, 4u);
  EXPECT_EQ(stats.wal_fsyncs, 4u);
}

}  // namespace
}  // namespace mbp::serving

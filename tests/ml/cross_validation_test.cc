#include "ml/cross_validation.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace mbp::ml {
namespace {

data::Dataset SmallRegression(size_t n = 300, uint64_t seed = 5) {
  data::Simulated1Options options;
  options.num_examples = n;
  options.num_features = 5;
  options.noise_stddev = 0.2;
  options.seed = seed;
  return data::GenerateSimulated1(options).value();
}

data::Dataset NoisyClassification(size_t n = 300) {
  data::Simulated2Options options;
  options.num_examples = n;
  options.num_features = 5;
  options.label_keep_probability = 0.85;
  options.seed = 6;
  return data::GenerateSimulated2(options).value();
}

TEST(KFoldCrossValidateTest, ProducesOneErrorPerFold) {
  random::Rng rng(1);
  const SquareLoss loss(0.0);
  auto result = KFoldCrossValidate(ModelKind::kLinearRegression,
                                   SmallRegression(), 1e-3, loss, 5, rng);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->fold_errors.size(), 5u);
  for (double error : result->fold_errors) EXPECT_GT(error, 0.0);
  EXPECT_GT(result->mean_error, 0.0);
  EXPECT_GE(result->stddev_error, 0.0);
}

TEST(KFoldCrossValidateTest, MeanMatchesFoldAverage) {
  random::Rng rng(2);
  const SquareLoss loss(0.0);
  auto result = KFoldCrossValidate(ModelKind::kLinearRegression,
                                   SmallRegression(), 1e-3, loss, 4, rng);
  ASSERT_TRUE(result.ok());
  double total = 0.0;
  for (double error : result->fold_errors) total += error;
  EXPECT_NEAR(result->mean_error, total / 4.0, 1e-12);
}

TEST(KFoldCrossValidateTest, HeldOutErrorNearNoiseFloor) {
  // Simulated1 with noise 0.2: the held-out square loss should sit near
  // the irreducible 0.5 * 0.2^2 = 0.02, far below the variance of y.
  random::Rng rng(3);
  const SquareLoss loss(0.0);
  auto result = KFoldCrossValidate(ModelKind::kLinearRegression,
                                   SmallRegression(600), 1e-4, loss, 5,
                                   rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->mean_error, 0.05);
  EXPECT_GT(result->mean_error, 0.01);
}

TEST(KFoldCrossValidateTest, RejectsBadFoldCounts) {
  random::Rng rng(4);
  const SquareLoss loss(0.0);
  const data::Dataset data = SmallRegression(10);
  EXPECT_FALSE(KFoldCrossValidate(ModelKind::kLinearRegression, data, 0.0,
                                  loss, 1, rng)
                   .ok());
  EXPECT_FALSE(KFoldCrossValidate(ModelKind::kLinearRegression, data, 0.0,
                                  loss, 11, rng)
                   .ok());
}

TEST(KFoldCrossValidateTest, UnevenFoldsCoverEveryExample) {
  // 10 examples, 3 folds: folds of size 4/3/3; must not crash and must
  // produce 3 errors.
  random::Rng rng(5);
  const SquareLoss loss(0.0);
  auto result = KFoldCrossValidate(ModelKind::kLinearRegression,
                                   SmallRegression(10), 0.1, loss, 3, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->fold_errors.size(), 3u);
}

TEST(SelectL2Test, PicksFromTheCandidates) {
  random::Rng rng(6);
  const ZeroOneLoss eval;
  const std::vector<double> candidates{1e-4, 1e-2, 1.0};
  auto best = SelectL2ByCrossValidation(ModelKind::kLogisticRegression,
                                        NoisyClassification(), candidates,
                                        eval, 4, rng);
  ASSERT_TRUE(best.ok()) << best.status();
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), *best),
            candidates.end());
}

TEST(SelectL2Test, HugeRegularizationLosesOnCleanData) {
  // On near-noiseless linear data, l2 = 100 (coefficients crushed to ~0)
  // must never beat l2 = 1e-4.
  random::Rng rng(7);
  const SquareLoss eval(0.0);
  auto best = SelectL2ByCrossValidation(ModelKind::kLinearRegression,
                                        SmallRegression(400),
                                        {1e-4, 100.0}, eval, 4, rng);
  ASSERT_TRUE(best.ok());
  EXPECT_DOUBLE_EQ(*best, 1e-4);
}

TEST(SelectL2Test, RejectsBadInputs) {
  random::Rng rng(8);
  const SquareLoss eval(0.0);
  const data::Dataset data = SmallRegression(50);
  EXPECT_FALSE(SelectL2ByCrossValidation(ModelKind::kLinearRegression,
                                         data, {}, eval, 4, rng)
                   .ok());
  EXPECT_FALSE(SelectL2ByCrossValidation(ModelKind::kLinearRegression,
                                         data, {-1.0}, eval, 4, rng)
                   .ok());
}

TEST(KFoldTest, ParallelFoldsBitIdenticalToSerial) {
  const SquareLoss eval(0.0);
  const data::Dataset data = SmallRegression(120);
  auto run = [&](size_t threads) {
    random::Rng rng(42);
    ParallelConfig parallel;
    parallel.num_threads = threads;
    return KFoldCrossValidate(ModelKind::kLinearRegression, data, 1e-3,
                              eval, 5, rng, parallel);
  };
  const auto serial = run(1);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {size_t{2}, size_t{8}}) {
    const auto parallel = run(threads);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(serial->fold_errors, parallel->fold_errors);
    EXPECT_EQ(serial->mean_error, parallel->mean_error);
  }
}

TEST(SelectL2Test, DeterministicForSameRngSeed) {
  const ZeroOneLoss eval;
  const data::Dataset data = NoisyClassification();
  random::Rng rng1(9), rng2(9);
  auto a = SelectL2ByCrossValidation(ModelKind::kLogisticRegression, data,
                                     {1e-3, 1e-1}, eval, 3, rng1);
  auto b = SelectL2ByCrossValidation(ModelKind::kLogisticRegression, data,
                                     {1e-3, 1e-1}, eval, 3, rng2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(*a, *b);
}

}  // namespace
}  // namespace mbp::ml

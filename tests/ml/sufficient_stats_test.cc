#include "ml/sufficient_stats.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "data/dataset.h"
#include "gtest/gtest.h"
#include "linalg/vector_ops.h"
#include "ml/loss.h"
#include "ml/trainer.h"
#include "random/distributions.h"
#include "random/rng.h"

namespace mbp::ml {
namespace {

data::Dataset MakeRegression(size_t n, size_t d, uint64_t seed) {
  random::Rng rng(seed);
  linalg::Matrix features(n, d);
  linalg::Vector targets(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      features(i, j) = random::SampleNormal(rng, 0.0, 1.0);
    }
    targets[i] = random::SampleNormal(rng, 0.0, 1.0);
  }
  auto dataset = data::Dataset::Create(std::move(features),
                                       std::move(targets),
                                       data::TaskType::kRegression);
  MBP_CHECK(dataset.ok());
  return std::move(dataset).value();
}

TEST(SufficientStatsTest, BuildMatchesDirectKernels) {
  const data::Dataset dataset = MakeRegression(120, 7, 3);
  const SufficientStats stats = SufficientStats::Build(dataset);
  EXPECT_EQ(linalg::GramMatrix(dataset.features()), stats.gram);
  EXPECT_EQ(linalg::MatTVec(dataset.features(), dataset.targets()),
            stats.xty);
  EXPECT_EQ(linalg::Dot(dataset.targets(), dataset.targets()), stats.yty);
  EXPECT_EQ(dataset.num_examples(), stats.n);
  EXPECT_EQ(dataset.stats_key(), stats.dataset_key);
}

TEST(SufficientStatsTest, BuildBitIdenticalAcrossThreadCounts) {
  const data::Dataset dataset = MakeRegression(300, 12, 4);
  const SufficientStats serial =
      SufficientStats::Build(dataset, ParallelConfig::Serial());
  const SufficientStats parallel =
      SufficientStats::Build(dataset, ParallelConfig{});
  EXPECT_EQ(serial.gram, parallel.gram);
  EXPECT_EQ(serial.xty, parallel.xty);
  EXPECT_EQ(serial.yty, parallel.yty);
}

TEST(SufficientStatsTest, DowndateMatchesSubsetRebuildClosely) {
  const data::Dataset dataset = MakeRegression(200, 9, 5);
  const SufficientStats full = SufficientStats::Build(dataset);
  // Remove an arbitrary "fold" and compare against stats rebuilt from the
  // complementary subset. (Σ_all − Σ_fold) and Σ_train round differently,
  // so the comparison is tight-tolerance, not bitwise.
  const std::vector<size_t> removed = {3, 17, 42, 55, 108, 199, 0};
  std::vector<size_t> kept;
  for (size_t i = 0; i < dataset.num_examples(); ++i) {
    if (std::find(removed.begin(), removed.end(), i) == removed.end()) {
      kept.push_back(i);
    }
  }
  const SufficientStats down = full.Downdate(dataset, removed);
  const SufficientStats rebuilt =
      SufficientStats::Build(dataset.Subset(kept));
  ASSERT_EQ(rebuilt.n, down.n);
  EXPECT_EQ(0u, down.dataset_key) << "downdated stats must be uncacheable";
  for (size_t i = 0; i < down.gram.rows(); ++i) {
    for (size_t j = 0; j < down.gram.cols(); ++j) {
      EXPECT_NEAR(rebuilt.gram(i, j), down.gram(i, j),
                  1e-10 * std::max(1.0, std::abs(rebuilt.gram(i, j))));
    }
    EXPECT_NEAR(rebuilt.xty[i], down.xty[i],
                1e-10 * std::max(1.0, std::abs(rebuilt.xty[i])));
  }
  EXPECT_NEAR(rebuilt.yty, down.yty, 1e-10 * std::max(1.0, rebuilt.yty));
  // Symmetry must survive the downdate exactly.
  for (size_t i = 0; i < down.gram.rows(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      EXPECT_EQ(down.gram(i, j), down.gram(j, i));
    }
  }
}

TEST(SufficientStatsTest, SquareLossFromStatsMatchesLossEvaluate) {
  const data::Dataset dataset = MakeRegression(150, 6, 6);
  const SufficientStats stats = SufficientStats::Build(dataset);
  random::Rng rng(7);
  linalg::Vector h(dataset.num_features());
  for (size_t j = 0; j < h.size(); ++j) {
    h[j] = random::SampleNormal(rng, 0.0, 1.0);
  }
  for (double l2 : {0.0, 0.05, 1.0}) {
    const SquareLoss loss(l2);
    const double want = loss.Evaluate(h, dataset);
    const double got = SquareLossFromStats(stats, h, l2);
    EXPECT_NEAR(want, got, 1e-10 * std::max(1.0, std::abs(want)));
  }
}

TEST(SufficientStatsCacheTest, HitReturnsExactObjectOfMiss) {
  SufficientStatsCache cache(8);
  const data::Dataset dataset = MakeRegression(100, 5, 8);
  const auto cold = cache.GetOrBuild(dataset);
  const auto warm = cache.GetOrBuild(dataset);
  EXPECT_EQ(cold.get(), warm.get()) << "hit must return the cached object";
  const auto counters = cache.counters();
  EXPECT_EQ(1u, counters.stats_misses);
  EXPECT_EQ(1u, counters.stats_hits);
  // And the cached object is exactly what a from-scratch build computes.
  const SufficientStats fresh = SufficientStats::Build(dataset);
  EXPECT_EQ(fresh.gram, cold->gram);
  EXPECT_EQ(fresh.xty, cold->xty);
  EXPECT_EQ(fresh.yty, cold->yty);
}

TEST(SufficientStatsCacheTest, FactorMemoizedPerDatasetAndL2) {
  SufficientStatsCache cache(8);
  const data::Dataset dataset = MakeRegression(100, 5, 9);
  const auto stats = cache.GetOrBuild(dataset);
  const auto f1 = cache.FactorFor(*stats, 0.1);
  const auto f2 = cache.FactorFor(*stats, 0.1);
  const auto f3 = cache.FactorFor(*stats, 0.2);
  ASSERT_TRUE(f1.ok() && f2.ok() && f3.ok());
  EXPECT_EQ(f1->get(), f2->get());
  EXPECT_NE(f1->get(), f3->get()) << "distinct l2 must factor separately";
  const auto counters = cache.counters();
  EXPECT_EQ(1u, counters.factor_hits);
  EXPECT_EQ(2u, counters.factor_misses);
}

TEST(SufficientStatsCacheTest, DowndatedStatsNeverCached) {
  SufficientStatsCache cache(8);
  const data::Dataset dataset = MakeRegression(100, 5, 10);
  const auto stats = cache.GetOrBuild(dataset);
  const SufficientStats down = stats->Downdate(dataset, {1, 2, 3});
  const auto f1 = cache.FactorFor(down, 0.1);
  const auto f2 = cache.FactorFor(down, 0.1);
  ASSERT_TRUE(f1.ok() && f2.ok());
  EXPECT_NE(f1->get(), f2->get());
  EXPECT_EQ(0u, cache.counters().factor_hits);
}

TEST(SufficientStatsCacheTest, FifoEvictionDropsStatsAndFactors) {
  SufficientStatsCache cache(2);
  const data::Dataset d1 = MakeRegression(60, 4, 11);
  const data::Dataset d2 = MakeRegression(60, 4, 12);
  const data::Dataset d3 = MakeRegression(60, 4, 13);
  const auto s1 = cache.GetOrBuild(d1);
  ASSERT_TRUE(cache.FactorFor(*s1, 0.1).ok());
  cache.GetOrBuild(d2);
  cache.GetOrBuild(d3);  // evicts d1 (FIFO) and its factor
  cache.GetOrBuild(d1);
  const auto counters = cache.counters();
  EXPECT_EQ(4u, counters.stats_misses) << "d1 must rebuild after eviction";
  ASSERT_TRUE(cache.FactorFor(*s1, 0.1).ok());
  // d1's factor was dropped with its stats entry; the re-factor is a miss
  // (the old shared_ptr stats object is no longer the cached entry).
  EXPECT_EQ(0u, counters.factor_hits);
}

TEST(SufficientStatsCacheTest, SingularSystemReportsFailedPrecondition) {
  // Duplicate column => singular Gram with l2 = 0.
  linalg::Matrix features(10, 2);
  linalg::Vector targets(10);
  random::Rng rng(14);
  for (size_t i = 0; i < 10; ++i) {
    features(i, 0) = random::SampleNormal(rng, 0.0, 1.0);
    features(i, 1) = features(i, 0);
    targets[i] = random::SampleNormal(rng, 0.0, 1.0);
  }
  auto dataset = data::Dataset::Create(std::move(features),
                                       std::move(targets),
                                       data::TaskType::kRegression);
  ASSERT_TRUE(dataset.ok());
  const SufficientStats stats = SufficientStats::Build(dataset.value());
  const auto solved = SolveNormalEquations(stats, 0.0);
  ASSERT_FALSE(solved.ok());
  EXPECT_EQ(StatusCode::kFailedPrecondition, solved.status().code());
  // Regularization rescues it.
  EXPECT_TRUE(SolveNormalEquations(stats, 0.1).ok());
}

TEST(TrainerStatsCacheTest, CachedTrainingBitIdenticalToUncached) {
  const data::Dataset dataset = MakeRegression(250, 8, 15);
  SufficientStatsCache cache(8);
  for (double l2 : {0.0, 0.01, 0.5}) {
    const auto uncached = TrainLinearRegression(dataset, l2, nullptr);
    const auto cold = TrainLinearRegression(dataset, l2, &cache);
    const auto warm = TrainLinearRegression(dataset, l2, &cache);
    ASSERT_TRUE(uncached.ok() && cold.ok() && warm.ok());
    EXPECT_EQ(uncached->model.coefficients(), cold->model.coefficients());
    EXPECT_EQ(cold->model.coefficients(), warm->model.coefficients());
    EXPECT_EQ(uncached->final_loss, cold->final_loss);
    EXPECT_EQ(cold->final_loss, warm->final_loss);
  }
  // Three l2 values, two calls each through the cache: stats built once.
  EXPECT_EQ(1u, cache.counters().stats_misses);
  EXPECT_EQ(3u, cache.counters().factor_misses);
  EXPECT_EQ(3u, cache.counters().factor_hits);
}

TEST(TrainerStatsCacheTest, FromStatsMatchesDatasetTraining) {
  const data::Dataset dataset = MakeRegression(250, 8, 16);
  const SufficientStats stats = SufficientStats::Build(dataset);
  const auto direct = TrainLinearRegression(dataset, 0.05, nullptr);
  const auto from_stats = TrainLinearRegressionFromStats(stats, 0.05, nullptr);
  ASSERT_TRUE(direct.ok() && from_stats.ok());
  const auto& a = direct->model.coefficients();
  const auto& b = from_stats->model.coefficients();
  ASSERT_EQ(a.size(), b.size());
  // Identical solve path => identical coefficients; final_loss differs only
  // by the O(d^2) loss expansion's rounding.
  for (size_t j = 0; j < a.size(); ++j) EXPECT_EQ(a[j], b[j]);
  EXPECT_NEAR(direct->final_loss, from_stats->final_loss,
              1e-10 * std::max(1.0, direct->final_loss));
}

}  // namespace
}  // namespace mbp::ml

#include "ml/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mbp::ml {
namespace {

data::Dataset RegressionData() {
  linalg::Matrix features{{1.0}, {2.0}, {3.0}};
  linalg::Vector targets{2.0, 4.0, 7.0};
  return data::Dataset::Create(std::move(features), std::move(targets),
                               data::TaskType::kRegression)
      .value();
}

data::Dataset ClassificationData() {
  linalg::Matrix features{{1.0}, {-2.0}, {3.0}, {-0.5}};
  linalg::Vector targets{1.0, -1.0, -1.0, 1.0};
  return data::Dataset::Create(std::move(features), std::move(targets),
                               data::TaskType::kBinaryClassification)
      .value();
}

TEST(MetricsTest, MeanSquaredError) {
  const LinearModel model(ModelKind::kLinearRegression,
                          linalg::Vector{2.0});
  // Predictions 2, 4, 6 vs targets 2, 4, 7: MSE = 1/3.
  EXPECT_NEAR(MeanSquaredError(model, RegressionData()), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(RootMeanSquaredError(model, RegressionData()),
              std::sqrt(1.0 / 3.0), 1e-12);
}

TEST(MetricsTest, MisclassificationRateAndAccuracy) {
  const LinearModel model(ModelKind::kLogisticRegression,
                          linalg::Vector{1.0});
  // sign(x): +, -, +, - vs labels +, -, -, +: 2 of 4 wrong.
  EXPECT_DOUBLE_EQ(MisclassificationRate(model, ClassificationData()), 0.5);
  EXPECT_DOUBLE_EQ(Accuracy(model, ClassificationData()), 0.5);
}

TEST(MetricsTest, PerfectClassifier) {
  linalg::Matrix features{{1.0}, {-1.0}};
  const data::Dataset data =
      data::Dataset::Create(std::move(features), linalg::Vector{1.0, -1.0},
                            data::TaskType::kBinaryClassification)
          .value();
  const LinearModel model(ModelKind::kLinearSvm, linalg::Vector{3.0});
  EXPECT_DOUBLE_EQ(MisclassificationRate(model, data), 0.0);
}

TEST(MetricsTest, RSquaredPerfectFitIsOne) {
  linalg::Matrix features{{1.0}, {2.0}, {3.0}};
  const data::Dataset data =
      data::Dataset::Create(std::move(features),
                            linalg::Vector{2.0, 4.0, 6.0},
                            data::TaskType::kRegression)
          .value();
  const LinearModel model(ModelKind::kLinearRegression,
                          linalg::Vector{2.0});
  EXPECT_NEAR(RSquared(model, data), 1.0, 1e-12);
}

TEST(MetricsTest, RSquaredMeanPredictorIsZero) {
  // A model predicting the target mean everywhere has R^2 = 0; a constant
  // feature makes that expressible.
  linalg::Matrix features{{1.0}, {1.0}, {1.0}};
  const data::Dataset data =
      data::Dataset::Create(std::move(features),
                            linalg::Vector{1.0, 2.0, 3.0},
                            data::TaskType::kRegression)
          .value();
  const LinearModel model(ModelKind::kLinearRegression,
                          linalg::Vector{2.0});
  EXPECT_NEAR(RSquared(model, data), 0.0, 1e-12);
}

TEST(MetricsTest, MeanAbsoluteError) {
  const LinearModel model(ModelKind::kLinearRegression,
                          linalg::Vector{2.0});
  // Predictions 2, 4, 6 vs targets 2, 4, 7 -> MAE = 1/3.
  EXPECT_NEAR(MeanAbsoluteError(model, RegressionData()), 1.0 / 3.0,
              1e-12);
}

TEST(AucTest, PerfectRankingIsOne) {
  // Positive scores strictly above negative scores.
  linalg::Matrix features{{3.0}, {2.0}, {-1.0}, {-2.0}};
  const data::Dataset data =
      data::Dataset::Create(std::move(features),
                            linalg::Vector{1.0, 1.0, -1.0, -1.0},
                            data::TaskType::kBinaryClassification)
          .value();
  const LinearModel model(ModelKind::kLogisticRegression,
                          linalg::Vector{1.0});
  auto auc = AreaUnderRoc(model, data);
  ASSERT_TRUE(auc.ok());
  EXPECT_DOUBLE_EQ(*auc, 1.0);
}

TEST(AucTest, ReversedRankingIsZero) {
  linalg::Matrix features{{3.0}, {2.0}, {-1.0}, {-2.0}};
  const data::Dataset data =
      data::Dataset::Create(std::move(features),
                            linalg::Vector{-1.0, -1.0, 1.0, 1.0},
                            data::TaskType::kBinaryClassification)
          .value();
  const LinearModel model(ModelKind::kLogisticRegression,
                          linalg::Vector{1.0});
  auto auc = AreaUnderRoc(model, data);
  ASSERT_TRUE(auc.ok());
  EXPECT_DOUBLE_EQ(*auc, 0.0);
}

TEST(AucTest, TiedScoresContributeHalf) {
  // All scores identical: AUC must be exactly 0.5.
  linalg::Matrix features{{1.0}, {1.0}, {1.0}, {1.0}};
  const data::Dataset data =
      data::Dataset::Create(std::move(features),
                            linalg::Vector{1.0, -1.0, 1.0, -1.0},
                            data::TaskType::kBinaryClassification)
          .value();
  const LinearModel model(ModelKind::kLogisticRegression,
                          linalg::Vector{1.0});
  auto auc = AreaUnderRoc(model, data);
  ASSERT_TRUE(auc.ok());
  EXPECT_DOUBLE_EQ(*auc, 0.5);
}

TEST(AucTest, PartialOverlapKnownValue) {
  // Scores: pos {3, 1}, neg {2, 0}. Pairs: (3>2),(3>0),(1<2),(1>0)
  // -> 3 of 4 -> AUC = 0.75.
  linalg::Matrix features{{3.0}, {1.0}, {2.0}, {0.0}};
  const data::Dataset data =
      data::Dataset::Create(std::move(features),
                            linalg::Vector{1.0, 1.0, -1.0, -1.0},
                            data::TaskType::kBinaryClassification)
          .value();
  const LinearModel model(ModelKind::kLogisticRegression,
                          linalg::Vector{1.0});
  auto auc = AreaUnderRoc(model, data);
  ASSERT_TRUE(auc.ok());
  EXPECT_DOUBLE_EQ(*auc, 0.75);
}

TEST(AucTest, RejectsDegenerateInputs) {
  const LinearModel model(ModelKind::kLogisticRegression,
                          linalg::Vector{1.0});
  EXPECT_FALSE(AreaUnderRoc(model, RegressionData()).ok());
  linalg::Matrix features{{1.0}, {2.0}};
  const data::Dataset one_class =
      data::Dataset::Create(std::move(features),
                            linalg::Vector{1.0, 1.0},
                            data::TaskType::kBinaryClassification)
          .value();
  EXPECT_FALSE(AreaUnderRoc(model, one_class).ok());
}

TEST(ModelTest, ScoreAndPredictLabel) {
  const LinearModel model(ModelKind::kLogisticRegression,
                          linalg::Vector{1.0, -2.0});
  const double x[2] = {3.0, 1.0};
  EXPECT_DOUBLE_EQ(model.Score(x), 1.0);
  EXPECT_DOUBLE_EQ(model.PredictLabel(x), 1.0);
  const double y[2] = {0.0, 1.0};
  EXPECT_DOUBLE_EQ(model.PredictLabel(y), -1.0);
}

TEST(ModelTest, ScoreAllMatchesPerExampleScores) {
  const LinearModel model(ModelKind::kLinearRegression,
                          linalg::Vector{2.0});
  const linalg::Vector scores = model.ScoreAll(RegressionData());
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_DOUBLE_EQ(scores[0], 2.0);
  EXPECT_DOUBLE_EQ(scores[2], 6.0);
}

TEST(ModelTest, KindNames) {
  EXPECT_EQ(ModelKindToString(ModelKind::kLinearRegression),
            "linear_regression");
  EXPECT_EQ(ModelKindToString(ModelKind::kLogisticRegression),
            "logistic_regression");
  EXPECT_EQ(ModelKindToString(ModelKind::kLinearSvm), "linear_svm");
}

}  // namespace
}  // namespace mbp::ml

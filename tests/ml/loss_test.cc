#include "ml/loss.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "linalg/vector_ops.h"
#include "random/distributions.h"
#include "random/rng.h"

namespace mbp::ml {
namespace {

data::Dataset TinyRegression() {
  linalg::Matrix features{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  linalg::Vector targets{1.0, 2.0, 3.0};
  return data::Dataset::Create(std::move(features), std::move(targets),
                               data::TaskType::kRegression)
      .value();
}

data::Dataset TinyClassification() {
  linalg::Matrix features{{1.0, 0.5}, {-1.0, 0.2}, {2.0, -1.0},
                          {-1.5, -0.3}};
  linalg::Vector targets{1.0, -1.0, 1.0, -1.0};
  return data::Dataset::Create(std::move(features), std::move(targets),
                               data::TaskType::kBinaryClassification)
      .value();
}

data::Dataset RandomClassification(size_t n, size_t d, uint64_t seed) {
  random::Rng rng(seed);
  linalg::Matrix features(n, d);
  linalg::Vector targets(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      features(i, j) = random::SampleStandardNormal(rng);
    }
    targets[i] = rng.NextDouble() < 0.5 ? -1.0 : 1.0;
  }
  return data::Dataset::Create(std::move(features), std::move(targets),
                               data::TaskType::kBinaryClassification)
      .value();
}

// ------------------------------------------------------------- values

TEST(SquareLossTest, ZeroAtPerfectFit) {
  // Targets realized by h = (1, 2): y = h.x exactly.
  const SquareLoss loss;
  EXPECT_NEAR(loss.Evaluate(linalg::Vector{1.0, 2.0}, TinyRegression()),
              0.0, 1e-15);
}

TEST(SquareLossTest, KnownValue) {
  // h = 0: residuals are the targets; loss = (1+4+9) / (2*3).
  const SquareLoss loss;
  EXPECT_NEAR(loss.Evaluate(linalg::Vector(2), TinyRegression()),
              14.0 / 6.0, 1e-12);
}

TEST(SquareLossTest, RegularizationAddsL2Term) {
  const SquareLoss plain(0.0);
  const SquareLoss regularized(0.5);
  const linalg::Vector h{1.0, 2.0};
  EXPECT_NEAR(regularized.Evaluate(h, TinyRegression()),
              plain.Evaluate(h, TinyRegression()) + 0.5 * 5.0, 1e-12);
}

TEST(LogisticLossTest, ZeroModelGivesLog2) {
  const LogisticLoss loss;
  EXPECT_NEAR(loss.Evaluate(linalg::Vector(2), TinyClassification()),
              std::log(2.0), 1e-12);
}

TEST(LogisticLossTest, ConfidentCorrectModelHasSmallLoss) {
  const LogisticLoss loss;
  // h aligned with the separable structure of TinyClassification.
  EXPECT_LT(loss.Evaluate(linalg::Vector{10.0, 0.0}, TinyClassification()),
            0.01);
}

TEST(SmoothedHingeTest, ZeroLossOutsideMargin) {
  const SmoothedHingeLoss loss(0.0, 1.0);
  EXPECT_NEAR(loss.Evaluate(linalg::Vector{100.0, 0.0},
                            TinyClassification()),
              0.0, 1e-12);
}

TEST(SmoothedHingeTest, LinearRegimeValue) {
  // One example x=(1), y=+1, h=-2: margin -2, gap 3 >= gamma=1
  // -> loss = 3 - 0.5 = 2.5.
  linalg::Matrix features{{1.0}};
  const data::Dataset one =
      data::Dataset::Create(std::move(features), linalg::Vector{1.0},
                            data::TaskType::kBinaryClassification)
          .value();
  const SmoothedHingeLoss loss(0.0, 1.0);
  EXPECT_NEAR(loss.Evaluate(linalg::Vector{-2.0}, one), 2.5, 1e-12);
}

TEST(SmoothedHingeTest, QuadraticRegimeValue) {
  // margin 0.5, gap 0.5 < gamma=1 -> loss = 0.25/2 = 0.125.
  linalg::Matrix features{{0.5}};
  const data::Dataset one =
      data::Dataset::Create(std::move(features), linalg::Vector{1.0},
                            data::TaskType::kBinaryClassification)
          .value();
  const SmoothedHingeLoss loss(0.0, 1.0);
  EXPECT_NEAR(loss.Evaluate(linalg::Vector{1.0}, one), 0.125, 1e-12);
}

TEST(ZeroOneLossTest, CountsMistakes) {
  const ZeroOneLoss loss;
  // h = (1, 0): predictions sign(x0): +,-,+,- -> all correct.
  EXPECT_DOUBLE_EQ(loss.Evaluate(linalg::Vector{1.0, 0.0},
                                 TinyClassification()),
                   0.0);
  // h = (-1, 0): all wrong.
  EXPECT_DOUBLE_EQ(loss.Evaluate(linalg::Vector{-1.0, 0.0},
                                 TinyClassification()),
                   1.0);
}

TEST(ZeroOneLossTest, IsNotDifferentiable) {
  const ZeroOneLoss loss;
  EXPECT_FALSE(loss.differentiable());
  EXPECT_FALSE(loss.strictly_convex());
}

TEST(LossDeathTest, GradientOnNonDifferentiableAborts) {
  const ZeroOneLoss loss;
  EXPECT_DEATH(
      { (void)loss.Gradient(linalg::Vector(2), TinyClassification()); },
      "non-differentiable");
}

TEST(LossFactoryTest, ProducesEveryKind) {
  EXPECT_EQ(MakeLoss(LossKind::kSquare, 0.1)->kind(), LossKind::kSquare);
  EXPECT_EQ(MakeLoss(LossKind::kLogistic)->kind(), LossKind::kLogistic);
  EXPECT_EQ(MakeLoss(LossKind::kSmoothedHinge)->kind(),
            LossKind::kSmoothedHinge);
  EXPECT_EQ(MakeLoss(LossKind::kZeroOne)->kind(), LossKind::kZeroOne);
  EXPECT_DOUBLE_EQ(MakeLoss(LossKind::kSquare, 0.25)->l2_regularization(),
                   0.25);
}

TEST(LossFactoryTest, NamesAreStable) {
  EXPECT_EQ(LossKindToString(LossKind::kSquare), "square");
  EXPECT_EQ(LossKindToString(LossKind::kZeroOne), "zero_one");
}

// ----------------------------------------------- finite-difference checks

struct GradientCase {
  LossKind kind;
  double l2;
};

class GradientCheckTest : public ::testing::TestWithParam<GradientCase> {};

TEST_P(GradientCheckTest, GradientMatchesFiniteDifferences) {
  const GradientCase param = GetParam();
  const std::unique_ptr<Loss> loss = MakeLoss(param.kind, param.l2);
  const data::Dataset data = RandomClassification(60, 5, 123);
  random::Rng rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    const linalg::Vector h = random::SampleNormalVector(rng, 5, 0.0, 1.0);
    const linalg::Vector grad = loss->Gradient(h, data);
    const double eps = 1e-6;
    for (size_t j = 0; j < h.size(); ++j) {
      linalg::Vector plus = h, minus = h;
      plus[j] += eps;
      minus[j] -= eps;
      const double numeric =
          (loss->Evaluate(plus, data) - loss->Evaluate(minus, data)) /
          (2.0 * eps);
      EXPECT_NEAR(grad[j], numeric, 1e-5)
          << loss->name() << " coordinate " << j;
    }
  }
}

TEST_P(GradientCheckTest, LossIsConvexAlongRandomSegments) {
  const GradientCase param = GetParam();
  const std::unique_ptr<Loss> loss = MakeLoss(param.kind, param.l2);
  const data::Dataset data = RandomClassification(40, 4, 321);
  random::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const linalg::Vector a = random::SampleNormalVector(rng, 4, 0.0, 2.0);
    const linalg::Vector b = random::SampleNormalVector(rng, 4, 0.0, 2.0);
    const double t = rng.NextDouble();
    const linalg::Vector mid = linalg::AddScaled(
        linalg::Scaled(a, 1.0 - t), t, b);
    EXPECT_LE(loss->Evaluate(mid, data),
              (1.0 - t) * loss->Evaluate(a, data) +
                  t * loss->Evaluate(b, data) + 1e-9)
        << loss->name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Losses, GradientCheckTest,
    ::testing::Values(GradientCase{LossKind::kSquare, 0.0},
                      GradientCase{LossKind::kSquare, 0.3},
                      GradientCase{LossKind::kLogistic, 0.0},
                      GradientCase{LossKind::kLogistic, 0.1},
                      GradientCase{LossKind::kSmoothedHinge, 0.0},
                      GradientCase{LossKind::kSmoothedHinge, 0.2}));

// Hessian checks for the Newton-capable losses.
class HessianCheckTest : public ::testing::TestWithParam<GradientCase> {};

TEST_P(HessianCheckTest, HessianMatchesGradientDifferences) {
  const GradientCase param = GetParam();
  const std::unique_ptr<Loss> loss = MakeLoss(param.kind, param.l2);
  const data::Dataset data = RandomClassification(50, 4, 55);
  random::Rng rng(3);
  const linalg::Vector h = random::SampleNormalVector(rng, 4, 0.0, 0.5);
  const linalg::Matrix hessian = loss->Hessian(h, data);
  const double eps = 1e-5;
  for (size_t j = 0; j < 4; ++j) {
    linalg::Vector plus = h, minus = h;
    plus[j] += eps;
    minus[j] -= eps;
    const linalg::Vector grad_diff = linalg::Scaled(
        linalg::Subtract(loss->Gradient(plus, data),
                         loss->Gradient(minus, data)),
        1.0 / (2.0 * eps));
    for (size_t i = 0; i < 4; ++i) {
      EXPECT_NEAR(hessian(i, j), grad_diff[i], 1e-4) << loss->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    NewtonLosses, HessianCheckTest,
    ::testing::Values(GradientCase{LossKind::kSquare, 0.0},
                      GradientCase{LossKind::kSquare, 0.2},
                      GradientCase{LossKind::kLogistic, 0.0},
                      GradientCase{LossKind::kLogistic, 0.3}));

TEST(LogisticLossTest, NumericallyStableAtExtremeMargins) {
  linalg::Matrix features{{1.0}};
  const data::Dataset one =
      data::Dataset::Create(std::move(features), linalg::Vector{1.0},
                            data::TaskType::kBinaryClassification)
          .value();
  const LogisticLoss loss;
  // Huge positive margin -> ~0 loss; huge negative margin -> ~|margin|.
  EXPECT_NEAR(loss.Evaluate(linalg::Vector{1000.0}, one), 0.0, 1e-12);
  EXPECT_NEAR(loss.Evaluate(linalg::Vector{-1000.0}, one), 1000.0, 1e-9);
  EXPECT_TRUE(std::isfinite(
      loss.Gradient(linalg::Vector{-1000.0}, one)[0]));
}

}  // namespace
}  // namespace mbp::ml

#include "ml/sparse_trainer.h"

#include <gtest/gtest.h>

#include "linalg/vector_ops.h"
#include "ml/loss.h"
#include "ml/metrics.h"
#include "ml/trainer.h"
#include "random/distributions.h"
#include "random/rng.h"

namespace mbp::ml {
namespace {

// Sparse classification data: bag-of-words-ish features where each
// example activates a few of d coordinates; labels follow a planted
// hyperplane with optional flip noise.
data::SparseDataset MakeSparseData(size_t n, size_t d, double density,
                                   double flip, uint64_t seed) {
  random::Rng rng(seed);
  const linalg::Vector hyperplane = random::SampleUnitSphere(rng, d);
  std::vector<linalg::SparseEntry> entries;
  linalg::Vector labels(n);
  for (size_t i = 0; i < n; ++i) {
    double score = 0.0;
    for (size_t j = 0; j < d; ++j) {
      if (rng.NextDouble() < density) {
        const double value = random::SampleStandardNormal(rng);
        entries.push_back({i, j, value});
        score += value * hyperplane[j];
      }
    }
    const bool flipped = rng.NextDouble() < flip;
    labels[i] = ((score > 0.0) != flipped) ? 1.0 : -1.0;
  }
  return data::SparseDataset::Create(
             linalg::SparseMatrix::FromTriplets(n, d, std::move(entries))
                 .value(),
             std::move(labels), data::TaskType::kBinaryClassification)
      .value();
}

TEST(SparseLogisticTest, LearnsSeparableSparseData) {
  const data::SparseDataset data = MakeSparseData(400, 50, 0.1, 0.0, 1);
  TrainOptions options;
  options.max_iterations = 300;
  auto result = TrainLogisticSparse(data, 0.001, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(SparseMisclassificationRate(result->model.coefficients(), data),
            0.05);
}

TEST(SparseLogisticTest, MatchesDenseTrainerOnDensifiedData) {
  // Same objective, sparse vs dense representation: the optima coincide.
  const data::SparseDataset sparse = MakeSparseData(200, 15, 0.3, 0.05, 2);
  const data::Dataset dense = sparse.ToDense().value();
  TrainOptions options;
  options.max_iterations = 2000;
  options.gradient_tolerance = 1e-8;
  auto sparse_result = TrainLogisticSparse(sparse, 0.05, options);
  const LogisticLoss loss(0.05);
  auto dense_result =
      TrainNewton(loss, dense, ModelKind::kLogisticRegression);
  ASSERT_TRUE(sparse_result.ok() && dense_result.ok());
  EXPECT_NEAR(sparse_result->final_loss, dense_result->final_loss, 1e-4);
  EXPECT_LT(
      linalg::Norm2(linalg::Subtract(sparse_result->model.coefficients(),
                                     dense_result->model.coefficients())),
      0.05);
}

TEST(SparseLogisticTest, SparseLossMatchesDenseLoss) {
  const data::SparseDataset sparse = MakeSparseData(100, 10, 0.4, 0.0, 3);
  const data::Dataset dense = sparse.ToDense().value();
  random::Rng rng(4);
  const LogisticLoss dense_loss(0.1);
  for (int trial = 0; trial < 5; ++trial) {
    const linalg::Vector h = random::SampleNormalVector(rng, 10, 0.0, 1.0);
    EXPECT_NEAR(SparseLogisticLoss(h, sparse, 0.1),
                dense_loss.Evaluate(h, dense), 1e-12);
  }
}

TEST(SparseSvmTest, LearnsSeparableSparseData) {
  const data::SparseDataset data = MakeSparseData(300, 40, 0.15, 0.0, 5);
  TrainOptions options;
  options.max_iterations = 500;
  auto result = TrainSvmSparse(data, 0.001, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->model.kind(), ModelKind::kLinearSvm);
  EXPECT_LT(SparseMisclassificationRate(result->model.coefficients(), data),
            0.08);
}

TEST(SparseTrainerTest, RejectsRegressionData) {
  auto features =
      linalg::SparseMatrix::FromTriplets(2, 2, {{0, 0, 1.0}, {1, 1, 1.0}});
  ASSERT_TRUE(features.ok());
  const data::SparseDataset data =
      data::SparseDataset::Create(std::move(features).value(),
                                  linalg::Vector{0.5, 1.5},
                                  data::TaskType::kRegression)
          .value();
  EXPECT_FALSE(TrainLogisticSparse(data, 0.1).ok());
  EXPECT_FALSE(TrainSvmSparse(data, 0.1).ok());
}

TEST(SparseTrainerTest, HighDimensionalTrainingIsTractable) {
  // d = 5000 with ~0.2% density: a dense pass would touch 5000 columns
  // per row; the sparse trainer only touches ~10.
  const data::SparseDataset data = MakeSparseData(500, 5000, 0.002, 0.0, 6);
  TrainOptions options;
  options.max_iterations = 150;
  auto result = TrainLogisticSparse(data, 0.001, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(SparseMisclassificationRate(result->model.coefficients(), data),
            0.25);
}

}  // namespace
}  // namespace mbp::ml

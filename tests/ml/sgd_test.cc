#include "ml/sgd.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "linalg/vector_ops.h"
#include "ml/metrics.h"
#include "ml/trainer.h"

namespace mbp::ml {
namespace {

data::Dataset RegressionData(size_t n = 800) {
  data::Simulated1Options options;
  options.num_examples = n;
  options.num_features = 6;
  options.noise_stddev = 0.05;
  options.seed = 12;
  return data::GenerateSimulated1(options).value();
}

data::Dataset ClassificationData(size_t n = 800) {
  data::Simulated2Options options;
  options.num_examples = n;
  options.num_features = 6;
  options.seed = 13;
  return data::GenerateSimulated2(options).value();
}

TEST(TrainSgdTest, ApproachesClosedFormLeastSquares) {
  const data::Dataset data = RegressionData();
  const SquareLoss loss(1e-3);
  SgdOptions options;
  options.max_epochs = 60;
  options.initial_step = 0.05;
  options.gradient_tolerance = 1e-4;
  auto sgd = TrainSgd(loss, data, ModelKind::kLinearRegression, options);
  auto exact = TrainLinearRegression(data, 1e-3);
  ASSERT_TRUE(sgd.ok() && exact.ok());
  // The SGD solution is close to the exact minimizer in loss value.
  EXPECT_NEAR(sgd->final_loss, exact->final_loss,
              0.05 * (1.0 + exact->final_loss));
  EXPECT_LT(linalg::Norm2(linalg::Subtract(
                sgd->model.coefficients(), exact->model.coefficients())),
            0.1);
}

TEST(TrainSgdTest, LogisticMatchesNewtonLoss) {
  const data::Dataset data = ClassificationData();
  const LogisticLoss loss(0.01);
  SgdOptions options;
  options.max_epochs = 80;
  options.initial_step = 0.5;
  options.gradient_tolerance = 1e-3;
  auto sgd = TrainSgd(loss, data, ModelKind::kLogisticRegression, options);
  auto newton = TrainNewton(loss, data, ModelKind::kLogisticRegression);
  ASSERT_TRUE(sgd.ok() && newton.ok());
  EXPECT_NEAR(sgd->final_loss, newton->final_loss, 0.02);
}

TEST(TrainSgdTest, SvmLearnsSeparableData) {
  const data::Dataset data = ClassificationData();
  const SmoothedHingeLoss loss(0.01);
  SgdOptions options;
  options.max_epochs = 50;
  options.initial_step = 0.2;
  auto sgd = TrainSgd(loss, data, ModelKind::kLinearSvm, options);
  ASSERT_TRUE(sgd.ok());
  // Simulated2 has 5% label noise; a good separator gets below 10%.
  EXPECT_LT(MisclassificationRate(sgd->model, data), 0.10);
}

TEST(TrainSgdTest, DeterministicForSeed) {
  const data::Dataset data = RegressionData(200);
  const SquareLoss loss(1e-3);
  SgdOptions options;
  options.max_epochs = 5;
  options.gradient_tolerance = 0.0;  // fixed epoch count
  auto a = TrainSgd(loss, data, ModelKind::kLinearRegression, options);
  auto b = TrainSgd(loss, data, ModelKind::kLinearRegression, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->model.coefficients(), b->model.coefficients());
}

TEST(TrainSgdTest, DifferentSeedsDiffer) {
  const data::Dataset data = RegressionData(200);
  const SquareLoss loss(1e-3);
  SgdOptions a_options, b_options;
  a_options.max_epochs = b_options.max_epochs = 2;
  a_options.gradient_tolerance = b_options.gradient_tolerance = 0.0;
  a_options.seed = 1;
  b_options.seed = 2;
  auto a = TrainSgd(loss, data, ModelKind::kLinearRegression, a_options);
  auto b = TrainSgd(loss, data, ModelKind::kLinearRegression, b_options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(a->model.coefficients() == b->model.coefficients());
}

TEST(TrainSgdTest, BatchSizeOneWorks) {
  const data::Dataset data = RegressionData(200);
  const SquareLoss loss(1e-3);
  SgdOptions options;
  options.batch_size = 1;
  options.max_epochs = 20;
  options.initial_step = 0.02;
  auto result = TrainSgd(loss, data, ModelKind::kLinearRegression, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->final_loss, 0.1);
}

TEST(TrainSgdTest, BatchLargerThanDatasetIsFullBatch) {
  const data::Dataset data = RegressionData(100);
  const SquareLoss loss(1e-3);
  SgdOptions options;
  options.batch_size = 10000;
  options.max_epochs = 100;
  options.initial_step = 0.2;
  auto result = TrainSgd(loss, data, ModelKind::kLinearRegression, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->final_loss, 0.05);
}

TEST(TrainSgdTest, RejectsBadInputs) {
  const data::Dataset data = RegressionData(50);
  const ZeroOneLoss zero_one;
  EXPECT_FALSE(TrainSgd(zero_one, data, ModelKind::kLinearSvm).ok());
  const SquareLoss loss;
  SgdOptions options;
  options.batch_size = 0;
  EXPECT_FALSE(
      TrainSgd(loss, data, ModelKind::kLinearRegression, options).ok());
}

TEST(TrainSgdTest, ConvergedFlagReflectsTolerance) {
  const data::Dataset data = RegressionData(400);
  const SquareLoss loss(1e-3);
  SgdOptions options;
  options.max_epochs = 200;
  options.initial_step = 0.1;
  options.gradient_tolerance = 1e-3;
  auto result = TrainSgd(loss, data, ModelKind::kLinearRegression, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_LT(result->iterations, 200u);
}

// Per-example gradient accumulation matches the full-batch gradient.
class ExampleGradientTest : public ::testing::TestWithParam<LossKind> {};

TEST_P(ExampleGradientTest, SumOfExampleGradientsIsFullGradient) {
  const data::Dataset data = ClassificationData(60);
  const std::unique_ptr<Loss> loss = MakeLoss(GetParam(), 0.0);
  linalg::Vector h(data.num_features());
  for (size_t j = 0; j < h.size(); ++j) {
    h[j] = 0.3 * static_cast<double>(j) - 0.7;
  }
  linalg::Vector accumulated(data.num_features());
  const double weight = 1.0 / static_cast<double>(data.num_examples());
  for (size_t i = 0; i < data.num_examples(); ++i) {
    loss->AccumulateExampleGradient(h, data.ExampleFeatures(i),
                                    data.Target(i), weight, accumulated);
  }
  const linalg::Vector full = loss->Gradient(h, data);
  for (size_t j = 0; j < h.size(); ++j) {
    EXPECT_NEAR(accumulated[j], full[j], 1e-10) << loss->name();
  }
}

INSTANTIATE_TEST_SUITE_P(DifferentiableLosses, ExampleGradientTest,
                         ::testing::Values(LossKind::kSquare,
                                           LossKind::kLogistic,
                                           LossKind::kSmoothedHinge));

}  // namespace
}  // namespace mbp::ml

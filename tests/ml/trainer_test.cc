#include "ml/trainer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "linalg/vector_ops.h"
#include "ml/metrics.h"

namespace mbp::ml {
namespace {

data::Dataset ExactLinearData() {
  // y = 2*x0 - 3*x1, noiseless, well-conditioned.
  linalg::Matrix features{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}, {2.0, -1.0},
                          {0.5, 0.25}};
  linalg::Vector targets(5);
  for (size_t i = 0; i < 5; ++i) {
    targets[i] = 2.0 * features(i, 0) - 3.0 * features(i, 1);
  }
  return data::Dataset::Create(std::move(features), std::move(targets),
                               data::TaskType::kRegression)
      .value();
}

data::Dataset SeparableClassification() {
  linalg::Matrix features{{2.0, 0.1},  {1.5, -0.2}, {3.0, 0.5},
                          {-2.0, 0.3}, {-1.0, -0.4}, {-2.5, 0.2}};
  linalg::Vector targets{1.0, 1.0, 1.0, -1.0, -1.0, -1.0};
  return data::Dataset::Create(std::move(features), std::move(targets),
                               data::TaskType::kBinaryClassification)
      .value();
}

TEST(TrainLinearRegressionTest, RecoversExactCoefficients) {
  auto result = TrainLinearRegression(ExactLinearData(), 0.0);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NEAR(result->model.coefficients()[0], 2.0, 1e-9);
  EXPECT_NEAR(result->model.coefficients()[1], -3.0, 1e-9);
  EXPECT_NEAR(result->final_loss, 0.0, 1e-12);
  EXPECT_TRUE(result->converged);
}

TEST(TrainLinearRegressionTest, RegularizationShrinksCoefficients) {
  auto plain = TrainLinearRegression(ExactLinearData(), 0.0);
  auto ridge = TrainLinearRegression(ExactLinearData(), 1.0);
  ASSERT_TRUE(plain.ok() && ridge.ok());
  EXPECT_LT(linalg::Norm2(ridge->model.coefficients()),
            linalg::Norm2(plain->model.coefficients()));
}

TEST(TrainLinearRegressionTest, SingularWithoutRegularization) {
  // Duplicate feature columns -> singular normal equations. Entries are
  // chosen so the Gram matrix is exactly representable, making the
  // factorization failure deterministic rather than rounding-dependent.
  // Power-of-two entries keep every Cholesky intermediate exact, so the
  // zero pivot is hit exactly.
  linalg::Matrix features{{2.0, 2.0}, {2.0, 2.0}};
  const data::Dataset data =
      data::Dataset::Create(std::move(features), linalg::Vector{1.0, 2.0},
                            data::TaskType::kRegression)
          .value();
  EXPECT_EQ(TrainLinearRegression(data, 0.0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(TrainLinearRegression(data, 0.01).ok());
}

TEST(TrainLinearRegressionTest, RejectsClassificationData) {
  EXPECT_EQ(TrainLinearRegression(SeparableClassification(), 0.0)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(TrainNewtonTest, LogisticSeparatesSeparableData) {
  const LogisticLoss loss(0.01);
  auto result = TrainNewton(loss, SeparableClassification(),
                            ModelKind::kLogisticRegression);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_DOUBLE_EQ(
      MisclassificationRate(result->model, SeparableClassification()), 0.0);
}

TEST(TrainNewtonTest, MatchesGradientDescentOptimum) {
  const LogisticLoss loss(0.1);
  const data::Dataset data = SeparableClassification();
  auto newton =
      TrainNewton(loss, data, ModelKind::kLogisticRegression);
  TrainOptions slow;
  slow.max_iterations = 5000;
  slow.gradient_tolerance = 1e-10;
  auto gd = TrainGradientDescent(loss, data,
                                 ModelKind::kLogisticRegression, slow);
  ASSERT_TRUE(newton.ok() && gd.ok());
  EXPECT_NEAR(newton->final_loss, gd->final_loss, 1e-6);
  // Strictly convex objective: the optima coincide.
  EXPECT_LT(linalg::Norm2(linalg::Subtract(newton->model.coefficients(),
                                           gd->model.coefficients())),
            1e-3);
}

TEST(TrainNewtonTest, NewtonUsesFarFewerIterations) {
  const LogisticLoss loss(0.1);
  auto newton = TrainNewton(loss, SeparableClassification(),
                            ModelKind::kLogisticRegression);
  TrainOptions slow;
  slow.max_iterations = 5000;
  slow.gradient_tolerance = 1e-10;
  auto gd = TrainGradientDescent(loss, SeparableClassification(),
                                 ModelKind::kLogisticRegression, slow);
  ASSERT_TRUE(newton.ok() && gd.ok());
  EXPECT_LT(newton->iterations, gd->iterations);
}

TEST(TrainGradientDescentTest, SvmSeparatesSeparableData) {
  const SmoothedHingeLoss loss(0.01);
  TrainOptions options;
  options.max_iterations = 2000;
  auto result = TrainGradientDescent(loss, SeparableClassification(),
                                     ModelKind::kLinearSvm, options);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(
      MisclassificationRate(result->model, SeparableClassification()), 0.0);
}

TEST(TrainGradientDescentTest, RejectsNonDifferentiableLoss) {
  const ZeroOneLoss loss;
  EXPECT_EQ(TrainGradientDescent(loss, SeparableClassification(),
                                 ModelKind::kLinearSvm)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(TrainOptimalModelTest, DispatchesAllModelKinds) {
  auto linreg = TrainOptimalModel(ModelKind::kLinearRegression,
                                  ExactLinearData(), 0.0);
  ASSERT_TRUE(linreg.ok());
  EXPECT_EQ(linreg->model.kind(), ModelKind::kLinearRegression);

  auto logreg = TrainOptimalModel(ModelKind::kLogisticRegression,
                                  SeparableClassification(), 0.05);
  ASSERT_TRUE(logreg.ok());
  EXPECT_EQ(logreg->model.kind(), ModelKind::kLogisticRegression);

  auto svm = TrainOptimalModel(ModelKind::kLinearSvm,
                               SeparableClassification(), 0.05);
  ASSERT_TRUE(svm.ok());
  EXPECT_EQ(svm->model.kind(), ModelKind::kLinearSvm);
}

TEST(TrainOptimalModelTest, MismatchedTaskRejected) {
  EXPECT_FALSE(TrainOptimalModel(ModelKind::kLogisticRegression,
                                 ExactLinearData(), 0.1)
                   .ok());
}

TEST(TrainOptimalModelTest, GradientNormIsSmallAtOptimum) {
  // The returned model is a true stationary point of λ.
  const data::Dataset data =
      data::GenerateSimulated2(
          {.num_examples = 400, .num_features = 5, .seed = 10})
          .value();
  auto result =
      TrainOptimalModel(ModelKind::kLogisticRegression, data, 0.05);
  ASSERT_TRUE(result.ok());
  const LogisticLoss loss(0.05);
  EXPECT_LT(linalg::NormInf(loss.Gradient(result->model.coefficients(),
                                          data)),
            1e-6);
}

TEST(TrainOptimalModelTest, Simulated1RecoveryEndToEnd) {
  // Closed-form least squares on Simulated1 recovers the planted
  // hyperplane up to noise.
  const data::Dataset data =
      data::GenerateSimulated1(
          {.num_examples = 2000, .num_features = 10, .noise_stddev = 0.01,
           .seed = 3})
          .value();
  auto result =
      TrainOptimalModel(ModelKind::kLinearRegression, data, 0.0);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(MeanSquaredError(result->model, data), 0.001);
  // Planted hyperplane is unit-norm.
  EXPECT_NEAR(linalg::Norm2(result->model.coefficients()), 1.0, 0.05);
}

TEST(TrainOptionsTest, MaxIterationsCapsWork) {
  const LogisticLoss loss(0.1);
  TrainOptions one_step;
  one_step.max_iterations = 1;
  auto result = TrainGradientDescent(loss, SeparableClassification(),
                                     ModelKind::kLogisticRegression,
                                     one_step);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->iterations, 1u);
  EXPECT_FALSE(result->converged);
}

TEST(TrainOptionsTest, LooseToleranceConvergesImmediately) {
  const LogisticLoss loss(0.1);
  TrainOptions loose;
  loose.gradient_tolerance = 1e6;  // any gradient passes
  auto result = TrainGradientDescent(loss, SeparableClassification(),
                                     ModelKind::kLogisticRegression,
                                     loose);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_EQ(result->iterations, 0u);
}

TEST(TrainOptionsTest, ZeroMaxIterationsReturnsOrigin) {
  const LogisticLoss loss(0.1);
  TrainOptions none;
  none.max_iterations = 0;
  auto result = TrainGradientDescent(loss, SeparableClassification(),
                                     ModelKind::kLogisticRegression, none);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(linalg::Norm2(result->model.coefficients()), 0.0);
}

TEST(TrainGradientDescentTest, TinyInitialStepStillDescends) {
  const LogisticLoss loss(0.1);
  TrainOptions tiny;
  tiny.initial_step = 1e-6;
  tiny.max_iterations = 10;
  auto result = TrainGradientDescent(loss, SeparableClassification(),
                                     ModelKind::kLogisticRegression, tiny);
  ASSERT_TRUE(result.ok());
  const LogisticLoss eval(0.1);
  EXPECT_LT(result->final_loss,
            eval.Evaluate(linalg::Vector(2), SeparableClassification()));
}

TEST(TrainingLossKindTest, MatchesTable2) {
  EXPECT_EQ(TrainingLossKind(ModelKind::kLinearRegression),
            LossKind::kSquare);
  EXPECT_EQ(TrainingLossKind(ModelKind::kLogisticRegression),
            LossKind::kLogistic);
  EXPECT_EQ(TrainingLossKind(ModelKind::kLinearSvm),
            LossKind::kSmoothedHinge);
}

}  // namespace
}  // namespace mbp::ml

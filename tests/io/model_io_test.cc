#include "io/model_io.h"

#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace mbp::io {
namespace {

class ModelIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }

  void WriteRaw(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(ModelIoTest, ModelRoundTripIsExact) {
  const ml::LinearModel model(
      ml::ModelKind::kLogisticRegression,
      linalg::Vector{0.1, -2.5e-7, 3.14159265358979311599796346854,
                     1e300});
  const std::string path = TempPath("model.mbp");
  ASSERT_TRUE(WriteModel(model, path).ok());
  auto loaded = ReadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->kind(), ml::ModelKind::kLogisticRegression);
  ASSERT_EQ(loaded->num_features(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(loaded->coefficients()[i], model.coefficients()[i])
        << "coefficient " << i;
  }
}

TEST_F(ModelIoTest, AllModelKindsRoundTrip) {
  for (ml::ModelKind kind :
       {ml::ModelKind::kLinearRegression, ml::ModelKind::kLogisticRegression,
        ml::ModelKind::kLinearSvm}) {
    const ml::LinearModel model(kind, linalg::Vector{1.0, 2.0});
    const std::string path = TempPath("kind.mbp");
    ASSERT_TRUE(WriteModel(model, path).ok());
    auto loaded = ReadModel(path);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded->kind(), kind);
  }
}

TEST_F(ModelIoTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadModel("/nonexistent/model.mbp").status().code(),
            StatusCode::kNotFound);
}

TEST_F(ModelIoTest, WrongHeaderIsRejected) {
  const std::string path = TempPath("wrong_header.mbp");
  WriteRaw(path, "mbp-model v99\nkind linear_svm\ndim 1\n1.0\n");
  EXPECT_EQ(ReadModel(path).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ModelIoTest, UnknownKindIsRejected) {
  const std::string path = TempPath("bad_kind.mbp");
  WriteRaw(path, "mbp-model v1\nkind neural_net\ndim 1\n1.0\n");
  auto loaded = ReadModel(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("neural_net"),
            std::string::npos);
}

TEST_F(ModelIoTest, TruncatedFileIsRejected) {
  const std::string path = TempPath("truncated.mbp");
  WriteRaw(path, "mbp-model v1\nkind linear_svm\ndim 3\n1.0\n2.0\n");
  auto loaded = ReadModel(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("truncated"),
            std::string::npos);
}

TEST_F(ModelIoTest, MalformedCoefficientIsRejected) {
  const std::string path = TempPath("garbage.mbp");
  WriteRaw(path, "mbp-model v1\nkind linear_svm\ndim 1\nnot_a_number\n");
  EXPECT_EQ(ReadModel(path).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ModelIoTest, BadDimIsRejected) {
  const std::string path = TempPath("bad_dim.mbp");
  WriteRaw(path, "mbp-model v1\nkind linear_svm\ndim 0\n");
  EXPECT_FALSE(ReadModel(path).ok());
  WriteRaw(path, "mbp-model v1\nkind linear_svm\ndim 2.5\n1.0\n2.0\n");
  EXPECT_FALSE(ReadModel(path).ok());
}

TEST_F(ModelIoTest, CrlfFilesAreAccepted) {
  const std::string path = TempPath("crlf.mbp");
  WriteRaw(path, "mbp-model v1\r\nkind linear_svm\r\ndim 1\r\n1.5\r\n");
  auto loaded = ReadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_DOUBLE_EQ(loaded->coefficients()[0], 1.5);
}

TEST_F(ModelIoTest, PricingRoundTripIsExact) {
  auto pricing = core::PiecewiseLinearPricing::Create(
      {{1.0, 10.0}, {2.5, 17.25}, {40.0, 99.999}});
  ASSERT_TRUE(pricing.ok());
  const std::string path = TempPath("pricing.mbp");
  ASSERT_TRUE(WritePricing(*pricing, path).ok());
  auto loaded = ReadPricing(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->points().size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(loaded->points()[i].x, pricing->points()[i].x);
    EXPECT_DOUBLE_EQ(loaded->points()[i].price,
                     pricing->points()[i].price);
  }
  // Behavioral equality, not just structural.
  for (double x : {0.5, 1.7, 30.0, 100.0}) {
    EXPECT_DOUBLE_EQ(loaded->PriceAtInverseNcp(x),
                     pricing->PriceAtInverseNcp(x));
  }
}

TEST_F(ModelIoTest, PricingValidationAppliesOnLoad) {
  // Decreasing x is structurally valid text but semantically invalid.
  const std::string path = TempPath("bad_pricing.mbp");
  WriteRaw(path, "mbp-pricing v1\npoints 2\n2.0 10.0\n1.0 20.0\n");
  EXPECT_EQ(ReadPricing(path).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ModelIoTest, PricingMalformedRowIsRejected) {
  const std::string path = TempPath("bad_row.mbp");
  WriteRaw(path, "mbp-pricing v1\npoints 1\n1.0 2.0 3.0\n");
  EXPECT_FALSE(ReadPricing(path).ok());
  WriteRaw(path, "mbp-pricing v1\npoints 1\n1.0\n");
  EXPECT_FALSE(ReadPricing(path).ok());
}

TEST_F(ModelIoTest, PricingMissingFileIsNotFound) {
  EXPECT_EQ(ReadPricing("/nonexistent/pricing.mbp").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace mbp::io

// Robustness ("fuzz-lite") tests: every file reader in the library must
// return a Status on arbitrary malformed input — never crash, never
// accept garbage as valid data. Inputs are random byte soups, random
// printable soups, and truncations/mutations of valid files.

#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "core/ledger.h"
#include "data/csv.h"
#include "data/table.h"
#include "io/model_io.h"
#include "random/rng.h"

namespace mbp {
namespace {

class ReaderFuzzTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  std::string WriteContent(const std::string& name,
                           const std::string& content) {
    const std::string path = testing::TempDir() + "/" + name;
    std::ofstream out(path, std::ios::binary);
    out << content;
    return path;
  }

  // Random bytes including NULs and newlines.
  std::string RandomBytes(random::Rng& rng, size_t length) {
    std::string out(length, '\0');
    for (char& c : out) {
      c = static_cast<char>(rng.NextBounded(256));
    }
    return out;
  }

  // Random printable soup with structure-ish characters.
  std::string RandomPrintable(random::Rng& rng, size_t length) {
    static constexpr char kAlphabet[] =
        "abcdefghij0123456789 .,-+eE\n\r\t";
    std::string out(length, ' ');
    for (char& c : out) {
      c = kAlphabet[rng.NextBounded(sizeof(kAlphabet) - 1)];
    }
    return out;
  }
};

TEST_P(ReaderFuzzTest, AllReadersSurviveRandomBytes) {
  random::Rng rng(GetParam());
  const std::string path = WriteContent(
      "fuzz_bytes_" + std::to_string(GetParam()),
      RandomBytes(rng, 64 + rng.NextBounded(512)));
  // Every reader must return (not crash); garbage must not parse as OK
  // except ReadCsv/Table which can legitimately accept numeric soups.
  EXPECT_FALSE(io::ReadModel(path).ok());
  EXPECT_FALSE(io::ReadPricing(path).ok());
  EXPECT_FALSE(core::TransactionLedger::LoadFrom(path).ok());
  (void)data::ReadCsv(path);
  (void)data::Table::FromCsv(path);
}

TEST_P(ReaderFuzzTest, AllReadersSurvivePrintableSoup) {
  random::Rng rng(GetParam() ^ 0xBEEF);
  const std::string path = WriteContent(
      "fuzz_text_" + std::to_string(GetParam()),
      RandomPrintable(rng, 64 + rng.NextBounded(512)));
  EXPECT_FALSE(io::ReadModel(path).ok());
  EXPECT_FALSE(io::ReadPricing(path).ok());
  EXPECT_FALSE(core::TransactionLedger::LoadFrom(path).ok());
  (void)data::ReadCsv(path);
  (void)data::Table::FromCsv(path);
}

TEST_P(ReaderFuzzTest, TruncatedValidModelNeverCrashes) {
  // Build a valid model file, truncate at a random byte.
  const ml::LinearModel model(ml::ModelKind::kLinearSvm,
                              linalg::Vector{1.5, -2.5, 3.25});
  // Seed-keyed name: the parameterized instances run as concurrent
  // processes under ctest -j, and a shared fixed path races (a reader can
  // see another instance's half-written file).
  const std::string full_path = testing::TempDir() + "/fuzz_full_model_" +
                                std::to_string(GetParam()) + ".mbp";
  ASSERT_TRUE(io::WriteModel(model, full_path).ok());
  std::ifstream in(full_path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  random::Rng rng(GetParam() ^ 0xCAFE);
  const size_t cut = rng.NextBounded(content.size());
  const std::string path = WriteContent(
      "fuzz_trunc_" + std::to_string(GetParam()), content.substr(0, cut));
  auto result = io::ReadModel(path);
  if (result.ok()) {
    // Only acceptable if the truncation kept the whole logical payload.
    EXPECT_EQ(result->num_features(), 3u);
  }
}

TEST_P(ReaderFuzzTest, MutatedValidPricingNeverCrashes) {
  auto pricing = core::PiecewiseLinearPricing::Create(
      {{1.0, 5.0}, {2.0, 8.0}, {4.0, 12.0}});
  ASSERT_TRUE(pricing.ok());
  const std::string full_path = testing::TempDir() + "/fuzz_full_pricing_" +
                                std::to_string(GetParam()) + ".mbp";
  ASSERT_TRUE(io::WritePricing(*pricing, full_path).ok());
  std::ifstream in(full_path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  random::Rng rng(GetParam() ^ 0xF00D);
  // Flip a handful of characters.
  for (int i = 0; i < 5; ++i) {
    content[rng.NextBounded(content.size())] =
        static_cast<char>('0' + rng.NextBounded(75));
  }
  const std::string path = WriteContent(
      "fuzz_mut_" + std::to_string(GetParam()), content);
  auto result = io::ReadPricing(path);
  if (result.ok()) {
    // Whatever parsed must still satisfy the structural invariants.
    double prev_x = 0.0;
    for (const core::PricePoint& point : result->points()) {
      EXPECT_GT(point.x, prev_x);
      EXPECT_GE(point.price, 0.0);
      prev_x = point.x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReaderFuzzTest,
                         ::testing::Range<uint64_t>(1, 26));

}  // namespace
}  // namespace mbp

// Tier-1 determinism contract of the concurrency subsystem (DESIGN.md
// "Concurrency model"): every parallelized hot path — Monte-Carlo error
// curves, the linalg kernels, k-fold cross-validation, and the
// brute-force exact optimizer — must produce BIT-IDENTICAL results with 1
// thread and hardware_concurrency() threads. Threads may only change wall
// time. Forcing scalar SIMD dispatch additionally reproduces the
// pre-existing serial algorithms bitwise on a fixed seed; the AVX2
// variants fuse multiply-adds and agree with them to 1e-10 relative
// (see linalg/kernels.h).

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/error_transform.h"
#include "core/exact_opt.h"
#include "core/mechanism.h"
#include "data/synthetic.h"
#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "ml/cross_validation.h"
#include "ml/trainer.h"
#include "random/distributions.h"

namespace mbp {
namespace {

size_t HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  // At least 4 so this test exercises real concurrency on the shared pool
  // (sized >= 4 workers) even on single-core CI machines.
  return hw < 4 ? 4 : hw;
}

ParallelConfig Threads(size_t n) {
  ParallelConfig config;
  config.num_threads = n;
  return config;
}

linalg::Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  random::Rng rng(seed);
  linalg::Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      m(i, j) = random::SampleStandardNormal(rng);
    }
  }
  return m;
}

TEST(ParallelDeterminismTest, ErrorCurveBitIdenticalAcrossThreadCounts) {
  data::Simulated1Options data_options;
  data_options.num_examples = 300;
  data_options.num_features = 8;
  data_options.seed = 11;
  const data::Dataset dataset =
      data::GenerateSimulated1(data_options).value();
  const linalg::Vector optimal =
      ml::TrainOptimalModel(ml::ModelKind::kLinearRegression, dataset, 0.0)
          .value()
          .model.coefficients();
  core::GaussianMechanism mechanism;
  const ml::SquareLoss loss(0.0);

  core::EmpiricalErrorTransform::BuildOptions options;
  options.grid_size = 9;
  options.trials_per_delta = 150;  // not a multiple of the trial chunk
  options.seed = 1234;
  options.parallel = Threads(1);
  const auto serial = core::EmpiricalErrorTransform::Build(
      mechanism, optimal, loss, dataset, options);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {size_t{2}, HardwareThreads()}) {
    options.parallel = Threads(threads);
    const auto parallel = core::EmpiricalErrorTransform::Build(
        mechanism, optimal, loss, dataset, options);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(serial->delta_grid(), parallel->delta_grid());
    EXPECT_EQ(serial->error_grid(), parallel->error_grid());
  }
}

TEST(ParallelDeterminismTest, GramMatrixMatchesPreExistingSerialKernel) {
  // 400 x 60 clears the parallel-dispatch work threshold (n * d^2).
  const linalg::Matrix a = RandomMatrix(400, 60, 5);

  // The seed's serial kernel, verbatim: one streaming pass over the
  // examples, lower triangle then mirror.
  const size_t d = a.cols();
  linalg::Matrix reference(d, d);
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.RowData(r);
    for (size_t i = 0; i < d; ++i) {
      const double v = row[i];
      if (v == 0.0) continue;
      double* g_row = reference.RowData(i);
      for (size_t j = 0; j <= i; ++j) g_row[j] += v * row[j];
    }
  }
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = i + 1; j < d; ++j) reference(i, j) = reference(j, i);
  }

  // Scalar dispatch reproduces the seed kernel bitwise, at any thread
  // count.
  ASSERT_TRUE(
      linalg::kernels::ForceLevelForTesting(SimdLevel::kScalar));
  EXPECT_EQ(reference, linalg::GramMatrix(a, Threads(1)));
  EXPECT_EQ(reference, linalg::GramMatrix(a, Threads(HardwareThreads())));
  ASSERT_TRUE(linalg::kernels::ForceLevelForTesting(std::nullopt));

  // Whatever variant dispatch selects: thread count never changes a bit,
  // and the result stays within the 1e-10 relative scalar-vs-SIMD gate of
  // the seed kernel (the AVX2 variant fuses multiply-adds; kernels.h).
  const linalg::Matrix serial = linalg::GramMatrix(a, Threads(1));
  EXPECT_EQ(serial, linalg::GramMatrix(a, Threads(HardwareThreads())));
  EXPECT_EQ(serial, linalg::GramMatrix(a));  // default config
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < d; ++j) {
      const double tol = 1e-10 * std::max(1.0, std::abs(reference(i, j)));
      EXPECT_NEAR(reference(i, j), serial(i, j), tol)
          << "entry (" << i << ", " << j << ")";
    }
  }
}

TEST(ParallelDeterminismTest, MatMulAndMatVecBitIdenticalAcrossThreads) {
  const linalg::Matrix a = RandomMatrix(120, 80, 6);
  const linalg::Matrix b = RandomMatrix(80, 90, 7);
  const linalg::Matrix serial_product = linalg::MatMul(a, b, Threads(1));
  EXPECT_EQ(serial_product,
            linalg::MatMul(a, b, Threads(HardwareThreads())));

  random::Rng rng(8);
  const linalg::Vector x = random::SampleNormalVector(rng, 80, 0.0, 1.0);
  const linalg::Vector serial_y = linalg::MatVec(a, x, Threads(1));
  const linalg::Vector parallel_y =
      linalg::MatVec(a, x, Threads(HardwareThreads()));
  ASSERT_EQ(serial_y.size(), parallel_y.size());
  for (size_t i = 0; i < serial_y.size(); ++i) {
    EXPECT_EQ(serial_y[i], parallel_y[i]);
  }
}

TEST(ParallelDeterminismTest, CrossValidationBitIdenticalAcrossThreads) {
  data::Simulated1Options data_options;
  data_options.num_examples = 240;
  data_options.num_features = 6;
  data_options.seed = 31;
  const data::Dataset dataset =
      data::GenerateSimulated1(data_options).value();
  const ml::SquareLoss loss(0.0);

  auto run = [&](size_t threads) {
    random::Rng rng(99);  // fresh stream per run: identical fold plans
    return ml::KFoldCrossValidate(ml::ModelKind::kLinearRegression,
                                  dataset, 1e-3, loss, 6, rng,
                                  Threads(threads));
  };
  const auto serial = run(1);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {size_t{3}, HardwareThreads()}) {
    const auto parallel = run(threads);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(serial->fold_errors, parallel->fold_errors);
    EXPECT_EQ(serial->mean_error, parallel->mean_error);
    EXPECT_EQ(serial->stddev_error, parallel->stddev_error);
  }
}

TEST(ParallelDeterminismTest, ExactOptimizerBitIdenticalAcrossThreads) {
  // 14 points = 16383 anchor subsets, spanning several mask chunks.
  std::vector<core::CurvePoint> curve;
  random::Rng rng(17);
  double value = 5.0;
  for (size_t j = 0; j < 14; ++j) {
    value += rng.NextDouble(1.0, 20.0);
    curve.push_back(core::CurvePoint{static_cast<double>(j + 1), value,
                                     rng.NextDouble(0.5, 2.0)});
  }
  const auto serial = core::MaximizeRevenueExact(curve, 100000, Threads(1));
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {size_t{2}, HardwareThreads()}) {
    const auto parallel =
        core::MaximizeRevenueExact(curve, 100000, Threads(threads));
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(serial->revenue, parallel->revenue);
    EXPECT_EQ(serial->prices, parallel->prices);
    EXPECT_EQ(serial->affordability, parallel->affordability);
  }
}

}  // namespace
}  // namespace mbp

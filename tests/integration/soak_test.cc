// Soak test: thousands of mixed purchases against one broker, checking
// the global invariants that must survive any interleaving of the three
// purchase options — exact revenue accounting, monotonically increasing
// transaction ids, budget/error constraints honored on every sale, and
// deterministic replay under the same seed.

#include <cmath>

#include <gtest/gtest.h>

#include "core/curves.h"
#include "core/market.h"
#include "data/split.h"
#include "data/synthetic.h"

namespace mbp::core {
namespace {

Broker MakeBroker(uint64_t seed) {
  data::Simulated1Options data_options;
  data_options.num_examples = 400;
  data_options.num_features = 5;
  data_options.seed = 71;
  data::Dataset dataset = data::GenerateSimulated1(data_options).value();
  random::Rng rng(72);
  MarketCurveOptions curve_options;
  curve_options.num_points = 8;
  curve_options.value_shape = ValueShape::kConcave;
  Seller seller = Seller::Create(
                      "soak", data::RandomSplit(dataset, 0.25, rng).value(),
                      MakeMarketCurve(curve_options).value())
                      .value();
  ModelListing listing;
  listing.model = ml::ModelKind::kLinearRegression;
  listing.l2 = 1e-4;
  Broker::Options options;
  options.seed = seed;
  options.transform.grid_size = 6;
  options.transform.trials_per_delta = 40;
  return Broker::Create(std::move(seller), listing, options).value();
}

TEST(SoakTest, ThousandsOfMixedPurchasesKeepInvariants) {
  Broker broker = MakeBroker(1);
  random::Rng rng(2);
  const double min_error = broker.error_transform().MinError();
  const double max_error = broker.error_transform().ExpectedError(1.0);

  double expected_revenue = 0.0;
  uint64_t last_id = 0;
  const int kPurchases = 3000;
  for (int i = 0; i < kPurchases; ++i) {
    StatusOr<Transaction> txn = [&]() -> StatusOr<Transaction> {
      switch (rng.NextBounded(3)) {
        case 0:
          return broker.BuyAtNcp(rng.NextDouble(0.01, 1.0));
        case 1: {
          const double budget =
              rng.NextDouble(min_error, min_error + (max_error - min_error));
          auto result = broker.BuyWithErrorBudget(budget);
          if (result.ok()) {
            EXPECT_LE(result->quoted_expected_error, budget + 1e-6);
          }
          return result;
        }
        default: {
          const double budget = rng.NextDouble(0.0, 120.0);
          auto result = broker.BuyWithPriceBudget(budget);
          if (result.ok()) {
            EXPECT_LE(result->price, budget + 1e-9);
          }
          return result;
        }
      }
    }();
    ASSERT_TRUE(txn.ok()) << "purchase " << i << ": " << txn.status();
    EXPECT_GT(txn->id, last_id);
    last_id = txn->id;
    EXPECT_GE(txn->price, 0.0);
    EXPECT_TRUE(std::isfinite(txn->price));
    EXPECT_EQ(txn->instance.num_features(), 5u);
    expected_revenue += txn->price;
  }
  EXPECT_EQ(broker.transactions().size(),
            static_cast<size_t>(kPurchases));
  EXPECT_NEAR(broker.total_revenue(), expected_revenue,
              1e-6 * (1.0 + expected_revenue));
}

TEST(SoakTest, IdenticalSeedsReplayIdentically) {
  Broker a = MakeBroker(9);
  Broker b = MakeBroker(9);
  random::Rng rng_a(3), rng_b(3);
  for (int i = 0; i < 200; ++i) {
    const double delta_a = rng_a.NextDouble(0.01, 1.0);
    const double delta_b = rng_b.NextDouble(0.01, 1.0);
    auto txn_a = a.BuyAtNcp(delta_a);
    auto txn_b = b.BuyAtNcp(delta_b);
    ASSERT_TRUE(txn_a.ok() && txn_b.ok());
    EXPECT_DOUBLE_EQ(txn_a->price, txn_b->price);
    EXPECT_EQ(txn_a->instance.coefficients(),
              txn_b->instance.coefficients());
  }
  EXPECT_DOUBLE_EQ(a.total_revenue(), b.total_revenue());
}

}  // namespace
}  // namespace mbp::core

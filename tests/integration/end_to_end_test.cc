// Integration tests exercising the full paper pipeline end-to-end:
// dataset -> optimal model -> error transform -> revenue-optimized
// arbitrage-free pricing -> purchases -> delivered-instance quality, for
// every model family the broker menu supports.

#include <cmath>

#include <gtest/gtest.h>

#include "core/arbitrage.h"
#include "core/baselines.h"
#include "core/curves.h"
#include "core/exact_opt.h"
#include "core/market.h"
#include "core/revenue_opt.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/uci_like.h"
#include "ml/metrics.h"

namespace mbp::core {
namespace {

struct MarketScenario {
  std::string name;
  ml::ModelKind model;
  ml::LossKind test_error;
};

class EndToEndTest : public ::testing::TestWithParam<MarketScenario> {
 protected:
  static data::TrainTestSplit MakeData(ml::ModelKind model) {
    random::Rng rng(100);
    if (model == ml::ModelKind::kLinearRegression) {
      data::Simulated1Options options;
      options.num_examples = 500;
      options.num_features = 5;
      options.noise_stddev = 0.1;
      options.seed = 41;
      data::Dataset dataset =
          data::GenerateSimulated1(options).value();
      return data::RandomSplit(dataset, 0.25, rng).value();
    }
    data::Simulated2Options options;
    options.num_examples = 500;
    options.num_features = 5;
    options.seed = 43;
    data::Dataset dataset = data::GenerateSimulated2(options).value();
    return data::RandomSplit(dataset, 0.25, rng).value();
  }

  static Broker MakeBroker(const MarketScenario& scenario) {
    MarketCurveOptions curve_options;
    curve_options.num_points = 8;
    curve_options.x_min = 4.0;
    curve_options.x_max = 32.0;
    curve_options.value_shape = ValueShape::kSigmoid;
    curve_options.demand_shape = DemandShape::kMidPeaked;
    Seller seller =
        Seller::Create("seller", MakeData(scenario.model),
                       MakeMarketCurve(curve_options).value())
            .value();
    ModelListing listing;
    listing.model = scenario.model;
    listing.l2 = 0.01;
    listing.test_error = scenario.test_error;
    Broker::Options options;
    options.transform.grid_size = 8;
    options.transform.trials_per_delta = 120;
    options.seed = 7;
    return Broker::Create(std::move(seller), listing, options).value();
  }
};

TEST_P(EndToEndTest, FullPipelineInvariants) {
  Broker broker = MakeBroker(GetParam());

  // 1. Pricing is certified arbitrage-free and resists the attacker.
  ASSERT_TRUE(broker.pricing().ValidateArbitrageFree().ok());
  const auto price = [&](double x) {
    return broker.pricing().PriceAtInverseNcp(x);
  };
  EXPECT_FALSE(FindArbitrageAttack(price, 64.0, 128).has_value());

  // 2. The quote curve trades error against price monotonically.
  const std::vector<QuotePoint> quotes = broker.QuoteCurve(10);
  for (size_t i = 1; i < quotes.size(); ++i) {
    EXPECT_LE(quotes[i].expected_error,
              quotes[i - 1].expected_error + 1e-9);
    EXPECT_GE(quotes[i].price + 1e-9, quotes[i - 1].price);
  }

  // 3. All three purchase options deliver instances of the right shape.
  auto by_ncp = broker.BuyAtNcp(0.1);
  ASSERT_TRUE(by_ncp.ok());
  auto by_error = broker.BuyWithErrorBudget(
      broker.error_transform().ExpectedError(0.2));
  ASSERT_TRUE(by_error.ok());
  auto by_price = broker.BuyWithPriceBudget(by_ncp->price);
  ASSERT_TRUE(by_price.ok());
  EXPECT_LE(by_price->price, by_ncp->price + 1e-9);
  for (const Transaction* txn :
       {&*by_ncp, &*by_error, &*by_price}) {
    EXPECT_EQ(txn->instance.num_features(), 5u);
    EXPECT_EQ(txn->instance.kind(), GetParam().model);
  }

  // 4. Revenue accounting is exact.
  EXPECT_NEAR(broker.total_revenue(),
              by_ncp->price + by_error->price + by_price->price, 1e-9);
}

TEST_P(EndToEndTest, DeliveredQualityImprovesWithSpend) {
  Broker broker = MakeBroker(GetParam());
  const data::Dataset& test = broker.seller().test();
  const std::unique_ptr<ml::Loss> epsilon =
      ml::MakeLoss(GetParam().test_error, 0.0);
  double cheap_error = 0.0, premium_error = 0.0;
  const int rounds = 25;
  for (int i = 0; i < rounds; ++i) {
    auto cheap = broker.BuyAtNcp(1.0);
    auto premium = broker.BuyAtNcp(0.01);
    ASSERT_TRUE(cheap.ok() && premium.ok());
    EXPECT_LT(cheap->price, premium->price);
    cheap_error +=
        epsilon->Evaluate(cheap->instance.coefficients(), test) / rounds;
    premium_error +=
        epsilon->Evaluate(premium->instance.coefficients(), test) / rounds;
  }
  EXPECT_LT(premium_error, cheap_error);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, EndToEndTest,
    ::testing::Values(
        MarketScenario{"linreg_square", ml::ModelKind::kLinearRegression,
                       ml::LossKind::kSquare},
        MarketScenario{"logreg_logistic",
                       ml::ModelKind::kLogisticRegression,
                       ml::LossKind::kLogistic},
        MarketScenario{"logreg_zeroone",
                       ml::ModelKind::kLogisticRegression,
                       ml::LossKind::kZeroOne},
        MarketScenario{"svm_hinge", ml::ModelKind::kLinearSvm,
                       ml::LossKind::kSmoothedHinge}),
    [](const auto& info) { return info.param.name; });

TEST(EndToEndPipelineTest, RevenueOrderingAcrossOptimizers) {
  // On an integer-grid market curve: baselines <= DP <= exact <= total
  // surplus, and DP >= exact / 2 (Proposition 3).
  MarketCurveOptions options;
  options.num_points = 8;
  options.x_min = 10.0;
  options.x_max = 80.0;
  options.value_shape = ValueShape::kConvex;
  options.demand_shape = DemandShape::kUniform;
  auto curve = MakeMarketCurve(options);
  ASSERT_TRUE(curve.ok());

  auto dp = MaximizeRevenueDp(*curve);
  auto exact = MaximizeRevenueExact(*curve);
  ASSERT_TRUE(dp.ok() && exact.ok());
  double surplus = 0.0;
  for (const CurvePoint& point : *curve) {
    surplus += point.demand * point.value;
  }
  EXPECT_LE(dp->revenue, exact->revenue + 1e-9);
  EXPECT_LE(exact->revenue, surplus + 1e-9);
  EXPECT_GE(dp->revenue + 1e-9, exact->revenue / 2.0);
  for (BaselineKind kind : AllBaselines()) {
    auto baseline = PriceWithBaseline(kind, *curve);
    ASSERT_TRUE(baseline.ok());
    EXPECT_LE(baseline->revenue, dp->revenue + 1e-9)
        << BaselineKindToString(kind);
  }
}

TEST(EndToEndPipelineTest, UciLikeDatasetsDriveTheMarket) {
  // A broker can be stood up on each synthetic UCI stand-in.
  for (const data::DatasetSpec& spec : data::PaperTable3Specs()) {
    if (spec.name != "CASP" && spec.name != "CovType") continue;  // speed
    auto split = data::GenerateUciLike(spec, 0.002, 77, 150);
    ASSERT_TRUE(split.ok());
    MarketCurveOptions curve_options;
    curve_options.num_points = 5;
    Seller seller =
        Seller::Create(spec.name, std::move(split).value(),
                       MakeMarketCurve(curve_options).value())
            .value();
    ModelListing listing;
    if (spec.task == data::TaskType::kRegression) {
      listing.model = ml::ModelKind::kLinearRegression;
      listing.test_error = ml::LossKind::kSquare;
    } else {
      listing.model = ml::ModelKind::kLogisticRegression;
      listing.test_error = ml::LossKind::kZeroOne;
    }
    listing.l2 = 0.01;
    Broker::Options options;
    options.transform.grid_size = 6;
    options.transform.trials_per_delta = 60;
    auto broker = Broker::Create(std::move(seller), listing, options);
    ASSERT_TRUE(broker.ok()) << spec.name << ": " << broker.status();
    auto txn = broker->BuyWithPriceBudget(30.0);
    EXPECT_TRUE(txn.ok()) << spec.name;
  }
}

}  // namespace
}  // namespace mbp::core

// Codifies the EXPERIMENTS.md reproduction claims as assertions, so the
// repository's headline statements ("MBP earns the most", "the DP is
// near-optimal", "MILP explodes exponentially", "error curves decrease")
// cannot silently rot. Runs the same pipelines as the bench harnesses at
// reduced scale.

#include <memory>

#include <gtest/gtest.h>

#include "common/timer.h"
#include "core/baselines.h"
#include "core/curves.h"
#include "core/error_transform.h"
#include "core/exact_opt.h"
#include "core/mechanism.h"
#include "core/revenue_opt.h"
#include "data/uci_like.h"
#include "ml/trainer.h"

namespace mbp {
namespace {

using core::CurvePoint;

std::vector<CurvePoint> SweepCurve(size_t n, core::ValueShape value_shape,
                                   core::DemandShape demand_shape) {
  core::MarketCurveOptions options;
  options.num_points = n;
  options.x_min = 10.0;
  options.x_max = 10.0 * static_cast<double>(n);
  options.value_shape = value_shape;
  options.demand_shape = demand_shape;
  return core::MakeMarketCurve(options).value();
}

TEST(PaperClaimsTest, Figure6_AllErrorCurvesDecrease) {
  // One regression + one classification stand-in, all listed ε kinds.
  core::GaussianMechanism mechanism;
  core::EmpiricalErrorTransform::BuildOptions build;
  build.delta_min = 0.01;
  build.delta_max = 1.0;
  build.grid_size = 8;
  build.trials_per_delta = 80;
  for (const data::DatasetSpec& spec : data::PaperTable3Specs()) {
    if (spec.name != "CASP" && spec.name != "SUSY") continue;  // speed
    auto split = data::GenerateUciLike(spec, 0.002, 5, 250);
    ASSERT_TRUE(split.ok());
    const bool regression = spec.task == data::TaskType::kRegression;
    auto trained = ml::TrainOptimalModel(
        regression ? ml::ModelKind::kLinearRegression
                   : ml::ModelKind::kLogisticRegression,
        split->train, 1e-3);
    ASSERT_TRUE(trained.ok());
    std::vector<ml::LossKind> epsilons =
        regression ? std::vector<ml::LossKind>{ml::LossKind::kSquare}
                   : std::vector<ml::LossKind>{ml::LossKind::kLogistic,
                                               ml::LossKind::kZeroOne};
    for (ml::LossKind kind : epsilons) {
      const std::unique_ptr<ml::Loss> epsilon = ml::MakeLoss(kind, 0.0);
      auto transform = core::EmpiricalErrorTransform::Build(
          mechanism, trained->model.coefficients(), *epsilon, split->test,
          build);
      ASSERT_TRUE(transform.ok());
      const std::vector<double>& errors = transform->error_grid();
      for (size_t i = 1; i < errors.size(); ++i) {
        EXPECT_LE(errors[i - 1], errors[i] + 1e-12)
            << spec.name << "/" << epsilon->name();
      }
      EXPECT_GE(errors.back(), errors.front()) << spec.name;
    }
  }
}

TEST(PaperClaimsTest, Figures7And8_MbpEarnsTheMostAmongSafeSchemes) {
  // The four paper settings: {convex, concave} value x {mid-peaked,
  // extremes} demand. MBP >= every constant baseline everywhere, and
  // >= Lin on the paper's value shapes.
  for (core::ValueShape value_shape :
       {core::ValueShape::kConvex, core::ValueShape::kConcave}) {
    for (core::DemandShape demand_shape :
         {core::DemandShape::kMidPeaked, core::DemandShape::kExtremes}) {
      const std::vector<CurvePoint> curve =
          SweepCurve(10, value_shape, demand_shape);
      auto mbp = core::MaximizeRevenueDp(curve);
      ASSERT_TRUE(mbp.ok());
      for (core::BaselineKind kind : core::AllBaselines()) {
        auto baseline = core::PriceWithBaseline(kind, curve);
        ASSERT_TRUE(baseline.ok());
        EXPECT_GE(mbp->revenue + 1e-9, baseline->revenue)
            << core::BaselineKindToString(kind);
      }
      // Affordability: MBP beats MaxC decisively (the paper's headline
      // affordability gain).
      auto maxc =
          core::PriceWithBaseline(core::BaselineKind::kMaxConstant, curve);
      ASSERT_TRUE(maxc.ok());
      EXPECT_GT(mbp->affordability, maxc->affordability);
    }
  }
}

TEST(PaperClaimsTest, Figures9And10_MilpIsNearOptimalButExponential) {
  const std::vector<CurvePoint> small =
      SweepCurve(4, core::ValueShape::kConvex,
                 core::DemandShape::kMidPeaked);
  const std::vector<CurvePoint> large =
      SweepCurve(12, core::ValueShape::kConvex,
                 core::DemandShape::kMidPeaked);

  // Revenue sandwich at both sizes.
  for (const auto& curve : {small, large}) {
    auto dp = core::MaximizeRevenueDp(curve);
    auto exact = core::MaximizeRevenueExact(curve);
    ASSERT_TRUE(dp.ok() && exact.ok());
    EXPECT_LE(dp->revenue, exact->revenue + 1e-9);
    EXPECT_GE(dp->revenue + 1e-9, exact->revenue / 2.0);
  }

  // Runtime separation grows with n: at n=12 the exact solver must be at
  // least 10x slower than the DP (measured conservatively, single run).
  Timer dp_timer;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(core::MaximizeRevenueDp(large).ok());
  }
  const double dp_seconds = dp_timer.ElapsedSeconds() / 20;
  Timer exact_timer;
  ASSERT_TRUE(core::MaximizeRevenueExact(large).ok());
  const double exact_seconds = exact_timer.ElapsedSeconds();
  EXPECT_GT(exact_seconds, 10.0 * dp_seconds);
}

TEST(PaperClaimsTest, Table3_GeneratorsMatchPaperShapes) {
  const std::vector<data::DatasetSpec> specs = data::PaperTable3Specs();
  ASSERT_EQ(specs.size(), 6u);
  size_t regression = 0, classification = 0;
  for (const data::DatasetSpec& spec : specs) {
    (spec.task == data::TaskType::kRegression ? regression
                                              : classification)++;
  }
  EXPECT_EQ(regression, 3u);
  EXPECT_EQ(classification, 3u);
}

}  // namespace
}  // namespace mbp

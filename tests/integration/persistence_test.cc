// Integration test for the persistence workflow a real deployment runs:
// stand up a broker, save its pricing curve and optimal model, then in a
// "new process" (fresh objects) reload both and continue selling with
// identical behavior.

#include <gtest/gtest.h>

#include "core/curves.h"
#include "core/market.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "io/model_io.h"

namespace mbp {
namespace {

core::Seller MakeSeller(uint64_t seed) {
  data::Simulated1Options options;
  options.num_examples = 400;
  options.num_features = 4;
  options.seed = seed;
  data::Dataset dataset = data::GenerateSimulated1(options).value();
  random::Rng rng(seed + 1);
  core::MarketCurveOptions curve;
  curve.num_points = 6;
  return core::Seller::Create("s",
                              data::RandomSplit(dataset, 0.25, rng).value(),
                              core::MakeMarketCurve(curve).value())
      .value();
}

TEST(PersistenceIntegrationTest, PricingSurvivesRestart) {
  core::ModelListing listing;
  listing.model = ml::ModelKind::kLinearRegression;
  listing.l2 = 1e-3;
  core::Broker::Options options;
  options.transform.grid_size = 6;
  options.transform.trials_per_delta = 40;

  const std::string pricing_path = testing::TempDir() + "/restart_pricing.mbp";
  const std::string model_path = testing::TempDir() + "/restart_model.mbp";
  double original_price_at_5 = 0.0;
  linalg::Vector original_coefficients;
  {
    auto broker = core::Broker::Create(MakeSeller(50), listing, options);
    ASSERT_TRUE(broker.ok());
    ASSERT_TRUE(io::WritePricing(broker->pricing(), pricing_path).ok());
    ASSERT_TRUE(
        io::WriteModel(broker->optimal_model(), model_path).ok());
    original_price_at_5 = broker->pricing().PriceAtInverseNcp(5.0);
    original_coefficients = broker->optimal_model().coefficients();
  }

  // "New process": rebuild the broker around the persisted pricing.
  auto pricing = io::ReadPricing(pricing_path);
  ASSERT_TRUE(pricing.ok());
  EXPECT_DOUBLE_EQ(pricing->PriceAtInverseNcp(5.0), original_price_at_5);
  auto model = io::ReadModel(model_path);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->coefficients(), original_coefficients);

  auto restarted = core::Broker::CreateWithPricing(
      MakeSeller(50), listing, std::move(pricing).value(), options);
  ASSERT_TRUE(restarted.ok()) << restarted.status();
  // Same data + same listing => the retrained optimal model matches the
  // persisted one exactly (training is deterministic).
  EXPECT_EQ(restarted->optimal_model().coefficients(),
            original_coefficients);
  // Sales continue at the persisted prices.
  auto txn = restarted->BuyAtNcp(0.2);
  ASSERT_TRUE(txn.ok());
  EXPECT_DOUBLE_EQ(txn->price,
                   restarted->pricing().PriceAtInverseNcp(5.0));
  EXPECT_DOUBLE_EQ(txn->price, original_price_at_5);
}

TEST(PersistenceIntegrationTest, PurchasedInstanceSurvivesHandoff) {
  // A buyer stores the purchased instance and reloads it elsewhere.
  core::ModelListing listing;
  listing.model = ml::ModelKind::kLinearRegression;
  listing.l2 = 1e-3;
  core::Broker::Options options;
  options.transform.grid_size = 6;
  options.transform.trials_per_delta = 40;
  auto broker = core::Broker::Create(MakeSeller(51), listing, options);
  ASSERT_TRUE(broker.ok());
  auto txn = broker->BuyWithPriceBudget(30.0);
  ASSERT_TRUE(txn.ok());
  const std::string path = testing::TempDir() + "/instance_handoff.mbp";
  ASSERT_TRUE(io::WriteModel(txn->instance, path).ok());
  auto reloaded = io::ReadModel(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->coefficients(), txn->instance.coefficients());
  EXPECT_EQ(reloaded->kind(), txn->instance.kind());
}

}  // namespace
}  // namespace mbp

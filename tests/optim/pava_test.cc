#include "optim/pava.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "random/rng.h"

namespace mbp::optim {
namespace {

TEST(PavaTest, AlreadyMonotoneIsUnchanged) {
  std::vector<double> values{1.0, 2.0, 3.0};
  EXPECT_EQ(IsotonicNonDecreasing(values), values);
}

TEST(PavaTest, SingleViolationPools) {
  std::vector<double> fit = IsotonicNonDecreasing({1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(fit[0], 1.0);
  EXPECT_DOUBLE_EQ(fit[1], 2.5);
  EXPECT_DOUBLE_EQ(fit[2], 2.5);
}

TEST(PavaTest, FullyReversedPoolsToMean) {
  std::vector<double> fit = IsotonicNonDecreasing({3.0, 2.0, 1.0});
  for (double x : fit) EXPECT_DOUBLE_EQ(x, 2.0);
}

TEST(PavaTest, WeightsShiftPooledMean) {
  // Pooling {4 (w=3), 0 (w=1)} gives weighted mean 3.
  std::vector<double> fit =
      IsotonicNonDecreasing({4.0, 0.0}, {3.0, 1.0});
  EXPECT_DOUBLE_EQ(fit[0], 3.0);
  EXPECT_DOUBLE_EQ(fit[1], 3.0);
}

TEST(PavaTest, NonIncreasingMirrorsNonDecreasing) {
  std::vector<double> fit = IsotonicNonIncreasing({1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(fit[0], 2.0);
  EXPECT_DOUBLE_EQ(fit[1], 2.0);
  EXPECT_DOUBLE_EQ(fit[2], 2.0);
}

TEST(PavaTest, NonIncreasingKeepsSortedInput) {
  std::vector<double> values{5.0, 4.0, 1.0};
  EXPECT_EQ(IsotonicNonIncreasing(values), values);
}

TEST(PavaTest, EmptyAndSingleton) {
  EXPECT_TRUE(IsotonicNonDecreasing(std::vector<double>{}).empty());
  EXPECT_EQ(IsotonicNonDecreasing({7.0}), std::vector<double>{7.0});
}

TEST(PavaDeathTest, NonPositiveWeightAborts) {
  EXPECT_DEATH({ IsotonicNonDecreasing({1.0}, {0.0}); }, "MBP_CHECK failed");
}

// Property tests on random inputs.
class PavaPropertyTest : public ::testing::TestWithParam<uint64_t> {};

double Objective(const std::vector<double>& fit,
                 const std::vector<double>& values,
                 const std::vector<double>& weights) {
  double total = 0.0;
  for (size_t i = 0; i < fit.size(); ++i) {
    total += weights[i] * (fit[i] - values[i]) * (fit[i] - values[i]);
  }
  return total;
}

TEST_P(PavaPropertyTest, OutputIsMonotoneAndIdempotent) {
  random::Rng rng(GetParam());
  const size_t n = 2 + rng.NextBounded(40);
  std::vector<double> values(n), weights(n);
  for (size_t i = 0; i < n; ++i) {
    values[i] = rng.NextDouble(-10.0, 10.0);
    weights[i] = rng.NextDouble(0.1, 5.0);
  }
  const std::vector<double> fit = IsotonicNonDecreasing(values, weights);
  for (size_t i = 1; i < n; ++i) {
    EXPECT_LE(fit[i - 1], fit[i] + 1e-12);
  }
  // Projection is idempotent.
  const std::vector<double> refit = IsotonicNonDecreasing(fit, weights);
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(refit[i], fit[i], 1e-12);
}

TEST_P(PavaPropertyTest, NoFeasiblePerturbationImproves) {
  // First-order optimality of the projection: nudging any pooled block up
  // or down (keeping feasibility) cannot reduce the objective.
  random::Rng rng(GetParam() ^ 0xABCD);
  const size_t n = 2 + rng.NextBounded(12);
  std::vector<double> values(n), weights(n);
  for (size_t i = 0; i < n; ++i) {
    values[i] = rng.NextDouble(-5.0, 5.0);
    weights[i] = rng.NextDouble(0.5, 2.0);
  }
  std::vector<double> fit = IsotonicNonDecreasing(values, weights);
  const double base = Objective(fit, values, weights);
  // Random small monotone-preserving perturbations.
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> candidate = fit;
    const size_t i = rng.NextBounded(n);
    candidate[i] += rng.NextDouble(-0.05, 0.05);
    const bool monotone = std::is_sorted(candidate.begin(), candidate.end());
    if (!monotone) continue;
    EXPECT_GE(Objective(candidate, values, weights) + 1e-9, base);
  }
}

TEST_P(PavaPropertyTest, MeanIsPreservedForUnitWeights) {
  // With unit weights, pooling preserves the total sum.
  random::Rng rng(GetParam() ^ 0x1234);
  const size_t n = 2 + rng.NextBounded(30);
  std::vector<double> values(n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    values[i] = rng.NextDouble(-3.0, 3.0);
    sum += values[i];
  }
  const std::vector<double> fit = IsotonicNonDecreasing(values);
  double fit_sum = 0.0;
  for (double x : fit) fit_sum += x;
  EXPECT_NEAR(fit_sum, sum, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PavaPropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace mbp::optim

#include "optim/simplex.h"

#include <cmath>

#include <gtest/gtest.h>

#include "random/rng.h"

namespace mbp::optim {
namespace {

TEST(SimplexTest, SolvesTextbookLp) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18. Optimum 36 at (2, 6).
  LinearProgram lp;
  lp.objective = linalg::Vector{3.0, 5.0};
  lp.constraints = linalg::Matrix{{1.0, 0.0}, {0.0, 2.0}, {3.0, 2.0}};
  lp.rhs = linalg::Vector{4.0, 12.0, 18.0};
  auto solution = SolveLinearProgram(lp);
  ASSERT_TRUE(solution.ok()) << solution.status();
  EXPECT_NEAR(solution->objective_value, 36.0, 1e-8);
  EXPECT_NEAR(solution->x[0], 2.0, 1e-8);
  EXPECT_NEAR(solution->x[1], 6.0, 1e-8);
}

TEST(SimplexTest, SolvesSingleVariable) {
  LinearProgram lp;
  lp.objective = linalg::Vector{2.0};
  lp.constraints = linalg::Matrix{{1.0}};
  lp.rhs = linalg::Vector{5.0};
  auto solution = SolveLinearProgram(lp);
  ASSERT_TRUE(solution.ok());
  EXPECT_NEAR(solution->objective_value, 10.0, 1e-9);
}

TEST(SimplexTest, DetectsUnbounded) {
  // max x with only x >= 0 and a vacuous constraint.
  LinearProgram lp;
  lp.objective = linalg::Vector{1.0};
  lp.constraints = linalg::Matrix{{-1.0}};
  lp.rhs = linalg::Vector{1.0};
  EXPECT_EQ(SolveLinearProgram(lp).status().code(), StatusCode::kOutOfRange);
}

TEST(SimplexTest, DetectsInfeasible) {
  // x <= -1 with x >= 0.
  LinearProgram lp;
  lp.objective = linalg::Vector{1.0};
  lp.constraints = linalg::Matrix{{1.0}};
  lp.rhs = linalg::Vector{-1.0};
  EXPECT_EQ(SolveLinearProgram(lp).status().code(), StatusCode::kInfeasible);
}

TEST(SimplexTest, HandlesNegativeRhsFeasible) {
  // max -x s.t. -x <= -3  (i.e. x >= 3): optimum at x = 3.
  LinearProgram lp;
  lp.objective = linalg::Vector{-1.0};
  lp.constraints = linalg::Matrix{{-1.0}};
  lp.rhs = linalg::Vector{-3.0};
  auto solution = SolveLinearProgram(lp);
  ASSERT_TRUE(solution.ok()) << solution.status();
  EXPECT_NEAR(solution->x[0], 3.0, 1e-8);
  EXPECT_NEAR(solution->objective_value, -3.0, 1e-8);
}

TEST(SimplexTest, EqualityViaOpposingInequalities) {
  // max x + y s.t. x + y = 5 (as <= and >=), x <= 3.
  LinearProgram lp;
  lp.objective = linalg::Vector{1.0, 1.0};
  lp.constraints =
      linalg::Matrix{{1.0, 1.0}, {-1.0, -1.0}, {1.0, 0.0}};
  lp.rhs = linalg::Vector{5.0, -5.0, 3.0};
  auto solution = SolveLinearProgram(lp);
  ASSERT_TRUE(solution.ok()) << solution.status();
  EXPECT_NEAR(solution->objective_value, 5.0, 1e-8);
}

TEST(SimplexTest, DegenerateVertexTerminates) {
  // Multiple constraints active at the optimum (degeneracy); Bland's rule
  // must still terminate.
  LinearProgram lp;
  lp.objective = linalg::Vector{1.0, 1.0};
  lp.constraints =
      linalg::Matrix{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}, {2.0, 2.0}};
  lp.rhs = linalg::Vector{1.0, 1.0, 2.0, 4.0};
  auto solution = SolveLinearProgram(lp);
  ASSERT_TRUE(solution.ok());
  EXPECT_NEAR(solution->objective_value, 2.0, 1e-8);
}

TEST(SimplexTest, RejectsDimensionMismatch) {
  LinearProgram lp;
  lp.objective = linalg::Vector{1.0, 2.0};
  lp.constraints = linalg::Matrix{{1.0}};
  lp.rhs = linalg::Vector{1.0};
  EXPECT_EQ(SolveLinearProgram(lp).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SimplexTest, ZeroObjectiveReturnsFeasiblePoint) {
  LinearProgram lp;
  lp.objective = linalg::Vector{0.0, 0.0};
  lp.constraints = linalg::Matrix{{1.0, 1.0}};
  lp.rhs = linalg::Vector{1.0};
  auto solution = SolveLinearProgram(lp);
  ASSERT_TRUE(solution.ok());
  EXPECT_NEAR(solution->objective_value, 0.0, 1e-12);
}

TEST(SimplexTest, BealeCyclingExampleTerminates) {
  // Beale's classic cycling example; Bland's rule must terminate.
  // min -0.75 x1 + 150 x2 - 0.02 x3 + 6 x4  (as max of the negation)
  // s.t. 0.25 x1 - 60 x2 - 0.04 x3 + 9 x4 <= 0
  //      0.5  x1 - 90 x2 - 0.02 x3 + 3 x4 <= 0
  //      x3 <= 1
  LinearProgram lp;
  lp.objective = linalg::Vector{0.75, -150.0, 0.02, -6.0};
  lp.constraints = linalg::Matrix{{0.25, -60.0, -0.04, 9.0},
                                  {0.5, -90.0, -0.02, 3.0},
                                  {0.0, 0.0, 1.0, 0.0}};
  lp.rhs = linalg::Vector{0.0, 0.0, 1.0};
  auto solution = SolveLinearProgram(lp);
  ASSERT_TRUE(solution.ok()) << solution.status();
  EXPECT_NEAR(solution->objective_value, 0.05, 1e-8);
}

TEST(SimplexTest, RedundantConstraintsAreHarmless) {
  // Same constraint three times.
  LinearProgram lp;
  lp.objective = linalg::Vector{1.0};
  lp.constraints = linalg::Matrix{{1.0}, {1.0}, {1.0}};
  lp.rhs = linalg::Vector{2.0, 2.0, 2.0};
  auto solution = SolveLinearProgram(lp);
  ASSERT_TRUE(solution.ok());
  EXPECT_NEAR(solution->objective_value, 2.0, 1e-9);
}

TEST(SimplexTest, NegativeRhsEqualityPairIsFeasible) {
  // x = 4 encoded with a negative-rhs pair exercises phase 1 +
  // DriveOutArtificials.
  LinearProgram lp;
  lp.objective = linalg::Vector{-1.0};
  lp.constraints = linalg::Matrix{{1.0}, {-1.0}};
  lp.rhs = linalg::Vector{4.0, -4.0};
  auto solution = SolveLinearProgram(lp);
  ASSERT_TRUE(solution.ok()) << solution.status();
  EXPECT_NEAR(solution->x[0], 4.0, 1e-9);
}

// Property: solutions are feasible, and no random feasible point beats the
// reported optimum.
class SimplexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimplexPropertyTest, OptimumDominatesRandomFeasiblePoints) {
  random::Rng rng(GetParam());
  const size_t n = 2 + rng.NextBounded(4);
  const size_t m = 2 + rng.NextBounded(5);
  LinearProgram lp;
  lp.objective = linalg::Vector(n);
  for (size_t j = 0; j < n; ++j) lp.objective[j] = rng.NextDouble(-1.0, 2.0);
  lp.constraints = linalg::Matrix(m, n);
  lp.rhs = linalg::Vector(m);
  for (size_t i = 0; i < m; ++i) {
    // Positive row coefficients + positive rhs keep the LP bounded and
    // feasible (origin is feasible).
    for (size_t j = 0; j < n; ++j) {
      lp.constraints(i, j) = rng.NextDouble(0.1, 2.0);
    }
    lp.rhs[i] = rng.NextDouble(1.0, 10.0);
  }
  auto solution = SolveLinearProgram(lp);
  ASSERT_TRUE(solution.ok()) << solution.status();

  // Feasibility of the reported solution.
  for (size_t i = 0; i < m; ++i) {
    double lhs = 0.0;
    for (size_t j = 0; j < n; ++j) {
      EXPECT_GE(solution->x[j], -1e-9);
      lhs += lp.constraints(i, j) * solution->x[j];
    }
    EXPECT_LE(lhs, lp.rhs[i] + 1e-7);
  }

  // Sample random feasible points by scaling random directions to the
  // feasible boundary; none may beat the optimum.
  for (int trial = 0; trial < 200; ++trial) {
    linalg::Vector x(n);
    for (size_t j = 0; j < n; ++j) x[j] = rng.NextDouble(0.0, 1.0);
    double worst_ratio = 0.0;
    for (size_t i = 0; i < m; ++i) {
      double lhs = 0.0;
      for (size_t j = 0; j < n; ++j) lhs += lp.constraints(i, j) * x[j];
      worst_ratio = std::max(worst_ratio, lhs / lp.rhs[i]);
    }
    if (worst_ratio > 0.0) {
      for (size_t j = 0; j < n; ++j) x[j] /= worst_ratio;
    }
    double value = 0.0;
    for (size_t j = 0; j < n; ++j) value += lp.objective[j] * x[j];
    EXPECT_LE(value, solution->objective_value + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexPropertyTest,
                         ::testing::Range<uint64_t>(1, 16));

}  // namespace
}  // namespace mbp::optim

#include "random/rng.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace mbp::random {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, NearbySeedsAreDecorrelated) {
  // SplitMix64 seeding should make seeds 0 and 1 produce unrelated streams.
  Rng a(0), b(1);
  EXPECT_NE(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(17);
  double total = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) total += rng.NextDouble();
  EXPECT_NEAR(total / n, 0.5, 0.005);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(23);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(10)];
  for (int count : counts) {
    EXPECT_NEAR(static_cast<double>(count) / n, 0.1, 0.01);
  }
}

TEST(RngDeathTest, ZeroBoundAborts) {
  Rng rng(1);
  EXPECT_DEATH({ (void)rng.NextBounded(0); }, "MBP_CHECK failed");
}

TEST(RngTest, ForkedStreamsDiffer) {
  Rng parent(3);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~uint64_t{0});
  Rng rng(1);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace mbp::random

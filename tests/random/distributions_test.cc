#include "random/distributions.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/vector_ops.h"

namespace mbp::random {
namespace {

constexpr int kSamples = 200000;

struct Moments {
  double mean;
  double variance;
};

template <typename Sampler>
Moments EstimateMoments(Sampler&& sample, int n = kSamples) {
  double total = 0.0, total_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = sample();
    total += x;
    total_sq += x * x;
  }
  const double mean = total / n;
  return {mean, total_sq / n - mean * mean};
}

TEST(NormalTest, StandardNormalMoments) {
  Rng rng(1);
  const Moments m = EstimateMoments([&] { return SampleStandardNormal(rng); });
  EXPECT_NEAR(m.mean, 0.0, 0.01);
  EXPECT_NEAR(m.variance, 1.0, 0.02);
}

TEST(NormalTest, ShiftedScaledMoments) {
  Rng rng(2);
  const Moments m =
      EstimateMoments([&] { return SampleNormal(rng, 3.0, 2.0); });
  EXPECT_NEAR(m.mean, 3.0, 0.02);
  EXPECT_NEAR(m.variance, 4.0, 0.08);
}

TEST(NormalTest, ZeroStddevIsDeterministic) {
  Rng rng(3);
  EXPECT_DOUBLE_EQ(SampleNormal(rng, 5.0, 0.0), 5.0);
}

TEST(NormalTest, TailProbabilityRoughlyGaussian) {
  Rng rng(4);
  int beyond_two_sigma = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (std::fabs(SampleStandardNormal(rng)) > 2.0) ++beyond_two_sigma;
  }
  // P(|Z| > 2) ~ 0.0455.
  EXPECT_NEAR(static_cast<double>(beyond_two_sigma) / kSamples, 0.0455,
              0.005);
}

TEST(LaplaceTest, MomentsMatchTheory) {
  Rng rng(5);
  const double scale = 1.5;
  const Moments m =
      EstimateMoments([&] { return SampleLaplace(rng, -1.0, scale); });
  EXPECT_NEAR(m.mean, -1.0, 0.03);
  EXPECT_NEAR(m.variance, 2.0 * scale * scale, 0.1);
}

TEST(LaplaceTest, SymmetricAroundMean) {
  Rng rng(6);
  int above = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (SampleLaplace(rng, 2.0, 1.0) > 2.0) ++above;
  }
  EXPECT_NEAR(static_cast<double>(above) / kSamples, 0.5, 0.01);
}

TEST(UniformTest, MomentsMatchTheory) {
  Rng rng(7);
  const Moments m =
      EstimateMoments([&] { return SampleUniform(rng, 2.0, 6.0); });
  EXPECT_NEAR(m.mean, 4.0, 0.02);
  EXPECT_NEAR(m.variance, 16.0 / 12.0, 0.03);
}

TEST(BernoulliTest, FrequencyMatchesP) {
  Rng rng(8);
  int hits = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (SampleBernoulli(rng, 0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(BernoulliTest, DegenerateProbabilities) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(SampleBernoulli(rng, 0.0));
    EXPECT_TRUE(SampleBernoulli(rng, 1.0));
  }
}

TEST(VectorSamplersTest, DimensionsAndMoments) {
  Rng rng(10);
  const linalg::Vector v = SampleNormalVector(rng, 1000, 0.0, 2.0);
  EXPECT_EQ(v.size(), 1000u);
  // E||v||^2 = d * stddev^2 = 4000.
  EXPECT_NEAR(linalg::SquaredNorm2(v), 4000.0, 600.0);
}

TEST(VectorSamplersTest, LaplaceVectorSecondMoment) {
  Rng rng(11);
  const linalg::Vector v = SampleLaplaceVector(rng, 2000, 0.0, 1.0);
  // Var per coordinate = 2, so E||v||^2 = 4000.
  EXPECT_NEAR(linalg::SquaredNorm2(v), 4000.0, 800.0);
}

TEST(VectorSamplersTest, UniformVectorBounds) {
  Rng rng(12);
  const linalg::Vector v = SampleUniformVector(rng, 500, -1.0, 1.0);
  for (double x : v) {
    EXPECT_GE(x, -1.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(UnitSphereTest, HasUnitNorm) {
  Rng rng(13);
  for (size_t d : {1u, 2u, 5u, 50u}) {
    const linalg::Vector v = SampleUnitSphere(rng, d);
    EXPECT_EQ(v.size(), d);
    EXPECT_NEAR(linalg::Norm2(v), 1.0, 1e-12);
  }
}

TEST(UnitSphereTest, DirectionIsUnbiased) {
  Rng rng(14);
  linalg::Vector mean(3);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const linalg::Vector v = SampleUnitSphere(rng, 3);
    for (size_t j = 0; j < 3; ++j) mean[j] += v[j] / n;
  }
  EXPECT_LT(linalg::Norm2(mean), 0.02);
}

TEST(ZipfIndexTest, ProbabilitiesMatchTheExactLaw) {
  constexpr size_t kN = 100;
  constexpr double kS = 1.1;
  const ZipfIndex zipf(kN, kS);
  EXPECT_EQ(zipf.n(), kN);
  double norm = 0.0;
  for (size_t k = 0; k < kN; ++k) {
    norm += std::pow(static_cast<double>(k + 1), -kS);
  }
  double total = 0.0;
  for (size_t k = 0; k < kN; ++k) {
    const double expected =
        std::pow(static_cast<double>(k + 1), -kS) / norm;
    EXPECT_NEAR(zipf.Probability(k), expected, 1e-12) << "rank " << k;
    total += zipf.Probability(k);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(zipf.Probability(0), zipf.Probability(1));
}

TEST(ZipfIndexTest, SampleFrequenciesMatchProbabilities) {
  constexpr size_t kN = 50;
  const ZipfIndex zipf(kN, 1.1);
  Rng rng(77);
  std::vector<int> counts(kN, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const size_t k = zipf.Sample(rng);
    ASSERT_LT(k, kN);
    ++counts[k];
  }
  // The head ranks carry enough mass for tight frequency checks.
  for (size_t k = 0; k < 5; ++k) {
    const double freq = static_cast<double>(counts[k]) / kDraws;
    EXPECT_NEAR(freq, zipf.Probability(k), 0.01) << "rank " << k;
  }
  // Monotone-ish popularity: rank 0 dominates the tail.
  EXPECT_GT(counts[0], counts[kN - 1] * 10);
}

TEST(ZipfIndexTest, ZeroExponentIsUniform) {
  constexpr size_t kN = 8;
  const ZipfIndex zipf(kN, 0.0);
  for (size_t k = 0; k < kN; ++k) {
    EXPECT_NEAR(zipf.Probability(k), 1.0 / kN, 1e-12);
  }
}

}  // namespace
}  // namespace mbp::random

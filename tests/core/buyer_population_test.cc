#include "core/buyer_population.h"

#include <gtest/gtest.h>

#include "core/curves.h"
#include "data/split.h"
#include "data/synthetic.h"

namespace mbp::core {
namespace {

class BuyerPopulationTest : public ::testing::Test {
 protected:
  static Broker MakeBroker() {
    data::Simulated1Options data_options;
    data_options.num_examples = 400;
    data_options.num_features = 4;
    data_options.seed = 21;
    data::Dataset dataset = data::GenerateSimulated1(data_options).value();
    random::Rng rng(22);
    data::TrainTestSplit split =
        data::RandomSplit(dataset, 0.25, rng).value();
    MarketCurveOptions curve_options;
    curve_options.num_points = 8;
    curve_options.value_shape = ValueShape::kConcave;
    curve_options.demand_shape = DemandShape::kMidPeaked;
    Seller seller = Seller::Create("s", std::move(split),
                                   MakeMarketCurve(curve_options).value())
                        .value();
    ModelListing listing;
    listing.model = ml::ModelKind::kLinearRegression;
    listing.l2 = 1e-3;
    Broker::Options options;
    options.transform.grid_size = 6;
    options.transform.trials_per_delta = 40;
    return Broker::Create(std::move(seller), listing, options).value();
  }
};

TEST_F(BuyerPopulationTest, CountsAddUpAndRevenueMatchesBroker) {
  Broker broker = MakeBroker();
  random::Rng rng(1);
  PopulationOptions options;
  options.num_buyers = 500;
  auto outcome = SimulateBuyerPopulation(
      broker, broker.seller().market_research(), options, rng);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->buyers, 500u);
  EXPECT_EQ(outcome->sales + outcome->priced_out, 500u);
  EXPECT_NEAR(outcome->revenue, broker.total_revenue(), 1e-9);
  EXPECT_EQ(broker.transactions().size(), outcome->sales);
  EXPECT_NEAR(outcome->affordability,
              static_cast<double>(outcome->sales) / 500.0, 1e-12);
}

TEST_F(BuyerPopulationTest, RealizedMatchesExpectationForLargePopulations) {
  Broker broker = MakeBroker();
  random::Rng rng(2);
  PopulationOptions options;
  options.num_buyers = 4000;
  auto outcome = SimulateBuyerPopulation(
      broker, broker.seller().market_research(), options, rng);
  ASSERT_TRUE(outcome.ok());
  // Realized per-buyer revenue and affordability concentrate around the
  // curve-implied expectations (law of large numbers).
  EXPECT_NEAR(outcome->revenue / 4000.0,
              outcome->expected_revenue_per_buyer,
              0.05 * (1.0 + outcome->expected_revenue_per_buyer));
  EXPECT_NEAR(outcome->affordability, outcome->expected_affordability,
              0.05);
}

TEST_F(BuyerPopulationTest, OptimizedPricingSellsToAlmostEveryone) {
  // The DP nearly matches a concave value curve; only the lowest-quality
  // bucket (whose value-floor breaks the ratio constraint) may be priced
  // out, and it carries ~1% of demand.
  Broker broker = MakeBroker();
  random::Rng rng(3);
  PopulationOptions options;
  options.num_buyers = 300;
  auto outcome = SimulateBuyerPopulation(
      broker, broker.seller().market_research(), options, rng);
  ASSERT_TRUE(outcome.ok());
  EXPECT_LT(outcome->priced_out, 15u);  // < 5% of 300 buyers
  EXPECT_GT(outcome->expected_affordability, 0.95);
  EXPECT_GT(outcome->affordability, 0.95);
}

TEST_F(BuyerPopulationTest, JitterPricesSomeBuyersOut) {
  // With the DP charging exactly the valuations, negative jitter makes
  // some buyers unable to afford their level.
  Broker broker = MakeBroker();
  random::Rng rng(4);
  PopulationOptions options;
  options.num_buyers = 1000;
  options.valuation_jitter = 0.3;
  auto outcome = SimulateBuyerPopulation(
      broker, broker.seller().market_research(), options, rng);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome->priced_out, 0u);
  EXPECT_LT(outcome->affordability, 1.0);
  // Roughly half the jittered valuations fall below the posted price.
  EXPECT_NEAR(outcome->affordability, 0.5, 0.15);
}

TEST_F(BuyerPopulationTest, DeterministicForSeed) {
  Broker broker1 = MakeBroker();
  Broker broker2 = MakeBroker();
  PopulationOptions options;
  options.num_buyers = 200;
  random::Rng rng1(5), rng2(5);
  auto a = SimulateBuyerPopulation(
      broker1, broker1.seller().market_research(), options, rng1);
  auto b = SimulateBuyerPopulation(
      broker2, broker2.seller().market_research(), options, rng2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->sales, b->sales);
  EXPECT_DOUBLE_EQ(a->revenue, b->revenue);
}

TEST_F(BuyerPopulationTest, RejectsBadInputs) {
  Broker broker = MakeBroker();
  random::Rng rng(6);
  PopulationOptions options;
  EXPECT_FALSE(SimulateBuyerPopulation(broker, {}, options, rng).ok());
  options.num_buyers = 0;
  EXPECT_FALSE(SimulateBuyerPopulation(
                   broker, broker.seller().market_research(), options, rng)
                   .ok());
  options.num_buyers = 10;
  options.valuation_jitter = 1.0;
  EXPECT_FALSE(SimulateBuyerPopulation(
                   broker, broker.seller().market_research(), options, rng)
                   .ok());
}

}  // namespace
}  // namespace mbp::core

#include "core/ledger.h"

#include <fstream>

#include <gtest/gtest.h>

namespace mbp::core {
namespace {

LedgerRecord MakeRecord(const std::string& listing, uint64_t id,
                        double price) {
  return LedgerRecord{listing, id, 0.1, price, 0.02};
}

TEST(LedgerTest, AppendsAndTotals) {
  TransactionLedger ledger;
  ASSERT_TRUE(ledger.Append(MakeRecord("a", 1, 10.0)).ok());
  ASSERT_TRUE(ledger.Append(MakeRecord("b", 2, 25.5)).ok());
  ASSERT_TRUE(ledger.Append(MakeRecord("a", 3, 4.5)).ok());
  EXPECT_EQ(ledger.size(), 3u);
  EXPECT_NEAR(ledger.TotalRevenue(), 40.0, 1e-12);
  EXPECT_NEAR(ledger.RevenueForListing("a"), 14.5, 1e-12);
  EXPECT_NEAR(ledger.RevenueForListing("b"), 25.5, 1e-12);
  EXPECT_NEAR(ledger.RevenueForListing("ghost"), 0.0, 1e-12);
}

TEST(LedgerTest, BrokerCut) {
  TransactionLedger ledger;
  ASSERT_TRUE(ledger.Append(MakeRecord("a", 1, 100.0)).ok());
  EXPECT_NEAR(ledger.BrokerCut(0.15), 15.0, 1e-12);
  EXPECT_NEAR(ledger.BrokerCut(0.0), 0.0, 1e-12);
}

TEST(LedgerDeathTest, BadCutRateAborts) {
  TransactionLedger ledger;
  EXPECT_DEATH({ (void)ledger.BrokerCut(1.5); }, "rate");
}

TEST(LedgerTest, RejectsBadRecords) {
  TransactionLedger ledger;
  EXPECT_FALSE(ledger.Append(MakeRecord("", 1, 1.0)).ok());
  EXPECT_FALSE(ledger.Append(MakeRecord("has space", 1, 1.0)).ok());
  EXPECT_FALSE(ledger.Append(MakeRecord("a", 1, -1.0)).ok());
  LedgerRecord negative_ncp = MakeRecord("a", 1, 1.0);
  negative_ncp.ncp = -0.1;
  EXPECT_FALSE(ledger.Append(negative_ncp).ok());
  EXPECT_EQ(ledger.size(), 0u);
}

TEST(LedgerTest, SaveLoadRoundTrip) {
  TransactionLedger ledger;
  ASSERT_TRUE(ledger.Append(MakeRecord("income-linreg", 7, 12.25)).ok());
  ASSERT_TRUE(ledger.Append(MakeRecord("tweets", 8, 0.0)).ok());
  const std::string path = testing::TempDir() + "/ledger.mbp";
  ASSERT_TRUE(ledger.SaveTo(path).ok());
  auto loaded = TransactionLedger::LoadFrom(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->records()[0].listing_id, "income-linreg");
  EXPECT_EQ(loaded->records()[0].transaction_id, 7u);
  EXPECT_DOUBLE_EQ(loaded->records()[0].price, 12.25);
  EXPECT_DOUBLE_EQ(loaded->records()[1].price, 0.0);
  EXPECT_NEAR(loaded->TotalRevenue(), ledger.TotalRevenue(), 1e-12);
}

TEST(LedgerTest, EmptyLedgerRoundTrips) {
  TransactionLedger ledger;
  const std::string path = testing::TempDir() + "/empty_ledger.mbp";
  ASSERT_TRUE(ledger.SaveTo(path).ok());
  auto loaded = TransactionLedger::LoadFrom(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
}

TEST(LedgerTest, LoadRejectsCorruptFiles) {
  const std::string path = testing::TempDir() + "/corrupt_ledger.mbp";
  {
    std::ofstream out(path);
    out << "not a ledger\n";
  }
  EXPECT_EQ(TransactionLedger::LoadFrom(path).status().code(),
            StatusCode::kInvalidArgument);
  {
    std::ofstream out(path);
    out << "mbp-ledger v1\nlisting 1 0.1 abc 0.2\n";
  }
  EXPECT_FALSE(TransactionLedger::LoadFrom(path).ok());
  {
    std::ofstream out(path);
    out << "mbp-ledger v1\nlisting 1 0.1 5.0\n";  // missing field
  }
  EXPECT_FALSE(TransactionLedger::LoadFrom(path).ok());
  EXPECT_EQ(TransactionLedger::LoadFrom("/no/such/ledger").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace mbp::core

#include "core/marketplace.h"

#include <gtest/gtest.h>

#include "core/curves.h"
#include "data/split.h"
#include "data/synthetic.h"

namespace mbp::core {
namespace {

Seller MakeSeller(const std::string& name, bool classification,
                  uint64_t seed) {
  data::Dataset dataset = [&] {
    if (classification) {
      data::Simulated2Options options;
      options.num_examples = 400;
      options.num_features = 4;
      options.seed = seed;
      return data::GenerateSimulated2(options).value();
    }
    data::Simulated1Options options;
    options.num_examples = 400;
    options.num_features = 4;
    options.seed = seed;
    return data::GenerateSimulated1(options).value();
  }();
  random::Rng rng(seed + 1);
  data::TrainTestSplit split = data::RandomSplit(dataset, 0.25, rng).value();
  MarketCurveOptions curve_options;
  curve_options.num_points = 6;
  return Seller::Create(name, std::move(split),
                        MakeMarketCurve(curve_options).value())
      .value();
}

Broker::Options FastOptions() {
  Broker::Options options;
  options.transform.grid_size = 6;
  options.transform.trials_per_delta = 50;
  return options;
}

ModelListing RegressionListing() {
  ModelListing listing;
  listing.model = ml::ModelKind::kLinearRegression;
  listing.l2 = 1e-3;
  listing.test_error = ml::LossKind::kSquare;
  return listing;
}

ModelListing ClassificationListing() {
  ModelListing listing;
  listing.model = ml::ModelKind::kLogisticRegression;
  listing.l2 = 0.01;
  listing.test_error = ml::LossKind::kZeroOne;
  return listing;
}

TEST(MarketplaceTest, ListsMultipleModelFamilies) {
  Marketplace market;
  ASSERT_TRUE(market
                  .List("income-linreg", MakeSeller("census", false, 1),
                        RegressionListing(), FastOptions())
                  .ok());
  ASSERT_TRUE(market
                  .List("tweets-logreg", MakeSeller("twitter", true, 2),
                        ClassificationListing(), FastOptions())
                  .ok());
  EXPECT_EQ(market.num_listings(), 2u);

  const std::vector<CatalogEntry> catalog = market.Catalog();
  ASSERT_EQ(catalog.size(), 2u);
  EXPECT_EQ(catalog[0].id, "income-linreg");
  EXPECT_EQ(catalog[0].model, ml::ModelKind::kLinearRegression);
  EXPECT_EQ(catalog[1].seller_name, "twitter");
}

TEST(MarketplaceTest, RejectsDuplicateIds) {
  Marketplace market;
  ASSERT_TRUE(market
                  .List("dup", MakeSeller("a", false, 3),
                        RegressionListing(), FastOptions())
                  .ok());
  EXPECT_EQ(market
                .List("dup", MakeSeller("b", false, 4),
                      RegressionListing(), FastOptions())
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(market.num_listings(), 1u);
}

TEST(MarketplaceTest, RejectsEmptyId) {
  Marketplace market;
  EXPECT_FALSE(market
                   .List("", MakeSeller("a", false, 5),
                         RegressionListing(), FastOptions())
                   .ok());
}

TEST(MarketplaceTest, ListPropagatesBrokerFailures) {
  Marketplace market;
  // Classification listing on regression data fails inside Broker::Create.
  EXPECT_FALSE(market
                   .List("bad", MakeSeller("a", false, 6),
                         ClassificationListing(), FastOptions())
                   .ok());
  EXPECT_EQ(market.num_listings(), 0u);
}

TEST(MarketplaceTest, LookupAndPurchase) {
  Marketplace market;
  ASSERT_TRUE(market
                  .List("m1", MakeSeller("a", false, 7),
                        RegressionListing(), FastOptions())
                  .ok());
  auto broker = market.Lookup("m1");
  ASSERT_TRUE(broker.ok());
  auto txn = (*broker)->BuyWithPriceBudget(20.0);
  ASSERT_TRUE(txn.ok());
  EXPECT_NEAR(market.TotalRevenue(), txn->price, 1e-9);
}

TEST(MarketplaceTest, LookupMissingIsNotFound) {
  Marketplace market;
  EXPECT_EQ(market.Lookup("ghost").status().code(), StatusCode::kNotFound);
}

TEST(MarketplaceTest, TotalRevenueAggregatesAcrossListings) {
  Marketplace market;
  ASSERT_TRUE(market
                  .List("m1", MakeSeller("a", false, 8),
                        RegressionListing(), FastOptions())
                  .ok());
  ASSERT_TRUE(market
                  .List("m2", MakeSeller("b", true, 9),
                        ClassificationListing(), FastOptions())
                  .ok());
  auto b1 = market.Lookup("m1");
  auto b2 = market.Lookup("m2");
  ASSERT_TRUE(b1.ok() && b2.ok());
  auto t1 = (*b1)->BuyWithPriceBudget(15.0);
  auto t2 = (*b2)->BuyWithPriceBudget(25.0);
  ASSERT_TRUE(t1.ok() && t2.ok());
  EXPECT_NEAR(market.TotalRevenue(), t1->price + t2->price, 1e-9);
}

TEST(MarketplaceTest, BuildLedgerSnapshotsAllSales) {
  Marketplace market;
  ASSERT_TRUE(market
                  .List("m1", MakeSeller("a", false, 14),
                        RegressionListing(), FastOptions())
                  .ok());
  ASSERT_TRUE(market
                  .List("m2", MakeSeller("b", true, 15),
                        ClassificationListing(), FastOptions())
                  .ok());
  auto b1 = market.Lookup("m1");
  auto b2 = market.Lookup("m2");
  ASSERT_TRUE(b1.ok() && b2.ok());
  ASSERT_TRUE((*b1)->BuyWithPriceBudget(10.0).ok());
  ASSERT_TRUE((*b1)->BuyWithPriceBudget(20.0).ok());
  ASSERT_TRUE((*b2)->BuyWithPriceBudget(30.0).ok());

  const TransactionLedger ledger = market.BuildLedger();
  EXPECT_EQ(ledger.size(), 3u);
  EXPECT_NEAR(ledger.TotalRevenue(), market.TotalRevenue(), 1e-9);
  EXPECT_NEAR(ledger.RevenueForListing("m1") +
                  ledger.RevenueForListing("m2"),
              ledger.TotalRevenue(), 1e-9);
  EXPECT_EQ(ledger.records()[0].listing_id, "m1");
  EXPECT_EQ(ledger.records()[2].listing_id, "m2");
}

TEST(MarketplaceTest, DelistRemovesListing) {
  Marketplace market;
  ASSERT_TRUE(market
                  .List("m1", MakeSeller("a", false, 10),
                        RegressionListing(), FastOptions())
                  .ok());
  ASSERT_TRUE(market.Delist("m1").ok());
  EXPECT_EQ(market.num_listings(), 0u);
  EXPECT_EQ(market.Lookup("m1").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(market.Delist("m1").code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace mbp::core

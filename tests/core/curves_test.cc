#include "core/curves.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mbp::core {
namespace {

MarketCurveOptions BaseOptions() {
  MarketCurveOptions options;
  options.num_points = 10;
  options.x_min = 10.0;
  options.x_max = 100.0;
  options.max_value = 100.0;
  return options;
}

TEST(MakeMarketCurveTest, GridIsEquallySpaced) {
  auto curve = MakeMarketCurve(BaseOptions());
  ASSERT_TRUE(curve.ok());
  ASSERT_EQ(curve->size(), 10u);
  EXPECT_DOUBLE_EQ(curve->front().x, 10.0);
  EXPECT_DOUBLE_EQ(curve->back().x, 100.0);
  EXPECT_NEAR((*curve)[1].x - (*curve)[0].x, 10.0, 1e-12);
}

TEST(MakeMarketCurveTest, DemandSumsToOne) {
  for (DemandShape shape :
       {DemandShape::kUniform, DemandShape::kMidPeaked,
        DemandShape::kExtremes, DemandShape::kHighAccuracy,
        DemandShape::kLowAccuracy}) {
    MarketCurveOptions options = BaseOptions();
    options.demand_shape = shape;
    auto curve = MakeMarketCurve(options);
    ASSERT_TRUE(curve.ok());
    double total = 0.0;
    for (const CurvePoint& point : *curve) {
      EXPECT_GE(point.demand, 0.0);
      total += point.demand;
    }
    EXPECT_NEAR(total, 1.0, 1e-12) << DemandShapeToString(shape);
  }
}

TEST(MakeMarketCurveTest, ValuesAreNonDecreasingForEveryShape) {
  for (ValueShape shape : {ValueShape::kLinear, ValueShape::kConvex,
                           ValueShape::kConcave, ValueShape::kSigmoid}) {
    MarketCurveOptions options = BaseOptions();
    options.value_shape = shape;
    auto curve = MakeMarketCurve(options);
    ASSERT_TRUE(curve.ok());
    for (size_t j = 1; j < curve->size(); ++j) {
      EXPECT_LE((*curve)[j - 1].value, (*curve)[j].value + 1e-12)
          << ValueShapeToString(shape);
    }
    EXPECT_NEAR(curve->back().value, 100.0, 1e-9);
    EXPECT_GT(curve->front().value, 0.0);
  }
}

TEST(MakeMarketCurveTest, ConvexIsBelowLinearInTheMiddle) {
  MarketCurveOptions linear = BaseOptions();
  MarketCurveOptions convex = BaseOptions();
  convex.value_shape = ValueShape::kConvex;
  auto linear_curve = MakeMarketCurve(linear);
  auto convex_curve = MakeMarketCurve(convex);
  ASSERT_TRUE(linear_curve.ok() && convex_curve.ok());
  const size_t mid = 5;
  EXPECT_LT((*convex_curve)[mid].value, (*linear_curve)[mid].value);
}

TEST(MakeMarketCurveTest, ConcaveIsAboveLinearInTheMiddle) {
  MarketCurveOptions linear = BaseOptions();
  MarketCurveOptions concave = BaseOptions();
  concave.value_shape = ValueShape::kConcave;
  auto linear_curve = MakeMarketCurve(linear);
  auto concave_curve = MakeMarketCurve(concave);
  ASSERT_TRUE(linear_curve.ok() && concave_curve.ok());
  const size_t mid = 5;
  EXPECT_GT((*concave_curve)[mid].value, (*linear_curve)[mid].value);
}

TEST(MakeMarketCurveTest, MidPeakedDemandPeaksInMiddle) {
  MarketCurveOptions options = BaseOptions();
  options.demand_shape = DemandShape::kMidPeaked;
  auto curve = MakeMarketCurve(options);
  ASSERT_TRUE(curve.ok());
  const double middle = (*curve)[4].demand + (*curve)[5].demand;
  const double ends = curve->front().demand + curve->back().demand;
  EXPECT_GT(middle, 3.0 * ends);
}

TEST(MakeMarketCurveTest, ExtremesDemandIsBimodal) {
  MarketCurveOptions options = BaseOptions();
  options.demand_shape = DemandShape::kExtremes;
  auto curve = MakeMarketCurve(options);
  ASSERT_TRUE(curve.ok());
  const double ends = curve->front().demand + curve->back().demand;
  const double middle = (*curve)[4].demand + (*curve)[5].demand;
  EXPECT_GT(ends, 3.0 * middle);
}

TEST(MakeMarketCurveTest, RejectsBadOptions) {
  MarketCurveOptions options = BaseOptions();
  options.num_points = 1;
  EXPECT_FALSE(MakeMarketCurve(options).ok());
  options = BaseOptions();
  options.x_min = 0.0;
  EXPECT_FALSE(MakeMarketCurve(options).ok());
  options = BaseOptions();
  options.x_max = options.x_min;
  EXPECT_FALSE(MakeMarketCurve(options).ok());
  options = BaseOptions();
  options.max_value = 0.0;
  EXPECT_FALSE(MakeMarketCurve(options).ok());
}

TEST(ShapeNamesTest, AreStable) {
  EXPECT_EQ(ValueShapeToString(ValueShape::kConvex), "convex");
  EXPECT_EQ(DemandShapeToString(DemandShape::kExtremes), "extremes");
}

}  // namespace
}  // namespace mbp::core

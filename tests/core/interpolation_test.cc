#include "core/interpolation.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "random/rng.h"

namespace mbp::core {
namespace {

constexpr double kTol = 1e-6;

bool RelaxedFeasible(const std::vector<InterpolationPoint>& points,
                     const std::vector<double>& prices) {
  for (size_t j = 0; j < prices.size(); ++j) {
    if (prices[j] < -kTol) return false;
    if (j > 0) {
      if (prices[j] + kTol < prices[j - 1]) return false;
      if (prices[j] / points[j].a >
          prices[j - 1] / points[j - 1].a + kTol) {
        return false;
      }
    }
  }
  return true;
}

std::vector<InterpolationPoint> ConcaveTargets() {
  // Already feasible: increasing, ratio decreasing.
  return {{1.0, 10.0}, {2.0, 14.0}, {3.0, 17.0}, {4.0, 19.0}};
}

std::vector<InterpolationPoint> ConvexTargets() {
  // Infeasible as-is: ratio increasing.
  return {{1.0, 1.0}, {2.0, 4.0}, {3.0, 9.0}, {4.0, 16.0}};
}

using SolverFn = StatusOr<InterpolationResult> (*)(
    const std::vector<InterpolationPoint>&);

StatusOr<InterpolationResult> SquaredDefault(
    const std::vector<InterpolationPoint>& points) {
  return InterpolateSquaredLoss(points);
}

class InterpolationSolverTest : public ::testing::TestWithParam<SolverFn> {};

TEST_P(InterpolationSolverTest, FeasibleTargetsAreReproducedExactly) {
  auto result = GetParam()(ConcaveTargets());
  ASSERT_TRUE(result.ok()) << result.status();
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(result->prices[j], ConcaveTargets()[j].target_price, 1e-5);
  }
  EXPECT_NEAR(result->objective, 0.0, 1e-4);
}

TEST_P(InterpolationSolverTest, OutputIsAlwaysFeasible) {
  random::Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 2 + rng.NextBounded(8);
    std::vector<InterpolationPoint> points(n);
    for (size_t j = 0; j < n; ++j) {
      points[j] = {static_cast<double>(j + 1), rng.NextDouble(0.0, 100.0)};
    }
    auto result = GetParam()(points);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(RelaxedFeasible(points, result->prices)) << "trial "
                                                         << trial;
  }
}

TEST_P(InterpolationSolverTest, RejectsInvalidInputs) {
  EXPECT_FALSE(GetParam()({}).ok());
  EXPECT_FALSE(GetParam()({{1.0, 5.0}, {1.0, 6.0}}).ok());  // duplicate a
  EXPECT_FALSE(GetParam()({{1.0, -5.0}}).ok());             // negative P
}

INSTANTIATE_TEST_SUITE_P(Solvers, InterpolationSolverTest,
                         ::testing::Values(&SquaredDefault,
                                           &InterpolateAbsoluteLoss));

TEST(SquaredLossInterpolationTest, ProjectsConvexTargets) {
  auto result = InterpolateSquaredLoss(ConvexTargets());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(RelaxedFeasible(ConvexTargets(), result->prices));
  EXPECT_GT(result->objective, 0.0);  // cannot interpolate exactly
}

TEST(SquaredLossInterpolationTest, IsTheEuclideanProjection) {
  // Dykstra must beat (or match) any feasible candidate in squared
  // distance; compare against random feasible candidates.
  const std::vector<InterpolationPoint> points = ConvexTargets();
  auto result = InterpolateSquaredLoss(points);
  ASSERT_TRUE(result.ok());
  random::Rng rng(31);
  for (int trial = 0; trial < 300; ++trial) {
    // Random feasible candidate: generate a decreasing ratio sequence and
    // rescale, then fix monotonicity by accumulation.
    std::vector<double> candidate(points.size());
    double ratio = rng.NextDouble(0.5, 6.0);
    for (size_t j = 0; j < points.size(); ++j) {
      candidate[j] = ratio * points[j].a;
      ratio *= rng.NextDouble(0.5, 1.0);  // ratio non-increasing
      // Enforce monotone non-decreasing prices.
      if (j > 0 && candidate[j] < candidate[j - 1]) {
        candidate[j] = candidate[j - 1];
        ratio = candidate[j] / points[j].a;
      }
    }
    if (!RelaxedFeasible(points, candidate)) continue;
    double objective = 0.0;
    for (size_t j = 0; j < points.size(); ++j) {
      const double diff = candidate[j] - points[j].target_price;
      objective += diff * diff;
    }
    EXPECT_GE(objective + 1e-6, result->objective);
  }
}

TEST(SquaredLossInterpolationTest, Converges) {
  auto result = InterpolateSquaredLoss(ConvexTargets());
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->iterations, 10000u);
}

TEST(AbsoluteLossInterpolationTest, ProjectsConvexTargets) {
  auto result = InterpolateAbsoluteLoss(ConvexTargets());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(RelaxedFeasible(ConvexTargets(), result->prices));
}

TEST(AbsoluteLossInterpolationTest, L1BeatsOrMatchesL2SolutionInL1) {
  // The LP minimizes the L1 objective, so its L1 error is <= the Dykstra
  // (L2) solution's L1 error.
  const std::vector<InterpolationPoint> points = ConvexTargets();
  auto l1 = InterpolateAbsoluteLoss(points);
  auto l2 = InterpolateSquaredLoss(points);
  ASSERT_TRUE(l1.ok() && l2.ok());
  double l2_solution_l1_error = 0.0;
  for (size_t j = 0; j < points.size(); ++j) {
    l2_solution_l1_error +=
        std::fabs(l2->prices[j] - points[j].target_price);
  }
  EXPECT_LE(l1->objective, l2_solution_l1_error + 1e-6);
}

TEST(AbsoluteLossInterpolationTest, SinglePointIsExact) {
  auto result = InterpolateAbsoluteLoss({{2.0, 7.0}});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->prices[0], 7.0, 1e-9);
  EXPECT_NEAR(result->objective, 0.0, 1e-9);
}

TEST(SquaredLossInterpolationTest, AllZeroTargetsStayZero) {
  auto result = InterpolateSquaredLoss({{1.0, 0.0}, {2.0, 0.0}});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->prices[0], 0.0, 1e-9);
  EXPECT_NEAR(result->prices[1], 0.0, 1e-9);
}

}  // namespace
}  // namespace mbp::core

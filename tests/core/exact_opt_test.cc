#include "core/exact_opt.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "core/revenue_opt.h"
#include "random/rng.h"

namespace mbp::core {
namespace {

std::vector<CurvePoint> Figure5Curve() {
  return {{1.0, 100.0, 0.25},
          {2.0, 150.0, 0.25},
          {3.0, 280.0, 0.25},
          {4.0, 350.0, 0.25}};
}

TEST(MaximizeRevenueExactTest, Figure5OptimumPricesMatchPaper) {
  // Figure 5(d): charging every valuation (100, 150, 280, 350) has
  // arbitrage (280 > 100 + 150 and 350 > 150 + 150). The revenue-optimal
  // subadditive pricing caps a3 at 100+150 = 250 and a4 at 150+150 = 300
  // — exactly the 250/300 price callouts in the figure — for revenue
  // 0.25 * (100 + 150 + 250 + 300) = 200.
  auto result = MaximizeRevenueExact(Figure5Curve());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->prices.size(), 4u);
  EXPECT_NEAR(result->prices[0], 100.0, 1e-6);
  EXPECT_NEAR(result->prices[1], 150.0, 1e-6);
  EXPECT_NEAR(result->prices[2], 250.0, 1e-6);
  EXPECT_NEAR(result->prices[3], 300.0, 1e-6);
  EXPECT_NEAR(result->revenue, 200.0, 1e-6);
  EXPECT_NEAR(result->affordability, 1.0, 1e-9);
}

TEST(MaximizeRevenueExactTest, ExactBeatsOrMatchesDp) {
  random::Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = 2 + rng.NextBounded(5);
    std::vector<CurvePoint> curve(n);
    double v = 0.0;
    for (size_t j = 0; j < n; ++j) {
      v += 1.0 + static_cast<double>(rng.NextBounded(30));
      curve[j] = {static_cast<double>(j + 1), v,
                  0.05 + 0.05 * static_cast<double>(rng.NextBounded(6))};
    }
    auto exact = MaximizeRevenueExact(curve);
    auto dp = MaximizeRevenueDp(curve);
    ASSERT_TRUE(exact.ok() && dp.ok());
    // Relaxed-feasible solutions are a subset of truly subadditive ones
    // (Lemma 8), so the exact optimum dominates...
    EXPECT_GE(exact->revenue + 1e-6, dp->revenue) << "trial " << trial;
    // ...and Proposition 3 bounds the gap: C_SA / 2 <= C_MBP.
    EXPECT_GE(dp->revenue + 1e-6, exact->revenue / 2.0)
        << "trial " << trial;
  }
}

TEST(MaximizeRevenueExactTest, ExactPricesAdmitSubadditiveExtension) {
  // The returned prices must themselves pass the covering feasibility
  // test, i.e. be consistent with SOME monotone subadditive function.
  auto result = MaximizeRevenueExact(Figure5Curve());
  ASSERT_TRUE(result.ok());
  std::vector<InterpolationPoint> points;
  const std::vector<CurvePoint> curve = Figure5Curve();
  for (size_t j = 0; j < curve.size(); ++j) {
    // Guard: zero prices would trip Definition 6's positivity, skip those.
    if (result->prices[j] <= 0.0) return;
    points.push_back({curve[j].x, result->prices[j]});
  }
  auto feasible = SubadditiveInterpolationFeasible(points);
  ASSERT_TRUE(feasible.ok());
  EXPECT_TRUE(feasible.value());
}

TEST(MaximizeRevenueExactTest, ConcaveValuationsAreFullyExtracted) {
  // Concave (subadditive) valuations can be charged exactly.
  const std::vector<CurvePoint> curve{{1.0, 10.0, 0.25},
                                      {2.0, 18.0, 0.25},
                                      {3.0, 24.0, 0.25},
                                      {4.0, 28.0, 0.25}};
  auto result = MaximizeRevenueExact(curve);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->revenue, 0.25 * (10.0 + 18.0 + 24.0 + 28.0), 1e-6);
  EXPECT_NEAR(result->affordability, 1.0, 1e-9);
}

TEST(MaximizeRevenueExactTest, RejectsOffGridX) {
  const std::vector<CurvePoint> curve{{1.0, 10.0, 0.5},
                                      {std::sqrt(2.0), 20.0, 0.5}};
  EXPECT_EQ(MaximizeRevenueExact(curve).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MaximizeRevenueExactTest, HandlesScaledGrids) {
  // x = 10, 20, 30, 40 shares base 10; behaves like a = 1..4.
  std::vector<CurvePoint> curve = Figure5Curve();
  for (CurvePoint& point : curve) point.x *= 10.0;
  auto result = MaximizeRevenueExact(curve);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->revenue, 200.0, 1e-6);
}

TEST(MaximizeRevenueExactTest, RejectsDecreasingValuations) {
  EXPECT_FALSE(
      MaximizeRevenueExact({{1.0, 10.0, 0.5}, {2.0, 5.0, 0.5}}).ok());
}

// Independent verification of the anchor-closure argument: enumerate ALL
// integer price assignments (not just anchor closures) with monotonicity
// and covering feasibility, and confirm the anchor-based solver finds the
// same optimum. Covering feasibility here is checked from first
// principles with its own unbounded-knapsack DP.
namespace brute {

double MinCover(const std::vector<size_t>& units,
                const std::vector<double>& prices, size_t target) {
  std::vector<double> cover(target + 1, 1e18);
  cover[0] = 0.0;
  for (size_t t = 1; t <= target; ++t) {
    for (size_t j = 0; j < units.size(); ++j) {
      const size_t rest = t > units[j] ? t - units[j] : 0;
      cover[t] = std::min(cover[t], prices[j] + cover[rest]);
    }
  }
  return cover[target];
}

bool Feasible(const std::vector<size_t>& units,
              const std::vector<double>& prices) {
  for (size_t j = 1; j < prices.size(); ++j) {
    if (prices[j] + 1e-9 < prices[j - 1]) return false;
  }
  for (size_t j = 0; j < units.size(); ++j) {
    if (MinCover(units, prices, units[j]) + 1e-9 < prices[j]) return false;
  }
  return true;
}

double Optimum(const std::vector<CurvePoint>& curve,
               const std::vector<size_t>& units, int max_price) {
  const size_t n = curve.size();
  std::vector<double> prices(n, 0.0);
  double best = 0.0;
  const std::function<void(size_t)> dfs = [&](size_t j) {
    if (j == n) {
      if (Feasible(units, prices)) {
        best = std::max(best, RevenueOf(curve, prices));
      }
      return;
    }
    for (int p = 0; p <= max_price; ++p) {
      prices[j] = static_cast<double>(p);
      dfs(j + 1);
    }
  };
  dfs(0);
  return best;
}

}  // namespace brute

TEST(MaximizeRevenueExactTest, AnchorClosureMatchesFullEnumeration) {
  // Tiny instances with integer valuations <= 12 so the 13^3 full
  // enumeration is tractable; the anchor-based solver must match it.
  random::Rng rng(2024);
  for (int trial = 0; trial < 8; ++trial) {
    const size_t n = 2 + rng.NextBounded(2);  // 2 or 3 points
    std::vector<CurvePoint> curve(n);
    std::vector<size_t> units(n);
    double v = 0.0;
    for (size_t j = 0; j < n; ++j) {
      v += 1.0 + static_cast<double>(rng.NextBounded(5));
      v = std::min(v, 12.0);
      curve[j] = {static_cast<double>(j + 1), v,
                  0.2 + 0.1 * static_cast<double>(rng.NextBounded(4))};
      units[j] = j + 1;
    }
    auto exact = MaximizeRevenueExact(curve);
    ASSERT_TRUE(exact.ok());
    const double reference = brute::Optimum(curve, units, 12);
    EXPECT_NEAR(exact->revenue, reference, 1e-6) << "trial " << trial;
  }
}

// ----------------------------- subadditive interpolation (Definition 6)

TEST(SubadditiveInterpolationTest, ConcavePointsAreFeasible) {
  auto feasible = SubadditiveInterpolationFeasible(
      {{1.0, 10.0}, {2.0, 18.0}, {3.0, 24.0}});
  ASSERT_TRUE(feasible.ok());
  EXPECT_TRUE(feasible.value());
}

TEST(SubadditiveInterpolationTest, CoverableTargetIsInfeasible) {
  // P(2) = 25 > 2 * P(1) = 20: two copies of a_1 cover a_2 cheaper.
  auto feasible =
      SubadditiveInterpolationFeasible({{1.0, 10.0}, {2.0, 25.0}});
  ASSERT_TRUE(feasible.ok());
  EXPECT_FALSE(feasible.value());
}

TEST(SubadditiveInterpolationTest, ExactDoublingIsFeasible) {
  auto feasible =
      SubadditiveInterpolationFeasible({{1.0, 10.0}, {2.0, 20.0}});
  ASSERT_TRUE(feasible.ok());
  EXPECT_TRUE(feasible.value());
}

TEST(SubadditiveInterpolationTest, TheoremSevenReductionInstance) {
  // The unbounded-subset-sum reduction from Theorem 7: points
  // (w_j, w_j) for weights {2, 3} plus (K, K + 1/2). Feasible iff no
  // subset sum hits K. K = 7 = 2+2+3 is a sum -> infeasible;
  // K = 1 is not (weights exceed it... use K below min weight is trivially
  // sum-free) -> with weights {2,3}, K=7 covered exactly.
  auto infeasible = SubadditiveInterpolationFeasible(
      {{2.0, 2.0}, {3.0, 3.0}, {7.0, 7.5}});
  ASSERT_TRUE(infeasible.ok());
  EXPECT_FALSE(infeasible.value());

  // With weights {2, 6}, K = 5 is not an unbounded subset sum, but any
  // multiset covering 5 costs at least 6 (e.g. 2+2+2 or 6), and
  // P(5) = 5.5 < 6 -> feasible.
  auto feasible = SubadditiveInterpolationFeasible(
      {{2.0, 2.0}, {5.0, 5.5}, {6.0, 6.0}});
  ASSERT_TRUE(feasible.ok());
  EXPECT_TRUE(feasible.value());
}

TEST(SubadditiveInterpolationTest, NonMonotonePointsAreInfeasible) {
  auto feasible =
      SubadditiveInterpolationFeasible({{1.0, 10.0}, {2.0, 8.0}});
  ASSERT_TRUE(feasible.ok());
  EXPECT_FALSE(feasible.value());
}

TEST(SubadditiveInterpolationTest, ZeroPriceViolatesPositivity) {
  auto feasible = SubadditiveInterpolationFeasible({{1.0, 0.0}});
  ASSERT_TRUE(feasible.ok());
  EXPECT_FALSE(feasible.value());
}

TEST(MaximizeRevenueExactTest, ParallelEnumerationBitIdenticalToSerial) {
  // 13 points spread the 2^13 - 1 anchor subsets over multiple mask
  // chunks; the chunk-ordered reduction must reproduce the serial scan.
  random::Rng rng(23);
  std::vector<CurvePoint> curve(13);
  double v = 0.0;
  for (size_t j = 0; j < curve.size(); ++j) {
    v += 1.0 + static_cast<double>(rng.NextBounded(25));
    curve[j] = {static_cast<double>(j + 1), v,
                0.05 + 0.05 * static_cast<double>(rng.NextBounded(6))};
  }
  const auto serial =
      MaximizeRevenueExact(curve, 100000, ParallelConfig::Serial());
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {size_t{2}, size_t{8}}) {
    ParallelConfig parallel;
    parallel.num_threads = threads;
    const auto result = MaximizeRevenueExact(curve, 100000, parallel);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(serial->revenue, result->revenue);
    EXPECT_EQ(serial->prices, result->prices);
  }
}

TEST(SubadditiveInterpolationTest, RejectsBadInputs) {
  EXPECT_FALSE(SubadditiveInterpolationFeasible({}).ok());
  EXPECT_FALSE(
      SubadditiveInterpolationFeasible({{1.0, 1.0}, {1.0, 2.0}}).ok());
}

}  // namespace
}  // namespace mbp::core

// Randomized property tests that check the paper's formal results
// directly, on top of the unit tests for the individual modules:
//   Lemma 1   — arbitrage-free => error-monotone
//   Theorem 4 — expected convex error is monotone in delta
//   Theorem 5 — monotone+subadditive <=> no combination attack
//   Lemma 8   — relaxed-feasible => subadditive
//   Lemma 9   — the relaxed minorant loses at most a factor 2
//   Prop. 1   — knot feasibility extends to the whole curve
//   Prop. 3   — DP revenue >= exact optimum / 2

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/arbitrage.h"
#include "core/curves.h"
#include "core/exact_opt.h"
#include "core/interpolation.h"
#include "core/pricing_function.h"
#include "core/revenue_opt.h"
#include "random/rng.h"

namespace mbp::core {
namespace {

class TheoryPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  random::Rng rng_{GetParam()};

  // Random relaxed-feasible knots: prices non-decreasing with price/x
  // non-increasing, on a random increasing grid. At each knot the price
  // is sampled uniformly from the (always non-empty) feasible interval
  // [prev_price, prev_ratio * x].
  PiecewiseLinearPricing RandomFeasiblePricing(size_t n) {
    std::vector<PricePoint> points(n);
    double x = rng_.NextDouble(0.5, 3.0);
    double price = rng_.NextDouble(1.0, 20.0);
    points[0] = {x, price};
    for (size_t j = 1; j < n; ++j) {
      const double prev_ratio = price / x;
      x += rng_.NextDouble(0.5, 3.0);
      price = rng_.NextDouble(price, prev_ratio * x);
      points[j] = {x, price};
    }
    return PiecewiseLinearPricing::Create(std::move(points)).value();
  }
};

TEST_P(TheoryPropertyTest, Theorem5Forward_FeasibleCurvesAreSafe) {
  const size_t n = 3 + rng_.NextBounded(8);
  const PiecewiseLinearPricing pricing = RandomFeasiblePricing(n);
  if (!pricing.ValidateArbitrageFree().ok()) {
    GTEST_SKIP() << "generator produced a non-feasible curve";
  }
  const auto price = [&](double x) { return pricing.PriceAtInverseNcp(x); };
  const double x_max = pricing.points().back().x * 2.0;
  EXPECT_FALSE(FindArbitrageAttack(price, x_max, 120).has_value());
  EXPECT_TRUE(IsArbitrageFreeOnGrid(price, x_max, 120));
}

TEST_P(TheoryPropertyTest, Theorem5Converse_ViolationsAreAttackable) {
  // Inject a superadditive bump into an otherwise feasible curve: raise
  // the last knot's price far above the subadditive cap.
  const size_t n = 4 + rng_.NextBounded(5);
  const PiecewiseLinearPricing base = RandomFeasiblePricing(n);
  std::vector<PricePoint> points = base.points();
  // Price at the last knot = 3x the price at ~half its x, making
  // "buy two halves" strictly cheaper.
  const double half_x = points.back().x / 2.0;
  const double half_price = base.PriceAtInverseNcp(half_x);
  if (half_price <= 0.0) GTEST_SKIP() << "degenerate zero-price curve";
  points.back().price = 3.0 * half_price;
  auto broken = PiecewiseLinearPricing::Create(points);
  ASSERT_TRUE(broken.ok());
  const auto price = [&](double x) {
    return broken->PriceAtInverseNcp(x);
  };
  auto attack =
      FindArbitrageAttack(price, points.back().x, 200, 1e-9);
  ASSERT_TRUE(attack.has_value());
  EXPECT_LT(attack->total_price, attack->target_price);
}

TEST_P(TheoryPropertyTest, Lemma8_RelaxedFeasiblePassesSubadditivity) {
  const size_t n = 3 + rng_.NextBounded(8);
  const PiecewiseLinearPricing pricing = RandomFeasiblePricing(n);
  if (!pricing.ValidateArbitrageFree().ok()) GTEST_SKIP();
  const auto price = [&](double x) { return pricing.PriceAtInverseNcp(x); };
  EXPECT_FALSE(FindSubadditivityViolation(
                   price, pricing.points().back().x * 3.0, 150)
                   .has_value());
}

TEST_P(TheoryPropertyTest, Lemma9_MinorantWithinFactorTwo) {
  // Build a random monotone subadditive curve as min of affine pieces
  // p(x) = min_k (a_k + b_k x) with a_k, b_k >= 0 (each affine piece is
  // subadditive and monotone; min of such is subadditive and monotone).
  const size_t pieces = 2 + rng_.NextBounded(4);
  std::vector<double> intercepts(pieces), slopes(pieces);
  for (size_t k = 0; k < pieces; ++k) {
    intercepts[k] = rng_.NextDouble(0.0, 20.0);
    slopes[k] = rng_.NextDouble(0.1, 5.0);
  }
  const auto price = [&](double x) {
    double best = intercepts[0] + slopes[0] * x;
    for (size_t k = 1; k < pieces; ++k) {
      best = std::min(best, intercepts[k] + slopes[k] * x);
    }
    return best;
  };
  std::vector<double> grid(20);
  double x = 0.0;
  for (double& value : grid) {
    x += rng_.NextDouble(0.2, 2.0);
    value = x;
  }
  const std::vector<double> q = RelaxedMinorant(price, grid);
  for (size_t j = 0; j < grid.size(); ++j) {
    const double p = price(grid[j]);
    EXPECT_LE(q[j], p + 1e-9);
    EXPECT_GE(q[j] + 1e-9, p / 2.0) << "x = " << grid[j];
    if (j > 0) {
      EXPECT_LE(q[j - 1], q[j] + 1e-9);  // monotone
      EXPECT_GE(q[j - 1] / grid[j - 1] + 1e-12,
                q[j] / grid[j]);  // ratio non-increasing
    }
  }
}

TEST_P(TheoryPropertyTest, Proposition1_KnotFeasibilityExtends) {
  const size_t n = 3 + rng_.NextBounded(6);
  const PiecewiseLinearPricing pricing = RandomFeasiblePricing(n);
  if (!pricing.ValidateArbitrageFree().ok()) GTEST_SKIP();
  // The extension is monotone and ratio-non-increasing at arbitrary
  // (off-knot) points too.
  const double x_hi = pricing.points().back().x;
  double prev_x = 0.0, prev_price = 0.0, prev_ratio = 1e300;
  for (int i = 1; i <= 60; ++i) {
    const double x = x_hi * 1.5 * i / 60.0;
    const double price = pricing.PriceAtInverseNcp(x);
    EXPECT_GE(price + 1e-9, prev_price);
    const double ratio = price / x;
    EXPECT_LE(ratio, prev_ratio + 1e-9);
    prev_x = x;
    prev_price = price;
    prev_ratio = ratio;
  }
  (void)prev_x;
}

TEST_P(TheoryPropertyTest, Proposition3_DpWithinFactorTwoOfExact) {
  const size_t n = 3 + rng_.NextBounded(6);
  std::vector<CurvePoint> curve(n);
  double value = 0.0;
  for (size_t j = 0; j < n; ++j) {
    value += 1.0 + static_cast<double>(rng_.NextBounded(40));
    curve[j] = {static_cast<double>(j + 1), value,
                0.05 + 0.01 * static_cast<double>(rng_.NextBounded(20))};
  }
  auto dp = MaximizeRevenueDp(curve);
  auto exact = MaximizeRevenueExact(curve);
  ASSERT_TRUE(dp.ok() && exact.ok());
  EXPECT_GE(dp->revenue + 1e-9, exact->revenue / 2.0);
  EXPECT_LE(dp->revenue, exact->revenue + 1e-9);
}

TEST_P(TheoryPropertyTest, Lemma1_ArbitrageFreeImpliesErrorMonotone) {
  // In x-space: if a pricing function admits no attack, then its price is
  // monotone in x (lower error => weakly higher price), which is exactly
  // error-monotonicity after the Theorem 4 bijection.
  const size_t n = 3 + rng_.NextBounded(6);
  const PiecewiseLinearPricing pricing = RandomFeasiblePricing(n);
  if (!pricing.ValidateArbitrageFree().ok()) GTEST_SKIP();
  const auto price = [&](double x) { return pricing.PriceAtInverseNcp(x); };
  const double x_max = pricing.points().back().x * 2.0;
  ASSERT_FALSE(FindArbitrageAttack(price, x_max, 100).has_value());
  EXPECT_FALSE(FindMonotonicityViolation(price, x_max, 100).has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoryPropertyTest,
                         ::testing::Range<uint64_t>(1, 26));

TEST(TheoryFixedTest, Theorem5ConditionsAreTightOnKnownCurve) {
  // p̄(x) = sqrt(x): subadditive and monotone, hence attack-free; while
  // p̄(x) = x^2 fails subadditivity and IS attacked. The pair pins the
  // characterization from both sides with closed-form curves.
  EXPECT_FALSE(
      FindArbitrageAttack([](double x) { return std::sqrt(x); }, 10.0, 100)
          .has_value());
  EXPECT_TRUE(
      FindArbitrageAttack([](double x) { return x * x; }, 10.0, 100)
          .has_value());
}

}  // namespace
}  // namespace mbp::core

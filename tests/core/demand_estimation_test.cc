#include "core/demand_estimation.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/buyer_population.h"
#include "core/market.h"
#include "core/revenue_opt.h"
#include "data/split.h"
#include "data/synthetic.h"

namespace mbp::core {
namespace {

TransactionLedger LedgerWith(
    const std::vector<std::pair<double, double>>& x_price_pairs) {
  TransactionLedger ledger;
  uint64_t id = 1;
  for (const auto& [x, price] : x_price_pairs) {
    MBP_CHECK(
        ledger.Append(LedgerRecord{"l", id++, 1.0 / x, price, 0.0}).ok());
  }
  return ledger;
}

TEST(DemandEstimationTest, RecoversSalesSharesAndMaxPrices) {
  // Sales: 2 at x=10 (max price 5), 1 at x=20 (price 12), 3 at x=30
  // (max 20).
  const TransactionLedger ledger = LedgerWith(
      {{10, 4.0}, {10, 5.0}, {20, 12.0}, {30, 18.0}, {30, 20.0}, {30, 19.0}});
  auto curve = EstimateCurveFromLedger(ledger, {10.0, 20.0, 30.0});
  ASSERT_TRUE(curve.ok()) << curve.status();
  ASSERT_EQ(curve->size(), 3u);
  // Values are the per-level maxima (already non-decreasing here).
  EXPECT_NEAR((*curve)[0].value, 5.0, 1e-9);
  EXPECT_NEAR((*curve)[1].value, 12.0, 1e-9);
  EXPECT_NEAR((*curve)[2].value, 20.0, 1e-9);
  // Demand ordering follows sales counts: level 3 > level 1 > level 2.
  EXPECT_GT((*curve)[2].demand, (*curve)[0].demand);
  EXPECT_GT((*curve)[0].demand, (*curve)[1].demand);
  double total = 0.0;
  for (const CurvePoint& point : *curve) total += point.demand;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(DemandEstimationTest, IsotonicFixesInvertedObservations) {
  // A freak high price at a low level would break the monotone-valuation
  // assumption; the isotonic fit smooths it out.
  const TransactionLedger ledger = LedgerWith(
      {{10, 50.0}, {20, 10.0}, {20, 10.0}, {20, 10.0}, {30, 60.0}});
  auto curve = EstimateCurveFromLedger(ledger, {10.0, 20.0, 30.0});
  ASSERT_TRUE(curve.ok());
  for (size_t j = 1; j < curve->size(); ++j) {
    EXPECT_LE((*curve)[j - 1].value, (*curve)[j].value + 1e-9);
  }
  // The estimated curve must be consumable by the DP.
  EXPECT_TRUE(MaximizeRevenueDp(*curve).ok());
}

TEST(DemandEstimationTest, UnobservedLevelsAreInterpolated) {
  const TransactionLedger ledger = LedgerWith({{10, 10.0}, {30, 30.0}});
  auto curve = EstimateCurveFromLedger(ledger, {10.0, 20.0, 30.0});
  ASSERT_TRUE(curve.ok());
  EXPECT_NEAR((*curve)[1].value, 20.0, 1e-6);  // midpoint interpolation
  EXPECT_GT((*curve)[1].demand, 0.0);          // demand floor
}

TEST(DemandEstimationTest, RecordsOffTheGridAreSkipped) {
  TransactionLedger ledger = LedgerWith({{10, 5.0}});
  // A sale at x = 1000, far outside the grid.
  MBP_CHECK(
      ledger.Append(LedgerRecord{"l", 99, 1.0 / 1000.0, 500.0, 0.0}).ok());
  auto curve = EstimateCurveFromLedger(ledger, {10.0, 20.0});
  ASSERT_TRUE(curve.ok());
  EXPECT_NEAR((*curve)[0].value, 5.0, 1e-9);  // the 500 did not leak in
}

TEST(DemandEstimationTest, RejectsBadInputs) {
  const TransactionLedger ledger = LedgerWith({{10, 5.0}});
  EXPECT_FALSE(EstimateCurveFromLedger(ledger, {}).ok());
  EXPECT_FALSE(EstimateCurveFromLedger(ledger, {2.0, 1.0}).ok());
  // No records on the grid at all.
  EXPECT_EQ(EstimateCurveFromLedger(ledger, {500.0, 600.0})
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(DemandEstimationTest, ClosesTheLoopWithALiveMarket) {
  // End-to-end re-pricing cycle: run a market, estimate curves from its
  // ledger, re-optimize, and verify the re-optimized curve is valid and
  // earns positive expected revenue.
  data::Simulated1Options data_options;
  data_options.num_examples = 300;
  data_options.num_features = 4;
  data_options.seed = 61;
  data::Dataset dataset = data::GenerateSimulated1(data_options).value();
  random::Rng rng(62);
  MarketCurveOptions curve_options;
  curve_options.num_points = 6;
  curve_options.value_shape = ValueShape::kConcave;
  const std::vector<CurvePoint> true_curve =
      MakeMarketCurve(curve_options).value();
  Seller seller = Seller::Create(
                      "s", data::RandomSplit(dataset, 0.25, rng).value(),
                      true_curve)
                      .value();
  ModelListing listing;
  listing.model = ml::ModelKind::kLinearRegression;
  Broker::Options broker_options;
  broker_options.transform.grid_size = 6;
  broker_options.transform.trials_per_delta = 40;
  auto broker = Broker::Create(std::move(seller), listing, broker_options);
  ASSERT_TRUE(broker.ok());
  PopulationOptions population;
  population.num_buyers = 800;
  random::Rng buyers_rng(63);
  ASSERT_TRUE(
      SimulateBuyerPopulation(*broker, true_curve, population, buyers_rng)
          .ok());

  // Books -> estimated curve -> re-optimized prices.
  TransactionLedger ledger;
  for (const Transaction& txn : broker->transactions()) {
    ASSERT_TRUE(ledger
                    .Append(LedgerRecord{"l", txn.id, txn.delta, txn.price,
                                         txn.quoted_expected_error})
                    .ok());
  }
  std::vector<double> grid;
  for (const CurvePoint& point : true_curve) grid.push_back(point.x);
  auto estimated = EstimateCurveFromLedger(ledger, grid);
  ASSERT_TRUE(estimated.ok()) << estimated.status();
  auto reoptimized = MaximizeRevenueDp(*estimated);
  ASSERT_TRUE(reoptimized.ok());
  EXPECT_GT(reoptimized->revenue, 0.0);
  // The estimate is a lower bound at OBSERVED levels: posted prices were
  // paid, so the estimated value there is <= the true valuation. (Levels
  // the DP priced out have no sales and get interpolated values with no
  // such guarantee.)
  for (size_t j = 0; j < true_curve.size(); ++j) {
    bool observed = false;
    for (const Transaction& txn : broker->transactions()) {
      if (std::fabs(1.0 / txn.delta - true_curve[j].x) < 1e-6) {
        observed = true;
        break;
      }
    }
    if (observed) {
      EXPECT_LE((*estimated)[j].value, true_curve[j].value + 1e-6)
          << "level " << j;
    }
  }
}

}  // namespace
}  // namespace mbp::core

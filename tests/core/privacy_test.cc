#include "core/privacy.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mbp::core {
namespace {

constexpr double kDeltaDp = 1e-5;

TEST(GaussianMechanismPrivacyTest, MatchesClassicalFormula) {
  const double ncp = 0.4;
  const size_t dim = 10;
  const double sensitivity = 0.05;
  auto guarantee =
      GaussianMechanismPrivacy(ncp, dim, sensitivity, kDeltaDp);
  ASSERT_TRUE(guarantee.ok());
  const double sigma = std::sqrt(ncp / dim);
  const double expected =
      sensitivity * std::sqrt(2.0 * std::log(1.25 / kDeltaDp)) / sigma;
  EXPECT_NEAR(guarantee->epsilon, expected, 1e-12);
  EXPECT_DOUBLE_EQ(guarantee->delta_dp, kDeltaDp);
}

TEST(GaussianMechanismPrivacyTest, MoreNoiseMeansMorePrivacy) {
  auto low_noise = GaussianMechanismPrivacy(0.1, 5, 0.1, kDeltaDp);
  auto high_noise = GaussianMechanismPrivacy(1.0, 5, 0.1, kDeltaDp);
  ASSERT_TRUE(low_noise.ok() && high_noise.ok());
  EXPECT_GT(low_noise->epsilon, high_noise->epsilon);
}

TEST(GaussianMechanismPrivacyTest, RejectsBadInputs) {
  EXPECT_FALSE(GaussianMechanismPrivacy(0.0, 5, 0.1, kDeltaDp).ok());
  EXPECT_FALSE(GaussianMechanismPrivacy(1.0, 0, 0.1, kDeltaDp).ok());
  EXPECT_FALSE(GaussianMechanismPrivacy(1.0, 5, 0.0, kDeltaDp).ok());
  EXPECT_FALSE(GaussianMechanismPrivacy(1.0, 5, 0.1, 0.0).ok());
  EXPECT_FALSE(GaussianMechanismPrivacy(1.0, 5, 0.1, 1.0).ok());
}

TEST(NcpForPrivacyTest, IsTheInverseOfPrivacyAccounting) {
  const double epsilon = 0.5;
  const size_t dim = 8;
  const double sensitivity = 0.02;
  auto ncp = NcpForPrivacy(epsilon, kDeltaDp, dim, sensitivity);
  ASSERT_TRUE(ncp.ok());
  auto roundtrip =
      GaussianMechanismPrivacy(*ncp, dim, sensitivity, kDeltaDp);
  ASSERT_TRUE(roundtrip.ok());
  EXPECT_NEAR(roundtrip->epsilon, epsilon, 1e-10);
}

TEST(NcpForPrivacyTest, TighterEpsilonNeedsMoreNoise) {
  auto strict = NcpForPrivacy(0.1, kDeltaDp, 8, 0.02);
  auto loose = NcpForPrivacy(1.0, kDeltaDp, 8, 0.02);
  ASSERT_TRUE(strict.ok() && loose.ok());
  EXPECT_GT(*strict, *loose);
}

TEST(PortfolioPrivacyTest, PrecisionsAddLikeArbitrageCombination) {
  // Two instances at delta=2 compose to one at delta=1 — exactly the
  // Theorem 5 combination — so the portfolio epsilon equals the single
  // instance's at delta=1.
  const size_t dim = 6;
  const double sensitivity = 0.03;
  auto portfolio =
      PortfolioPrivacy({2.0, 2.0}, dim, sensitivity, kDeltaDp);
  auto single = GaussianMechanismPrivacy(1.0, dim, sensitivity, kDeltaDp);
  ASSERT_TRUE(portfolio.ok() && single.ok());
  EXPECT_NEAR(portfolio->epsilon, single->epsilon, 1e-12);
}

TEST(PortfolioPrivacyTest, BuyingMoreLeaksMore) {
  const size_t dim = 6;
  auto one = PortfolioPrivacy({1.0}, dim, 0.05, kDeltaDp);
  auto three = PortfolioPrivacy({1.0, 1.0, 1.0}, dim, 0.05, kDeltaDp);
  ASSERT_TRUE(one.ok() && three.ok());
  EXPECT_GT(three->epsilon, one->epsilon);
  // Effective delta divides by 3 -> epsilon scales by sqrt(3).
  EXPECT_NEAR(three->epsilon, one->epsilon * std::sqrt(3.0), 1e-10);
}

TEST(PortfolioPrivacyTest, RejectsBadPortfolios) {
  EXPECT_FALSE(PortfolioPrivacy({}, 5, 0.1, kDeltaDp).ok());
  EXPECT_FALSE(PortfolioPrivacy({1.0, 0.0}, 5, 0.1, kDeltaDp).ok());
}

TEST(ErmL2SensitivityTest, MatchesStabilityBound) {
  auto sensitivity = ErmL2Sensitivity(1.0, 0.01, 1000);
  ASSERT_TRUE(sensitivity.ok());
  EXPECT_NEAR(*sensitivity, 1.0 / (0.01 * 1000), 1e-12);
}

TEST(ErmL2SensitivityTest, MoreDataMeansMoreStability) {
  auto small = ErmL2Sensitivity(1.0, 0.01, 100);
  auto large = ErmL2Sensitivity(1.0, 0.01, 10000);
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_GT(*small, *large);
}

TEST(ErmL2SensitivityTest, RequiresStrictConvexity) {
  EXPECT_FALSE(ErmL2Sensitivity(1.0, 0.0, 100).ok());
  EXPECT_FALSE(ErmL2Sensitivity(0.0, 0.1, 100).ok());
  EXPECT_FALSE(ErmL2Sensitivity(1.0, 0.1, 0).ok());
}

TEST(PrivacyPricingTest, ArbitrageFreePriceIsSubadditiveInEpsilonSquared) {
  // epsilon^2 is proportional to 1/delta = x, so a subadditive monotone
  // price in x is automatically subadditive monotone in the squared
  // privacy loss — the concrete form of the paper's Section 2 remark.
  const size_t dim = 4;
  const double sensitivity = 0.1;
  const auto epsilon_at = [&](double x) {
    return GaussianMechanismPrivacy(1.0 / x, dim, sensitivity, kDeltaDp)
        ->epsilon;
  };
  const double e1 = epsilon_at(1.0);
  const double e2 = epsilon_at(2.0);
  const double e3 = epsilon_at(3.0);
  // eps(x)^2 scales linearly in x.
  EXPECT_NEAR(e2 * e2, 2.0 * e1 * e1, 1e-9);
  EXPECT_NEAR(e3 * e3, 3.0 * e1 * e1, 1e-8);
}

}  // namespace
}  // namespace mbp::core

#include "core/arbitrage.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/mechanism.h"
#include "core/pricing_function.h"
#include "linalg/vector_ops.h"
#include "random/rng.h"

namespace mbp::core {
namespace {

TEST(CombinedDeltaTest, MatchesInverseVarianceFormula) {
  // 1 / (1/2 + 1/2) = 1.
  EXPECT_DOUBLE_EQ(CombinedDelta({2.0, 2.0}), 1.0);
  // Single instance: unchanged.
  EXPECT_DOUBLE_EQ(CombinedDelta({0.7}), 0.7);
  // m equal copies divide delta by m.
  EXPECT_NEAR(CombinedDelta({3.0, 3.0, 3.0}), 1.0, 1e-12);
}

TEST(CombineInstancesTest, EqualDeltasAverage) {
  const linalg::Vector a{1.0, 2.0};
  const linalg::Vector b{3.0, 6.0};
  const linalg::Vector combined = CombineInstances({a, b}, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(combined[0], 2.0);
  EXPECT_DOUBLE_EQ(combined[1], 4.0);
}

TEST(CombineInstancesTest, PrecisionWeighting) {
  // delta 1 gets weight 2/3, delta 2 gets 1/3.
  const linalg::Vector a{3.0};
  const linalg::Vector b{6.0};
  const linalg::Vector combined = CombineInstances({a, b}, {1.0, 2.0});
  EXPECT_NEAR(combined[0], 4.0, 1e-12);
}

TEST(CombineInstancesTest, GaussianCombinationAchievesCombinedDelta) {
  // The heart of the Theorem 5 arbitrage argument: combining two
  // Gaussian-mechanism instances with inverse-variance weights yields an
  // unbiased instance whose expected squared error is CombinedDelta.
  GaussianMechanism mechanism;
  random::Rng rng(17);
  const linalg::Vector optimal{1.0, -2.0, 0.5, 3.0};
  const std::vector<double> deltas{1.0, 3.0};
  const double expected = CombinedDelta(deltas);  // 0.75
  const int trials = 20000;
  double total_sq = 0.0;
  linalg::Vector mean(optimal.size());
  for (int t = 0; t < trials; ++t) {
    std::vector<linalg::Vector> purchased;
    for (double delta : deltas) {
      purchased.push_back(mechanism.Perturb(optimal, delta, rng));
    }
    const linalg::Vector combined = CombineInstances(purchased, deltas);
    total_sq += linalg::SquaredDistance(combined, optimal);
    for (size_t j = 0; j < mean.size(); ++j) {
      mean[j] += combined[j] / trials;
    }
  }
  EXPECT_NEAR(total_sq / trials, expected, 0.05 * expected);
  for (size_t j = 0; j < mean.size(); ++j) {
    EXPECT_NEAR(mean[j], optimal[j], 0.02);  // unbiased
  }
}

TEST(FindArbitrageAttackTest, SubadditivePricingIsSafe) {
  // sqrt is monotone + subadditive: no attack exists.
  const auto price = [](double x) { return 10.0 * std::sqrt(x); };
  EXPECT_FALSE(FindArbitrageAttack(price, 10.0, 100).has_value());
}

TEST(FindArbitrageAttackTest, LinearPricingIsSafe) {
  const auto price = [](double x) { return 3.0 * x; };
  EXPECT_FALSE(FindArbitrageAttack(price, 10.0, 100).has_value());
}

TEST(FindArbitrageAttackTest, ConvexPricingIsAttacked) {
  // Quadratic pricing: two cheap halves beat one expensive whole.
  const auto price = [](double x) { return x * x; };
  auto attack = FindArbitrageAttack(price, 10.0, 100);
  ASSERT_TRUE(attack.has_value());
  EXPECT_LT(attack->total_price, attack->target_price);
  EXPECT_GE(attack->purchase_deltas.size(), 2u);
  // The combined instance is at least as good as the target.
  EXPECT_LE(attack->combined_delta, attack->target_delta + 1e-9);
}

TEST(FindArbitrageAttackTest, NonMonotonePricingIsAttacked) {
  // Price drops at high accuracy: buy the better-and-cheaper instance.
  const auto price = [](double x) { return x < 5.0 ? 10.0 * x : 1.0; };
  auto attack = FindArbitrageAttack(price, 10.0, 100);
  ASSERT_TRUE(attack.has_value());
}

TEST(FindArbitrageAttackTest, AttackReportsConsistentArithmetic) {
  const auto price = [](double x) { return 0.5 * x * x; };
  auto attack = FindArbitrageAttack(price, 8.0, 80);
  ASSERT_TRUE(attack.has_value());
  // combined_delta = 1 / sum(1/delta_i) recomputed from the parts.
  double precision = 0.0;
  for (double delta : attack->purchase_deltas) precision += 1.0 / delta;
  EXPECT_NEAR(attack->combined_delta, 1.0 / precision, 1e-9);
  // Total price equals the sum of part prices.
  double total = 0.0;
  for (double delta : attack->purchase_deltas) total += price(1.0 / delta);
  EXPECT_NEAR(attack->total_price, total, 1e-6);
}

TEST(FindArbitrageAttackTest, DpOptimizedPricingIsSafe) {
  // End-to-end consistency: the canonical pricing built from the DP is
  // immune to the attacker.
  const PiecewiseLinearPricing pricing =
      PiecewiseLinearPricing::Create(
          {{1.0, 100.0}, {2.0, 150.0}, {3.0, 225.0}, {4.0, 300.0}})
          .value();
  ASSERT_TRUE(pricing.ValidateArbitrageFree().ok());
  const auto price = [&](double x) { return pricing.PriceAtInverseNcp(x); };
  EXPECT_FALSE(FindArbitrageAttack(price, 8.0, 160).has_value());
}

TEST(FindArbitrageAttackTest, PaperFigure5ValuationsAreAttackable) {
  // Charging all valuations directly (Figure 5(a)) admits arbitrage:
  // 280 > 100 + 150.
  const PiecewiseLinearPricing pricing =
      PiecewiseLinearPricing::Create(
          {{1.0, 100.0}, {2.0, 150.0}, {3.0, 280.0}, {4.0, 350.0}})
          .value();
  const auto price = [&](double x) { return pricing.PriceAtInverseNcp(x); };
  auto attack = FindArbitrageAttack(price, 4.0, 4);
  ASSERT_TRUE(attack.has_value());
  EXPECT_LT(attack->total_price, attack->target_price);
}

TEST(CombineInstancesDeathTest, MismatchedSizesAbort) {
  EXPECT_DEATH(
      { CombineInstances({linalg::Vector{1.0}}, {1.0, 2.0}); },
      "MBP_CHECK failed");
  EXPECT_DEATH({ CombinedDelta({}); }, "MBP_CHECK failed");
  EXPECT_DEATH({ CombinedDelta({0.0}); }, "MBP_CHECK failed");
}

}  // namespace
}  // namespace mbp::core

#include "core/revenue_opt.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "core/curves.h"
#include "random/rng.h"

namespace mbp::core {
namespace {

constexpr double kTol = 1e-9;

// The Figure 5 worked example: a=(1,2,3,4), b=0.25 each,
// v=(100,150,280,350).
std::vector<CurvePoint> Figure5Curve() {
  return {{1.0, 100.0, 0.25},
          {2.0, 150.0, 0.25},
          {3.0, 280.0, 0.25},
          {4.0, 350.0, 0.25}};
}

bool SatisfiesRelaxedConstraints(const std::vector<CurvePoint>& curve,
                                 const std::vector<double>& prices) {
  for (size_t j = 0; j < prices.size(); ++j) {
    if (prices[j] < -kTol) return false;
    if (j > 0) {
      if (prices[j] + kTol < prices[j - 1]) return false;
      const double r_prev = prices[j - 1] / curve[j - 1].x;
      const double r_here = prices[j] / curve[j].x;
      if (r_here > r_prev + kTol) return false;
    }
  }
  return true;
}

// Exhaustive search over relaxed-feasible assignments with prices drawn
// from the valuation set — a slow reference optimum for tiny instances.
double BruteForceRelaxedOptimum(const std::vector<CurvePoint>& curve) {
  const size_t n = curve.size();
  std::vector<double> candidates;
  for (const CurvePoint& point : curve) candidates.push_back(point.value);
  std::vector<double> assignment(n, 0.0);
  double best = 0.0;
  // Assignments also include slope-capped prices z_j = Delta * a_j, so a
  // pure valuation-grid brute force would under-count; instead sample the
  // DP's candidate caps too: for each pair (j, cap v_k/a_k) price
  // z_j = min(v_j-ish...). Simplest faithful reference: enumerate price
  // vectors from {v_i} plus {v_i * a_j / a_i} projected to feasibility.
  for (const CurvePoint& point : curve) {
    for (const CurvePoint& other : curve) {
      candidates.push_back(point.value * other.x / point.x);
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  // Depth-first enumeration (tiny n only).
  const std::function<void(size_t)> dfs = [&](size_t j) {
    if (j == n) {
      if (SatisfiesRelaxedConstraints(curve, assignment)) {
        best = std::max(best, RevenueOf(curve, assignment));
      }
      return;
    }
    for (double candidate : candidates) {
      assignment[j] = candidate;
      dfs(j + 1);
    }
  };
  dfs(0);
  return best;
}

TEST(RevenueOfTest, CountsOnlyAffordableBuyers) {
  const std::vector<CurvePoint> curve = Figure5Curve();
  // Price everyone at 200: only points 3 and 4 (v=280, 350) can afford.
  const std::vector<double> prices(4, 200.0);
  EXPECT_NEAR(RevenueOf(curve, prices), 0.25 * 200.0 * 2, kTol);
  EXPECT_NEAR(AffordabilityOf(curve, prices), 0.5, kTol);
}

TEST(RevenueOfTest, PriceEqualToValueStillSells) {
  const std::vector<CurvePoint> curve = Figure5Curve();
  const std::vector<double> prices{100.0, 150.0, 280.0, 350.0};
  EXPECT_NEAR(RevenueOf(curve, prices), 0.25 * 880.0, kTol);
  EXPECT_NEAR(AffordabilityOf(curve, prices), 1.0, kTol);
}

TEST(MaximizeRevenueDpTest, Figure5ExampleMatchesPaper) {
  // Figure 5(e), the proposed polynomial-time pricing: sell a1 at 100 and
  // a2 at 150; the ratio constraint then caps the slope at 150/2 = 75 per
  // unit, giving the figure's 225 at a3 and 300 at a4. Revenue
  // 0.25 * (100 + 150 + 225 + 300) = 193.75, within the Proposition-3
  // factor 2 of the exact optimum (200).
  auto result = MaximizeRevenueDp(Figure5Curve());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(SatisfiesRelaxedConstraints(Figure5Curve(), result->prices));
  ASSERT_EQ(result->prices.size(), 4u);
  EXPECT_NEAR(result->prices[0], 100.0, kTol);
  EXPECT_NEAR(result->prices[1], 150.0, kTol);
  EXPECT_NEAR(result->prices[2], 225.0, kTol);
  EXPECT_NEAR(result->prices[3], 300.0, kTol);
  EXPECT_NEAR(result->revenue, 193.75, 1e-9);
}

TEST(MaximizeRevenueDpTest, OutputIsAlwaysRelaxedFeasible) {
  random::Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 2 + rng.NextBounded(8);
    std::vector<CurvePoint> curve(n);
    double v = 0.0;
    for (size_t j = 0; j < n; ++j) {
      v += rng.NextDouble(0.0, 50.0);
      curve[j] = {static_cast<double>(j + 1), v, rng.NextDouble(0.0, 1.0)};
    }
    auto result = MaximizeRevenueDp(curve);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(SatisfiesRelaxedConstraints(curve, result->prices))
        << "trial " << trial;
    EXPECT_NEAR(result->revenue, RevenueOf(curve, result->prices), 1e-9);
  }
}

TEST(MaximizeRevenueDpTest, MatchesBruteForceOnTinyInstances) {
  random::Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t n = 2 + rng.NextBounded(2);  // n in {2, 3}
    std::vector<CurvePoint> curve(n);
    double v = 0.0;
    for (size_t j = 0; j < n; ++j) {
      v += 1.0 + rng.NextBounded(20);
      curve[j] = {static_cast<double>(j + 1), v,
                  0.1 + 0.1 * static_cast<double>(rng.NextBounded(5))};
    }
    auto dp = MaximizeRevenueDp(curve);
    ASSERT_TRUE(dp.ok());
    const double brute = BruteForceRelaxedOptimum(curve);
    EXPECT_NEAR(dp->revenue, brute, 1e-6) << "trial " << trial;
  }
}

TEST(MaximizeRevenueDpTest, SinglePointChargesTheValuation) {
  const std::vector<CurvePoint> curve{{5.0, 42.0, 1.0}};
  auto result = MaximizeRevenueDp(curve);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->prices[0], 42.0, kTol);
  EXPECT_NEAR(result->revenue, 42.0, kTol);
  EXPECT_NEAR(result->affordability, 1.0, kTol);
}

TEST(MaximizeRevenueDpTest, ConcaveValueCurveIsMatchedExactly) {
  // A concave value curve is itself relaxed-feasible (v/x decreasing), so
  // the DP can charge every buyer their full valuation.
  MarketCurveOptions options;
  options.num_points = 8;
  options.value_shape = ValueShape::kConcave;
  auto curve = MakeMarketCurve(options);
  ASSERT_TRUE(curve.ok());
  auto result = MaximizeRevenueDp(*curve);
  ASSERT_TRUE(result.ok());
  double full_surplus = 0.0;
  for (const CurvePoint& point : *curve) {
    full_surplus += point.demand * point.value;
  }
  // v/x decreasing must hold for this to be exact; verify and compare.
  bool ratio_decreasing = true;
  for (size_t j = 1; j < curve->size(); ++j) {
    if ((*curve)[j].value / (*curve)[j].x >
        (*curve)[j - 1].value / (*curve)[j - 1].x + kTol) {
      ratio_decreasing = false;
    }
  }
  if (ratio_decreasing) {
    EXPECT_NEAR(result->revenue, full_surplus, 1e-6);
    EXPECT_NEAR(result->affordability, 1.0, kTol);
  } else {
    EXPECT_LE(result->revenue, full_surplus + kTol);
  }
}

TEST(MaximizeRevenueDpTest, RejectsInvalidCurves) {
  EXPECT_FALSE(MaximizeRevenueDp({}).ok());
  // Non-increasing x.
  EXPECT_FALSE(
      MaximizeRevenueDp({{2.0, 1.0, 0.5}, {1.0, 2.0, 0.5}}).ok());
  // Decreasing valuations violate the monotone-buyer assumption.
  EXPECT_FALSE(
      MaximizeRevenueDp({{1.0, 10.0, 0.5}, {2.0, 5.0, 0.5}}).ok());
  // Negative demand.
  EXPECT_FALSE(MaximizeRevenueDp({{1.0, 10.0, -0.5}}).ok());
}

TEST(PricingFromKnotsTest, BuildsValidatedPricing) {
  const std::vector<CurvePoint> curve = Figure5Curve();
  auto dp = MaximizeRevenueDp(curve);
  ASSERT_TRUE(dp.ok());
  auto pricing = PricingFromKnots(curve, dp->prices);
  ASSERT_TRUE(pricing.ok());
  EXPECT_TRUE(pricing->ValidateArbitrageFree().ok());
  // Knot prices are reproduced exactly.
  for (size_t j = 0; j < curve.size(); ++j) {
    EXPECT_NEAR(pricing->PriceAtInverseNcp(curve[j].x), dp->prices[j],
                1e-9);
  }
}

TEST(PricingFromKnotsTest, RejectsSizeMismatch) {
  EXPECT_FALSE(PricingFromKnots(Figure5Curve(), {1.0}).ok());
}

}  // namespace
}  // namespace mbp::core

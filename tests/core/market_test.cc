#include "core/market.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/arbitrage.h"
#include "core/curves.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "ml/metrics.h"

namespace mbp::core {
namespace {

// Shared fixture: one regression market and one classification market,
// built once (broker construction trains models and runs Monte Carlo).
class MarketTest : public ::testing::Test {
 protected:
  static Seller MakeRegressionSeller() {
    data::Simulated1Options data_options;
    data_options.num_examples = 600;
    data_options.num_features = 5;
    data_options.noise_stddev = 0.1;
    data_options.seed = 5;
    data::Dataset dataset = data::GenerateSimulated1(data_options).value();
    random::Rng rng(6);
    data::TrainTestSplit split =
        data::RandomSplit(dataset, 0.25, rng).value();

    MarketCurveOptions curve_options;
    curve_options.num_points = 8;
    curve_options.x_min = 5.0;
    curve_options.x_max = 40.0;
    curve_options.value_shape = ValueShape::kConcave;
    curve_options.demand_shape = DemandShape::kUniform;
    return Seller::Create("acme-data", std::move(split),
                          MakeMarketCurve(curve_options).value())
        .value();
  }

  static Broker MakeRegressionBroker(uint64_t seed = 42) {
    ModelListing listing;
    listing.model = ml::ModelKind::kLinearRegression;
    listing.l2 = 1e-4;
    listing.test_error = ml::LossKind::kSquare;
    Broker::Options options;
    options.seed = seed;
    options.transform.grid_size = 10;
    options.transform.trials_per_delta = 100;
    return Broker::Create(MakeRegressionSeller(), listing, options).value();
  }
};

TEST_F(MarketTest, SellerValidation) {
  data::Simulated1Options options;
  options.num_examples = 100;
  data::Dataset dataset = data::GenerateSimulated1(options).value();
  random::Rng rng(1);
  data::TrainTestSplit split = data::RandomSplit(dataset, 0.3, rng).value();
  EXPECT_FALSE(Seller::Create("x", std::move(split), {}).ok());
}

TEST_F(MarketTest, BrokerRejectsMismatchedListing) {
  ModelListing listing;
  listing.model = ml::ModelKind::kLogisticRegression;  // regression data
  EXPECT_FALSE(Broker::Create(MakeRegressionSeller(), listing).ok());
}

TEST_F(MarketTest, BrokerPricingIsCertifiedArbitrageFree) {
  Broker broker = MakeRegressionBroker();
  EXPECT_TRUE(broker.pricing().ValidateArbitrageFree().ok());
}

TEST_F(MarketTest, QuoteCurveIsMonotone) {
  Broker broker = MakeRegressionBroker();
  const std::vector<QuotePoint> quotes = broker.QuoteCurve(15);
  ASSERT_EQ(quotes.size(), 15u);
  for (size_t i = 1; i < quotes.size(); ++i) {
    // Higher x (less noise): lower expected error, higher (or equal) price.
    EXPECT_GT(quotes[i].x, quotes[i - 1].x);
    EXPECT_LE(quotes[i].expected_error, quotes[i - 1].expected_error + 1e-9);
    EXPECT_GE(quotes[i].price + 1e-9, quotes[i - 1].price);
  }
}

TEST_F(MarketTest, BuyAtNcpChargesCurvePrice) {
  Broker broker = MakeRegressionBroker();
  const double delta = 0.1;
  auto txn = broker.BuyAtNcp(delta);
  ASSERT_TRUE(txn.ok());
  EXPECT_DOUBLE_EQ(txn->price, broker.pricing().PriceAtNcp(delta));
  EXPECT_DOUBLE_EQ(txn->delta, delta);
  EXPECT_EQ(txn->instance.num_features(), 5u);
  EXPECT_DOUBLE_EQ(broker.total_revenue(), txn->price);
  EXPECT_EQ(broker.transactions().size(), 1u);
}

TEST_F(MarketTest, BuyAtNcpRejectsBadDelta) {
  Broker broker = MakeRegressionBroker();
  EXPECT_FALSE(broker.BuyAtNcp(0.0).ok());
  EXPECT_FALSE(broker.BuyAtNcp(-1.0).ok());
}

TEST_F(MarketTest, ErrorBudgetPurchaseMeetsTheBudget) {
  Broker broker = MakeRegressionBroker();
  const double budget =
      broker.error_transform().ExpectedError(0.05);
  auto txn = broker.BuyWithErrorBudget(budget);
  ASSERT_TRUE(txn.ok());
  EXPECT_LE(txn->quoted_expected_error, budget + 1e-6);
}

TEST_F(MarketTest, ErrorBudgetBelowOptimalIsInfeasible) {
  Broker broker = MakeRegressionBroker();
  const double impossible = broker.error_transform().MinError() - 1e-3;
  EXPECT_EQ(broker.BuyWithErrorBudget(impossible).status().code(),
            StatusCode::kInfeasible);
}

TEST_F(MarketTest, PriceBudgetPurchaseNeverOvercharges) {
  Broker broker = MakeRegressionBroker();
  for (double budget : {1.0, 10.0, 25.0, 60.0, 1000.0}) {
    auto txn = broker.BuyWithPriceBudget(budget);
    ASSERT_TRUE(txn.ok()) << txn.status();
    EXPECT_LE(txn->price, budget + 1e-9) << "budget " << budget;
  }
}

TEST_F(MarketTest, BiggerPriceBudgetBuysLowerError) {
  Broker broker = MakeRegressionBroker();
  auto cheap = broker.BuyWithPriceBudget(5.0);
  auto expensive = broker.BuyWithPriceBudget(80.0);
  ASSERT_TRUE(cheap.ok() && expensive.ok());
  EXPECT_LE(expensive->quoted_expected_error,
            cheap->quoted_expected_error + 1e-9);
}

TEST_F(MarketTest, HugeBudgetBuysTheOptimalModel) {
  Broker broker = MakeRegressionBroker();
  auto txn = broker.BuyWithPriceBudget(1e9);
  ASSERT_TRUE(txn.ok());
  EXPECT_DOUBLE_EQ(txn->delta, 0.0);
  EXPECT_EQ(txn->instance.coefficients(),
            broker.optimal_model().coefficients());
  // Charged the cap price, not the budget.
  EXPECT_DOUBLE_EQ(txn->price, broker.pricing().points().back().price);
}

TEST_F(MarketTest, RevenueBookkeepingAccumulates) {
  Broker broker = MakeRegressionBroker();
  double expected = 0.0;
  for (double delta : {0.2, 0.1, 0.05}) {
    auto txn = broker.BuyAtNcp(delta);
    ASSERT_TRUE(txn.ok());
    expected += txn->price;
  }
  EXPECT_NEAR(broker.total_revenue(), expected, 1e-9);
  EXPECT_EQ(broker.transactions().size(), 3u);
  EXPECT_EQ(broker.transactions()[2].id, 3u);
}

TEST_F(MarketTest, MoreExpensiveInstancesAreBetterOnAverage) {
  // The product actually delivered matches the SLA: instances bought at a
  // lower delta have lower test MSE on average.
  Broker broker = MakeRegressionBroker(7);
  const data::Dataset& test = broker.seller().test();
  double cheap_mse = 0.0, expensive_mse = 0.0;
  const int purchases = 30;
  for (int i = 0; i < purchases; ++i) {
    auto cheap = broker.BuyAtNcp(0.5);
    auto expensive = broker.BuyAtNcp(0.005);
    ASSERT_TRUE(cheap.ok() && expensive.ok());
    cheap_mse += ml::MeanSquaredError(cheap->instance, test) / purchases;
    expensive_mse +=
        ml::MeanSquaredError(expensive->instance, test) / purchases;
  }
  EXPECT_LT(expensive_mse, cheap_mse);
}

TEST_F(MarketTest, BuyerWalletIsDebited) {
  Broker broker = MakeRegressionBroker();
  Buyer alice("alice", 200.0);
  BuyerRequest request;
  request.mode = BuyerRequest::Mode::kAtNcp;
  request.parameter = 0.1;
  auto txn = alice.Purchase(broker, request);
  ASSERT_TRUE(txn.ok());
  EXPECT_NEAR(alice.wallet(), 200.0 - txn->price, 1e-9);
}

TEST_F(MarketTest, BuyerCannotOverspend) {
  Broker broker = MakeRegressionBroker();
  const double top_price = broker.pricing().points().back().price;
  Buyer poor("bob", top_price * 1e-4);
  BuyerRequest request;
  request.mode = BuyerRequest::Mode::kErrorBudget;
  request.parameter = broker.error_transform().MinError() + 1e-6;
  auto txn = poor.Purchase(broker, request);
  EXPECT_FALSE(txn.ok());
  EXPECT_EQ(broker.transactions().size(), 0u);  // no sale was recorded
}

TEST_F(MarketTest, BuyerPriceBudgetModeCapsAtWallet) {
  Broker broker = MakeRegressionBroker();
  Buyer alice("alice", 10.0);
  BuyerRequest request;
  request.mode = BuyerRequest::Mode::kPriceBudget;
  request.parameter = 1000.0;  // wants more than she can pay
  auto txn = alice.Purchase(broker, request);
  ASSERT_TRUE(txn.ok());
  EXPECT_LE(txn->price, 10.0 + 1e-9);
  EXPECT_GE(alice.wallet(), -1e-9);
}

TEST_F(MarketTest, ExecutedArbitrageAttackIsUnprofitableOnCertifiedCurve) {
  // Definition 3 end to end: buy two instances, combine with
  // inverse-variance weights, and compare against buying the target
  // directly. On a certified arbitrage-free curve the combination costs
  // at least as much as the target.
  Broker broker = MakeRegressionBroker(11);
  ArbitrageAttack attack;
  attack.target_delta = 1.0 / 20.0;            // target x = 20
  attack.purchase_deltas = {1.0 / 10.0, 1.0 / 10.0};  // two x = 10 halves
  attack.combined_delta = CombinedDelta(attack.purchase_deltas);
  // The combination matches the target's effective noise exactly.
  EXPECT_NEAR(attack.combined_delta, attack.target_delta, 1e-12);

  auto executed = ExecuteArbitrageAttack(broker, attack);
  ASSERT_TRUE(executed.ok()) << executed.status();
  // No profit: subadditivity means the parts cost >= the whole.
  EXPECT_GE(executed->total_paid + 1e-9, executed->target_price);
  // And the combined instance genuinely has near-target quality: its
  // measured error is within the error of a direct purchase at the
  // combined delta (sanity bound, generous for one sample).
  EXPECT_LT(executed->combined_error,
            3.0 * executed->target_error + 0.1);
  // The broker collected the money for both purchases.
  EXPECT_NEAR(broker.total_revenue(), executed->total_paid, 1e-9);
}

TEST_F(MarketTest, ExecuteArbitrageAttackRejectsEmptyAttack) {
  Broker broker = MakeRegressionBroker(12);
  EXPECT_FALSE(ExecuteArbitrageAttack(broker, ArbitrageAttack{}).ok());
}

TEST_F(MarketTest, VerifySlaPassesForHonestBroker) {
  Broker broker = MakeRegressionBroker();
  const Status sla = broker.VerifySla(/*trials=*/300,
                                      /*relative_tolerance=*/0.25);
  EXPECT_TRUE(sla.ok()) << sla;
  // The audit must not touch the books.
  EXPECT_EQ(broker.transactions().size(), 0u);
  EXPECT_DOUBLE_EQ(broker.total_revenue(), 0.0);
}

TEST_F(MarketTest, VerifySlaRejectsBadArguments) {
  Broker broker = MakeRegressionBroker();
  EXPECT_FALSE(broker.VerifySla(0).ok());
  EXPECT_FALSE(broker.VerifySla(10, 0.0).ok());
}

TEST_F(MarketTest, CreateWithPricingUsesTheGivenCurve) {
  auto pricing = PiecewiseLinearPricing::Create(
      {{5.0, 10.0}, {20.0, 30.0}, {40.0, 50.0}});
  ASSERT_TRUE(pricing.ok());
  ModelListing listing;
  listing.model = ml::ModelKind::kLinearRegression;
  listing.l2 = 1e-4;
  Broker::Options options;
  options.transform.grid_size = 6;
  options.transform.trials_per_delta = 50;
  auto broker = Broker::CreateWithPricing(MakeRegressionSeller(), listing,
                                          *pricing, options);
  ASSERT_TRUE(broker.ok()) << broker.status();
  EXPECT_DOUBLE_EQ(broker->pricing().PriceAtInverseNcp(20.0), 30.0);
  auto txn = broker->BuyAtNcp(1.0 / 20.0);
  ASSERT_TRUE(txn.ok());
  EXPECT_DOUBLE_EQ(txn->price, 30.0);
}

TEST_F(MarketTest, CreateWithPricingRejectsArbitrageCurves) {
  // price/x increasing: subadditivity fails the SLA check.
  auto pricing =
      PiecewiseLinearPricing::Create({{1.0, 1.0}, {2.0, 4.0}});
  ASSERT_TRUE(pricing.ok());
  ModelListing listing;
  listing.model = ml::ModelKind::kLinearRegression;
  Broker::Options options;
  auto broker = Broker::CreateWithPricing(MakeRegressionSeller(), listing,
                                          *pricing, options);
  EXPECT_EQ(broker.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(MarketTest, RefreshPricingSwapsTheCurve) {
  Broker broker = MakeRegressionBroker(13);
  const double old_price = broker.pricing().PriceAtInverseNcp(20.0);
  // New research on the same x range with doubled valuations.
  std::vector<CurvePoint> research = broker.seller().market_research();
  for (CurvePoint& point : research) point.value *= 2.0;
  ASSERT_TRUE(broker.RefreshPricing(research).ok());
  EXPECT_TRUE(broker.pricing().ValidateArbitrageFree().ok());
  EXPECT_GT(broker.pricing().PriceAtInverseNcp(20.0), old_price);
  // Sales continue at the refreshed prices.
  auto txn = broker.BuyAtNcp(1.0 / 20.0);
  ASSERT_TRUE(txn.ok());
  EXPECT_DOUBLE_EQ(txn->price, broker.pricing().PriceAtInverseNcp(20.0));
}

TEST_F(MarketTest, RefreshPricingRejectsWiderRange) {
  Broker broker = MakeRegressionBroker(14);
  std::vector<CurvePoint> research = broker.seller().market_research();
  research.back().x *= 10.0;  // beyond the transform's coverage
  research.back().value += 1.0;
  EXPECT_EQ(broker.RefreshPricing(research).code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(broker.RefreshPricing({}).ok());
}

TEST_F(MarketTest, ModelSpaceErrorListingUsesLemma3Exactly) {
  // ε = ε_s (model-space square loss): the quoted expected error IS the
  // NCP, with no Monte Carlo at all (Lemma 3).
  ModelListing listing;
  listing.model = ml::ModelKind::kLinearRegression;
  listing.l2 = 1e-4;
  listing.error_space = ErrorSpace::kModelSquare;
  Broker::Options options;
  auto broker =
      Broker::Create(MakeRegressionSeller(), listing, options);
  ASSERT_TRUE(broker.ok()) << broker.status();
  for (double delta : {0.01, 0.1, 1.0}) {
    EXPECT_DOUBLE_EQ(broker->error_transform().ExpectedError(delta), delta);
  }
  EXPECT_DOUBLE_EQ(broker->error_transform().MinError(), 0.0);
  // An error budget in model space maps straight to delta.
  auto txn = broker->BuyWithErrorBudget(0.05);
  ASSERT_TRUE(txn.ok());
  EXPECT_NEAR(txn->delta, 0.05, 1e-12);
  // The SLA audit covers the model-space clause too.
  EXPECT_TRUE(broker->VerifySla(300, 0.25).ok());
}

TEST_F(MarketTest, ClassificationMarketEndToEnd) {
  data::Simulated2Options data_options;
  data_options.num_examples = 500;
  data_options.num_features = 4;
  data_options.seed = 12;
  data::Dataset dataset = data::GenerateSimulated2(data_options).value();
  random::Rng rng(13);
  data::TrainTestSplit split =
      data::RandomSplit(dataset, 0.3, rng).value();

  MarketCurveOptions curve_options;
  curve_options.num_points = 6;
  curve_options.x_min = 2.0;
  curve_options.x_max = 12.0;
  Seller seller = Seller::Create("tweets", std::move(split),
                                 MakeMarketCurve(curve_options).value())
                      .value();

  ModelListing listing;
  listing.model = ml::ModelKind::kLogisticRegression;
  listing.l2 = 0.01;
  listing.test_error = ml::LossKind::kZeroOne;
  Broker::Options options;
  options.transform.grid_size = 8;
  options.transform.trials_per_delta = 100;
  auto broker = Broker::Create(std::move(seller), listing, options);
  ASSERT_TRUE(broker.ok()) << broker.status();

  auto txn = broker->BuyWithPriceBudget(50.0);
  ASSERT_TRUE(txn.ok());
  EXPECT_EQ(txn->instance.kind(), ml::ModelKind::kLogisticRegression);
  // The noisy classifier still beats random guessing on test data.
  const double err =
      ml::MisclassificationRate(txn->instance, broker->seller().test());
  EXPECT_LT(err, 0.5);
}

}  // namespace
}  // namespace mbp::core

#include "core/pricing_function.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mbp::core {
namespace {

PiecewiseLinearPricing MakeValidPricing() {
  // Non-decreasing prices, price/x non-increasing: arbitrage-free.
  return PiecewiseLinearPricing::Create(
             {{1.0, 10.0}, {2.0, 18.0}, {4.0, 30.0}, {8.0, 40.0}})
      .value();
}

TEST(PiecewiseLinearPricingTest, CreateValidatesInput) {
  EXPECT_FALSE(PiecewiseLinearPricing::Create({}).ok());
  EXPECT_FALSE(
      PiecewiseLinearPricing::Create({{0.0, 1.0}}).ok());  // x must be > 0
  EXPECT_FALSE(
      PiecewiseLinearPricing::Create({{2.0, 1.0}, {1.0, 2.0}}).ok());
  EXPECT_FALSE(
      PiecewiseLinearPricing::Create({{1.0, 1.0}, {1.0, 2.0}}).ok());
  EXPECT_FALSE(PiecewiseLinearPricing::Create({{1.0, -1.0}}).ok());
}

TEST(PiecewiseLinearPricingTest, OriginSegmentIsLinear) {
  const PiecewiseLinearPricing pricing = MakeValidPricing();
  EXPECT_DOUBLE_EQ(pricing.PriceAtInverseNcp(0.0), 0.0);
  EXPECT_DOUBLE_EQ(pricing.PriceAtInverseNcp(0.5), 5.0);
  EXPECT_DOUBLE_EQ(pricing.PriceAtInverseNcp(1.0), 10.0);
}

TEST(PiecewiseLinearPricingTest, InteriorInterpolation) {
  const PiecewiseLinearPricing pricing = MakeValidPricing();
  EXPECT_DOUBLE_EQ(pricing.PriceAtInverseNcp(1.5), 14.0);
  EXPECT_DOUBLE_EQ(pricing.PriceAtInverseNcp(3.0), 24.0);
}

TEST(PiecewiseLinearPricingTest, ConstantPastLastKnot) {
  const PiecewiseLinearPricing pricing = MakeValidPricing();
  EXPECT_DOUBLE_EQ(pricing.PriceAtInverseNcp(8.0), 40.0);
  EXPECT_DOUBLE_EQ(pricing.PriceAtInverseNcp(100.0), 40.0);
}

TEST(PiecewiseLinearPricingTest, PriceAtNcpIsInverse) {
  const PiecewiseLinearPricing pricing = MakeValidPricing();
  EXPECT_DOUBLE_EQ(pricing.PriceAtNcp(1.0), pricing.PriceAtInverseNcp(1.0));
  EXPECT_DOUBLE_EQ(pricing.PriceAtNcp(0.25),
                   pricing.PriceAtInverseNcp(4.0));
}

TEST(PiecewiseLinearPricingTest, ValidatesArbitrageFreeCurve) {
  EXPECT_TRUE(MakeValidPricing().ValidateArbitrageFree().ok());
}

TEST(PiecewiseLinearPricingTest, DetectsNonMonotonePrices) {
  auto pricing =
      PiecewiseLinearPricing::Create({{1.0, 10.0}, {2.0, 5.0}}).value();
  const Status status = pricing.ValidateArbitrageFree();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("monotone"), std::string::npos);
}

TEST(PiecewiseLinearPricingTest, DetectsSuperadditiveRatio) {
  // price/x increasing (convex curve) => subadditivity fails.
  auto pricing =
      PiecewiseLinearPricing::Create({{1.0, 1.0}, {2.0, 4.0}}).value();
  EXPECT_EQ(pricing.ValidateArbitrageFree().code(),
            StatusCode::kFailedPrecondition);
}

TEST(PiecewiseLinearPricingTest, CanonicalFormIsSubadditiveEverywhere) {
  // Proposition 1 + Lemma 8: the canonical extension of relaxed-feasible
  // knots passes the dense sampled subadditivity check.
  const PiecewiseLinearPricing pricing = MakeValidPricing();
  const auto price = [&](double x) { return pricing.PriceAtInverseNcp(x); };
  EXPECT_FALSE(FindSubadditivityViolation(price, 20.0, 400).has_value());
  EXPECT_FALSE(FindMonotonicityViolation(price, 20.0, 400).has_value());
  EXPECT_TRUE(IsArbitrageFreeOnGrid(price, 20.0, 400));
}

TEST(CheckersTest, FindMonotonicityViolation) {
  const auto decreasing = [](double x) { return 10.0 - x; };
  auto violation = FindMonotonicityViolation(decreasing, 5.0, 50);
  ASSERT_TRUE(violation.has_value());
  EXPECT_LT(violation->x1, violation->x2);
  EXPECT_GT(violation->price1, violation->price2);
}

TEST(CheckersTest, FindSubadditivityViolationOnConvexCurve) {
  const auto convex = [](double x) { return x * x; };
  auto violation = FindSubadditivityViolation(convex, 4.0, 40);
  ASSERT_TRUE(violation.has_value());
  // (x + y)^2 > x^2 + y^2 for positive x, y.
  EXPECT_GT(violation->price_combined, violation->price_sum);
}

TEST(CheckersTest, LinearIsExactlyAdditive) {
  const auto linear = [](double x) { return 3.0 * x; };
  EXPECT_TRUE(IsArbitrageFreeOnGrid(linear, 10.0, 100));
}

TEST(CheckersTest, ConcaveIsSubadditive) {
  const auto sqrt_curve = [](double x) { return std::sqrt(x); };
  EXPECT_TRUE(IsArbitrageFreeOnGrid(sqrt_curve, 10.0, 100));
}

TEST(CheckersTest, ConstantWithPositiveValueIsSubadditive) {
  const auto constant = [](double) { return 5.0; };
  EXPECT_TRUE(IsArbitrageFreeOnGrid(constant, 10.0, 100));
}

TEST(MaxInverseNcpForBudgetTest, InvertsThePriceCurve) {
  const PiecewiseLinearPricing pricing = MakeValidPricing();
  // Budget below the first knot price: on the origin segment.
  EXPECT_NEAR(pricing.MaxInverseNcpForBudget(5.0), 0.5, 1e-12);
  // Interior budget.
  const double x = pricing.MaxInverseNcpForBudget(24.0);
  EXPECT_NEAR(x, 3.0, 1e-12);
  EXPECT_NEAR(pricing.PriceAtInverseNcp(x), 24.0, 1e-12);
  // Budget above the cap: infinite.
  EXPECT_TRUE(std::isinf(pricing.MaxInverseNcpForBudget(50.0)));
  EXPECT_TRUE(std::isinf(pricing.MaxInverseNcpForBudget(40.0)));
}

TEST(MaxInverseNcpForBudgetTest, ZeroBudgetGivesZeroX) {
  const PiecewiseLinearPricing pricing = MakeValidPricing();
  EXPECT_DOUBLE_EQ(pricing.MaxInverseNcpForBudget(0.0), 0.0);
}

TEST(MaxInverseNcpForBudgetTest, BudgetEqualsKnotPrice) {
  const PiecewiseLinearPricing pricing = MakeValidPricing();
  EXPECT_NEAR(pricing.MaxInverseNcpForBudget(18.0), 2.0, 1e-12);
}

}  // namespace
}  // namespace mbp::core

#include "core/pricing_function.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mbp::core {
namespace {

PiecewiseLinearPricing MakeValidPricing() {
  // Non-decreasing prices, price/x non-increasing: arbitrage-free.
  return PiecewiseLinearPricing::Create(
             {{1.0, 10.0}, {2.0, 18.0}, {4.0, 30.0}, {8.0, 40.0}})
      .value();
}

TEST(PiecewiseLinearPricingTest, CreateValidatesInput) {
  EXPECT_FALSE(PiecewiseLinearPricing::Create({}).ok());
  EXPECT_FALSE(
      PiecewiseLinearPricing::Create({{0.0, 1.0}}).ok());  // x must be > 0
  EXPECT_FALSE(
      PiecewiseLinearPricing::Create({{2.0, 1.0}, {1.0, 2.0}}).ok());
  EXPECT_FALSE(
      PiecewiseLinearPricing::Create({{1.0, 1.0}, {1.0, 2.0}}).ok());
  EXPECT_FALSE(PiecewiseLinearPricing::Create({{1.0, -1.0}}).ok());
}

TEST(PiecewiseLinearPricingTest, OriginSegmentIsLinear) {
  const PiecewiseLinearPricing pricing = MakeValidPricing();
  EXPECT_DOUBLE_EQ(pricing.PriceAtInverseNcp(0.0), 0.0);
  EXPECT_DOUBLE_EQ(pricing.PriceAtInverseNcp(0.5), 5.0);
  EXPECT_DOUBLE_EQ(pricing.PriceAtInverseNcp(1.0), 10.0);
}

TEST(PiecewiseLinearPricingTest, InteriorInterpolation) {
  const PiecewiseLinearPricing pricing = MakeValidPricing();
  EXPECT_DOUBLE_EQ(pricing.PriceAtInverseNcp(1.5), 14.0);
  EXPECT_DOUBLE_EQ(pricing.PriceAtInverseNcp(3.0), 24.0);
}

TEST(PiecewiseLinearPricingTest, ConstantPastLastKnot) {
  const PiecewiseLinearPricing pricing = MakeValidPricing();
  EXPECT_DOUBLE_EQ(pricing.PriceAtInverseNcp(8.0), 40.0);
  EXPECT_DOUBLE_EQ(pricing.PriceAtInverseNcp(100.0), 40.0);
}

TEST(PiecewiseLinearPricingTest, PriceAtNcpIsInverse) {
  const PiecewiseLinearPricing pricing = MakeValidPricing();
  EXPECT_DOUBLE_EQ(pricing.PriceAtNcp(1.0), pricing.PriceAtInverseNcp(1.0));
  EXPECT_DOUBLE_EQ(pricing.PriceAtNcp(0.25),
                   pricing.PriceAtInverseNcp(4.0));
}

TEST(PiecewiseLinearPricingTest, ValidatesArbitrageFreeCurve) {
  EXPECT_TRUE(MakeValidPricing().ValidateArbitrageFree().ok());
}

TEST(PiecewiseLinearPricingTest, DetectsNonMonotonePrices) {
  auto pricing =
      PiecewiseLinearPricing::Create({{1.0, 10.0}, {2.0, 5.0}}).value();
  const Status status = pricing.ValidateArbitrageFree();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("monotone"), std::string::npos);
}

TEST(PiecewiseLinearPricingTest, DetectsSuperadditiveRatio) {
  // price/x increasing (convex curve) => subadditivity fails.
  auto pricing =
      PiecewiseLinearPricing::Create({{1.0, 1.0}, {2.0, 4.0}}).value();
  EXPECT_EQ(pricing.ValidateArbitrageFree().code(),
            StatusCode::kFailedPrecondition);
}

TEST(PiecewiseLinearPricingTest, CanonicalFormIsSubadditiveEverywhere) {
  // Proposition 1 + Lemma 8: the canonical extension of relaxed-feasible
  // knots passes the dense sampled subadditivity check.
  const PiecewiseLinearPricing pricing = MakeValidPricing();
  const auto price = [&](double x) { return pricing.PriceAtInverseNcp(x); };
  EXPECT_FALSE(FindSubadditivityViolation(price, 20.0, 400).has_value());
  EXPECT_FALSE(FindMonotonicityViolation(price, 20.0, 400).has_value());
  EXPECT_TRUE(IsArbitrageFreeOnGrid(price, 20.0, 400));
}

TEST(CheckersTest, FindMonotonicityViolation) {
  const auto decreasing = [](double x) { return 10.0 - x; };
  auto violation = FindMonotonicityViolation(decreasing, 5.0, 50);
  ASSERT_TRUE(violation.has_value());
  EXPECT_LT(violation->x1, violation->x2);
  EXPECT_GT(violation->price1, violation->price2);
}

TEST(CheckersTest, FindSubadditivityViolationOnConvexCurve) {
  const auto convex = [](double x) { return x * x; };
  auto violation = FindSubadditivityViolation(convex, 4.0, 40);
  ASSERT_TRUE(violation.has_value());
  // (x + y)^2 > x^2 + y^2 for positive x, y.
  EXPECT_GT(violation->price_combined, violation->price_sum);
}

TEST(CheckersTest, LinearIsExactlyAdditive) {
  const auto linear = [](double x) { return 3.0 * x; };
  EXPECT_TRUE(IsArbitrageFreeOnGrid(linear, 10.0, 100));
}

TEST(CheckersTest, ConcaveIsSubadditive) {
  const auto sqrt_curve = [](double x) { return std::sqrt(x); };
  EXPECT_TRUE(IsArbitrageFreeOnGrid(sqrt_curve, 10.0, 100));
}

TEST(CheckersTest, ConstantWithPositiveValueIsSubadditive) {
  const auto constant = [](double) { return 5.0; };
  EXPECT_TRUE(IsArbitrageFreeOnGrid(constant, 10.0, 100));
}

TEST(MaxInverseNcpForBudgetTest, InvertsThePriceCurve) {
  const PiecewiseLinearPricing pricing = MakeValidPricing();
  // Budget below the first knot price: on the origin segment.
  EXPECT_NEAR(pricing.MaxInverseNcpForBudget(5.0), 0.5, 1e-12);
  // Interior budget.
  const double x = pricing.MaxInverseNcpForBudget(24.0);
  EXPECT_NEAR(x, 3.0, 1e-12);
  EXPECT_NEAR(pricing.PriceAtInverseNcp(x), 24.0, 1e-12);
  // Budget above the cap: infinite.
  EXPECT_TRUE(std::isinf(pricing.MaxInverseNcpForBudget(50.0)));
  EXPECT_TRUE(std::isinf(pricing.MaxInverseNcpForBudget(40.0)));
}

TEST(MaxInverseNcpForBudgetTest, ZeroBudgetGivesZeroX) {
  const PiecewiseLinearPricing pricing = MakeValidPricing();
  EXPECT_DOUBLE_EQ(pricing.MaxInverseNcpForBudget(0.0), 0.0);
}

TEST(MaxInverseNcpForBudgetTest, BudgetEqualsKnotPrice) {
  const PiecewiseLinearPricing pricing = MakeValidPricing();
  EXPECT_NEAR(pricing.MaxInverseNcpForBudget(18.0), 2.0, 1e-12);
}

TEST(MaxInverseNcpForBudgetTest, BinarySearchMatchesLinearScanOracle) {
  // The O(log n) partition_point inversion against the original O(n) scan
  // (internal::MaxInverseNcpForBudgetLinearScan), over curves with flat
  // runs and budgets at/between/around every knot price.
  const std::vector<std::vector<PricePoint>> curves = {
      {{1.0, 10.0}, {2.0, 18.0}, {4.0, 30.0}, {8.0, 40.0}},
      {{1.0, 10.0}, {2.0, 10.0}, {3.0, 10.0}, {6.0, 12.0}},  // flat run
      {{2.0, 6.0}, {5.0, 6.0}},                              // all flat
      {{1.0, 0.0}, {2.0, 0.0}},                              // free curve
  };
  for (const auto& knots : curves) {
    const auto pricing = PiecewiseLinearPricing::Create(knots).value();
    ASSERT_TRUE(pricing.ValidateArbitrageFree().ok());
    std::vector<double> budgets = {0.0};
    for (const PricePoint& p : knots) {
      budgets.push_back(p.price);
      budgets.push_back(std::nextafter(p.price, 0.0));
      budgets.push_back(std::nextafter(p.price, 1e300));
      budgets.push_back(p.price * 0.7);
      budgets.push_back(p.price * 1.1);
    }
    for (const double budget : budgets) {
      const double fast = pricing.MaxInverseNcpForBudget(budget);
      const double oracle =
          internal::MaxInverseNcpForBudgetLinearScan(pricing.points(),
                                                     budget);
      if (std::isinf(oracle)) {
        EXPECT_TRUE(std::isinf(fast)) << "budget=" << budget;
      } else {
        EXPECT_EQ(fast, oracle) << "budget=" << budget;
      }
    }
  }
}

TEST(MaxInverseNcpForBudgetTest, OracleAgreementOnDenseRandomCurve) {
  // A 500-knot concave curve: sqrt is monotone with decreasing ratio.
  std::vector<PricePoint> knots;
  for (int i = 1; i <= 500; ++i) {
    const double x = 0.02 * static_cast<double>(i);
    knots.push_back({x, std::sqrt(x)});
  }
  const auto pricing = PiecewiseLinearPricing::Create(knots).value();
  ASSERT_TRUE(pricing.ValidateArbitrageFree().ok());
  for (int i = 0; i <= 400; ++i) {
    const double budget =
        pricing.points().back().price * static_cast<double>(i) / 390.0;
    const double fast = pricing.MaxInverseNcpForBudget(budget);
    const double oracle = internal::MaxInverseNcpForBudgetLinearScan(
        pricing.points(), budget);
    if (std::isinf(oracle)) {
      EXPECT_TRUE(std::isinf(fast));
    } else {
      EXPECT_EQ(fast, oracle) << "budget=" << budget;
    }
  }
}

}  // namespace
}  // namespace mbp::core

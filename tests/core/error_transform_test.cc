#include "core/error_transform.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "ml/trainer.h"

namespace mbp::core {
namespace {

TEST(SquareLossTransformTest, IsTheIdentity) {
  // Lemma 3: E[eps_s] = delta exactly.
  SquareLossTransform transform;
  EXPECT_DOUBLE_EQ(transform.ExpectedError(0.7), 0.7);
  EXPECT_DOUBLE_EQ(transform.DeltaForError(2.5), 2.5);
  EXPECT_DOUBLE_EQ(transform.DeltaForError(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(transform.MinError(), 0.0);
}

class EmpiricalTransformTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::Simulated1Options options;
    options.num_examples = 400;
    options.num_features = 6;
    options.noise_stddev = 0.05;
    options.seed = 21;
    data_ = new data::Dataset(data::GenerateSimulated1(options).value());
    optimal_ = new linalg::Vector(
        ml::TrainOptimalModel(ml::ModelKind::kLinearRegression, *data_, 0.0)
            .value()
            .model.coefficients());
  }
  static void TearDownTestSuite() {
    delete data_;
    delete optimal_;
    data_ = nullptr;
    optimal_ = nullptr;
  }

  static EmpiricalErrorTransform BuildDefault() {
    GaussianMechanism mechanism;
    ml::SquareLoss loss(0.0);
    EmpiricalErrorTransform::BuildOptions options;
    options.delta_min = 0.01;
    options.delta_max = 2.0;
    options.grid_size = 15;
    options.trials_per_delta = 300;
    return EmpiricalErrorTransform::Build(mechanism, *optimal_, loss,
                                          *data_, options)
        .value();
  }

  static data::Dataset* data_;
  static linalg::Vector* optimal_;
};

data::Dataset* EmpiricalTransformTest::data_ = nullptr;
linalg::Vector* EmpiricalTransformTest::optimal_ = nullptr;

TEST_F(EmpiricalTransformTest, ErrorGridIsMonotoneNonDecreasing) {
  const EmpiricalErrorTransform transform = BuildDefault();
  const std::vector<double>& errors = transform.error_grid();
  for (size_t i = 1; i < errors.size(); ++i) {
    EXPECT_LE(errors[i - 1], errors[i] + 1e-12);
  }
}

TEST_F(EmpiricalTransformTest, ExpectedErrorInterpolatesGrid) {
  const EmpiricalErrorTransform transform = BuildDefault();
  const std::vector<double>& deltas = transform.delta_grid();
  const std::vector<double>& errors = transform.error_grid();
  for (size_t i = 0; i < deltas.size(); ++i) {
    EXPECT_NEAR(transform.ExpectedError(deltas[i]), errors[i], 1e-12);
  }
}

TEST_F(EmpiricalTransformTest, MinErrorIsOptimalModelError) {
  const EmpiricalErrorTransform transform = BuildDefault();
  ml::SquareLoss loss(0.0);
  EXPECT_DOUBLE_EQ(transform.MinError(), loss.Evaluate(*optimal_, *data_));
  EXPECT_DOUBLE_EQ(transform.ExpectedError(0.0), transform.MinError());
}

TEST_F(EmpiricalTransformTest, DeltaForErrorRoundTrips) {
  const EmpiricalErrorTransform transform = BuildDefault();
  for (double delta : {0.02, 0.1, 0.5, 1.5}) {
    const double error = transform.ExpectedError(delta);
    const double recovered = transform.DeltaForError(error);
    EXPECT_NEAR(transform.ExpectedError(recovered), error, 1e-9);
  }
}

TEST_F(EmpiricalTransformTest, DeltaForErrorClampsAtRangeEnds) {
  const EmpiricalErrorTransform transform = BuildDefault();
  EXPECT_DOUBLE_EQ(transform.DeltaForError(transform.MinError() - 1.0), 0.0);
  const double huge = transform.error_grid().back() + 100.0;
  EXPECT_DOUBLE_EQ(transform.DeltaForError(huge),
                   transform.delta_grid().back());
}

TEST_F(EmpiricalTransformTest, ExpectedErrorGrowsWithDelta) {
  // Theorem 4: for (strictly) convex eps, expected error is monotone in
  // delta. Checked on the fitted transform at off-grid points.
  const EmpiricalErrorTransform transform = BuildDefault();
  double prev = transform.ExpectedError(0.005);
  for (double delta = 0.01; delta <= 2.0; delta += 0.05) {
    const double here = transform.ExpectedError(delta);
    EXPECT_GE(here, prev - 1e-12);
    prev = here;
  }
}

TEST_F(EmpiricalTransformTest, SquareLossErrorTracksLemma3Slope) {
  // For dataset square loss, E[eps(h* + w)] = eps(h*) + quadratic-in-noise
  // term; with standardized Gaussian features the Gram matrix is ~I, so
  // the curve grows roughly linearly in delta with slope ~ E||x||^2-ish.
  // We only assert substantial, monotone growth (shape, not constants).
  const EmpiricalErrorTransform transform = BuildDefault();
  const double low = transform.ExpectedError(0.05);
  const double high = transform.ExpectedError(1.6);
  EXPECT_GT(high, 5.0 * low);
}

TEST_F(EmpiricalTransformTest, RejectsBadOptions) {
  GaussianMechanism mechanism;
  ml::SquareLoss loss(0.0);
  EmpiricalErrorTransform::BuildOptions options;
  options.delta_min = 0.0;
  EXPECT_FALSE(EmpiricalErrorTransform::Build(mechanism, *optimal_, loss,
                                              *data_, options)
                   .ok());
  options.delta_min = 0.5;
  options.delta_max = 0.1;
  EXPECT_FALSE(EmpiricalErrorTransform::Build(mechanism, *optimal_, loss,
                                              *data_, options)
                   .ok());
  options.delta_max = 1.0;
  options.grid_size = 1;
  EXPECT_FALSE(EmpiricalErrorTransform::Build(mechanism, *optimal_, loss,
                                              *data_, options)
                   .ok());
  options.grid_size = 5;
  options.trials_per_delta = 0;
  EXPECT_FALSE(EmpiricalErrorTransform::Build(mechanism, *optimal_, loss,
                                              *data_, options)
                   .ok());
}

TEST_F(EmpiricalTransformTest, RejectsDimensionMismatch) {
  GaussianMechanism mechanism;
  ml::SquareLoss loss(0.0);
  linalg::Vector wrong_dim(3);
  EXPECT_EQ(EmpiricalErrorTransform::Build(mechanism, wrong_dim, loss,
                                           *data_, {})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(EmpiricalTransformTest, DeterministicForSeed) {
  GaussianMechanism mechanism;
  ml::SquareLoss loss(0.0);
  EmpiricalErrorTransform::BuildOptions options;
  options.grid_size = 5;
  options.trials_per_delta = 50;
  options.seed = 99;
  auto a = EmpiricalErrorTransform::Build(mechanism, *optimal_, loss,
                                          *data_, options);
  auto b = EmpiricalErrorTransform::Build(mechanism, *optimal_, loss,
                                          *data_, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->error_grid(), b->error_grid());
}

TEST_F(EmpiricalTransformTest, ThreadCountDoesNotChangeTheResult) {
  GaussianMechanism mechanism;
  ml::SquareLoss loss(0.0);
  EmpiricalErrorTransform::BuildOptions options;
  options.grid_size = 8;
  options.trials_per_delta = 100;
  options.seed = 321;
  options.parallel.num_threads = 1;
  auto serial = EmpiricalErrorTransform::Build(mechanism, *optimal_, loss,
                                               *data_, options);
  options.parallel.num_threads = 4;
  auto parallel = EmpiricalErrorTransform::Build(mechanism, *optimal_,
                                                 loss, *data_, options);
  options.parallel.num_threads = 64;  // more threads than grid points
  auto oversubscribed = EmpiricalErrorTransform::Build(
      mechanism, *optimal_, loss, *data_, options);
  ASSERT_TRUE(serial.ok() && parallel.ok() && oversubscribed.ok());
  EXPECT_EQ(serial->error_grid(), parallel->error_grid());
  EXPECT_EQ(serial->error_grid(), oversubscribed->error_grid());
}

TEST_F(EmpiricalTransformTest, AnalyticSquareTransformSlopeFormula) {
  auto analytic = AnalyticSquareLossTransform::Build(*optimal_, *data_);
  ASSERT_TRUE(analytic.ok());
  // slope = tr(X^T X) / (2 n d), computed by hand.
  double trace = 0.0;
  for (size_t i = 0; i < data_->num_examples(); ++i) {
    const double* row = data_->ExampleFeatures(i);
    for (size_t j = 0; j < data_->num_features(); ++j) {
      trace += row[j] * row[j];
    }
  }
  const double expected =
      trace / (2.0 * data_->num_examples() * data_->num_features());
  EXPECT_NEAR(analytic->slope(), expected, 1e-12);
  // Linear in delta and exactly invertible.
  EXPECT_NEAR(analytic->ExpectedError(2.0),
              analytic->MinError() + 2.0 * analytic->slope(), 1e-12);
  EXPECT_NEAR(analytic->DeltaForError(analytic->ExpectedError(0.37)), 0.37,
              1e-12);
  EXPECT_DOUBLE_EQ(analytic->DeltaForError(analytic->MinError() - 1.0),
                   0.0);
}

TEST_F(EmpiricalTransformTest,
       AnalyticMatchesMonteCarloForIsotropicMechanisms) {
  auto analytic = AnalyticSquareLossTransform::Build(*optimal_, *data_);
  ASSERT_TRUE(analytic.ok());
  ml::SquareLoss loss(0.0);
  EmpiricalErrorTransform::BuildOptions build;
  build.delta_min = 0.05;
  build.delta_max = 1.0;
  build.grid_size = 6;
  build.trials_per_delta = 3000;
  for (MechanismKind kind :
       {MechanismKind::kGaussian, MechanismKind::kLaplace,
        MechanismKind::kUniformAdditive}) {
    const std::unique_ptr<RandomizedMechanism> mechanism =
        MakeMechanism(kind);
    auto empirical = EmpiricalErrorTransform::Build(
        *mechanism, *optimal_, loss, *data_, build);
    ASSERT_TRUE(empirical.ok());
    for (double delta : {0.1, 0.5, 1.0}) {
      const double closed_form = analytic->ExpectedError(delta);
      const double monte_carlo = empirical->ExpectedError(delta);
      EXPECT_NEAR(monte_carlo, closed_form, 0.05 * closed_form)
          << mechanism->name() << " at delta " << delta;
    }
  }
}

TEST_F(EmpiricalTransformTest, AnalyticTransformRejectsBadInputs) {
  linalg::Vector wrong_dim(2);
  EXPECT_FALSE(
      AnalyticSquareLossTransform::Build(wrong_dim, *data_).ok());
  // All-zero features make the transform flat.
  linalg::Matrix zeros(3, 2);
  const data::Dataset degenerate =
      data::Dataset::Create(std::move(zeros),
                            linalg::Vector{1.0, 2.0, 3.0},
                            data::TaskType::kRegression)
          .value();
  EXPECT_FALSE(AnalyticSquareLossTransform::Build(linalg::Vector(2),
                                                  degenerate)
                   .ok());
}

TEST_F(EmpiricalTransformTest, ZeroOneLossTransformIsMonotoneToo) {
  // Figure 6 bottom row: even the non-convex 0/1 error decreases with
  // 1/NCP (i.e. increases with delta) after the isotonic fit.
  data::Simulated2Options options;
  options.num_examples = 500;
  options.num_features = 5;
  options.seed = 31;
  const data::Dataset data = data::GenerateSimulated2(options).value();
  const linalg::Vector optimal =
      ml::TrainOptimalModel(ml::ModelKind::kLogisticRegression, data, 0.01)
          .value()
          .model.coefficients();
  GaussianMechanism mechanism;
  ml::ZeroOneLoss loss;
  EmpiricalErrorTransform::BuildOptions build;
  build.delta_min = 0.01;
  build.delta_max = 5.0;
  build.grid_size = 12;
  build.trials_per_delta = 200;
  auto transform = EmpiricalErrorTransform::Build(mechanism, optimal, loss,
                                                  data, build);
  ASSERT_TRUE(transform.ok());
  const std::vector<double>& errors = transform->error_grid();
  for (size_t i = 1; i < errors.size(); ++i) {
    EXPECT_LE(errors[i - 1], errors[i] + 1e-12);
  }
  // More noise should hurt accuracy substantially across the range.
  EXPECT_GT(errors.back(), errors.front());
}

}  // namespace
}  // namespace mbp::core

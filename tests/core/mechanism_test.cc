#include "core/mechanism.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "linalg/vector_ops.h"

namespace mbp::core {
namespace {

class MechanismTest : public ::testing::TestWithParam<MechanismKind> {
 protected:
  std::unique_ptr<RandomizedMechanism> mechanism_ =
      MakeMechanism(GetParam());
};

TEST_P(MechanismTest, ZeroDeltaReturnsOptimalUnchanged) {
  random::Rng rng(1);
  const linalg::Vector optimal{1.0, -2.0, 3.5};
  EXPECT_EQ(mechanism_->Perturb(optimal, 0.0, rng), optimal);
}

TEST_P(MechanismTest, PerturbPreservesDimension) {
  random::Rng rng(2);
  const linalg::Vector optimal(7, 1.0);
  EXPECT_EQ(mechanism_->Perturb(optimal, 0.5, rng).size(), 7u);
}

TEST_P(MechanismTest, IsUnbiased) {
  // Restriction 1 (Section 3.2): E[K(h*, w)] = h*.
  random::Rng rng(3);
  const linalg::Vector optimal{2.0, -1.0, 0.5, 4.0};
  const int trials = 40000;
  linalg::Vector mean(optimal.size());
  for (int t = 0; t < trials; ++t) {
    const linalg::Vector noisy = mechanism_->Perturb(optimal, 1.0, rng);
    for (size_t j = 0; j < mean.size(); ++j) mean[j] += noisy[j] / trials;
  }
  for (size_t j = 0; j < mean.size(); ++j) {
    EXPECT_NEAR(mean[j], optimal[j], 0.02) << mechanism_->name();
  }
}

TEST_P(MechanismTest, ExpectedSquaredNoiseEqualsDelta) {
  // Lemma 3 normalization: E||K(h*,w) - h*||^2 = delta for every mechanism.
  random::Rng rng(4);
  const linalg::Vector optimal(10, 0.7);
  for (double delta : {0.1, 1.0, 5.0}) {
    const int trials = 20000;
    double total = 0.0;
    for (int t = 0; t < trials; ++t) {
      const linalg::Vector noisy = mechanism_->Perturb(optimal, delta, rng);
      total += linalg::SquaredDistance(noisy, optimal);
    }
    const double measured = total / trials;
    EXPECT_NEAR(measured, delta, 0.05 * delta)
        << mechanism_->name() << " at delta " << delta;
    EXPECT_DOUBLE_EQ(mechanism_->ExpectedSquaredNoise(delta, 10), delta);
  }
}

TEST_P(MechanismTest, DeterministicGivenRngState) {
  random::Rng rng1(55), rng2(55);
  const linalg::Vector optimal{1.0, 2.0};
  EXPECT_EQ(mechanism_->Perturb(optimal, 0.7, rng1),
            mechanism_->Perturb(optimal, 0.7, rng2));
}

TEST_P(MechanismTest, LargerDeltaMeansLargerTypicalNoise) {
  random::Rng rng(6);
  const linalg::Vector optimal(5, 1.0);
  double small_noise = 0.0, large_noise = 0.0;
  const int trials = 5000;
  for (int t = 0; t < trials; ++t) {
    small_noise += linalg::SquaredDistance(
        mechanism_->Perturb(optimal, 0.1, rng), optimal);
    large_noise += linalg::SquaredDistance(
        mechanism_->Perturb(optimal, 2.0, rng), optimal);
  }
  EXPECT_LT(small_noise, large_noise);
}

INSTANTIATE_TEST_SUITE_P(
    AllMechanisms, MechanismTest,
    ::testing::Values(MechanismKind::kGaussian, MechanismKind::kLaplace,
                      MechanismKind::kUniformAdditive,
                      MechanismKind::kUniformMultiplicative),
    [](const auto& info) { return MakeMechanism(info.param)->name(); });

TEST(UniformMultiplicativeMechanismDeathTest, ZeroModelAborts) {
  UniformMultiplicativeMechanism mechanism;
  random::Rng rng(1);
  EXPECT_DEATH({ mechanism.Perturb(linalg::Vector(3, 0.0), 1.0, rng); },
               "non-zero model");
}

TEST(UniformMultiplicativeMechanismTest, NoiseScalesWithCoordinates) {
  // A zero coordinate stays exactly zero under multiplicative noise.
  UniformMultiplicativeMechanism mechanism;
  random::Rng rng(2);
  const linalg::Vector optimal{5.0, 0.0};
  for (int t = 0; t < 100; ++t) {
    const linalg::Vector noisy = mechanism.Perturb(optimal, 0.5, rng);
    EXPECT_DOUBLE_EQ(noisy[1], 0.0);
    EXPECT_NE(noisy[0], 5.0);
  }
}

TEST(GaussianMechanismTest, PerCoordinateVarianceIsDeltaOverD) {
  // Equation 1: W_delta = N(0, (delta/d) I_d).
  GaussianMechanism mechanism;
  random::Rng rng(7);
  const size_t d = 4;
  const double delta = 2.0;
  const linalg::Vector optimal(d, 0.0);
  const int trials = 40000;
  linalg::Vector second_moment(d);
  for (int t = 0; t < trials; ++t) {
    const linalg::Vector noisy = mechanism.Perturb(optimal, delta, rng);
    for (size_t j = 0; j < d; ++j) {
      second_moment[j] += noisy[j] * noisy[j] / trials;
    }
  }
  for (size_t j = 0; j < d; ++j) {
    EXPECT_NEAR(second_moment[j], delta / d, 0.05 * delta / d);
  }
}

TEST(MechanismDeathTest, NegativeDeltaAborts) {
  GaussianMechanism mechanism;
  random::Rng rng(1);
  EXPECT_DEATH({ mechanism.Perturb(linalg::Vector(2), -1.0, rng); },
               "MBP_CHECK failed");
}

TEST(MechanismDeathTest, EmptyModelAborts) {
  GaussianMechanism mechanism;
  random::Rng rng(1);
  EXPECT_DEATH({ mechanism.Perturb(linalg::Vector(), 1.0, rng); },
               "MBP_CHECK failed");
}

TEST(MechanismFactoryTest, NamesAreDistinct) {
  EXPECT_EQ(MakeMechanism(MechanismKind::kGaussian)->name(), "gaussian");
  EXPECT_EQ(MakeMechanism(MechanismKind::kLaplace)->name(), "laplace");
  EXPECT_EQ(MakeMechanism(MechanismKind::kUniformAdditive)->name(),
            "uniform_additive");
  EXPECT_EQ(MakeMechanism(MechanismKind::kUniformMultiplicative)->name(),
            "uniform_multiplicative");
}

}  // namespace
}  // namespace mbp::core

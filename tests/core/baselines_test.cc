#include "core/baselines.h"

#include <gtest/gtest.h>

#include "core/curves.h"
#include "core/pricing_function.h"
#include "core/revenue_opt.h"

namespace mbp::core {
namespace {

std::vector<CurvePoint> Figure5Curve() {
  return {{1.0, 100.0, 0.25},
          {2.0, 150.0, 0.25},
          {3.0, 280.0, 0.25},
          {4.0, 350.0, 0.25}};
}

TEST(BaselinesTest, LinearInterpolatesEndValues) {
  auto result = PriceWithBaseline(BaselineKind::kLinear, Figure5Curve());
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->prices[0], 100.0, 1e-9);
  EXPECT_NEAR(result->prices[3], 350.0, 1e-9);
  // Interior prices lie on the chord between (1,100) and (4,350).
  EXPECT_NEAR(result->prices[1], 100.0 + 250.0 / 3.0, 1e-9);
  EXPECT_NEAR(result->prices[2], 100.0 + 2.0 * 250.0 / 3.0, 1e-9);
}

TEST(BaselinesTest, LinearLosesRevenueOnConvexValueCurve) {
  // Under the convex value curve of Figure 5, the chord overshoots the
  // middle valuations (183 > 150), pricing those buyers out.
  auto result = PriceWithBaseline(BaselineKind::kLinear, Figure5Curve());
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->affordability, 1.0);
  auto mbp = MaximizeRevenueDp(Figure5Curve());
  ASSERT_TRUE(mbp.ok());
  EXPECT_GT(mbp->revenue, result->revenue);
}

TEST(BaselinesTest, MaxConstantChargesTheTopValuation) {
  auto result =
      PriceWithBaseline(BaselineKind::kMaxConstant, Figure5Curve());
  ASSERT_TRUE(result.ok());
  for (double price : result->prices) EXPECT_DOUBLE_EQ(price, 350.0);
  // Only the top buyer affords it.
  EXPECT_NEAR(result->affordability, 0.25, 1e-9);
  EXPECT_NEAR(result->revenue, 0.25 * 350.0, 1e-9);
}

TEST(BaselinesTest, MedianConstantReachesHalfTheBuyers) {
  auto result =
      PriceWithBaseline(BaselineKind::kMedianConstant, Figure5Curve());
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->affordability, 0.5 - 1e-9);
  // The demand-weighted lower median of (100,150,280,350) at equal demand
  // is 280 (walking from the top: 350, 280 reach half the mass).
  EXPECT_DOUBLE_EQ(result->prices[0], 280.0);
}

TEST(BaselinesTest, OptimalConstantMaximizesOverSinglePrices) {
  auto optc =
      PriceWithBaseline(BaselineKind::kOptimalConstant, Figure5Curve());
  ASSERT_TRUE(optc.ok());
  // Scan all candidate single prices by hand:
  //   100 -> 100, 150 -> 112.5, 280 -> 140, 350 -> 87.5. Best: 280.
  EXPECT_DOUBLE_EQ(optc->prices[0], 280.0);
  EXPECT_NEAR(optc->revenue, 0.25 * 280.0 * 2.0, 1e-9);
  for (BaselineKind kind :
       {BaselineKind::kMaxConstant, BaselineKind::kMedianConstant}) {
    auto other = PriceWithBaseline(kind, Figure5Curve());
    ASSERT_TRUE(other.ok());
    EXPECT_GE(optc->revenue + 1e-9, other->revenue);
  }
}

TEST(BaselinesTest, MbpDominatesConstantBaselinesAlways) {
  // Constant prices are always relaxed-feasible, so the DP optimum
  // dominates MaxC/MedC/OptC for every curve shape — a theorem, not just
  // an empirical observation.
  for (ValueShape value_shape : {ValueShape::kLinear, ValueShape::kConvex,
                                 ValueShape::kConcave,
                                 ValueShape::kSigmoid}) {
    for (DemandShape demand_shape :
         {DemandShape::kUniform, DemandShape::kMidPeaked,
          DemandShape::kExtremes}) {
      MarketCurveOptions options;
      options.num_points = 12;
      options.value_shape = value_shape;
      options.demand_shape = demand_shape;
      auto curve = MakeMarketCurve(options);
      ASSERT_TRUE(curve.ok());
      auto mbp = MaximizeRevenueDp(*curve);
      ASSERT_TRUE(mbp.ok());
      for (BaselineKind kind :
           {BaselineKind::kMaxConstant, BaselineKind::kMedianConstant,
            BaselineKind::kOptimalConstant}) {
        auto baseline = PriceWithBaseline(kind, *curve);
        ASSERT_TRUE(baseline.ok());
        EXPECT_GE(mbp->revenue + 1e-9, baseline->revenue)
            << ValueShapeToString(value_shape) << "/"
            << DemandShapeToString(demand_shape) << " vs "
            << BaselineKindToString(kind);
      }
    }
  }
}

TEST(BaselinesTest, MbpDominatesLinOnPaperValueShapes) {
  // Figure 7 compares against Lin on convex and concave value curves,
  // where the chord either overshoots middle valuations (convex: lost
  // sales) or undersells every buyer (concave). On a *linear* value curve
  // Lin would extract full surplus — but there its chord has a negative
  // x-intercept and is not actually subadditive (a Figure 5(a)-style
  // arbitrage pricing), so the paper never uses it.
  for (ValueShape value_shape :
       {ValueShape::kConvex, ValueShape::kConcave}) {
    for (DemandShape demand_shape :
         {DemandShape::kUniform, DemandShape::kMidPeaked,
          DemandShape::kExtremes}) {
      MarketCurveOptions options;
      options.num_points = 12;
      options.value_shape = value_shape;
      options.demand_shape = demand_shape;
      auto curve = MakeMarketCurve(options);
      ASSERT_TRUE(curve.ok());
      auto mbp = MaximizeRevenueDp(*curve);
      auto lin = PriceWithBaseline(BaselineKind::kLinear, *curve);
      ASSERT_TRUE(mbp.ok() && lin.ok());
      EXPECT_GE(mbp->revenue + 1e-9, lin->revenue)
          << ValueShapeToString(value_shape) << "/"
          << DemandShapeToString(demand_shape);
    }
  }
}

TEST(BaselinesTest, ConstantBaselinesAreArbitrageFree) {
  for (BaselineKind kind :
       {BaselineKind::kMaxConstant, BaselineKind::kMedianConstant,
        BaselineKind::kOptimalConstant}) {
    auto result = PriceWithBaseline(kind, Figure5Curve());
    ASSERT_TRUE(result.ok());
    auto pricing = PricingFromKnots(Figure5Curve(), result->prices);
    ASSERT_TRUE(pricing.ok());
    EXPECT_TRUE(pricing->ValidateArbitrageFree().ok())
        << BaselineKindToString(kind);
  }
}

TEST(BaselinesTest, RejectsEmptyCurve) {
  EXPECT_FALSE(PriceWithBaseline(BaselineKind::kLinear, {}).ok());
}

TEST(BaselinesTest, SinglePointCurve) {
  const std::vector<CurvePoint> curve{{1.0, 42.0, 1.0}};
  for (BaselineKind kind : AllBaselines()) {
    auto result = PriceWithBaseline(kind, curve);
    ASSERT_TRUE(result.ok());
    EXPECT_DOUBLE_EQ(result->prices[0], 42.0)
        << BaselineKindToString(kind);
  }
}

TEST(BaselinesTest, NamesAreStable) {
  EXPECT_EQ(BaselineKindToString(BaselineKind::kLinear), "Lin");
  EXPECT_EQ(BaselineKindToString(BaselineKind::kMaxConstant), "MaxC");
  EXPECT_EQ(BaselineKindToString(BaselineKind::kMedianConstant), "MedC");
  EXPECT_EQ(BaselineKindToString(BaselineKind::kOptimalConstant), "OptC");
  EXPECT_EQ(AllBaselines().size(), 4u);
}

}  // namespace
}  // namespace mbp::core

// Round-trip and adversarial-input tests for the net wire protocol: every
// frame either decodes to exactly what was encoded, reports "incomplete",
// or fails loudly — a flipped bit must never be acted on. The suite name
// matches scripts/tsan.sh's Net filter.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/protocol.h"
#include "random/rng.h"

namespace mbp::net {
namespace {

// Test-local FNV-1a so corruption tests can re-seal frames they mutate
// without going through the library's encoder.
uint32_t TestFnv1a32(const uint8_t* data, size_t size) {
  uint32_t hash = 2166136261u;
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 16777619u;
  }
  return hash;
}

void Reseal(std::string* frame) {
  uint32_t frame_len = 0;
  std::memcpy(&frame_len, frame->data(), 4);
  const uint32_t checksum = TestFnv1a32(
      reinterpret_cast<const uint8_t*>(frame->data()) + 8, frame_len);
  std::memcpy(frame->data() + 4, &checksum, 4);
}

const uint8_t* Bytes(const std::string& wire) {
  return reinterpret_cast<const uint8_t*>(wire.data());
}

Request RandomRequest(random::Rng& rng) {
  Request request;
  request.verb = static_cast<Verb>(1 + rng.NextBounded(7));
  request.request_id = rng.NextUint64();
  const size_t id_len = rng.NextBounded(20);
  for (size_t i = 0; i < id_len; ++i) {
    request.curve_id.push_back('a' + static_cast<char>(rng.NextBounded(26)));
  }
  if (request.verb == Verb::kPriceAt || request.verb == Verb::kBudgetToX) {
    const size_t n = 1 + rng.NextBounded(8);
    for (size_t i = 0; i < n; ++i) {
      request.args.push_back(rng.NextDouble(0.0, 100.0));
    }
  }
  if (request.verb == Verb::kQuote || request.verb == Verb::kBuy) {
    request.delta = rng.NextDouble(0.01, 10.0);
  }
  if (request.verb == Verb::kBuy || request.verb == Verb::kReplay) {
    request.txn_id = rng.NextUint64();
  }
  if (request.verb == Verb::kBuy && rng.NextBounded(2) == 0) {
    const size_t token_len = 1 + rng.NextBounded(64);
    for (size_t i = 0; i < token_len; ++i) {
      request.token.push_back(static_cast<char>(rng.NextBounded(256)));
    }
  }
  return request;
}

TEST(NetProtocolFuzzTest, RequestRoundTripAllVerbs) {
  random::Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    const Request request = RandomRequest(rng);
    std::string wire;
    EncodeRequest(request, &wire);
    Request decoded;
    const auto consumed = DecodeRequest(Bytes(wire), wire.size(), &decoded);
    ASSERT_TRUE(consumed.ok()) << consumed.status();
    EXPECT_EQ(*consumed, wire.size());
    EXPECT_EQ(decoded.verb, request.verb);
    EXPECT_EQ(decoded.request_id, request.request_id);
    EXPECT_EQ(decoded.curve_id, request.curve_id);
    EXPECT_EQ(decoded.args, request.args);
    EXPECT_EQ(decoded.delta, request.delta);
    EXPECT_EQ(decoded.txn_id, request.txn_id);
    EXPECT_EQ(decoded.token, request.token);
  }
}

TEST(NetProtocolFuzzTest, ResponseRoundTripAllShapes) {
  random::Rng rng(11);
  for (int trial = 0; trial < 500; ++trial) {
    Response response;
    response.verb = static_cast<Verb>(1 + rng.NextBounded(7));
    response.request_id = rng.NextUint64();
    if (rng.NextBounded(3) == 0) {
      response.code = StatusCode::kNotFound;
      response.error_message = "curve 'gone' is not being served";
    } else {
      switch (response.verb) {
        case Verb::kPriceAt:
        case Verb::kBudgetToX: {
          const size_t n = 1 + rng.NextBounded(16);
          for (size_t i = 0; i < n; ++i) {
            response.values.push_back(rng.NextDouble(0.0, 1e6));
          }
          break;
        }
        case Verb::kSnapshotInfo:
          response.info.version = rng.NextUint64();
          response.info.stamp = rng.NextUint64();
          response.info.num_knots = rng.NextBounded(100);
          response.info.x_max = rng.NextDouble(1.0, 100.0);
          response.info.max_price = rng.NextDouble(1.0, 1e4);
          break;
        case Verb::kStats:
          response.stats.requests_ok = rng.NextUint64();
          response.stats.queries = rng.NextUint64();
          response.stats.requests_shed = rng.NextUint64();
          response.stats.deadline_drops = rng.NextUint64();
          response.stats.connections_killed = rng.NextUint64();
          response.stats.connections_refused = rng.NextUint64();
          response.stats.faults_injected = rng.NextUint64();
          response.stats.write_queue_peak_bytes = rng.NextUint64();
          response.stats.latency.count = 3;
          response.stats.latency.sum_micros = 42.5;
          response.stats.latency.buckets[2] = 3;
          response.stats.write_queue_bytes.count = 7;
          response.stats.write_queue_bytes.sum_micros = 1024.0;
          response.stats.write_queue_bytes.buckets[10] = 7;
          for (size_t i = 0, n = rng.NextBounded(4); i < n; ++i) {
            response.stats.faults.push_back(
                FaultCount{"net.recv.point" + std::to_string(i),
                           rng.NextUint64()});
          }
          response.stats.requests_by_verb[1] = rng.NextUint64();
          response.stats.requests_by_verb[6] = rng.NextUint64();
          response.stats.buys_ok = rng.NextUint64();
          response.stats.model_cache_bytes = rng.NextUint64();
          response.stats.transactions_recorded = rng.NextUint64();
          response.stats.revenue = rng.NextDouble(0.0, 1e9);
          response.stats.wal_appends = rng.NextUint64();
          response.stats.wal_fsyncs = rng.NextUint64();
          response.stats.wal_bytes = rng.NextUint64();
          response.stats.recovery_records = rng.NextUint64();
          response.stats.recovery_torn_tail = rng.NextUint64();
          response.stats.recovery_ms = rng.NextUint64();
          response.stats.fulfillment_latency.count = 5;
          response.stats.fulfillment_latency.sum_micros = 99.25;
          response.stats.fulfillment_latency.buckets[4] = 5;
          break;
        case Verb::kQuote:
          response.quote.price = rng.NextDouble(0.0, 1e6);
          response.quote.delta = rng.NextDouble(0.01, 10.0);
          response.quote.expires_at_micros = rng.NextUint64();
          for (size_t i = 0, n = 1 + rng.NextBounded(48); i < n; ++i) {
            response.quote.token.push_back(
                static_cast<char>(rng.NextBounded(256)));
          }
          break;
        case Verb::kBuy:
        case Verb::kReplay: {
          response.buy.record.txn_id = rng.NextUint64();
          response.buy.record.curve_ref =
              static_cast<uint32_t>(rng.NextUint64());
          response.buy.record.delta = rng.NextDouble(0.01, 10.0);
          response.buy.record.price = rng.NextDouble(0.0, 1e6);
          response.buy.record.seed_commitment = rng.NextUint64();
          const size_t n = 1 + rng.NextBounded(32);
          for (size_t i = 0; i < n; ++i) {
            response.buy.weights.push_back(rng.NextDouble(-10.0, 10.0));
          }
          break;
        }
      }
    }
    std::string wire;
    EncodeResponse(response, &wire);
    Response decoded;
    const auto consumed = DecodeResponse(Bytes(wire), wire.size(), &decoded);
    ASSERT_TRUE(consumed.ok()) << consumed.status();
    EXPECT_EQ(*consumed, wire.size());
    EXPECT_EQ(decoded.verb, response.verb);
    EXPECT_EQ(decoded.request_id, response.request_id);
    EXPECT_EQ(decoded.code, response.code);
    EXPECT_EQ(decoded.error_message, response.error_message);
    EXPECT_EQ(decoded.values, response.values);
    EXPECT_EQ(decoded.info.version, response.info.version);
    EXPECT_EQ(decoded.info.stamp, response.info.stamp);
    EXPECT_EQ(decoded.stats.requests_ok, response.stats.requests_ok);
    EXPECT_EQ(decoded.stats.latency.count, response.stats.latency.count);
    EXPECT_EQ(decoded.stats.latency.buckets, response.stats.latency.buckets);
    EXPECT_EQ(decoded.stats.requests_shed, response.stats.requests_shed);
    EXPECT_EQ(decoded.stats.deadline_drops, response.stats.deadline_drops);
    EXPECT_EQ(decoded.stats.connections_killed,
              response.stats.connections_killed);
    EXPECT_EQ(decoded.stats.connections_refused,
              response.stats.connections_refused);
    EXPECT_EQ(decoded.stats.faults_injected, response.stats.faults_injected);
    EXPECT_EQ(decoded.stats.write_queue_peak_bytes,
              response.stats.write_queue_peak_bytes);
    EXPECT_EQ(decoded.stats.write_queue_bytes.count,
              response.stats.write_queue_bytes.count);
    EXPECT_EQ(decoded.stats.write_queue_bytes.buckets,
              response.stats.write_queue_bytes.buckets);
    EXPECT_EQ(decoded.stats.faults, response.stats.faults);
    EXPECT_EQ(decoded.stats.requests_by_verb, response.stats.requests_by_verb);
    EXPECT_EQ(decoded.stats.buys_ok, response.stats.buys_ok);
    EXPECT_EQ(decoded.stats.model_cache_bytes,
              response.stats.model_cache_bytes);
    EXPECT_EQ(decoded.stats.transactions_recorded,
              response.stats.transactions_recorded);
    EXPECT_EQ(decoded.stats.revenue, response.stats.revenue);
    EXPECT_EQ(decoded.stats.wal_appends, response.stats.wal_appends);
    EXPECT_EQ(decoded.stats.wal_fsyncs, response.stats.wal_fsyncs);
    EXPECT_EQ(decoded.stats.wal_bytes, response.stats.wal_bytes);
    EXPECT_EQ(decoded.stats.recovery_records,
              response.stats.recovery_records);
    EXPECT_EQ(decoded.stats.recovery_torn_tail,
              response.stats.recovery_torn_tail);
    EXPECT_EQ(decoded.stats.recovery_ms, response.stats.recovery_ms);
    EXPECT_EQ(decoded.stats.fulfillment_latency.count,
              response.stats.fulfillment_latency.count);
    EXPECT_EQ(decoded.stats.fulfillment_latency.buckets,
              response.stats.fulfillment_latency.buckets);
    EXPECT_EQ(decoded.quote.price, response.quote.price);
    EXPECT_EQ(decoded.quote.delta, response.quote.delta);
    EXPECT_EQ(decoded.quote.expires_at_micros,
              response.quote.expires_at_micros);
    EXPECT_EQ(decoded.quote.token, response.quote.token);
    EXPECT_EQ(decoded.buy.record, response.buy.record);
    EXPECT_EQ(decoded.buy.weights, response.buy.weights);
  }
}

TEST(NetProtocolFuzzTest, EveryStrictPrefixIsIncomplete) {
  random::Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    std::string wire;
    EncodeRequest(RandomRequest(rng), &wire);
    for (size_t prefix = 0; prefix < wire.size(); ++prefix) {
      Request decoded;
      const auto consumed = DecodeRequest(Bytes(wire), prefix, &decoded);
      ASSERT_TRUE(consumed.ok())
          << "prefix " << prefix << ": " << consumed.status();
      EXPECT_EQ(*consumed, 0u) << "prefix " << prefix;
    }
  }
}

// Exhaustive truncation over RESPONSE frames (the request side is covered
// above): a frame cut at every possible byte offset must read as
// "incomplete", never as a decoded frame and never as a crash — this is
// exactly what a short read or injected connection reset hands the client.
TEST(NetProtocolFuzzTest, EveryResponseTruncationIsIncomplete) {
  random::Rng rng(29);
  for (int trial = 0; trial < 25; ++trial) {
    Response response;
    response.verb = Verb::kPriceAt;
    response.request_id = rng.NextUint64();
    const size_t n = 1 + rng.NextBounded(12);
    for (size_t i = 0; i < n; ++i) {
      response.values.push_back(rng.NextDouble(0.0, 1e6));
    }
    std::string wire;
    EncodeResponse(response, &wire);
    for (size_t prefix = 0; prefix < wire.size(); ++prefix) {
      Response decoded;
      const auto consumed = DecodeResponse(Bytes(wire), prefix, &decoded);
      ASSERT_TRUE(consumed.ok())
          << "prefix " << prefix << ": " << consumed.status();
      EXPECT_EQ(*consumed, 0u) << "prefix " << prefix;
    }
  }
}

// Exhaustive single-BIT-flip fuzz over header + payload, both directions:
// stricter than the byte-level test because a lone flipped bit is the
// realistic link/memory corruption. Anything past the 4-byte length
// prefix is under the checksum, so a flip there MUST error (close the
// connection); a flip inside the length prefix may also read as
// "incomplete" while the decoder waits for bytes that never come. Either
// way a successful decode of corrupt bytes can never happen.
TEST(NetProtocolFuzzTest, SingleBitFlipNeverDecodes) {
  random::Rng rng(31);
  std::string request_wire;
  EncodeRequest(RandomRequest(rng), &request_wire);
  Response response;
  response.verb = Verb::kBudgetToX;
  response.request_id = rng.NextUint64();
  response.values = {1.0, 2.5, 1e6};
  std::string response_wire;
  EncodeResponse(response, &response_wire);

  for (size_t i = 0; i < request_wire.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = request_wire;
      corrupt[i] ^= static_cast<char>(1 << bit);
      Request decoded;
      const auto consumed =
          DecodeRequest(Bytes(corrupt), corrupt.size(), &decoded);
      EXPECT_FALSE(consumed.ok() && *consumed > 0)
          << "request byte " << i << " bit " << bit << " decoded";
      if (i >= 4) {  // under the checksum: must be a hard error
        EXPECT_FALSE(consumed.ok() && *consumed == 0)
            << "request byte " << i << " bit " << bit
            << " read as incomplete despite checksum coverage";
      }
    }
  }
  for (size_t i = 0; i < response_wire.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = response_wire;
      corrupt[i] ^= static_cast<char>(1 << bit);
      Response decoded;
      const auto consumed =
          DecodeResponse(Bytes(corrupt), corrupt.size(), &decoded);
      EXPECT_FALSE(consumed.ok() && *consumed > 0)
          << "response byte " << i << " bit " << bit << " decoded";
      if (i >= 4) {
        EXPECT_FALSE(consumed.ok() && *consumed == 0)
            << "response byte " << i << " bit " << bit
            << " read as incomplete despite checksum coverage";
      }
    }
  }
}

TEST(NetProtocolFuzzTest, SingleByteCorruptionNeverDecodes) {
  random::Rng rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    std::string wire;
    EncodeRequest(RandomRequest(rng), &wire);
    for (size_t i = 0; i < wire.size(); ++i) {
      std::string corrupt = wire;
      corrupt[i] ^= static_cast<char>(1 + rng.NextBounded(255));
      Request decoded;
      const auto consumed =
          DecodeRequest(Bytes(corrupt), corrupt.size(), &decoded);
      // A corrupted length prefix may legitimately read as "incomplete";
      // everything else must fail the checksum or validation. What can
      // never happen is a successful decode.
      EXPECT_FALSE(consumed.ok() && *consumed > 0)
          << "byte " << i << " corruption decoded successfully";
    }
  }
}

TEST(NetProtocolFuzzTest, RandomGarbageNeverDecodes) {
  random::Rng rng(19);
  for (int trial = 0; trial < 2000; ++trial) {
    const size_t size = rng.NextBounded(64);
    std::string garbage(size, '\0');
    for (size_t i = 0; i < size; ++i) {
      garbage[i] = static_cast<char>(rng.NextBounded(256));
    }
    Request decoded;
    const auto consumed = DecodeRequest(Bytes(garbage), size, &decoded);
    EXPECT_FALSE(consumed.ok() && *consumed > 0);
  }
}

TEST(NetProtocolFuzzTest, PipelinedFramesDecodeSequentially) {
  random::Rng rng(23);
  std::vector<Request> requests;
  std::string wire;
  for (int i = 0; i < 20; ++i) {
    requests.push_back(RandomRequest(rng));
    EncodeRequest(requests.back(), &wire);
  }
  size_t offset = 0;
  for (const Request& expected : requests) {
    Request decoded;
    const auto consumed =
        DecodeRequest(Bytes(wire) + offset, wire.size() - offset, &decoded);
    ASSERT_TRUE(consumed.ok());
    ASSERT_GT(*consumed, 0u);
    offset += *consumed;
    EXPECT_EQ(decoded.request_id, expected.request_id);
    EXPECT_EQ(decoded.curve_id, expected.curve_id);
    EXPECT_EQ(decoded.args, expected.args);
  }
  EXPECT_EQ(offset, wire.size());
}

TEST(NetProtocolFuzzTest, EmptyArgsOnVectorVerbRejected) {
  Request request;
  request.verb = Verb::kPriceAt;  // args deliberately empty
  std::string wire;
  EncodeRequest(request, &wire);
  Request decoded;
  const auto consumed = DecodeRequest(Bytes(wire), wire.size(), &decoded);
  EXPECT_FALSE(consumed.ok());
}

TEST(NetProtocolFuzzTest, OversizedCurveIdTruncatesTo255) {
  Request request;
  request.verb = Verb::kSnapshotInfo;
  request.curve_id.assign(1000, 'x');
  std::string wire;
  EncodeRequest(request, &wire);
  Request decoded;
  const auto consumed = DecodeRequest(Bytes(wire), wire.size(), &decoded);
  ASSERT_TRUE(consumed.ok());
  ASSERT_GT(*consumed, 0u);
  EXPECT_EQ(decoded.curve_id.size(), 255u);
}

TEST(NetProtocolFuzzTest, HeaderFieldValidation) {
  Request request;
  request.verb = Verb::kSnapshotInfo;
  request.curve_id = "curve";
  std::string wire;
  EncodeRequest(request, &wire);

  {  // Wrong protocol version (re-sealed, so the checksum passes).
    std::string bad = wire;
    bad[8] = 99;
    Reseal(&bad);
    Request decoded;
    EXPECT_FALSE(DecodeRequest(Bytes(bad), bad.size(), &decoded).ok());
  }
  {  // Unknown verb byte.
    std::string bad = wire;
    bad[9] = 77;
    Reseal(&bad);
    Request decoded;
    EXPECT_FALSE(DecodeRequest(Bytes(bad), bad.size(), &decoded).ok());
  }
  {  // Requests must carry an OK status byte.
    std::string bad = wire;
    bad[10] = 2;
    Reseal(&bad);
    Request decoded;
    EXPECT_FALSE(DecodeRequest(Bytes(bad), bad.size(), &decoded).ok());
  }
  {  // Reserved byte must be zero.
    std::string bad = wire;
    bad[11] = 1;
    Reseal(&bad);
    Request decoded;
    EXPECT_FALSE(DecodeRequest(Bytes(bad), bad.size(), &decoded).ok());
  }
  {  // Trailing payload byte: lengthen the frame and re-seal. The frame
     // is internally consistent, so only payload-structure validation
     // can catch it.
    std::string bad = wire;
    bad.push_back('\0');
    uint32_t frame_len = 0;
    std::memcpy(&frame_len, bad.data(), 4);
    ++frame_len;
    std::memcpy(bad.data(), &frame_len, 4);
    Reseal(&bad);
    Request decoded;
    EXPECT_FALSE(DecodeRequest(Bytes(bad), bad.size(), &decoded).ok());
  }
  {  // Absurd length prefix fails fast instead of waiting for 2 GiB.
    std::string bad = wire;
    const uint32_t huge = 1u << 30;
    std::memcpy(bad.data(), &huge, 4);
    Request decoded;
    EXPECT_FALSE(DecodeRequest(Bytes(bad), bad.size(), &decoded).ok());
  }
}

}  // namespace
}  // namespace mbp::net

// Loopback integration tests for the networked price-serving front end:
// a real PriceServer on an ephemeral port, real TCP clients, and the
// lock-free serving stack underneath. The acceptance oracle mirrors
// serving_stress_test.cc — every remotely served price must bit-match a
// published variant, even while a seller republishes mid-stream. Suite
// names match scripts/tsan.sh's Net filter.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/pricing_function.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "random/rng.h"
#include "serving/price_query_engine.h"
#include "serving/snapshot_registry.h"

namespace mbp::net {
namespace {

using core::PiecewiseLinearPricing;
using serving::PriceQueryEngine;
using serving::SnapshotRegistry;

// Same arbitrage-free family as serving_stress_test.cc: variant k scales
// a fixed shape by (k + 1), so exact expected prices are precomputable.
PiecewiseLinearPricing MakeVariant(size_t k) {
  const double s = static_cast<double>(k + 1);
  return PiecewiseLinearPricing::Create({{1.0, 10.0 * s},
                                         {2.0, 18.0 * s},
                                         {4.0, 30.0 * s},
                                         {8.0, 40.0 * s}})
      .value();
}

// Blocking raw-socket connect for tests that need to write arbitrary
// (including corrupt) bytes below the PriceClient abstraction.
int RawConnect(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    close(fd);
    return -1;
  }
  return fd;
}

class NetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto published = registry_.Publish("pricing", MakeVariant(0));
    ASSERT_TRUE(published.ok());
    slot_ = *published;
    engine_ = std::make_unique<PriceQueryEngine>(&registry_);
    ServerOptions options;
    options.num_shards = 2;
    options.default_curve_id = "pricing";
    auto server = PriceServer::Start(engine_.get(), options);
    ASSERT_TRUE(server.ok()) << server.status();
    server_ = std::move(*server);
    ASSERT_GT(server_->port(), 0) << "ephemeral port was not resolved";
  }

  std::unique_ptr<PriceClient> Connect() {
    auto client = PriceClient::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status();
    return client.ok() ? std::move(*client) : nullptr;
  }

  SnapshotRegistry registry_;
  const SnapshotRegistry::CurveSlot* slot_ = nullptr;
  std::unique_ptr<PriceQueryEngine> engine_;
  std::unique_ptr<PriceServer> server_;
};

TEST_F(NetServerTest, PriceAtMatchesEngineBitForBit) {
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  for (const double x : {0.5, 1.0, 1.7, 3.0, 4.0, 6.5, 8.0, 12.0}) {
    const auto remote = client->PriceAt("pricing", x);
    ASSERT_TRUE(remote.ok()) << remote.status();
    const auto local = engine_->Price(slot_, x);
    ASSERT_TRUE(local.ok());
    EXPECT_EQ(*remote, *local) << "x = " << x;  // exact, not approximate
  }
}

TEST_F(NetServerTest, PriceBatchMatchesEngineBitForBit) {
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  std::vector<double> xs;
  for (size_t i = 0; i < 256; ++i) {
    xs.push_back(10.0 * static_cast<double>(i + 1) / 256.0);
  }
  const auto remote = client->PriceBatch("pricing", xs);
  ASSERT_TRUE(remote.ok()) << remote.status();
  std::vector<double> local(xs.size());
  ASSERT_TRUE(engine_
                  ->PriceBatch(slot_, xs.data(), local.data(), xs.size(),
                               ParallelConfig{})
                  .ok());
  EXPECT_EQ(*remote, local);
}

TEST_F(NetServerTest, BudgetToXMatchesEngine) {
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  for (const double budget : {5.0, 15.0, 25.0, 39.0, 40.0}) {
    const auto remote = client->BudgetToX("pricing", budget);
    ASSERT_TRUE(remote.ok()) << remote.status();
    const auto local = engine_->BudgetToInverseNcp(slot_, budget);
    ASSERT_TRUE(local.ok());
    EXPECT_EQ(*remote, *local) << "budget = " << budget;
  }
}

TEST_F(NetServerTest, EmptyCurveIdSelectsServerDefault) {
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  const auto remote = client->PriceAt("", 3.0);
  ASSERT_TRUE(remote.ok()) << remote.status();
  EXPECT_EQ(*remote, engine_->Price(slot_, 3.0).value());
}

TEST_F(NetServerTest, SnapshotInfoReflectsPublishedCurve) {
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  const auto info = client->SnapshotInfo("pricing");
  ASSERT_TRUE(info.ok()) << info.status();
  const auto snapshot = slot_->Load();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(info->version, snapshot->version());
  EXPECT_EQ(info->stamp, slot_->stamp());
  EXPECT_EQ(info->num_knots, snapshot->num_knots());
  EXPECT_EQ(info->x_max, snapshot->x_max());
  EXPECT_EQ(info->max_price, snapshot->max_price());
}

TEST_F(NetServerTest, UnknownCurveIsNotFoundAndConnectionSurvives) {
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  const auto missing = client->PriceAt("no-such-curve", 1.0);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  // An application-level error must not poison the connection.
  const auto good = client->PriceAt("pricing", 2.0);
  ASSERT_TRUE(good.ok()) << good.status();
  EXPECT_EQ(*good, engine_->Price(slot_, 2.0).value());
}

TEST_F(NetServerTest, EmbeddedNulCurveIdsAreServedExactly) {
  // Curve ids are length-prefixed bytes on the wire, never C strings:
  // embedded NULs must resolve to the right listing, and near-miss ids
  // (same prefix, different NUL tail) must stay NotFound.
  const std::string with_nul("menu\0gold", 9);
  const std::string near_miss("menu\0silver", 11);
  ASSERT_TRUE(registry_.Publish(with_nul, MakeVariant(4)).ok());
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  const auto priced = client->PriceAt(with_nul, 2.0);
  ASSERT_TRUE(priced.ok()) << priced.status();
  EXPECT_EQ(*priced, MakeVariant(4).PriceAtInverseNcp(2.0));
  const auto missing = client->PriceAt(near_miss, 2.0);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  const auto prefix = client->PriceAt("menu", 2.0);
  ASSERT_FALSE(prefix.ok());
  EXPECT_EQ(prefix.status().code(), StatusCode::kNotFound);
}

TEST_F(NetServerTest, MaxLengthCurveIdsRoundTripAndLongerOnesTruncate) {
  // 255 bytes is the wire cap. A longer id is truncated to its 255-byte
  // prefix by the encoder (documented protocol behavior) — pin both
  // sides of the boundary.
  std::string max_id(255, 'm');
  max_id[254] = 'z';
  ASSERT_TRUE(registry_.Publish(max_id, MakeVariant(5)).ok());
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  const auto priced = client->PriceAt(max_id, 3.0);
  ASSERT_TRUE(priced.ok()) << priced.status();
  EXPECT_EQ(*priced, MakeVariant(5).PriceAtInverseNcp(3.0));
  // An over-long id is served as its truncated prefix (here: max_id).
  const std::string overlong = max_id + "-tail";
  const auto truncated = client->PriceAt(overlong, 3.0);
  ASSERT_TRUE(truncated.ok()) << truncated.status();
  EXPECT_EQ(*truncated, *priced);
  // A shorter distinct id misses.
  const auto shorter = client->PriceAt(max_id.substr(0, 254), 3.0);
  ASSERT_FALSE(shorter.ok());
  EXPECT_EQ(shorter.status().code(), StatusCode::kNotFound);
}

TEST_F(NetServerTest, WithdrawnCurveIsNotFoundUntilRepublished) {
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(registry_.Withdraw("pricing").ok());
  const auto gone = client->PriceAt("pricing", 1.0);
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(registry_.Publish("pricing", MakeVariant(1)).ok());
  const auto back = client->PriceAt("pricing", 1.0);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, engine_->Price(slot_, 1.0).value());
}

TEST_F(NetServerTest, StatsVerbCountsTraffic) {
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->PriceAt("pricing", 1.0).ok());
  ASSERT_TRUE(client->PriceBatch("pricing", {1.0, 2.0, 3.0}).ok());
  const auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GE(stats->connections_accepted, 1u);
  EXPECT_GE(stats->connections_active, 1u);
  EXPECT_GE(stats->requests_ok, 2u);
  EXPECT_GE(stats->queries, 4u);   // 1 + 3 individual prices
  EXPECT_GE(stats->batches, 1u);
  EXPECT_GE(stats->latency.count, 2u);
  // The remote payload matches the in-process accessor's shape.
  const StatsPayload local = server_->stats();
  EXPECT_GE(local.requests_ok, stats->requests_ok);
}

TEST_F(NetServerTest, PipelinedRequestsAllAnswered) {
  const int fd = RawConnect(server_->port());
  ASSERT_GE(fd, 0);
  constexpr uint64_t kRequests = 50;
  std::string wire;
  for (uint64_t id = 1; id <= kRequests; ++id) {
    Request request;
    request.verb = Verb::kPriceAt;
    request.request_id = id;
    request.curve_id = "pricing";
    request.args = {static_cast<double>(id) * 0.2};
    EncodeRequest(request, &wire);
  }
  // One burst: the server's event loop will decode many frames in one
  // pass and micro-batch them into a single PriceBatch call.
  ASSERT_EQ(send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  std::map<uint64_t, double> answers;
  std::string rx;
  char buf[65536];
  while (answers.size() < kRequests) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "server closed before answering everything";
    rx.append(buf, static_cast<size_t>(n));
    while (true) {
      Response response;
      const auto consumed = DecodeResponse(
          reinterpret_cast<const uint8_t*>(rx.data()), rx.size(), &response);
      ASSERT_TRUE(consumed.ok()) << consumed.status();
      if (*consumed == 0) break;
      rx.erase(0, *consumed);
      ASSERT_EQ(response.code, StatusCode::kOk);
      ASSERT_EQ(response.values.size(), 1u);
      answers[response.request_id] = response.values[0];
    }
  }
  close(fd);
  for (uint64_t id = 1; id <= kRequests; ++id) {
    ASSERT_TRUE(answers.count(id)) << "request " << id << " unanswered";
    EXPECT_EQ(answers[id],
              engine_->Price(slot_, static_cast<double>(id) * 0.2).value());
  }
}

TEST_F(NetServerTest, CorruptFrameClosesConnection) {
  const int fd = RawConnect(server_->port());
  ASSERT_GE(fd, 0);
  // 0xFF... reads as an absurd length prefix -> unrecoverable corruption.
  const std::string garbage(64, '\xff');
  ASSERT_EQ(send(fd, garbage.data(), garbage.size(), 0),
            static_cast<ssize_t>(garbage.size()));
  char buf[256];
  ssize_t n;
  do {
    n = recv(fd, buf, sizeof(buf), 0);
  } while (n > 0);
  EXPECT_EQ(n, 0) << "server should close a corrupt connection";
  close(fd);
  // The error is visible in the metrics.
  EXPECT_GE(server_->stats().protocol_errors, 1u);
}

// Regression test: a dead connection's fd must stay allocated until its
// map entry is swept at the end of the event-loop pass. Before that fix,
// a disconnect and a fresh accept landing in the same epoll pass could
// hand the new socket the just-closed fd number; the collision with the
// dead map entry stranded the new connection (open, epoll-registered,
// unowned), its queries were never answered, and the level-triggered
// loop spun forever. Churn close-then-connect as fast as possible so the
// two events race into one server pass, and require every fresh
// connection to be served within a bounded time.
TEST_F(NetServerTest, ConnectionChurnNeverStrandsFreshConnections) {
  const auto expected = engine_->Price(slot_, 3.0);
  ASSERT_TRUE(expected.ok());
  int fd = -1;
  for (int i = 0; i < 200; ++i) {
    if (fd >= 0) close(fd);  // races the next accept into the same pass
    fd = RawConnect(server_->port());
    ASSERT_GE(fd, 0);
    timeval timeout{};
    timeout.tv_sec = 5;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    Request request;
    request.verb = Verb::kPriceAt;
    request.request_id = static_cast<uint64_t>(i) + 1;
    request.curve_id = "pricing";
    request.args = {3.0};
    std::string wire;
    EncodeRequest(request, &wire);
    ASSERT_EQ(send(fd, wire.data(), wire.size(), 0),
              static_cast<ssize_t>(wire.size()));
    std::string rx;
    Response response;
    bool complete = false;
    while (!complete) {
      char buf[4096];
      const ssize_t n = recv(fd, buf, sizeof(buf), 0);
      ASSERT_GT(n, 0) << "churn iteration " << i
                      << ": connection stranded, no response within 5s";
      rx.append(buf, static_cast<size_t>(n));
      const auto consumed = DecodeResponse(
          reinterpret_cast<const uint8_t*>(rx.data()), rx.size(), &response);
      ASSERT_TRUE(consumed.ok()) << consumed.status();
      complete = *consumed > 0;
    }
    EXPECT_EQ(response.request_id, request.request_id);
    ASSERT_EQ(response.values.size(), 1u);
    EXPECT_EQ(response.values[0], *expected);
  }
  if (fd >= 0) close(fd);
}

TEST_F(NetServerTest, ShutdownIsIdempotentAndRefusesNewWork) {
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->PriceAt("pricing", 1.0).ok());
  server_->Shutdown();
  server_->Shutdown();  // second call is a no-op
  const auto after = client->PriceAt("pricing", 1.0);
  EXPECT_FALSE(after.ok());
  EXPECT_FALSE(PriceClient::Connect("127.0.0.1", server_->port()).ok());
}

// Acceptance test: >= 4 concurrent clients against >= 2 shards while a
// seller republishes mid-stream. Every remote batch must bit-match
// exactly ONE published variant (the engine's one-snapshot-per-batch
// guarantee, now observed across a socket), and after the dust settles
// remote answers are bit-identical to direct PriceQueryEngine calls.
TEST(NetStressTest, ConcurrentClientsBitIdenticalUnderRepublish) {
  constexpr size_t kVariants = 4;
  constexpr size_t kPublishes = 200;
  constexpr size_t kClients = 4;
  constexpr size_t kQueryPoints = 32;

  std::vector<double> xs(kQueryPoints);
  for (size_t i = 0; i < kQueryPoints; ++i) {
    xs[i] =
        10.0 * static_cast<double>(i + 1) / static_cast<double>(kQueryPoints);
  }
  std::vector<PiecewiseLinearPricing> variants;
  std::vector<std::vector<double>> expected(kVariants);
  for (size_t k = 0; k < kVariants; ++k) {
    variants.push_back(MakeVariant(k));
    expected[k].resize(kQueryPoints);
    for (size_t i = 0; i < kQueryPoints; ++i) {
      expected[k][i] = variants[k].PriceAtInverseNcp(xs[i]);
    }
  }

  SnapshotRegistry registry;
  ASSERT_TRUE(registry.Publish("stress", variants[0]).ok());
  PriceQueryEngine engine(&registry);
  ServerOptions options;
  options.num_shards = 2;
  auto server = PriceServer::Start(&engine, options);
  ASSERT_TRUE(server.ok()) << server.status();
  const uint16_t port = (*server)->port();

  std::atomic<bool> done{false};
  std::atomic<size_t> failures{0};
  std::atomic<size_t> batches_served{0};

  std::thread writer([&] {
    for (size_t p = 1; p <= kPublishes; ++p) {
      if (!registry.Publish("stress", variants[p % kVariants]).ok()) {
        failures.fetch_add(1);
      }
      std::this_thread::yield();
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = PriceClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      random::Rng rng(900 + c);
      while (!done.load(std::memory_order_acquire)) {
        // Point query: must be SOME variant's exact price.
        const size_t i = static_cast<size_t>(rng.NextBounded(kQueryPoints));
        const auto price = (*client)->PriceAt("stress", xs[i]);
        if (!price.ok()) {
          failures.fetch_add(1);
          continue;
        }
        bool matched = false;
        for (size_t k = 0; k < kVariants; ++k) {
          matched = matched || *price == expected[k][i];
        }
        if (!matched) failures.fetch_add(1);

        // Batch query: the whole batch from ONE variant, never a mix.
        const auto batch = (*client)->PriceBatch("stress", xs);
        if (!batch.ok()) {
          failures.fetch_add(1);
          continue;
        }
        size_t variant = kVariants;
        for (size_t k = 0; k < kVariants; ++k) {
          if ((*batch)[0] == expected[k][0]) {
            variant = k;
            break;
          }
        }
        if (variant == kVariants || *batch != expected[variant]) {
          failures.fetch_add(1);
        }
        batches_served.fetch_add(1);
      }
    });
  }

  writer.join();
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(batches_served.load(), 0u);

  // Quiescent: remote and direct answers are bit-identical.
  auto client = PriceClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  const SnapshotRegistry::CurveSlot* slot = registry.Find("stress");
  ASSERT_NE(slot, nullptr);
  for (size_t i = 0; i < kQueryPoints; ++i) {
    const auto remote = (*client)->PriceAt("stress", xs[i]);
    ASSERT_TRUE(remote.ok());
    EXPECT_EQ(*remote, engine.Price(slot, xs[i]).value());
  }
  const StatsPayload stats = (*server)->stats();
  EXPECT_GE(stats.connections_accepted, kClients);
  EXPECT_EQ(stats.protocol_errors, 0u);
  (*server)->Shutdown();
}

}  // namespace
}  // namespace mbp::net

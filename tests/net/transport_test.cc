// Transport-seam tests (DESIGN.md §5h): the same PriceServer loop over
// epoll, io_uring, and the shared-memory ring must be observationally
// identical — bit-identical prices, identical framing semantics under
// arbitrary byte-boundary splits, and a clean runtime downgrade when
// io_uring is unavailable. Suites carry the ctest label "transport"
// (registered in tests/CMakeLists.txt); io_uring cases GTEST_SKIP on
// kernels where UringAvailable() is false, so the whole file passes on
// any host.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "core/pricing_function.h"
#include "net/client.h"
#include "net/cluster.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/shm_ring.h"
#include "net/transport.h"
#include "serving/fulfillment.h"
#include "serving/price_query_engine.h"
#include "serving/snapshot_registry.h"

namespace mbp::net {
namespace {

using core::PiecewiseLinearPricing;
using serving::PriceQueryEngine;
using serving::SnapshotRegistry;

PiecewiseLinearPricing MakeCurve() {
  return PiecewiseLinearPricing::Create(
             {{1.0, 10.0}, {2.0, 18.0}, {4.0, 30.0}, {8.0, 40.0}})
      .value();
}

std::string UniqueShmPath() {
  static std::atomic<int> counter{0};
  return "/tmp/mbp_transport_test_" + std::to_string(getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".shm";
}

// ---------------------------------------------------------------------
// Raw byte-level connections, one per transport family, so tests can
// split frames at arbitrary boundaries below the PriceClient layer.

class RawConn {
 public:
  virtual ~RawConn() = default;
  virtual bool Send(const uint8_t* data, size_t n) = 0;
  // Blocks until at least one byte arrives; false on EOF/error.
  virtual bool RecvSome(std::string* rx) = 0;
};

class RawTcpConn final : public RawConn {
 public:
  explicit RawTcpConn(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
      close(fd_);
      fd_ = -1;
    }
  }
  ~RawTcpConn() override {
    if (fd_ >= 0) close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  bool Send(const uint8_t* data, size_t n) override {
    size_t off = 0;
    while (off < n) {
      const ssize_t w = write(fd_, data + off, n - off);
      if (w <= 0) {
        if (w < 0 && errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(w);
    }
    return true;
  }

  bool RecvSome(std::string* rx) override {
    char buf[4096];
    while (true) {
      const ssize_t n = read(fd_, buf, sizeof(buf));
      if (n > 0) {
        rx->append(buf, static_cast<size_t>(n));
        return true;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
  }

 private:
  int fd_ = -1;
};

// A hand-rolled shm client speaking the slot protocol from shm_ring.h —
// deliberately NOT the production ShmChannel, so the test exercises the
// wire contract itself.
class RawShmConn final : public RawConn {
 public:
  explicit RawShmConn(const std::string& path) {
    using namespace shm_internal;  // NOLINT: protocol constants
    auto segment = ShmSegment::Open(path);
    if (!segment.ok()) return;
    segment_ = std::move(*segment);
    const size_t slots = segment_->num_slots();
    for (size_t i = 0; i < slots; ++i) {
      uint32_t expected = kSlotFree;
      if (segment_->slot(i)->state.compare_exchange_strong(
              expected, kSlotClaimed, std::memory_order_acq_rel,
              std::memory_order_relaxed)) {
        slot_ = i;
        break;
      }
    }
    if (slot_ == kNoSlot) return;
    SlotHeader* slot = segment_->slot(slot_);
    token_ = (static_cast<uint64_t>(getpid()) << 20) ^ (slot_ + 1);
    slot->token.store(token_, std::memory_order_release);
    slot->state.store(kSlotHello, std::memory_order_release);
    segment_->RingDoorbell(nullptr, nullptr);
    for (int i = 0; i < 20000; ++i) {  // <= ~2s of 100us polls
      if (slot->state.load(std::memory_order_acquire) == kSlotActive) {
        active_ = true;
        return;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }

  ~RawShmConn() override {
    using namespace shm_internal;  // NOLINT: protocol constants
    if (segment_ != nullptr && slot_ != kNoSlot) {
      segment_->slot(slot_)->state.store(kSlotClientClosed,
                                         std::memory_order_release);
      segment_->RingDoorbell(nullptr, nullptr);
    }
  }

  bool ok() const { return active_; }

  bool Send(const uint8_t* data, size_t n) override {
    shm_internal::RingView ring = segment_->c2s(slot_);
    size_t off = 0;
    while (off < n) {
      const size_t w = ring.Write(data + off, n - off, nullptr, nullptr);
      if (w > 0) {
        off += w;
        segment_->RingDoorbell(nullptr, nullptr);
        continue;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    return true;
  }

  bool RecvSome(std::string* rx) override {
    shm_internal::RingView ring = segment_->s2c(slot_);
    uint8_t buf[4096];
    for (int i = 0; i < 40000; ++i) {  // <= ~2s
      const size_t n = ring.Read(buf, sizeof(buf), nullptr, nullptr);
      if (n > 0) {
        rx->append(reinterpret_cast<const char*>(buf), n);
        segment_->RingDoorbell(nullptr, nullptr);
        return true;
      }
      if (segment_->slot(slot_)->state.load(std::memory_order_acquire) !=
          shm_internal::kSlotActive) {
        return false;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    return false;
  }

 private:
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);
  std::unique_ptr<ShmSegment> segment_;
  size_t slot_ = kNoSlot;
  uint64_t token_ = 0;
  bool active_ = false;
};

// ---------------------------------------------------------------------
// Parameterized loopback fixture: one server per transport regime.

class TransportLoopbackTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    const std::string regime = GetParam();
    if (regime == "uring" && !UringAvailable()) {
      GTEST_SKIP() << "io_uring unavailable on this kernel";
    }
    auto published = registry_.Publish("pricing", MakeCurve());
    ASSERT_TRUE(published.ok());
    slot_ = *published;
    engine_ = std::make_unique<PriceQueryEngine>(&registry_);
    fulfillment_ =
        std::make_unique<serving::FulfillmentEngine>(&registry_);
    ServerOptions options;
    options.num_shards = 2;
    options.default_curve_id = "pricing";
    options.fulfillment = fulfillment_.get();
    if (regime == "uring") options.transport = TransportKind::kUring;
    if (regime == "shm") {
      shm_path_ = UniqueShmPath();
      options.shm_path = shm_path_;
    }
    auto server = PriceServer::Start(engine_.get(), options);
    ASSERT_TRUE(server.ok()) << server.status();
    server_ = std::move(*server);
  }

  std::unique_ptr<PriceClient> Connect() {
    auto client =
        shm_path_.empty()
            ? PriceClient::Connect("127.0.0.1", server_->port())
            : PriceClient::Connect("shm://" + shm_path_, 0);
    EXPECT_TRUE(client.ok()) << client.status();
    return client.ok() ? std::move(*client) : nullptr;
  }

  std::unique_ptr<RawConn> RawConnect() {
    if (shm_path_.empty()) {
      auto conn = std::make_unique<RawTcpConn>(server_->port());
      EXPECT_TRUE(conn->ok());
      return conn;
    }
    auto conn = std::make_unique<RawShmConn>(shm_path_);
    EXPECT_TRUE(conn->ok());
    return conn;
  }

  SnapshotRegistry registry_;
  const SnapshotRegistry::CurveSlot* slot_ = nullptr;
  std::unique_ptr<PriceQueryEngine> engine_;
  std::unique_ptr<serving::FulfillmentEngine> fulfillment_;
  std::unique_ptr<PriceServer> server_;
  std::string shm_path_;
};

TEST_P(TransportLoopbackTest, PriceAtBitIdenticalToEngine) {
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  for (int i = 0; i < 64; ++i) {
    const double x = 10.0 * static_cast<double>(i + 1) / 64.0;
    const auto remote = client->PriceAt("pricing", x);
    ASSERT_TRUE(remote.ok()) << remote.status();
    const auto local = engine_->Price(slot_, x);
    ASSERT_TRUE(local.ok());
    EXPECT_EQ(*remote, *local) << "x = " << x;  // exact, not approximate
  }
}

TEST_P(TransportLoopbackTest, PriceBatchBitIdenticalToEngine) {
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  std::vector<double> xs;
  for (size_t i = 0; i < 256; ++i) {
    xs.push_back(10.0 * static_cast<double>(i + 1) / 256.0);
  }
  const auto remote = client->PriceBatch("pricing", xs);
  ASSERT_TRUE(remote.ok()) << remote.status();
  std::vector<double> local(xs.size());
  ASSERT_TRUE(engine_
                  ->PriceBatch(slot_, xs.data(), local.data(), xs.size(),
                               ParallelConfig{})
                  .ok());
  EXPECT_EQ(*remote, local);
}

// The cross-pass carry invariant: a frame split at EVERY byte boundary —
// the two halves delivered with a pause between them, so the server sees
// them in separate passes — decodes to the identical answer.
TEST_P(TransportLoopbackTest, PartialFrameCarryAtEveryByteBoundary) {
  Request request;
  request.verb = Verb::kPriceAt;
  request.curve_id = "pricing";
  request.args = {3.5};
  request.request_id = 777;
  std::string wire;
  EncodeRequest(request, &wire);
  const auto expected = engine_->Price(slot_, 3.5);
  ASSERT_TRUE(expected.ok());

  auto conn = RawConnect();
  ASSERT_NE(conn, nullptr);
  const auto* bytes = reinterpret_cast<const uint8_t*>(wire.data());
  std::string rx;
  for (size_t split = 1; split < wire.size(); ++split) {
    ASSERT_TRUE(conn->Send(bytes, split)) << "split " << split;
    // Let the prefix land in its own pass before sending the rest.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_TRUE(conn->Send(bytes + split, wire.size() - split))
        << "split " << split;
    Response response;
    while (true) {
      const auto consumed = DecodeResponse(
          reinterpret_cast<const uint8_t*>(rx.data()), rx.size(), &response);
      ASSERT_TRUE(consumed.ok()) << consumed.status();
      if (*consumed > 0) {
        rx.erase(0, *consumed);
        break;
      }
      ASSERT_TRUE(conn->RecvSome(&rx)) << "split " << split;
    }
    ASSERT_EQ(response.request_id, request.request_id);
    ASSERT_EQ(response.code, StatusCode::kOk);
    ASSERT_EQ(response.values.size(), 1u);
    EXPECT_EQ(response.values[0], *expected) << "split " << split;
  }
}

TEST_P(TransportLoopbackTest, StatsExposePerTransportCounters) {
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  const std::string regime = GetParam();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client->PriceAt("pricing", 2.5).ok());
    if (regime == "shm") {
      // Give the serving shard time to park on the doorbell futex so the
      // next request's wake is observable in the counter.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  const auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GT(stats->transport_syscalls, 0u);
  if (regime == "uring") {
    EXPECT_GT(stats->uring_sqe_submitted, 0u);
    EXPECT_EQ(stats->transport_fallbacks, 0u);
  }
  if (regime == "epoll") {
    EXPECT_EQ(stats->uring_sqe_submitted, 0u);
    EXPECT_EQ(stats->transport_fallbacks, 0u);
  }
  if (regime == "shm") {
    EXPECT_GT(stats->shm_doorbell_wakes, 0u);
  }
}

// BUY/QUOTE/REPLAY over every transport (DESIGN.md §5i): the noised model
// delivered across the wire is bit-identical to an in-process
// FulfillmentEngine sharing the epoch seed (which fulfillment_test.cc in
// turn pins bit-identically to the core::Broker transaction), the quote
// token locks the price, a retried txn id is idempotent, and REPLAY
// re-delivers the recorded bytes exactly.
TEST_P(TransportLoopbackTest, BuyDeliversBitIdenticalSaleOnEveryTransport) {
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  const double delta = 0.5;
  const uint64_t txn = 0xABCDEF01;

  auto quote = client->Quote("pricing", delta);
  ASSERT_TRUE(quote.ok()) << quote.status();
  auto remote = client->Buy("pricing", delta, txn, quote->token);
  ASSERT_TRUE(remote.ok()) << remote.status();
  EXPECT_EQ(remote->record.txn_id, txn);
  EXPECT_EQ(std::bit_cast<uint64_t>(remote->record.price),
            std::bit_cast<uint64_t>(quote->price));

  // An independent engine with the same (default) options is the local
  // oracle: same curve, same δ, same txn id → identical sale bytes.
  serving::FulfillmentEngine local(&registry_);
  auto oracle = local.Buy("pricing", delta, txn);
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  EXPECT_EQ(remote->record.curve_ref, oracle->record.curve_ref);
  EXPECT_EQ(remote->record.seed_commitment, oracle->record.seed_commitment);
  ASSERT_EQ(remote->weights.size(), oracle->weights.size());
  EXPECT_EQ(0, std::memcmp(remote->weights.data(), oracle->weights.data(),
                           oracle->weights.size() * sizeof(double)))
      << "wire-delivered weights must be bit-identical to the local sale";

  // Idempotent retry: same txn id, same bytes, charged once.
  auto retry = client->Buy("pricing", delta, txn);
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_EQ(retry->weights, remote->weights);

  // REPLAY re-delivers the recorded sale.
  auto replay = client->Replay(txn);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay->record.seed_commitment, remote->record.seed_commitment);
  EXPECT_EQ(replay->weights, remote->weights);

  const auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->buys_ok, 1u) << "retry and replay must not re-charge";
  EXPECT_EQ(std::bit_cast<uint64_t>(stats->revenue),
            std::bit_cast<uint64_t>(remote->record.price));
  EXPECT_EQ(stats->transactions_recorded, 1u);
  EXPECT_GE(stats->requests_by_verb[static_cast<uint8_t>(Verb::kBuy)], 2u);
  EXPECT_GE(stats->requests_by_verb[static_cast<uint8_t>(Verb::kReplay)],
            1u);
  EXPECT_GE(stats->requests_by_verb[static_cast<uint8_t>(Verb::kQuote)], 1u);
}

// Large-frame framing parity: response frames from ~1 KB to the 1 MB
// frame cap, crossing every socket/ring buffer boundary, with short-IO
// fault points armed so the server's sends and the client's receives are
// forcibly fragmented. Every frame must reassemble to the bit-exact
// engine answer on every transport.
TEST_P(TransportLoopbackTest, LargeFramesReassembleAcrossBufferBoundaries) {
  if (fault::kBuildEnabled) {
    // Fragment both directions aggressively; schedules are per-call
    // probabilistic, so some sends still go through whole — the sizes
    // below cross buffer boundaries regardless.
    fault::FaultInjector& inj = fault::FaultInjector::Global();
    inj.Reset();
    inj.Seed(0xB16FA43Eull);
    fault::PointSchedule shortio;
    shortio.probability = 0.5;
    inj.Arm("net.send.short", shortio);
    inj.Arm("net.recv.short", shortio);
    inj.Arm("net.uring.send.short", shortio);
    inj.Arm("net.uring.recv.short", shortio);
    inj.Arm("net.shm.write.short", shortio);
    inj.Arm("net.shm.read.short", shortio);
  }
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  // Batch counts whose response frames span ~1 KB up to the exact frame
  // cap: 1048576 = 20 header + 4 count + 8 * kMaxVectorElements + slack.
  const size_t kCounts[] = {121, 1000, 8000, 32768, kMaxVectorElements};
  for (const size_t count : kCounts) {
    std::vector<double> xs(count);
    for (size_t i = 0; i < count; ++i) {
      xs[i] = 10.0 * static_cast<double>(i % 4093 + 1) / 4093.0;
    }
    const auto remote = client->PriceBatch("pricing", xs);
    ASSERT_TRUE(remote.ok()) << "count " << count << ": " << remote.status();
    ASSERT_EQ(remote->size(), count);
    std::vector<double> local(count);
    ASSERT_TRUE(engine_
                    ->PriceBatch(slot_, xs.data(), local.data(), count,
                                 ParallelConfig{})
                    .ok());
    EXPECT_EQ(*remote, local) << "count " << count;
  }
  if (fault::kBuildEnabled) fault::FaultInjector::Global().Reset();
}

INSTANTIATE_TEST_SUITE_P(Transports, TransportLoopbackTest,
                         ::testing::Values("epoll", "uring", "shm"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// ---------------------------------------------------------------------
// Runtime downgrade: a server asked for uring on a host where the probe
// fails must serve on epoll and count the fallback. MBP_FORCE_NO_URING
// feeds the probe, but its result is cached per process — so the env-set
// case runs in a child process re-exec'd from this binary.

TEST(TransportFallback, UringRequestFallsBackToEpoll) {
  const char* forced = std::getenv("MBP_FORCE_NO_URING");
  if (forced == nullptr || forced[0] != '1') {
    // Resolve the symlink here: handing the literal /proc/self/exe to
    // system() would make the SHELL re-exec itself.
    char self[4096];
    const ssize_t n = readlink("/proc/self/exe", self, sizeof(self) - 1);
    ASSERT_GT(n, 0);
    self[n] = '\0';
    const std::string cmd =
        std::string("MBP_FORCE_NO_URING=1 '") + self +
        "' --gtest_filter=TransportFallback.UringRequestFallsBackToEpoll "
        ">/dev/null 2>&1";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
    return;
  }
  ASSERT_FALSE(UringAvailable());
  SnapshotRegistry registry;
  ASSERT_TRUE(registry.Publish("pricing", MakeCurve()).ok());
  PriceQueryEngine engine(&registry);
  ServerOptions options;
  options.num_shards = 1;
  options.default_curve_id = "pricing";
  options.transport = TransportKind::kUring;
  auto server = PriceServer::Start(&engine, options);
  ASSERT_TRUE(server.ok()) << server.status();
  auto client = PriceClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok()) << client.status();
  ASSERT_TRUE((*client)->PriceAt("pricing", 2.0).ok());
  const StatsPayload stats = (*server)->stats();
  EXPECT_GE(stats.transport_fallbacks, 1u);
  EXPECT_EQ(stats.uring_sqe_submitted, 0u);
}

TEST(TransportKindTest, NamesRoundTrip) {
  TransportKind kind;
  EXPECT_TRUE(ParseTransportKind("epoll", &kind));
  EXPECT_EQ(kind, TransportKind::kEpoll);
  EXPECT_TRUE(ParseTransportKind("uring", &kind));
  EXPECT_EQ(kind, TransportKind::kUring);
  EXPECT_TRUE(ParseTransportKind("io_uring", &kind));
  EXPECT_EQ(kind, TransportKind::kUring);
  EXPECT_TRUE(ParseTransportKind("shm", &kind));
  EXPECT_EQ(kind, TransportKind::kShm);
  EXPECT_FALSE(ParseTransportKind("carrier-pigeon", &kind));
  EXPECT_STREQ(TransportKindName(TransportKind::kEpoll), "epoll");
  EXPECT_STREQ(TransportKindName(TransportKind::kUring), "uring");
  EXPECT_STREQ(TransportKindName(TransportKind::kShm), "shm");
}

TEST(ClusterEndpointTest, ParsesShmEndpoints) {
  const auto endpoints = ParseEndpoints("shm:///tmp/a.shm,127.0.0.1:7001");
  ASSERT_TRUE(endpoints.ok()) << endpoints.status();
  ASSERT_EQ(endpoints->size(), 2u);
  EXPECT_EQ((*endpoints)[0].host, "shm:///tmp/a.shm");
  EXPECT_EQ((*endpoints)[0].port, 0);
  EXPECT_EQ((*endpoints)[1].host, "127.0.0.1");
  EXPECT_EQ((*endpoints)[1].port, 7001);
  EXPECT_FALSE(ParseEndpoints("shm://").ok());
  EXPECT_FALSE(ParseEndpoints("shm:///tmp/a.shm,shm:///tmp/a.shm").ok());
}

// ---------------------------------------------------------------------
// Shared-memory ring unit tests: the SPSC byte ring and the segment
// lifecycle, independent of any server.

TEST(ShmRingTest, ByteStreamSurvivesWrapAround) {
  ShmSegmentOptions options;
  options.path = UniqueShmPath();
  options.slots = 1;
  options.ring_bytes = 64 * 1024;  // the floor; forces wraps quickly
  auto segment = ShmSegment::Create(options);
  ASSERT_TRUE(segment.ok()) << segment.status();
  shm_internal::RingView ring = (*segment)->c2s(0);

  // Stream several capacities' worth of a deterministic pattern through
  // the ring in mismatched chunk sizes; the consumer must see the exact
  // byte sequence across every wrap.
  const size_t total = 5 * 64 * 1024 + 12345;
  std::vector<uint8_t> out(total), in;
  in.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    out[i] = static_cast<uint8_t>((i * 131) ^ (i >> 8));
  }
  size_t sent = 0;
  uint8_t buf[4096];
  while (in.size() < total) {
    if (sent < total) {
      const size_t chunk = std::min<size_t>(total - sent, 777);
      sent += ring.Write(out.data() + sent, chunk, nullptr, nullptr);
    }
    const size_t got = ring.Read(buf, 933, nullptr, nullptr);
    in.insert(in.end(), buf, buf + got);
  }
  EXPECT_EQ(in, out);
}

TEST(ShmRingTest, WriteBackpressuresWhenFull) {
  ShmSegmentOptions options;
  options.path = UniqueShmPath();
  options.slots = 1;
  options.ring_bytes = 64 * 1024;
  auto segment = ShmSegment::Create(options);
  ASSERT_TRUE(segment.ok());
  shm_internal::RingView ring = (*segment)->s2c(0);
  std::vector<uint8_t> chunk(64 * 1024, 0xAB);
  EXPECT_EQ(ring.Write(chunk.data(), chunk.size(), nullptr, nullptr),
            chunk.size());
  EXPECT_EQ(ring.Write(chunk.data(), 1, nullptr, nullptr), 0u);  // full
  uint8_t sink[1024];
  EXPECT_EQ(ring.Read(sink, sizeof(sink), nullptr, nullptr), sizeof(sink));
  EXPECT_EQ(ring.Write(chunk.data(), chunk.size(), nullptr, nullptr),
            sizeof(sink));  // exactly the freed space
}

TEST(ShmSegmentTest, OpenValidatesAndShutdownCloses) {
  EXPECT_FALSE(ShmSegment::Open("/tmp/mbp_no_such_segment.shm").ok());
  ShmSegmentOptions options;
  options.path = UniqueShmPath();
  auto segment = ShmSegment::Create(options);
  ASSERT_TRUE(segment.ok());
  auto reader = ShmSegment::Open(options.path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_TRUE((*reader)->is_open());
  (*segment)->BeginShutdown();
  EXPECT_FALSE((*reader)->is_open());  // same file, same header word
  // A closed segment refuses new clients outright.
  EXPECT_FALSE(ShmSegment::Open(options.path).ok());
}

}  // namespace
}  // namespace mbp::net

// ClusterPriceClient + HashRing (net/cluster.h): endpoint parsing, ring
// determinism/balance/minimal-disruption, and consistent-hash failover
// against real in-process PriceServers — including the bit-identity
// contract while an endpoint is down. Suite names match scripts/tsan.sh's
// Cluster filter.

#include "net/cluster.h"

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pricing_function.h"
#include "net/server.h"
#include "serving/price_query_engine.h"
#include "serving/synthetic_catalog.h"

namespace mbp::net {
namespace {

using serving::CatalogRegistry;
using serving::PriceQueryEngine;

TEST(ParseEndpointsTest, ParsesHostPortLists) {
  auto one = ParseEndpoints("10.0.0.1:7001");
  ASSERT_TRUE(one.ok());
  ASSERT_EQ(one->size(), 1u);
  EXPECT_EQ((*one)[0].host, "10.0.0.1");
  EXPECT_EQ((*one)[0].port, 7001);

  auto many = ParseEndpoints("127.0.0.1:1,:65535,host.example:80");
  ASSERT_TRUE(many.ok());
  ASSERT_EQ(many->size(), 3u);
  EXPECT_EQ((*many)[1].host, "127.0.0.1") << "bare ':port' means loopback";
  EXPECT_EQ((*many)[1].port, 65535);
  EXPECT_EQ((*many)[2].host, "host.example");
  EXPECT_EQ(EndpointLabel((*many)[2]), "host.example:80");
}

TEST(ParseEndpointsTest, RejectsMalformedLists) {
  EXPECT_FALSE(ParseEndpoints("").ok());
  EXPECT_FALSE(ParseEndpoints("no-port").ok());
  EXPECT_FALSE(ParseEndpoints("host:0").ok());
  EXPECT_FALSE(ParseEndpoints("host:65536").ok());
  EXPECT_FALSE(ParseEndpoints("host:12ab").ok());
  EXPECT_FALSE(ParseEndpoints("host:1,").ok());
  EXPECT_FALSE(ParseEndpoints(",host:1").ok());
  EXPECT_FALSE(ParseEndpoints("a:1,a:1").ok()) << "duplicates rejected";
}

std::vector<std::string> Labels(size_t n) {
  std::vector<std::string> labels;
  for (size_t i = 0; i < n; ++i) labels.push_back("shard-" + std::to_string(i));
  return labels;
}

TEST(HashRingTest, RoutingIsDeterministicAcrossInstances) {
  const HashRing a(Labels(5), 64);
  const HashRing b(Labels(5), 64);
  for (int k = 0; k < 500; ++k) {
    const std::string key = "curve-" + std::to_string(k);
    EXPECT_EQ(a.Route(key), b.Route(key)) << key;
    EXPECT_EQ(a.Route(key, 2), b.Route(key, 2)) << key;
  }
}

TEST(HashRingTest, AttemptsEnumerateDistinctNodes) {
  const HashRing ring(Labels(6), 64);
  for (int k = 0; k < 100; ++k) {
    const std::string key = "curve-" + std::to_string(k);
    std::set<size_t> nodes;
    for (size_t attempt = 0; attempt < 6; ++attempt) {
      nodes.insert(ring.Route(key, attempt));
    }
    EXPECT_EQ(nodes.size(), 6u)
        << "attempts must be a permutation of all nodes for " << key;
  }
}

TEST(HashRingTest, OwnsMatchesRouteAttempts) {
  const HashRing ring(Labels(5), 64);
  for (int k = 0; k < 200; ++k) {
    const std::string key = "curve-" + std::to_string(k);
    for (size_t replicas = 1; replicas <= 3; ++replicas) {
      std::set<size_t> owners;
      for (size_t attempt = 0; attempt < replicas; ++attempt) {
        owners.insert(ring.Route(key, attempt));
      }
      for (size_t node = 0; node < 5; ++node) {
        EXPECT_EQ(ring.Owns(key, node, replicas), owners.count(node) > 0);
      }
    }
  }
}

TEST(HashRingTest, LoadIsRoughlyBalanced) {
  constexpr size_t kNodes = 4;
  constexpr int kKeys = 20000;
  const HashRing ring(Labels(kNodes), 64);
  std::map<size_t, int> counts;
  for (int k = 0; k < kKeys; ++k) {
    counts[ring.Route("curve-" + std::to_string(k))]++;
  }
  for (size_t node = 0; node < kNodes; ++node) {
    // Fair share is 25%; 64 vnodes keeps every node within [12%, 45%].
    EXPECT_GT(counts[node], kKeys * 12 / 100) << "node " << node;
    EXPECT_LT(counts[node], kKeys * 45 / 100) << "node " << node;
  }
}

TEST(HashRingTest, AddingANodeMovesOnlyKeysItClaims) {
  const HashRing before(Labels(4), 64);
  const HashRing after(Labels(5), 64);  // Labels(5) extends Labels(4)
  int moved = 0;
  constexpr int kKeys = 10000;
  for (int k = 0; k < kKeys; ++k) {
    const std::string key = "curve-" + std::to_string(k);
    const size_t old_owner = before.Route(key);
    const size_t new_owner = after.Route(key);
    if (new_owner != old_owner) {
      EXPECT_EQ(new_owner, 4u)
          << "a key may change owner only by moving to the new node";
      ++moved;
    }
  }
  // The new node should claim roughly 1/5 of the keyspace — generous
  // bounds so hash noise cannot flake the test.
  EXPECT_GT(moved, kKeys * 8 / 100);
  EXPECT_LT(moved, kKeys * 35 / 100);
}

// Two real servers, both holding the full synthetic catalog (the
// replicated-fleet configuration). A shard that dies mid-stream must be
// routed around with bit-identical answers.
class ClusterClientTest : public ::testing::Test {
 protected:
  static constexpr size_t kCurves = 64;

  void SetUp() override {
    spec_.num_curves = kCurves;
    spec_.seed = 21;
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(serving::PublishSyntheticCatalog(spec_, &registry_[i]).ok());
      engine_[i] = std::make_unique<PriceQueryEngine>(&registry_[i]);
      ServerOptions options;
      options.num_shards = 1;
      auto server = PriceServer::Start(engine_[i].get(), options);
      ASSERT_TRUE(server.ok()) << server.status();
      server_[i] = std::move(*server);
      endpoints_.push_back({"127.0.0.1", server_[i]->port()});
    }
  }

  void TearDown() override {
    for (auto& s : server_) {
      if (s != nullptr) s->Shutdown();
    }
  }

  serving::SyntheticCatalogSpec spec_;
  CatalogRegistry registry_[2];
  std::unique_ptr<PriceQueryEngine> engine_[2];
  std::unique_ptr<PriceServer> server_[2];
  std::vector<Endpoint> endpoints_;
};

TEST_F(ClusterClientTest, RoutedAnswersAreBitIdenticalToLocalCurves) {
  auto client = ClusterPriceClient::Create(endpoints_);
  ASSERT_TRUE(client.ok()) << client.status();
  for (size_t i = 0; i < kCurves; ++i) {
    const std::string id = serving::SyntheticCurveId(i);
    const auto oracle = serving::MakeSyntheticCurve(spec_, i);
    const double x = serving::SyntheticCurveXMax(spec_, i) * 0.37;
    const auto remote = (*client)->PriceAt(id, x);
    ASSERT_TRUE(remote.ok()) << remote.status();
    EXPECT_EQ(*remote, oracle.PriceAtInverseNcp(x)) << id;
  }
  EXPECT_EQ((*client)->telemetry().failovers, 0u)
      << "healthy fleet must answer every request at its owner";
}

TEST_F(ClusterClientTest, RouteOfSpreadsCurvesOverBothEndpoints) {
  auto client = ClusterPriceClient::Create(endpoints_);
  ASSERT_TRUE(client.ok());
  std::set<size_t> owners;
  for (size_t i = 0; i < kCurves; ++i) {
    owners.insert((*client)->RouteOf(serving::SyntheticCurveId(i)));
  }
  EXPECT_EQ(owners.size(), 2u) << "64 curves must not all land on one shard";
}

TEST_F(ClusterClientTest, DeadEndpointFailsOverBitIdentically) {
  ClusterClientOptions options;
  options.client.connect_timeout_ms = 500;
  options.cooldown_ms = 50;
  auto client = ClusterPriceClient::Create(endpoints_, options);
  ASSERT_TRUE(client.ok());

  // Kill endpoint 0; every curve it owned must fail over to endpoint 1
  // with bit-identical answers.
  server_[0]->Shutdown();
  server_[0] = nullptr;
  size_t owned_by_dead = 0;
  for (size_t i = 0; i < kCurves; ++i) {
    const std::string id = serving::SyntheticCurveId(i);
    if ((*client)->RouteOf(id) == 0) ++owned_by_dead;
    const auto oracle = serving::MakeSyntheticCurve(spec_, i);
    const double x = serving::SyntheticCurveXMax(spec_, i) * 0.61;
    const auto remote = (*client)->PriceAt(id, x);
    ASSERT_TRUE(remote.ok()) << id << ": " << remote.status();
    EXPECT_EQ(*remote, oracle.PriceAtInverseNcp(x)) << id;
  }
  EXPECT_GT(owned_by_dead, 0u) << "test is vacuous if shard 0 owned nothing";
  EXPECT_GT((*client)->telemetry().failovers, 0u);
  EXPECT_GT((*client)->telemetry().endpoint_errors, 0u);
}

TEST_F(ClusterClientTest, UnknownCurveIsNotFoundWithoutFailover) {
  auto client = ClusterPriceClient::Create(endpoints_);
  ASSERT_TRUE(client.ok());
  const auto result = (*client)->PriceAt("no-such-curve", 1.0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ((*client)->telemetry().failovers, 0u)
      << "application errors must not trigger failover";
}

TEST_F(ClusterClientTest, StatsIsEndpointAddressed) {
  auto client = ClusterPriceClient::Create(endpoints_);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->PriceAt(serving::SyntheticCurveId(0), 1.0).ok());
  for (size_t e = 0; e < 2; ++e) {
    const auto stats = (*client)->Stats(e);
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_EQ(stats->catalog_listings, kCurves);
    EXPECT_GT(stats->catalog_bytes, 0u);
  }
  EXPECT_FALSE((*client)->Stats(2).ok());
}

TEST(ClusterCreateTest, RejectsBadConfigurations) {
  EXPECT_FALSE(ClusterPriceClient::Create({}).ok());
  ClusterClientOptions mismatched;
  mismatched.node_labels = {"only-one"};
  EXPECT_FALSE(ClusterPriceClient::Create(
                   {{"127.0.0.1", 1}, {"127.0.0.1", 2}}, mismatched)
                   .ok());
}

}  // namespace
}  // namespace mbp::net

// Kill-9 recovery chaos harness (DESIGN.md §5j): fork/exec the real
// mbp_catalog_shard with --wal-dir, murder it — at named crash points
// (--crash-point) and at random moments under BUY load — restart it on
// the same WAL directory, and hold the money-path invariants:
//   - no acked sale is ever lost: REPLAY(txn) after the restart returns
//     the exact bytes the pre-crash BUY delivered;
//   - no sale is charged twice: retrying every acked txn leaves revenue
//     unchanged, and revenue always equals the sum over DISTINCT
//     recorded sales;
//   - an in-flight (unacked) BUY retried with the SAME txn id lands
//     exactly once, whether or not its record survived the crash.
// The random-cycle count honors MBP_CRASH_CYCLES (scripts/crash_chaos.sh
// and the `ctest -C crash` configuration raise it).

#include <dirent.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/client.h"
#include "random/rng.h"
#include "serving/synthetic_catalog.h"

namespace mbp::net {
namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return fallback;
}

// One mbp_catalog_shard child. Start() blocks until the READY line and
// parses its durability tokens; Kill() is SIGKILL (the crash under
// test); StopGraceful() closes stdin and captures the DRAIN line.
class ShardProcess {
 public:
  ~ShardProcess() {
    if (pid_ > 0) {
      kill(pid_, SIGKILL);
      int status = 0;
      waitpid(pid_, &status, 0);
    }
    if (stdin_fd_ >= 0) close(stdin_fd_);
    if (stdout_fd_ >= 0) close(stdout_fd_);
  }

  bool Start(std::vector<std::string> args) {
    int in_pipe[2], out_pipe[2];
    if (pipe(in_pipe) < 0 || pipe(out_pipe) < 0) return false;
    args.insert(args.begin(), MBP_SHARD_PATH);
    pid_ = fork();
    if (pid_ < 0) return false;
    if (pid_ == 0) {
      dup2(in_pipe[0], STDIN_FILENO);
      dup2(out_pipe[1], STDOUT_FILENO);
      close(in_pipe[0]);
      close(in_pipe[1]);
      close(out_pipe[0]);
      close(out_pipe[1]);
      std::vector<char*> cargs;
      for (std::string& a : args) cargs.push_back(a.data());
      cargs.push_back(nullptr);
      execv(MBP_SHARD_PATH, cargs.data());
      _exit(127);
    }
    close(in_pipe[0]);
    close(out_pipe[1]);
    stdin_fd_ = in_pipe[1];
    stdout_fd_ = out_pipe[0];
    return ReadReadyLine();
  }

  // SIGKILL — no drain, no flush; exactly what the harness is about.
  void Kill() {
    if (pid_ <= 0) return;
    kill(pid_, SIGKILL);
    int status = 0;
    waitpid(pid_, &status, 0);
    pid_ = -1;
  }

  // Waits for a self-inflicted exit (an armed crash point). Returns the
  // child's exit code, or -1 on timeout.
  int WaitCrash(int timeout_ms = 15000) {
    if (pid_ <= 0) return -1;
    int status = 0;
    for (int waited = 0; waited < timeout_ms; waited += 20) {
      if (waitpid(pid_, &status, WNOHANG) == pid_) {
        pid_ = -1;
        return WIFEXITED(status) ? WEXITSTATUS(status) : -2;
      }
      usleep(20 * 1000);
    }
    return -1;
  }

  // Closes stdin (the graceful-drain signal) and returns the DRAIN line.
  std::string StopGraceful() {
    if (pid_ <= 0) return "";
    close(stdin_fd_);
    stdin_fd_ = -1;
    std::string drain = ReadLine(10000);
    int status = 0;
    waitpid(pid_, &status, 0);
    pid_ = -1;
    return drain;
  }

  uint16_t port() const { return port_; }
  size_t curves() const { return curves_; }
  uint64_t recovered() const { return recovered_; }
  uint64_t torn() const { return torn_; }

 private:
  static uint64_t TokenAfter(const std::string& line, const std::string& key) {
    const size_t pos = line.find(key);
    if (pos == std::string::npos) return 0;
    return std::strtoull(line.c_str() + pos + key.size(), nullptr, 10);
  }

  std::string ReadLine(int timeout_ms) {
    std::string line;
    while (line.find('\n') == std::string::npos && line.size() < 8192) {
      struct pollfd pfd = {stdout_fd_, POLLIN, 0};
      if (poll(&pfd, 1, timeout_ms) <= 0) return "";
      char buf[512];
      const ssize_t n = read(stdout_fd_, buf, sizeof(buf));
      if (n <= 0) return "";
      line.append(buf, static_cast<size_t>(n));
    }
    return line;
  }

  bool ReadReadyLine() {
    const std::string line = ReadLine(120000);
    if (line.find("READY ") == std::string::npos) return false;
    port_ = static_cast<uint16_t>(TokenAfter(line, "port="));
    curves_ = static_cast<size_t>(TokenAfter(line, "curves="));
    recovered_ = TokenAfter(line, "recovered=");
    torn_ = TokenAfter(line, "torn=");
    return port_ != 0;
  }

  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  uint16_t port_ = 0;
  size_t curves_ = 0;
  uint64_t recovered_ = 0;
  uint64_t torn_ = 0;
};

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wal_dir_ = ::testing::TempDir() + "/crash_" +
               ::testing::UnitTest::GetInstance()->current_test_info()->name();
    RemoveTree(wal_dir_);
  }

  void TearDown() override { RemoveTree(wal_dir_); }

  static void RemoveTree(const std::string& dir) {
    for (const char* sub : {"/catalog", "/ledger", ""}) {
      const std::string path = dir + sub;
      DIR* d = opendir(path.c_str());
      if (d == nullptr) continue;
      while (struct dirent* entry = readdir(d)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..") continue;
        unlink((path + "/" + name).c_str());
      }
      closedir(d);
      rmdir(path.c_str());
    }
  }

  // Baseline shard args: a small catalog (startup stays fast across ~20
  // restart cycles) and no fsync (kill -9 durability relies on the page
  // cache surviving the process; the fsync policies' durability is
  // bench_net/BENCH territory).
  std::vector<std::string> ShardArgs(const std::string& fsync = "none") {
    return {"--curves=24",      "--seed=11",
            "--min-knots=8",    "--max-knots=32",
            "--wal-dir=" + wal_dir_, "--wal-fsync=" + fsync};
  }

  static std::unique_ptr<PriceClient> Connect(uint16_t port) {
    ClientOptions options;
    options.connect_timeout_ms = 2000;
    options.attempt_timeout_ms = 2000;
    options.request_timeout_ms = 4000;
    auto client = PriceClient::Connect("127.0.0.1", port, options);
    EXPECT_TRUE(client.ok()) << client.status();
    return client.ok() ? *std::move(client) : nullptr;
  }

  static bool SameBits(const std::vector<double>& a,
                       const std::vector<double>& b) {
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
  }

  std::string wal_dir_;
};

// Satellite (a) + tentpole: a graceful drain checkpoints both logs, the
// restart replays ZERO segment records, the catalog rebuilds from the
// journal (ignoring contradictory flags), and every recorded sale
// replays bit-identically.
TEST_F(CrashRecoveryTest, GracefulDrainThenRestartSkipsReplayKeepsSales) {
  std::map<uint64_t, BuyPayload> acked;
  {
    ShardProcess shard;
    ASSERT_TRUE(shard.Start(ShardArgs()));
    EXPECT_EQ(shard.recovered(), 0u);
    EXPECT_EQ(shard.curves(), 24u);
    auto client = Connect(shard.port());
    ASSERT_NE(client, nullptr);
    for (uint64_t txn = 1; txn <= 8; ++txn) {
      auto sale = client->Buy(serving::SyntheticCurveId(txn % 5), 0.5, txn);
      ASSERT_TRUE(sale.ok()) << sale.status();
      acked[txn] = *sale;
    }
    const std::string drain = shard.StopGraceful();
    EXPECT_NE(drain.find("DRAIN "), std::string::npos) << drain;
    EXPECT_NE(drain.find("sales=8"), std::string::npos) << drain;
    EXPECT_NE(drain.find("checkpoint=clean"), std::string::npos) << drain;
  }

  ShardProcess shard;
  // Contradictory --curves: the journal, not the flag, is the catalog's
  // source of truth once it exists.
  auto args = ShardArgs();
  args[0] = "--curves=3";
  ASSERT_TRUE(shard.Start(args));
  EXPECT_EQ(shard.curves(), 24u) << "catalog must rebuild from the journal";
  EXPECT_EQ(shard.recovered(), 0u)
      << "a clean shutdown leaves no segment records to replay";
  EXPECT_EQ(shard.torn(), 0u);

  auto client = Connect(shard.port());
  ASSERT_NE(client, nullptr);
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->transactions_recorded, 8u);
  EXPECT_EQ(stats->recovery_records, 0u);
  double expected_revenue = 0.0;
  for (auto& [txn, sale] : acked) {
    auto replay = client->Replay(txn);
    ASSERT_TRUE(replay.ok()) << "txn " << txn << ": " << replay.status();
    EXPECT_TRUE(SameBits(replay->weights, sale.weights))
        << "txn " << txn << " must replay bit-identically across restart";
    EXPECT_EQ(replay->record.seed_commitment, sale.record.seed_commitment);
    expected_revenue += sale.record.price;
  }
  EXPECT_NEAR(stats->revenue, expected_revenue, 1e-9)
      << "revenue must equal the sum over distinct recorded sales";
}

// Tentpole: crash AFTER the record is durable but BEFORE the ack leaves
// the process. The client saw an error — but the money moved. A retry
// with the same txn id must re-deliver the recorded sale, charged once.
TEST_F(CrashRecoveryTest, PostFsyncPreAckCrashRetriesAreChargedOnce) {
  {
    ShardProcess shard;
    auto args = ShardArgs();
    args.push_back("--crash-point=wal.crash.post_fsync");
    args.push_back("--crash-after=2");  // two BUYs ack; the third dies
    ASSERT_TRUE(shard.Start(args));
    auto client = Connect(shard.port());
    ASSERT_NE(client, nullptr);
    ASSERT_TRUE(client->Buy(serving::SyntheticCurveId(0), 0.5, 1).ok());
    ASSERT_TRUE(client->Buy(serving::SyntheticCurveId(1), 0.5, 2).ok());
    EXPECT_FALSE(client->Buy(serving::SyntheticCurveId(2), 0.5, 3).ok())
        << "the armed append must kill the process before the ack";
    EXPECT_EQ(shard.WaitCrash(), 137);
  }

  ShardProcess shard;
  ASSERT_TRUE(shard.Start(ShardArgs()));
  EXPECT_EQ(shard.recovered(), 3u + 24u)
      << "24 journaled publishes + 3 sale records (txn 3's append "
         "completed before the crash point fired)";
  EXPECT_EQ(shard.torn(), 0u);
  auto client = Connect(shard.port());
  ASSERT_NE(client, nullptr);
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  const double revenue_before = stats->revenue;
  EXPECT_EQ(stats->transactions_recorded, 3u);

  // The failed BUY's retry — same txn id — is answered from the ledger.
  auto retry = client->Buy(serving::SyntheticCurveId(2), 0.5, 3);
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_EQ(retry->record.txn_id, 3u);
  auto after = client->Stats();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->revenue, revenue_before)
      << "a recovered sale retried is never charged again";
  EXPECT_EQ(after->buys_ok, 0u) << "no NEW sale happened on this boot";
}

// Tentpole: crash MID-WRITE — a torn record on disk. Recovery truncates
// the tail; the unacked BUY was never recorded, so its retry is a fresh
// sale charged exactly once.
TEST_F(CrashRecoveryTest, TornWriteCrashTruncatesTailAndRetriesFresh) {
  {
    ShardProcess shard;
    auto args = ShardArgs();
    args.push_back("--crash-point=wal.append.torn");
    args.push_back("--crash-after=1");
    ASSERT_TRUE(shard.Start(args));
    auto client = Connect(shard.port());
    ASSERT_NE(client, nullptr);
    ASSERT_TRUE(client->Buy(serving::SyntheticCurveId(0), 0.5, 1).ok());
    EXPECT_FALSE(client->Buy(serving::SyntheticCurveId(1), 0.5, 2).ok());
    EXPECT_EQ(shard.WaitCrash(), 137);
  }

  ShardProcess shard;
  ASSERT_TRUE(shard.Start(ShardArgs()));
  EXPECT_EQ(shard.recovered(), 1u + 24u);
  EXPECT_EQ(shard.torn(), 1u) << "the half-written record is a torn tail";
  auto client = Connect(shard.port());
  ASSERT_NE(client, nullptr);
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->transactions_recorded, 1u)
      << "the torn record must NOT be admitted";
  EXPECT_EQ(stats->recovery_torn_tail, 1u);

  auto retry = client->Buy(serving::SyntheticCurveId(1), 0.5, 2);
  ASSERT_TRUE(retry.ok()) << retry.status();
  auto after = client->Stats();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->buys_ok, 1u) << "the retry is a fresh, first delivery";
  EXPECT_NEAR(after->revenue, stats->revenue + retry->record.price, 1e-9);
  EXPECT_EQ(after->transactions_recorded, 2u);
}

// The acceptance gate: >= MBP_CRASH_CYCLES (default 20) random
// SIGKILL/restart cycles under concurrent BUY load. Across every cycle:
// acked sales replay bit-identically, retries never double-charge, and
// revenue reconciles exactly with the distinct recorded sales.
TEST_F(CrashRecoveryTest, RandomKillNineCyclesLoseNoAckedSale) {
  const uint64_t cycles = EnvU64("MBP_CRASH_CYCLES", 20);
  random::Rng rng(EnvU64("MBP_CHAOS_SEED", 12648430));

  std::map<uint64_t, BuyPayload> acked;  // every sale a client saw ack'd
  double recorded_revenue = 0.0;  // sum over DISTINCT recorded sales,
                                  // including recorded-but-unacked ones
  uint64_t next_txn = 1;
  uint64_t inflight_txn = 0;  // BUY whose ack the kill swallowed, if any

  for (uint64_t cycle = 0; cycle <= cycles; ++cycle) {
    ShardProcess shard;
    ASSERT_TRUE(shard.Start(ShardArgs())) << "cycle " << cycle;
    auto client = Connect(shard.port());
    ASSERT_NE(client, nullptr) << "cycle " << cycle;

    // Invariant 2 first: the txn in flight at kill time, retried with
    // the SAME id, lands exactly once — whether or not its record beat
    // the SIGKILL to the log. Either way the books close at
    // recorded_revenue + price.
    if (inflight_txn != 0) {
      auto boot = client->Stats();
      ASSERT_TRUE(boot.ok()) << "cycle " << cycle << ": " << boot.status();
      auto retry = client->Buy(serving::SyntheticCurveId(inflight_txn % 24),
                               0.5, inflight_txn);
      ASSERT_TRUE(retry.ok()) << "cycle " << cycle << ": " << retry.status();
      recorded_revenue += retry->record.price;
      auto after = client->Stats();
      ASSERT_TRUE(after.ok());
      if (after->buys_ok > 0) {
        ASSERT_NEAR(boot->revenue + retry->record.price, recorded_revenue,
                    1e-9)
            << "cycle " << cycle << ": fresh retry must charge exactly once";
      } else {
        ASSERT_NEAR(boot->revenue, recorded_revenue, 1e-9)
            << "cycle " << cycle
            << ": the record survived the kill, the retry must not re-charge";
      }
      acked[inflight_txn] = *retry;
      inflight_txn = 0;
    }

    // Invariant 3: revenue ≡ sum over DISTINCT recorded sales.
    auto stats = client->Stats();
    ASSERT_TRUE(stats.ok()) << "cycle " << cycle << ": " << stats.status();
    ASSERT_NEAR(stats->revenue, recorded_revenue, 1e-9)
        << "cycle " << cycle
        << ": recovered revenue must equal the distinct recorded sales";
    ASSERT_EQ(stats->transactions_recorded, acked.size())
        << "cycle " << cycle;

    // Invariant 1: nothing acked is ever lost, and replays are
    // bit-identical. (Spot-check a bounded sample to keep cycles fast.)
    size_t checked = 0;
    for (auto it = acked.rbegin(); it != acked.rend() && checked < 8;
         ++it, ++checked) {
      auto replay = client->Replay(it->first);
      ASSERT_TRUE(replay.ok())
          << "cycle " << cycle << " lost acked txn " << it->first << ": "
          << replay.status();
      ASSERT_TRUE(SameBits(replay->weights, it->second.weights))
          << "cycle " << cycle << " txn " << it->first
          << ": replay is not bit-identical";
    }
    if (cycle == cycles) break;  // final boot only reconciles

    // BUY load until a SIGKILL lands at a random moment — possibly in
    // the middle of a charge-durable-then-deliver append.
    const uint64_t kill_after_ms = 3 + rng.NextUint64() % 35;
    std::thread killer([&shard, kill_after_ms] {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          static_cast<long>(kill_after_ms)));
      shard.Kill();
    });
    while (true) {
      const uint64_t txn = next_txn++;
      auto sale =
          client->Buy(serving::SyntheticCurveId(txn % 24), 0.5, txn);
      if (!sale.ok()) {
        inflight_txn = txn;  // ack swallowed: recorded or not, unknown
        break;
      }
      acked[txn] = *sale;
      recorded_revenue += sale->record.price;
    }
    killer.join();
  }

  EXPECT_GE(acked.size(), cycles)
      << "the load loop must actually have sold things";
}

}  // namespace
}  // namespace mbp::net

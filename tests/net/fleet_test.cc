// Multi-process fleet tests: fork/exec the real mbp_price_fleet launcher
// (paths injected via MBP_FLEET_PATH / MBP_SHARD_PATH compile
// definitions), route to it with ClusterPriceClient, and hold the
// cross-process bit-identity contract — including while one shard is
// fault-stormed (the pass scripts/chaos.sh runs, honoring
// MBP_CHAOS_SEED) and in ring-partitioned mode.

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/cluster.h"
#include "random/distributions.h"
#include "random/rng.h"
#include "serving/synthetic_catalog.h"

namespace mbp::net {
namespace {

// A fleet child process: the launcher with its stdin held open by us
// (closing it triggers the graceful drain) and its stdout piped back for
// the FLEET line.
class FleetProcess {
 public:
  bool Start(std::vector<std::string> args) {
    int in_pipe[2], out_pipe[2];
    if (pipe(in_pipe) < 0 || pipe(out_pipe) < 0) return false;
    args.insert(args.begin(), MBP_FLEET_PATH);
    args.push_back(std::string("--shard-bin=") + MBP_SHARD_PATH);
    pid_ = fork();
    if (pid_ < 0) return false;
    if (pid_ == 0) {
      dup2(in_pipe[0], STDIN_FILENO);
      dup2(out_pipe[1], STDOUT_FILENO);
      close(in_pipe[0]);
      close(in_pipe[1]);
      close(out_pipe[0]);
      close(out_pipe[1]);
      std::vector<char*> cargs;
      for (std::string& a : args) cargs.push_back(a.data());
      cargs.push_back(nullptr);
      execv(MBP_FLEET_PATH, cargs.data());
      _exit(127);
    }
    close(in_pipe[0]);
    close(out_pipe[1]);
    stdin_fd_ = in_pipe[1];
    stdout_fd_ = out_pipe[0];
    return ReadFleetLine();
  }

  ~FleetProcess() { Stop(); }

  void Stop() {
    if (pid_ < 0) return;
    close(stdin_fd_);  // graceful drain signal
    int status = 0;
    for (int waited = 0; waited < 10000; waited += 50) {
      if (waitpid(pid_, &status, WNOHANG) == pid_) {
        pid_ = -1;
        break;
      }
      usleep(50 * 1000);
    }
    if (pid_ > 0) {
      kill(pid_, SIGKILL);
      waitpid(pid_, &status, 0);
      pid_ = -1;
    }
    close(stdout_fd_);
  }

  const std::string& endpoints_csv() const { return endpoints_csv_; }
  const std::vector<std::string>& labels() const { return labels_; }

 private:
  bool ReadFleetLine() {
    std::string line;
    while (line.find('\n') == std::string::npos && line.size() < 8192) {
      struct pollfd pfd = {stdout_fd_, POLLIN, 0};
      if (poll(&pfd, 1, 120000) <= 0) return false;
      char buf[512];
      const ssize_t n = read(stdout_fd_, buf, sizeof(buf));
      if (n <= 0) return false;
      line.append(buf, static_cast<size_t>(n));
    }
    const size_t ep = line.find("endpoints=");
    const size_t lb = line.find(" labels=");
    const size_t nl = line.find('\n');
    if (line.find("FLEET ") == std::string::npos || ep == std::string::npos ||
        lb == std::string::npos || nl == std::string::npos) {
      return false;
    }
    endpoints_csv_ = line.substr(ep + 10, lb - (ep + 10));
    std::string labels_csv = line.substr(lb + 8, nl - (lb + 8));
    size_t pos = 0;
    while (pos <= labels_csv.size()) {
      const size_t comma = std::min(labels_csv.find(',', pos),
                                    labels_csv.size());
      labels_.push_back(labels_csv.substr(pos, comma - pos));
      if (comma == labels_csv.size()) break;
      pos = comma + 1;
    }
    return true;
  }

  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  std::string endpoints_csv_;
  std::vector<std::string> labels_;
};

uint64_t ChaosSeed() {
  const char* env = std::getenv("MBP_CHAOS_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 12648430;  // 0xC0FFEE
}

// Satellite (e): a fixed-seed 2-process consistent-hash fleet with one
// shard fault-stormed. Every zipf-sampled answer routed through the
// cluster client must be bit-identical to the in-process engine's curve —
// faults may slow a request down or fail it over, never change its value.
TEST(NetFleetTest, FaultStormedFleetStaysBitIdenticalUnderZipfLoad) {
  serving::SyntheticCatalogSpec spec;
  spec.num_curves = 256;
  spec.seed = 7;

  FleetProcess fleet;
  ASSERT_TRUE(fleet.Start({"--n=2", "--curves=256", "--seed=7",
                           "--fault-shard=0",
                           "--fault-seed=" + std::to_string(ChaosSeed()),
                           "--fault-scale=1.0"}))
      << "fleet launcher did not report FLEET";
  auto endpoints = ParseEndpoints(fleet.endpoints_csv());
  ASSERT_TRUE(endpoints.ok()) << endpoints.status();
  ASSERT_EQ(endpoints->size(), 2u);
  ASSERT_EQ(fleet.labels().size(), 2u);

  ClusterClientOptions options;
  options.node_labels = fleet.labels();
  options.cooldown_ms = 20;
  auto client = ClusterPriceClient::Create(*endpoints, options);
  ASSERT_TRUE(client.ok()) << client.status();

  // Local oracles for the whole catalog, compiled from the same spec the
  // shards used — cross-process determinism is the property under test.
  std::vector<core::PiecewiseLinearPricing> oracles;
  for (size_t i = 0; i < spec.num_curves; ++i) {
    oracles.push_back(serving::MakeSyntheticCurve(spec, i));
  }

  random::Rng rng(ChaosSeed() ^ 0x5A5A5A5Aull);
  const random::ZipfIndex zipf(spec.num_curves, 1.1);
  size_t served = 0;
  for (int round = 0; round < 400; ++round) {
    const size_t index = zipf.Sample(rng);
    const std::string id = serving::SyntheticCurveId(index);
    const double hi = serving::SyntheticCurveXMax(spec, index);
    if (round % 3 == 0) {
      const double x = rng.NextDouble(0.0, hi);
      const auto remote = (*client)->PriceAt(id, x);
      ASSERT_TRUE(remote.ok()) << id << ": " << remote.status();
      ASSERT_EQ(*remote, oracles[index].PriceAtInverseNcp(x)) << id;
      ++served;
    } else {
      std::vector<double> xs(8);
      for (double& x : xs) x = rng.NextDouble(0.0, hi);
      const auto remote = (*client)->PriceBatch(id, xs);
      ASSERT_TRUE(remote.ok()) << id << ": " << remote.status();
      for (size_t i = 0; i < xs.size(); ++i) {
        ASSERT_EQ((*remote)[i], oracles[index].PriceAtInverseNcp(xs[i]))
            << id;
      }
      served += xs.size();
    }
  }
  EXPECT_GT(served, 0u);
}

// Ring-partitioned fleet: 3 shards, replicas=2, so each shard compiles
// only its share and every curve is resident on exactly its 2 ring
// owners. The cluster client (same labels) must still serve the whole
// catalog bit-identically, and the fleet-wide resident-listing total must
// equal curves x replicas.
TEST(NetFleetTest, PartitionedFleetServesWholeCatalogBitIdentically) {
  serving::SyntheticCatalogSpec spec;
  spec.num_curves = 128;
  spec.seed = 9;

  FleetProcess fleet;
  ASSERT_TRUE(fleet.Start({"--n=3", "--curves=128", "--seed=9",
                           "--partition", "--replicas=2"}));
  auto endpoints = ParseEndpoints(fleet.endpoints_csv());
  ASSERT_TRUE(endpoints.ok()) << endpoints.status();
  ASSERT_EQ(endpoints->size(), 3u);

  ClusterClientOptions options;
  options.node_labels = fleet.labels();
  auto client = ClusterPriceClient::Create(*endpoints, options);
  ASSERT_TRUE(client.ok()) << client.status();

  for (size_t i = 0; i < spec.num_curves; ++i) {
    const std::string id = serving::SyntheticCurveId(i);
    const auto oracle = serving::MakeSyntheticCurve(spec, i);
    const double x = serving::SyntheticCurveXMax(spec, i) * 0.5;
    const auto remote = (*client)->PriceAt(id, x);
    ASSERT_TRUE(remote.ok()) << id << ": " << remote.status();
    EXPECT_EQ(*remote, oracle.PriceAtInverseNcp(x)) << id;
  }

  uint64_t total_resident = 0;
  for (size_t e = 0; e < endpoints->size(); ++e) {
    const auto stats = (*client)->Stats(e);
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_LT(stats->catalog_listings, spec.num_curves)
        << "a partitioned shard must not hold the whole catalog";
    total_resident += stats->catalog_listings;
  }
  EXPECT_EQ(total_resident, spec.num_curves * 2)
      << "replicas=2 means every curve is resident on exactly 2 shards";
}

}  // namespace
}  // namespace mbp::net

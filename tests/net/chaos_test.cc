// Chaos suite for the resilient serving path (DESIGN.md §5e): thousands
// of real loopback requests driven through seeded fault schedules on the
// process-global injector, which both the server's and the client's
// syscall wrappers consult — so every run stresses BOTH ends at once.
//
// Invariants asserted:
//   - no crash and no hung connection (the suite finishing IS the check:
//     every client wait is deadline-bounded);
//   - every SUCCESSFUL response is bit-identical to the engine oracle;
//   - failures are only the sanctioned degradation codes (kUnavailable,
//     kDeadlineExceeded) or transport exhaustion (kInternal) — never a
//     wrong answer;
//   - injected faults never corrupt framing (server protocol_errors
//     stays 0: faults fire BEFORE the real syscall or only shorten it);
//   - Shutdown() drains bounded even against a stalled peer.
//
// Replayability: the injector seed comes from MBP_CHAOS_SEED when set
// (scripts/chaos.sh exports a randomized one) and is printed on every
// run, so any failure reproduces with MBP_CHAOS_SEED=<seed>. Suite name
// matches scripts/tsan.sh's Net filter.
//
// Transport regimes: MBP_CHAOS_TRANSPORT={epoll,uring,shm} (default
// epoll) reruns the whole suite with the server on that backend and the
// PriceClient connecting over TCP or the shm:// ring accordingly —
// scripts/chaos.sh pass 4 drives this. `uring` self-skips (visibly)
// when the kernel fails the io_uring probe. Tests that open raw TCP
// sockets below PriceClient keep doing so under shm; the TCP listener
// stays up next to the segment, so they chaos the epoll path of the
// same server.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "core/pricing_function.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "serving/fulfillment.h"
#include "serving/price_query_engine.h"
#include "serving/snapshot_registry.h"

namespace mbp::net {
namespace {

using core::PiecewiseLinearPricing;
using serving::PriceQueryEngine;
using serving::SnapshotRegistry;

// Same arbitrage-free family as net_integration_test.cc.
PiecewiseLinearPricing MakeVariant(size_t k) {
  const double s = static_cast<double>(k + 1);
  return PiecewiseLinearPricing::Create({{1.0, 10.0 * s},
                                         {2.0, 18.0 * s},
                                         {4.0, 30.0 * s},
                                         {8.0, 40.0 * s}})
      .value();
}

uint64_t ChaosSeed() {
  if (const char* env = std::getenv("MBP_CHAOS_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return 0xC0FFEEull;  // fixed default: CI runs are replayable as-is
}

std::string ChaosTransport() {
  const char* env = std::getenv("MBP_CHAOS_TRANSPORT");
  return env != nullptr && env[0] != '\0' ? env : "epoll";
}

class NetChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::kBuildEnabled) {
      GTEST_SKIP() << "built with MBP_FAULT_INJECTION=OFF";
    }
    transport_ = ChaosTransport();
    if (transport_ == "uring" && !UringAvailable()) {
      GTEST_SKIP() << "MBP_CHAOS_TRANSPORT=uring: io_uring unavailable on "
                      "this kernel, skipping";
    }
    fault::FaultInjector::Global().Reset();
    seed_ = ChaosSeed();
    fault::FaultInjector::Global().Seed(seed_);
    std::printf("[chaos] replay with MBP_CHAOS_SEED=%llu (transport=%s)\n",
                static_cast<unsigned long long>(seed_), transport_.c_str());
    auto published = registry_.Publish("pricing", MakeVariant(0));
    ASSERT_TRUE(published.ok());
    slot_ = *published;
    engine_ = std::make_unique<PriceQueryEngine>(&registry_);
    fulfillment_ = std::make_unique<serving::FulfillmentEngine>(&registry_);
  }

  void TearDown() override {
    fault::FaultInjector::Global().Reset();
    if (!shm_path_.empty()) (void)unlink(shm_path_.c_str());
  }

  void StartServer(ServerOptions options) {
    options.port = 0;
    options.default_curve_id = "pricing";
    options.fulfillment = fulfillment_.get();
    if (transport_ == "uring") {
      options.transport = TransportKind::kUring;
    } else if (transport_ == "shm") {
      shm_path_ = "/tmp/mbp_chaos_" + std::to_string(getpid()) + ".shm";
      options.shm_path = shm_path_;
      options.shm_slots = 16;
    }
    auto server = PriceServer::Start(engine_.get(), options);
    ASSERT_TRUE(server.ok()) << server.status();
    server_ = std::move(*server);
  }

  StatusOr<std::unique_ptr<PriceClient>> Connect(ClientOptions options) {
    if (transport_ == "shm") {
      return PriceClient::Connect("shm://" + shm_path_, 0, options);
    }
    return PriceClient::Connect("127.0.0.1", server_->port(), options);
  }

  uint64_t seed_ = 0;
  std::string transport_;
  std::string shm_path_;
  SnapshotRegistry registry_;
  const SnapshotRegistry::CurveSlot* slot_ = nullptr;
  std::unique_ptr<PriceQueryEngine> engine_;
  std::unique_ptr<serving::FulfillmentEngine> fulfillment_;
  std::unique_ptr<PriceServer> server_;
};

// The headline run: 10k requests from 4 concurrent clients while EINTR,
// EAGAIN, short reads/writes, delayed completions, connection resets, and
// accept-side faults all fire on a seeded schedule.
TEST_F(NetChaosTest, TenThousandRequestsUnderSeededFaultSchedule) {
  fault::FaultInjector& inj = fault::FaultInjector::Global();
  fault::PointSchedule transient;  // absorbed inside one attempt
  transient.probability = 0.05;
  inj.Arm("net.recv.eintr", transient);
  inj.Arm("net.recv.eagain", transient);
  inj.Arm("net.send.eintr", transient);
  inj.Arm("net.send.eagain", transient);
  inj.Arm("net.accept.eintr", transient);
  inj.Arm("net.epoll.eintr", transient);
  fault::PointSchedule shortio;  // resumption paths, frame reassembly
  shortio.probability = 0.2;
  inj.Arm("net.recv.short", shortio);
  inj.Arm("net.send.short", shortio);
  fault::PointSchedule delay;  // scheduling stalls
  delay.probability = 0.001;
  delay.delay_micros = 500;
  inj.Arm("net.recv.delay", delay);
  inj.Arm("net.send.delay", delay);
  fault::PointSchedule reset;  // hard connection loss; retries reconnect
  reset.probability = 0.0005;
  inj.Arm("net.recv.reset", reset);
  inj.Arm("net.send.reset", reset);
  fault::PointSchedule refuse;  // accept-side allocation failure
  refuse.probability = 0.02;
  inj.Arm("net.server.conn_alloc", refuse);
  // Transport-specific points: armed unconditionally (a point the
  // selected backend never reaches simply never fires).
  inj.Arm("net.uring.enter.eintr", transient);
  inj.Arm("net.uring.recv.short", shortio);
  inj.Arm("net.uring.send.short", shortio);
  inj.Arm("net.shm.read.short", shortio);
  inj.Arm("net.shm.write.short", shortio);
  inj.Arm("net.shm.futex.eintr", transient);
  fault::PointSchedule wake_drop;  // lost doorbell: bounded-wait recovery
  wake_drop.probability = 0.001;   // each drop can cost a full 100ms park
  inj.Arm("net.shm.wake.drop", wake_drop);

  StartServer(ServerOptions{});

  constexpr int kThreads = 4;
  constexpr int kPerThread = 2500;
  std::atomic<uint64_t> ok{0}, unavailable{0}, deadline{0}, transport{0};
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ClientOptions copts;
      copts.retry.max_attempts = 6;
      copts.retry.retry_budget = 1000.0;  // chaos mode: keep retrying
      copts.retry.jitter_seed = seed_ + static_cast<uint64_t>(t);
      auto client = Connect(copts);
      ASSERT_TRUE(client.ok()) << client.status();
      for (int i = 0; i < kPerThread; ++i) {
        const double x = 12.0 * static_cast<double>(i % 997) / 997.0;
        const auto remote = (*client)->PriceAt("pricing", x);
        if (remote.ok()) {
          const auto local = engine_->Price(slot_, x);
          ASSERT_TRUE(local.ok());
          if (*remote != *local) ++mismatches;  // bit-identity, not approx
          ++ok;
        } else if (remote.status().code() == StatusCode::kUnavailable) {
          ++unavailable;
        } else if (remote.status().code() == StatusCode::kDeadlineExceeded) {
          ++deadline;
        } else {
          // Transport exhaustion after max_attempts is the only other
          // sanctioned outcome under injected resets.
          EXPECT_EQ(remote.status().code(), StatusCode::kInternal)
              << remote.status();
          ++transport;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(ok + unavailable + deadline + transport,
            static_cast<uint64_t>(kThreads) * kPerThread);
  // The schedule is noisy, not fatal: the vast majority must succeed.
  EXPECT_GT(ok.load(), static_cast<uint64_t>(kThreads) * kPerThread * 8 / 10);
  EXPECT_GT(inj.TotalFires(), 0u);

  // Faults fire BEFORE the real syscall (or only clamp its length), so
  // framing survives every schedule: zero protocol errors.
  const StatsPayload stats = server_->stats();
  EXPECT_EQ(stats.protocol_errors, 0u);
  // The shard loops keep evaluating armed points after the clients stop,
  // so compare with a floor, not equality.
  EXPECT_GT(stats.faults_injected, 0u);
  EXPECT_FALSE(stats.faults.empty());

  // The same payload must survive the wire: fetch STATS remotely (retries
  // absorb any still-armed faults) and check the resilience block flows.
  ClientOptions sopts;
  sopts.retry.max_attempts = 8;
  auto stats_client = Connect(sopts);
  ASSERT_TRUE(stats_client.ok()) << stats_client.status();
  const auto remote_stats = (*stats_client)->Stats();
  ASSERT_TRUE(remote_stats.ok()) << remote_stats.status();
  EXPECT_GT(remote_stats->faults_injected, 0u);
  EXPECT_FALSE(remote_stats->faults.empty());

  std::printf(
      "[chaos] ok=%llu unavailable=%llu deadline=%llu transport=%llu "
      "fires=%llu\n",
      static_cast<unsigned long long>(ok.load()),
      static_cast<unsigned long long>(unavailable.load()),
      static_cast<unsigned long long>(deadline.load()),
      static_cast<unsigned long long>(transport.load()),
      static_cast<unsigned long long>(inj.TotalFires()));
}

// Rung 2 of the ladder: past the soft connection high-water mark, query
// verbs get fast OVERLOADED answers; dropping back under the mark
// restores service on the SAME connections.
TEST_F(NetChaosTest, ShedLadderAnswersOverloadedAndRecovers) {
  ServerOptions sopts;
  sopts.num_shards = 1;  // deterministic: every connection on one shard
  sopts.shed_connections = 2;
  StartServer(sopts);

  ClientOptions no_retry;
  no_retry.retry.max_attempts = 1;  // surface the shed verbatim
  std::vector<std::unique_ptr<PriceClient>> clients;
  for (int i = 0; i < 4; ++i) {
    auto client = Connect(no_retry);
    ASSERT_TRUE(client.ok()) << client.status();
    clients.push_back(std::move(*client));
  }
  // 4 active > 2 allowed: every query verb is shed...
  for (auto& client : clients) {
    const auto price = client->PriceAt("pricing", 3.0);
    ASSERT_FALSE(price.ok());
    EXPECT_EQ(price.status().code(), StatusCode::kUnavailable);
    EXPECT_EQ(client->telemetry().overload_responses, 1u);
  }
  // ...but STATS still serves, and reports the sheds.
  const auto stats = clients[0]->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GE(stats->requests_shed, 4u);

  // Retreat below the mark; the server notices the closes on its next
  // pass and the surviving connections get real answers again.
  clients.pop_back();
  clients.pop_back();
  const auto local = engine_->Price(slot_, 3.0);
  ASSERT_TRUE(local.ok());
  StatusOr<double> recovered = UnavailableError("not yet");
  for (int i = 0; i < 200 && !recovered.ok(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    recovered = clients[0]->PriceAt("pricing", 3.0);
  }
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(*recovered, *local);
}

// A retrying client treats OVERLOADED as a backoff signal: under a
// persistent shed it retries max_attempts times and then reports
// kUnavailable with the exhaustion recorded in telemetry.
TEST_F(NetChaosTest, RetryingClientBacksOffOnOverloadUntilExhausted) {
  ServerOptions sopts;
  sopts.num_shards = 1;
  sopts.shed_connections = 1;
  StartServer(sopts);

  ClientOptions copts;
  copts.retry.max_attempts = 4;
  copts.retry.base_backoff_ms = 1;
  copts.retry.max_backoff_ms = 5;
  auto a = Connect(copts);
  ASSERT_TRUE(a.ok()) << a.status();
  auto b = Connect(copts);
  ASSERT_TRUE(b.ok()) << b.status();
  // Two active > one allowed: the shed never lifts, so the retry ladder
  // runs its full course.
  const auto price = (*a)->PriceAt("pricing", 2.0);
  ASSERT_FALSE(price.ok());
  EXPECT_EQ(price.status().code(), StatusCode::kUnavailable);
  const ClientTelemetry& t = (*a)->telemetry();
  EXPECT_EQ(t.overload_responses, 4u);  // one per attempt
  EXPECT_EQ(t.retries_attempted, 3u);   // attempts 2..4
  EXPECT_EQ(t.retries_exhausted, 1u);
  EXPECT_LT((*a)->retry_budget(), copts.retry.retry_budget);
}

// Deadline-aware dropping: an injected stall in the batch path ages the
// queued PRICE_AT past request_deadline_ms, and the server answers
// kDeadlineExceeded instead of a stale price.
TEST_F(NetChaosTest, DeadlineDropsUnderInjectedBatchStall) {
  fault::FaultInjector& inj = fault::FaultInjector::Global();
  fault::PointSchedule stall;
  stall.delay_micros = 30000;  // 30ms against a 10ms deadline
  stall.max_fires = 1;
  inj.Arm("net.server.batch.delay", stall);

  ServerOptions sopts;
  sopts.num_shards = 1;
  sopts.request_deadline_ms = 10;
  StartServer(sopts);

  ClientOptions no_retry;
  no_retry.retry.max_attempts = 1;
  auto client = Connect(no_retry);
  ASSERT_TRUE(client.ok()) << client.status();
  const auto dropped = (*client)->PriceAt("pricing", 1.5);
  ASSERT_FALSE(dropped.ok());
  EXPECT_EQ(dropped.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(server_->stats().deadline_drops, 1u);

  // The stall's fire budget is spent: the very next query is served, and
  // bit-identically.
  const auto price = (*client)->PriceAt("pricing", 1.5);
  ASSERT_TRUE(price.ok()) << price.status();
  const auto local = engine_->Price(slot_, 1.5);
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(*price, *local);
}

// Bounded drain under injected stalls: every server-side send hits an
// injected EAGAIN, so pending responses can never flush — not even into
// kernel buffers. Shutdown() must still return within drain_timeout_ms
// and hard-kill (and count) the undrainable connection.
TEST_F(NetChaosTest, ShutdownDrainIsBoundedUnderInjectedSendStall) {
  fault::FaultInjector& inj = fault::FaultInjector::Global();
  fault::PointSchedule stall;  // probability 1, unbounded: a total stall
  inj.Arm("net.send.eagain", stall);

  ServerOptions sopts;
  sopts.num_shards = 1;
  sopts.drain_timeout_ms = 300;
  StartServer(sopts);

  // Raw socket below PriceClient (its sends are real syscalls, so only
  // the SERVER is stalled): pipeline requests, never read a response.
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(
      connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
  std::string wire;
  for (uint64_t i = 0; i < 8; ++i) {
    Request request;
    request.verb = Verb::kPriceAt;
    request.request_id = i + 1;
    request.args.assign(1000, 2.5);
    EncodeRequest(request, &wire);
  }
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = send(fd, wire.data() + sent, wire.size() - sent, 0);
    ASSERT_GT(n, 0) << std::strerror(errno);
    sent += static_cast<size_t>(n);
  }
  // Let the server read and price; the responses wedge behind the stall.
  const auto wedged = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(2000);
  while (server_->stats().requests_ok < 8 &&
         std::chrono::steady_clock::now() < wedged) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server_->stats().requests_ok, 8u);
  EXPECT_GT(server_->stats().write_queue_peak_bytes, 0u);

  const auto start = std::chrono::steady_clock::now();
  server_->Shutdown();
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();
  // Bounded: the drain deadline plus generous scheduling slack — never
  // "until the peer reads".
  EXPECT_LT(elapsed_ms, 3000.0);
  EXPECT_GE(server_->stats().connections_killed, 1u);
  close(fd);
}

// Publish-path fault points: an injected compile/publish failure rolls
// back cleanly — the old snapshot keeps serving remote queries, and the
// retried publish lands.
TEST_F(NetChaosTest, RepublishSurvivesInjectedPublishFailures) {
  fault::FaultInjector& inj = fault::FaultInjector::Global();
  fault::PointSchedule once;
  once.max_fires = 1;
  inj.Arm("serving.compile.alloc", once);
  inj.Arm("serving.publish.fail", once);

  StartServer(ServerOptions{});
  ClientOptions copts;
  auto client = Connect(copts);
  ASSERT_TRUE(client.ok()) << client.status();
  const auto before = engine_->Price(slot_, 3.0);
  ASSERT_TRUE(before.ok());

  // First attempt dies on the injected allocation failure, the second on
  // the injected publish failure; the curve serves the OLD prices
  // throughout.
  for (int attempt = 0; attempt < 2; ++attempt) {
    const auto failed = registry_.Publish("pricing", MakeVariant(4));
    ASSERT_FALSE(failed.ok()) << "attempt " << attempt;
    const auto price = (*client)->PriceAt("pricing", 3.0);
    ASSERT_TRUE(price.ok()) << price.status();
    EXPECT_EQ(*price, *before);
  }
  EXPECT_EQ(inj.Fires("serving.compile.alloc"), 1u);
  EXPECT_EQ(inj.Fires("serving.publish.fail"), 1u);

  // Fault budgets spent: the retry lands and remote queries flip to the
  // new curve's exact prices.
  const auto republished = registry_.Publish("pricing", MakeVariant(4));
  ASSERT_TRUE(republished.ok()) << republished.status();
  const auto after_local = engine_->Price(*republished, 3.0);
  ASSERT_TRUE(after_local.ok());
  ASSERT_NE(*after_local, *before);
  const auto after_remote = (*client)->PriceAt("pricing", 3.0);
  ASSERT_TRUE(after_remote.ok()) << after_remote.status();
  EXPECT_EQ(*after_remote, *after_local);
}

// Satellite 1: the bounded non-blocking connect. A listener whose accept
// queue is wedged drops SYNs, and the old blocking client would hang for
// minutes of kernel retransmits; the resilient one returns
// kDeadlineExceeded within connect_timeout_ms.
TEST_F(NetChaosTest, ConnectTimesOutAgainstWedgedBacklog) {
  const int listener = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(
      bind(listener, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  ASSERT_EQ(listen(listener, 1), 0);  // tiny backlog, never accepted
  socklen_t len = sizeof(addr);
  ASSERT_EQ(getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const uint16_t port = ntohs(addr.sin_port);

  // Fill the accept queue so further SYNs are dropped.
  std::vector<int> fillers;
  for (int i = 0; i < 4; ++i) {
    const int f = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    ASSERT_GE(f, 0);
    (void)connect(f, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    fillers.push_back(f);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  ClientOptions copts;
  copts.connect_timeout_ms = 200;
  const auto start = std::chrono::steady_clock::now();
  const auto client = PriceClient::Connect("127.0.0.1", port, copts);
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kDeadlineExceeded)
      << client.status();
  EXPECT_LT(elapsed_ms, 2000.0);  // bounded, not a kernel-retransmit hang

  for (const int f : fillers) close(f);
  close(listener);
}

// Satellite for DESIGN.md §5i: a fault-stormed PURCHASE mix. Four client
// threads interleave PRICE_AT with BUYs (client-chosen txn ids) while the
// full short-IO/reset/EINTR schedule fires on both ends. Invariants:
//   - every successful PRICE_AT is bit-identical to the engine oracle;
//   - every COMPLETED sale replays bit-identically afterwards (REPLAY
//     over a clean connection reproduces the delivered weight bytes);
//   - no sale is double-charged: the server's revenue equals the sum of
//     distinct recorded sale prices even though the retry ladder may
//     resend any BUY several times, and explicitly re-buying every
//     completed txn changes nothing.
TEST_F(NetChaosTest, PurchaseMixUnderFaultStormReplaysAndChargesOnce) {
  fault::FaultInjector& inj = fault::FaultInjector::Global();
  fault::PointSchedule transient;
  transient.probability = 0.05;
  inj.Arm("net.recv.eintr", transient);
  inj.Arm("net.recv.eagain", transient);
  inj.Arm("net.send.eintr", transient);
  inj.Arm("net.send.eagain", transient);
  inj.Arm("net.epoll.eintr", transient);
  fault::PointSchedule shortio;
  shortio.probability = 0.2;
  inj.Arm("net.recv.short", shortio);
  inj.Arm("net.send.short", shortio);
  inj.Arm("net.uring.enter.eintr", transient);
  inj.Arm("net.uring.recv.short", shortio);
  inj.Arm("net.uring.send.short", shortio);
  inj.Arm("net.shm.read.short", shortio);
  inj.Arm("net.shm.write.short", shortio);
  inj.Arm("net.shm.futex.eintr", transient);
  fault::PointSchedule reset;  // the dangerous one for idempotency:
  reset.probability = 0.002;   // a reset AFTER the sale commits forces a
  inj.Arm("net.recv.reset", reset);  // reconnect + re-BUY of the same txn
  inj.Arm("net.send.reset", reset);

  StartServer(ServerOptions{});

  struct CompletedSale {
    uint64_t txn_id;
    double price;
    std::vector<double> weights;
  };
  constexpr int kThreads = 4;
  constexpr int kPerThread = 400;
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::vector<CompletedSale>> sales(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ClientOptions copts;
      copts.retry.max_attempts = 6;
      copts.retry.retry_budget = 1000.0;
      copts.retry.jitter_seed = seed_ + 100 + static_cast<uint64_t>(t);
      auto client = Connect(copts);
      ASSERT_TRUE(client.ok()) << client.status();
      for (int i = 0; i < kPerThread; ++i) {
        if (i % 4 != 0) {  // 75% PRICE_AT, 25% BUY
          const double x = 12.0 * static_cast<double>(i % 997) / 997.0;
          const auto remote = (*client)->PriceAt("pricing", x);
          if (remote.ok()) {
            const auto local = engine_->Price(slot_, x);
            ASSERT_TRUE(local.ok());
            if (*remote != *local) ++mismatches;
          }
          continue;
        }
        // Deterministic thread-unique txn ids make the run replayable
        // under MBP_CHAOS_SEED.
        const uint64_t txn =
            1 + static_cast<uint64_t>(t) * 100000 + static_cast<uint64_t>(i);
        const double delta =
            0.125 + 0.875 * static_cast<double>(i % 31) / 31.0;
        const auto sale = (*client)->Buy("pricing", delta, txn);
        if (sale.ok()) {
          sales[t].push_back(
              CompletedSale{txn, sale->record.price, sale->weights});
        }
        // A failed BUY may or may not have committed server-side — that
        // is exactly what the revenue reconciliation below settles.
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0u);

  // Quiesce the injector before reconciliation: the checks below must not
  // themselves fail on a fault.
  inj.Reset();
  ClientOptions clean;
  clean.retry.max_attempts = 8;
  auto verifier = Connect(clean);
  ASSERT_TRUE(verifier.ok()) << verifier.status();

  size_t completed = 0;
  for (const auto& per_thread : sales) completed += per_thread.size();
  ASSERT_GT(completed, 0u) << "the storm must complete some sales";

  // (1) Bit-exact replay of every completed sale over a clean connection.
  for (const auto& per_thread : sales) {
    for (const CompletedSale& sale : per_thread) {
      const auto replay = (*verifier)->Replay(sale.txn_id);
      ASSERT_TRUE(replay.ok()) << replay.status();
      ASSERT_EQ(replay->weights.size(), sale.weights.size());
      EXPECT_EQ(0, std::memcmp(replay->weights.data(), sale.weights.data(),
                               sale.weights.size() * sizeof(double)))
          << "txn " << sale.txn_id << " replayed different bytes";
    }
  }

  // (2) No double charge. Revenue reconciles against the ENGINE ledger
  // (buys_ok counts first deliveries; each recorded txn charged exactly
  // once), and the client-side sales are a subset of it: a retry that
  // resent a committed BUY re-delivered the record instead of re-selling.
  const auto stats = (*verifier)->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GE(stats->buys_ok, completed);
  EXPECT_EQ(stats->buys_ok, stats->transactions_recorded);
  const double revenue_after_storm = stats->revenue;

  // Explicitly re-buy every completed txn: all must dedupe, so revenue
  // and buys_ok cannot move.
  for (const auto& per_thread : sales) {
    for (const CompletedSale& sale : per_thread) {
      const auto again = (*verifier)->Buy("pricing", 0.5, sale.txn_id);
      ASSERT_TRUE(again.ok()) << again.status();
      EXPECT_DOUBLE_EQ(again->record.price, sale.price);
    }
  }
  const auto stats2 = (*verifier)->Stats();
  ASSERT_TRUE(stats2.ok()) << stats2.status();
  EXPECT_EQ(stats2->buys_ok, stats->buys_ok);
  EXPECT_EQ(std::bit_cast<uint64_t>(stats2->revenue),
            std::bit_cast<uint64_t>(revenue_after_storm))
      << "re-buying recorded transactions must charge nothing";

  std::printf("[chaos] purchase mix: %zu sales completed client-side, "
              "%llu recorded server-side, revenue=%.3f\n",
              completed,
              static_cast<unsigned long long>(stats->buys_ok),
              revenue_after_storm);
}

// A transient client-side transport fault (injected send reset) is
// absorbed by one reconnect + retry; the answer is still bit-identical.
TEST_F(NetChaosTest, TransientTransportFaultIsRetriedTransparently) {
  StartServer(ServerOptions{});
  ClientOptions copts;
  copts.retry.base_backoff_ms = 1;
  auto client = Connect(copts);
  ASSERT_TRUE(client.ok()) << client.status();

  fault::FaultInjector& inj = fault::FaultInjector::Global();
  fault::PointSchedule once;
  once.max_fires = 1;
  inj.Arm("net.send.reset", once);

  const auto remote = (*client)->PriceAt("pricing", 5.0);
  ASSERT_TRUE(remote.ok()) << remote.status();
  const auto local = engine_->Price(slot_, 5.0);
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(*remote, *local);
  const ClientTelemetry& t = (*client)->telemetry();
  EXPECT_EQ(t.transport_errors, 1u);
  EXPECT_EQ(t.retries_attempted, 1u);
  EXPECT_EQ(t.reconnects, 1u);
}

}  // namespace
}  // namespace mbp::net

// Counting-allocator proof of the allocation-free request path: after
// warm-up, serving PRICE_AT requests must perform ZERO heap allocations
// on the server side (shard threads). This binary replaces the global
// operator new/delete with counters — per thread and process-wide — so
// server-side allocations are (total delta) − (this-thread delta) while
// the only other live thread is the shard serving our connection.
//
// This test has its own binary (see tests/CMakeLists.txt): the operator
// new replacement is process-global and must not leak into other suites.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pricing_function.h"
#include "net/protocol.h"
#include "net/server.h"
#include "serving/price_query_engine.h"
#include "serving/snapshot_registry.h"

namespace {

std::atomic<uint64_t> g_total_allocs{0};
thread_local uint64_t t_thread_allocs = 0;

void* CountedAlloc(std::size_t size, std::size_t align) {
  g_total_allocs.fetch_add(1, std::memory_order_relaxed);
  ++t_thread_allocs;
  void* p = align > alignof(std::max_align_t)
                ? std::aligned_alloc(align, (size + align - 1) / align * align)
                : std::malloc(size);
  if (p == nullptr) std::abort();
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  return CountedAlloc(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size) {
  return CountedAlloc(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace mbp::net {
namespace {

using core::PiecewiseLinearPricing;
using serving::PriceQueryEngine;
using serving::SnapshotRegistry;

int RawConnect(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& wire) {
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = send(fd, wire.data() + sent, wire.size() - sent, 0);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

// Reads the next response frame (blocking socket) and checks its id.
// `buf` persists across calls: pipelined responses often land in one
// recv, and the undecoded remainder must carry to the next call.
bool ReadResponse(int fd, std::vector<uint8_t>* buf, uint64_t want_id) {
  uint8_t chunk[4096];
  while (true) {
    Response response;
    const auto consumed =
        DecodeResponse(buf->data(), buf->size(), &response);
    if (!consumed.ok()) return false;
    if (*consumed > 0) {
      buf->erase(buf->begin(), buf->begin() + *consumed);
      return response.code == StatusCode::kOk &&
             response.request_id == want_id;
    }
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buf->insert(buf->end(), chunk, chunk + n);
  }
}

TEST(ZeroAllocSanityTest, CountingAllocatorObservesHeapUse) {
  const uint64_t before = t_thread_allocs;
  auto* v = new std::vector<int>(100);
  delete v;
  EXPECT_GT(t_thread_allocs, before)
      << "operator new replacement is not in effect; the steady-state "
         "assertion below would be vacuous";
}

TEST(ZeroAllocTest, SteadyStatePriceAtPathMakesNoServerHeapAllocations) {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "sanitizer runtimes own the allocator";
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  GTEST_SKIP() << "sanitizer runtimes own the allocator";
#endif
#endif
  SnapshotRegistry registry;
  auto published = registry.Publish(
      "pricing", PiecewiseLinearPricing::Create(
                     {{1.0, 10.0}, {2.0, 18.0}, {4.0, 30.0}, {8.0, 40.0}})
                     .value());
  ASSERT_TRUE(published.ok());
  PriceQueryEngine engine(&registry);
  ServerOptions options;
  // One shard, one connection: every allocation NOT made by this thread
  // during the measured window is a server-side allocation. Batches stay
  // far below min_pool_batch, so the ThreadPool never wakes.
  options.num_shards = 1;
  options.default_curve_id = "pricing";
  auto server = PriceServer::Start(&engine, options);
  ASSERT_TRUE(server.ok()) << server.status();

  const int fd = RawConnect((*server)->port());
  ASSERT_GE(fd, 0);

  // One pipelined burst shape reused for every roundtrip: two PRICE_AT
  // requests (different arg counts so both the 4-lane body and the tail
  // run), ids distinguish the frames.
  std::string wire;
  Request first;
  first.verb = Verb::kPriceAt;
  first.request_id = 1;
  first.args = {0.5, 1.5, 3.0, 5.0, 7.0};
  EncodeRequest(first, &wire);
  Request second;
  second.verb = Verb::kPriceAt;
  second.request_id = 2;
  second.args = {2.5};
  EncodeRequest(second, &wire);

  std::vector<uint8_t> buf;
  buf.reserve(4096);
  const auto roundtrip = [&]() {
    ASSERT_TRUE(SendAll(fd, wire));
    ASSERT_TRUE(ReadResponse(fd, &buf, 1));
    ASSERT_TRUE(ReadResponse(fd, &buf, 2));
  };

  // Warm-up: connection buffers, arenas, registry index, epoll wiring,
  // and every std::string capacity reach steady state.
  for (int i = 0; i < 512; ++i) roundtrip();

  const uint64_t total_before = g_total_allocs.load();
  const uint64_t mine_before = t_thread_allocs;
  constexpr int kMeasured = 2000;
  for (int i = 0; i < kMeasured; ++i) roundtrip();
  const uint64_t total_delta = g_total_allocs.load() - total_before;
  const uint64_t my_delta = t_thread_allocs - mine_before;

  EXPECT_EQ(total_delta - my_delta, 0u)
      << "server-side heap allocations during " << kMeasured
      << " steady-state roundtrips (total=" << total_delta
      << ", client-thread=" << my_delta << ")";

  close(fd);
  (*server)->Shutdown();
}

TEST(ZeroAllocTest, MultiCurveSteadyStateMakesNoServerHeapAllocations) {
  // The marketplace-scale claim (DESIGN.md §5g): heterogeneous traffic
  // across MANY distinct curves must stay allocation-free too — id
  // resolution is a lock-free intern probe, and the per-pass curve→batch
  // map lives in the shard's scratch arena.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "sanitizer runtimes own the allocator";
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  GTEST_SKIP() << "sanitizer runtimes own the allocator";
#endif
#endif
  constexpr size_t kCurves = 64;
  SnapshotRegistry registry;
  std::vector<std::string> ids;
  for (size_t i = 0; i < kCurves; ++i) {
    ids.push_back("listing-" + std::to_string(i));
    const double s = 1.0 + static_cast<double>(i) * 0.25;
    auto published = registry.Publish(
        ids.back(),
        PiecewiseLinearPricing::Create(
            {{1.0, 10.0 * s}, {2.0, 18.0 * s}, {4.0, 30.0 * s}})
            .value());
    ASSERT_TRUE(published.ok());
  }
  PriceQueryEngine engine(&registry);
  ServerOptions options;
  options.num_shards = 1;
  auto server = PriceServer::Start(&engine, options);
  ASSERT_TRUE(server.ok()) << server.status();

  const int fd = RawConnect((*server)->port());
  ASSERT_GE(fd, 0);

  // One pipelined burst per roundtrip touching 8 DIFFERENT curves, the
  // window sliding by 8 each roundtrip so all 64 distinct ids cycle
  // through the shard's batch map continuously.
  std::vector<std::string> wires(kCurves / 8);
  for (size_t w = 0; w < wires.size(); ++w) {
    for (uint64_t j = 0; j < 8; ++j) {
      Request request;
      request.verb = Verb::kPriceAt;
      request.request_id = j + 1;
      request.curve_id = ids[(w * 8 + j) % kCurves];
      request.args = {0.5, 1.5, 3.0};
      EncodeRequest(request, &wires[w]);
    }
  }
  std::vector<uint8_t> buf;
  buf.reserve(8192);
  size_t window = 0;
  const auto roundtrip = [&]() {
    ASSERT_TRUE(SendAll(fd, wires[window]));
    for (uint64_t j = 0; j < 8; ++j) {
      ASSERT_TRUE(ReadResponse(fd, &buf, j + 1));
    }
    window = (window + 1) % wires.size();
  };

  // Warm-up covers every window shape, so all 64 curve slots, every batch
  // map capacity step, and the response buffers reach steady state.
  for (int i = 0; i < 512; ++i) roundtrip();

  const uint64_t total_before = g_total_allocs.load();
  const uint64_t mine_before = t_thread_allocs;
  constexpr int kMeasured = 2000;
  for (int i = 0; i < kMeasured; ++i) roundtrip();
  const uint64_t total_delta = g_total_allocs.load() - total_before;
  const uint64_t my_delta = t_thread_allocs - mine_before;

  EXPECT_EQ(total_delta - my_delta, 0u)
      << "server-side heap allocations during " << kMeasured
      << " steady-state multi-curve roundtrips (total=" << total_delta
      << ", client-thread=" << my_delta << ") across " << kCurves
      << " distinct curves";

  close(fd);
  (*server)->Shutdown();
}

}  // namespace
}  // namespace mbp::net

#include "data/dataset.h"

#include <limits>

#include <gtest/gtest.h>

namespace mbp::data {
namespace {

linalg::Matrix SmallFeatures() {
  return linalg::Matrix{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
}

TEST(DatasetTest, CreateRegression) {
  auto dataset = Dataset::Create(SmallFeatures(),
                                 linalg::Vector{1.0, 2.0, 3.0},
                                 TaskType::kRegression);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->num_examples(), 3u);
  EXPECT_EQ(dataset->num_features(), 2u);
  EXPECT_EQ(dataset->task(), TaskType::kRegression);
  EXPECT_DOUBLE_EQ(dataset->Target(1), 2.0);
  EXPECT_DOUBLE_EQ(dataset->ExampleFeatures(2)[1], 6.0);
}

TEST(DatasetTest, RejectsShapeMismatch) {
  auto dataset = Dataset::Create(SmallFeatures(), linalg::Vector{1.0, 2.0},
                                 TaskType::kRegression);
  EXPECT_EQ(dataset.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetTest, RejectsEmpty) {
  EXPECT_FALSE(Dataset::Create(linalg::Matrix(), linalg::Vector(),
                               TaskType::kRegression)
                   .ok());
}

TEST(DatasetTest, ClassificationRequiresPlusMinusOne) {
  auto bad = Dataset::Create(SmallFeatures(), linalg::Vector{1.0, 0.0, -1.0},
                             TaskType::kBinaryClassification);
  EXPECT_FALSE(bad.ok());
  auto good = Dataset::Create(SmallFeatures(),
                              linalg::Vector{1.0, -1.0, -1.0},
                              TaskType::kBinaryClassification);
  EXPECT_TRUE(good.ok());
}

TEST(DatasetTest, RejectsNonFiniteTargets) {
  auto dataset = Dataset::Create(
      SmallFeatures(),
      linalg::Vector{1.0, std::numeric_limits<double>::quiet_NaN(), 3.0},
      TaskType::kRegression);
  EXPECT_FALSE(dataset.ok());
}

TEST(DatasetTest, SubsetPreservesOrderAndTask) {
  auto dataset = Dataset::Create(SmallFeatures(),
                                 linalg::Vector{1.0, 2.0, 3.0},
                                 TaskType::kRegression);
  ASSERT_TRUE(dataset.ok());
  Dataset subset = dataset->Subset({2, 0});
  EXPECT_EQ(subset.num_examples(), 2u);
  EXPECT_DOUBLE_EQ(subset.Target(0), 3.0);
  EXPECT_DOUBLE_EQ(subset.Target(1), 1.0);
  EXPECT_DOUBLE_EQ(subset.ExampleFeatures(0)[0], 5.0);
  EXPECT_EQ(subset.task(), TaskType::kRegression);
}

TEST(DatasetTest, TaskTypeNames) {
  EXPECT_EQ(TaskTypeToString(TaskType::kRegression), "regression");
  EXPECT_EQ(TaskTypeToString(TaskType::kBinaryClassification),
            "classification");
}

}  // namespace
}  // namespace mbp::data

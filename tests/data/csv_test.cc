#include "data/csv.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace mbp::data {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(CsvTest, ReadsSimpleFile) {
  const std::string path = TempPath("simple.csv");
  WriteFile(path, "a,b,target\n1,2,3\n4,5,6\n");
  auto dataset = ReadCsv(path);
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_EQ(dataset->num_examples(), 2u);
  EXPECT_EQ(dataset->num_features(), 2u);
  EXPECT_DOUBLE_EQ(dataset->Target(0), 3.0);
  EXPECT_DOUBLE_EQ(dataset->ExampleFeatures(1)[0], 4.0);
}

TEST_F(CsvTest, TargetColumnSelection) {
  const std::string path = TempPath("target_first.csv");
  WriteFile(path, "y,a,b\n9,1,2\n8,3,4\n");
  CsvReadOptions options;
  options.target_column = 0;
  auto dataset = ReadCsv(path, options);
  ASSERT_TRUE(dataset.ok());
  EXPECT_DOUBLE_EQ(dataset->Target(0), 9.0);
  EXPECT_DOUBLE_EQ(dataset->ExampleFeatures(0)[0], 1.0);
}

TEST_F(CsvTest, NoHeaderOption) {
  const std::string path = TempPath("no_header.csv");
  WriteFile(path, "1,2,3\n4,5,6\n");
  CsvReadOptions options;
  options.has_header = false;
  auto dataset = ReadCsv(path, options);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->num_examples(), 2u);
}

TEST_F(CsvTest, SkipsBlankLines) {
  const std::string path = TempPath("blanks.csv");
  WriteFile(path, "a,y\n\n1,2\n\n3,4\n");
  auto dataset = ReadCsv(path);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->num_examples(), 2u);
}

TEST_F(CsvTest, HandlesWhitespaceAndCrlf) {
  const std::string path = TempPath("crlf.csv");
  WriteFile(path, "a,y\r\n 1 , 2 \r\n");
  auto dataset = ReadCsv(path);
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_DOUBLE_EQ(dataset->Target(0), 2.0);
}

TEST_F(CsvTest, RejectsMissingFile) {
  EXPECT_EQ(ReadCsv("/nonexistent/file.csv").status().code(),
            StatusCode::kNotFound);
}

TEST_F(CsvTest, RejectsMalformedCell) {
  const std::string path = TempPath("bad_cell.csv");
  WriteFile(path, "a,y\n1,abc\n");
  auto dataset = ReadCsv(path);
  EXPECT_EQ(dataset.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(dataset.status().message().find("line 2"), std::string::npos);
}

TEST_F(CsvTest, RejectsRaggedRows) {
  const std::string path = TempPath("ragged.csv");
  WriteFile(path, "a,b,y\n1,2,3\n4,5\n");
  EXPECT_EQ(ReadCsv(path).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, RejectsSingleColumn) {
  const std::string path = TempPath("single.csv");
  WriteFile(path, "y\n1\n");
  EXPECT_EQ(ReadCsv(path).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, RejectsHeaderOnly) {
  const std::string path = TempPath("empty.csv");
  WriteFile(path, "a,y\n");
  EXPECT_EQ(ReadCsv(path).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, RejectsOutOfRangeTargetColumn) {
  const std::string path = TempPath("range.csv");
  WriteFile(path, "a,y\n1,2\n");
  CsvReadOptions options;
  options.target_column = 5;
  EXPECT_EQ(ReadCsv(path, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, RoundTripPreservesData) {
  linalg::Matrix features{{1.5, -2.25}, {3.0, 4.125}};
  const Dataset original =
      Dataset::Create(std::move(features), linalg::Vector{0.5, -0.75},
                      TaskType::kRegression)
          .value();
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteCsv(original, path).ok());
  auto loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_examples(), 2u);
  ASSERT_EQ(loaded->num_features(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_DOUBLE_EQ(loaded->Target(i), original.Target(i));
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_DOUBLE_EQ(loaded->ExampleFeatures(i)[j],
                       original.ExampleFeatures(i)[j]);
    }
  }
}

TEST_F(CsvTest, ClassificationTaskOption) {
  const std::string path = TempPath("class.csv");
  WriteFile(path, "a,y\n1,1\n2,-1\n");
  CsvReadOptions options;
  options.task = TaskType::kBinaryClassification;
  auto dataset = ReadCsv(path, options);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->task(), TaskType::kBinaryClassification);
}

}  // namespace
}  // namespace mbp::data

#include "data/synthetic.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/vector_ops.h"

namespace mbp::data {
namespace {

TEST(Simulated1Test, ShapesAndTask) {
  Simulated1Options options;
  options.num_examples = 500;
  options.num_features = 8;
  auto dataset = GenerateSimulated1(options);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->num_examples(), 500u);
  EXPECT_EQ(dataset->num_features(), 8u);
  EXPECT_EQ(dataset->task(), TaskType::kRegression);
}

TEST(Simulated1Test, DeterministicForSeed) {
  Simulated1Options options;
  options.num_examples = 50;
  options.seed = 77;
  auto a = GenerateSimulated1(options);
  auto b = GenerateSimulated1(options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->features(), b->features());
  EXPECT_EQ(a->targets(), b->targets());
}

TEST(Simulated1Test, DifferentSeedsDiffer) {
  Simulated1Options a_options, b_options;
  a_options.num_examples = b_options.num_examples = 50;
  a_options.seed = 1;
  b_options.seed = 2;
  auto a = GenerateSimulated1(a_options);
  auto b = GenerateSimulated1(b_options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(a->features() == b->features());
}

TEST(Simulated1Test, NoiselessTargetsAreLinear) {
  // With zero noise the dataset is exactly linear, so a perfect linear fit
  // exists: targets equal the inner product with one fixed vector. Check
  // consistency across examples via pairwise ratios in a 1-d case.
  Simulated1Options options;
  options.num_examples = 20;
  options.num_features = 1;
  options.noise_stddev = 0.0;
  auto dataset = GenerateSimulated1(options);
  ASSERT_TRUE(dataset.ok());
  for (size_t i = 0; i < dataset->num_examples(); ++i) {
    const double x = dataset->ExampleFeatures(i)[0];
    const double y = dataset->Target(i);
    // y = w*x with |w| = 1 in 1-d (unit sphere), so |y| == |x|.
    EXPECT_NEAR(std::fabs(y), std::fabs(x), 1e-12);
  }
}

TEST(Simulated1Test, RejectsBadOptions) {
  Simulated1Options options;
  options.num_examples = 0;
  EXPECT_FALSE(GenerateSimulated1(options).ok());
  options.num_examples = 10;
  options.noise_stddev = -1.0;
  EXPECT_FALSE(GenerateSimulated1(options).ok());
}

TEST(Simulated2Test, ShapesAndLabels) {
  Simulated2Options options;
  options.num_examples = 500;
  options.num_features = 6;
  auto dataset = GenerateSimulated2(options);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->task(), TaskType::kBinaryClassification);
  size_t positives = 0;
  for (size_t i = 0; i < dataset->num_examples(); ++i) {
    const double y = dataset->Target(i);
    EXPECT_TRUE(y == 1.0 || y == -1.0);
    if (y == 1.0) ++positives;
  }
  // Classes are roughly balanced (the hyperplane passes through the
  // origin of a symmetric distribution).
  EXPECT_GT(positives, 150u);
  EXPECT_LT(positives, 350u);
}

TEST(Simulated2Test, LabelNoiseRateMatchesOption) {
  // With keep probability 1.0, labels are exactly sign(w.x); compare the
  // label agreement under keep = 1.0 and keep = 0.9 using the same seed
  // (same features and hyperplane).
  Simulated2Options clean;
  clean.num_examples = 5000;
  clean.label_keep_probability = 1.0;
  clean.seed = 11;
  Simulated2Options noisy = clean;
  noisy.label_keep_probability = 0.9;
  auto a = GenerateSimulated2(clean);
  auto b = GenerateSimulated2(noisy);
  ASSERT_TRUE(a.ok() && b.ok());
  // Feature draws consume identical RNG streams interleaved with the
  // Bernoulli draw, so features coincide only when the generator consumes
  // the same number of samples per row — which it does (one Bernoulli per
  // row in both cases).
  EXPECT_EQ(a->features(), b->features());
  size_t disagreements = 0;
  for (size_t i = 0; i < a->num_examples(); ++i) {
    if (a->Target(i) != b->Target(i)) ++disagreements;
  }
  const double rate =
      static_cast<double>(disagreements) / static_cast<double>(5000);
  EXPECT_NEAR(rate, 0.1, 0.02);
}

TEST(Simulated2Test, RejectsBadKeepProbability) {
  Simulated2Options options;
  options.label_keep_probability = 0.3;
  EXPECT_FALSE(GenerateSimulated2(options).ok());
  options.label_keep_probability = 1.5;
  EXPECT_FALSE(GenerateSimulated2(options).ok());
}

}  // namespace
}  // namespace mbp::data

#include "data/sparse_dataset.h"

#include <fstream>
#include <limits>

#include <gtest/gtest.h>

namespace mbp::data {
namespace {

linalg::SparseMatrix TinyFeatures() {
  return linalg::SparseMatrix::FromTriplets(
             3, 4, {{0, 0, 1.0}, {1, 2, 2.0}, {2, 3, -1.0}})
      .value();
}

TEST(SparseDatasetTest, CreateValidates) {
  auto good = SparseDataset::Create(TinyFeatures(),
                                    linalg::Vector{1.0, -1.0, 1.0},
                                    TaskType::kBinaryClassification);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->num_examples(), 3u);
  EXPECT_EQ(good->num_features(), 4u);

  EXPECT_FALSE(SparseDataset::Create(TinyFeatures(),
                                     linalg::Vector{1.0, 2.0},
                                     TaskType::kRegression)
                   .ok());
  EXPECT_FALSE(SparseDataset::Create(TinyFeatures(),
                                     linalg::Vector{1.0, 0.5, -1.0},
                                     TaskType::kBinaryClassification)
                   .ok());
}

TEST(SparseDatasetTest, ToDenseMatches) {
  const SparseDataset sparse =
      SparseDataset::Create(TinyFeatures(), linalg::Vector{1.0, 2.0, 3.0},
                            TaskType::kRegression)
          .value();
  auto dense = sparse.ToDense();
  ASSERT_TRUE(dense.ok());
  EXPECT_EQ(dense->num_examples(), 3u);
  EXPECT_EQ(dense->num_features(), 4u);
  EXPECT_DOUBLE_EQ(dense->ExampleFeatures(1)[2], 2.0);
  EXPECT_DOUBLE_EQ(dense->ExampleFeatures(0)[1], 0.0);
  EXPECT_DOUBLE_EQ(dense->Target(2), 3.0);
}

TEST(SparseDatasetTest, ToDenseCapGuards) {
  const SparseDataset sparse =
      SparseDataset::Create(TinyFeatures(), linalg::Vector{1.0, 2.0, 3.0},
                            TaskType::kRegression)
          .value();
  EXPECT_EQ(sparse.ToDense(5).status().code(),
            StatusCode::kResourceExhausted);
}

class LibSvmTest : public ::testing::Test {
 protected:
  std::string WriteFile(const std::string& name,
                        const std::string& content) {
    const std::string path = testing::TempDir() + "/" + name;
    std::ofstream out(path);
    out << content;
    return path;
  }
};

TEST_F(LibSvmTest, ParsesClassificationFile) {
  const std::string path = WriteFile(
      "tiny.libsvm",
      "+1 1:0.5 3:1.5\n-1 2:2.0\n+1 1:1.0 2:-0.5 3:0.25\n");
  auto data = ReadLibSvm(path, TaskType::kBinaryClassification);
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_EQ(data->num_examples(), 3u);
  EXPECT_EQ(data->num_features(), 3u);  // inferred from max index
  EXPECT_DOUBLE_EQ(data->Target(0), 1.0);
  EXPECT_DOUBLE_EQ(data->Target(1), -1.0);
  // 1-based index 3 -> column 2.
  EXPECT_DOUBLE_EQ(data->features().ToDense()(0, 2), 1.5);
  EXPECT_DOUBLE_EQ(data->features().ToDense()(1, 1), 2.0);
}

TEST_F(LibSvmTest, ZeroOneLabelsRemapToMinusPlusOne) {
  const std::string path = WriteFile("zeroone.libsvm", "1 1:1\n0 1:2\n");
  auto data = ReadLibSvm(path, TaskType::kBinaryClassification);
  ASSERT_TRUE(data.ok());
  EXPECT_DOUBLE_EQ(data->Target(0), 1.0);
  EXPECT_DOUBLE_EQ(data->Target(1), -1.0);
}

TEST_F(LibSvmTest, RegressionLabelsAreArbitrary) {
  const std::string path = WriteFile("reg.libsvm", "3.75 1:1\n-0.5 2:1\n");
  auto data = ReadLibSvm(path, TaskType::kRegression);
  ASSERT_TRUE(data.ok());
  EXPECT_DOUBLE_EQ(data->Target(0), 3.75);
  EXPECT_DOUBLE_EQ(data->Target(1), -0.5);
}

TEST_F(LibSvmTest, CommentsAndBlankLinesAreSkipped) {
  const std::string path = WriteFile(
      "comments.libsvm", "# header comment\n+1 1:1 # trailing\n\n-1 2:1\n");
  auto data = ReadLibSvm(path, TaskType::kBinaryClassification);
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_EQ(data->num_examples(), 2u);
}

TEST_F(LibSvmTest, ExplicitNumFeaturesPadsAndValidates) {
  const std::string path = WriteFile("wide.libsvm", "+1 1:1\n");
  auto padded = ReadLibSvm(path, TaskType::kBinaryClassification, 10);
  ASSERT_TRUE(padded.ok());
  EXPECT_EQ(padded->num_features(), 10u);
  auto too_narrow = ReadLibSvm(path, TaskType::kBinaryClassification, 0);
  ASSERT_TRUE(too_narrow.ok());
  const std::string wide = WriteFile("wide2.libsvm", "+1 5:1\n");
  EXPECT_FALSE(ReadLibSvm(wide, TaskType::kBinaryClassification, 3).ok());
}

TEST_F(LibSvmTest, WriteReadRoundTrip) {
  const SparseDataset original =
      SparseDataset::Create(TinyFeatures(), linalg::Vector{1.0, -1.0, 1.0},
                            TaskType::kBinaryClassification)
          .value();
  const std::string path = testing::TempDir() + "/roundtrip.libsvm";
  ASSERT_TRUE(WriteLibSvm(original, path).ok());
  auto loaded = ReadLibSvm(path, TaskType::kBinaryClassification,
                           original.num_features());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_examples(), original.num_examples());
  EXPECT_EQ(loaded->num_features(), original.num_features());
  EXPECT_EQ(loaded->features().ToDense(),
            original.features().ToDense());
  for (size_t i = 0; i < original.num_examples(); ++i) {
    EXPECT_DOUBLE_EQ(loaded->Target(i), original.Target(i));
  }
}

TEST_F(LibSvmTest, RejectsMalformedInput) {
  EXPECT_EQ(ReadLibSvm("/no/such/file", TaskType::kRegression)
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(ReadLibSvm(WriteFile("bad1.libsvm", "abc 1:1\n"),
                          TaskType::kRegression)
                   .ok());
  EXPECT_FALSE(ReadLibSvm(WriteFile("bad2.libsvm", "+1 0:1\n"),
                          TaskType::kBinaryClassification)
                   .ok());  // 1-based indices: 0 invalid
  EXPECT_FALSE(ReadLibSvm(WriteFile("bad3.libsvm", "+1 1:xyz\n"),
                          TaskType::kBinaryClassification)
                   .ok());
  EXPECT_FALSE(ReadLibSvm(WriteFile("bad4.libsvm", "+1 1\n"),
                          TaskType::kBinaryClassification)
                   .ok());
  EXPECT_FALSE(ReadLibSvm(WriteFile("bad5.libsvm", "2 1:1\n"),
                          TaskType::kBinaryClassification)
                   .ok());  // label 2 invalid for classification
  EXPECT_FALSE(ReadLibSvm(WriteFile("empty.libsvm", "\n\n"),
                          TaskType::kRegression)
                   .ok());
}

}  // namespace
}  // namespace mbp::data

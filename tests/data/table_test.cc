#include "data/table.h"

#include <fstream>

#include <gtest/gtest.h>

namespace mbp::data {
namespace {

Table MakeIncomeTable() {
  Table table =
      Table::Create({"age", "sex", "height", "income"}).value();
  MBP_CHECK(table.AppendRow({30.0, 0.0, 170.0, 55.0}).ok());
  MBP_CHECK(table.AppendRow({45.0, 1.0, 165.0, 72.0}).ok());
  MBP_CHECK(table.AppendRow({22.0, 0.0, 180.0, 31.0}).ok());
  MBP_CHECK(table.AppendRow({60.0, 1.0, 158.0, 80.0}).ok());
  return table;
}

TEST(TableTest, CreateValidatesColumnNames) {
  EXPECT_FALSE(Table::Create({}).ok());
  EXPECT_FALSE(Table::Create({"a", ""}).ok());
  EXPECT_FALSE(Table::Create({"a", "a"}).ok());
  EXPECT_TRUE(Table::Create({"a", "b"}).ok());
}

TEST(TableTest, AppendRowValidatesWidth) {
  Table table = Table::Create({"a", "b"}).value();
  EXPECT_TRUE(table.AppendRow({1.0, 2.0}).ok());
  EXPECT_FALSE(table.AppendRow({1.0}).ok());
  EXPECT_FALSE(table.AppendRow({1.0, 2.0, 3.0}).ok());
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(TableTest, CellAccessAndColumnIndex) {
  const Table table = MakeIncomeTable();
  EXPECT_DOUBLE_EQ(table.At(1, 3), 72.0);
  auto index = table.ColumnIndex("height");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(*index, 2u);
  EXPECT_EQ(table.ColumnIndex("ghost").status().code(),
            StatusCode::kNotFound);
}

TEST(TableTest, ProjectReordersColumns) {
  const Table table = MakeIncomeTable();
  auto projected = table.Project({"income", "age"});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->num_columns(), 2u);
  EXPECT_EQ(projected->num_rows(), 4u);
  EXPECT_DOUBLE_EQ(projected->At(0, 0), 55.0);
  EXPECT_DOUBLE_EQ(projected->At(0, 1), 30.0);
}

TEST(TableTest, ProjectRejectsUnknownColumn) {
  EXPECT_FALSE(MakeIncomeTable().Project({"age", "ghost"}).ok());
}

TEST(TableTest, WhereFiltersRows) {
  const Table table = MakeIncomeTable();
  const Table adults_over_40 =
      table.Where([](const std::vector<double>& row) {
        return row[0] > 40.0;
      });
  EXPECT_EQ(adults_over_40.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(adults_over_40.At(0, 0), 45.0);
  EXPECT_DOUBLE_EQ(adults_over_40.At(1, 0), 60.0);
}

TEST(TableTest, ToDatasetBuildsFeatureMatrixAndTarget) {
  const Table table = MakeIncomeTable();
  auto dataset = table.ToDataset({"age", "sex", "height"}, "income",
                                 TaskType::kRegression);
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_EQ(dataset->num_examples(), 4u);
  EXPECT_EQ(dataset->num_features(), 3u);
  EXPECT_DOUBLE_EQ(dataset->Target(2), 31.0);
  EXPECT_DOUBLE_EQ(dataset->ExampleFeatures(3)[0], 60.0);
}

TEST(TableTest, ToDatasetRejectsTargetAsFeature) {
  const Table table = MakeIncomeTable();
  EXPECT_FALSE(table.ToDataset({"age", "income"}, "income",
                               TaskType::kRegression)
                   .ok());
}

TEST(TableTest, ToDatasetValidatesClassificationLabels) {
  Table table = Table::Create({"x", "label"}).value();
  MBP_CHECK(table.AppendRow({1.0, 1.0}).ok());
  MBP_CHECK(table.AppendRow({2.0, 0.0}).ok());  // bad label
  EXPECT_FALSE(table.ToDataset({"x"}, "label",
                               TaskType::kBinaryClassification)
                   .ok());
}

TEST(TableTest, FromCsvRoundTrip) {
  const std::string path = testing::TempDir() + "/table.csv";
  {
    std::ofstream out(path);
    out << "age,income\n30,55\n45,72\n";
  }
  auto table = Table::FromCsv(path);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->column_names()[1], "income");
  EXPECT_DOUBLE_EQ(table->At(1, 0), 45.0);
}

TEST(TableTest, FromCsvRejectsBadFiles) {
  EXPECT_EQ(Table::FromCsv("/no/such/file.csv").status().code(),
            StatusCode::kNotFound);
  const std::string path = testing::TempDir() + "/bad_table.csv";
  {
    std::ofstream out(path);
    out << "a,b\n1,x\n";
  }
  EXPECT_FALSE(Table::FromCsv(path).ok());
  {
    std::ofstream out(path);
    out << "a,b\n1\n";
  }
  EXPECT_FALSE(Table::FromCsv(path).ok());
  {
    std::ofstream out(path);
    out << "";
  }
  EXPECT_FALSE(Table::FromCsv(path).ok());
}

TEST(TableTest, RelationalPipelineEndToEnd) {
  // The Alice workflow: filter a region, project features, train-ready.
  Table table = Table::Create({"region", "age", "income"}).value();
  MBP_CHECK(table.AppendRow({1.0, 30.0, 50.0}).ok());
  MBP_CHECK(table.AppendRow({2.0, 40.0, 60.0}).ok());
  MBP_CHECK(table.AppendRow({1.0, 50.0, 70.0}).ok());
  const Table region1 = table.Where(
      [](const std::vector<double>& row) { return row[0] == 1.0; });
  auto dataset =
      region1.ToDataset({"age"}, "income", TaskType::kRegression);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->num_examples(), 2u);
  EXPECT_DOUBLE_EQ(dataset->Target(1), 70.0);
}

}  // namespace
}  // namespace mbp::data

#include "data/split.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace mbp::data {
namespace {

Dataset MakeSequentialDataset(size_t n) {
  linalg::Matrix features(n, 1);
  linalg::Vector targets(n);
  for (size_t i = 0; i < n; ++i) {
    features(i, 0) = static_cast<double>(i);
    targets[i] = static_cast<double>(i);
  }
  return Dataset::Create(std::move(features), std::move(targets),
                         TaskType::kRegression)
      .value();
}

TEST(RandomPermutationTest, IsAPermutation) {
  random::Rng rng(1);
  const std::vector<size_t> perm = RandomPermutation(100, rng);
  std::set<size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(RandomPermutationTest, ShufflesSomething) {
  random::Rng rng(2);
  const std::vector<size_t> perm = RandomPermutation(50, rng);
  size_t fixed_points = 0;
  for (size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] == i) ++fixed_points;
  }
  EXPECT_LT(fixed_points, 10u);
}

TEST(RandomSplitTest, SizesMatchFraction) {
  random::Rng rng(3);
  auto split = RandomSplit(MakeSequentialDataset(100), 0.25, rng);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.num_examples(), 75u);
  EXPECT_EQ(split->test.num_examples(), 25u);
}

TEST(RandomSplitTest, PartitionIsDisjointAndComplete) {
  random::Rng rng(4);
  auto split = RandomSplit(MakeSequentialDataset(40), 0.5, rng);
  ASSERT_TRUE(split.ok());
  std::set<double> seen;
  for (size_t i = 0; i < split->train.num_examples(); ++i) {
    seen.insert(split->train.Target(i));
  }
  for (size_t i = 0; i < split->test.num_examples(); ++i) {
    EXPECT_TRUE(seen.insert(split->test.Target(i)).second)
        << "row appeared in both sides";
  }
  EXPECT_EQ(seen.size(), 40u);
}

TEST(RandomSplitTest, RejectsBadFraction) {
  random::Rng rng(5);
  const Dataset dataset = MakeSequentialDataset(10);
  EXPECT_FALSE(RandomSplit(dataset, 0.0, rng).ok());
  EXPECT_FALSE(RandomSplit(dataset, 1.0, rng).ok());
  EXPECT_FALSE(RandomSplit(dataset, -0.1, rng).ok());
}

TEST(RandomSplitTest, RejectsDegenerateSplit) {
  random::Rng rng(6);
  // 2 rows with fraction 0.01 -> zero test rows.
  EXPECT_FALSE(RandomSplit(MakeSequentialDataset(2), 0.01, rng).ok());
}

TEST(SequentialSplitTest, TakesPrefixAsTrain) {
  auto split = SequentialSplit(MakeSequentialDataset(10), 0.3);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.num_examples(), 7u);
  EXPECT_DOUBLE_EQ(split->train.Target(0), 0.0);
  EXPECT_DOUBLE_EQ(split->test.Target(0), 7.0);
}

Dataset MakeImbalancedClassification(size_t positives, size_t negatives) {
  const size_t n = positives + negatives;
  linalg::Matrix features(n, 1);
  linalg::Vector targets(n);
  for (size_t i = 0; i < n; ++i) {
    features(i, 0) = static_cast<double>(i);
    targets[i] = i < positives ? 1.0 : -1.0;
  }
  return Dataset::Create(std::move(features), std::move(targets),
                         TaskType::kBinaryClassification)
      .value();
}

TEST(StratifiedSplitTest, PreservesClassRatio) {
  // 20% positives; both sides must keep exactly that ratio.
  const Dataset data = MakeImbalancedClassification(20, 80);
  random::Rng rng(9);
  auto split = StratifiedSplit(data, 0.25, rng);
  ASSERT_TRUE(split.ok()) << split.status();
  const auto count_positives = [](const Dataset& side) {
    size_t count = 0;
    for (size_t i = 0; i < side.num_examples(); ++i) {
      if (side.Target(i) == 1.0) ++count;
    }
    return count;
  };
  EXPECT_EQ(split->test.num_examples(), 25u);
  EXPECT_EQ(count_positives(split->test), 5u);
  EXPECT_EQ(split->train.num_examples(), 75u);
  EXPECT_EQ(count_positives(split->train), 15u);
}

TEST(StratifiedSplitTest, PartitionIsDisjointAndComplete) {
  const Dataset data = MakeImbalancedClassification(10, 30);
  random::Rng rng(10);
  auto split = StratifiedSplit(data, 0.5, rng);
  ASSERT_TRUE(split.ok());
  std::set<double> seen;
  for (size_t i = 0; i < split->train.num_examples(); ++i) {
    seen.insert(split->train.ExampleFeatures(i)[0]);
  }
  for (size_t i = 0; i < split->test.num_examples(); ++i) {
    EXPECT_TRUE(seen.insert(split->test.ExampleFeatures(i)[0]).second);
  }
  EXPECT_EQ(seen.size(), 40u);
}

TEST(StratifiedSplitTest, RejectsRegressionData) {
  random::Rng rng(11);
  EXPECT_FALSE(StratifiedSplit(MakeSequentialDataset(20), 0.5, rng).ok());
}

TEST(StratifiedSplitTest, RejectsSplitsThatEmptyAClass) {
  // Only 2 positives: a 10% test fraction would take 0 of them.
  const Dataset data = MakeImbalancedClassification(2, 98);
  random::Rng rng(12);
  EXPECT_FALSE(StratifiedSplit(data, 0.1, rng).ok());
}

TEST(StratifiedSplitTest, RejectsSingleClassDataset) {
  linalg::Matrix features{{1.0}, {2.0}, {3.0}, {4.0}};
  const Dataset data =
      Dataset::Create(std::move(features),
                      linalg::Vector{1.0, 1.0, 1.0, 1.0},
                      TaskType::kBinaryClassification)
          .value();
  random::Rng rng(13);
  EXPECT_FALSE(StratifiedSplit(data, 0.5, rng).ok());
}

TEST(RandomSplitTest, DeterministicForSameSeed) {
  const Dataset dataset = MakeSequentialDataset(30);
  random::Rng rng1(7), rng2(7);
  auto a = RandomSplit(dataset, 0.5, rng1);
  auto b = RandomSplit(dataset, 0.5, rng2);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < a->train.num_examples(); ++i) {
    EXPECT_DOUBLE_EQ(a->train.Target(i), b->train.Target(i));
  }
}

}  // namespace
}  // namespace mbp::data

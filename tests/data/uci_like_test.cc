#include "data/uci_like.h"

#include <gtest/gtest.h>

namespace mbp::data {
namespace {

TEST(PaperTable3SpecsTest, HasAllSixDatasets) {
  const std::vector<DatasetSpec> specs = PaperTable3Specs();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].name, "Simulated1");
  EXPECT_EQ(specs[1].name, "YearMSD");
  EXPECT_EQ(specs[2].name, "CASP");
  EXPECT_EQ(specs[3].name, "Simulated2");
  EXPECT_EQ(specs[4].name, "CovType");
  EXPECT_EQ(specs[5].name, "SUSY");
}

TEST(PaperTable3SpecsTest, SizesMatchPaperTable3) {
  const std::vector<DatasetSpec> specs = PaperTable3Specs();
  EXPECT_EQ(specs[1].paper_train_examples, 386509u);  // YearMSD n1
  EXPECT_EQ(specs[1].paper_test_examples, 128836u);   // YearMSD n2
  EXPECT_EQ(specs[1].num_features, 90u);
  EXPECT_EQ(specs[2].paper_train_examples, 34298u);   // CASP
  EXPECT_EQ(specs[2].num_features, 9u);
  EXPECT_EQ(specs[4].paper_train_examples, 435759u);  // CovType
  EXPECT_EQ(specs[4].num_features, 54u);
  EXPECT_EQ(specs[5].paper_train_examples, 3750000u); // SUSY
  EXPECT_EQ(specs[5].num_features, 18u);
}

TEST(PaperTable3SpecsTest, TaskTypesMatchPaper) {
  const std::vector<DatasetSpec> specs = PaperTable3Specs();
  EXPECT_EQ(specs[0].task, TaskType::kRegression);
  EXPECT_EQ(specs[1].task, TaskType::kRegression);
  EXPECT_EQ(specs[2].task, TaskType::kRegression);
  EXPECT_EQ(specs[3].task, TaskType::kBinaryClassification);
  EXPECT_EQ(specs[4].task, TaskType::kBinaryClassification);
  EXPECT_EQ(specs[5].task, TaskType::kBinaryClassification);
}

TEST(GenerateUciLikeTest, ScaledSizes) {
  const DatasetSpec spec = PaperTable3Specs()[2];  // CASP: 34298 / 11433
  auto split = GenerateUciLike(spec, 0.01, 1);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.num_examples(), 343u);
  EXPECT_EQ(split->test.num_examples(), 200u);  // min_examples floor
  EXPECT_EQ(split->train.num_features(), 9u);
}

TEST(GenerateUciLikeTest, MinExamplesFloor) {
  const DatasetSpec spec = PaperTable3Specs()[2];
  auto split = GenerateUciLike(spec, 0.0001, 1, 150);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.num_examples(), 150u);
  EXPECT_EQ(split->test.num_examples(), 150u);
}

TEST(GenerateUciLikeTest, ClassificationLabelsValid) {
  const DatasetSpec spec = PaperTable3Specs()[4];  // CovType
  auto split = GenerateUciLike(spec, 0.001, 9);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.task(), TaskType::kBinaryClassification);
  for (size_t i = 0; i < split->train.num_examples(); ++i) {
    const double y = split->train.Target(i);
    EXPECT_TRUE(y == 1.0 || y == -1.0);
  }
}

TEST(GenerateUciLikeTest, TrainAndTestShareTheSignal) {
  // Both sides are drawn around the same hyperplane, so the train-side
  // least-squares fit should generalize to test far better than chance.
  DatasetSpec spec = PaperTable3Specs()[2];  // CASP-like regression
  spec.noise_stddev = 0.1;
  auto split = GenerateUciLike(spec, 0.01, 5);
  ASSERT_TRUE(split.ok());
  // Compare variance of targets vs variance of a residual against the
  // train-fit direction: implicitly exercised by downstream ML tests; here
  // just sanity-check target dispersion is nontrivial on both sides.
  double train_var = 0.0, test_var = 0.0;
  for (size_t i = 0; i < split->train.num_examples(); ++i) {
    train_var += split->train.Target(i) * split->train.Target(i);
  }
  for (size_t i = 0; i < split->test.num_examples(); ++i) {
    test_var += split->test.Target(i) * split->test.Target(i);
  }
  EXPECT_GT(train_var / split->train.num_examples(), 0.1);
  EXPECT_GT(test_var / split->test.num_examples(), 0.1);
}

TEST(GenerateUciLikeTest, RejectsBadScale) {
  const DatasetSpec spec = PaperTable3Specs()[0];
  EXPECT_FALSE(GenerateUciLike(spec, 0.0, 1).ok());
  EXPECT_FALSE(GenerateUciLike(spec, 1.5, 1).ok());
}

TEST(GenerateUciLikeTest, DeterministicForSeed) {
  const DatasetSpec spec = PaperTable3Specs()[2];
  auto a = GenerateUciLike(spec, 0.005, 3);
  auto b = GenerateUciLike(spec, 0.005, 3);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->train.features(), b->train.features());
  EXPECT_EQ(a->test.targets(), b->test.targets());
}

}  // namespace
}  // namespace mbp::data

#include "data/feature_expansion.h"

#include <gtest/gtest.h>

#include "ml/metrics.h"
#include "ml/trainer.h"

namespace mbp::data {
namespace {

Dataset TwoFeatureData() {
  linalg::Matrix features{{1.0, 2.0}, {3.0, -1.0}};
  linalg::Vector targets{1.0, 2.0};
  return Dataset::Create(std::move(features), std::move(targets),
                         TaskType::kRegression)
      .value();
}

TEST(WithBiasColumnTest, AppendsConstantOne) {
  const Dataset expanded = WithBiasColumn(TwoFeatureData());
  EXPECT_EQ(expanded.num_features(), 3u);
  EXPECT_DOUBLE_EQ(expanded.ExampleFeatures(0)[2], 1.0);
  EXPECT_DOUBLE_EQ(expanded.ExampleFeatures(1)[2], 1.0);
  // Original features and targets are untouched.
  EXPECT_DOUBLE_EQ(expanded.ExampleFeatures(1)[0], 3.0);
  EXPECT_DOUBLE_EQ(expanded.Target(1), 2.0);
}

TEST(WithBiasColumnTest, EnablesInterceptFitting) {
  // y = 5 exactly: without a bias column a through-origin linear model
  // cannot represent it on a constant-free feature; with it, it can.
  linalg::Matrix features{{1.0}, {2.0}, {3.0}, {4.0}};
  const Dataset data =
      Dataset::Create(std::move(features),
                      linalg::Vector{5.0, 5.0, 5.0, 5.0},
                      TaskType::kRegression)
          .value();
  const Dataset with_bias = WithBiasColumn(data);
  auto trained = ml::TrainLinearRegression(with_bias, 0.0);
  ASSERT_TRUE(trained.ok());
  EXPECT_NEAR(ml::MeanSquaredError(trained->model, with_bias), 0.0, 1e-12);
  EXPECT_NEAR(trained->model.coefficients()[1], 5.0, 1e-9);  // intercept
}

TEST(WithQuadraticFeaturesTest, LayoutAndValues) {
  auto expanded = WithQuadraticFeatures(TwoFeatureData());
  ASSERT_TRUE(expanded.ok());
  // d=2 -> 2 linear + 2 squares + 1 interaction = 5.
  EXPECT_EQ(expanded->num_features(), 5u);
  const double* row = expanded->ExampleFeatures(0);  // (1, 2)
  EXPECT_DOUBLE_EQ(row[0], 1.0);   // x0
  EXPECT_DOUBLE_EQ(row[1], 2.0);   // x1
  EXPECT_DOUBLE_EQ(row[2], 1.0);   // x0^2
  EXPECT_DOUBLE_EQ(row[3], 4.0);   // x1^2
  EXPECT_DOUBLE_EQ(row[4], 2.0);   // x0*x1
}

TEST(WithQuadraticFeaturesTest, CapIsEnforced) {
  auto expanded = WithQuadraticFeatures(TwoFeatureData(), 4);
  EXPECT_EQ(expanded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WithQuadraticFeaturesTest, FitsAQuadraticTarget) {
  // y = x^2 is linear in the expanded space.
  linalg::Matrix features{{1.0}, {2.0}, {3.0}, {-1.0}, {0.5}};
  linalg::Vector targets(5);
  for (size_t i = 0; i < 5; ++i) {
    targets[i] = features(i, 0) * features(i, 0);
  }
  const Dataset data = Dataset::Create(std::move(features),
                                       std::move(targets),
                                       TaskType::kRegression)
                           .value();
  auto expanded = WithQuadraticFeatures(data);
  ASSERT_TRUE(expanded.ok());
  auto trained = ml::TrainLinearRegression(*expanded, 0.0);
  ASSERT_TRUE(trained.ok());
  EXPECT_NEAR(ml::MeanSquaredError(trained->model, *expanded), 0.0, 1e-10);
}

TEST(WithQuadraticFeaturesTest, PreservesTaskAndLabels) {
  linalg::Matrix features{{1.0, 2.0}, {3.0, 4.0}};
  const Dataset data =
      Dataset::Create(std::move(features), linalg::Vector{1.0, -1.0},
                      TaskType::kBinaryClassification)
          .value();
  auto expanded = WithQuadraticFeatures(data);
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(expanded->task(), TaskType::kBinaryClassification);
  EXPECT_DOUBLE_EQ(expanded->Target(1), -1.0);
}

}  // namespace
}  // namespace mbp::data

#include "data/statistics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mbp::data {
namespace {

Dataset MakeRegression() {
  linalg::Matrix features{{1.0, -5.0}, {2.0, 0.0}, {3.0, 5.0},
                          {4.0, 10.0}};
  linalg::Vector targets{10.0, 20.0, 30.0, 40.0};
  return Dataset::Create(std::move(features), std::move(targets),
                         TaskType::kRegression)
      .value();
}

Dataset MakeClassification() {
  linalg::Matrix features{{1.0}, {2.0}, {3.0}, {4.0}, {5.0}};
  linalg::Vector targets{1.0, 1.0, -1.0, 1.0, -1.0};
  return Dataset::Create(std::move(features), std::move(targets),
                         TaskType::kBinaryClassification)
      .value();
}

TEST(FeatureStatsTest, ComputesPerColumn) {
  const std::vector<ColumnStats> stats = ComputeFeatureStats(MakeRegression());
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_DOUBLE_EQ(stats[0].min, 1.0);
  EXPECT_DOUBLE_EQ(stats[0].max, 4.0);
  EXPECT_DOUBLE_EQ(stats[0].mean, 2.5);
  EXPECT_NEAR(stats[0].stddev, std::sqrt(1.25), 1e-12);
  EXPECT_DOUBLE_EQ(stats[1].min, -5.0);
  EXPECT_DOUBLE_EQ(stats[1].max, 10.0);
  EXPECT_DOUBLE_EQ(stats[1].mean, 2.5);
}

TEST(TargetStatsTest, ComputesTargetColumn) {
  const ColumnStats stats = ComputeTargetStats(MakeRegression());
  EXPECT_DOUBLE_EQ(stats.min, 10.0);
  EXPECT_DOUBLE_EQ(stats.max, 40.0);
  EXPECT_DOUBLE_EQ(stats.mean, 25.0);
}

TEST(TargetStatsTest, ConstantColumnHasZeroStddev) {
  linalg::Matrix features{{1.0}, {2.0}};
  const Dataset data =
      Dataset::Create(std::move(features), linalg::Vector{7.0, 7.0},
                      TaskType::kRegression)
          .value();
  const ColumnStats stats = ComputeTargetStats(data);
  EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
  EXPECT_DOUBLE_EQ(stats.min, 7.0);
  EXPECT_DOUBLE_EQ(stats.max, 7.0);
}

TEST(PositiveLabelFractionTest, CountsPositives) {
  EXPECT_DOUBLE_EQ(PositiveLabelFraction(MakeClassification()), 0.6);
}

TEST(PositiveLabelFractionDeathTest, RequiresClassification) {
  EXPECT_DEATH({ (void)PositiveLabelFraction(MakeRegression()); },
               "classification");
}

}  // namespace
}  // namespace mbp::data

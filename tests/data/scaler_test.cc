#include "data/scaler.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mbp::data {
namespace {

Dataset MakeDataset() {
  linalg::Matrix features{{1.0, 10.0}, {2.0, 10.0}, {3.0, 10.0},
                          {4.0, 10.0}};
  linalg::Vector targets{1.0, 2.0, 3.0, 4.0};
  return Dataset::Create(std::move(features), std::move(targets),
                         TaskType::kRegression)
      .value();
}

TEST(StandardScalerTest, ComputesMeansAndStddevs) {
  const StandardScaler scaler = StandardScaler::Fit(MakeDataset());
  EXPECT_NEAR(scaler.means()[0], 2.5, 1e-12);
  EXPECT_NEAR(scaler.means()[1], 10.0, 1e-12);
  // Population stddev of {1,2,3,4} = sqrt(1.25).
  EXPECT_NEAR(scaler.stddevs()[0], std::sqrt(1.25), 1e-12);
}

TEST(StandardScalerTest, ConstantColumnGetsUnitStddev) {
  const StandardScaler scaler = StandardScaler::Fit(MakeDataset());
  EXPECT_DOUBLE_EQ(scaler.stddevs()[1], 1.0);
}

TEST(StandardScalerTest, TransformedDataIsStandardized) {
  const Dataset dataset = MakeDataset();
  const StandardScaler scaler = StandardScaler::Fit(dataset);
  auto transformed = scaler.Transform(dataset);
  ASSERT_TRUE(transformed.ok());
  double mean = 0.0, var = 0.0;
  for (size_t i = 0; i < transformed->num_examples(); ++i) {
    mean += transformed->ExampleFeatures(i)[0];
  }
  mean /= 4.0;
  for (size_t i = 0; i < transformed->num_examples(); ++i) {
    const double v = transformed->ExampleFeatures(i)[0] - mean;
    var += v * v;
  }
  EXPECT_NEAR(mean, 0.0, 1e-12);
  EXPECT_NEAR(var / 4.0, 1.0, 1e-12);
}

TEST(StandardScalerTest, TransformPreservesTargetsAndTask) {
  const Dataset dataset = MakeDataset();
  const StandardScaler scaler = StandardScaler::Fit(dataset);
  auto transformed = scaler.Transform(dataset);
  ASSERT_TRUE(transformed.ok());
  EXPECT_DOUBLE_EQ(transformed->Target(2), 3.0);
  EXPECT_EQ(transformed->task(), TaskType::kRegression);
}

TEST(StandardScalerTest, RejectsFeatureCountMismatch) {
  const StandardScaler scaler = StandardScaler::Fit(MakeDataset());
  linalg::Matrix other(2, 3, 1.0);
  const Dataset other_dataset =
      Dataset::Create(std::move(other), linalg::Vector{1.0, 2.0},
                      TaskType::kRegression)
          .value();
  EXPECT_EQ(scaler.Transform(other_dataset).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StandardScalerTest, TrainFitAppliesToTest) {
  // The canonical usage: fit on train, transform test with train statistics.
  const Dataset train = MakeDataset();
  linalg::Matrix test_features{{10.0, 10.0}};
  const Dataset test =
      Dataset::Create(std::move(test_features), linalg::Vector{0.0},
                      TaskType::kRegression)
          .value();
  const StandardScaler scaler = StandardScaler::Fit(train);
  auto transformed = scaler.Transform(test);
  ASSERT_TRUE(transformed.ok());
  EXPECT_NEAR(transformed->ExampleFeatures(0)[0],
              (10.0 - 2.5) / std::sqrt(1.25), 1e-12);
}

}  // namespace
}  // namespace mbp::data

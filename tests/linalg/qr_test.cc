#include "linalg/qr.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/cholesky.h"
#include "linalg/vector_ops.h"
#include "random/distributions.h"
#include "random/rng.h"

namespace mbp::linalg {
namespace {

TEST(QrTest, FactorizesSquareMatrix) {
  Matrix a{{4.0, 1.0}, {0.0, 3.0}};
  auto qr = QrDecomposition::Factorize(a);
  ASSERT_TRUE(qr.ok());
  // R should be upper-triangular with |diagonal| = column norms pattern.
  Matrix r = qr->R();
  EXPECT_NEAR(std::fabs(r(0, 0)), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(r(1, 0), 0.0);
}

TEST(QrTest, RejectsWideMatrix) {
  Matrix a(2, 3);
  EXPECT_EQ(QrDecomposition::Factorize(a).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QrTest, SolvesExactSquareSystem) {
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Vector expected{1.5, -0.5};
  const Vector b = MatVec(a, expected);
  auto x = LeastSquaresQr(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], expected[0], 1e-12);
  EXPECT_NEAR((*x)[1], expected[1], 1e-12);
}

TEST(QrTest, OverdeterminedLeastSquaresMatchesNormalEquations) {
  random::Rng rng(7);
  const size_t m = 50, n = 6;
  Matrix a(m, n);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      a(i, j) = random::SampleStandardNormal(rng);
    }
  }
  const Vector b = random::SampleNormalVector(rng, m, 0.0, 1.0);
  auto qr_solution = LeastSquaresQr(a, b);
  ASSERT_TRUE(qr_solution.ok());
  // Normal equations route.
  auto normal_solution = SolveSpd(GramMatrix(a), MatTVec(a, b));
  ASSERT_TRUE(normal_solution.ok());
  EXPECT_LT(Norm2(Subtract(*qr_solution, *normal_solution)), 1e-9);
}

TEST(QrTest, ResidualIsOrthogonalToColumnSpace) {
  random::Rng rng(8);
  const size_t m = 30, n = 4;
  Matrix a(m, n);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      a(i, j) = random::SampleStandardNormal(rng);
    }
  }
  const Vector b = random::SampleNormalVector(rng, m, 0.0, 1.0);
  auto x = LeastSquaresQr(a, b);
  ASSERT_TRUE(x.ok());
  const Vector residual = Subtract(MatVec(a, *x), b);
  const Vector gradient = MatTVec(a, residual);
  EXPECT_LT(NormInf(gradient), 1e-10);
}

TEST(QrTest, DetectsRankDeficiency) {
  // Two identical columns.
  Matrix a{{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  auto qr = QrDecomposition::Factorize(a);
  ASSERT_TRUE(qr.ok());
  const Vector b{1.0, 2.0, 3.0};
  EXPECT_EQ(qr->SolveLeastSquares(b).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(QrTest, ApplyQTransposePreservesNorm) {
  random::Rng rng(9);
  Matrix a(10, 3);
  for (size_t i = 0; i < 10; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      a(i, j) = random::SampleStandardNormal(rng);
    }
  }
  auto qr = QrDecomposition::Factorize(a);
  ASSERT_TRUE(qr.ok());
  const Vector b = random::SampleNormalVector(rng, 10, 0.0, 1.0);
  const Vector qtb = qr->ApplyQTranspose(b);
  EXPECT_NEAR(Norm2(qtb), Norm2(b), 1e-10);  // Q is orthogonal
}

TEST(QrTest, RhsDimensionMismatch) {
  Matrix a(3, 2, 1.0);
  a(1, 1) = 2.0;
  auto qr = QrDecomposition::Factorize(a);
  ASSERT_TRUE(qr.ok());
  EXPECT_EQ(qr->SolveLeastSquares(Vector(2)).status().code(),
            StatusCode::kInvalidArgument);
}

// Ill-conditioned comparison: QR stays accurate where the normal
// equations lose digits.
TEST(QrTest, BeatsNormalEquationsOnIllConditionedSystem) {
  // Vandermonde-ish columns, condition number ~1e7 when squared ~1e14.
  const size_t m = 20, n = 5;
  Matrix a(m, n);
  for (size_t i = 0; i < m; ++i) {
    const double t = static_cast<double>(i) / (m - 1);
    double power = 1.0;
    for (size_t j = 0; j < n; ++j) {
      a(i, j) = power;
      power *= t;
    }
  }
  const Vector truth{1.0, -2.0, 3.0, -4.0, 5.0};
  const Vector b = MatVec(a, truth);
  auto qr_solution = LeastSquaresQr(a, b);
  ASSERT_TRUE(qr_solution.ok());
  EXPECT_LT(Norm2(Subtract(*qr_solution, truth)), 1e-7);
}

}  // namespace
}  // namespace mbp::linalg

#include "linalg/eigen.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/vector_ops.h"
#include "random/distributions.h"
#include "random/rng.h"

namespace mbp::linalg {
namespace {

TEST(JacobiEigenTest, DiagonalMatrixIsItsOwnDecomposition) {
  Matrix a{{3.0, 0.0}, {0.0, 1.0}};
  auto eigen = JacobiEigenDecomposition(a);
  ASSERT_TRUE(eigen.ok());
  EXPECT_NEAR(eigen->values[0], 1.0, 1e-12);
  EXPECT_NEAR(eigen->values[1], 3.0, 1e-12);
}

TEST(JacobiEigenTest, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  Matrix a{{2.0, 1.0}, {1.0, 2.0}};
  auto eigen = JacobiEigenDecomposition(a);
  ASSERT_TRUE(eigen.ok());
  EXPECT_NEAR(eigen->values[0], 1.0, 1e-10);
  EXPECT_NEAR(eigen->values[1], 3.0, 1e-10);
  // Eigenvector for lambda=3 is (1,1)/sqrt(2) up to sign.
  const double v0 = eigen->vectors(0, 1);
  const double v1 = eigen->vectors(1, 1);
  EXPECT_NEAR(std::fabs(v0), 1.0 / std::sqrt(2.0), 1e-10);
  EXPECT_NEAR(v0, v1, 1e-10);
}

TEST(JacobiEigenTest, RejectsAsymmetric) {
  Matrix a{{1.0, 2.0}, {0.0, 1.0}};
  EXPECT_EQ(JacobiEigenDecomposition(a).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(JacobiEigenTest, RejectsNonSquare) {
  EXPECT_FALSE(JacobiEigenDecomposition(Matrix(2, 3)).ok());
  EXPECT_FALSE(JacobiEigenDecomposition(Matrix()).ok());
}

class JacobiRandomTest : public ::testing::TestWithParam<size_t> {};

TEST_P(JacobiRandomTest, ReconstructsTheMatrix) {
  const size_t n = GetParam();
  random::Rng rng(100 + n);
  Matrix b(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      b(i, j) = random::SampleStandardNormal(rng);
    }
  }
  const Matrix a = GramMatrix(b);  // symmetric PSD
  auto eigen = JacobiEigenDecomposition(a);
  ASSERT_TRUE(eigen.ok());

  // A v_j = lambda_j v_j for every eigenpair.
  for (size_t j = 0; j < n; ++j) {
    Vector v(n);
    for (size_t i = 0; i < n; ++i) v[i] = eigen->vectors(i, j);
    const Vector av = MatVec(a, v);
    const Vector lv = Scaled(v, eigen->values[j]);
    EXPECT_LT(Norm2(Subtract(av, lv)), 1e-8 * (1.0 + eigen->values[j]))
        << "eigenpair " << j;
  }
  // Eigenvalues ascending, all >= 0 for PSD.
  for (size_t j = 0; j < n; ++j) {
    EXPECT_GE(eigen->values[j], -1e-9);
    if (j > 0) {
      EXPECT_LE(eigen->values[j - 1], eigen->values[j] + 1e-12);
    }
  }
  // Eigenvectors orthonormal.
  for (size_t p = 0; p < n; ++p) {
    for (size_t q = p; q < n; ++q) {
      double dot = 0.0;
      for (size_t i = 0; i < n; ++i) {
        dot += eigen->vectors(i, p) * eigen->vectors(i, q);
      }
      EXPECT_NEAR(dot, p == q ? 1.0 : 0.0, 1e-9) << p << "," << q;
    }
  }
  // Trace preservation.
  double trace_a = 0.0, trace_lambda = 0.0;
  for (size_t i = 0; i < n; ++i) {
    trace_a += a(i, i);
    trace_lambda += eigen->values[i];
  }
  EXPECT_NEAR(trace_a, trace_lambda, 1e-8 * (1.0 + std::fabs(trace_a)));
}

INSTANTIATE_TEST_SUITE_P(Dims, JacobiRandomTest,
                         ::testing::Values(1, 2, 3, 5, 8, 15, 30));

TEST(SpectralConditionNumberTest, IdentityIsPerfectlyConditioned) {
  auto cond = SpectralConditionNumber(Matrix::Identity(4));
  ASSERT_TRUE(cond.ok());
  EXPECT_NEAR(*cond, 1.0, 1e-10);
}

TEST(SpectralConditionNumberTest, KnownRatio) {
  Matrix a{{10.0, 0.0}, {0.0, 0.1}};
  auto cond = SpectralConditionNumber(a);
  ASSERT_TRUE(cond.ok());
  EXPECT_NEAR(*cond, 100.0, 1e-8);
}

TEST(SpectralConditionNumberTest, SingularIsInfinite) {
  Matrix a{{1.0, 1.0}, {1.0, 1.0}};
  auto cond = SpectralConditionNumber(a);
  ASSERT_TRUE(cond.ok());
  EXPECT_TRUE(std::isinf(*cond));
}

}  // namespace
}  // namespace mbp::linalg

#include "linalg/sparse.h"

#include <gtest/gtest.h>

#include "linalg/vector_ops.h"
#include "random/distributions.h"
#include "random/rng.h"

namespace mbp::linalg {
namespace {

SparseMatrix SmallSparse() {
  // [[1, 0, 2],
  //  [0, 0, 0],
  //  [0, 3, 4]]
  return SparseMatrix::FromTriplets(
             3, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {2, 1, 3.0}, {2, 2, 4.0}})
      .value();
}

TEST(SparseMatrixTest, FromTripletsBuildsCsr) {
  const SparseMatrix m = SmallSparse();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.num_nonzeros(), 4u);
  EXPECT_EQ(m.RowNonzeros(0), 2u);
  EXPECT_EQ(m.RowNonzeros(1), 0u);
  EXPECT_EQ(m.RowNonzeros(2), 2u);
  EXPECT_EQ(m.RowIndices(0)[1], 2u);
  EXPECT_DOUBLE_EQ(m.RowValues(2)[0], 3.0);
}

TEST(SparseMatrixTest, UnsortedTripletsAreSorted) {
  auto m = SparseMatrix::FromTriplets(
      2, 2, {{1, 1, 4.0}, {0, 1, 2.0}, {1, 0, 3.0}, {0, 0, 1.0}});
  ASSERT_TRUE(m.ok());
  const Matrix dense = m->ToDense();
  EXPECT_DOUBLE_EQ(dense(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(dense(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(dense(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(dense(1, 1), 4.0);
}

TEST(SparseMatrixTest, DuplicatesSumAndZerosDrop) {
  auto m = SparseMatrix::FromTriplets(
      1, 2, {{0, 0, 1.5}, {0, 0, 2.5}, {0, 1, 3.0}, {0, 1, -3.0}});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->num_nonzeros(), 1u);  // the (0,1) pair cancels to zero
  EXPECT_DOUBLE_EQ(m->ToDense()(0, 0), 4.0);
}

TEST(SparseMatrixTest, RejectsBadEntries) {
  EXPECT_FALSE(SparseMatrix::FromTriplets(2, 2, {{2, 0, 1.0}}).ok());
  EXPECT_FALSE(SparseMatrix::FromTriplets(2, 2, {{0, 2, 1.0}}).ok());
  EXPECT_FALSE(SparseMatrix::FromTriplets(0, 2, {}).ok());
  EXPECT_FALSE(
      SparseMatrix::FromTriplets(
          1, 1, {{0, 0, std::numeric_limits<double>::quiet_NaN()}})
          .ok());
}

TEST(SparseMatrixTest, MultiplyMatchesDense) {
  const SparseMatrix m = SmallSparse();
  const Vector x{1.0, 2.0, 3.0};
  const Vector y = m.Multiply(x);
  const Vector dense_y = MatVec(m.ToDense(), x);
  ASSERT_EQ(y.size(), 3u);
  for (size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(y[i], dense_y[i]);
}

TEST(SparseMatrixTest, TransposeMultiplyMatchesDense) {
  const SparseMatrix m = SmallSparse();
  const Vector x{1.0, -1.0, 2.0};
  const Vector y = m.TransposeMultiply(x);
  const Vector dense_y = MatTVec(m.ToDense(), x);
  for (size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(y[i], dense_y[i]);
}

TEST(SparseMatrixTest, FromDenseRoundTrips) {
  Matrix dense{{0.0, 1.5, 0.0}, {2.5, 0.0, 0.0}};
  const SparseMatrix sparse = SparseMatrix::FromDense(dense);
  EXPECT_EQ(sparse.num_nonzeros(), 2u);
  EXPECT_EQ(sparse.ToDense(), dense);
}

TEST(SparseMatrixTest, FromDenseToleranceDropsSmallEntries) {
  Matrix dense{{1e-9, 1.0}};
  const SparseMatrix sparse = SparseMatrix::FromDense(dense, 1e-6);
  EXPECT_EQ(sparse.num_nonzeros(), 1u);
}

TEST(SparseMatrixTest, RandomMatricesAgreeWithDenseKernels) {
  random::Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t rows = 2 + rng.NextBounded(30);
    const size_t cols = 2 + rng.NextBounded(30);
    Matrix dense(rows, cols);
    for (size_t i = 0; i < rows; ++i) {
      for (size_t j = 0; j < cols; ++j) {
        if (rng.NextDouble() < 0.15) {
          dense(i, j) = random::SampleStandardNormal(rng);
        }
      }
    }
    const SparseMatrix sparse = SparseMatrix::FromDense(dense);
    const Vector x = random::SampleNormalVector(rng, cols, 0.0, 1.0);
    const Vector z = random::SampleNormalVector(rng, rows, 0.0, 1.0);
    EXPECT_LT(Norm2(Subtract(sparse.Multiply(x), MatVec(dense, x))),
              1e-12);
    EXPECT_LT(
        Norm2(Subtract(sparse.TransposeMultiply(z), MatTVec(dense, z))),
        1e-12);
  }
}

TEST(SparseMatrixTest, RowDotSkipsZeros) {
  const SparseMatrix m = SmallSparse();
  const Vector x{10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(m.RowDot(0, x), 10.0 + 60.0);
  EXPECT_DOUBLE_EQ(m.RowDot(1, x), 0.0);
}

}  // namespace
}  // namespace mbp::linalg

#include "linalg/conjugate_gradient.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/cholesky.h"
#include "linalg/vector_ops.h"
#include "random/distributions.h"
#include "random/rng.h"

namespace mbp::linalg {
namespace {

TEST(ConjugateGradientTest, SolvesSmallSpdSystem) {
  Matrix a{{4.0, 1.0}, {1.0, 3.0}};
  const Vector expected{1.0, 2.0};
  const Vector b = MatVec(a, expected);
  auto result = ConjugateGradientSolve(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_NEAR(result->x[0], 1.0, 1e-9);
  EXPECT_NEAR(result->x[1], 2.0, 1e-9);
}

TEST(ConjugateGradientTest, ConvergesInAtMostDimIterationsExactly) {
  // CG is a direct method in exact arithmetic: n iterations suffice.
  random::Rng rng(1);
  const size_t n = 12;
  Matrix b_mat(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      b_mat(i, j) = random::SampleStandardNormal(rng);
    }
  }
  Matrix a = GramMatrix(b_mat);
  for (size_t i = 0; i < n; ++i) a(i, i) += 1.0;
  const Vector rhs = random::SampleNormalVector(rng, n, 0.0, 1.0);
  auto result = ConjugateGradientSolve(a, rhs);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_LE(result->iterations, n + 2);
}

TEST(ConjugateGradientTest, MatchesCholeskyOnRandomSystems) {
  random::Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t n = 3 + rng.NextBounded(20);
    Matrix b_mat(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        b_mat(i, j) = random::SampleStandardNormal(rng);
      }
    }
    Matrix a = GramMatrix(b_mat);
    for (size_t i = 0; i < n; ++i) a(i, i) += 0.5;
    const Vector rhs = random::SampleNormalVector(rng, n, 0.0, 1.0);
    auto cg = ConjugateGradientSolve(a, rhs);
    auto chol = SolveSpd(a, rhs);
    ASSERT_TRUE(cg.ok() && chol.ok());
    EXPECT_LT(Norm2(Subtract(cg->x, *chol)), 1e-6) << "trial " << trial;
  }
}

TEST(ConjugateGradientTest, ZeroRhsIsZeroSolution) {
  auto result = ConjugateGradientSolve(Matrix::Identity(3), Vector(3));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_EQ(result->iterations, 0u);
  EXPECT_DOUBLE_EQ(Norm2(result->x), 0.0);
}

TEST(ConjugateGradientTest, DetectsIndefiniteOperator) {
  Matrix a{{1.0, 0.0}, {0.0, -1.0}};
  const Vector b{0.0, 1.0};  // pushes along the negative direction
  EXPECT_EQ(ConjugateGradientSolve(a, b).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ConjugateGradientTest, RejectsBadShapes) {
  EXPECT_FALSE(ConjugateGradientSolve(Matrix(2, 3), Vector(2)).ok());
  EXPECT_FALSE(ConjugateGradientSolve(Matrix::Identity(2), Vector(3)).ok());
  EXPECT_FALSE(
      ConjugateGradientSolve(Matrix::Identity(0), Vector()).ok());
}

TEST(ConjugateGradientTest, MatrixFreeOperatorWorks) {
  // Diagonal operator without a materialized matrix.
  const LinearOperator diag = [](const Vector& v) {
    Vector out(v.size());
    for (size_t i = 0; i < v.size(); ++i) {
      out[i] = (static_cast<double>(i) + 1.0) * v[i];
    }
    return out;
  };
  const Vector b{1.0, 4.0, 9.0};
  auto result = ConjugateGradientSolve(diag, b);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->x[0], 1.0, 1e-9);
  EXPECT_NEAR(result->x[1], 2.0, 1e-9);
  EXPECT_NEAR(result->x[2], 3.0, 1e-9);
}

TEST(SolveRidgeMatrixFreeTest, MatchesNormalEquations) {
  random::Rng rng(3);
  const size_t n = 80, d = 7;
  Matrix x(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      x(i, j) = random::SampleStandardNormal(rng);
    }
  }
  const Vector y = random::SampleNormalVector(rng, n, 0.0, 1.0);
  const double l2 = 0.05;
  auto cg = SolveRidgeMatrixFree(x, y, l2);
  ASSERT_TRUE(cg.ok());
  // Dense reference.
  Matrix normal = GramMatrix(x);
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < d; ++j) normal(i, j) /= n;
    normal(i, i) += 2.0 * l2;
  }
  Vector rhs = MatTVec(x, y);
  Scale(1.0 / static_cast<double>(n), rhs.data(), rhs.size());
  auto dense = SolveSpd(normal, rhs);
  ASSERT_TRUE(dense.ok());
  EXPECT_LT(Norm2(Subtract(cg->x, *dense)), 1e-7);
}

TEST(SolveRidgeMatrixFreeTest, RejectsBadInputs) {
  EXPECT_FALSE(SolveRidgeMatrixFree(Matrix(3, 2), Vector(2), 0.1).ok());
  EXPECT_FALSE(SolveRidgeMatrixFree(Matrix(3, 2), Vector(3), -0.1).ok());
}

}  // namespace
}  // namespace mbp::linalg

#include "linalg/cholesky.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "linalg/vector_ops.h"
#include "random/distributions.h"
#include "random/rng.h"

namespace mbp::linalg {
namespace {

TEST(CholeskyTest, FactorizesKnownSpdMatrix) {
  Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  auto chol = Cholesky::Factorize(a);
  ASSERT_TRUE(chol.ok());
  const Matrix& l = chol->lower();
  EXPECT_NEAR(l(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(l(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(l(1, 1), std::sqrt(2.0), 1e-12);
}

TEST(CholeskyTest, SolveRecoversKnownSolution) {
  Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  Vector expected{1.0, -2.0};
  Vector b = MatVec(a, expected);
  auto chol = Cholesky::Factorize(a);
  ASSERT_TRUE(chol.ok());
  Vector x = chol->Solve(b);
  EXPECT_NEAR(x[0], expected[0], 1e-12);
  EXPECT_NEAR(x[1], expected[1], 1e-12);
}

TEST(CholeskyTest, RejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_EQ(Cholesky::Factorize(a).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3 and -1
  EXPECT_EQ(Cholesky::Factorize(a).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(CholeskyTest, RejectsSingular) {
  Matrix a{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_FALSE(Cholesky::Factorize(a).ok());
}

TEST(CholeskyTest, LogDeterminant) {
  Matrix a{{4.0, 0.0}, {0.0, 9.0}};
  auto chol = Cholesky::Factorize(a);
  ASSERT_TRUE(chol.ok());
  EXPECT_NEAR(chol->LogDeterminant(), std::log(36.0), 1e-12);
}

TEST(CholeskyTest, MatrixSolve) {
  Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  auto chol = Cholesky::Factorize(a);
  ASSERT_TRUE(chol.ok());
  Matrix inverse = chol->Solve(Matrix::Identity(2));
  Matrix product = MatMul(a, inverse);
  EXPECT_NEAR(product(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(product(0, 1), 0.0, 1e-12);
  EXPECT_NEAR(product(1, 1), 1.0, 1e-12);
}

// Property: for random SPD systems A = B^T B + I, the solve residual is
// tiny across dimensions.
class CholeskyRandomTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CholeskyRandomTest, RandomSpdSolveHasTinyResidual) {
  const size_t d = GetParam();
  random::Rng rng(1234 + d);
  Matrix b(d, d);
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < d; ++j) {
      b(i, j) = random::SampleStandardNormal(rng);
    }
  }
  Matrix a = GramMatrix(b);
  for (size_t i = 0; i < d; ++i) a(i, i) += 1.0;
  Vector rhs = random::SampleNormalVector(rng, d, 0.0, 1.0);
  auto solved = SolveSpd(a, rhs);
  ASSERT_TRUE(solved.ok());
  Vector residual = Subtract(MatVec(a, solved.value()), rhs);
  EXPECT_LT(Norm2(residual), 1e-8 * (1.0 + Norm2(rhs)));
}

INSTANTIATE_TEST_SUITE_P(Dims, CholeskyRandomTest,
                         ::testing::Values(1, 2, 3, 5, 10, 25, 60));

TEST(SolveSpdTest, RidgeRescuesSingularSystem) {
  Matrix a{{1.0, 1.0}, {1.0, 1.0}};
  Vector b{1.0, 1.0};
  EXPECT_FALSE(SolveSpd(a, b, 0.0).ok());
  auto solved = SolveSpd(a, b, 0.1);
  ASSERT_TRUE(solved.ok());
}

TEST(SolveSpdTest, DimensionMismatch) {
  Matrix a = Matrix::Identity(2);
  Vector b(3);
  EXPECT_EQ(SolveSpd(a, b).status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace mbp::linalg

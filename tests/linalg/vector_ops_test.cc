#include "linalg/vector_ops.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/vector.h"

namespace mbp::linalg {
namespace {

TEST(VectorTest, ConstructionAndAccess) {
  Vector v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  v[1] = 5.0;
  EXPECT_DOUBLE_EQ(v[1], 5.0);
}

TEST(VectorTest, ZeroInitialized) {
  Vector v(4);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(VectorTest, FillConstructor) {
  Vector v(3, 2.5);
  EXPECT_DOUBLE_EQ(v[2], 2.5);
}

TEST(VectorDeathTest, OutOfBoundsAborts) {
  Vector v(2);
  EXPECT_DEATH({ (void)v[2]; }, "MBP_CHECK failed");
}

TEST(DotTest, BasicDotProduct) {
  Vector a{1.0, 2.0, 3.0};
  Vector b{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
}

TEST(DotTest, UnrolledKernelMatchesNaive) {
  // Length not divisible by 4 exercises the scalar tail.
  const size_t n = 11;
  Vector a(n), b(n);
  double expected = 0.0;
  for (size_t i = 0; i < n; ++i) {
    a[i] = 0.5 * static_cast<double>(i) - 2.0;
    b[i] = 1.0 / (static_cast<double>(i) + 1.0);
    expected += a[i] * b[i];
  }
  EXPECT_NEAR(Dot(a, b), expected, 1e-12);
}

TEST(NormTest, Norm2AndSquared) {
  Vector v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(SquaredNorm2(v), 25.0);
  EXPECT_DOUBLE_EQ(Norm2(v), 5.0);
}

TEST(NormTest, NormInf) {
  Vector v{-7.0, 2.0, 6.5};
  EXPECT_DOUBLE_EQ(NormInf(v), 7.0);
}

TEST(ArithmeticTest, AddSubtractScale) {
  Vector a{1.0, 2.0};
  Vector b{3.0, -1.0};
  EXPECT_EQ(Add(a, b), (Vector{4.0, 1.0}));
  EXPECT_EQ(Subtract(a, b), (Vector{-2.0, 3.0}));
  EXPECT_EQ(Scaled(a, 2.0), (Vector{2.0, 4.0}));
}

TEST(ArithmeticTest, AddScaled) {
  Vector a{1.0, 1.0};
  Vector b{2.0, 4.0};
  EXPECT_EQ(AddScaled(a, 0.5, b), (Vector{2.0, 3.0}));
}

TEST(ArithmeticTest, SquaredDistance) {
  Vector a{0.0, 0.0};
  Vector b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
}

TEST(ArithmeticDeathTest, DimensionMismatchAborts) {
  Vector a(2), b(3);
  EXPECT_DEATH({ (void)Dot(a, b); }, "MBP_CHECK failed");
  EXPECT_DEATH({ (void)Add(a, b); }, "MBP_CHECK failed");
}

TEST(RawKernelTest, AxpyAccumulates) {
  double x[3] = {1.0, 2.0, 3.0};
  double y[3] = {10.0, 10.0, 10.0};
  Axpy(2.0, x, y, 3);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[2], 16.0);
}

TEST(RawKernelTest, ScaleInPlace) {
  double x[2] = {2.0, -4.0};
  Scale(0.5, x, 2);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], -2.0);
}

}  // namespace
}  // namespace mbp::linalg

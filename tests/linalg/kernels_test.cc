// Oracle tests for the SIMD-dispatched micro-kernels: every variant the
// dispatcher can select must agree with the always-compiled scalar
// reference — bitwise for scale (a single multiply either way), within
// 1e-10 relative for the kernels whose AVX2 variants fuse multiply-adds
// (dot, axpy, axpy4, gram4) — on random, zero-heavy, non-finite, and
// non-lane-multiple inputs. Within ONE variant, element-wise kernels must
// be invariant to how a caller splits the range (fused tails, kernels.h),
// which the split-consistency tests pin bitwise.

#include "linalg/kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/cpu_features.h"
#include "gtest/gtest.h"
#include "random/distributions.h"
#include "random/rng.h"

namespace mbp::linalg::kernels {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// Sizes straddling every tail path: sub-lane, lane multiples, the 16-wide
// dot unroll, and off-by-one around each.
const size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 64, 129, 1000};

enum class Fill { kRandom, kZeroHeavy, kNonFinite };

std::vector<double> MakeInput(Fill fill, size_t n, uint64_t seed) {
  random::Rng rng(seed);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = random::SampleNormal(rng, 0.0, 1.0);
    if (fill == Fill::kZeroHeavy && rng.NextDouble() < 0.7) v[i] = 0.0;
    if (fill == Fill::kNonFinite && rng.NextDouble() < 0.1) {
      v[i] = rng.NextDouble() < 0.5 ? kNan : kInf;
    }
  }
  return v;
}

// EXPECT_EQ-like comparison that treats NaN == NaN as equal (bitwise
// contract modulo NaN payload).
void ExpectSameValues(const std::vector<double>& want,
                      const std::vector<double>& got) {
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    if (std::isnan(want[i])) {
      EXPECT_TRUE(std::isnan(got[i])) << "index " << i;
    } else {
      EXPECT_EQ(want[i], got[i]) << "index " << i;
    }
  }
}

// Cross-variant comparison: NaN matches NaN, infinities match exactly,
// finite values within the 1e-10 relative scalar-vs-SIMD gate.
void ExpectCloseValues(const std::vector<double>& want,
                       const std::vector<double>& got) {
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    if (std::isnan(want[i])) {
      EXPECT_TRUE(std::isnan(got[i])) << "index " << i;
    } else if (std::isinf(want[i])) {
      EXPECT_EQ(want[i], got[i]) << "index " << i;
    } else {
      const double tol = 1e-10 * std::max(1.0, std::abs(want[i]));
      EXPECT_NEAR(want[i], got[i], tol) << "index " << i;
    }
  }
}

class KernelOracleTest : public ::testing::TestWithParam<Fill> {
 protected:
  void TearDown() override { ForceLevelForTesting(std::nullopt); }
};

TEST_P(KernelOracleTest, DotMatchesScalarReference) {
  const Funcs* avx2 = Avx2Funcs();
  if (avx2 == nullptr) GTEST_SKIP() << "AVX2 variant not available";
  const Funcs& scalar = ScalarFuncs();
  for (size_t n : kSizes) {
    const std::vector<double> a = MakeInput(GetParam(), n, 11 * n + 1);
    const std::vector<double> b = MakeInput(GetParam(), n, 13 * n + 2);
    const double want = scalar.dot(a.data(), b.data(), n);
    const double got = avx2->dot(a.data(), b.data(), n);
    if (std::isnan(want)) {
      EXPECT_TRUE(std::isnan(got)) << "n=" << n;
    } else if (std::isinf(want)) {
      // Inf - Inf across accumulators is NaN in any order; accept either
      // non-finite outcome for mixed-sign infinities.
      EXPECT_FALSE(std::isfinite(got)) << "n=" << n;
    } else {
      const double tol = 1e-10 * std::max(1.0, std::abs(want));
      EXPECT_NEAR(want, got, tol) << "n=" << n;
    }
  }
}

TEST_P(KernelOracleTest, AxpyMatchesScalarReference) {
  const Funcs* avx2 = Avx2Funcs();
  if (avx2 == nullptr) GTEST_SKIP() << "AVX2 variant not available";
  const Funcs& scalar = ScalarFuncs();
  for (size_t n : kSizes) {
    const std::vector<double> x = MakeInput(GetParam(), n, 17 * n + 3);
    const std::vector<double> y0 = MakeInput(Fill::kRandom, n, 19 * n + 4);
    const double alpha = 0.37;
    std::vector<double> want = y0;
    scalar.axpy(alpha, x.data(), want.data(), n);
    std::vector<double> got = y0;
    avx2->axpy(alpha, x.data(), got.data(), n);
    ExpectCloseValues(want, got);
  }
}

TEST_P(KernelOracleTest, Axpy4MatchesScalarReference) {
  const Funcs* avx2 = Avx2Funcs();
  if (avx2 == nullptr) GTEST_SKIP() << "AVX2 variant not available";
  const Funcs& scalar = ScalarFuncs();
  for (size_t n : kSizes) {
    const std::vector<double> x0 = MakeInput(GetParam(), n, 23 * n + 5);
    const std::vector<double> x1 = MakeInput(GetParam(), n, 29 * n + 6);
    const std::vector<double> x2 = MakeInput(GetParam(), n, 31 * n + 7);
    const std::vector<double> x3 = MakeInput(GetParam(), n, 37 * n + 8);
    const std::vector<double> y0 = MakeInput(Fill::kRandom, n, 41 * n + 9);
    const double alphas[4] = {0.5, -1.25, 0.0, 2.0};
    std::vector<double> want = y0;
    scalar.axpy4(alphas, x0.data(), x1.data(), x2.data(), x3.data(),
                 want.data(), n);
    std::vector<double> got = y0;
    avx2->axpy4(alphas, x0.data(), x1.data(), x2.data(), x3.data(),
                got.data(), n);
    ExpectCloseValues(want, got);
  }
}

// Within one variant, where a caller splits a range must not change any
// element: the AVX2 tails use std::fma, which rounds exactly like a
// vector lane. This is what makes MatTVec's column partition (and gram4's
// row pairing) bit-deterministic across thread counts.
TEST_P(KernelOracleTest, Axpy4SplitInvariantWithinVariant) {
  for (const Funcs* funcs : {&ScalarFuncs(), Avx2Funcs()}) {
    if (funcs == nullptr) continue;
    const size_t n = 129;
    const std::vector<double> x0 = MakeInput(GetParam(), n, 101);
    const std::vector<double> x1 = MakeInput(GetParam(), n, 102);
    const std::vector<double> x2 = MakeInput(GetParam(), n, 103);
    const std::vector<double> x3 = MakeInput(GetParam(), n, 104);
    const std::vector<double> y0 = MakeInput(Fill::kRandom, n, 105);
    const double alphas[4] = {0.5, -1.25, 0.0, 2.0};
    std::vector<double> whole = y0;
    funcs->axpy4(alphas, x0.data(), x1.data(), x2.data(), x3.data(),
                 whole.data(), n);
    for (size_t split : {1ul, 2ul, 3ul, 64ul, 127ul}) {
      std::vector<double> parts = y0;
      funcs->axpy4(alphas, x0.data(), x1.data(), x2.data(), x3.data(),
                   parts.data(), split);
      funcs->axpy4(alphas, x0.data() + split, x1.data() + split,
                   x2.data() + split, x3.data() + split,
                   parts.data() + split, n - split);
      ExpectSameValues(whole, parts);
    }
  }
}

TEST_P(KernelOracleTest, Gram4MatchesScalarReference) {
  const Funcs* avx2 = Avx2Funcs();
  if (avx2 == nullptr) GTEST_SKIP() << "AVX2 variant not available";
  const Funcs& scalar = ScalarFuncs();
  // d spans the two-row pass, its single-row remainder, and every prefix
  // tail; [i_begin, i_end) sub-ranges mirror how GramMatrix partitions
  // output rows across tasks.
  for (size_t d : {1ul, 2ul, 3ul, 5ul, 8ul, 17ul, 90ul}) {
    const std::vector<double> r0 = MakeInput(GetParam(), d, 47 * d + 11);
    const std::vector<double> r1 = MakeInput(GetParam(), d, 53 * d + 12);
    const std::vector<double> r2 = MakeInput(GetParam(), d, 59 * d + 13);
    const std::vector<double> r3 = MakeInput(GetParam(), d, 61 * d + 14);
    const std::vector<double> g0 = MakeInput(Fill::kRandom, d * d, 67 * d + 15);
    const size_t ranges[][2] = {{0, d}, {0, d / 2}, {d / 2, d}, {d / 3, d - d / 3}};
    for (const auto& range : ranges) {
      std::vector<double> want = g0;
      scalar.gram4(r0.data(), r1.data(), r2.data(), r3.data(), want.data(), d,
                   range[0], range[1]);
      std::vector<double> got = g0;
      avx2->gram4(r0.data(), r1.data(), r2.data(), r3.data(), got.data(), d,
                  range[0], range[1]);
      ExpectCloseValues(want, got);
    }
  }
}

TEST_P(KernelOracleTest, Gram4PartitionInvariantWithinVariant) {
  // Splitting the output-row range — which also flips which rows pair up
  // in the AVX2 two-row pass — must not change a bit, and must equal
  // axpy4 applied row by row.
  for (const Funcs* funcs : {&ScalarFuncs(), Avx2Funcs()}) {
    if (funcs == nullptr) continue;
    const size_t d = 33;
    const std::vector<double> r0 = MakeInput(GetParam(), d, 111);
    const std::vector<double> r1 = MakeInput(GetParam(), d, 112);
    const std::vector<double> r2 = MakeInput(GetParam(), d, 113);
    const std::vector<double> r3 = MakeInput(GetParam(), d, 114);
    const std::vector<double> g0 = MakeInput(Fill::kRandom, d * d, 115);
    std::vector<double> whole = g0;
    funcs->gram4(r0.data(), r1.data(), r2.data(), r3.data(), whole.data(), d,
                 0, d);
    std::vector<double> rowwise = g0;
    for (size_t i = 0; i < d; ++i) {
      const double alphas[4] = {r0[i], r1[i], r2[i], r3[i]};
      funcs->axpy4(alphas, r0.data(), r1.data(), r2.data(), r3.data(),
                   rowwise.data() + i * d, i + 1);
    }
    ExpectSameValues(whole, rowwise);
    for (size_t split : {1ul, 2ul, 16ul, 32ul}) {
      std::vector<double> parts = g0;
      funcs->gram4(r0.data(), r1.data(), r2.data(), r3.data(), parts.data(),
                   d, 0, split);
      funcs->gram4(r0.data(), r1.data(), r2.data(), r3.data(), parts.data(),
                   d, split, d);
      ExpectSameValues(whole, parts);
    }
  }
}

TEST_P(KernelOracleTest, ScaleBitIdenticalToScalarReference) {
  const Funcs* avx2 = Avx2Funcs();
  if (avx2 == nullptr) GTEST_SKIP() << "AVX2 variant not available";
  const Funcs& scalar = ScalarFuncs();
  for (size_t n : kSizes) {
    const std::vector<double> x = MakeInput(GetParam(), n, 43 * n + 10);
    std::vector<double> want = x;
    scalar.scale(-0.75, want.data(), n);
    std::vector<double> got = x;
    avx2->scale(-0.75, got.data(), n);
    ExpectSameValues(want, got);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFills, KernelOracleTest,
                         ::testing::Values(Fill::kRandom, Fill::kZeroHeavy,
                                           Fill::kNonFinite),
                         [](const auto& info) {
                           switch (info.param) {
                             case Fill::kRandom:
                               return "random";
                             case Fill::kZeroHeavy:
                               return "zero_heavy";
                             case Fill::kNonFinite:
                               return "non_finite";
                           }
                           return "unknown";
                         });

TEST(KernelDispatchTest, ActiveTableMatchesReportedLevel) {
  const SimdLevel level = ActiveLevel();
  if (level == SimdLevel::kAvx2Fma) {
    EXPECT_EQ(&Active(), Avx2Funcs());
  } else {
    EXPECT_EQ(&Active(), &ScalarFuncs());
  }
}

TEST(KernelDispatchTest, ForceLevelPinsAndRestores) {
  ASSERT_TRUE(ForceLevelForTesting(SimdLevel::kScalar));
  EXPECT_EQ(SimdLevel::kScalar, ActiveLevel());
  EXPECT_EQ(&Active(), &ScalarFuncs());
  if (Avx2Funcs() != nullptr) {
    ASSERT_TRUE(ForceLevelForTesting(SimdLevel::kAvx2Fma));
    EXPECT_EQ(SimdLevel::kAvx2Fma, ActiveLevel());
    EXPECT_EQ(&Active(), Avx2Funcs());
  } else {
    EXPECT_FALSE(ForceLevelForTesting(SimdLevel::kAvx2Fma));
  }
  ASSERT_TRUE(ForceLevelForTesting(std::nullopt));  // back to auto
}

TEST(KernelDispatchTest, ScalarDotKeepsSeedAccumulatorPattern) {
  // The scalar dot is pinned to the pre-dispatch kernel: 4 interleaved
  // accumulators, pairwise reduction. Verify against a literal transcription
  // on a size exercising both the unrolled body and the tail.
  const size_t n = 23;
  const std::vector<double> a = MakeInput(Fill::kRandom, n, 71);
  const std::vector<double> b = MakeInput(Fill::kRandom, n, 72);
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) acc0 += a[i] * b[i];
  EXPECT_EQ((acc0 + acc1) + (acc2 + acc3),
            ScalarFuncs().dot(a.data(), b.data(), n));
}

}  // namespace
}  // namespace mbp::linalg::kernels

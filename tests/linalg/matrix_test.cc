#include "linalg/matrix.h"

#include <cmath>
#include <limits>
#include <utility>

#include <gtest/gtest.h>

#include "linalg/vector.h"

namespace mbp::linalg {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m(1, 2) = 4.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 4.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixDeathTest, RaggedInitializerAborts) {
  EXPECT_DEATH({ Matrix m({{1.0, 2.0}, {3.0}}); }, "ragged");
}

TEST(MatrixTest, Identity) {
  Matrix eye = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(eye(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(eye(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(eye(0, 1), 0.0);
}

TEST(MatrixTest, RowAccess) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  Vector row = m.Row(1);
  EXPECT_EQ(row, (Vector{3.0, 4.0}));
  m.SetRow(0, Vector{9.0, 8.0});
  EXPECT_DOUBLE_EQ(m(0, 0), 9.0);
}

TEST(MatVecTest, MultipliesCorrectly) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  Vector x{1.0, -1.0};
  Vector y = MatVec(m, x);
  EXPECT_EQ(y, (Vector{-1.0, -1.0, -1.0}));
}

TEST(MatVecTest, TransposeMultiply) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  Vector x{1.0, 1.0, 1.0};
  Vector y = MatTVec(m, x);
  EXPECT_EQ(y, (Vector{9.0, 12.0}));
}

TEST(MatMulTest, MatchesHandComputation) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  Matrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatMulTest, IdentityIsNeutral) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(MatMul(a, Matrix::Identity(2)), a);
  EXPECT_EQ(MatMul(Matrix::Identity(2), a), a);
}

TEST(GramMatrixTest, EqualsTransposeTimesSelf) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  Matrix g = GramMatrix(a);
  Matrix expected = MatMul(Transpose(a), a);
  ASSERT_EQ(g.rows(), expected.rows());
  for (size_t i = 0; i < g.rows(); ++i) {
    for (size_t j = 0; j < g.cols(); ++j) {
      EXPECT_NEAR(g(i, j), expected(i, j), 1e-12) << i << "," << j;
    }
  }
}

TEST(GramMatrixTest, IsSymmetric) {
  Matrix a{{1.0, -2.0, 0.5}, {0.0, 3.0, 1.0}};
  Matrix g = GramMatrix(a);
  for (size_t i = 0; i < g.rows(); ++i) {
    for (size_t j = 0; j < g.cols(); ++j) {
      EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
    }
  }
}

TEST(TransposeTest, SwapsDimensions) {
  Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  Matrix t = Transpose(a);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(TransposeTest, TiledKernelMatchesNaiveLoop) {
  // The cache-blocked transpose must be exactly the naive i/j loop: pure
  // copies, so equality is exact. Shapes chosen to hit full interior
  // tiles, ragged edge tiles, single-row/column strips, and sizes around
  // the 64-wide tile boundary.
  const std::pair<size_t, size_t> shapes[] = {
      {1, 1},  {1, 7},   {7, 1},   {3, 5},    {63, 65},
      {64, 64}, {65, 63}, {1, 200}, {200, 1}, {130, 257}};
  for (const auto& [rows, cols] : shapes) {
    Matrix a(rows, cols);
    for (size_t i = 0; i < rows; ++i) {
      for (size_t j = 0; j < cols; ++j) {
        a(i, j) = static_cast<double>(i * 1000 + j) * 0.37 - 17.0;
      }
    }
    const Matrix t = Transpose(a);
    ASSERT_EQ(t.rows(), cols);
    ASSERT_EQ(t.cols(), rows);
    Matrix naive(cols, rows);
    for (size_t i = 0; i < rows; ++i) {
      for (size_t j = 0; j < cols; ++j) naive(j, i) = a(i, j);
    }
    EXPECT_TRUE(t == naive) << rows << "x" << cols;
  }
}

TEST(TransposeTest, InvolutionRecoversOriginal) {
  Matrix a(97, 41);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      a(i, j) = std::sin(static_cast<double>(i * 53 + j));
    }
  }
  EXPECT_TRUE(Transpose(Transpose(a)) == a);
}

TEST(MatVecDeathTest, DimensionMismatchAborts) {
  Matrix a(2, 3);
  Vector x(2);
  EXPECT_DEATH({ (void)MatVec(a, x); }, "MBP_CHECK failed");
}

// The parallel kernels partition disjoint output rows, so they promise
// BIT-identical results at every thread count (see ParallelConfig).

TEST(ParallelKernelsTest, GramMatrixIdenticalAtAnyThreadCount) {
  Matrix a(150, 40);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      a(i, j) = std::sin(static_cast<double>(i * a.cols() + j));
    }
  }
  const Matrix serial = GramMatrix(a, ParallelConfig::Serial());
  EXPECT_EQ(serial, GramMatrix(a, ParallelConfig{4}));
  EXPECT_EQ(serial, GramMatrix(a, ParallelConfig{64}));
  EXPECT_EQ(serial, GramMatrix(a));
}

TEST(ParallelKernelsTest, MatMulIdenticalAtAnyThreadCount) {
  Matrix a(70, 60);
  Matrix b(60, 80);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      a(i, j) = std::cos(static_cast<double>(i + 3 * j));
    }
  }
  for (size_t i = 0; i < b.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      b(i, j) = std::sin(static_cast<double>(2 * i + j));
    }
  }
  const Matrix serial = MatMul(a, b, ParallelConfig::Serial());
  EXPECT_EQ(serial, MatMul(a, b, ParallelConfig{4}));
  EXPECT_EQ(serial, MatMul(a, b));
}

TEST(ParallelKernelsTest, MatVecIdenticalAtAnyThreadCount) {
  Matrix a(500, 300);  // above the inline-work threshold
  Vector x(300);
  for (size_t j = 0; j < x.size(); ++j) {
    x[j] = std::sin(static_cast<double>(j) * 0.7);
  }
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      a(i, j) = std::cos(static_cast<double>(i) * 0.3 +
                         static_cast<double>(j));
    }
  }
  const Vector serial = MatVec(a, x, ParallelConfig::Serial());
  const Vector parallel = MatVec(a, x, ParallelConfig{8});
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]);
  }
}

TEST(ParallelKernelsTest, MatTVecIdenticalAtAnyThreadCount) {
  Matrix a(500, 300);  // above the inline-work threshold
  Vector x(500);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = std::cos(static_cast<double>(i) * 0.4);
  }
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      a(i, j) = std::sin(static_cast<double>(i) * 0.2 +
                         static_cast<double>(j) * 1.1);
    }
  }
  // The column-partitioned parallel kernel must match the serial pass
  // bitwise for any partition (disjoint output slices, element-wise
  // per-row updates).
  const Vector serial = MatTVec(a, x, ParallelConfig::Serial());
  for (size_t threads : {size_t{2}, size_t{4}, size_t{64}}) {
    const Vector parallel = MatTVec(a, x, ParallelConfig{threads});
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t j = 0; j < serial.size(); ++j) {
      EXPECT_EQ(serial[j], parallel[j]) << "threads=" << threads;
    }
  }
}

TEST(NonFinitePropagationTest, MatMulZeroTimesNanIsNan) {
  // Regression: the zero-skip used to drop a(i, k) == 0 entries entirely,
  // losing the NaN that 0 * NaN must produce. With a non-finite b the skip
  // is disabled and IEEE semantics apply.
  const Matrix a{{0.0, 1.0}, {2.0, 3.0}};
  Matrix b(2, 2);
  b(0, 0) = std::numeric_limits<double>::quiet_NaN();
  b(0, 1) = 5.0;
  b(1, 0) = 1.0;
  b(1, 1) = 1.0;
  const Matrix c = MatMul(a, b);
  EXPECT_TRUE(std::isnan(c(0, 0))) << "0 * NaN contribution was dropped";
  EXPECT_TRUE(std::isnan(c(1, 0)));
  // Column 1 of b is finite: c(0,1) = 0*5 + 1*1.
  EXPECT_EQ(1.0, c(0, 1));
  EXPECT_EQ(13.0, c(1, 1));
}

TEST(NonFinitePropagationTest, MatMulZeroTimesInfIsNan) {
  const Matrix a{{0.0, 1.0}};
  Matrix b(2, 1);
  b(0, 0) = std::numeric_limits<double>::infinity();
  b(1, 0) = 2.0;
  const Matrix c = MatMul(a, b);
  EXPECT_TRUE(std::isnan(c(0, 0))) << "0 * Inf must be NaN";
}

TEST(NonFinitePropagationTest, MatMulZeroSkipStillExactOnFiniteInputs) {
  // With finite b the skip is a pure optimization: identical result.
  Matrix a(30, 40);
  Matrix b(40, 20);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      a(i, j) = (i + j) % 3 == 0 ? 0.0 : std::sin(static_cast<double>(i + j));
    }
  }
  for (size_t i = 0; i < b.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      b(i, j) = std::cos(static_cast<double>(i * b.cols() + j));
    }
  }
  const Matrix c = MatMul(a, b);
  for (size_t i = 0; i < c.rows(); ++i) {
    for (size_t j = 0; j < c.cols(); ++j) {
      double want = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) want += a(i, k) * b(k, j);
      EXPECT_NEAR(want, c(i, j), 1e-12 * std::max(1.0, std::abs(want)));
    }
  }
}

TEST(NonFinitePropagationTest, GramMatrixPropagatesNan) {
  // The Gram kernel's old a(r, i) == 0 skip dropped 0 * NaN products the
  // same way; the skip is gone, so a NaN feature poisons its example's
  // contributions per IEEE rules.
  Matrix a(3, 2);
  a(0, 0) = 0.0;
  a(0, 1) = std::numeric_limits<double>::quiet_NaN();
  a(1, 0) = 1.0;
  a(1, 1) = 2.0;
  a(2, 0) = 3.0;
  a(2, 1) = 4.0;
  const Matrix g = GramMatrix(a);
  // Column 0 never meets the NaN: g(0,0) = 0^2 + 1^2 + 3^2.
  EXPECT_EQ(10.0, g(0, 0));
  // Every entry touching column 1 sums a NaN product — including (1, 0),
  // whose example-0 term is NaN * 0 (this was the dropped contribution).
  EXPECT_TRUE(std::isnan(g(1, 0)));
  EXPECT_TRUE(std::isnan(g(0, 1)));
  EXPECT_TRUE(std::isnan(g(1, 1)));
}

}  // namespace
}  // namespace mbp::linalg

#include "common/fault_injection.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <thread>

namespace mbp::fault {
namespace {

// FNV-1a-64 over the point name: the per-point PCG stream selector, so a
// point's draw sequence is a pure function of (seed, name).
uint64_t Fnv1a64(std::string_view s) {
  uint64_t hash = 1469598103934665603ull;
  for (const char c : s) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

// Per-point state: its own mutex (points never contend with each other),
// its own PCG stream, and its counters.
struct FaultInjector::Point {
  explicit Point(uint64_t seed, uint64_t stream, PointSchedule s)
      : schedule(s), rng(seed, stream) {}

  std::mutex mutex;
  PointSchedule schedule;
  Pcg32 rng;
  uint64_t hits = 0;
  uint64_t fires = 0;
};

struct FaultInjector::Impl {
  // shared_mutex: evaluation takes a read lock to resolve name -> Point
  // (the map only mutates under Arm/Reset, which take the write lock).
  mutable std::shared_mutex map_mutex;
  // std::map for stable iteration order in Stats(); node-based, so Point
  // addresses stay valid while evaluators hold them under the read lock.
  std::map<std::string, Point, std::less<>> points;
  uint64_t seed = 0;
};

FaultInjector::FaultInjector() : impl_(new Impl) {}
FaultInjector::~FaultInjector() { delete impl_; }

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector;
  return *injector;
}

void FaultInjector::Seed(uint64_t seed) {
  std::unique_lock lock(impl_->map_mutex);
  impl_->seed = seed;
}

void FaultInjector::Arm(std::string_view point, PointSchedule schedule) {
  std::unique_lock lock(impl_->map_mutex);
  const uint64_t stream = Fnv1a64(point);
  // Point holds a mutex (not assignable): re-arming replaces the node.
  const auto it = impl_->points.find(point);
  if (it != impl_->points.end()) impl_->points.erase(it);
  impl_->points.try_emplace(std::string(point), impl_->seed, stream,
                            schedule);
  any_armed_.store(true, std::memory_order_release);
}

void FaultInjector::Reset() {
  std::unique_lock lock(impl_->map_mutex);
  any_armed_.store(false, std::memory_order_release);
  impl_->points.clear();
  total_fires_.store(0, std::memory_order_relaxed);
}

bool FaultInjector::ShouldFire(std::string_view point) {
  if (!any_armed_.load(std::memory_order_acquire)) return false;
  std::shared_lock map_lock(impl_->map_mutex);
  const auto it = impl_->points.find(point);
  if (it == impl_->points.end()) return false;
  Point& p = it->second;
  std::lock_guard point_lock(p.mutex);
  const uint64_t hit = p.hits++;
  if (hit < p.schedule.skip_first) return false;
  if (p.fires >= p.schedule.max_fires) return false;
  // probability >= 1 skips the draw so pure count schedules consume no
  // stream state and stay exact.
  if (p.schedule.probability < 1.0 &&
      p.rng.NextDouble() >= p.schedule.probability) {
    return false;
  }
  ++p.fires;
  total_fires_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

uint64_t FaultInjector::MaybeDelay(std::string_view point) {
  if (!any_armed_.load(std::memory_order_acquire)) return 0;
  uint64_t delay = 0;
  {
    std::shared_lock map_lock(impl_->map_mutex);
    const auto it = impl_->points.find(point);
    if (it == impl_->points.end()) return 0;
    delay = it->second.schedule.delay_micros;
  }
  if (!ShouldFire(point) || delay == 0) return 0;
  std::this_thread::sleep_for(std::chrono::microseconds(delay));
  return delay;
}

void FaultInjector::MaybeCrash(std::string_view point) {
  if (ShouldFire(point)) _exit(137);
}

std::vector<PointStats> FaultInjector::Stats() const {
  std::shared_lock lock(impl_->map_mutex);
  std::vector<PointStats> out;
  out.reserve(impl_->points.size());
  for (auto& [name, point] : impl_->points) {
    PointStats s;
    s.point = name;
    {
      std::lock_guard point_lock(const_cast<Point&>(point).mutex);
      s.hits = point.hits;
      s.fires = point.fires;
    }
    out.push_back(std::move(s));
  }
  return out;
}

uint64_t FaultInjector::Fires(std::string_view point) const {
  std::shared_lock lock(impl_->map_mutex);
  const auto it = impl_->points.find(point);
  if (it == impl_->points.end()) return 0;
  Point& p = const_cast<Point&>(it->second);
  std::lock_guard point_lock(p.mutex);
  return p.fires;
}

}  // namespace mbp::fault

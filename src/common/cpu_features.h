#ifndef MBP_COMMON_CPU_FEATURES_H_
#define MBP_COMMON_CPU_FEATURES_H_

#include <string>

namespace mbp {

// Instruction-set features of the executing CPU, detected at runtime via
// CPUID on x86-64 (everything false on other architectures). `avx2` and
// `fma` are reported only when the OS has also enabled YMM state saving
// (OSXSAVE + XCR0), so a true value means the instructions are actually
// usable.
struct CpuFeatures {
  bool avx = false;
  bool avx2 = false;
  bool fma = false;
};

// Detected once on first call, then cached for the process lifetime.
const CpuFeatures& DetectCpuFeatures();

// Which variant of the linalg micro-kernels (linalg/kernels.h) the process
// dispatches to.
enum class SimdLevel {
  kScalar,   // reference path, always compiled in
  kAvx2Fma,  // 256-bit FMA variants (needs an MBP_ENABLE_AVX2 build + CPU)
};

std::string SimdLevelName(SimdLevel level);

// The level the dispatcher selects: kAvx2Fma when (a) the binary carries
// the AVX2 variants (built with MBP_ENABLE_AVX2), (b) the CPU supports
// AVX2 and FMA, and (c) the MBP_FORCE_SCALAR environment variable is unset
// (or set to "0" / empty); kScalar otherwise. The environment variable is
// read once, at the first call.
SimdLevel ActiveSimdLevel();

}  // namespace mbp

#endif  // MBP_COMMON_CPU_FEATURES_H_

#ifndef MBP_COMMON_STATUSOR_H_
#define MBP_COMMON_STATUSOR_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace mbp {

// Holds either a value of type T or a non-OK Status explaining why the value
// is absent. Accessing the value of a non-OK StatusOr is a checked
// programming error.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit, so `return SomeStatusError(...)` and
  // `return value;` both work inside functions returning StatusOr<T>.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    MBP_CHECK(!status_.ok()) << "StatusOr constructed from OK status "
                                "without a value";
  }
  StatusOr(T value)  // NOLINT
      : status_(Status::OK()), value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    MBP_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    MBP_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    MBP_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mbp

// Assigns the value of `rexpr` (a StatusOr expression) to `lhs`, or returns
// its error Status from the enclosing function.
#define MBP_ASSIGN_OR_RETURN(lhs, rexpr)                 \
  MBP_ASSIGN_OR_RETURN_IMPL_(                            \
      MBP_STATUS_MACROS_CONCAT_(mbp_statusor, __LINE__), lhs, rexpr)

#define MBP_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                               \
  if (!statusor.ok()) {                                  \
    return statusor.status();                            \
  }                                                      \
  lhs = std::move(statusor).value()

#define MBP_STATUS_MACROS_CONCAT_(x, y) MBP_STATUS_MACROS_CONCAT_IMPL_(x, y)
#define MBP_STATUS_MACROS_CONCAT_IMPL_(x, y) x##y

#endif  // MBP_COMMON_STATUSOR_H_

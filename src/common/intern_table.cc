#include "common/intern_table.h"

#include <cstring>

#include "common/check.h"

namespace mbp {
namespace {

constexpr size_t kInitialCapacity = 64;

}  // namespace

uint32_t InternTable::Hash(std::string_view key) {
  uint32_t h = 2166136261u;
  for (const char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

InternTable::Table* InternTable::NewTable(size_t capacity) {
  MBP_CHECK((capacity & (capacity - 1)) == 0);
  Table* table = new Table;
  table->mask = capacity - 1;
  // Value-initialized: every slot starts null.
  table->slots = new std::atomic<Entry*>[capacity]();
  return table;
}

void InternTable::FreeTable(Table* table) {
  delete[] table->slots;
  delete table;
}

void InternTable::InsertIntoTable(Table* table, Entry* entry) {
  size_t i = static_cast<size_t>(entry->hash) & table->mask;
  while (table->slots[i].load(std::memory_order_relaxed) != nullptr) {
    i = (i + 1) & table->mask;
  }
  // Release: a reader that observes the pointer observes the fully
  // written Entry (and its key bytes) behind it.
  table->slots[i].store(entry, std::memory_order_release);
}

InternTable::InternTable() : table_(NewTable(kInitialCapacity)) {}

InternTable::~InternTable() {
  FreeTable(table_.load(std::memory_order_relaxed));
  for (Table* t : retired_) FreeTable(t);
  for (auto& chunk : chunks_) {
    std::atomic<Entry*>* c = chunk.load(std::memory_order_relaxed);
    delete[] c;
  }
}

uint32_t InternTable::Find(std::string_view key) const {
  const uint32_t h = Hash(key);
  const Table* table = table_.load(std::memory_order_acquire);
  size_t i = static_cast<size_t>(h) & table->mask;
  while (true) {
    const Entry* e = table->slots[i].load(std::memory_order_acquire);
    if (e == nullptr) return kNotFound;
    if (e->hash == h && e->key() == key) return e->ref;
    i = (i + 1) & table->mask;
  }
}

std::string_view InternTable::KeyOf(uint32_t ref) const {
  MBP_CHECK_LT(ref, size());
  const std::atomic<Entry*>* chunk =
      chunks_[ref >> kChunkShift].load(std::memory_order_acquire);
  const Entry* e = chunk[ref & (kChunkEntries - 1)].load(
      std::memory_order_acquire);
  return e->key();
}

InternTable::Table* InternTable::GrowLocked(Table* old_table) {
  Table* fresh = NewTable((old_table->mask + 1) * 2);
  const uint32_t n = size_.load(std::memory_order_relaxed);
  for (uint32_t ref = 0; ref < n; ++ref) {
    std::atomic<Entry*>* chunk =
        chunks_[ref >> kChunkShift].load(std::memory_order_relaxed);
    InsertIntoTable(fresh,
                    chunk[ref & (kChunkEntries - 1)].load(
                        std::memory_order_relaxed));
  }
  // Readers mid-probe keep the old table; it stays allocated (retired_)
  // until destruction.
  table_.store(fresh, std::memory_order_release);
  retired_.push_back(old_table);
  return fresh;
}

uint32_t InternTable::Intern(std::string_view key) {
  // Optimistic lock-free fast path: the common case at steady state is a
  // key already interned.
  {
    const uint32_t ref = Find(key);
    if (ref != kNotFound) return ref;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  // Re-probe under the lock: another writer may have interned it between
  // the optimistic Find and lock acquisition.
  {
    const uint32_t ref = Find(key);
    if (ref != kNotFound) return ref;
  }
  const uint32_t ref = size_.load(std::memory_order_relaxed);
  MBP_CHECK_LT(ref, kMaxChunks * kChunkEntries);
  Table* table = table_.load(std::memory_order_relaxed);
  // Grow at 2/3 load so reader probe sequences stay short.
  if ((static_cast<size_t>(ref) + 1) * 3 > (table->mask + 1) * 2) {
    table = GrowLocked(table);
  }
  auto* entry = static_cast<Entry*>(
      arena_.Allocate(sizeof(Entry) + key.size(), alignof(Entry)));
  entry->hash = Hash(key);
  entry->ref = ref;
  entry->len = static_cast<uint32_t>(key.size());
  if (!key.empty()) {
    std::memcpy(const_cast<char*>(entry->bytes()), key.data(), key.size());
  }
  // Directory first, probe table second, size last: once a reader can
  // Find() the ref (via the probe table) or trust it (via size()), the
  // directory entry behind KeyOf() is already visible.
  const size_t chunk_index = ref >> kChunkShift;
  std::atomic<Entry*>* chunk =
      chunks_[chunk_index].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new std::atomic<Entry*>[kChunkEntries]();
    chunks_[chunk_index].store(chunk, std::memory_order_release);
  }
  chunk[ref & (kChunkEntries - 1)].store(entry, std::memory_order_release);
  InsertIntoTable(table, entry);
  size_.store(ref + 1, std::memory_order_release);
  return ref;
}

}  // namespace mbp

#ifndef MBP_COMMON_STATUS_H_
#define MBP_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace mbp {

// Error categories for recoverable failures. Programming errors (broken
// invariants) should use MBP_CHECK instead; see common/check.h.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kInfeasible,  // An optimization problem has an empty feasible region.
  // A bounded operation (connect, request round trip, drain) ran out of
  // time. Not retryable — the caller's time budget is already spent.
  kDeadlineExceeded,
  // The service is temporarily overloaded and shed the request
  // (RETRY_LATER on the wire). Retryable after backoff.
  kUnavailable,
};

// Returns a stable human-readable name, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

// A cheap, copyable value describing the outcome of an operation.
// Mirrors the absl::Status / rocksdb::Status idiom: functions that can fail
// for data-dependent reasons return Status (or StatusOr<T>) instead of
// throwing.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience constructors, mirroring absl::InvalidArgumentError etc.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status ResourceExhaustedError(std::string message);
Status InfeasibleError(std::string message);
Status DeadlineExceededError(std::string message);
Status UnavailableError(std::string message);

}  // namespace mbp

// Evaluates `expr` (a Status expression); returns it from the enclosing
// function if not OK.
#define MBP_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::mbp::Status mbp_return_if_error_st = (expr);  \
    if (!mbp_return_if_error_st.ok()) {             \
      return mbp_return_if_error_st;                \
    }                                               \
  } while (false)

#endif  // MBP_COMMON_STATUS_H_

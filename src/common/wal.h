#ifndef MBP_COMMON_WAL_H_
#define MBP_COMMON_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/metrics.h"
#include "common/statusor.h"

namespace mbp::wal {

// Segmented append-only write-ahead log (DESIGN.md §5j): the durability
// primitive under the sale ledger and the catalog publish journal.
//
// On-disk format reuses the §5d frame discipline: every record is
//
//   offset  size  field
//   0       4     len       payload bytes (1 <= len <= kMaxRecordBytes)
//   4       4     checksum  FNV-1a-32 over the payload bytes
//   8       len   payload   opaque to the WAL; callers own the encoding
//
// little-endian, written with ONE write() so a crash tears at most the
// tail of the last record. Records live in segment files
// "wal-<seq>.seg" that rotate past segment_bytes; a checkpoint
// "ckpt-<seq>.ckpt" holds one application-state record subsuming every
// segment with a smaller sequence number (those are deleted — the
// compaction step).
//
// Recovery contract (the torn-tail discipline): Open() picks the newest
// checkpoint whose record validates, then replays the surviving segments
// in sequence order. Replay admits the LONGEST VALID PREFIX of records:
// the first record whose length is implausible or whose checksum fails
// — a torn tail from a mid-write crash, or bit rot — stops replay, the
// file is truncated at the last valid record, and later segments are
// dropped. A corrupt record is NEVER surfaced to the replay callback,
// and no record before the damage is ever lost.
//
// Durability contract: Append() returns only once the record is durable
// under the configured fsync policy —
//   kEveryRecord  fdatasync before every return: an acked append
//                 survives kill -9 AND power loss;
//   kBatch        group commit: the first appender in a window becomes
//                 the sync leader and fdatasyncs ONCE for every record
//                 written while its flush was in flight; concurrent
//                 appenders block until a sync covers their record.
//                 Same guarantee as kEveryRecord at a fraction of the
//                 fdatasync count under concurrency;
//   kNone         no fsync on the append path (the OS flushes lazily):
//                 survives process death (kill -9) because the page
//                 cache is kernel-owned, but NOT power loss. The chaos
//                 harness runs under this truth: SIGKILL never loses a
//                 written record, pulled power may.
//
// Thread safety: Append/Sync/Checkpoint may race from any thread.
// Open() is exclusive (single process, single instance per directory).

inline constexpr size_t kWalHeaderBytes = 8;
// Segment records stay small (one sale, one publish): 1MiB is the
// implausible-length bound torn-tail detection leans on. Checkpoint
// state is a whole-application snapshot (e.g. every listing in a §5g
// catalog) and scales with it, so it gets its own, far looser bound.
inline constexpr size_t kMaxWalRecordBytes = size_t{1} << 20;
inline constexpr size_t kMaxWalCheckpointBytes = size_t{1} << 30;

enum class FsyncPolicy : uint8_t {
  kNone = 0,
  kBatch = 1,
  kEveryRecord = 2,
};

// "none" / "batch" / "every"; false on anything else.
bool ParseFsyncPolicy(std::string_view name, FsyncPolicy* out);
std::string_view FsyncPolicyName(FsyncPolicy policy);

struct WalOptions {
  // Rotate to a fresh segment once the current one reaches this size.
  size_t segment_bytes = size_t{4} << 20;
  FsyncPolicy fsync_policy = FsyncPolicy::kBatch;
};

// What Open() found on disk, surfaced on the READY line and via STATS.
struct WalRecovery {
  // Payload of the newest valid checkpoint, empty when none was found.
  std::string checkpoint;
  bool has_checkpoint = false;
  // Records replayed from segment files (0 after a clean Shutdown()
  // checkpoint — the "skips segment replay" observable).
  uint64_t records_replayed = 0;
  // Damage events: torn tails truncated + corrupt records rejected.
  uint64_t torn_tail = 0;
  // Bytes dropped by truncation (the torn tail itself).
  uint64_t truncated_bytes = 0;
  uint64_t recovery_micros = 0;
};

class Wal {
 public:
  // Opens (creating the directory if needed) and recovers the log at
  // `dir`: the newest valid checkpoint payload lands in
  // recovery->checkpoint, then `replay` is called once per surviving
  // segment record, in append order. The returned Wal appends after the
  // last valid record.
  static StatusOr<std::unique_ptr<Wal>> Open(
      const std::string& dir, const WalOptions& options,
      const std::function<void(std::string_view)>& replay,
      WalRecovery* recovery = nullptr);

  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Appends one record; on return the record is durable per the fsync
  // policy. Thread-safe (group commit under kBatch).
  Status Append(std::string_view payload);

  // Forces everything appended so far to disk (fdatasync), regardless of
  // policy. No-op when nothing is unsynced.
  Status Sync();

  // Writes `state` as a new checkpoint (tmp + fsync + rename + directory
  // fsync, so a crash mid-checkpoint falls back to the previous one),
  // then deletes the segments and checkpoints it subsumes. After a
  // checkpoint the next Open() replays only records appended after it —
  // a clean-shutdown checkpoint makes the next start replay ZERO
  // segment records.
  Status Checkpoint(std::string_view state);

  const WalRecovery& recovery() const { return recovery_; }
  const std::string& dir() const { return dir_; }

  uint64_t appends() const { return appends_.Value(); }
  uint64_t fsyncs() const { return fsyncs_.Value(); }
  uint64_t bytes_appended() const { return bytes_.Value(); }
  uint64_t checkpoints() const { return checkpoints_.Value(); }

 private:
  Wal(std::string dir, WalOptions options);

  // Opens segment `seq` for appending (creating it), closing the current
  // one first. Mutex must be held.
  Status OpenSegmentLocked(uint64_t seq);
  // Seals + fsyncs the current segment and opens the next. Mutex held
  // via `lock` (briefly released to wait out an in-flight group sync).
  Status RotateLocked(std::unique_lock<std::mutex>* lock);
  // The group-commit core: returns once `lsn` is covered by a sync (or
  // immediately under kNone). Mutex held on entry and exit.
  Status WaitDurableLocked(std::unique_lock<std::mutex>* lock, uint64_t lsn);
  Status FdatasyncLocked();

  const std::string dir_;
  const WalOptions options_;
  WalRecovery recovery_;

  Counter appends_;
  Counter fsyncs_;
  Counter bytes_;
  Counter checkpoints_;

  std::mutex mutex_;
  std::condition_variable synced_cv_;
  int fd_ = -1;            // current segment
  uint64_t segment_seq_ = 0;
  size_t segment_size_ = 0;
  std::string scratch_;    // frame assembly buffer (header + payload)
  uint64_t last_lsn_ = 0;  // appended records, monotone
  uint64_t synced_lsn_ = 0;
  bool sync_in_flight_ = false;
  Status sync_error_ = Status::OK();  // sticky: a failed fsync poisons the log
};

}  // namespace mbp::wal

#endif  // MBP_COMMON_WAL_H_

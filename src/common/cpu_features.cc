#include "common/cpu_features.h"

#include <cstdlib>

#if defined(__x86_64__) || defined(_M_X64)
#define MBP_CPU_X86_64 1
#include <cpuid.h>
#include <cstdint>
#endif

namespace mbp {
namespace {

#if defined(MBP_CPU_X86_64)
// XCR0 via xgetbv: bits 1 (SSE/XMM) and 2 (AVX/YMM) must both be set by
// the OS before 256-bit state is preserved across context switches.
uint64_t ReadXcr0() {
  uint32_t eax = 0, edx = 0;
  __asm__ __volatile__("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<uint64_t>(edx) << 32) | eax;
}
#endif

CpuFeatures Detect() {
  CpuFeatures features;
#if defined(MBP_CPU_X86_64)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return features;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  if (!osxsave) return features;  // OS never enabled extended state
  const uint64_t xcr0 = ReadXcr0();
  const bool ymm_enabled = (xcr0 & 0x6) == 0x6;
  if (!ymm_enabled) return features;
  features.avx = (ecx & (1u << 28)) != 0;
  features.fma = (ecx & (1u << 12)) != 0;
  unsigned eax7 = 0, ebx7 = 0, ecx7 = 0, edx7 = 0;
  if (__get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7) != 0) {
    features.avx2 = features.avx && (ebx7 & (1u << 5)) != 0;
  }
#endif
  return features;
}

bool ForceScalarFromEnv() {
  const char* value = std::getenv("MBP_FORCE_SCALAR");
  if (value == nullptr) return false;
  if (value[0] == '\0') return false;
  if (value[0] == '0' && value[1] == '\0') return false;
  return true;
}

}  // namespace

const CpuFeatures& DetectCpuFeatures() {
  static const CpuFeatures features = Detect();
  return features;
}

std::string SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2Fma:
      return "avx2_fma";
  }
  return "unknown";
}

SimdLevel ActiveSimdLevel() {
  static const SimdLevel level = [] {
#if defined(MBP_HAVE_AVX2)
    if (!ForceScalarFromEnv()) {
      const CpuFeatures& features = DetectCpuFeatures();
      if (features.avx2 && features.fma) return SimdLevel::kAvx2Fma;
    }
#else
    (void)ForceScalarFromEnv;
#endif
    return SimdLevel::kScalar;
  }();
  return level;
}

}  // namespace mbp

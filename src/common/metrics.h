#ifndef MBP_COMMON_METRICS_H_
#define MBP_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace mbp {

// Lightweight operational metrics for the serving paths: monotone counters
// and a fixed-bucket latency histogram, both updated with relaxed atomics
// so the hot path pays one uncontended RMW per event and never a lock.
//
// Readers take a point-in-time copy through the Snapshot()/snapshot-struct
// API. Because updates are relaxed and unsynchronized with each other, a
// snapshot taken while writers are active is a *consistent-enough* view
// for monitoring (each field is individually atomic; cross-field skew is
// bounded by the events in flight), and a snapshot taken at quiescence is
// exact. That is the intended contract for STATS-verb responses and
// shutdown reports — not for correctness decisions.

// Running maximum (high-water mark), e.g. the deepest write queue a
// server connection ever reached. Relaxed CAS loop: lossless under
// concurrency (the final value is the true max of all observations).
class MaxGauge {
 public:
  void Observe(uint64_t v) {
    uint64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Signed up/down gauge for resource accounting — catalog-resident
// snapshot bytes, live listings. Relaxed add: concurrent deltas commute,
// so the settled value is exact; a mid-flight read is monitoring-grade
// like every other metric here.
class Gauge {
 public:
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Monotone event counter.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Fixed log2 bucketing over microseconds: bucket 0 holds [0, 1) µs and
// bucket i >= 1 holds [2^(i-1), 2^i) µs; the last bucket absorbs
// everything above ~36 minutes. 32 buckets make the whole histogram two
// cache lines, cheap enough to share between every connection of a
// server shard. The bucketing is just log2 of a non-negative value, so
// the same type doubles as a size histogram (e.g. write-queue depth in
// bytes: bucket i = [2^(i-1), 2^i) bytes); the *Micros names read as
// "units" there.
inline constexpr size_t kLatencyBuckets = 32;

// Returns the inclusive lower bound (µs) of bucket `i`.
double LatencyBucketLowerMicros(size_t i);

struct LatencyHistogramSnapshot {
  uint64_t count = 0;
  double sum_micros = 0.0;
  std::array<uint64_t, kLatencyBuckets> buckets{};

  double mean_micros() const {
    return count == 0 ? 0.0 : sum_micros / static_cast<double>(count);
  }

  // Quantile estimate in µs for q in [0, 1]: finds the bucket holding the
  // ceil(q * count)-th sample and interpolates linearly inside it. Exact
  // to within one bucket width (a factor-of-2 band); 0 when empty.
  double QuantileMicros(double q) const;
};

class LatencyHistogram {
 public:
  // Records one sample. Negative samples clamp to 0.
  void Record(double micros);

  LatencyHistogramSnapshot Snapshot() const;

 private:
  std::atomic<uint64_t> count_{0};
  // Sum kept in integer nanoseconds so it can be a relaxed fetch_add.
  std::atomic<uint64_t> sum_nanos_{0};
  std::array<std::atomic<uint64_t>, kLatencyBuckets> buckets_{};
};

// Per-transport observability for the pluggable net backends (served via
// the STATS verb; see net/transport.h). One block is shared by every
// shard transport of a server, same as the other server metrics.
struct TransportCounters {
  // Kernel crossings the transports themselves make (epoll_wait / recv /
  // sendmsg / accept4 / epoll_ctl on the epoll backend, io_uring_enter
  // on the uring backend, futex wait/wake on the shm backend). Dividing
  // the delta by requests served is the syscalls-per-request figure
  // bench_net records.
  Counter transport_syscalls;
  // A requested backend was unavailable at Start() and the server
  // downgraded to epoll (uring on an old kernel, failed ring setup).
  Counter transport_fallbacks;
  // SQEs handed to the kernel across all io_uring_enter calls.
  Counter uring_sqe_submitted;
  // FUTEX_WAKE calls issued because a shm-ring peer declared itself
  // asleep (the doorbell protocol's slow path; the spin path is free).
  Counter shm_doorbell_wakes;
};

}  // namespace mbp

#endif  // MBP_COMMON_METRICS_H_

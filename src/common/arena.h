#ifndef MBP_COMMON_ARENA_H_
#define MBP_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

namespace mbp {

// Monotonic bump allocator for per-pass scratch on the serving hot path
// (DESIGN.md §5f). Allocate() bumps a pointer inside the current block;
// Reset() rewinds to the start without freeing, so after warm-up a
// steady-state workload allocates from ONE resident block and never
// touches the heap again — the property the zero-allocation request-path
// test asserts.
//
// Growth: when a block fills, a new block of max(2x the total resident
// capacity, the request) is chained on. Reset() notices that more than
// one block was used and coalesces the chain into a single block of the
// combined capacity, so the steady state converges to one block after a
// bounded number of warm-up passes (capacity only ever doubles).
//
// Lifetime contract: pointers returned by Allocate are valid until the
// NEXT Reset() — never across one. Blocks already handed out are never
// moved or freed between Resets (coalescing happens inside Reset only),
// so growth mid-pass cannot invalidate earlier allocations in the pass.
//
// Not thread-safe: an Arena belongs to exactly one owner (a connection on
// its shard thread, a shard's per-pass staging).
class Arena {
 public:
  explicit Arena(size_t initial_capacity = 0) {
    if (initial_capacity > 0) head_ = NewBlock(initial_capacity, nullptr);
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() { FreeChain(head_); }

  // `align` must be a power of two. Never returns nullptr (aborts on OOM
  // like operator new). Alignment is of the absolute address (the block
  // payload itself is only new-aligned, so aligning the offset alone
  // would not be enough for over-aligned requests).
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    Block* b = head_;
    if (b != nullptr) {
      const uintptr_t base = reinterpret_cast<uintptr_t>(b->data());
      const uintptr_t p = AlignUp(base + b->used, align);
      if (p + bytes <= base + b->capacity) {
        b->used = static_cast<size_t>(p - base) + bytes;
        return reinterpret_cast<void*>(p);
      }
    }
    return AllocateSlow(bytes, align);
  }

  // Typed array of default-constructible Ts (uninitialized for trivial
  // types — callers on the hot path overwrite every element anyway).
  template <typename T>
  T* AllocateArray(size_t n) {
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  // Rewinds every block. Keeps (and coalesces) capacity; frees nothing
  // back to the heap unless coalescing replaces several blocks with one.
  void Reset() {
    if (head_ == nullptr) return;
    if (head_->next != nullptr) {
      // More than one block was live this pass: replace the chain with a
      // single block of the combined capacity so the next pass bumps
      // inside one contiguous region.
      size_t total = 0;
      for (Block* b = head_; b != nullptr; b = b->next) total += b->capacity;
      FreeChain(head_);
      head_ = NewBlock(total, nullptr);
      ++coalesces_;
    }
    head_->used = 0;
    ++resets_;
  }

  // Frees every block back to the heap (capacity drops to zero). For
  // teardown paths; steady-state code uses Reset().
  void Release() {
    FreeChain(head_);
    head_ = nullptr;
  }

  // Total capacity currently resident across all blocks.
  size_t capacity() const {
    size_t total = 0;
    for (Block* b = head_; b != nullptr; b = b->next) total += b->capacity;
    return total;
  }

  // Bytes handed out since the last Reset.
  size_t used() const {
    size_t total = 0;
    for (Block* b = head_; b != nullptr; b = b->next) total += b->used;
    return total;
  }

  // Heap allocations the arena itself has performed over its lifetime.
  // Stops growing once the workload's per-pass footprint stabilizes —
  // the observable the zero-allocation test gates on.
  uint64_t heap_blocks_allocated() const { return heap_blocks_; }
  uint64_t resets() const { return resets_; }
  uint64_t coalesces() const { return coalesces_; }

 private:
  struct Block {
    Block* next = nullptr;
    size_t capacity = 0;
    size_t used = 0;
    char* data() { return reinterpret_cast<char*>(this + 1); }
  };

  static uintptr_t AlignUp(uintptr_t v, uintptr_t align) {
    return (v + align - 1) & ~(align - 1);
  }

  // ::operator new (not malloc) so a replaced global operator new — the
  // counting allocator behind the zero-allocation request-path test —
  // observes arena block traffic like any other heap use.
  Block* NewBlock(size_t capacity, Block* next) {
    ++heap_blocks_;
    void* raw = ::operator new(sizeof(Block) + capacity);
    Block* b = new (raw) Block();
    b->next = next;
    b->capacity = capacity;
    return b;
  }

  void* AllocateSlow(size_t bytes, size_t align) {
    // New head sized to at least double the resident capacity: the number
    // of growth events over the arena's lifetime is logarithmic in the
    // peak footprint, and one post-growth Reset coalesces back to a
    // single block.
    const size_t want = bytes + align;
    size_t grown = capacity() * 2;
    if (grown < kMinBlockBytes) grown = kMinBlockBytes;
    if (grown < want) grown = want;
    head_ = NewBlock(grown, head_);
    const uintptr_t base = reinterpret_cast<uintptr_t>(head_->data());
    const uintptr_t p = AlignUp(base, align);
    head_->used = static_cast<size_t>(p - base) + bytes;
    return reinterpret_cast<void*>(p);
  }

  void FreeChain(Block* b) {
    while (b != nullptr) {
      Block* next = b->next;
      b->~Block();
      ::operator delete(static_cast<void*>(b));
      b = next;
    }
  }

  static constexpr size_t kMinBlockBytes = 4096;

  Block* head_ = nullptr;
  uint64_t heap_blocks_ = 0;
  uint64_t resets_ = 0;
  uint64_t coalesces_ = 0;
};

// Minimal growable array on an Arena: push_back with geometric growth.
// Superseded copies are leaked into the arena until the owner's Reset —
// the monotonic-arena trade: O(n) wasted bytes per pass for zero heap
// traffic. Elements must be trivially copyable (they are memcpy'd on
// growth and never destroyed).
template <typename T>
class ArenaVector {
 public:
  static_assert(std::is_trivially_copyable_v<T>,
                "ArenaVector elements are memcpy-grown and never destroyed");

  explicit ArenaVector(Arena* arena) : arena_(arena) {}

  void push_back(const T& value) {
    if (size_ == capacity_) Grow();
    data_[size_++] = value;
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  void Grow() {
    const size_t grown = capacity_ == 0 ? 8 : capacity_ * 2;
    T* moved = arena_->AllocateArray<T>(grown);
    if (size_ > 0) std::memcpy(moved, data_, size_ * sizeof(T));
    data_ = moved;
    capacity_ = grown;
  }

  Arena* arena_;
  T* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace mbp

#endif  // MBP_COMMON_ARENA_H_

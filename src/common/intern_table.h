#ifndef MBP_COMMON_INTERN_TABLE_H_
#define MBP_COMMON_INTERN_TABLE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

#include "common/arena.h"

namespace mbp {

// Interns byte strings into dense uint32 refs: the first distinct key gets
// ref 0, the next ref 1, and so on. Built for the serving catalog's curve
// ids (DESIGN.md §5g): the request path resolves a wire-buffer
// string_view to a ref with ONE open-addressed probe sequence and no
// lock, no allocation, and no std::string materialization; everything
// downstream then indexes dense arrays by ref.
//
// Concurrency contract:
//  - Find() and KeyOf() are lock-free and wait-free-ish (probe length is
//    bounded by the load factor), safe against any number of concurrent
//    Intern() calls.
//  - Intern() serializes writers on an internal mutex. Keys are
//    insert-only: refs are never reused or removed, so a ref observed
//    once is valid forever (the catalog withdraws *snapshots*, never id
//    bindings).
//  - Entry bytes live in an internal arena that is never Reset, so the
//    string_view returned by KeyOf() is stable for the table's lifetime.
//    When the probe table grows, the old slot array is retired but kept
//    allocated until destruction: a racing reader probing the old array
//    still sees valid entries (it may miss a key interned after the swap
//    and report kNotFound — the same answer it would have gotten a
//    moment earlier, which callers must already tolerate).
//
// Keys are arbitrary bytes: embedded NULs are significant and legal
// (curve ids on the wire are length-prefixed, not NUL-terminated).
//
// Hashing is FNV-1a-32 — the same family the wire checksum uses. 32 bits
// is deliberate: collisions are resolved by a byte compare anyway, and a
// 32-bit space lets the test suite brute-force a real colliding pair in
// ~2^16 birthday draws to pin the collision path.
class InternTable {
 public:
  // Returned by Find() for keys never interned.
  static constexpr uint32_t kNotFound = 0xFFFFFFFFu;

  InternTable();
  ~InternTable();
  InternTable(const InternTable&) = delete;
  InternTable& operator=(const InternTable&) = delete;

  // Returns the ref of `key`, interning it first if new. Refs are dense:
  // size() - 1 after a fresh intern.
  uint32_t Intern(std::string_view key);

  // Lock-free, allocation-free lookup: the ref of `key`, or kNotFound.
  uint32_t Find(std::string_view key) const;

  // The key bytes behind `ref` (stable for the table's lifetime).
  // ref must be < size().
  std::string_view KeyOf(uint32_t ref) const;

  // Number of distinct keys interned. Acquire load: every ref < size()
  // is safe to pass to KeyOf().
  size_t size() const { return size_.load(std::memory_order_acquire); }

  // The hash function (FNV-1a-32), exposed so tests can construct
  // colliding keys deliberately.
  static uint32_t Hash(std::string_view key);

 private:
  struct Entry {
    uint32_t hash = 0;
    uint32_t ref = 0;
    uint32_t len = 0;
    // Key bytes follow the struct in the same arena block.
    const char* bytes() const {
      return reinterpret_cast<const char*>(this) + sizeof(Entry);
    }
    std::string_view key() const { return {bytes(), len}; }
  };

  // Open-addressed probe table: power-of-two slot array of atomic entry
  // pointers, linear probing. Stored behind an atomic pointer so readers
  // can keep probing a retired table across a grow.
  struct Table {
    size_t mask = 0;                    // capacity - 1
    std::atomic<Entry*>* slots = nullptr;
  };

  // Ref -> Entry directory, chunked so it grows without ever moving or
  // reallocating a slot a reader might be loading: a fixed array of
  // atomic chunk pointers, each chunk a fixed array of atomic entry
  // pointers. 4096 chunks x 4096 entries = 16.7M interned keys max.
  static constexpr size_t kChunkShift = 12;
  static constexpr size_t kChunkEntries = size_t{1} << kChunkShift;
  static constexpr size_t kMaxChunks = 4096;

  static Table* NewTable(size_t capacity);
  static void FreeTable(Table* table);
  // Publishes `entry` into `table`'s probe sequence (writer-side only).
  static void InsertIntoTable(Table* table, Entry* entry);
  Table* GrowLocked(Table* old_table);

  mutable std::mutex mutex_;  // serializes Intern() writers only
  std::atomic<Table*> table_;
  std::atomic<uint32_t> size_{0};
  Arena arena_;  // Entry storage; never Reset, so entry addresses are stable
  std::vector<Table*> retired_;  // old probe tables readers may still hold
  std::array<std::atomic<std::atomic<Entry*>*>, kMaxChunks> chunks_{};
};

}  // namespace mbp

#endif  // MBP_COMMON_INTERN_TABLE_H_

#ifndef MBP_COMMON_TIMER_H_
#define MBP_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace mbp {

// Monotonic wall-clock stopwatch used by the benchmark harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  // Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  // Elapsed time since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mbp

#endif  // MBP_COMMON_TIMER_H_

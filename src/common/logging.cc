#include "common/logging.h"

namespace mbp {
namespace {

LogSeverity g_min_severity = LogSeverity::kInfo;

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetMinLogSeverity(LogSeverity severity) { g_min_severity = severity; }
LogSeverity MinLogSeverity() { return g_min_severity; }

namespace internal_logging {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : enabled_(severity >= g_min_severity) {
  if (enabled_) {
    stream_ << "[" << SeverityTag(severity) << " " << file << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
}

}  // namespace internal_logging
}  // namespace mbp

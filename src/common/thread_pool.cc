#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <string>
#include <utility>

namespace mbp {

size_t ParallelConfig::ResolvedThreads() const {
  if (num_threads != 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(size_t num_workers) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(
      std::max<size_t>(std::thread::hardware_concurrency(), 4));
  return pool;
}

namespace {

// Shared state of one ParallelFor call. Chunks are claimed off an atomic
// counter; the caller waits until every claimed chunk has finished.
struct ParallelForState {
  size_t begin = 0;
  size_t end = 0;
  size_t grain = 1;
  size_t num_chunks = 0;
  const std::function<Status(size_t, size_t)>* fn = nullptr;

  std::atomic<size_t> next_chunk{0};
  std::atomic<size_t> chunks_done{0};

  std::mutex mutex;
  std::condition_variable all_done;
  size_t first_error_chunk = ~size_t{0};
  Status error;

  void RecordError(size_t chunk, Status status) {
    std::lock_guard<std::mutex> lock(mutex);
    if (chunk < first_error_chunk) {
      first_error_chunk = chunk;
      error = std::move(status);
    }
  }

  // Claims and runs chunks until the counter is exhausted.
  void RunChunks() {
    for (;;) {
      const size_t chunk = next_chunk.fetch_add(1);
      if (chunk >= num_chunks) return;
      const size_t chunk_begin = begin + chunk * grain;
      const size_t chunk_end = std::min(end, chunk_begin + grain);
      Status status;
      try {
        status = (*fn)(chunk_begin, chunk_end);
      } catch (const std::exception& e) {
        status = InternalError(std::string("ParallelFor task threw: ") +
                               e.what());
      } catch (...) {
        status = InternalError("ParallelFor task threw a non-exception");
      }
      if (!status.ok()) RecordError(chunk, std::move(status));
      if (chunks_done.fetch_add(1) + 1 == num_chunks) {
        std::lock_guard<std::mutex> lock(mutex);
        all_done.notify_all();
      }
    }
  }
};

}  // namespace

Status ParallelFor(const ParallelConfig& config, size_t begin, size_t end,
                   size_t grain,
                   const std::function<Status(size_t, size_t)>& fn) {
  if (end <= begin) return Status::OK();
  if (grain == 0) grain = 1;
  const size_t total = end - begin;
  const size_t num_chunks = (total + grain - 1) / grain;

  ThreadPool& pool = config.pool != nullptr ? *config.pool
                                            : ThreadPool::Shared();
  // Caller + helpers; never more threads than chunks or pool capacity + 1.
  const size_t threads = std::min(
      {config.ResolvedThreads(), num_chunks, pool.num_workers() + 1});

  if (threads <= 1) {
    // Serial fallback: same chunk decomposition and error semantics as the
    // parallel path (all chunks run; lowest failing chunk wins).
    size_t first_error_chunk = ~size_t{0};
    Status error;
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      const size_t chunk_begin = begin + chunk * grain;
      const size_t chunk_end = std::min(end, chunk_begin + grain);
      Status status;
      try {
        status = fn(chunk_begin, chunk_end);
      } catch (const std::exception& e) {
        status = InternalError(std::string("ParallelFor task threw: ") +
                               e.what());
      } catch (...) {
        status = InternalError("ParallelFor task threw a non-exception");
      }
      if (!status.ok() && chunk < first_error_chunk) {
        first_error_chunk = chunk;
        error = std::move(status);
      }
    }
    return first_error_chunk == ~size_t{0} ? Status::OK() : error;
  }

  auto state = std::make_shared<ParallelForState>();
  state->begin = begin;
  state->end = end;
  state->grain = grain;
  state->num_chunks = num_chunks;
  state->fn = &fn;

  // Helper tasks hold a shared_ptr so the state outlives the caller even
  // if a helper is dequeued after the loop below already finished all
  // chunks (it then exits immediately off the exhausted counter).
  for (size_t i = 0; i + 1 < threads; ++i) {
    pool.Submit([state] { state->RunChunks(); });
  }
  state->RunChunks();

  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->all_done.wait(lock, [&] {
      return state->chunks_done.load() == state->num_chunks;
    });
  }
  return state->first_error_chunk == ~size_t{0} ? Status::OK()
                                                : state->error;
}

}  // namespace mbp

#include "common/metrics.h"

#include <bit>
#include <cmath>

namespace mbp {
namespace {

size_t BucketIndex(double micros) {
  if (micros < 1.0) return 0;
  // bit_width(m) for m >= 1 is floor(log2(m)) + 1, so [2^(i-1), 2^i) µs
  // lands in bucket i as documented in the header.
  const uint64_t m = static_cast<uint64_t>(micros);
  const size_t i = static_cast<size_t>(std::bit_width(m));
  return i < kLatencyBuckets ? i : kLatencyBuckets - 1;
}

}  // namespace

double LatencyBucketLowerMicros(size_t i) {
  if (i == 0) return 0.0;
  return std::ldexp(1.0, static_cast<int>(i) - 1);  // 2^(i-1)
}

double LatencyHistogramSnapshot::QuantileMicros(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample, 1-based; q = 0 maps to the first sample.
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(
                                std::ceil(q * static_cast<double>(count))));
  uint64_t seen = 0;
  for (size_t i = 0; i < kLatencyBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] >= rank) {
      const double lo = LatencyBucketLowerMicros(i);
      const double hi = i + 1 < kLatencyBuckets
                            ? LatencyBucketLowerMicros(i + 1)
                            : 2.0 * lo;
      const double within = static_cast<double>(rank - seen) /
                            static_cast<double>(buckets[i]);
      return lo + within * (hi - lo);
    }
    seen += buckets[i];
  }
  return LatencyBucketLowerMicros(kLatencyBuckets - 1);
}

void LatencyHistogram::Record(double micros) {
  if (!(micros > 0.0)) micros = 0.0;  // clamps negatives and NaN
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(static_cast<uint64_t>(std::llround(micros * 1e3)),
                       std::memory_order_relaxed);
  buckets_[BucketIndex(micros)].fetch_add(1, std::memory_order_relaxed);
}

LatencyHistogramSnapshot LatencyHistogram::Snapshot() const {
  LatencyHistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_micros =
      static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) * 1e-3;
  for (size_t i = 0; i < kLatencyBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

}  // namespace mbp

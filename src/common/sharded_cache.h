#ifndef MBP_COMMON_SHARDED_CACHE_H_
#define MBP_COMMON_SHARDED_CACHE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/check.h"

namespace mbp {

// Rounds v up to the next power of two (returns 1 for v == 0).
constexpr uint64_t NextPowerOfTwo(uint64_t v) {
  if (v <= 1) return 1;
  --v;
  v |= v >> 1;
  v |= v >> 2;
  v |= v >> 4;
  v |= v >> 8;
  v |= v >> 16;
  v |= v >> 32;
  return v + 1;
}

// splitmix64 finalizer: a cheap full-avalanche mix, so that keys differing
// only in high bits (e.g. bit patterns of nearby doubles) still spread
// across power-of-two shard/slot masks.
inline uint64_t HashMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// A concurrent memoization cache sharded over power-of-two `Shard`s, each a
// fixed, direct-mapped slot array. One hash picks both the shard (low bits)
// and the slot within it (high bits); the critical section under the shard
// mutex is a two-word key compare — no node allocation, no rehash, no probe
// loop. Point lookups touch exactly one shard, so readers of distinct
// shards never contend. Designed for the price-query serving hot path but
// generic over any (64-bit key x salt) -> Value memo.
//
// Keys are (primary, salt) pairs; both must match exactly for a hit. The
// serving engine uses primary = bit pattern of the (quantized) query and
// salt = the curve slot's publish stamp, so republishing a curve implicitly
// invalidates every cached entry without any scan. Salt 0 is reserved to
// mark empty slots: Put with salt 0 is dropped and TryGet with salt 0
// always misses (registry stamps start at 1, so the engine never sees
// this).
//
// Eviction is by collision: an insert whose slot is occupied by a different
// key overwrites it. A memo cache tolerates that lossy policy — a displaced
// recurring key is simply re-inserted on its next miss — and it bounds
// memory at shards * capacity * sizeof(slot) with zero bookkeeping on the
// hit path.
template <typename Value>
class ShardedMemoCache {
 public:
  // `num_shards` and `capacity_per_shard` are rounded up to powers of two.
  // A capacity of 0 disables caching entirely (every TryGet misses, Put is
  // a no-op, and no slot memory is allocated).
  ShardedMemoCache(size_t num_shards, size_t capacity_per_shard)
      : shard_mask_(NextPowerOfTwo(num_shards) - 1),
        slot_mask_(capacity_per_shard == 0
                       ? 0
                       : NextPowerOfTwo(capacity_per_shard) - 1),
        enabled_(capacity_per_shard > 0),
        shards_(shard_mask_ + 1) {
    if (enabled_) {
      for (Shard& shard : shards_) shard.slots.resize(slot_mask_ + 1);
    }
  }

  ShardedMemoCache(const ShardedMemoCache&) = delete;
  ShardedMemoCache& operator=(const ShardedMemoCache&) = delete;

  size_t num_shards() const { return shards_.size(); }
  size_t capacity_per_shard() const { return enabled_ ? slot_mask_ + 1 : 0; }

  // True and fills *value on a hit. Counts hits/misses.
  bool TryGet(uint64_t primary, uint64_t salt, Value* value) const {
    if (!enabled_ || salt == 0) {
      disabled_misses_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    const uint64_t h = HashMix64(primary ^ HashMix64(salt));
    Shard& shard = shards_[h & shard_mask_];
    std::lock_guard<std::mutex> lock(shard.mutex);
    const Slot& slot = shard.slots[(h >> 32) & slot_mask_];
    if (slot.salt == salt && slot.primary == primary) {
      *value = slot.value;
      ++shard.hits;
      return true;
    }
    ++shard.misses;
    return false;
  }

  // Single-lock lookup-or-fill: on a miss, `miss` is invoked (under the
  // shard mutex — it must be pure and lock-free) to produce the value,
  // which is stored in the slot and returned. Returns false only when
  // `miss` itself returns false (nothing cached then). One hash and one
  // lock acquisition instead of the TryGet + Put pair.
  template <typename MissFn>
  bool GetOrCompute(uint64_t primary, uint64_t salt, Value* value,
                    const MissFn& miss) const {
    if (!enabled_ || salt == 0) {
      disabled_misses_.fetch_add(1, std::memory_order_relaxed);
      return miss(value);
    }
    const uint64_t h = HashMix64(primary ^ HashMix64(salt));
    Shard& shard = shards_[h & shard_mask_];
    std::lock_guard<std::mutex> lock(shard.mutex);
    Slot& slot = shard.slots[(h >> 32) & slot_mask_];
    if (slot.salt == salt && slot.primary == primary) {
      *value = slot.value;
      ++shard.hits;
      return true;
    }
    ++shard.misses;
    if (!miss(value)) return false;
    if (slot.salt == 0) ++shard.occupied;
    slot.primary = primary;
    slot.salt = salt;
    slot.value = *value;
    return true;
  }

  void Put(uint64_t primary, uint64_t salt, const Value& value) {
    if (!enabled_ || salt == 0) return;
    const uint64_t h = HashMix64(primary ^ HashMix64(salt));
    Shard& shard = shards_[h & shard_mask_];
    std::lock_guard<std::mutex> lock(shard.mutex);
    Slot& slot = shard.slots[(h >> 32) & slot_mask_];
    if (slot.salt == 0) ++shard.occupied;
    slot.primary = primary;
    slot.salt = salt;
    slot.value = value;
  }

  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      for (Slot& slot : shard.slots) slot = Slot{};
      shard.occupied = 0;
    }
  }

  // Number of occupied slots across all shards.
  size_t size() const {
    size_t total = 0;
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      total += shard.occupied;
    }
    return total;
  }

  uint64_t hits() const {
    uint64_t total = 0;
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      total += shard.hits;
    }
    return total;
  }

  uint64_t misses() const {
    uint64_t total = disabled_misses_.load(std::memory_order_relaxed);
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      total += shard.misses;
    }
    return total;
  }

 private:
  struct Slot {
    uint64_t primary = 0;
    uint64_t salt = 0;  // 0 == empty
    Value value{};
  };
  struct Shard {
    mutable std::mutex mutex;
    std::vector<Slot> slots;
    // Stats live under the shard mutex (already held on every cache op),
    // so the hot path pays a plain increment, not an atomic RMW.
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t occupied = 0;
  };

  const uint64_t shard_mask_;
  const uint64_t slot_mask_;
  const bool enabled_;
  mutable std::vector<Shard> shards_;
  // Misses recorded while the cache is disabled (no shard mutex to count
  // under — shards hold no slots).
  mutable std::atomic<uint64_t> disabled_misses_{0};
};

}  // namespace mbp

#endif  // MBP_COMMON_SHARDED_CACHE_H_

#ifndef MBP_COMMON_FAULT_INJECTION_H_
#define MBP_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mbp::fault {

// Deterministic, seeded fault-injection framework (DESIGN.md §5e).
//
// Production code declares *named injection points* at the edges where
// reality misbehaves — syscall wrappers, allocation sites, publish paths —
// via the MBP_FAULT_POINT / MBP_FAULT_DELAY macros below. Tests arm a
// point with a PointSchedule (probability, fire budget, warm-up skip,
// optional delay); unarmed points never fire. Every armed point draws
// from its OWN PCG32 stream, seeded from (global seed, FNV-1a-64 of the
// point name), so:
//
//  - the fire/no-fire decision sequence of a point depends only on the
//    seed and the point's hit ordinal — never on other points, arming
//    order, or thread interleaving across points — making chaos runs
//    replayable from a single printed seed;
//  - count-based schedules (skip_first / max_fires) are exactly
//    deterministic even when probability is 1.
//
// Overhead contract: with MBP_FAULT_INJECTION=OFF (CMake option) the
// macros expand to constants, so the serving hot paths compile exactly as
// before — zero branches, zero loads. With the option ON but nothing
// armed, a point costs one relaxed atomic load and a predictable branch.
//
// Thread safety: Arm/Reset/Seed are for test setup (may race only with
// point evaluation, which is safe); ShouldFire/MaybeDelay are safe from
// any thread and serialize per point, not globally.

#if defined(MBP_FAULT_INJECTION_ENABLED)
inline constexpr bool kBuildEnabled = true;
#else
inline constexpr bool kBuildEnabled = false;
#endif

// Minimal PCG32 (pcg32_random_r of pcg-random.org): 64-bit LCG state with
// an odd stream increment and an xorshift-rotate output permutation.
// Self-contained so common/ does not depend on random/ and so the client
// can reuse it for backoff jitter.
class Pcg32 {
 public:
  Pcg32(uint64_t seed, uint64_t stream) : inc_((stream << 1u) | 1u) {
    Next();
    state_ += seed;
    Next();
  }

  uint32_t Next() {
    const uint64_t old = state_;
    state_ = old * 6364136223846793005ull + inc_;
    const uint32_t xorshifted =
        static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    const uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next()) * (1.0 / 4294967296.0);
  }

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

 private:
  uint64_t state_ = 0;
  uint64_t inc_;
};

// When and how an armed point fires. All counts are per point since Arm.
struct PointSchedule {
  // Chance that a hit past skip_first fires, drawn from the point's PCG
  // stream. 1.0 fires every eligible hit (no draw consumed, so pure
  // count schedules stay exact).
  double probability = 1.0;
  // Let the first N hits pass untouched (warm-up; e.g. let a connection
  // establish before failing its reads).
  uint64_t skip_first = 0;
  // Stop firing after this many fires (default: unbounded).
  uint64_t max_fires = ~uint64_t{0};
  // For MBP_FAULT_DELAY points: how long a fire stalls the caller.
  uint64_t delay_micros = 0;
};

struct PointStats {
  std::string point;
  uint64_t hits = 0;   // times the point was evaluated while armed
  uint64_t fires = 0;  // times it injected
};

class FaultInjector {
 public:
  // Process-wide instance the macros consult.
  static FaultInjector& Global();

  // Seeds the streams of points armed AFTER this call (existing armed
  // points keep their streams). Call before Arm.
  void Seed(uint64_t seed);

  // Arms (or re-arms, resetting counters and stream) a named point.
  void Arm(std::string_view point, PointSchedule schedule);

  // Disarms everything and clears counters; the injector returns to the
  // one-relaxed-load fast path.
  void Reset();

  // Hot-path check: false immediately when nothing is armed anywhere.
  bool ShouldFire(std::string_view point);

  // Sleeps for the point's delay_micros when it fires. Returns the delay
  // injected (0 when the point did not fire).
  uint64_t MaybeDelay(std::string_view point);

  // The crash action (DESIGN.md §5j): when the point fires, the process
  // dies ON THE SPOT via _exit(137) — no atexit handlers, no flushes, no
  // destructors, exactly the footprint of kill -9 — so crash-recovery
  // suites can park a death at a named instruction boundary (mid-write,
  // pre-fsync, post-fsync-pre-ack) instead of racing a signal.
  void MaybeCrash(std::string_view point);

  // Total fires across every point (cheap; served via STATS).
  uint64_t TotalFires() const {
    return total_fires_.load(std::memory_order_relaxed);
  }

  // Per-point hit/fire counters, sorted by point name.
  std::vector<PointStats> Stats() const;

  // Fires of one point (0 when never armed).
  uint64_t Fires(std::string_view point) const;

 private:
  struct Point;

  FaultInjector();
  ~FaultInjector();

  struct Impl;
  Impl* impl_;
  std::atomic<bool> any_armed_{false};
  std::atomic<uint64_t> total_fires_{0};
};

}  // namespace mbp::fault

// MBP_FAULT_POINT("net.recv.eintr"): true when the named point is armed
// and fires this hit. MBP_FAULT_DELAY sleeps instead of reporting.
// Both compile to constants when MBP_FAULT_INJECTION=OFF, so release
// builds carry no trace of the framework.
// MBP_FAULT_CRASH("wal.crash.pre_fsync"): _exit(137) when the named
// point is armed and fires — the kill-9-at-a-named-boundary primitive.
#if defined(MBP_FAULT_INJECTION_ENABLED)
#define MBP_FAULT_POINT(name) \
  (::mbp::fault::FaultInjector::Global().ShouldFire(name))
#define MBP_FAULT_DELAY(name) \
  (::mbp::fault::FaultInjector::Global().MaybeDelay(name))
#define MBP_FAULT_CRASH(name) \
  (::mbp::fault::FaultInjector::Global().MaybeCrash(name))
#else
#define MBP_FAULT_POINT(name) (false)
#define MBP_FAULT_DELAY(name) (uint64_t{0})
#define MBP_FAULT_CRASH(name) ((void)0)
#endif

#endif  // MBP_COMMON_FAULT_INJECTION_H_

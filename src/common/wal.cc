#include "common/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "common/fault_injection.h"

namespace mbp::wal {
namespace {

// FNV-1a-32 over the payload: the same per-frame integrity discipline as
// the wire protocol (net/protocol.h) — a flipped bit anywhere in a
// record's payload is caught before the record is replayed.
uint32_t Fnv1a32(const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t hash = 2166136261u;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 16777619u;
  }
  return hash;
}

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::string SegmentName(uint64_t seq) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%020" PRIu64 ".seg", seq);
  return buf;
}

std::string CheckpointName(uint64_t seq) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "ckpt-%020" PRIu64 ".ckpt", seq);
  return buf;
}

// Parses "<prefix><20-digit seq><suffix>"; false for anything else.
bool ParseSeq(std::string_view name, std::string_view prefix,
              std::string_view suffix, uint64_t* seq) {
  if (name.size() != prefix.size() + 20 + suffix.size()) return false;
  if (name.substr(0, prefix.size()) != prefix) return false;
  if (name.substr(prefix.size() + 20) != suffix) return false;
  uint64_t value = 0;
  for (size_t i = 0; i < 20; ++i) {
    const char c = name[prefix.size() + i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *seq = value;
  return true;
}

Status ErrnoError(const char* what, const std::string& path) {
  return InternalError(std::string(what) + " " + path + ": " +
                       std::strerror(errno));
}

// Reads the whole file into *out (replacing it). Not for huge files —
// segments are bounded by segment_bytes.
Status ReadFile(const std::string& path, std::string* out) {
  const int fd = open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return ErrnoError("open", path);
  out->clear();
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      close(fd);
      return ErrnoError("read", path);
    }
    if (n == 0) break;
    out->append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return Status::OK();
}

Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("write", path);
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FsyncDir(const std::string& dir) {
  const int fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return ErrnoError("open dir", dir);
  const int rc = fsync(fd);
  close(fd);
  if (rc != 0) return ErrnoError("fsync dir", dir);
  return Status::OK();
}

// Validates one frame at data[offset..]; returns the payload view and
// advances *offset past the frame, or false on a torn/corrupt frame.
// max_len is the implausible-length bound: kMaxWalRecordBytes for
// segment frames, kMaxWalCheckpointBytes for the checkpoint's one frame.
bool NextValidRecord(const std::string& data, size_t* offset,
                     std::string_view* payload,
                     size_t max_len = kMaxWalRecordBytes) {
  const size_t remaining = data.size() - *offset;
  if (remaining < kWalHeaderBytes) return false;
  const uint8_t* p =
      reinterpret_cast<const uint8_t*>(data.data()) + *offset;
  const uint32_t len = LoadU32(p);
  if (len == 0 || len > max_len) return false;
  if (remaining < kWalHeaderBytes + len) return false;
  const uint32_t checksum = LoadU32(p + 4);
  if (checksum != Fnv1a32(p + kWalHeaderBytes, len)) return false;
  *payload = std::string_view(data.data() + *offset + kWalHeaderBytes, len);
  *offset += kWalHeaderBytes + len;
  return true;
}

}  // namespace

bool ParseFsyncPolicy(std::string_view name, FsyncPolicy* out) {
  if (name == "none") {
    *out = FsyncPolicy::kNone;
  } else if (name == "batch") {
    *out = FsyncPolicy::kBatch;
  } else if (name == "every") {
    *out = FsyncPolicy::kEveryRecord;
  } else {
    return false;
  }
  return true;
}

std::string_view FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNone:
      return "none";
    case FsyncPolicy::kBatch:
      return "batch";
    case FsyncPolicy::kEveryRecord:
      return "every";
  }
  return "?";
}

Wal::Wal(std::string dir, WalOptions options)
    : dir_(std::move(dir)), options_(options) {}

Wal::~Wal() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (sync_in_flight_) synced_cv_.wait(lock);
  if (fd_ >= 0) {
    if (options_.fsync_policy != FsyncPolicy::kNone &&
        synced_lsn_ < last_lsn_) {
      fdatasync(fd_);
    }
    close(fd_);
    fd_ = -1;
  }
}

StatusOr<std::unique_ptr<Wal>> Wal::Open(
    const std::string& dir, const WalOptions& options,
    const std::function<void(std::string_view)>& replay,
    WalRecovery* recovery) {
  const auto start = std::chrono::steady_clock::now();
  if (mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return ErrnoError("mkdir", dir);
  }

  // Inventory the directory: segment and checkpoint sequence numbers.
  std::vector<uint64_t> segments;
  std::vector<uint64_t> checkpoints;
  {
    DIR* d = opendir(dir.c_str());
    if (d == nullptr) return ErrnoError("opendir", dir);
    while (struct dirent* entry = readdir(d)) {
      uint64_t seq = 0;
      if (ParseSeq(entry->d_name, "wal-", ".seg", &seq)) {
        segments.push_back(seq);
      } else if (ParseSeq(entry->d_name, "ckpt-", ".ckpt", &seq)) {
        checkpoints.push_back(seq);
      }
      // Anything else (stray ".tmp" from a crashed checkpoint, foreign
      // files) is ignored; compaction cleans tmp files up.
    }
    closedir(d);
  }
  std::sort(segments.begin(), segments.end());
  std::sort(checkpoints.begin(), checkpoints.end());

  std::unique_ptr<Wal> log(new Wal(dir, options));
  WalRecovery& rec = log->recovery_;

  // Newest checkpoint whose single record validates wins; a corrupt one
  // (bit rot — the rename makes partial checkpoints invisible) falls
  // back to the next older, counting the damage.
  uint64_t start_seq = 0;
  for (size_t i = checkpoints.size(); i-- > 0;) {
    std::string data;
    const Status read =
        ReadFile(dir + "/" + CheckpointName(checkpoints[i]), &data);
    if (read.ok()) {
      size_t offset = 0;
      std::string_view payload;
      if (NextValidRecord(data, &offset, &payload,
                          kMaxWalCheckpointBytes) &&
          offset == data.size()) {
        rec.checkpoint = std::string(payload);
        rec.has_checkpoint = true;
        start_seq = checkpoints[i];
        break;
      }
    }
    ++rec.torn_tail;
  }

  // Replay surviving segments in order: longest valid prefix, truncate
  // at the first damaged record, drop everything after it.
  bool damaged = false;
  uint64_t last_seq_seen = 0;
  for (size_t i = 0; i < segments.size(); ++i) {
    const uint64_t seq = segments[i];
    if (seq < start_seq) continue;  // subsumed by the checkpoint
    const std::string path = dir + "/" + SegmentName(seq);
    if (damaged) {
      // A valid suffix past damage is NOT a valid prefix of the log;
      // deleting it keeps "recovered == longest valid prefix" exact.
      rec.truncated_bytes += [&] {
        struct stat st;
        return stat(path.c_str(), &st) == 0
                   ? static_cast<uint64_t>(st.st_size)
                   : 0;
      }();
      unlink(path.c_str());
      continue;
    }
    std::string data;
    MBP_RETURN_IF_ERROR(ReadFile(path, &data));
    size_t offset = 0;
    std::string_view payload;
    while (offset < data.size() &&
           NextValidRecord(data, &offset, &payload)) {
      if (replay) replay(payload);
      ++rec.records_replayed;
    }
    if (offset < data.size()) {
      // Torn tail (mid-write crash) or bit rot: truncate at the last
      // valid record so appends resume from a clean boundary.
      damaged = true;
      ++rec.torn_tail;
      rec.truncated_bytes += data.size() - offset;
      const int fd = open(path.c_str(), O_WRONLY | O_CLOEXEC);
      if (fd < 0) return ErrnoError("open", path);
      if (ftruncate(fd, static_cast<off_t>(offset)) != 0) {
        close(fd);
        return ErrnoError("ftruncate", path);
      }
      fsync(fd);
      close(fd);
    }
    last_seq_seen = seq;
  }

  // Position the append head: continue the last surviving segment while
  // it has room, otherwise start the next one.
  {
    std::unique_lock<std::mutex> lock(log->mutex_);
    const uint64_t append_seq =
        last_seq_seen != 0 ? last_seq_seen : std::max<uint64_t>(start_seq, 1);
    MBP_RETURN_IF_ERROR(log->OpenSegmentLocked(append_seq));
    if (log->segment_size_ >= options.segment_bytes) {
      MBP_RETURN_IF_ERROR(log->RotateLocked(&lock));
    }
  }

  rec.recovery_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  if (recovery != nullptr) *recovery = rec;
  return log;
}

Status Wal::OpenSegmentLocked(uint64_t seq) {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  const std::string path = dir_ + "/" + SegmentName(seq);
  const int fd =
      open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoError("open", path);
  struct stat st;
  if (fstat(fd, &st) != 0) {
    close(fd);
    return ErrnoError("fstat", path);
  }
  fd_ = fd;
  segment_seq_ = seq;
  segment_size_ = static_cast<size_t>(st.st_size);
  return Status::OK();
}

Status Wal::RotateLocked(std::unique_lock<std::mutex>* lock) {
  // Never close a segment a group-commit leader is fdatasync'ing.
  while (sync_in_flight_) synced_cv_.wait(*lock);
  if (fd_ >= 0 && options_.fsync_policy != FsyncPolicy::kNone) {
    // Seal: a rotated-away segment is fully durable, so the group-commit
    // fast path only ever has to sync the CURRENT segment.
    if (fdatasync(fd_) != 0) {
      sync_error_ = ErrnoError("fdatasync", dir_);
      synced_cv_.notify_all();
      return sync_error_;
    }
    fsyncs_.Increment();
    synced_lsn_ = last_lsn_;
  }
  MBP_RETURN_IF_ERROR(OpenSegmentLocked(segment_seq_ + 1));
  if (options_.fsync_policy != FsyncPolicy::kNone) {
    // The new segment's directory entry must survive power loss too.
    MBP_RETURN_IF_ERROR(FsyncDir(dir_));
  }
  return Status::OK();
}

Status Wal::FdatasyncLocked() {
  if (fdatasync(fd_) != 0) {
    sync_error_ = ErrnoError("fdatasync", dir_);
    synced_cv_.notify_all();
    return sync_error_;
  }
  fsyncs_.Increment();
  synced_lsn_ = last_lsn_;
  return Status::OK();
}

Status Wal::WaitDurableLocked(std::unique_lock<std::mutex>* lock,
                              uint64_t lsn) {
  while (synced_lsn_ < lsn) {
    if (!sync_error_.ok()) return sync_error_;
    if (!sync_in_flight_) {
      // Become the sync leader: everything appended up to now rides this
      // one fdatasync (group commit).
      sync_in_flight_ = true;
      const uint64_t target = last_lsn_;
      const int fd = fd_;
      lock->unlock();
      const int rc = fdatasync(fd);
      lock->lock();
      sync_in_flight_ = false;
      if (rc != 0) {
        sync_error_ = ErrnoError("fdatasync", dir_);
        synced_cv_.notify_all();
        return sync_error_;
      }
      fsyncs_.Increment();
      if (target > synced_lsn_) synced_lsn_ = target;
      synced_cv_.notify_all();
    } else {
      synced_cv_.wait(*lock);
    }
  }
  return Status::OK();
}

Status Wal::Append(std::string_view payload) {
  if (payload.empty() || payload.size() > kMaxWalRecordBytes) {
    return InvalidArgumentError("WAL record payload must be 1..1MiB bytes");
  }
  std::unique_lock<std::mutex> lock(mutex_);
  if (!sync_error_.ok()) return sync_error_;
  const size_t frame_size = kWalHeaderBytes + payload.size();
  if (segment_size_ > 0 &&
      segment_size_ + frame_size > options_.segment_bytes) {
    MBP_RETURN_IF_ERROR(RotateLocked(&lock));
  }
  scratch_.resize(frame_size);
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t checksum = Fnv1a32(payload.data(), payload.size());
  std::memcpy(scratch_.data(), &len, 4);
  std::memcpy(scratch_.data() + 4, &checksum, 4);
  std::memcpy(scratch_.data() + kWalHeaderBytes, payload.data(),
              payload.size());

#if defined(MBP_FAULT_INJECTION_ENABLED)
  if (MBP_FAULT_POINT("wal.append.torn")) {
    // The mid-write crash: leave a deliberately torn record on disk —
    // at least the length prefix, never the full frame — then die the
    // way kill -9 does. Recovery must truncate exactly this tail.
    const size_t partial = std::max<size_t>(1, frame_size / 2);
    (void)!write(fd_, scratch_.data(), partial);
    _exit(137);
  }
#endif

  const std::string path = dir_ + "/" + SegmentName(segment_seq_);
  const Status written = WriteAll(fd_, scratch_.data(), frame_size, path);
  if (!written.ok()) {
    sync_error_ = written;  // offset unknown: poison the log
    synced_cv_.notify_all();
    return written;
  }
  segment_size_ += frame_size;
  const uint64_t lsn = ++last_lsn_;
  appends_.Increment();
  bytes_.Increment(frame_size);

  MBP_FAULT_CRASH("wal.crash.pre_fsync");

  switch (options_.fsync_policy) {
    case FsyncPolicy::kNone:
      break;
    case FsyncPolicy::kEveryRecord:
      MBP_RETURN_IF_ERROR(FdatasyncLocked());
      break;
    case FsyncPolicy::kBatch:
      MBP_RETURN_IF_ERROR(WaitDurableLocked(&lock, lsn));
      break;
  }

  MBP_FAULT_CRASH("wal.crash.post_fsync");
  return Status::OK();
}

Status Wal::Sync() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!sync_error_.ok()) return sync_error_;
  if (synced_lsn_ >= last_lsn_) return Status::OK();
  return WaitDurableLocked(&lock, last_lsn_);
}

Status Wal::Checkpoint(std::string_view state) {
  if (state.empty() || state.size() > kMaxWalCheckpointBytes) {
    return InvalidArgumentError("WAL checkpoint state must be 1..1GiB bytes");
  }
  std::unique_lock<std::mutex> lock(mutex_);
  if (!sync_error_.ok()) return sync_error_;
  // Seal the current segment (unless it is empty) so the checkpoint's
  // sequence number subsumes every record appended so far.
  if (segment_size_ > 0) {
    MBP_RETURN_IF_ERROR(RotateLocked(&lock));
  } else {
    while (sync_in_flight_) synced_cv_.wait(lock);
    if (options_.fsync_policy != FsyncPolicy::kNone &&
        synced_lsn_ < last_lsn_) {
      MBP_RETURN_IF_ERROR(FdatasyncLocked());
    }
  }
  const uint64_t ckpt_seq = segment_seq_;

  // tmp + fsync + rename + dir fsync: a crash at any point leaves either
  // the old checkpoint (tmp never renamed) or the new one — never a
  // half-written visible checkpoint.
  const std::string final_path = dir_ + "/" + CheckpointName(ckpt_seq);
  const std::string tmp_path = final_path + ".tmp";
  {
    const int fd = open(tmp_path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) return ErrnoError("open", tmp_path);
    const uint32_t len = static_cast<uint32_t>(state.size());
    const uint32_t checksum = Fnv1a32(state.data(), state.size());
    char header[kWalHeaderBytes];
    std::memcpy(header, &len, 4);
    std::memcpy(header + 4, &checksum, 4);
    Status written = WriteAll(fd, header, sizeof(header), tmp_path);
    if (written.ok()) {
      written = WriteAll(fd, state.data(), state.size(), tmp_path);
    }
    if (written.ok() && fsync(fd) != 0) {
      written = ErrnoError("fsync", tmp_path);
    }
    close(fd);
    if (!written.ok()) {
      unlink(tmp_path.c_str());
      return written;
    }
  }

  MBP_FAULT_CRASH("wal.checkpoint.pre_rename");

  if (rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    const Status failed = ErrnoError("rename", final_path);
    unlink(tmp_path.c_str());
    return failed;
  }
  MBP_RETURN_IF_ERROR(FsyncDir(dir_));
  checkpoints_.Increment();

  // Compaction: everything the checkpoint subsumes goes away.
  {
    DIR* d = opendir(dir_.c_str());
    if (d != nullptr) {
      std::vector<std::string> doomed;
      while (struct dirent* entry = readdir(d)) {
        uint64_t seq = 0;
        const std::string_view name(entry->d_name);
        if ((ParseSeq(name, "wal-", ".seg", &seq) && seq < ckpt_seq) ||
            (ParseSeq(name, "ckpt-", ".ckpt", &seq) && seq < ckpt_seq) ||
            (name.size() > 4 &&
             name.substr(name.size() - 4) == ".tmp" &&
             name != CheckpointName(ckpt_seq) + ".tmp")) {
          doomed.emplace_back(name);
        }
      }
      closedir(d);
      for (const std::string& name : doomed) {
        unlink((dir_ + "/" + name).c_str());
      }
    }
  }
  return Status::OK();
}

}  // namespace mbp::wal

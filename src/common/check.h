#ifndef MBP_COMMON_CHECK_H_
#define MBP_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace mbp {
namespace internal_check {

// Accumulates a failure message and aborts the process when destroyed
// (i.e. at the end of the full MBP_CHECK expression). Used only via the
// MBP_CHECK* macros below.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "MBP_CHECK failed: " << condition << " at " << file << ":"
            << line << " ";
  }

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Makes the failure arm of the ternary in MBP_CHECK a void expression while
// still allowing `MBP_CHECK(x) << "detail"`. operator& binds tighter than
// ?: and looser than <<.
struct Voidify {
  void operator&(const CheckFailureStream&) const {}
};

}  // namespace internal_check
}  // namespace mbp

// Aborts with a diagnostic when `condition` is false. For programming errors
// (broken invariants), not data-dependent failures — those return Status.
// Additional context can be streamed: MBP_CHECK(n > 0) << "n=" << n;
#define MBP_CHECK(condition)                             \
  (condition) ? static_cast<void>(0)                     \
              : ::mbp::internal_check::Voidify() &       \
                    ::mbp::internal_check::CheckFailureStream( \
                        #condition, __FILE__, __LINE__)

#define MBP_CHECK_EQ(a, b) MBP_CHECK((a) == (b))
#define MBP_CHECK_NE(a, b) MBP_CHECK((a) != (b))
#define MBP_CHECK_LT(a, b) MBP_CHECK((a) < (b))
#define MBP_CHECK_LE(a, b) MBP_CHECK((a) <= (b))
#define MBP_CHECK_GT(a, b) MBP_CHECK((a) > (b))
#define MBP_CHECK_GE(a, b) MBP_CHECK((a) >= (b))

#endif  // MBP_COMMON_CHECK_H_

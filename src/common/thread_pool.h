#ifndef MBP_COMMON_THREAD_POOL_H_
#define MBP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace mbp {

class ThreadPool;

// How much concurrency a parallel kernel may use. Threaded through the
// option structs of every parallelizable path (error-curve estimation,
// linalg kernels, cross-validation, the brute-force optimizer) so callers
// control threading per call site without global state.
//
// Determinism contract: every kernel taking a ParallelConfig produces
// bit-identical results for EVERY thread count, including 1. Kernels
// guarantee this by (a) writing disjoint output slots per task, (b)
// reducing per-task partial results in task-index order, and (c) deriving
// any RNG stream from the task index, never from the executing thread.
// Thread count only changes wall-clock time.
struct ParallelConfig {
  // 0 = one thread per hardware core; 1 = serial (run inline on the
  // calling thread); N = at most N threads.
  size_t num_threads = 0;

  // The pool to run on; nullptr means the process-wide shared pool
  // (ThreadPool::Shared()). Parallel calls never spawn threads directly.
  ThreadPool* pool = nullptr;

  static ParallelConfig Serial() { return ParallelConfig{1, nullptr}; }

  // num_threads with 0 resolved to std::thread::hardware_concurrency()
  // (at least 1).
  size_t ResolvedThreads() const;
};

// Fixed-size worker pool with a FIFO task queue. Workers are started in
// the constructor and joined in the destructor; tasks submitted after
// destruction begins are dropped. Tasks must not throw — ParallelFor is
// the supported entry point and converts stray exceptions into Status
// (the library is otherwise exception-free, see DESIGN.md §5).
//
// Ownership model: library code never owns a pool. Kernels run on the
// lazily-created process-wide pool (Shared()) unless the caller passes
// its own pool via ParallelConfig, e.g. to isolate a latency-sensitive
// broker from batch re-pricing work.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  // Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  // The process-wide pool, created on first use. Sized
  // max(hardware_concurrency, 4) so that explicitly requested parallelism
  // still executes on real threads (and is exercisable under TSan) even
  // on single-core machines.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

// Runs fn over [begin, end) split into contiguous chunks of `grain`
// indices (the final chunk may be smaller). fn is called as
// fn(chunk_begin, chunk_end) and returns Status.
//
// - Chunk boundaries depend only on (begin, end, grain) — never on the
//   thread count — so per-chunk state (RNG substreams, partial sums
//   reduced in chunk order) is deterministic. See ParallelConfig.
// - The calling thread participates in executing chunks; worker threads
//   from the pool join in up to config.ResolvedThreads() total. Because
//   the caller can always execute every chunk itself, nested ParallelFor
//   calls cannot deadlock even when the pool is saturated.
// - All chunks run even if one fails; the returned Status is OK iff every
//   chunk succeeded, else the error of the lowest-indexed failing chunk
//   (deterministic error propagation). An exception escaping fn is
//   reported as InternalError.
Status ParallelFor(const ParallelConfig& config, size_t begin, size_t end,
                   size_t grain,
                   const std::function<Status(size_t, size_t)>& fn);

}  // namespace mbp

#endif  // MBP_COMMON_THREAD_POOL_H_

#ifndef MBP_COMMON_LOGGING_H_
#define MBP_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace mbp {

enum class LogSeverity { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum severity; messages below it are discarded.
// Not synchronized: set once at startup (e.g. from main or a test fixture).
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

namespace internal_logging {

// One log line; flushed to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace mbp

#define MBP_LOG(severity)                         \
  ::mbp::internal_logging::LogMessage(            \
      ::mbp::LogSeverity::k##severity, __FILE__, __LINE__)

#endif  // MBP_COMMON_LOGGING_H_

#include "linalg/vector_ops.h"

#include <cmath>

#include "linalg/kernels.h"

namespace mbp::linalg {

// The raw-pointer entry points forward to the dispatched micro-kernels
// (scalar reference or AVX2+FMA, selected at runtime — see kernels.h), so
// every caller of Dot/Axpy/Scale gets the SIMD variants for free.

double Dot(const double* a, const double* b, size_t n) {
  return kernels::Active().dot(a, b, n);
}

void Axpy(double alpha, const double* x, double* y, size_t n) {
  kernels::Active().axpy(alpha, x, y, n);
}

void Scale(double alpha, double* x, size_t n) {
  kernels::Active().scale(alpha, x, n);
}

double Dot(const Vector& a, const Vector& b) {
  MBP_CHECK_EQ(a.size(), b.size());
  return Dot(a.data(), b.data(), a.size());
}

double Norm2(const Vector& v) { return std::sqrt(SquaredNorm2(v)); }

double SquaredNorm2(const Vector& v) { return Dot(v.data(), v.data(), v.size()); }

double NormInf(const Vector& v) {
  double max_abs = 0.0;
  for (double x : v) max_abs = std::max(max_abs, std::fabs(x));
  return max_abs;
}

Vector Add(const Vector& a, const Vector& b) {
  MBP_CHECK_EQ(a.size(), b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector Subtract(const Vector& a, const Vector& b) {
  MBP_CHECK_EQ(a.size(), b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector Scaled(const Vector& v, double alpha) {
  Vector out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = alpha * v[i];
  return out;
}

Vector AddScaled(const Vector& a, double alpha, const Vector& b) {
  MBP_CHECK_EQ(a.size(), b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + alpha * b[i];
  return out;
}

double SquaredDistance(const Vector& a, const Vector& b) {
  MBP_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    acc += diff * diff;
  }
  return acc;
}

}  // namespace mbp::linalg

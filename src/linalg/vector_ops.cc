#include "linalg/vector_ops.h"

#include <cmath>

namespace mbp::linalg {

double Dot(const double* a, const double* b, size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) acc0 += a[i] * b[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

void Axpy(double alpha, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void Scale(double alpha, double* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] *= alpha;
}

double Dot(const Vector& a, const Vector& b) {
  MBP_CHECK_EQ(a.size(), b.size());
  return Dot(a.data(), b.data(), a.size());
}

double Norm2(const Vector& v) { return std::sqrt(SquaredNorm2(v)); }

double SquaredNorm2(const Vector& v) { return Dot(v.data(), v.data(), v.size()); }

double NormInf(const Vector& v) {
  double max_abs = 0.0;
  for (double x : v) max_abs = std::max(max_abs, std::fabs(x));
  return max_abs;
}

Vector Add(const Vector& a, const Vector& b) {
  MBP_CHECK_EQ(a.size(), b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector Subtract(const Vector& a, const Vector& b) {
  MBP_CHECK_EQ(a.size(), b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector Scaled(const Vector& v, double alpha) {
  Vector out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = alpha * v[i];
  return out;
}

Vector AddScaled(const Vector& a, double alpha, const Vector& b) {
  MBP_CHECK_EQ(a.size(), b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + alpha * b[i];
  return out;
}

double SquaredDistance(const Vector& a, const Vector& b) {
  MBP_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    acc += diff * diff;
  }
  return acc;
}

}  // namespace mbp::linalg
